// Command experiments regenerates every table and figure of the paper's
// evaluation section. Use -fig to select one artefact, -quick for the
// reduced sweeps.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "artefact: 4,5,6,7,8,9,10,11,12,13,table1 or all")
	quick := flag.Bool("quick", false, "reduced replica counts and cycles")
	flag.Parse()

	type artefact struct {
		name string
		run  func() (*bench.Table, error)
	}
	q := *quick
	artefacts := []artefact{
		{"4", func() (*bench.Table, error) {
			opts := bench.DefaultValidationOptions()
			if q {
				opts.TWindows, opts.UWindows, opts.StepsPerCycle, opts.Cycles = 2, 4, 150, 2
			}
			res, tbl, err := bench.Fig4Validation(opts)
			if err == nil {
				for i, f := range res.Surfaces {
					fmt.Printf("-- T = %.0f K --\n%s\n", res.Temperatures[i], f.Render(""))
				}
			}
			return tbl, err
		}},
		{"5", func() (*bench.Table, error) { _, t, err := bench.Fig5Overheads(q); return t, err }},
		{"6", func() (*bench.Table, error) { _, t, err := bench.Fig6Weak1D(q); return t, err }},
		{"7", func() (*bench.Table, error) { _, t, err := bench.Fig7Efficiency1D(q); return t, err }},
		{"8", func() (*bench.Table, error) { _, t, err := bench.Fig8NAMD(q); return t, err }},
		{"9", func() (*bench.Table, error) { _, t, err := bench.Fig9WeakTSU(q); return t, err }},
		{"10", func() (*bench.Table, error) { _, t, err := bench.Fig10StrongTSU(q); return t, err }},
		{"11", func() (*bench.Table, error) { _, t, err := bench.Fig11EfficiencyTSU(q); return t, err }},
		{"12", func() (*bench.Table, error) { _, t, err := bench.Fig12MultiCore(q); return t, err }},
		{"13", func() (*bench.Table, error) { _, t, err := bench.Fig13Utilization(q); return t, err }},
		{"table1", func() (*bench.Table, error) { return bench.Table1Comparison(), nil }},
	}
	ran := false
	for _, a := range artefacts {
		if *fig != "all" && *fig != a.name {
			continue
		}
		ran = true
		tbl, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "artefact %s: %v\n", a.name, err)
			os.Exit(1)
		}
		fmt.Println(tbl.String())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown artefact %q\n", *fig)
		os.Exit(2)
	}
}
