// Command fes regenerates the paper's Figure 4 end to end: a 3D
// T×U(φ)×U(ψ) replica-exchange simulation of alanine dipeptide with the
// real Go MD engine, followed by WHAM free-energy surfaces at each
// temperature, rendered as ASCII contour maps.
//
// Usage:
//
//	fes                      # reduced default protocol
//	fes -t 6 -u 8 -steps 20000 -cycles 90   # the paper's full protocol
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	tw := flag.Int("t", 3, "temperature windows (paper: 6)")
	uw := flag.Int("u", 6, "umbrella windows per torsion (paper: 8)")
	steps := flag.Int("steps", 400, "MD steps per cycle (paper: 20000)")
	cycles := flag.Int("cycles", 3, "cycles (paper: 90)")
	bins := flag.Int("bins", 24, "FES grid bins per axis")
	workers := flag.Int("workers", 0, "local worker cores (0 = all)")
	seed := flag.Int64("seed", 7, "RNG seed")
	flag.Parse()

	opts := bench.ValidationOptions{
		TWindows:      *tw,
		UWindows:      *uw,
		TLow:          273,
		THigh:         373,
		StepsPerCycle: *steps,
		Cycles:        *cycles,
		Bins:          *bins,
		Workers:       *workers,
		Seed:          *seed,
	}
	res, tbl, err := bench.Fig4Validation(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fes:", err)
		os.Exit(1)
	}
	fmt.Println(tbl.String())
	for i, f := range res.Surfaces {
		fmt.Printf("-- free energy surface at T = %.0f K (x: phi, y: psi; '?' unsampled) --\n",
			res.Temperatures[i])
		fmt.Println(f.Render(""))
	}
}
