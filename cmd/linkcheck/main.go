// Command linkcheck validates the relative links of the repository's
// markdown documentation: every `[text](target)` whose target is a
// relative path must point at an existing file or directory. Dead
// relative links are the failure mode of a docs/ tree that outlives a
// refactor — CI runs this over README.md and docs/ so they fail the
// build instead of rotting silently.
//
// Usage:
//
//	linkcheck README.md docs examples/README.md
//
// Arguments are markdown files or directories (scanned recursively for
// *.md). External targets (http://, https://, mailto:) and pure
// in-page anchors (#section) are skipped; a relative target's optional
// #fragment is stripped before the existence check. Exit status 1 when
// any link is dead, listing every offender as file:line.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches inline markdown links: [text](target). Reference
// definitions and autolinks are out of scope — the repo's docs use the
// inline form.
var linkPattern = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// deadLinks scans one markdown file and returns "file:line: target"
// entries for relative links whose target does not exist.
func deadLinks(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var dead []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		// Fenced code blocks show shell output and Go snippets whose
		// bracket-paren sequences are not links.
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if frag := strings.IndexByte(target, '#'); frag >= 0 {
				target = target[:frag]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				dead = append(dead, fmt.Sprintf("%s:%d: dead link %q", path, i+1, m[1]))
			}
		}
	}
	return dead, nil
}

// collect expands the argument list into markdown file paths:
// directories are walked recursively for *.md.
func collect(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: linkcheck <file.md|dir> ...")
	}
	files, err := collect(args)
	if err != nil {
		return err
	}
	var dead []string
	for _, f := range files {
		d, err := deadLinks(f)
		if err != nil {
			return err
		}
		dead = append(dead, d...)
	}
	if len(dead) > 0 {
		return fmt.Errorf("%s\nlinkcheck: %d dead link(s) in %d file(s)",
			strings.Join(dead, "\n"), len(dead), len(files))
	}
	fmt.Printf("linkcheck: %d files, all relative links resolve\n", len(files))
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
