package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a file under dir, creating parents.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDeadLinksFindsMissingRelativeTargets(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "docs/real.md", "# ok\n")
	md := write(t, dir, "index.md", strings.Join([]string{
		"[good](docs/real.md) and [anchored](docs/real.md#section)",
		"[external](https://example.org/nope) [mail](mailto:a@b.c) [anchor](#here)",
		"```",
		"[not a link in a fence](missing-in-fence.md)",
		"```",
		"[dead](docs/missing.md) and [also dead](../outside.md)",
	}, "\n"))

	dead, err := deadLinks(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 2 {
		t.Fatalf("found %d dead links, want 2: %v", len(dead), dead)
	}
	for _, d := range dead {
		if !strings.Contains(d, ":6:") {
			t.Fatalf("dead link %q not attributed to line 6", d)
		}
	}
}

func TestRunWalksDirectoriesAndFails(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", "[docs](docs/a.md)\n")
	write(t, dir, "docs/a.md", "[back](../README.md)\n")
	if err := run([]string{filepath.Join(dir, "README.md"), filepath.Join(dir, "docs")}); err != nil {
		t.Fatalf("healthy tree failed: %v", err)
	}

	write(t, dir, "docs/b.md", "[gone](nowhere.md)\n")
	err := run([]string{filepath.Join(dir, "docs")})
	if err == nil {
		t.Fatal("dead link did not fail the run")
	}
	if !strings.Contains(err.Error(), "nowhere.md") {
		t.Fatalf("failure does not name the dead target: %v", err)
	}
}
