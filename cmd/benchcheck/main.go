// Command benchcheck is the CI perf-regression gate for the dispatcher
// benchmarks: it parses `go test -json -bench` output, extracts a
// per-benchmark metric (default ns/completion, the dispatcher's
// per-event cost), takes the median over the -count repetitions and
// compares it against a committed baseline file.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkDispatcher$|BenchmarkDispatcherBus$' \
//	    -benchtime 10x -count 5 -json . > BENCH_dispatcher.json
//	benchcheck -baseline BENCH_baseline.json -bench BENCH_dispatcher.json
//
// The gate fails (exit 1) when any baseline benchmark's median regresses
// by more than the threshold (default 15%), or disappears from the run.
// Intentional regressions update the baseline in the same change:
//
//	benchcheck -bench BENCH_dispatcher.json -write BENCH_baseline.json
//
// Baselines are machine-specific: regenerate with -write when the CI
// runner class changes. The GOMAXPROCS suffix (-8) is stripped from
// benchmark names so a baseline survives runner core-count changes.
//
// Alongside the absolute-ns medians, the baseline may carry
// machine-independent ratio gates ("ratios": [{"num": ..., "den": ...,
// "max": 1.05}]): the median ratio of two benchmarks from the same run
// must stay below the bound. Ratios survive runner upgrades without
// baseline churn (e.g. the observability bus may cost at most 5% over
// the bare dispatcher, on any hardware) and are carried over verbatim
// by -write.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference: median metric value per
// benchmark, plus the metric and threshold they were captured for.
type Baseline struct {
	// Metric is the benchmark unit gated on (e.g. "ns/completion").
	Metric string `json:"metric"`
	// Threshold is the relative regression that fails the gate (0.15 =
	// +15%).
	Threshold float64 `json:"threshold"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// the median metric value.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Ratios are machine-independent companion gates: unlike the
	// absolute medians above (runner-class specific, churned by
	// hardware changes), a ratio of two benchmarks measured in the same
	// run survives runner upgrades. -write carries them over verbatim.
	Ratios []RatioGate `json:"ratios,omitempty"`
}

// RatioGate bounds the median ratio of two benchmarks from the same
// run: median(Num)/median(Den) must stay below Max.
type RatioGate struct {
	// Num and Den are benchmark names (GOMAXPROCS suffix stripped).
	Num string `json:"num"`
	Den string `json:"den"`
	// Max is the exclusive upper bound on the ratio (e.g. 1.05: the
	// numerator may cost at most 5% more than the denominator).
	Max float64 `json:"max"`
}

// testEvent is the subset of `go test -json` events we consume.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// gomaxprocsSuffix strips the trailing -N goroutine-count suffix Go
// appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-[0-9]+$`)

// parseBench extracts, for every benchmark result line in a
// `go test -json` stream, the values reported under the given metric
// unit, keyed by benchmark name. `-count N` yields N values per name.
//
// The -json encoder splits one benchmark result line across several
// output events (the name in one, the values in the next), so the text
// stream is reassembled per package before line parsing. Plain (non
// -json) benchmark logs pass through the same path.
func parseBench(r io.Reader, metric string) (map[string][]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pkgs []string
	streams := map[string]*strings.Builder{}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate a plain benchmark log (non -json runs) too.
			ev = testEvent{Action: "output", Output: string(line) + "\n"}
		}
		if ev.Action != "output" {
			continue
		}
		b := streams[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			streams[ev.Package] = b
			pkgs = append(pkgs, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := map[string][]float64{}
	for _, pkg := range pkgs {
		for _, text := range strings.Split(streams[pkg].String(), "\n") {
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "Benchmark") {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) < 3 {
				continue
			}
			name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
			// Result fields after the iteration count come in value/unit
			// pairs: "123.4 ns/op 567.8 ns/completion ...".
			for i := 2; i+1 < len(fields); i += 2 {
				if fields[i+1] != metric {
					continue
				}
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("benchcheck: %s: bad %s value %q", name, metric, fields[i])
				}
				out[name] = append(out[name], v)
			}
		}
	}
	return out, nil
}

// median returns the median of vs (which must be non-empty).
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// gate compares current medians against the baseline and returns the
// per-benchmark report lines plus the names that breached the
// threshold. Benchmarks present in the baseline but missing from the
// run also fail: a silently skipped benchmark is not a pass.
func gate(base *Baseline, cur map[string][]float64, threshold float64) (report []string, failed []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ref := base.Benchmarks[name]
		vs, ok := cur[name]
		if !ok || len(vs) == 0 {
			report = append(report, fmt.Sprintf("FAIL %-44s baseline %.1f, missing from this run", name, ref))
			failed = append(failed, name)
			continue
		}
		med := median(vs)
		delta := (med - ref) / ref
		verdict := "ok  "
		if delta > threshold {
			verdict = "FAIL"
			failed = append(failed, name)
		}
		report = append(report, fmt.Sprintf("%s %-44s baseline %10.1f  median %10.1f  (%+.1f%%, n=%d)",
			verdict, name, ref, med, 100*delta, len(vs)))
	}
	var extra []string
	for name := range cur {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		report = append(report, fmt.Sprintf("note %-44s median %10.1f (not in baseline; add with -write)",
			name, median(cur[name])))
	}
	rr, rf := gateRatios(base.Ratios, cur)
	return append(report, rr...), append(failed, rf...)
}

// gateRatios checks the machine-independent ratio gates against the
// run's medians. A gate whose members are missing from the run fails,
// like a missing absolute benchmark: a silently unmeasured ratio is
// not a pass.
func gateRatios(gates []RatioGate, cur map[string][]float64) (report []string, failed []string) {
	for _, g := range gates {
		label := g.Num + "/" + g.Den
		num, okN := cur[g.Num]
		den, okD := cur[g.Den]
		if !okN || !okD || len(num) == 0 || len(den) == 0 {
			report = append(report, fmt.Sprintf("FAIL %-44s ratio gate member missing from this run", label))
			failed = append(failed, label)
			continue
		}
		ratio := median(num) / median(den)
		verdict := "ok  "
		if ratio >= g.Max {
			verdict = "FAIL"
			failed = append(failed, label)
		}
		report = append(report, fmt.Sprintf("%s %-44s ratio %6.3f  (bound < %.3f)", verdict, label, ratio, g.Max))
	}
	return report, failed
}

// writeDiff renders the old→new median changes a -write is about to
// commit, sorted by benchmark name, so a baseline refresh shows at a
// glance what moved (and what appeared or vanished) instead of being a
// silent file overwrite. Returns nil when there was no previous
// baseline to diff against.
func writeDiff(old, fresh map[string]float64) []string {
	if len(old) == 0 {
		return nil
	}
	names := make([]string, 0, len(old)+len(fresh))
	for name := range old {
		names = append(names, name)
	}
	for name := range fresh {
		if _, ok := old[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	lines := make([]string, 0, len(names))
	for _, name := range names {
		ov, hasOld := old[name]
		nv, hasNew := fresh[name]
		switch {
		case !hasOld:
			lines = append(lines, fmt.Sprintf("  +  %-44s %31.1f (new)", name, nv))
		case !hasNew:
			lines = append(lines, fmt.Sprintf("  -  %-44s %10.1f (removed)", name, ov))
		default:
			lines = append(lines, fmt.Sprintf("     %-44s %10.1f -> %10.1f  (%+.1f%%)",
				name, ov, nv, 100*(nv-ov)/ov))
		}
	}
	return lines
}

func run() error {
	baselinePath := flag.String("baseline", "", "committed baseline JSON to gate against")
	benchPath := flag.String("bench", "", "go test -json benchmark output (required; - for stdin)")
	metric := flag.String("metric", "ns/completion", "benchmark unit to gate on")
	threshold := flag.Float64("threshold", 0, "relative regression failing the gate (0 uses the baseline's, default 0.15)")
	writePath := flag.String("write", "", "write a fresh baseline to this path instead of gating")
	flag.Parse()
	if *benchPath == "" || (*baselinePath == "" && *writePath == "") {
		flag.Usage()
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	cur, err := parseBench(in, *metric)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("benchcheck: no %q samples found in %s", *metric, *benchPath)
	}

	if *writePath != "" {
		th := *threshold
		if th == 0 {
			th = 0.15
		}
		base := Baseline{Metric: *metric, Threshold: th, Benchmarks: map[string]float64{}}
		for name, vs := range cur {
			base.Benchmarks[name] = median(vs)
		}
		// Regenerating absolute medians (machine-specific) must not drop
		// the ratio gates (machine-independent): carry them over from
		// the baseline being replaced.
		var prev Baseline
		if old, err := os.ReadFile(*writePath); err == nil {
			if json.Unmarshal(old, &prev) == nil {
				base.Ratios = prev.Ratios
			}
		}
		data, err := json.MarshalIndent(&base, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*writePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		for _, line := range writeDiff(prev.Benchmarks, base.Benchmarks) {
			fmt.Println(line)
		}
		fmt.Printf("wrote %s: %d benchmarks, metric %s, threshold %.0f%%\n",
			*writePath, len(base.Benchmarks), *metric, 100*th)
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("benchcheck: parsing baseline %s: %v", *baselinePath, err)
	}
	if base.Metric != "" && base.Metric != *metric {
		return fmt.Errorf("benchcheck: baseline gates %q, run parsed %q", base.Metric, *metric)
	}
	th := *threshold
	if th == 0 {
		th = base.Threshold
	}
	if th == 0 {
		th = 0.15
	}

	report, failed := gate(&base, cur, th)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(failed) > 0 {
		return fmt.Errorf("benchcheck: %d benchmark(s) regressed beyond %.0f%%: %s (update %s with -write if intentional)",
			len(failed), 100*th, strings.Join(failed, ", "), *baselinePath)
	}
	fmt.Printf("benchcheck: %d benchmarks within %.0f%% of baseline\n", len(base.Benchmarks), 100*th)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
