package main

import (
	"strings"
	"testing"
)

// sampleStream mimics real `go test -json -bench` output, including
// the encoder's habit of splitting one benchmark result line across
// two output events (name+tab first, values after).
const sampleStream = `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkDispatcher/64/barrier","Output":"BenchmarkDispatcher/64/barrier-8 \t"}
{"Action":"output","Package":"repro","Output":"      10\t  52000 ns/op\t  11000 ns/completion\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkDispatcher/64/barrier-8 \t      10\t  53000 ns/op\t  12000 ns/completion\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkDispatcher/64/barrier-8 \t"}
{"Action":"output","Package":"repro","Output":"      10\t  51000 ns/op\t  10000 ns/completion\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkDispatcherBus/64/window-8 \t      10\t  60000 ns/op\t  13000 ns/completion\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
{"Action":"pass","Package":"repro"}
`

func parse(t *testing.T, stream, metric string) map[string][]float64 {
	t.Helper()
	got, err := parseBench(strings.NewReader(stream), metric)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseBenchExtractsMetricPerBenchmark(t *testing.T) {
	got := parse(t, sampleStream, "ns/completion")
	vs := got["BenchmarkDispatcher/64/barrier"]
	if len(vs) != 3 {
		t.Fatalf("parsed %d repetitions, want 3 (got %v)", len(vs), got)
	}
	if m := median(vs); m != 11000 {
		t.Fatalf("median %v, want 11000", m)
	}
	if len(got["BenchmarkDispatcherBus/64/window"]) != 1 {
		t.Fatalf("bus benchmark missing: %v", got)
	}
	// The GOMAXPROCS suffix must be stripped so baselines survive
	// runner core-count changes.
	for name := range got {
		if strings.HasSuffix(name, "-8") {
			t.Fatalf("GOMAXPROCS suffix kept in %q", name)
		}
	}
	if ops := parse(t, sampleStream, "ns/op"); median(ops["BenchmarkDispatcher/64/barrier"]) != 52000 {
		t.Fatalf("ns/op extraction broken: %v", ops)
	}
}

func TestGateFailsOnRegressionAndMissing(t *testing.T) {
	base := &Baseline{
		Metric:    "ns/completion",
		Threshold: 0.15,
		Benchmarks: map[string]float64{
			"BenchmarkDispatcher/64/barrier":   10000, // current median 11000: +10%, passes
			"BenchmarkDispatcherBus/64/window": 10000, // current 13000: +30%, fails
			"BenchmarkDispatcher/256/barrier":  9000,  // absent from the run: fails
		},
	}
	cur := parse(t, sampleStream, "ns/completion")
	_, failed := gate(base, cur, base.Threshold)
	if len(failed) != 2 {
		t.Fatalf("failed %v, want the regressed and the missing benchmark", failed)
	}

	// Same data under a generous threshold: only the missing benchmark
	// can still fail.
	_, failed = gate(base, cur, 10)
	if len(failed) != 1 || failed[0] != "BenchmarkDispatcher/256/barrier" {
		t.Fatalf("failed %v, want only the missing benchmark", failed)
	}

	// Inverted (negative) threshold: everything present must fail —
	// the synthetic-regression check for the CI gate itself.
	_, failed = gate(base, cur, -1)
	if len(failed) != 3 {
		t.Fatalf("inverted threshold failed %v, want all three", failed)
	}
}

func TestMedianEvenCount(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median %v, want 2.5", m)
	}
}

// TestWriteDiff: refreshing a baseline prints what moved, sorted by
// name, flagging benchmarks that appeared or vanished; a first -write
// (no previous baseline) prints nothing.
func TestWriteDiff(t *testing.T) {
	old := map[string]float64{
		"BenchmarkDispatcher/64/barrier":  10000,
		"BenchmarkDispatcher/256/barrier": 12000,
		"BenchmarkGone":                   5,
	}
	fresh := map[string]float64{
		"BenchmarkDispatcher/64/barrier":  11000,
		"BenchmarkDispatcher/256/barrier": 12000,
		"BenchmarkAdded":                  7,
	}
	lines := writeDiff(old, fresh)
	if len(lines) != 4 {
		t.Fatalf("got %d diff lines, want 4: %v", len(lines), lines)
	}
	wantOrder := []string{"BenchmarkAdded", "BenchmarkDispatcher/256/barrier",
		"BenchmarkDispatcher/64/barrier", "BenchmarkGone"}
	for i, name := range wantOrder {
		if !strings.Contains(lines[i], name) {
			t.Fatalf("line %d = %q, want %s (sorted order)", i, lines[i], name)
		}
	}
	if !strings.Contains(lines[0], "(new)") {
		t.Errorf("added benchmark not flagged: %q", lines[0])
	}
	if !strings.Contains(lines[2], "+10.0%") {
		t.Errorf("changed benchmark missing delta: %q", lines[2])
	}
	if !strings.Contains(lines[3], "(removed)") {
		t.Errorf("removed benchmark not flagged: %q", lines[3])
	}
	if got := writeDiff(nil, fresh); got != nil {
		t.Errorf("first write should print no diff, got %v", got)
	}
}

// ratioStream is a synthetic run where the bus benchmark costs 4% over
// the bare dispatcher at 64 replicas (passes a 1.05 gate) and 30% over
// at 256 (fails it).
const ratioStream = `{"Action":"output","Package":"repro","Output":"BenchmarkDispatcher/64/window-8 \t      10\t  52000 ns/op\t  10000 ns/completion\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkDispatcher/64/window-8 \t      10\t  52000 ns/op\t  10200 ns/completion\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkDispatcher/64/window-8 \t      10\t  52000 ns/op\t  9800 ns/completion\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkDispatcherBus/64/window-8 \t      10\t  60000 ns/op\t  10400 ns/completion\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkDispatcher/256/window-8 \t      10\t  52000 ns/op\t  10000 ns/completion\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkDispatcherBus/256/window-8 \t      10\t  60000 ns/op\t  13000 ns/completion\n"}
`

// TestRatioGate: the machine-independent companion gate bounds
// median(num)/median(den), fails on breach or on members missing from
// the run, and rides through gate() alongside the absolute medians.
func TestRatioGate(t *testing.T) {
	cur := parse(t, ratioStream, "ns/completion")

	base := &Baseline{Ratios: []RatioGate{
		{Num: "BenchmarkDispatcherBus/64/window", Den: "BenchmarkDispatcher/64/window", Max: 1.05},
	}}
	report, failed := gate(base, cur, 0.15)
	if len(failed) != 0 {
		t.Fatalf("4%% bus overhead failed the 1.05 ratio gate: %v", report)
	}

	base.Ratios = append(base.Ratios,
		RatioGate{Num: "BenchmarkDispatcherBus/256/window", Den: "BenchmarkDispatcher/256/window", Max: 1.05})
	_, failed = gate(base, cur, 0.15)
	if len(failed) != 1 || !strings.Contains(failed[0], "256") {
		t.Fatalf("30%% bus overhead passed the 1.05 ratio gate: failed=%v", failed)
	}

	// A tighter bound flips the passing pair too: the gate really reads
	// the measured ratio (10400/10000 = 1.04).
	base.Ratios[0].Max = 1.03
	_, failed = gate(base, cur, 0.15)
	if len(failed) != 2 {
		t.Fatalf("1.03 bound kept the 1.04 ratio: failed=%v", failed)
	}

	// Members missing from the run fail, like missing benchmarks.
	base.Ratios = []RatioGate{{Num: "BenchmarkNope", Den: "BenchmarkDispatcher/64/window", Max: 1.05}}
	_, failed = gate(base, cur, 0.15)
	if len(failed) != 1 {
		t.Fatalf("missing ratio member passed: failed=%v", failed)
	}
}
