// Command repexd is the multi-run daemon: a single process that
// launches, observes and cancels many concurrent replica-exchange
// simulations over HTTP, sharing one bounded core pool — the service
// face of the same flexible execution modes cmd/repex runs one at a
// time.
//
// Usage:
//
//	repexd [-config daemon.json] [-listen HOST:PORT]
//	       [-total-cores N] [-max-runs N] [-log-level LEVEL]
//
// The optional config file follows internal/config.Daemon; flags
// override it. Endpoints (see docs/repexd.md):
//
//	POST   /runs              launch from a config.Launch JSON body
//	GET    /runs              list run statuses
//	GET    /runs/{id}         one run's status
//	DELETE /runs/{id}         cancel at the next exchange boundary
//	GET    /runs/{id}/status  (also /stats, /metrics, /trace, /events)
//	GET    /metrics           aggregate Prometheus scrape, run-labelled
//	GET    /status            daemon status (runs, pool)
//	GET    /healthz           liveness probe with a run-state summary
//
// Every run gets its own bounded flight recorder ("trace_events" in the
// config sets its depth), served as Chrome trace-event JSON at
// GET /runs/{id}/trace. A "pprof": true config key mounts
// net/http/pprof under /debug/pprof/ — off by default; see
// docs/observability.md for the security note.
//
// A resume launch is a POST /runs whose body names a snapshot file in
// "resume"; checkpoints are written atomically to the "checkpoint"
// path. On SIGINT/SIGTERM the daemon cancels every active run and
// waits up to drain_timeout_sec for final snapshots before exiting.
// Diagnostics go to stderr as structured key=value lines; -log-level
// (debug, info, warn, error) sets the threshold.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/serve"
)

func main() {
	cfgPath := flag.String("config", "", "daemon JSON config file (internal/config.Daemon)")
	listen := flag.String("listen", "", "host:port to bind (overrides the config file)")
	totalCores := flag.Int("total-cores", -1, "shared core-pool capacity, 0 unbounded (overrides the config file)")
	maxRuns := flag.Int("max-runs", -1, "concurrently active run bound, 0 unbounded (overrides the config file)")
	logLevel := flag.String("log-level", "info", "stderr log threshold: debug, info, warn or error")
	flag.Parse()
	if err := setupLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "repexd:", err)
		os.Exit(2)
	}
	if err := run(*cfgPath, *listen, *totalCores, *maxRuns); err != nil {
		slog.Error("daemon failed", "error", err)
		os.Exit(1)
	}
}

// setupLogging installs the process-wide structured logger: key=value
// text lines on stderr, filtered at the given level.
func setupLogging(level string) error {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr,
		&slog.HandlerOptions{Level: lv})))
	return nil
}

func run(cfgPath, listen string, totalCores, maxRuns int) error {
	var d config.Daemon
	if cfgPath != "" {
		data, err := os.ReadFile(cfgPath)
		if err != nil {
			return err
		}
		parsed, err := config.ParseDaemon(data)
		if err != nil {
			return err
		}
		d = *parsed
	} else if err := d.Normalize(); err != nil {
		return err
	}
	if listen != "" {
		d.Listen = listen
	}
	if totalCores >= 0 {
		d.TotalCores = totalCores
	}
	if maxRuns >= 0 {
		d.MaxRuns = maxRuns
	}

	reg := serve.NewRegistry(d.TotalCores, d.MaxRuns)
	reg.SetLogger(slog.Default())
	reg.SetTraceEvents(d.TraceEvents)
	if d.Pprof {
		reg.EnablePprof()
		slog.Warn("pprof endpoints enabled under /debug/pprof/; keep the listener trusted")
	}
	lis, err := net.Listen("tcp", d.Listen)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           reg.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	slog.Info("listening", "addr", fmt.Sprintf("http://%s", lis.Addr()),
		"total_cores", d.TotalCores, "max_runs", d.MaxRuns)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		// Graceful drain: stop accepting work, cancel every active run
		// (each writes its final boundary snapshot if configured) and
		// bound the wait so a wedged run cannot block shutdown forever.
		slog.Info("draining runs", "signal", s.String())
		_ = srv.Close()
		reg.CancelAll()
		timeout := time.Duration(d.DrainTimeoutSec * float64(time.Second))
		if !reg.Wait(timeout) {
			return fmt.Errorf("drain timed out after %s with runs still active", timeout)
		}
		slog.Info("drained")
	}
	return nil
}
