// Command repexd is the multi-run daemon: a single process that
// launches, observes and cancels many concurrent replica-exchange
// simulations over HTTP, sharing one bounded core pool — the service
// face of the same flexible execution modes cmd/repex runs one at a
// time.
//
// Usage:
//
//	repexd [-config daemon.json] [-listen HOST:PORT]
//	       [-total-cores N] [-max-runs N]
//
// The optional config file follows internal/config.Daemon; flags
// override it. Endpoints (see docs/repexd.md):
//
//	POST   /runs              launch from a config.Launch JSON body
//	GET    /runs              list run statuses
//	GET    /runs/{id}         one run's status
//	DELETE /runs/{id}         cancel at the next exchange boundary
//	GET    /runs/{id}/status  (also /stats, /metrics, /events)
//	GET    /metrics           aggregate Prometheus scrape, run-labelled
//	GET    /status            daemon status (runs, pool)
//	GET    /healthz           liveness probe
//
// A resume launch is a POST /runs whose body names a snapshot file in
// "resume"; checkpoints are written atomically to the "checkpoint"
// path. On SIGINT/SIGTERM the daemon cancels every active run and
// waits up to drain_timeout_sec for final snapshots before exiting.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/serve"
)

func main() {
	cfgPath := flag.String("config", "", "daemon JSON config file (internal/config.Daemon)")
	listen := flag.String("listen", "", "host:port to bind (overrides the config file)")
	totalCores := flag.Int("total-cores", -1, "shared core-pool capacity, 0 unbounded (overrides the config file)")
	maxRuns := flag.Int("max-runs", -1, "concurrently active run bound, 0 unbounded (overrides the config file)")
	flag.Parse()
	if err := run(*cfgPath, *listen, *totalCores, *maxRuns); err != nil {
		fmt.Fprintln(os.Stderr, "repexd:", err)
		os.Exit(1)
	}
}

func run(cfgPath, listen string, totalCores, maxRuns int) error {
	var d config.Daemon
	if cfgPath != "" {
		data, err := os.ReadFile(cfgPath)
		if err != nil {
			return err
		}
		parsed, err := config.ParseDaemon(data)
		if err != nil {
			return err
		}
		d = *parsed
	} else if err := d.Normalize(); err != nil {
		return err
	}
	if listen != "" {
		d.Listen = listen
	}
	if totalCores >= 0 {
		d.TotalCores = totalCores
	}
	if maxRuns >= 0 {
		d.MaxRuns = maxRuns
	}

	reg := serve.NewRegistry(d.TotalCores, d.MaxRuns)
	lis, err := net.Listen("tcp", d.Listen)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           reg.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	log.Printf("repexd: listening on http://%s (POST /runs to launch)", lis.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		// Graceful drain: stop accepting work, cancel every active run
		// (each writes its final boundary snapshot if configured) and
		// bound the wait so a wedged run cannot block shutdown forever.
		log.Printf("repexd: %s: draining runs", s)
		_ = srv.Close()
		reg.CancelAll()
		timeout := time.Duration(d.DrainTimeoutSec * float64(time.Second))
		if !reg.Wait(timeout) {
			return fmt.Errorf("drain timed out after %s with runs still active", timeout)
		}
		log.Printf("repexd: drained")
	}
	return nil
}
