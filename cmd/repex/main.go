// Command repex runs a replica-exchange simulation described by a JSON
// simulation file and a JSON resource file, in virtual time on the
// modelled cluster — the reproduction's equivalent of the RepEx
// command-line entry points (repex-amber-t, repex-namd-t, ...).
//
// Usage:
//
//	repex -sim simulation.json -res resource.json
//
// The simulation file follows internal/config.Simulation, e.g.:
//
//	{
//	  "name": "tsu-demo", "engine": "amber", "atoms": 2881,
//	  "dimensions": [
//	    {"type": "T", "count": 6, "min": 273, "max": 373},
//	    {"type": "S", "values": [0.1, 0.2, 0.4]},
//	    {"type": "U", "count": 8, "torsion": "phi"}
//	  ],
//	  "cores_per_replica": 1, "steps_per_cycle": 6000, "cycles": 4
//	}
//
// The optional "trigger" field ("barrier", "window", "count",
// "adaptive", "feedback", with "trigger_count" / "async_window_sec" /
// "target_acceptance" / "window_events" as parameters) selects an
// exchange-trigger policy beyond the two canonical patterns; the
// -trigger, -target-acceptance and -window-events flags override the
// file.
//
// and the resource file internal/config.Resource:
//
//	{"machine": "supermic", "pilot_cores": 144, "walltime_sec": 3600}
//
// A positive "walltime_sec" bounds each pilot's life; expired pilots are
// replaced transparently (failover) and interrupted MD segments are
// resubmitted. Checkpoint/restart covers runs longer than any single
// session: -checkpoint FILE writes a snapshot every -checkpoint-every
// exchange events, and -resume FILE continues a killed run from its last
// snapshot.
//
// Observability: -listen HOST:PORT (or a "serve": {"listen": ...} block
// in the simulation file) starts the live HTTP status server with
// GET /status, /stats, /metrics (Prometheus text format), /healthz and
// /trace. With a listener active the process keeps serving after the
// run completes until interrupted, so the final statistics remain
// scrapeable. A "serve": {"pprof": true} block additionally mounts
// net/http/pprof under /debug/pprof/ (off by default — see
// docs/observability.md for the security note).
//
// Tracing: -trace FILE attaches the bounded flight recorder and writes
// the run's span timeline as Chrome trace-event JSON at exit; load the
// file in Perfetto (https://ui.perfetto.dev) or chrome://tracing. With
// -listen the recorder is attached too and served live at GET /trace.
//
// Diagnostics go to stderr as structured key=value lines; -log-level
// (debug, info, warn, error) sets the threshold. The human-readable
// run report stays on stdout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/respace"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	simPath := flag.String("sim", "", "simulation JSON file (required)")
	resPath := flag.String("res", "", "resource JSON file (required)")
	resumePath := flag.String("resume", "", "snapshot file to resume from")
	ckptPath := flag.String("checkpoint", "", "snapshot file to write checkpoints to")
	ckptEvery := flag.Int("checkpoint-every", 1, "exchange events between checkpoints")
	listen := flag.String("listen", "", "host:port for the live status server (overrides the sim file's serve block)")
	trigger := flag.String("trigger", "", "exchange-trigger policy override: barrier, window, count, adaptive or feedback")
	targetAcc := flag.String("target-acceptance", "", "feedback trigger acceptance set point: a scalar in (0,1) or a per-dimension JSON map like '{\"T\":0.4,\"U\":0.25}'; empty keeps the sim file's value (requires the feedback trigger)")
	windowEvents := flag.Int("window-events", 0, "rolling-window depth for pair statistics and the feedback trigger (overrides the sim file)")
	tracePath := flag.String("trace", "", "write the flight recorder's span timeline as Chrome trace-event JSON to this file at exit")
	preemptNotice := flag.Float64("preempt-notice", -1, "default preemption notice window in virtual seconds for chaos preempt events that omit notice_sec (overrides the resource file's preempt_notice_sec; negative keeps the file's value)")
	noChaos := flag.Bool("no-chaos", false, "ignore the resource file's chaos plan (run the same config on quiet resources)")
	logLevel := flag.String("log-level", "info", "stderr log threshold: debug, info, warn or error")
	flag.Parse()
	if *simPath == "" || *resPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := setupLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "repex:", err)
		os.Exit(2)
	}
	ov := overrides{trigger: *trigger, windowEvents: *windowEvents,
		preemptNotice: *preemptNotice, noChaos: *noChaos}
	if *targetAcc != "" {
		ta, err := parseTargetAcceptance(*targetAcc)
		if err != nil {
			slog.Error("invalid flag", "error", err)
			os.Exit(2)
		}
		ov.targetAcceptance = &ta
	}
	if err := run(*simPath, *resPath, *resumePath, *ckptPath, *ckptEvery, *listen, *tracePath, ov); err != nil {
		slog.Error("run failed", "error", err)
		os.Exit(1)
	}
}

// setupLogging installs the process-wide structured logger: key=value
// text lines on stderr, filtered at the given level.
func setupLogging(level string) error {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr,
		&slog.HandlerOptions{Level: lv})))
	return nil
}

// overrides are the command-line knobs that take precedence over the
// simulation file's trigger fields and the resource file's chaos knobs.
type overrides struct {
	trigger          string
	targetAcceptance *config.TargetAcceptance
	windowEvents     int
	// preemptNotice overrides the resource's preempt_notice_sec when
	// non-negative; noChaos drops the resource's chaos plan entirely.
	preemptNotice float64
	noChaos       bool
}

// parseTargetAcceptance parses the -target-acceptance flag: the same
// two forms the config file accepts (scalar or per-dimension map),
// routed through the config type so validation lives in one place. A
// zero value is rejected rather than silently overriding the sim
// file's set point with the built-in default — leaving the flag off is
// the "keep the file's value" form.
func parseTargetAcceptance(arg string) (config.TargetAcceptance, error) {
	var ta config.TargetAcceptance
	if err := ta.UnmarshalJSON([]byte(arg)); err != nil {
		return ta, fmt.Errorf("-target-acceptance %q: want a number or a JSON map like {\"T\":0.4}: %v", arg, err)
	}
	if ta.IsZero() {
		return ta, fmt.Errorf("-target-acceptance %q: want a value in (0,1) or a non-empty map; omit the flag to keep the sim file's value", arg)
	}
	return ta, nil
}

func run(simPath, resPath, resumePath, ckptPath string, ckptEvery int, listen, tracePath string, ov overrides) error {
	simData, err := os.ReadFile(simPath)
	if err != nil {
		return err
	}
	resData, err := os.ReadFile(resPath)
	if err != nil {
		return err
	}
	simFile, err := config.ParseSimulation(simData)
	if err != nil {
		return err
	}
	if ov.trigger != "" {
		simFile.Trigger = ov.trigger
	}
	if ov.targetAcceptance != nil {
		simFile.TargetAcceptance = *ov.targetAcceptance
	}
	if ov.windowEvents != 0 {
		simFile.WindowEvents = ov.windowEvents
	}
	spec, err := simFile.ToSpec()
	if err != nil {
		return err
	}
	resFile, err := config.DecodeResource(resData)
	if err != nil {
		return err
	}
	if ov.preemptNotice >= 0 {
		resFile.PreemptNoticeSec = ov.preemptNotice
	}
	if ov.noChaos {
		resFile.Chaos = nil
	}
	machine, pilotSpec, err := resFile.Resolve()
	if err != nil {
		return err
	}
	if resumePath != "" {
		data, err := os.ReadFile(resumePath)
		if err != nil {
			return fmt.Errorf("resume checkpoint %s: %v (is the path right? run without -resume to start fresh)",
				resumePath, err)
		}
		snap, err := core.DecodeSnapshot(data)
		if err != nil {
			return fmt.Errorf("resume checkpoint %s is not a usable snapshot (empty, truncated or corrupt): %v",
				resumePath, err)
		}
		spec.Resume = snap
		fmt.Printf("resuming %q from snapshot at exchange event %d\n", spec.Name, snap.Events)
	}
	if listen == "" && simFile.Serve != nil {
		listen = simFile.Serve.Listen
	}
	// window_events parameterizes the feedback controller and the
	// collector's rolling statistics; with neither in play it is dead
	// configuration worth flagging (target_acceptance on a non-feedback
	// trigger is rejected outright by the config layer).
	if simFile.WindowEvents != 0 && spec.TriggerName() != "feedback" &&
		listen == "" && ckptPath == "" {
		slog.Warn("window_events is set but nothing consumes it (no feedback trigger, no -listen, no -checkpoint)")
	}

	// The flight recorder rides along whenever someone can read it: the
	// -trace file at exit, or GET /trace on the live server. Recording
	// is bounded and touches neither the RNG nor the virtual clock, so
	// the traced run is bit-identical to an untraced one.
	var tracer *trace.Recorder
	if tracePath != "" || listen != "" {
		tracer = trace.New(0)
		spec.Tracer = tracer
	}
	if tracePath != "" {
		defer func() {
			data, err := tracer.ExportJSON()
			if err == nil {
				err = ckpt.WriteAtomic(tracePath, data)
			}
			if err != nil {
				slog.Error("writing trace", "path", tracePath, "error", err)
				return
			}
			slog.Info("trace written", "path", tracePath,
				"spans", tracer.Recorded(), "dropped", tracer.Dropped())
		}()
	}

	// The event bus and collector power the live endpoints, the
	// checkpoint-embedded statistics and the respace planner's measured
	// acceptance profile; without any consumer the run stays bus-free.
	var col *analysis.Collector
	if listen != "" || ckptPath != "" || spec.Respace != nil {
		spec.Bus = core.NewBus()
		colCfg := analysis.ConfigFromSpec(spec)
		colCfg.WindowEvents = simFile.WindowEvents
		col = analysis.New(colCfg)
		col.Attach(spec.Bus, analysis.RunBuffer(spec))
		if spec.Resume != nil {
			if len(spec.Resume.Analysis) > 0 {
				if err := col.Restore(spec.Resume.Analysis); err != nil {
					return fmt.Errorf("resume checkpoint %s: %v", resumePath, err)
				}
			} else {
				// No collector ran before the snapshot: continue the
				// event clock and slot baseline from the checkpoint so
				// walks are not measured against the fresh-run identity.
				if err := col.SeedResume(spec.Resume); err != nil {
					return fmt.Errorf("resume checkpoint %s: %v", resumePath, err)
				}
				slog.Warn("checkpoint carries no analysis state; statistics cover the resumed portion only")
			}
		}
	}
	// The respace planner re-fits saturated ladders from the collector's
	// measured per-pair acceptance; ToSpec left the field nil because
	// the collector did not exist yet.
	if spec.Respace != nil {
		spec.Respace.Planner = respace.NewPlanner(col)
	}

	triggerName := spec.TriggerName()
	feedback, _ := spec.Trigger.(*core.FeedbackTrigger)

	var state atomic.Value // core.RunState names: "pending" ... "cancelled"
	state.Store("pending")
	// The constructed simulation, stored by OnStart: the status closure
	// and the final summary read its mutex-guarded respace accessors.
	var simPtr atomic.Pointer[core.Simulation]
	var runFailure atomic.Value
	runFailure.Store("")
	var server *serve.Server
	if listen != "" {
		server = serve.New(col, func() serve.RunStatus {
			st := serve.RunStatus{
				Name:            spec.Name,
				Engine:          simFile.Engine,
				Trigger:         triggerName,
				State:           state.Load().(string),
				Replicas:        spec.Replicas(),
				Cores:           pilotSpec.Cores,
				CyclesTarget:    spec.Cycles,
				ExchangeWorkers: spec.ExchangeWorkers,
				HistoryTail:     spec.HistoryTail,
				BusPublished:    spec.Bus.Published(),
				Error:           runFailure.Load().(string),
			}
			if feedback != nil {
				// ControllerStatus is mutex-guarded inside the trigger,
				// so the live scrape is race-free against the dispatcher.
				st.Feedback = feedback.ControllerStatus()
			}
			if rs := spec.Respace; rs != nil {
				respaceSt := &serve.RespaceStatus{
					Enabled:    true,
					AfterSteps: rs.AfterSteps,
					MaxRefits:  rs.MaxRefits,
				}
				if sim := simPtr.Load(); sim != nil {
					respaceSt.Refits = sim.RefitCounts()
					respaceSt.Ladders = sim.LadderValues()
					respaceSt.History = sim.RespaceHistory()
				}
				st.Respace = respaceSt
			}
			return st
		})
		server.SetTracer(tracer)
		if simFile.Serve != nil && simFile.Serve.Pprof {
			server.EnablePprof()
		}
		addr, err := server.Start(listen)
		if err != nil {
			return err
		}
		fmt.Printf("status server listening on http://%s (/status /stats /metrics /healthz /trace)\n", addr)
	}

	if ckptPath != "" {
		if ckptEvery < 1 {
			ckptEvery = 1
		}
		spec.SnapshotEvery = ckptEvery
		spec.OnSnapshot = func(sn *core.Snapshot) {
			if col != nil {
				if data, err := col.EncodeState(); err == nil {
					sn.Analysis = data
				} else {
					slog.Error("encoding analysis state", "error", err)
				}
			}
			data, err := sn.Encode()
			if err != nil {
				slog.Error("encoding checkpoint", "error", err)
				return
			}
			if err := ckpt.WriteAtomic(ckptPath, data); err != nil {
				slog.Error("writing checkpoint", "path", ckptPath, "error", err)
			}
		}
	}
	// SIGINT/SIGTERM cancels through the dispatcher's context path: the
	// run stops at the next exchange boundary, drains its in-flight
	// segments and (with -checkpoint) leaves a resumable final snapshot.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, err := bench.Run(bench.RunParams{
		Spec:          spec,
		Cluster:       machine,
		PilotCores:    pilotSpec.Cores,
		PilotWalltime: pilotSpec.Walltime,
		Pilots:        pilotSpec.Pilots,
		Chaos:         pilotSpec.Chaos,
		NewEngine: func(seed int64) core.Engine {
			return engines.NewNamedVirtual(simFile.Engine, simFile.Atoms, seed)
		},
		Seed:    spec.Seed,
		Context: ctx,
		OnStart: func(sim *core.Simulation) {
			simPtr.Store(sim)
			state.Store("running")
		},
	})
	if errors.Is(err, core.ErrRunCancelled) {
		state.Store("cancelled")
		if report != nil {
			fmt.Print(report.String())
		}
		if ckptPath != "" {
			fmt.Printf("cancelled; resume with -resume %s\n", ckptPath)
		}
		if server != nil {
			_ = server.Close()
		}
		return err
	}
	if err != nil {
		// A failed run must exit non-zero promptly even with a listener
		// active — unattended invocations (cron, CI) would otherwise
		// hang on a signal that never comes.
		state.Store("failed")
		runFailure.Store(err.Error())
		if server != nil {
			_ = server.Close()
		}
		return err
	}
	state.Store("completed")
	fmt.Print(report.String())
	d := report.Decompose()
	fmt.Printf("Eq.1 decomposition per cycle: T_MD=%.1fs T_EX=%.1fs T_data=%.2fs T_RepEx=%.2fs T_RP=%.2fs\n",
		d.TMD, d.TEX, d.TData, d.TRepEx, d.TRP)
	for dim := range spec.Dims {
		tmd, tex := report.DimDecompose(dim)
		fmt.Printf("  dim %d (%s): MD %.1fs, exchange %.1fs, acceptance %.1f%%\n",
			dim, spec.Dims[dim].Type, tmd, tex, 100*report.AcceptanceRatioByDim(dim))
	}
	if col != nil {
		stats := col.Snapshot()
		fmt.Printf("mixing: %d round trips (mean %.1f events), %.0f%% of replicas traversed the full ladder\n",
			stats.RoundTrips, stats.MeanRoundTripEvents, 100*stats.FullTraversalFraction)
		for d, pairs := range stats.AcceptanceWindow {
			var attempted uint64
			for _, p := range pairs {
				attempted += p.Attempted
			}
			// A dimension with no buffered outcomes (single window, or
			// no attempts yet) has no ratio — 0.0% would read as
			// collapsed acceptance.
			if attempted == 0 {
				continue
			}
			fmt.Printf("  dim %d rolling acceptance (last <=%d outcomes/pair): %.1f%%\n",
				d, stats.WindowEvents, 100*analysis.WeightedRatio(pairs))
		}
		if stats.BusDropped > 0 {
			slog.Warn("collector lost events to ring overflow; statistics are partial",
				"dropped", stats.BusDropped)
		}
	}
	if feedback != nil {
		for _, ds := range feedback.ControllerStatus() {
			fmt.Printf("  feedback dim %d: target %.2f, measured %.2f over %d outcomes, window %.1fs, min-ready %d\n",
				ds.Dim, ds.Target, ds.Measured, ds.Outcomes, ds.Window, ds.MinReady)
			if ds.Saturated {
				fmt.Printf("    SATURATED: target unreachable at the window clamp — revisit the dim-%d ladder spacing\n", ds.Dim)
			}
		}
	}
	if sim := simPtr.Load(); sim != nil {
		for _, rec := range sim.RespaceHistory() {
			fmt.Printf("  RESPACED dim %d (refit %d) at event %d: %s -> %s\n",
				rec.Dim, rec.Refit, rec.Event, fmtLadder(rec.Old), fmtLadder(rec.New))
		}
	}
	if server != nil {
		fmt.Println("run finished; still serving — interrupt (Ctrl-C) to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		_ = server.Close()
	}
	return nil
}

// fmtLadder renders a value ladder compactly for the final summary,
// e.g. "[273 278.5 … 373]".
func fmtLadder(values []float64) string {
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = strconv.FormatFloat(v, 'g', 6, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
