// Command mdrun runs the built-in Go MD engine directly on the alanine
// dipeptide model: minimisation, equilibration and a production segment
// with Langevin dynamics, printing energy and backbone-torsion series.
// It is the standalone equivalent of running sander/namd2 by hand.
//
// Usage:
//
//	mdrun -steps 5000 -temp 300 -salt 0.15 -dt 0.001 -sample 50
//	mdrun -steps 2000 -umbrella-phi 60 -k 65.65
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/md"
)

func main() {
	steps := flag.Int("steps", 5000, "production MD steps")
	temp := flag.Float64("temp", 300, "temperature (K)")
	salt := flag.Float64("salt", 0, "salt concentration (M), Debye-Hückel screening")
	dt := flag.Float64("dt", 0.001, "time step (ps)")
	gamma := flag.Float64("gamma", 5, "Langevin friction (1/ps)")
	sample := flag.Int("sample", 50, "sampling stride (steps)")
	uPhi := flag.Float64("umbrella-phi", 0, "umbrella centre on phi (degrees); active with -k > 0")
	uPsi := flag.Float64("umbrella-psi", 0, "umbrella centre on psi (degrees); active with -k > 0")
	k := flag.Float64("k", 0, "umbrella force constant (kcal/mol/rad²)")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	if err := run(*steps, *temp, *salt, *dt, *gamma, *sample, *uPhi, *uPsi, *k, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "mdrun:", err)
		os.Exit(1)
	}
}

func run(steps int, temp, salt, dt, gamma float64, sample int, uPhi, uPsi, k float64, seed int64) error {
	top, st := md.BuildAlanineDipeptide()
	sys, err := md.NewSystem(top, md.Box{}, 0)
	if err != nil {
		return err
	}
	prm := md.Params{TemperatureK: temp, SaltM: salt}
	if k > 0 {
		phi, psi := md.PhiPsiIndices(top)
		prm.Restraints = append(prm.Restraints,
			md.TorsionRestraint{Dihedral: phi, Center: md.Rad(uPhi), K: k},
			md.TorsionRestraint{Dihedral: psi, Center: md.Rad(uPsi), K: k})
	}
	if err := prm.Validate(); err != nil {
		return err
	}

	e0 := sys.Energy(st, prm).Potential()
	eMin := md.Minimize(sys, st, prm, 3000, 1e-3)
	fmt.Printf("minimisation: %.2f -> %.2f kcal/mol\n", e0, eMin)

	rng := rand.New(rand.NewSource(seed))
	md.InitVelocities(sys, st, temp, rng)
	integ := md.NewLangevin(dt, gamma, seed+1)

	// Equilibration.
	integ.Step(sys, st, prm, steps/5)
	fmt.Printf("equilibrated %d steps at %.0f K (instantaneous T = %.1f K)\n",
		steps/5, temp, sys.InstantaneousTemperature(st))

	// Production with sampling.
	tr := md.RunSegment(sys, st, prm, integ, steps, sample)
	fmt.Printf("%-10s %-12s %-12s %-10s %-10s\n", "step", "Epot", "Ekin", "phi(deg)", "psi(deg)")
	for i := range tr.Potential {
		step := (i + 1) * sample
		if step > steps {
			step = steps
		}
		fmt.Printf("%-10d %-12.3f %-12.3f %-10.1f %-10.1f\n",
			step, tr.Potential[i], tr.Kinetic[i], md.Deg(tr.Phi[i]), md.Deg(tr.Psi[i]))
	}
	e := sys.Energy(st, prm)
	fmt.Printf("final decomposition: bond=%.2f angle=%.2f dihedral=%.2f LJ=%.2f coul=%.2f restraint=%.2f total=%.2f kcal/mol\n",
		e.Bond, e.Angle, e.Dihedral, e.LJ, e.Coulomb, e.Restraint, e.Potential())
	return nil
}
