// async_adaptive: the asynchronous RE pattern under adverse conditions —
// more replicas than cores (Execution Mode II) on a small commodity
// cluster, with fault injection and the relaunch policy. This is the
// scenario the paper motivates in §2.1: heterogeneous performance,
// failures, and fluctuating resources, where the global barrier of
// synchronous REMD would stall everything.
//
// The same workload is run with both patterns for comparison.
package main

import (
	"fmt"
	"log"

	repex "repro"
)

func main() {
	run := func(pattern repex.Pattern) *repex.Report {
		spec := &repex.Spec{
			Name:            "async-adaptive",
			Dims:            []repex.Dimension{{Type: repex.Temperature, Values: repex.GeometricTemperatures(273, 373, 48)}},
			Pattern:         pattern,
			CoresPerReplica: 1,
			StepsPerCycle:   6000,
			Cycles:          4,
			FaultPolicy:     repex.FaultRelaunch,
			Seed:            13,
		}
		if pattern == repex.PatternAsynchronous {
			spec.AsyncWindow = 90 // fixed real-time transition criterion
		}
		// A small 2-node cluster: 16 cores for 48 replicas -> Mode II,
		// with a 2% per-task failure probability.
		machine := repex.Small(2, 8)
		machine.FailureProb = 0.02
		report, err := repex.RunVirtual(spec, machine, 16, repex.AmberSander, 2881, 13)
		if err != nil {
			log.Fatal(err)
		}
		return report
	}

	for _, pattern := range []repex.Pattern{repex.PatternSynchronous, repex.PatternAsynchronous} {
		report := run(pattern)
		fmt.Print(report.String())
		fmt.Printf("  exchange events: %d, relaunched tasks: %d, dropped replicas: %d\n\n",
			report.ExchangeEvents, report.Relaunches, report.Dropped)
	}
	fmt.Println("48 replicas ran on 16 cores (Execution Mode II): the replica count")
	fmt.Println("is decoupled from the allocation, and injected task failures were")
	fmt.Println("absorbed by relaunching without restarting the simulation.")
}
