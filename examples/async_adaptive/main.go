// async_adaptive: the asynchronous RE family under adverse conditions —
// more replicas than cores (Execution Mode II) on a small commodity
// cluster, with fault injection and the relaunch policy. This is the
// scenario the paper motivates in §2.1: heterogeneous performance,
// failures, and fluctuating resources, where the global barrier of
// synchronous REMD would stall everything.
//
// The same workload runs under four exchange-trigger policies — the
// synchronous barrier, the fixed real-time window, the ready-count
// criterion, and the adaptive window that tracks MD-time dispersion —
// showing that a pattern is just a swappable policy on the same
// event-driven dispatcher.
package main

import (
	"fmt"
	"log"

	repex "repro"
)

func main() {
	run := func(name string, trigger repex.Trigger) *repex.Report {
		spec := &repex.Spec{
			Name:            "async-adaptive-" + name,
			Dims:            []repex.Dimension{{Type: repex.Temperature, Values: repex.GeometricTemperatures(273, 373, 48)}},
			Pattern:         repex.PatternAsynchronous,
			Trigger:         trigger,
			CoresPerReplica: 1,
			StepsPerCycle:   6000,
			Cycles:          4,
			FaultPolicy:     repex.FaultRelaunch,
			Seed:            13,
		}
		if _, ok := trigger.(*repex.BarrierTrigger); ok {
			spec.Pattern = repex.PatternSynchronous
		}
		// A small 2-node cluster: 16 cores for 48 replicas -> Mode II,
		// with a 2% per-task failure probability.
		machine := repex.Small(2, 8)
		machine.FailureProb = 0.02
		report, err := repex.RunVirtual(spec, machine, 16, repex.AmberSander, 2881, 13)
		if err != nil {
			log.Fatal(err)
		}
		return report
	}

	for _, tc := range []struct {
		name    string
		trigger repex.Trigger
	}{
		{"barrier", repex.NewBarrierTrigger()},
		{"window", repex.NewWindowTrigger(90, 0)},
		{"count", repex.NewCountTrigger(8)},
		{"adaptive", repex.NewAdaptiveTrigger(90)},
	} {
		report := run(tc.name, tc.trigger)
		fmt.Print(report.String())
		fmt.Printf("  exchange events: %d, relaunched tasks: %d, dropped replicas: %d\n\n",
			report.ExchangeEvents, report.Relaunches, report.Dropped)
	}
	fmt.Println("48 replicas ran on 16 cores (Execution Mode II) under four exchange")
	fmt.Println("triggers: the replica count is decoupled from the allocation, injected")
	fmt.Println("task failures were absorbed by relaunching, and each trigger criterion")
	fmt.Println("is a small policy plugged into the same event-driven dispatcher.")
}
