// tsu_remd: the paper's headline capability — a three-dimensional
// TSU-REMD simulation (temperature × salt concentration × umbrella
// sampling) with 6x4x8 = 192 replicas, executed in virtual time on a
// model of the SuperMIC supercomputer through the pilot-job runtime.
//
// The run demonstrates:
//   - multi-dimensional exchange with arbitrary ordering (here T, S, U),
//   - the per-dimension cost asymmetry (salt exchange needs extra
//     single-point-energy tasks and dominates the exchange time),
//   - the Eq. 1 cycle-time decomposition the paper reports.
package main

import (
	"fmt"
	"log"

	repex "repro"
)

func main() {
	spec := &repex.Spec{
		Name: "tsu-192",
		Dims: []repex.Dimension{
			{Type: repex.Temperature, Values: repex.GeometricTemperatures(273, 373, 6)},
			{Type: repex.Salt, Values: []float64{0.05, 0.15, 0.45, 1.35}},
			{Type: repex.Umbrella, Values: repex.UniformWindows(8), Torsion: "phi", K: repex.UmbrellaK002},
		},
		Pattern:         repex.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000, // the paper's exchange attempt interval
		Cycles:          4,
		Seed:            7,
	}

	// Execution Mode I: one core per replica, all concurrent.
	report, err := repex.RunVirtual(spec, repex.SuperMIC(), spec.Replicas(),
		repex.AmberSander, 2881, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.String())
	d := report.Decompose()
	fmt.Printf("\nEq.1 decomposition (per cycle):\n")
	fmt.Printf("  T_MD        = %8.1f s\n", d.TMD)
	fmt.Printf("  T_EX        = %8.1f s\n", d.TEX)
	fmt.Printf("  T_data      = %8.2f s\n", d.TData)
	fmt.Printf("  T_RepEx-over= %8.2f s\n", d.TRepEx)
	fmt.Printf("  T_RP-over   = %8.2f s\n", d.TRP)

	fmt.Printf("\nper-dimension exchange cost (the S dimension dominates):\n")
	for dim, name := range []string{"temperature", "salt", "umbrella"} {
		_, tex := report.DimDecompose(dim)
		fmt.Printf("  %-12s %8.1f s   acceptance %.1f%%\n",
			name, tex, 100*report.AcceptanceRatioByDim(dim))
	}
}
