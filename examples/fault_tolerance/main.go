// Command fault_tolerance demonstrates the resilient execution layer:
//
//  1. a walltime-bounded pilot expires mid-run, its executing MD
//     segments fail with a resource-loss error, the dispatcher resubmits
//     them without blocking healthy replicas, and the failover runtime
//     provisions a fresh pilot (paying the batch queue again);
//  2. the run writes a checkpoint every exchange event, is "killed", and
//     a second process resumes from the snapshot — reproducing the
//     uninterrupted run's slot history exactly.
//
// Everything runs in virtual time: hours of simulated supercomputer
// time finish in milliseconds.
package main

import (
	"fmt"
	"hash/fnv"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/pilot"
	"repro/internal/sim"
)

func spec() *core.Spec {
	return &core.Spec{
		Name:            "fault-demo",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 8)}},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          4,
		FaultPolicy:     core.FaultRelaunch,
		Seed:            21,
	}
}

// run executes the spec on a walltime-bounded failover runtime,
// optionally resuming from a snapshot, and returns the report plus every
// checkpoint captured.
func run(sp *core.Spec, walltime float64) (*core.Report, []*core.Snapshot, int) {
	var snaps []*core.Snapshot
	sp.SnapshotEvery = 1
	sp.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }

	cfg := cluster.SuperMIC()
	cfg.ExecJitter = 0
	cfg.FailureProb = 0

	env := sim.NewEnv()
	cl := cluster.MustNew(env, cfg, sp.Seed+1)
	eng := engines.NewAmberVirtual(2881, sp.Seed+2)
	var rt *pilot.Runtime
	var report *core.Report
	var runErr error
	env.Go("emm", func(p *sim.Proc) {
		var err error
		rt, err = pilot.NewFailoverRuntime(cl, pilot.Description{Cores: 8, Walltime: walltime}, p)
		if err != nil {
			runErr = err
			return
		}
		simu, err := core.New(sp, eng, rt)
		if err != nil {
			runErr = err
			return
		}
		report, runErr = simu.Run()
	})
	env.Run()
	if runErr != nil {
		log.Fatal(runErr)
	}
	return report, snaps, rt.Relaunched()
}

func fingerprint(history [][]int) uint64 {
	f := fnv.New64a()
	for _, row := range history {
		for _, s := range row {
			fmt.Fprintf(f, "%d,", s)
		}
	}
	return f.Sum64()
}

func main() {
	// Part 1: pilot walltime failover. One MD segment is ~140 virtual
	// seconds; a 250 s walltime kills the pilot inside the second
	// segment, and the run still completes with no replica lost.
	rep, _, relaunched := run(spec(), 250)
	fmt.Println("— walltime-bounded pilots with failover —")
	fmt.Print(rep)
	fmt.Printf("pilot failovers: %d, segment relaunches: %d, replicas lost: %d\n\n",
		relaunched, rep.Relaunches, rep.Dropped)

	// Part 2: checkpoint/restart. Run uninterrupted (generous walltime),
	// keep the snapshot taken after exchange event 2, then resume a
	// fresh simulation from it and compare histories.
	full, snaps, _ := run(spec(), 0)
	data, err := snaps[1].Encode() // snapshot after event 2
	if err != nil {
		log.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		log.Fatal(err)
	}
	resumedSpec := spec()
	resumedSpec.Resume = snap
	resumed, _, _ := run(resumedSpec, 0)

	fmt.Println("— checkpoint/restart —")
	fmt.Printf("snapshot: %d bytes at exchange event %d (trigger %q)\n",
		len(data), snap.Events, snap.Trigger)
	fmt.Printf("uninterrupted history: %d rows, fingerprint %#x\n",
		len(full.SlotHistory), fingerprint(full.SlotHistory))
	fmt.Printf("resumed history:       %d rows, fingerprint %#x\n",
		len(resumed.SlotHistory), fingerprint(resumed.SlotHistory))
	if fingerprint(full.SlotHistory) == fingerprint(resumed.SlotHistory) {
		fmt.Println("resume is bit-exact: the killed run lost no science")
	} else {
		log.Fatal("resumed run diverged")
	}
}
