// Observability walkthrough: run a multi-dimensional REMD simulation
// with the online analysis subsystem attached and inspect it over HTTP,
// exactly as a monitoring stack would.
//
// The pieces, bottom to top:
//
//  1. Spec.Bus — the dispatcher publishes typed events (MD completions,
//     exchange outcomes, fault actions) on a non-blocking bus;
//  2. analysis.Collector — subscribes and maintains per-pair acceptance
//     ratios, replica random walks with round-trip times, the mixing
//     metric and overhead histograms;
//  3. serve.Server — exposes GET /status, /stats and /metrics
//     (Prometheus text format) from the collector.
//
// The same wiring is available from the command line:
//
//	go run ./cmd/repex -sim configs/tsu_supermic.json \
//	    -res configs/supermic_144.json -listen 127.0.0.1:8080
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync/atomic"

	repex "repro"
	"repro/internal/analysis"
	"repro/internal/serve"
)

func main() {
	// A 24-replica T×U simulation, large enough for interesting mixing.
	spec := &repex.Spec{
		Name: "observed-tu",
		Dims: []repex.Dimension{
			{Type: repex.Temperature, Values: repex.GeometricTemperatures(273, 373, 6)},
			{Type: repex.Umbrella, Values: repex.UniformWindows(4), Torsion: "phi", K: repex.UmbrellaK002},
		},
		Pattern:         repex.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          6,
		Seed:            7,
	}

	// 1. Attach the event bus.
	spec.Bus = repex.NewBus()

	// 2. Subscribe an online collector, with a ring sized to hold the
	// whole run's event stream (it is only drained on demand).
	col := analysis.New(analysis.ConfigFromSpec(spec))
	col.Attach(spec.Bus, analysis.RunBuffer(spec))

	// 3. Serve it. Port 0 picks a free port; cmd/repex's -listen flag
	// does the same wiring. The HTTP handlers run concurrently with the
	// simulation, so anything the status closure reads must be
	// thread-safe — hence the atomic state value.
	var state atomic.Value
	state.Store("running")
	srv := serve.New(col, func() serve.RunStatus {
		return serve.RunStatus{
			Name: spec.Name, Engine: "amber", Trigger: spec.TriggerName(),
			State: state.Load().(string), Replicas: spec.Replicas(),
			CyclesTarget: spec.Cycles, BusPublished: spec.Bus.Published(),
		}
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving on http://%s\n\n", addr)

	// Run in virtual time: weeks of SuperMIC time in milliseconds.
	report, err := repex.RunVirtual(spec, repex.SuperMIC(), 24, repex.AmberSander, 2881, 7)
	if err != nil {
		log.Fatal(err)
	}
	state.Store("completed")
	fmt.Print(report.String())

	// What a dashboard would read.
	stats := col.Snapshot()
	fmt.Println("\nper-pair acceptance ratios:")
	for d, pairs := range stats.Acceptance {
		fmt.Printf("  dim %d (%s):", d, spec.Dims[d].Type)
		for _, p := range pairs {
			fmt.Printf(" %.2f", p.Ratio())
		}
		fmt.Println()
	}
	fmt.Printf("round trips: %d (mean %.1f events); full-ladder traversal: %.0f%% of replicas\n",
		stats.RoundTrips, stats.MeanRoundTripEvents, 100*stats.FullTraversalFraction)

	// And what Prometheus would scrape.
	for _, path := range []string{"/status", "/metrics"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nGET %s (%s):\n%s\n", path, resp.Status, excerpt(string(body), 12))
	}
}

// excerpt returns the first n lines of s.
func excerpt(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = append(lines[:n], "...")
	}
	return strings.Join(lines, "\n")
}
