// ladder_respace: acting on the saturation diagnostic. A deliberately
// mis-spaced temperature ladder — seven rungs crowded into 273–291 K
// and one 82 K cliff to 373 K — cannot hold any acceptance target: the
// crowded pairs accept nearly everything, the cliff pair nearly
// nothing, and no exchange-window length changes that. The feedback
// trigger's controller detects this (saturation), and with
// Spec.Respace armed the run re-fits the ladder from the measured
// per-pair acceptance profile and continues on the new grid.
//
// The program runs the same workload twice: first with the diagnostic
// only (the run ends saturated, still mis-spaced), then with respacing
// enabled — the RespaceEvent on the bus carries the old and new rungs,
// and the closing per-pair table shows the acceptance profile
// flattened around the controller's target.
package main

import (
	"fmt"
	"log"

	repex "repro"
	"repro/internal/analysis"
	"repro/internal/respace"
)

// misSpaced is the broken ladder: gaps of 3 K, then a cliff.
func misSpaced() []float64 {
	return []float64{273, 276, 279, 282, 285, 288, 291, 373}
}

const target = 0.35

// run executes the workload, with or without respacing, and returns
// the trigger (controller status), the final statistics, and every
// RespaceEvent the run published.
func run(withRespace bool) (*repex.FeedbackTrigger, analysis.Stats, []repex.RespaceEvent) {
	tr := repex.NewFeedbackTrigger(45)
	tr.Target = target
	tr.WindowEvents = 12
	spec := &repex.Spec{
		Name:            "ladder-respace",
		Dims:            []repex.Dimension{{Type: repex.Temperature, Values: misSpaced()}},
		Pattern:         repex.PatternAsynchronous,
		Trigger:         tr,
		CoresPerReplica: 1,
		StepsPerCycle:   2000,
		Cycles:          40,
		AsyncWindow:     45,
		Seed:            17,
	}
	spec.Bus = repex.NewBus()
	col := analysis.New(analysis.ConfigFromSpec(spec))
	col.Attach(spec.Bus, analysis.RunBuffer(spec))
	sub := spec.Bus.Subscribe(4096)
	if withRespace {
		// AfterSteps counts consecutive saturated controller steps
		// before the grid moves; the planner reads the same collector
		// the statistics below come from.
		spec.Respace = &repex.RespaceSpec{
			AfterSteps: 8,
			MaxRefits:  2,
			Planner:    respace.NewPlanner(col),
		}
	}
	machine := repex.Small(2, 8)
	if _, err := repex.RunVirtual(spec, machine, 16, repex.AmberSander, 2881, spec.Seed); err != nil {
		log.Fatal(err)
	}
	var refits []repex.RespaceEvent
	for _, ev := range sub.Drain(nil) {
		if re, ok := ev.(repex.RespaceEvent); ok {
			refits = append(refits, re)
		}
	}
	return tr, col.Snapshot(), refits
}

// pairTable prints each neighbour pair's rolling acceptance against
// its rung gap.
func pairTable(values []float64, pairs []analysis.PairStat) {
	for i, ps := range pairs {
		bar := ""
		for n := 0; n < int(ps.Ratio()*40); n++ {
			bar += "#"
		}
		fmt.Printf("  %5.1fK - %5.1fK (gap %5.1fK)  %5.1f%%  %s\n",
			values[i], values[i+1], values[i+1]-values[i], 100*ps.Ratio(), bar)
	}
}

func main() {
	fmt.Println("mis-spaced ladder, diagnostic only:")
	tr, stats, _ := run(false)
	pairTable(misSpaced(), stats.AcceptanceWindow[0])
	for _, ds := range tr.ControllerStatus() {
		fmt.Printf("  controller: target %.2f, measured %.2f, saturated=%v\n",
			ds.Target, ds.Measured, ds.Saturated)
	}

	fmt.Println("\nsame ladder with respace enabled:")
	tr, stats, refits := run(true)
	if len(refits) == 0 {
		log.Fatal("expected at least one refit")
	}
	for _, re := range refits {
		fmt.Printf("  refit %d at event %d:\n    old %7.1f\n    new %7.1f\n",
			re.Refit, re.Event, re.Old, re.New)
	}
	final := refits[len(refits)-1].New
	fmt.Println("  per-pair rolling acceptance on the re-fitted grid:")
	pairTable(final, stats.AcceptanceWindow[0])
	for _, ds := range tr.ControllerStatus() {
		fmt.Printf("  controller: target %.2f, measured %.2f, saturated=%v\n",
			ds.Target, ds.Measured, ds.Saturated)
	}

	fmt.Println("\nthe cliff pair's near-zero acceptance held the whole difficulty")
	fmt.Println("budget; equal-difficulty re-fitting subdivides it and spreads the")
	fmt.Println("crowded rungs, letting the controller reach its set point")
}
