// feedback_trigger: closed-loop acceptance control. The same jittery
// T-REMD workload runs under four exchange-trigger policies — the
// synchronous barrier, the fixed real-time window, the MD-dispersion
// adaptive window, and the acceptance-targeting feedback controller —
// and the achieved neighbour-pair acceptance ratios are compared.
//
// The feedback policy consumes the same per-pair statistics the
// observability layer exposes on /stats and /metrics: the dispatcher
// feeds it every exchange event's outcomes, it keeps a rolling window
// of the last N true-neighbour decisions, and proportional control
// widens/narrows its exchange window to hold the target ratio. This
// turns the online statistics of the analysis subsystem from passive
// reporting into an actuator.
package main

import (
	"fmt"
	"log"

	repex "repro"
	"repro/internal/analysis"
)

func main() {
	const target = 0.5

	run := func(name string, trigger repex.Trigger) (*repex.Report, analysis.Stats) {
		spec := &repex.Spec{
			Name:            "feedback-" + name,
			Dims:            []repex.Dimension{{Type: repex.Temperature, Values: repex.GeometricTemperatures(273, 373, 12)}},
			Pattern:         repex.PatternAsynchronous,
			Trigger:         trigger,
			CoresPerReplica: 1,
			StepsPerCycle:   6000,
			Cycles:          30,
			Seed:            7,
		}
		if _, ok := trigger.(*repex.BarrierTrigger); ok {
			spec.Pattern = repex.PatternSynchronous
		}
		spec.Bus = repex.NewBus()
		col := analysis.New(analysis.ConfigFromSpec(spec))
		col.Attach(spec.Bus, analysis.RunBuffer(spec))
		machine := repex.SuperMIC()
		machine.ExecJitter = 0.08
		report, err := repex.RunVirtual(spec, machine, 12, repex.AmberSander, 2881, 7)
		if err != nil {
			log.Fatal(err)
		}
		return report, col.Snapshot()
	}

	feedback := repex.NewFeedbackTrigger(100)
	feedback.Target = target

	fmt.Printf("same workload, four triggers; feedback targets %.0f%% acceptance\n\n", 100*target)
	fmt.Printf("%-10s %7s %12s %12s %10s\n", "trigger", "events", "cumulative", "rolling", "makespan")
	for _, tc := range []struct {
		name    string
		trigger repex.Trigger
	}{
		{"barrier", repex.NewBarrierTrigger()},
		{"window", repex.NewWindowTrigger(100, 0)},
		{"adaptive", repex.NewAdaptiveTrigger(100)},
		{"feedback", feedback},
	} {
		report, stats := run(tc.name, tc.trigger)
		fmt.Printf("%-10s %7d %11.1f%% %11.1f%% %9.0fs\n",
			tc.name, report.ExchangeEvents,
			100*analysis.WeightedRatio(stats.Acceptance[0]),
			100*analysis.WeightedRatio(stats.AcceptanceWindow[0]),
			report.Makespan())
	}

	ratio, outcomes := feedback.Acceptance()
	fmt.Printf("\nfeedback controller: measured %.1f%% over its last %d outcomes, ", 100*ratio, outcomes)
	fmt.Printf("exchange window settled at %.1fs\n", feedback.Window())
	fmt.Println("\nbarrier/window/adaptive schedule exchanges blind to the quantity REMD")
	fmt.Println("is judged by; the feedback policy closes the loop on the acceptance")
	fmt.Println("ratio itself, holding it near the target without retuning the window")
	fmt.Println("by hand. The rolling column is the last-N-outcomes view the /stats")
	fmt.Println("and /metrics endpoints export (repex_acceptance_ratio_window).")

	// Part 2: shared vs per-dimension control on a 2-dim T×U grid. The
	// temperature ladder's natural acceptance sits far above the
	// umbrella ladder's, so one blended controller cannot satisfy both;
	// per-dimension PI control steers each ladder's own (window,
	// MinReady) pair against its own set point.
	perDimTargets := []float64{0.35, 0.18}
	fmt.Printf("\n--- 2-dim T×U grid: shared vs per-dimension control ---\n")
	runTU := func(name string, tr *repex.FeedbackTrigger) {
		spec := &repex.Spec{
			Name: "feedback-tu-" + name,
			Dims: []repex.Dimension{
				{Type: repex.Temperature, Values: repex.GeometricTemperatures(273, 373, 8)},
				{Type: repex.Umbrella, Values: repex.UniformWindows(8), Torsion: "phi", K: repex.UmbrellaK002},
			},
			Pattern:         repex.PatternAsynchronous,
			Trigger:         tr,
			CoresPerReplica: 1,
			StepsPerCycle:   6000,
			Cycles:          60,
			Seed:            42,
		}
		spec.Bus = repex.NewBus()
		col := analysis.New(analysis.ConfigFromSpec(spec))
		col.Attach(spec.Bus, analysis.RunBuffer(spec))
		machine := repex.SuperMIC()
		machine.ExecJitter = 0.08
		if _, err := repex.RunVirtual(spec, machine, 64, repex.AmberSander, 2881, 42); err != nil {
			log.Fatal(err)
		}
		stats := col.Snapshot()
		fmt.Printf("%s control:\n", name)
		for _, ds := range tr.ControllerStatus() {
			sat := ""
			if ds.Saturated {
				sat = "  SATURATED (ladder spacing?)"
			}
			fmt.Printf("  dim %d: target %.2f, rolling %.3f, window %.0fs, min-ready %d%s\n",
				ds.Dim, ds.Target, analysis.WeightedRatio(stats.AcceptanceWindow[ds.Dim]),
				ds.Window, ds.MinReady, sat)
		}
	}

	shared := repex.NewFeedbackTrigger(100)
	shared.Target = 0.3 // one blended set point for both ladders
	shared.WindowEvents = 32
	runTU("shared", shared)

	perDim := repex.NewFeedbackTrigger(100)
	perDim.Targets = perDimTargets
	perDim.WindowEvents = 32
	runTU("per-dim", perDim)

	fmt.Println("\nunder shared control both dimensions chase one set point with")
	fmt.Println("independent windows but a single target; per-dimension targets let")
	fmt.Println("the T ladder run hot while the U ladder holds its own, and a ladder")
	fmt.Println("that cannot reach its target raises the saturation diagnostic")
	fmt.Println("(repex_feedback_saturated{dim} on /metrics) instead of parking.")
}
