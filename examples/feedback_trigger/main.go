// feedback_trigger: closed-loop acceptance control. The same jittery
// T-REMD workload runs under four exchange-trigger policies — the
// synchronous barrier, the fixed real-time window, the MD-dispersion
// adaptive window, and the acceptance-targeting feedback controller —
// and the achieved neighbour-pair acceptance ratios are compared.
//
// The feedback policy consumes the same per-pair statistics the
// observability layer exposes on /stats and /metrics: the dispatcher
// feeds it every exchange event's outcomes, it keeps a rolling window
// of the last N true-neighbour decisions, and proportional control
// widens/narrows its exchange window to hold the target ratio. This
// turns the online statistics of the analysis subsystem from passive
// reporting into an actuator.
package main

import (
	"fmt"
	"log"

	repex "repro"
	"repro/internal/analysis"
)

func main() {
	const target = 0.5

	run := func(name string, trigger repex.Trigger) (*repex.Report, analysis.Stats) {
		spec := &repex.Spec{
			Name:            "feedback-" + name,
			Dims:            []repex.Dimension{{Type: repex.Temperature, Values: repex.GeometricTemperatures(273, 373, 12)}},
			Pattern:         repex.PatternAsynchronous,
			Trigger:         trigger,
			CoresPerReplica: 1,
			StepsPerCycle:   6000,
			Cycles:          30,
			Seed:            7,
		}
		if _, ok := trigger.(*repex.BarrierTrigger); ok {
			spec.Pattern = repex.PatternSynchronous
		}
		spec.Bus = repex.NewBus()
		col := analysis.New(analysis.ConfigFromSpec(spec))
		col.Attach(spec.Bus, analysis.RunBuffer(spec))
		machine := repex.SuperMIC()
		machine.ExecJitter = 0.08
		report, err := repex.RunVirtual(spec, machine, 12, repex.AmberSander, 2881, 7)
		if err != nil {
			log.Fatal(err)
		}
		return report, col.Snapshot()
	}

	feedback := repex.NewFeedbackTrigger(100)
	feedback.Target = target

	fmt.Printf("same workload, four triggers; feedback targets %.0f%% acceptance\n\n", 100*target)
	fmt.Printf("%-10s %7s %12s %12s %10s\n", "trigger", "events", "cumulative", "rolling", "makespan")
	for _, tc := range []struct {
		name    string
		trigger repex.Trigger
	}{
		{"barrier", repex.NewBarrierTrigger()},
		{"window", repex.NewWindowTrigger(100, 0)},
		{"adaptive", repex.NewAdaptiveTrigger(100)},
		{"feedback", feedback},
	} {
		report, stats := run(tc.name, tc.trigger)
		fmt.Printf("%-10s %7d %11.1f%% %11.1f%% %9.0fs\n",
			tc.name, report.ExchangeEvents,
			100*analysis.WeightedRatio(stats.Acceptance[0]),
			100*analysis.WeightedRatio(stats.AcceptanceWindow[0]),
			report.Makespan())
	}

	ratio, outcomes := feedback.Acceptance()
	fmt.Printf("\nfeedback controller: measured %.1f%% over its last %d outcomes, ", 100*ratio, outcomes)
	fmt.Printf("exchange window settled at %.1fs\n", feedback.Window())
	fmt.Println("\nbarrier/window/adaptive schedule exchanges blind to the quantity REMD")
	fmt.Println("is judged by; the feedback policy closes the loop on the acceptance")
	fmt.Println("ratio itself, holding it near the target without retuning the window")
	fmt.Println("by hand. The rolling column is the last-N-outcomes view the /stats")
	fmt.Println("and /metrics endpoints export (repex_acceptance_ratio_window).")
}
