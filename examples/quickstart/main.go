// Quickstart: a 1D temperature replica-exchange simulation of alanine
// dipeptide with the real Go MD engine, run locally. This is the
// smallest complete use of the public API: build a Spec, run it, read
// the report.
package main

import (
	"fmt"
	"log"
	"runtime"

	repex "repro"
	"repro/internal/stats"
)

func main() {
	spec := &repex.Spec{
		Name: "quickstart-t-remd",
		// 8 temperature windows in geometric progression, the standard
		// T-REMD ladder.
		Dims: []repex.Dimension{{
			Type:   repex.Temperature,
			Values: repex.GeometricTemperatures(280, 360, 8),
		}},
		Pattern:         repex.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   300, // MD steps between exchange attempts
		Cycles:          4,
		Seed:            42,
	}

	report, err := repex.RunLocal(spec, runtime.NumCPU(), 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.String())
	fmt.Printf("temperature-exchange acceptance: %.1f%%\n",
		100*report.AcceptanceRatioByDim(0))
	for _, rec := range report.Records {
		fmt.Printf("cycle %d: %d/%d exchanges accepted\n",
			rec.Cycle, rec.Accepted, rec.Attempted)
	}

	// Mixing diagnostics: how well replicas traverse the ladder.
	mix, err := stats.AnalyzeMixing(report.SlotHistory, report.Replicas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ladder mixing: %d round trips, %.0f%% of slots visited, mean displacement %.2f slots/cycle\n",
		mix.RoundTrips, 100*mix.VisitedFraction, mix.MeanDisplacement)
}
