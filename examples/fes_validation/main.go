// fes_validation: the paper's §3.4 validation pipeline at reduced scale.
// A 3D T×U(φ)×U(ψ) replica-exchange simulation of alanine dipeptide runs
// with the real Go MD engine on local cores; the per-window trajectories
// are then unbiased with WHAM (the vFEP substitute) into one
// free-energy surface per temperature, reproducing Figure 4's layout.
//
// Higher temperatures visit more of the (φ, ψ) torus: compare the
// sampled coverage across the panels.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	opts := bench.DefaultValidationOptions()
	// Slightly deeper sampling than the defaults so the surfaces show
	// visible basin structure; the paper's full protocol is
	// 6 T x 8x8 U windows, 20000 steps x 90 cycles on 400 cores.
	opts.UWindows = 6
	opts.StepsPerCycle = 500
	opts.Cycles = 4

	res, tbl, err := bench.Fig4Validation(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl.String())
	fmt.Printf("replica grid: %d T x %d x %d U = %d replicas; acceptance T=%.1f%% U=%.1f%%\n\n",
		opts.TWindows, opts.UWindows, opts.UWindows,
		opts.TWindows*opts.UWindows*opts.UWindows, 100*res.AcceptT, 100*res.AcceptU)
	for i, f := range res.Surfaces {
		fmt.Printf("-- T = %.0f K (x: phi, y: psi; darker = higher free energy; '?' unsampled) --\n",
			res.Temperatures[i])
		fmt.Println(f.Render(""))
	}
}
