// multi_resource: one REMD simulation spread across two HPC machines at
// once — the paper's §5 extension ("RepEx can be extended to use
// multiple HPC resources simultaneously for a single REMD simulation").
//
// A 96-replica T-REMD workload runs first on a single 48-core pilot on
// SuperMIC (Execution Mode II), then on that pilot *plus* a 48-core
// pilot on Stampede combined through pilot.MultiRuntime: the aggregate
// allocation reaches Mode I and the cycle time drops accordingly.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/pilot"
	"repro/internal/sim"
)

func spec() *core.Spec {
	return &core.Spec{
		Name:            "multi-resource-t-remd",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 96)}},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          3,
		Seed:            17,
	}
}

// run executes the workload on the given number of machines (1 or 2).
func run(machines int) *core.Report {
	env := sim.NewEnv()
	supermic := cluster.MustNew(env, cluster.SuperMIC(), 1)
	stampede := cluster.MustNew(env, cluster.Stampede(), 2)
	plA, err := pilot.Launch(supermic, pilot.Description{Cores: 48})
	if err != nil {
		log.Fatal(err)
	}
	pilots := []*pilot.Pilot{plA}
	if machines == 2 {
		plB, err := pilot.Launch(stampede, pilot.Description{Cores: 48})
		if err != nil {
			log.Fatal(err)
		}
		pilots = append(pilots, plB)
	}
	eng := engines.NewAmberVirtual(2881, 3)
	var report *core.Report
	env.Go("emm", func(p *sim.Proc) {
		rt, err := pilot.NewMultiRuntime(p, pilots...)
		if err != nil {
			log.Fatal(err)
		}
		simu, err := core.New(spec(), eng, rt)
		if err != nil {
			log.Fatal(err)
		}
		report, err = simu.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tasks routed per pilot: %v\n", rt.Routed())
	})
	env.Run()
	return report
}

func main() {
	fmt.Println("-- 96 replicas on one 48-core SuperMIC pilot (Mode II) --")
	one := run(1)
	fmt.Print(one.String())

	fmt.Println()
	fmt.Println("-- same workload on SuperMIC (48) + Stampede (48) combined --")
	two := run(2)
	fmt.Print(two.String())

	fmt.Printf("\ncombining two machines cut the average cycle time %.0f s -> %.0f s (%.1fx)\n",
		one.AvgCycleTime(), two.AvgCycleTime(), one.AvgCycleTime()/two.AvgCycleTime())
}
