package repex

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 4), plus ablation benchmarks for the design decisions called
// out in DESIGN.md. Each figure benchmark executes the full RepEx stack
// (orchestrator, engine adapter, pilot runtime, cluster model) in quick
// mode; `go run ./cmd/experiments` regenerates the full-scale artefacts.

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/pilot"
	"repro/internal/sim"
)

func BenchmarkFig04Validation(b *testing.B) {
	opts := bench.DefaultValidationOptions()
	opts.TWindows, opts.UWindows = 2, 4
	opts.StepsPerCycle, opts.Cycles = 100, 2
	opts.Bins = 16
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		if _, _, err := bench.Fig4Validation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig5Overheads(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06Weak1D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig6Weak1D(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07Efficiency1D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig7Efficiency1D(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08NAMD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig8NAMD(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09WeakTSU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig9WeakTSU(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10StrongTSU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig10StrongTSU(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11EfficiencyTSU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig11EfficiencyTSU(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12MultiCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig12MultiCore(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig13Utilization(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTab01Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := bench.Table1Comparison()
		if len(tbl.Rows) != 8 {
			b.Fatal("table incomplete")
		}
	}
}

// --- Ablation benchmarks (design decisions from DESIGN.md) ---

// tremdSpec builds a small T-REMD workload for ablations.
func ablationSpec(n, cycles int, pattern Pattern, window float64) *Spec {
	return &Spec{
		Name:            "ablation",
		Dims:            []Dimension{{Type: Temperature, Values: GeometricTemperatures(273, 373, n)}},
		Pattern:         pattern,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          cycles,
		AsyncWindow:     window,
		Seed:            7,
	}
}

// BenchmarkAblationModeIIBatchRatio sweeps the paper's geometric
// core-to-replica ratios (1, 1/2, 1/4, 1/8, 1/16) and reports the cycle
// time of each, quantifying the cost of Execution Mode II batching.
func BenchmarkAblationModeIIBatchRatio(b *testing.B) {
	const replicas = 128
	for i := 0; i < b.N; i++ {
		prev := 0.0
		for _, denom := range []int{1, 2, 4, 8, 16} {
			rep, err := RunVirtual(ablationSpec(replicas, 2, PatternSynchronous, 0),
				SuperMIC(), replicas/denom, AmberSander, 2881, int64(denom))
			if err != nil {
				b.Fatal(err)
			}
			ct := rep.AvgCycleTime()
			if ct <= prev {
				b.Fatalf("cycle time %v did not grow at ratio 1/%d", ct, denom)
			}
			prev = ct
			b.ReportMetric(ct, "cycle_s/ratio_1_"+itoa(denom))
		}
	}
}

// BenchmarkAblationSyncVsAsync compares the utilization of the two RE
// patterns on identical workloads (the barrier-cost ablation).
func BenchmarkAblationSyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := SuperMIC()
		cfg.ExecJitter = 0.06
		syncRep, err := RunVirtual(ablationSpec(64, 3, PatternSynchronous, 0), cfg, 64, AmberSander, 2881, 1)
		if err != nil {
			b.Fatal(err)
		}
		asyncRep, err := RunVirtual(ablationSpec(64, 3, PatternAsynchronous, 100), cfg, 64, AmberSander, 2881, 1)
		if err != nil {
			b.Fatal(err)
		}
		if syncRep.Utilization() <= asyncRep.Utilization() {
			b.Fatal("sync barrier lost its utilization advantage")
		}
		b.ReportMetric(100*syncRep.Utilization(), "sync_util_%")
		b.ReportMetric(100*asyncRep.Utilization(), "async_util_%")
	}
}

// BenchmarkAblationAsyncWindow sweeps the asynchronous real-time window,
// showing the utilization cost of coarser windows.
func BenchmarkAblationAsyncWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []float64{30, 60, 120, 240} {
			cfg := SuperMIC()
			cfg.ExecJitter = 0.06
			rep, err := RunVirtual(ablationSpec(48, 3, PatternAsynchronous, w), cfg, 48, AmberSander, 2881, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*rep.Utilization(), "util_%_w"+ftoa(w))
		}
	}
}

// BenchmarkDispatcher measures the event-driven dispatcher's cost per MD
// completion under the three trigger families (barrier, window, count)
// at 64 and 256 virtual replicas. The whole stack runs in virtual time,
// so wall time divided by the number of MD completions tracks the
// orchestrator's per-event overhead across the perf trajectory.
func BenchmarkDispatcher(b *testing.B) {
	cases := []struct {
		name    string
		trigger func() Trigger
	}{
		{"barrier", func() Trigger { return NewBarrierTrigger() }},
		{"window", func() Trigger { return NewWindowTrigger(100, 0) }},
		{"count", func() Trigger { return NewCountTrigger(8) }},
	}
	for _, replicas := range []int{64, 256} {
		for _, tc := range cases {
			b.Run(itoa(replicas)+"/"+tc.name, func(b *testing.B) {
				completions := 0
				for i := 0; i < b.N; i++ {
					spec := ablationSpec(replicas, 2, PatternAsynchronous, 100)
					spec.Trigger = tc.trigger()
					cfg := SuperMIC()
					cfg.ExecJitter = 0.05
					rep, err := RunVirtual(spec, cfg, replicas, AmberSander, 2881, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					if rep.ExchangeEvents == 0 {
						b.Fatal("no exchange events fired")
					}
					for _, rec := range rep.Records {
						completions += rec.MD.Tasks
					}
				}
				if completions > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(completions), "ns/completion")
				}
			})
		}
	}
}

// BenchmarkDispatcherBus measures the same per-completion dispatcher
// cost with the observability subsystem fully attached: the event bus
// publishing every MD/exchange/fault record, an online
// analysis.Collector consuming them, and a deliberately stalled
// subscriber (tiny never-drained ring) riding along. The delta against
// BenchmarkDispatcher's window case is the bus overhead; the acceptance
// gate for this subsystem is < 5% per completion.
func BenchmarkDispatcherBus(b *testing.B) {
	for _, replicas := range []int{64, 256} {
		b.Run(itoa(replicas)+"/window", func(b *testing.B) {
			completions := 0
			dropped := uint64(0)
			for i := 0; i < b.N; i++ {
				spec := ablationSpec(replicas, 2, PatternAsynchronous, 100)
				spec.Trigger = NewWindowTrigger(100, 0)
				spec.Bus = NewBus()
				col := analysis.New(analysis.ConfigFromSpec(spec))
				col.Attach(spec.Bus, 1<<12)
				stalled := spec.Bus.Subscribe(8)
				cfg := SuperMIC()
				cfg.ExecJitter = 0.05
				rep, err := RunVirtual(spec, cfg, replicas, AmberSander, 2881, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				stats := col.Snapshot()
				if stats.Events != rep.ExchangeEvents {
					b.Fatalf("collector saw %d events, report %d", stats.Events, rep.ExchangeEvents)
				}
				dropped += stalled.Dropped()
				for _, rec := range rep.Records {
					completions += rec.MD.Tasks
				}
			}
			if dropped == 0 {
				b.Fatal("stalled subscriber dropped nothing: the non-blocking path was not exercised")
			}
			if completions > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(completions), "ns/completion")
			}
		})
	}
}

// BenchmarkAblationPairing compares nearest-neighbour alternating
// pairing against random pairing on acceptance probability under the
// synthetic T-REMD energetics: neighbour pairing accepts far more often
// because adjacent windows overlap.
func BenchmarkAblationPairing(b *testing.B) {
	ladder := GeometricTemperatures(273, 373, 32)
	betas := make([]float64, len(ladder))
	for i, t := range ladder {
		betas[i] = 1 / (0.0019872041 * t)
	}
	energy := func(rng *rand.Rand, slot int) float64 {
		t := ladder[slot]
		return 2.0*(t-300) + 24.4*rng.NormFloat64() // CvEff=2 model
	}
	group := make([]int, len(ladder))
	for i := range group {
		group[i] = i
	}
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		meanProb := func(pairs []exchange.Pair) float64 {
			if len(pairs) == 0 {
				return 0
			}
			sum := 0.0
			for _, pr := range pairs {
				sum += exchange.AcceptTemperature(
					betas[pr.I], betas[pr.J], energy(rng, pr.I), energy(rng, pr.J))
			}
			return sum / float64(len(pairs))
		}
		var neighbor, random float64
		const sweeps = 200
		for s := 0; s < sweeps; s++ {
			neighbor += meanProb(exchange.NeighborPairs(group, s))
			random += meanProb(exchange.RandomPairs(group, rng))
		}
		neighbor /= sweeps
		random /= sweeps
		if neighbor <= random {
			b.Fatalf("neighbour pairing acceptance %v not above random %v", neighbor, random)
		}
		b.ReportMetric(neighbor, "neighbor_acc")
		b.ReportMetric(random, "random_acc")
	}
}

// BenchmarkAblationStagingFS compares staging through the shared
// filesystem's serialized metadata server against an idealised
// node-local scratch (zero metadata latency): the paper's data-time
// component disappears.
func BenchmarkAblationStagingFS(b *testing.B) {
	run := func(meta float64, seed int64) *Report {
		cfg := SuperMIC()
		cfg.FS.MetaLatency = meta
		rep, err := RunVirtual(ablationSpec(128, 2, PatternSynchronous, 0), cfg, 128, AmberSander, 2881, seed)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	for i := 0; i < b.N; i++ {
		shared := run(SuperMIC().FS.MetaLatency, int64(i))
		local := run(0, int64(i))
		ds, dl := shared.Decompose(), local.Decompose()
		if ds.TData <= dl.TData {
			b.Fatal("shared-FS staging not slower than node-local scratch")
		}
		b.ReportMetric(ds.TData, "tdata_shared_s")
		b.ReportMetric(dl.TData, "tdata_local_s")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func ftoa(v float64) string { return itoa(int(v)) }

// Compile-time checks that the ablations use the intended backends.
var (
	_ = cluster.Stampede
	_ = engines.SanderModel
	_ core.Engine
)

// BenchmarkAblationGPUEngine compares the pmemd.cuda GPU cost model
// against serial sander on the same T-REMD workload (the paper's GPU
// extension): MD time should drop by ~GPUSpeedup.
func BenchmarkAblationGPUEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec1 := ablationSpec(32, 2, PatternSynchronous, 0)
		cpu, err := RunVirtual(spec1, SuperMIC(), 32, AmberSander, 2881, 5)
		if err != nil {
			b.Fatal(err)
		}
		env := sim.NewEnv()
		cl := cluster.MustNew(env, SuperMIC(), 6)
		pl, err := pilot.Launch(cl, pilot.Description{Cores: 32})
		if err != nil {
			b.Fatal(err)
		}
		eng := engines.NewPmemdCudaVirtual(2881, 7)
		var gpu *core.Report
		env.Go("emm", func(p *sim.Proc) {
			rt := pilot.NewRuntime(pl, p)
			spec2 := ablationSpec(32, 2, PatternSynchronous, 0)
			simu, err := core.New(spec2, eng, rt)
			if err != nil {
				b.Error(err)
				return
			}
			gpu, _ = simu.Run()
		})
		env.Run()
		dc, dg := cpu.Decompose(), gpu.Decompose()
		if dg.TMD >= dc.TMD/8 {
			b.Fatalf("GPU MD time %v not far below CPU %v", dg.TMD, dc.TMD)
		}
		b.ReportMetric(dc.TMD, "cpu_md_s")
		b.ReportMetric(dg.TMD, "gpu_md_s")
	}
}
