package repex

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 4), plus ablation benchmarks for the design decisions called
// out in DESIGN.md. Each figure benchmark executes the full RepEx stack
// (orchestrator, engine adapter, pilot runtime, cluster model) in quick
// mode; `go run ./cmd/experiments` regenerates the full-scale artefacts.

import (
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/md"
	"repro/internal/pilot"
	"repro/internal/sim"
	"repro/internal/trace"
)

func BenchmarkFig04Validation(b *testing.B) {
	opts := bench.DefaultValidationOptions()
	opts.TWindows, opts.UWindows = 2, 4
	opts.StepsPerCycle, opts.Cycles = 100, 2
	opts.Bins = 16
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		if _, _, err := bench.Fig4Validation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig5Overheads(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06Weak1D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig6Weak1D(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07Efficiency1D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig7Efficiency1D(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08NAMD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig8NAMD(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09WeakTSU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig9WeakTSU(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10StrongTSU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig10StrongTSU(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11EfficiencyTSU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig11EfficiencyTSU(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12MultiCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig12MultiCore(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig13Utilization(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTab01Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := bench.Table1Comparison()
		if len(tbl.Rows) != 8 {
			b.Fatal("table incomplete")
		}
	}
}

// --- Ablation benchmarks (design decisions from DESIGN.md) ---

// tremdSpec builds a small T-REMD workload for ablations.
func ablationSpec(n, cycles int, pattern Pattern, window float64) *Spec {
	return &Spec{
		Name:            "ablation",
		Dims:            []Dimension{{Type: Temperature, Values: GeometricTemperatures(273, 373, n)}},
		Pattern:         pattern,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          cycles,
		AsyncWindow:     window,
		Seed:            7,
	}
}

// BenchmarkAblationModeIIBatchRatio sweeps the paper's geometric
// core-to-replica ratios (1, 1/2, 1/4, 1/8, 1/16) and reports the cycle
// time of each, quantifying the cost of Execution Mode II batching.
func BenchmarkAblationModeIIBatchRatio(b *testing.B) {
	const replicas = 128
	for i := 0; i < b.N; i++ {
		prev := 0.0
		for _, denom := range []int{1, 2, 4, 8, 16} {
			rep, err := RunVirtual(ablationSpec(replicas, 2, PatternSynchronous, 0),
				SuperMIC(), replicas/denom, AmberSander, 2881, int64(denom))
			if err != nil {
				b.Fatal(err)
			}
			ct := rep.AvgCycleTime()
			if ct <= prev {
				b.Fatalf("cycle time %v did not grow at ratio 1/%d", ct, denom)
			}
			prev = ct
			b.ReportMetric(ct, "cycle_s/ratio_1_"+itoa(denom))
		}
	}
}

// BenchmarkAblationSyncVsAsync compares the utilization of the two RE
// patterns on identical workloads (the barrier-cost ablation).
func BenchmarkAblationSyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := SuperMIC()
		cfg.ExecJitter = 0.06
		syncRep, err := RunVirtual(ablationSpec(64, 3, PatternSynchronous, 0), cfg, 64, AmberSander, 2881, 1)
		if err != nil {
			b.Fatal(err)
		}
		asyncRep, err := RunVirtual(ablationSpec(64, 3, PatternAsynchronous, 100), cfg, 64, AmberSander, 2881, 1)
		if err != nil {
			b.Fatal(err)
		}
		if syncRep.Utilization() <= asyncRep.Utilization() {
			b.Fatal("sync barrier lost its utilization advantage")
		}
		b.ReportMetric(100*syncRep.Utilization(), "sync_util_%")
		b.ReportMetric(100*asyncRep.Utilization(), "async_util_%")
	}
}

// BenchmarkAblationAsyncWindow sweeps the asynchronous real-time window,
// showing the utilization cost of coarser windows.
func BenchmarkAblationAsyncWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []float64{30, 60, 120, 240} {
			cfg := SuperMIC()
			cfg.ExecJitter = 0.06
			rep, err := RunVirtual(ablationSpec(48, 3, PatternAsynchronous, w), cfg, 48, AmberSander, 2881, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*rep.Utilization(), "util_%_w"+ftoa(w))
		}
	}
}

// benchDispatcher runs the per-completion dispatcher workload: b.N full
// virtual runs at the given replica count, reporting wall time, heap
// bytes and allocations divided by the number of MD completions. The
// memory columns make scratch-reuse regressions (per-event grouping or
// exchange-phase allocations) visible without a profiler.
func benchDispatcher(b *testing.B, replicas, exchangeWorkers int, machine cluster.Config, trigger func() Trigger) {
	b.Helper()
	completions := 0
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := ablationSpec(replicas, 2, PatternAsynchronous, 100)
		spec.Trigger = trigger()
		spec.ExchangeWorkers = exchangeWorkers
		machine.ExecJitter = 0.05
		rep, err := RunVirtual(spec, machine, replicas, AmberSander, 2881, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if rep.ExchangeEvents == 0 {
			b.Fatal("no exchange events fired")
		}
		for _, rec := range rep.Records {
			completions += rec.MD.Tasks
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	if completions > 0 {
		n := float64(completions)
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/n, "ns/completion")
		b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/n, "B/completion")
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/n, "allocs/completion")
	}
}

// BenchmarkDispatcher measures the event-driven dispatcher's cost per MD
// completion under the three trigger families (barrier, window, count)
// from 64 up to 4096 virtual replicas (the SuperMIC-scale leg of the
// scaling gate; cmd/benchcheck holds the 4096/256 ns-per-completion
// ratio below a bound so super-linear growth in the hot loop fails CI).
// The whole stack runs in virtual time, so wall time divided by the
// number of MD completions tracks the orchestrator's per-event overhead
// across the perf trajectory. The 4096/serialex leg is the
// sharded-exchange control: identical workload with the exchange-phase
// worker pool forced serial (exchange_workers = 1), so the sharding
// speedup is the barrier-leg delta against it.
func BenchmarkDispatcher(b *testing.B) {
	cases := []struct {
		name    string
		trigger func() Trigger
	}{
		{"barrier", func() Trigger { return NewBarrierTrigger() }},
		{"window", func() Trigger { return NewWindowTrigger(100, 0) }},
		{"count", func() Trigger { return NewCountTrigger(8) }},
	}
	for _, replicas := range []int{64, 256, 1024, 4096} {
		for _, tc := range cases {
			b.Run(itoa(replicas)+"/"+tc.name, func(b *testing.B) {
				benchDispatcher(b, replicas, 0, SuperMIC(), tc.trigger)
			})
		}
	}
	b.Run("4096/serialex", func(b *testing.B) {
		benchDispatcher(b, 4096, 1, SuperMIC(), func() Trigger { return NewBarrierTrigger() })
	})
}

// BenchmarkDispatcher64K is the opt-in Stampede-scale leg: 65536 virtual
// replicas, the paper's headline O(10^4)-replica regime. It takes
// seconds per iteration, so it only runs when REPEX_BENCH_64K is set
// and is deliberately absent from BENCH_baseline.json (no medians to
// gate); docs/performance.md records measured numbers.
func BenchmarkDispatcher64K(b *testing.B) {
	if os.Getenv("REPEX_BENCH_64K") == "" {
		b.Skip("set REPEX_BENCH_64K=1 to run the 65536-replica leg")
	}
	b.Run("65536/barrier", func(b *testing.B) {
		benchDispatcher(b, 65536, 0, Stampede(), func() Trigger { return NewBarrierTrigger() })
	})
	b.Run("65536/serialex", func(b *testing.B) {
		benchDispatcher(b, 65536, 1, Stampede(), func() Trigger { return NewBarrierTrigger() })
	})
}

// heavyCrossEngine wraps the virtual sander cost model with an
// artificially expensive CrossEnergy: a spin loop standing in for a
// real engine's single-point energy evaluation (the virtual model's own
// cross energies are a few nanoseconds of arithmetic, far too cheap for
// exchange-phase parallelism to matter). The loop's result is scaled to
// 1e-300 — far below one ulp of the O(100 kcal/mol) synthetic energies,
// so adding it rounds away exactly and every exchange decision stays
// bit-identical to the unwrapped engine, while the compiler cannot
// elide the work.
type heavyCrossEngine struct {
	*engines.Virtual
	spin int
}

func (e *heavyCrossEngine) CrossEnergy(r *core.Replica, under md.Params) float64 {
	base := e.Virtual.CrossEnergy(r, under)
	x := 1.0
	for i := 1; i <= e.spin; i++ {
		x = math.Sqrt(x*float64(i) + 2)
	}
	return base + x*1e-300
}

// benchExchangeSharding runs a 4096-window U-REMD workload (Hamiltonian
// exchange: two CrossEnergy calls per candidate pair) on the heavy
// cross-energy engine, with the exchange worker pool sized
// automatically (workers=0) or forced serial (workers=1).
func benchExchangeSharding(b *testing.B, workers int) {
	b.Helper()
	const windows = 4096
	completions := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := &Spec{
			Name:            "shardbench",
			Dims:            []Dimension{{Type: Umbrella, Values: UniformWindows(windows), Torsion: "phi", K: UmbrellaK002}},
			Pattern:         PatternSynchronous,
			CoresPerReplica: 1,
			StepsPerCycle:   1000,
			Cycles:          2,
			Seed:            int64(i + 1),
			ExchangeWorkers: workers,
		}
		env := sim.NewEnv()
		cl := cluster.MustNew(env, SuperMIC(), int64(i+1))
		pl, err := pilot.Launch(cl, pilot.Description{Cores: windows})
		if err != nil {
			b.Fatal(err)
		}
		eng := &heavyCrossEngine{Virtual: engines.NewAmberVirtual(2881, spec.Seed), spin: 8192}
		var rep *Report
		env.Go("emm", func(p *sim.Proc) {
			rt := pilot.NewRuntime(pl, p)
			simu, err := core.New(spec, eng, rt)
			if err != nil {
				b.Error(err)
				return
			}
			rep, err = simu.Run()
			if err != nil {
				b.Error(err)
			}
		})
		env.Run()
		if rep == nil || rep.ExchangeEvents == 0 {
			b.Fatal("no exchange events fired")
		}
		for _, rec := range rep.Records {
			completions += rec.MD.Tasks
		}
	}
	b.StopTimer()
	if completions > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(completions), "ns/completion")
	}
}

// BenchmarkExchangeSharding isolates the tentpole win of the sharded
// exchange evaluator. BenchmarkDispatcher's serialex control shows the
// dispatcher legs are insensitive to sharding — the virtual cost
// model's pair math is nanoseconds against ~20µs of per-completion
// machinery, and temperature exchange never calls CrossEnergy at all.
// This benchmark supplies the workload sharding exists for: Hamiltonian
// (umbrella) exchange with an expensive cross-energy function. The
// sharded/serial ratio is gated in BENCH_baseline.json; both legs
// produce bit-identical exchange decisions (see heavyCrossEngine and
// TestShardedExchangeEquivalence).
func BenchmarkExchangeSharding(b *testing.B) {
	b.Run("4096/sharded", func(b *testing.B) { benchExchangeSharding(b, 0) })
	b.Run("4096/serial", func(b *testing.B) { benchExchangeSharding(b, 1) })
}

// BenchmarkDispatcherBus measures the same per-completion dispatcher
// cost with the observability subsystem fully attached: the event bus
// publishing every MD/exchange/fault record, an online
// analysis.Collector consuming them, and a deliberately stalled
// subscriber (tiny never-drained ring) riding along. The delta against
// BenchmarkDispatcher's window case is the bus overhead; the acceptance
// gate for this subsystem is < 5% per completion.
func BenchmarkDispatcherBus(b *testing.B) {
	for _, replicas := range []int{64, 256} {
		b.Run(itoa(replicas)+"/window", func(b *testing.B) {
			completions := 0
			dropped := uint64(0)
			for i := 0; i < b.N; i++ {
				spec := ablationSpec(replicas, 2, PatternAsynchronous, 100)
				spec.Trigger = NewWindowTrigger(100, 0)
				spec.Bus = NewBus()
				col := analysis.New(analysis.ConfigFromSpec(spec))
				col.Attach(spec.Bus, 1<<12)
				stalled := spec.Bus.Subscribe(8)
				cfg := SuperMIC()
				cfg.ExecJitter = 0.05
				rep, err := RunVirtual(spec, cfg, replicas, AmberSander, 2881, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				stats := col.Snapshot()
				if stats.Events != rep.ExchangeEvents {
					b.Fatalf("collector saw %d events, report %d", stats.Events, rep.ExchangeEvents)
				}
				dropped += stalled.Dropped()
				for _, rec := range rep.Records {
					completions += rec.MD.Tasks
				}
			}
			if dropped == 0 {
				b.Fatal("stalled subscriber dropped nothing: the non-blocking path was not exercised")
			}
			if completions > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(completions), "ns/completion")
			}
		})
	}
}

// BenchmarkDispatcherTrace measures the same per-completion dispatcher
// cost with the flight recorder attached on top of the full
// BenchmarkDispatcherBus observability stack (bus, collector, stalled
// subscriber). The delta against BenchmarkDispatcherBus's legs is the
// recorder overhead; the ratio gate in BENCH_baseline.json holds it
// below 5% per completion.
func BenchmarkDispatcherTrace(b *testing.B) {
	for _, replicas := range []int{64, 256} {
		b.Run(itoa(replicas)+"/window", func(b *testing.B) {
			completions := 0
			// One ring for the whole leg, as in a real run (a run
			// allocates its recorder once); the loop measures the
			// per-span recording cost, not ring construction.
			rec := trace.New(1 << 15)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spec := ablationSpec(replicas, 2, PatternAsynchronous, 100)
				spec.Trigger = NewWindowTrigger(100, 0)
				spec.Bus = NewBus()
				spec.Tracer = rec
				col := analysis.New(analysis.ConfigFromSpec(spec))
				col.Attach(spec.Bus, 1<<12)
				cfg := SuperMIC()
				cfg.ExecJitter = 0.05
				rep, err := RunVirtual(spec, cfg, replicas, AmberSander, 2881, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				if rep.ExchangeEvents == 0 {
					b.Fatal("no exchange events fired")
				}
				for _, r := range rep.Records {
					completions += r.MD.Tasks
				}
			}
			if rec.Recorded() == 0 {
				b.Fatal("flight recorder recorded nothing: the traced path was not exercised")
			}
			if completions > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(completions), "ns/completion")
			}
		})
	}
}

// BenchmarkAblationPairing compares nearest-neighbour alternating
// pairing against random pairing on acceptance probability under the
// synthetic T-REMD energetics: neighbour pairing accepts far more often
// because adjacent windows overlap.
func BenchmarkAblationPairing(b *testing.B) {
	ladder := GeometricTemperatures(273, 373, 32)
	betas := make([]float64, len(ladder))
	for i, t := range ladder {
		betas[i] = 1 / (0.0019872041 * t)
	}
	energy := func(rng *rand.Rand, slot int) float64 {
		t := ladder[slot]
		return 2.0*(t-300) + 24.4*rng.NormFloat64() // CvEff=2 model
	}
	group := make([]int, len(ladder))
	for i := range group {
		group[i] = i
	}
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		meanProb := func(pairs []exchange.Pair) float64 {
			if len(pairs) == 0 {
				return 0
			}
			sum := 0.0
			for _, pr := range pairs {
				sum += exchange.AcceptTemperature(
					betas[pr.I], betas[pr.J], energy(rng, pr.I), energy(rng, pr.J))
			}
			return sum / float64(len(pairs))
		}
		var neighbor, random float64
		const sweeps = 200
		for s := 0; s < sweeps; s++ {
			neighbor += meanProb(exchange.NeighborPairs(group, s))
			random += meanProb(exchange.RandomPairs(group, rng))
		}
		neighbor /= sweeps
		random /= sweeps
		if neighbor <= random {
			b.Fatalf("neighbour pairing acceptance %v not above random %v", neighbor, random)
		}
		b.ReportMetric(neighbor, "neighbor_acc")
		b.ReportMetric(random, "random_acc")
	}
}

// BenchmarkAblationStagingFS compares staging through the shared
// filesystem's serialized metadata server against an idealised
// node-local scratch (zero metadata latency): the paper's data-time
// component disappears.
func BenchmarkAblationStagingFS(b *testing.B) {
	run := func(meta float64, seed int64) *Report {
		cfg := SuperMIC()
		cfg.FS.MetaLatency = meta
		rep, err := RunVirtual(ablationSpec(128, 2, PatternSynchronous, 0), cfg, 128, AmberSander, 2881, seed)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	for i := 0; i < b.N; i++ {
		shared := run(SuperMIC().FS.MetaLatency, int64(i))
		local := run(0, int64(i))
		ds, dl := shared.Decompose(), local.Decompose()
		if ds.TData <= dl.TData {
			b.Fatal("shared-FS staging not slower than node-local scratch")
		}
		b.ReportMetric(ds.TData, "tdata_shared_s")
		b.ReportMetric(dl.TData, "tdata_local_s")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func ftoa(v float64) string { return itoa(int(v)) }

// Compile-time checks that the ablations use the intended backends.
var (
	_ = cluster.Stampede
	_ = engines.SanderModel
	_ core.Engine
)

// BenchmarkAblationGPUEngine compares the pmemd.cuda GPU cost model
// against serial sander on the same T-REMD workload (the paper's GPU
// extension): MD time should drop by ~GPUSpeedup.
func BenchmarkAblationGPUEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec1 := ablationSpec(32, 2, PatternSynchronous, 0)
		cpu, err := RunVirtual(spec1, SuperMIC(), 32, AmberSander, 2881, 5)
		if err != nil {
			b.Fatal(err)
		}
		env := sim.NewEnv()
		cl := cluster.MustNew(env, SuperMIC(), 6)
		pl, err := pilot.Launch(cl, pilot.Description{Cores: 32})
		if err != nil {
			b.Fatal(err)
		}
		eng := engines.NewPmemdCudaVirtual(2881, 7)
		var gpu *core.Report
		env.Go("emm", func(p *sim.Proc) {
			rt := pilot.NewRuntime(pl, p)
			spec2 := ablationSpec(32, 2, PatternSynchronous, 0)
			simu, err := core.New(spec2, eng, rt)
			if err != nil {
				b.Error(err)
				return
			}
			gpu, _ = simu.Run()
		})
		env.Run()
		dc, dg := cpu.Decompose(), gpu.Decompose()
		if dg.TMD >= dc.TMD/8 {
			b.Fatalf("GPU MD time %v not far below CPU %v", dg.TMD, dc.TMD)
		}
		b.ReportMetric(dc.TMD, "cpu_md_s")
		b.ReportMetric(dg.TMD, "gpu_md_s")
	}
}
