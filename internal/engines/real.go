package engines

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/md"
	"repro/internal/task"
)

// Real is an engine adapter that actually integrates the equations of
// motion with internal/md. It is used with the localexec backend for
// validation (Figure 4) and the examples; the generated tasks carry real
// Run closures instead of cost-model durations.
//
// Per-window trajectories (φ/ψ samples under each slot's parameters) are
// collected thread-safely for free-energy analysis: exactly the data the
// paper feeds to vFEP.
type Real struct {
	name string
	sys  *md.System
	base *md.State

	// Dt (ps), Gamma (1/ps) configure the Langevin integrator.
	Dt    float64
	Gamma float64
	// SampleEvery sets the observable sampling stride in steps.
	SampleEvery int
	// Flavor renders engine-style input text for each task (Amber mdin
	// or NAMD config), exercising the AMM translation path.
	Flavor string

	seed int64

	mu    sync.Mutex
	trajs map[int]*md.Trajectory // keyed by slot (window)
}

// NewReal wraps a molecular system. The base state is cloned per
// replica. Flavor must be "amber" or "namd".
func NewReal(flavor string, sys *md.System, base *md.State, seed int64) (*Real, error) {
	if flavor != "amber" && flavor != "namd" {
		return nil, fmt.Errorf("engines: unknown flavor %q (want amber or namd)", flavor)
	}
	return &Real{
		name:        flavor + "-real",
		sys:         sys,
		base:        base,
		Dt:          0.001,
		Gamma:       5.0,
		SampleEvery: 25,
		Flavor:      flavor,
		seed:        seed,
		trajs:       map[int]*md.Trajectory{},
	}, nil
}

// MustNewReal is NewReal but panics on error.
func MustNewReal(flavor string, sys *md.System, base *md.State, seed int64) *Real {
	e, err := NewReal(flavor, sys, base, seed)
	if err != nil {
		panic(err)
	}
	return e
}

// Name returns the adapter name.
func (e *Real) Name() string { return e.name }

// System exposes the wrapped molecular system.
func (e *Real) System() *md.System { return e.sys }

// InitReplica clones the base state, relaxes it briefly and draws
// Maxwell-Boltzmann velocities at the replica's window temperature.
func (e *Real) InitReplica(r *core.Replica, s *core.Spec) {
	r.State = e.base.Clone()
	md.Minimize(e.sys, r.State, r.Params, 200, 1e-2)
	rng := newRNG(e.seed, int64(r.ID))
	md.InitVelocities(e.sys, r.State, r.Params.TemperatureK, rng)
	r.Energy = e.sys.Energy(r.State, r.Params).Potential()
}

// GenerateInput renders the engine-style input text for a replica cycle
// (the AMM's user-requirement -> engine-input translation).
func (e *Real) GenerateInput(r *core.Replica, s *core.Spec) string {
	if e.Flavor == "namd" {
		return WriteNAMDConfig(NAMDConfig{
			Steps:       s.StepsPerCycle,
			TimestepFS:  e.Dt * 1000,
			Temperature: r.Params.TemperatureK,
			LangevinOn:  true,
			Damping:     e.Gamma,
			Restraints:  r.Params.Restraints,
		})
	}
	return WriteMDIN(MDIN{
		NSTLim:     s.StepsPerCycle,
		Dt:         e.Dt,
		Temp0:      r.Params.TemperatureK,
		GammaLn:    e.Gamma,
		SaltCon:    r.Params.SaltM,
		Restraints: r.Params.Restraints,
	})
}

// MDTask builds a real MD segment task. The closure round-trips the
// parameters through the engine input format before integrating, so the
// translation layer is exercised on every cycle.
func (e *Real) MDTask(r *core.Replica, s *core.Spec, dim int) *task.Spec {
	// Capture everything the worker goroutine needs; the orchestrator
	// does not touch the replica until the task completes.
	st := r.State
	prm := r.Params.Clone()
	slot := r.Slot
	seed := mix(e.seed, int64(r.ID), int64(r.Cycle))
	input := e.GenerateInput(r, s)
	flavor := e.Flavor
	steps := s.StepsPerCycle
	return &task.Spec{
		Name:      fmt.Sprintf("md-r%03d-c%02d", r.ID, r.Cycle),
		Kind:      task.MD,
		ReplicaID: r.ID,
		Cores:     s.CoresPerReplica,
		CanFail:   true,
		Run: func() error {
			// RAM-side: parse the staged input back into run settings.
			var nsteps int
			var temp float64
			if flavor == "namd" {
				cfg, err := ParseNAMDConfig(input)
				if err != nil {
					return err
				}
				nsteps, temp = cfg.Steps, cfg.Temperature
			} else {
				in, err := ParseMDIN(input)
				if err != nil {
					return err
				}
				nsteps, temp = in.NSTLim, in.Temp0
			}
			if nsteps != steps || temp != prm.TemperatureK {
				return fmt.Errorf("engines: input round-trip mismatch (%d/%g vs %d/%g)",
					nsteps, temp, steps, prm.TemperatureK)
			}
			integ := md.NewLangevin(e.Dt, e.Gamma, seed)
			tr := md.RunSegment(e.sys, st, prm, integ, nsteps, e.SampleEvery)
			e.mu.Lock()
			if e.trajs[slot] == nil {
				e.trajs[slot] = &md.Trajectory{}
			}
			e.trajs[slot].Append(tr)
			e.mu.Unlock()
			return nil
		},
	}
}

// ExchangeTask for the real engine is client-side work of negligible
// cost; no separate cluster task is needed.
func (e *Real) ExchangeTask(dim int, n int, s *core.Spec) *task.Spec { return nil }

// SinglePointTasks: real cross energies are computed directly by
// CrossEnergy, so no extra tasks are required.
func (e *Real) SinglePointTasks(dim int, group []*core.Replica, s *core.Spec) []*task.Spec {
	return nil
}

// OwnEnergy evaluates the replica's current potential energy.
func (e *Real) OwnEnergy(r *core.Replica) float64 {
	return e.sys.Energy(r.State, r.Params).Potential()
}

// CrossEnergy evaluates the replica's coordinates under foreign
// parameters (the Hamiltonian-exchange single-point energy).
func (e *Real) CrossEnergy(r *core.Replica, under md.Params) float64 {
	return e.sys.Energy(r.State, under).Potential()
}

// TorsionIndex resolves a labelled torsion in the real topology.
func (e *Real) TorsionIndex(label string) int {
	i := e.sys.Top.FindDihedral(label)
	if i < 0 {
		panic(fmt.Sprintf("engines: topology has no torsion labelled %q", label))
	}
	return i
}

// PrepOverhead is negligible next to real integration.
func (e *Real) PrepOverhead(nTasks, ndims int) float64 { return 0 }

// WindowTrajectory returns the accumulated trajectory sampled under the
// given slot's parameters (nil if none).
func (e *Real) WindowTrajectory(slot int) *md.Trajectory {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.trajs[slot]
}

// WindowCount reports how many windows have collected samples.
func (e *Real) WindowCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.trajs)
}

var _ core.Engine = (*Real)(nil)

// Convenience constructors matching the paper's engine pairings.

// NewAmberVirtual returns a sander-modelled virtual adapter.
func NewAmberVirtual(natoms int, seed int64) *Virtual {
	return NewVirtual("amber", SanderModel(), natoms, seed)
}

// NewPmemdVirtual returns a pmemd.MPI-modelled virtual adapter for
// multi-core replicas.
func NewPmemdVirtual(natoms int, seed int64) *Virtual {
	return NewVirtual("amber-pmemd", PmemdModel(), natoms, seed)
}

// NewNAMDVirtual returns a NAMD-modelled virtual adapter.
func NewNAMDVirtual(natoms int, seed int64) *Virtual {
	return NewVirtual("namd", NAMDModel(), natoms, seed)
}

// NewNamedVirtual maps a config engine name ("amber", "amber-pmemd",
// "namd") to its virtual adapter; unknown names get the sander model,
// matching the config layer's default. cmd/repex and repexd share this
// mapping.
func NewNamedVirtual(engine string, natoms int, seed int64) *Virtual {
	switch engine {
	case "amber-pmemd":
		return NewPmemdVirtual(natoms, seed)
	case "namd":
		return NewNAMDVirtual(natoms, seed)
	default:
		return NewAmberVirtual(natoms, seed)
	}
}

// mix produces a deterministic seed from components.
func mix(parts ...int64) int64 {
	var h int64 = 1469598103934665603
	for _, p := range parts {
		h ^= p
		h *= 1099511628211
	}
	return h
}

func newRNG(seed, stream int64) *rand.Rand { return rand.New(rand.NewSource(mix(seed, stream))) }

// NewPmemdCudaVirtual returns a GPU-accelerated virtual adapter
// (pmemd.cuda cost model): the paper's GPU extension.
func NewPmemdCudaVirtual(natoms int, seed int64) *Virtual {
	return NewVirtual("amber-cuda", PmemdCudaModel(), natoms, seed)
}
