// Package engines provides the MD-engine adapters of the RepEx
// reproduction: the Application Management Module (AMM) layer of the
// paper's architecture. Each adapter translates replicas into task
// specs, generates and parses engine-style input/output files, and
// supplies energies for exchange decisions.
//
// Two families exist:
//
//   - Virtual engines drive the virtual-time pilot backend with cost
//     models calibrated to the timings reported in the paper (sander,
//     pmemd.MPI, NAMD 2.10) and synthesize exchange statistics; they
//     power all performance experiments.
//   - Real engines run the internal/md force field for real; they power
//     the validation (Figure 4) and the examples.
package engines

import (
	"math"

	"repro/internal/exchange"
)

// Calibration constants, in reference-machine seconds (Stampede speed
// factor 1.0). Sources: §4.2 "the time to perform 6000 time-steps is
// nearly identical ... 139.6 seconds" on SuperMIC (speed 1.18) for 2881
// atoms with sander, giving 164.7 s reference = SanderSecsPerAtomStep *
// 2881 * 6000; §4.4 M-REMD MD times ~495 s per 3-dimension cycle on
// Stampede (165 s per sub-cycle) — consistent with the same constant.
const (
	// SanderSecsPerAtomStep is the serial sander cost.
	SanderSecsPerAtomStep = 9.53e-6
	// PmemdSpeedup is pmemd's serial speed advantage over sander.
	PmemdSpeedup = 2.5
	// PmemdParallelFraction is the Amdahl parallel fraction of
	// pmemd.MPI for the paper's 64366-atom system.
	PmemdParallelFraction = 0.98
	// NAMDSecsPerAtomStep calibrates NAMD 2.10: ~230 s for 4000 steps
	// of 2881 atoms on SuperMIC (Figure 8 upper panel).
	NAMDSecsPerAtomStep = 2.35e-5
	// SPESecsPerAtom is the cost of one Amber single-point energy task
	// (group-file run) including program startup; ~25 s at 2881 atoms.
	SPESecsPerAtom = 8.68e-3
	// SPEWidth is the core width of one single-point task: "at least as
	// many CPU cores as there are potential exchange partners" — the
	// replica itself plus up to three neighbour states in the group
	// file.
	SPEWidth = 4
)

// CostModel predicts reference-machine task durations and staging
// volumes for one MD engine executable.
type CostModel struct {
	// Name of the modelled executable ("sander", "pmemd.MPI", "namd2").
	Name string
	// MDSeconds returns the duration of an MD segment.
	MDSeconds func(natoms, steps, cores int) float64
	// ExchangeSeconds returns the duration of the single
	// exchange-computation task for a dimension type over n replicas.
	ExchangeSeconds func(t exchange.Type, n int) float64
	// SPESeconds returns the duration of one single-point energy task.
	SPESeconds func(natoms int) float64
	// Staging volumes per MD task, by exchange type: the paper's
	// Figure 5 shows data time ordered T < U < S because the file sets
	// differ per exchange type (restraint files for U, group files for
	// S).
	MDInFiles  func(t exchange.Type) int
	MDOutFiles func(t exchange.Type) int
	// MDFileBytes is the approximate payload per staged file.
	MDFileBytes int64
}

// SanderModel returns the cost model of Amber's serial sander executable.
func SanderModel() CostModel {
	return CostModel{
		Name: "sander",
		MDSeconds: func(natoms, steps, cores int) float64 {
			// sander is serial: extra cores do not speed it up.
			return SanderSecsPerAtomStep * float64(natoms) * float64(steps)
		},
		ExchangeSeconds: exchangeSecondsAmber,
		SPESeconds: func(natoms int) float64 {
			return SPESecsPerAtom * float64(natoms)
		},
		MDInFiles:   amberInFiles,
		MDOutFiles:  amberOutFiles,
		MDFileBytes: 16 << 10,
	}
}

// PmemdModel returns the cost model of pmemd.MPI, Amber's parallel
// engine used for multi-core replicas (it cannot run on a single core,
// which the adapter enforces).
func PmemdModel() CostModel {
	return CostModel{
		Name: "pmemd.MPI",
		MDSeconds: func(natoms, steps, cores int) float64 {
			serial := SanderSecsPerAtomStep / PmemdSpeedup * float64(natoms) * float64(steps)
			p := float64(cores)
			f := PmemdParallelFraction
			// Amdahl plus a small communication term that grows with
			// core count; for the paper's relatively small 64366-atom
			// system this is what flattens scaling beyond ~16 cores
			// (§4.5: "difficult to gain significant performance
			// improvements by using more CPUs").
			comm := 0.002 * serial * math.Log2(math.Max(p, 1))
			return serial*((1-f)+f/p) + comm
		},
		ExchangeSeconds: exchangeSecondsAmber,
		SPESeconds: func(natoms int) float64 {
			return SPESecsPerAtom * float64(natoms)
		},
		MDInFiles:   amberInFiles,
		MDOutFiles:  amberOutFiles,
		MDFileBytes: 16 << 10,
	}
}

// NAMDModel returns the cost model of NAMD 2.10.
func NAMDModel() CostModel {
	return CostModel{
		Name: "namd2",
		MDSeconds: func(natoms, steps, cores int) float64 {
			serial := NAMDSecsPerAtomStep * float64(natoms) * float64(steps)
			p := float64(cores)
			f := 0.99
			return serial * ((1 - f) + f/p)
		},
		// NAMD exchange timing: the paper notes its growth "can't be
		// characterized as monomial" (Figure 8, lower panel) — a mixed
		// linear + square-root model reproduces that shape.
		ExchangeSeconds: func(t exchange.Type, n int) float64 {
			return 0.3 + 0.002*float64(n) + 0.6*math.Sqrt(float64(n))
		},
		SPESeconds: func(natoms int) float64 {
			return SPESecsPerAtom * float64(natoms)
		},
		MDInFiles:   func(t exchange.Type) int { return 1 },
		MDOutFiles:  func(t exchange.Type) int { return 3 },
		MDFileBytes: 24 << 10,
	}
}

// exchangeSecondsAmber models the single-MPI-task exchange computation
// used for T and U exchanges with Amber (§4.2): near-linear in the
// replica count, nearly identical for T and U ("we don't see a
// significant difference in exchange timings between U-REMD and
// T-REMD"). Salt uses the same partner-determination task; its extra
// cost comes from the separate single-point tasks.
func exchangeSecondsAmber(t exchange.Type, n int) float64 {
	base := 1.0 + 0.028*float64(n)
	switch t {
	case exchange.Umbrella:
		// The internal single-point evaluation for U is slightly more
		// involved but not significantly so.
		base *= 1.05
	case exchange.Salt:
		// Gathering the group-file single-point results adds a larger
		// per-replica cost, keeping S exchange near-linear overall.
		base = 1.0 + 0.10*float64(n)
	}
	return base
}

// amberInFiles: coordinates for T; plus restraint definition for U;
// plus group files for S.
func amberInFiles(t exchange.Type) int {
	switch t {
	case exchange.Umbrella:
		return 2
	case exchange.Salt:
		return 3
	default:
		return 1
	}
}

// amberOutFiles: mdinfo + restart for T; plus restraint trace for U;
// plus group-file energies for S.
func amberOutFiles(t exchange.Type) int {
	switch t {
	case exchange.Umbrella:
		return 4
	case exchange.Salt:
		return 5
	default:
		return 3
	}
}

// PmemdCudaModel returns the cost model of pmemd.cuda, the GPU engine
// whose support the paper reports as newly available on Stampede (§5).
// One replica occupies a single CPU core driving one GPU; throughput is
// GPUSpeedup times serial sander regardless of the CPU core count.
func PmemdCudaModel() CostModel {
	m := SanderModel()
	m.Name = "pmemd.cuda"
	m.MDSeconds = func(natoms, steps, cores int) float64 {
		return SanderSecsPerAtomStep / GPUSpeedup * float64(natoms) * float64(steps)
	}
	return m
}

// GPUSpeedup is the throughput advantage of pmemd.cuda over serial
// sander for the paper's benchmark systems.
const GPUSpeedup = 18.0
