package engines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/md"
	"repro/internal/task"
)

// Virtual is a cost-model-driven engine adapter: it describes tasks for
// the virtual-time pilot backend and synthesizes thermodynamically
// plausible energies so that exchange decisions have realistic
// acceptance statistics. It implements core.Engine.
//
// Synthetic thermodynamics: after each MD segment the replica's
// potential energy is redrawn from a Gaussian with temperature-dependent
// mean and width (effective heat capacity CvEff); umbrella dimensions
// maintain a pseudo torsion coordinate distributed around the window
// centre; salt dimensions maintain a pseudo ion-pairing coordinate whose
// energy couples to sqrt(concentration) (the Debye–Hückel leading
// order).
type Virtual struct {
	name   string
	cost   CostModel
	natoms int
	seed   int64
	rng    *rand.Rand
	// draws counts normal variates consumed from rng; together with seed
	// it makes the stochastic state replayable for checkpoint/restart
	// (core.ReplayableEngine).
	draws int64

	// Synthetic-thermodynamics parameters (exported-by-constructor
	// defaults tuned to paper-like acceptance ratios).
	CvEff     float64 // kcal/mol/K: effective heat capacity
	RefT      float64 // K: reference temperature for the energy mean
	E0        float64 // kcal/mol: baseline energy
	KEff      float64 // kcal/mol/rad²: effective umbrella coupling
	SigmaU    float64 // rad: pseudo-torsion spread around the window
	SaltMean  float64 // pseudo ion-pairing coordinate mean
	SaltSigma float64 // its spread
	SaltScale float64 // kcal/mol per sqrt(M): salt energy coupling
	PHSites   int     // titratable sites of the pseudo protein
	PHPKa     float64 // their common pKa
	PHSigma   float64 // protonation-count spread

	torsionIdx map[string]int
	// boundSpec is the one simulation spec this engine instance serves,
	// matching RepEx's one-AMM-per-simulation design; it is captured at
	// first task preparation and may not change.
	boundSpec *core.Spec
}

// NewVirtual returns a virtual adapter with the given executable cost
// model and system size (atom count).
func NewVirtual(name string, cost CostModel, natoms int, seed int64) *Virtual {
	if natoms <= 0 {
		panic(fmt.Sprintf("engines: non-positive atom count %d", natoms))
	}
	return &Virtual{
		name:       name,
		cost:       cost,
		natoms:     natoms,
		seed:       seed,
		rng:        rand.New(rand.NewSource(seed)),
		CvEff:      2.0,
		RefT:       300,
		E0:         -2500,
		KEff:       3.0,
		SigmaU:     0.5,
		SaltMean:   -10,
		SaltSigma:  4,
		SaltScale:  8,
		PHSites:    8,
		PHPKa:      6.5,
		PHSigma:    1.2,
		torsionIdx: map[string]int{},
	}
}

// Name returns the adapter name.
func (v *Virtual) Name() string { return v.name }

// Atoms returns the modelled system size.
func (v *Virtual) Atoms() int { return v.natoms }

// InitReplica allocates the synthetic coordinate vector:
// one slot per dimension plus a trailing base-energy fluctuation.
func (v *Virtual) InitReplica(r *core.Replica, s *core.Spec) {
	v.bind(s)
	r.Synth = make([]float64, len(s.Dims)+1)
	v.resample(r, s)
	r.Energy = v.evalEnergy(r, r.Params, s)
}

// norm draws one standard normal, counting it for replayability.
func (v *Virtual) norm() float64 {
	v.draws++
	return v.rng.NormFloat64()
}

// RNGDraws returns the number of normal variates consumed so far
// (core.ReplayableEngine).
func (v *Virtual) RNGDraws() int64 { return v.draws }

// ReplayRNG resets the engine RNG to its seed and replays n draws,
// restoring the exact stochastic state of a checkpoint
// (core.ReplayableEngine).
func (v *Virtual) ReplayRNG(n int64) {
	v.rng = rand.New(rand.NewSource(v.seed))
	v.draws = 0
	for i := int64(0); i < n; i++ {
		v.norm()
	}
}

// resample redraws the synthetic coordinates, emulating the
// decorrelation of an MD segment.
func (v *Virtual) resample(r *core.Replica, s *core.Spec) {
	uSeen := 0
	for d, dim := range s.Dims {
		switch dim.Type {
		case exchange.Umbrella:
			center := v.restraintCenter(r.Params, uSeen)
			r.Synth[d] = md.WrapAngle(center + v.SigmaU*v.norm())
			uSeen++
		case exchange.Salt:
			r.Synth[d] = v.SaltMean + v.SaltSigma*v.norm()
		case exchange.PH:
			// Pseudo protonation count around the Henderson-
			// Hasselbalch mean at the replica's pH.
			mean := float64(v.PHSites) / (1 + math.Pow(10, r.Params.PH-v.PHPKa))
			r.Synth[d] = mean + v.PHSigma*v.norm()
		}
	}
	t := r.Params.TemperatureK
	mean := v.CvEff * (t - v.RefT)
	sigma := math.Sqrt(v.CvEff*md.KB) * t
	r.Synth[len(s.Dims)] = mean + sigma*v.norm()
}

// restraintCenter returns the centre of the i-th umbrella restraint in
// params (umbrella dims map to restraints in dimension order).
func (v *Virtual) restraintCenter(p md.Params, i int) float64 {
	if i < len(p.Restraints) {
		return p.Restraints[i].Center
	}
	return 0
}

// evalEnergy computes the synthetic potential of r's coordinates under
// arbitrary parameters.
func (v *Virtual) evalEnergy(r *core.Replica, under md.Params, s *core.Spec) float64 {
	e := v.E0 + r.Synth[len(s.Dims)]
	uSeen := 0
	for d, dim := range s.Dims {
		switch dim.Type {
		case exchange.Umbrella:
			dx := md.WrapAngle(r.Synth[d] - v.restraintCenter(under, uSeen))
			e += v.KEff * dx * dx
			uSeen++
		case exchange.Salt:
			e += v.SaltScale * r.Synth[d] * math.Sqrt(under.SaltM)
		case exchange.PH:
			// Semi-grand-canonical protonation term: each bound proton
			// costs kT ln10 (pH - pKa).
			kT := md.KB * under.TemperatureK
			e += r.Synth[d] * math.Ln10 * kT * (under.PH - v.PHPKa)
		}
	}
	return e
}

var (
	_ core.Engine           = (*Virtual)(nil)
	_ core.ReplayableEngine = (*Virtual)(nil)
)

// MDTask describes the MD segment task for a replica.
func (v *Virtual) MDTask(r *core.Replica, s *core.Spec, dim int) *task.Spec {
	v.bind(s)
	inFiles := v.cost.MDInFiles(s.Dims[dim].Type)
	outFiles := v.cost.MDOutFiles(s.Dims[dim].Type)
	return &task.Spec{
		Name:      fmt.Sprintf("md-r%03d-c%02d", r.ID, r.Cycle),
		Kind:      task.MD,
		ReplicaID: r.ID,
		Cores:     s.CoresPerReplica,
		Duration:  v.cost.MDSeconds(v.natoms, s.StepsPerCycle, s.CoresPerReplica),
		InFiles:   inFiles,
		InBytes:   int64(inFiles) * v.cost.MDFileBytes,
		OutFiles:  outFiles,
		OutBytes:  int64(outFiles) * v.cost.MDFileBytes,
		CanFail:   true,
	}
}

// ExchangeTask describes the single exchange-computation task for a
// dimension over n replicas.
func (v *Virtual) ExchangeTask(dim int, n int, s *core.Spec) *task.Spec {
	v.bind(s)
	return &task.Spec{
		Name:     fmt.Sprintf("ex-%s-d%d", s.Dims[dim].Type.Code(), dim),
		Kind:     task.Exchange,
		Cores:    1,
		Duration: v.cost.ExchangeSeconds(s.Dims[dim].Type, n),
		InFiles:  2,
		InBytes:  8 << 10,
		OutFiles: 1,
		OutBytes: 4 << 10,
	}
}

// SinglePointTasks returns one per-replica energy task for salt
// dimensions, SPEWidth cores wide, and nothing otherwise. This is the
// task doubling that makes S exchange expensive (§4.2).
func (v *Virtual) SinglePointTasks(dim int, group []*core.Replica, s *core.Spec) []*task.Spec {
	v.bind(s)
	if s.Dims[dim].Type != exchange.Salt {
		return nil
	}
	width := SPEWidth
	if len(group) < width {
		width = len(group)
	}
	if width < 1 {
		width = 1
	}
	specs := make([]*task.Spec, 0, len(group))
	for _, r := range group {
		specs = append(specs, &task.Spec{
			Name:      fmt.Sprintf("spe-r%03d", r.ID),
			Kind:      task.SinglePoint,
			ReplicaID: r.ID,
			Cores:     width,
			Duration:  v.cost.SPESeconds(v.natoms),
			InFiles:   2,
			InBytes:   v.cost.MDFileBytes,
			OutFiles:  1,
			OutBytes:  4 << 10,
		})
	}
	return specs
}

// boundSpec is the one simulation spec this engine instance serves.
var errRebind = fmt.Errorf("engines: virtual engine reused across different simulations")

func (v *Virtual) bind(s *core.Spec) {
	if v.boundSpec == nil {
		v.boundSpec = s
	} else if v.boundSpec != s {
		panic(errRebind)
	}
}

// OwnEnergy redraws the replica's synthetic configuration (the MD
// segment decorrelated it) and returns its energy under its own
// parameters. Called once per completed MD segment.
func (v *Virtual) OwnEnergy(r *core.Replica) float64 {
	s := v.boundSpec
	if s == nil {
		panic("engines: OwnEnergy before any task preparation")
	}
	v.resample(r, s)
	return v.evalEnergy(r, r.Params, s)
}

// CrossEnergy evaluates the stored configuration under foreign
// parameters.
func (v *Virtual) CrossEnergy(r *core.Replica, under md.Params) float64 {
	s := v.boundSpec
	if s == nil {
		panic("engines: CrossEnergy before any task preparation")
	}
	return v.evalEnergy(r, under, s)
}

// TorsionIndex assigns stable indexes to torsion labels (virtual engines
// have no real topology).
func (v *Virtual) TorsionIndex(label string) int {
	if i, ok := v.torsionIdx[label]; ok {
		return i
	}
	i := len(v.torsionIdx)
	v.torsionIdx[label] = i
	return i
}

// PrepOverhead models RepEx's client-side task preparation: near-linear
// in the task count, larger for multi-dimensional simulations ("more
// data associated with each replica, complexity of data structures is
// increased" — §4.1).
func (v *Virtual) PrepOverhead(nTasks, ndims int) float64 {
	return (0.5 + 0.002*float64(nTasks)) * (1 + 0.7*float64(ndims-1))
}
