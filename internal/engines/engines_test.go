package engines

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/md"
	"repro/internal/task"
)

// --- cost models ---

func TestSanderCalibration(t *testing.T) {
	m := SanderModel()
	// Reference machine: 6000 steps, 2881 atoms -> ~164.7 s so that
	// SuperMIC (1.18x) lands on the paper's 139.6 s.
	got := m.MDSeconds(2881, 6000, 1)
	if math.Abs(got/1.18-139.6) > 2 {
		t.Fatalf("sander 6000x2881 on SuperMIC = %v s, want ~139.6", got/1.18)
	}
	// sander is serial: more cores don't help.
	if m.MDSeconds(2881, 6000, 16) != got {
		t.Fatal("sander must not speed up with cores")
	}
}

func TestPmemdScalingShape(t *testing.T) {
	m := PmemdModel()
	t1 := m.MDSeconds(64366, 20000, 1)
	t16 := m.MDSeconds(64366, 20000, 16)
	t64 := m.MDSeconds(64366, 20000, 64)
	if t16 >= t1/4 {
		t.Fatalf("pmemd 16-core time %v not a large drop from serial %v", t16, t1)
	}
	// Diminishing returns beyond 16 cores (Figure 12's flattening).
	speedup16 := t1 / t16
	speedup64 := t1 / t64
	if speedup64 > 2.5*speedup16 {
		t.Fatalf("pmemd 64-core speedup %v vs 16-core %v: scaling too ideal", speedup64, speedup16)
	}
	if t64 >= t16 {
		t.Fatalf("64 cores (%v) not faster than 16 (%v)", t64, t16)
	}
	// pmemd serial is faster than sander serial.
	if t1 >= SanderModel().MDSeconds(64366, 20000, 1) {
		t.Fatal("pmemd serial not faster than sander")
	}
}

func TestNAMDExchangeNonMonomial(t *testing.T) {
	m := NAMDModel()
	// log-log slope between consecutive points must vary (the paper:
	// growth "can't be characterized as monomial").
	ns := []int{64, 216, 512, 1000, 1728}
	var slopes []float64
	for i := 1; i < len(ns); i++ {
		a := m.ExchangeSeconds(exchange.Temperature, ns[i-1])
		b := m.ExchangeSeconds(exchange.Temperature, ns[i])
		slopes = append(slopes, math.Log(b/a)/math.Log(float64(ns[i])/float64(ns[i-1])))
	}
	minS, maxS := slopes[0], slopes[0]
	for _, s := range slopes {
		minS = math.Min(minS, s)
		maxS = math.Max(maxS, s)
	}
	if maxS-minS < 0.02 {
		t.Fatalf("NAMD exchange slopes %v look monomial", slopes)
	}
}

func TestAmberExchangeNearLinear(t *testing.T) {
	m := SanderModel()
	t64 := m.ExchangeSeconds(exchange.Temperature, 64)
	t1728 := m.ExchangeSeconds(exchange.Temperature, 1728)
	// Near-linear growth: 27x replicas -> ~17-27x time given the
	// constant offset.
	if ratio := t1728 / t64; ratio < 10 || ratio > 27 {
		t.Fatalf("T exchange growth ratio %v not near-linear", ratio)
	}
	// U similar to T (within ~10%).
	u := m.ExchangeSeconds(exchange.Umbrella, 1728)
	if math.Abs(u-t1728)/t1728 > 0.1 {
		t.Fatalf("U exchange %v differs from T %v by >10%%", u, t1728)
	}
}

func TestStagingFilesOrderTUS(t *testing.T) {
	m := SanderModel()
	ft := m.MDOutFiles(exchange.Temperature)
	fu := m.MDOutFiles(exchange.Umbrella)
	fs := m.MDOutFiles(exchange.Salt)
	if !(ft < fu && fu < fs) {
		t.Fatalf("file counts T=%d U=%d S=%d, want T<U<S (Figure 5 ordering)", ft, fu, fs)
	}
}

// --- Amber format round trips ---

func TestMDINRoundTrip(t *testing.T) {
	in := MDIN{
		NSTLim:  6000,
		Dt:      0.002,
		Temp0:   309.5,
		GammaLn: 5,
		SaltCon: 0.25,
		Restraints: []md.TorsionRestraint{
			{Dihedral: 1, Center: md.Rad(60), K: 65.65},
			{Dihedral: 2, Center: md.Rad(-135), K: 65.65},
		},
	}
	text := WriteMDIN(in)
	got, err := ParseMDIN(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.NSTLim != in.NSTLim || got.Temp0 != in.Temp0 || got.SaltCon != in.SaltCon {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
	}
	if len(got.Restraints) != 2 {
		t.Fatalf("restraints lost: %d", len(got.Restraints))
	}
	for i := range got.Restraints {
		if math.Abs(got.Restraints[i].Center-in.Restraints[i].Center) > 1e-4 {
			t.Fatalf("restraint %d center %v vs %v", i, got.Restraints[i].Center, in.Restraints[i].Center)
		}
		if got.Restraints[i].Dihedral != in.Restraints[i].Dihedral {
			t.Fatal("restraint dihedral index lost")
		}
	}
}

func TestParseMDINErrors(t *testing.T) {
	if _, err := ParseMDIN("&cntrl\n&end\n"); err == nil {
		t.Error("mdin without nstlim accepted")
	}
	if _, err := ParseMDIN(" nstlim = banana,\n"); err == nil {
		t.Error("bad nstlim value accepted")
	}
}

func TestMDInfoRoundTrip(t *testing.T) {
	text := WriteMDInfo(MDInfo{EPtot: -2501.3324, Temp: 305.12, NSteps: 6000})
	got, err := ParseMDInfo(text)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.EPtot+2501.3324) > 1e-3 || got.NSteps != 6000 {
		t.Fatalf("mdinfo round trip: %+v", got)
	}
	if math.Abs(got.Temp-305.12) > 1e-2 {
		t.Fatalf("temp round trip: %v", got.Temp)
	}
}

func TestParseMDInfoMissingEnergy(t *testing.T) {
	if _, err := ParseMDInfo("nothing here"); err == nil {
		t.Error("mdinfo without EPtot accepted")
	}
}

func TestGroupFileRoundTrip(t *testing.T) {
	ids := []int{0, 3, 7, 12}
	text := WriteGroupFile(ids, "ala")
	got, err := ParseGroupFile(text)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("group file round trip %v vs %v", got, ids)
	}
}

func TestParseGroupFileMalformed(t *testing.T) {
	if _, err := ParseGroupFile("-X something"); err == nil {
		t.Error("malformed group file accepted")
	}
}

// Property: any MDIN with sane values round-trips.
func TestPropertyMDINRoundTrip(t *testing.T) {
	f := func(steps uint16, tRaw uint16, saltRaw uint8) bool {
		in := MDIN{
			NSTLim:  int(steps%20000) + 1,
			Dt:      0.002,
			Temp0:   float64(tRaw%500) + 1,
			GammaLn: 5,
			SaltCon: float64(saltRaw) / 100,
		}
		got, err := ParseMDIN(WriteMDIN(in))
		return err == nil && got.NSTLim == in.NSTLim &&
			got.Temp0 == in.Temp0 && got.SaltCon == in.SaltCon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- NAMD format round trips ---

func TestNAMDConfigRoundTrip(t *testing.T) {
	c := NAMDConfig{
		Steps:       4000,
		TimestepFS:  1,
		Temperature: 341.5,
		LangevinOn:  true,
		Damping:     5,
		Restraints:  []md.TorsionRestraint{{Dihedral: 4, Center: md.Rad(45), K: 10}},
	}
	got, err := ParseNAMDConfig(WriteNAMDConfig(c))
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps != 4000 || got.Temperature != 341.5 || !got.LangevinOn {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Restraints) != 1 || got.Restraints[0].Dihedral != 4 {
		t.Fatalf("restraints: %+v", got.Restraints)
	}
	if math.Abs(got.Restraints[0].Center-md.Rad(45)) > 1e-4 {
		t.Fatal("restraint center lost")
	}
}

func TestParseNAMDConfigErrors(t *testing.T) {
	if _, err := ParseNAMDConfig("timestep 1\n"); err == nil {
		t.Error("config without run accepted")
	}
	if _, err := ParseNAMDConfig("run banana\n"); err == nil {
		t.Error("bad run value accepted")
	}
}

func TestNAMDEnergyRoundTrip(t *testing.T) {
	log := "Info: startup\n" + NAMDEnergyLine(2000, -1234.5, 299.8) + "\n" +
		NAMDEnergyLine(4000, -1250.25, 301.2) + "\n"
	step, pot, temp, err := ParseNAMDEnergy(log)
	if err != nil {
		t.Fatal(err)
	}
	if step != 4000 || math.Abs(pot+1250.25) > 1e-3 || math.Abs(temp-301.2) > 1e-3 {
		t.Fatalf("parsed %d %v %v", step, pot, temp)
	}
	if _, _, _, err := ParseNAMDEnergy("no energy"); err == nil {
		t.Error("log without ENERGY accepted")
	}
}

// --- virtual engine ---

func virtSpec() *core.Spec {
	return &core.Spec{
		Name: "v",
		Dims: []core.Dimension{
			{Type: exchange.Temperature, Values: core.GeometricTemperatures(280, 360, 4)},
			{Type: exchange.Umbrella, Values: core.UniformWindows(4), Torsion: "phi", K: core.UmbrellaK002},
			{Type: exchange.Salt, Values: []float64{0.1, 0.4, 1.6, 6.4}},
		},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          1,
		Seed:            2,
	}
}

func newVirtReplica(v *Virtual, s *core.Spec, slot int) *core.Replica {
	r := &core.Replica{ID: slot, Slot: slot, Alive: true}
	grid := s.Grid()
	coord := grid.Coord(slot)
	r.Params = md.Params{TemperatureK: s.Dims[0].Values[coord[0]], SaltM: s.Dims[2].Values[coord[2]]}
	r.Params.Restraints = []md.TorsionRestraint{{
		Dihedral: v.TorsionIndex("phi"), Center: s.Dims[1].Values[coord[1]], K: s.Dims[1].K,
	}}
	v.InitReplica(r, s)
	return r
}

func TestVirtualEnergyConsistency(t *testing.T) {
	s := virtSpec()
	v := NewAmberVirtual(2881, 1)
	r := newVirtReplica(v, s, 5)
	// CrossEnergy under own params equals the stored own energy.
	own := r.Energy
	cross := v.CrossEnergy(r, r.Params)
	if math.Abs(own-cross) > 1e-9 {
		t.Fatalf("CrossEnergy under own params %v != OwnEnergy %v", cross, own)
	}
}

func TestVirtualTemperatureDependence(t *testing.T) {
	s := virtSpec()
	v := NewAmberVirtual(2881, 1)
	// Average energies at the coldest and hottest windows: hotter must
	// be higher on average (positive effective heat capacity).
	meanAt := func(slot int) float64 {
		r := newVirtReplica(v, s, slot)
		sum := 0.0
		for i := 0; i < 400; i++ {
			sum += v.OwnEnergy(r)
		}
		return sum / 400
	}
	cold := meanAt(0)        // coord (0,0,0): 280 K
	hot := meanAt(3 * 4 * 4) // coord (3,0,0): 360 K
	if hot <= cold {
		t.Fatalf("mean energy at 360K (%v) not above 280K (%v)", hot, cold)
	}
}

func TestVirtualUmbrellaCrossPenalty(t *testing.T) {
	s := virtSpec()
	v := NewAmberVirtual(2881, 1)
	r := newVirtReplica(v, s, 0) // umbrella window 0
	// Evaluate under a parameter set whose restraint centre is the
	// opposite window: energy must rise on average.
	far := r.Params.Clone()
	far.Restraints[0].Center = math.Pi
	dSum := 0.0
	for i := 0; i < 200; i++ {
		v.OwnEnergy(r)
		dSum += v.CrossEnergy(r, far) - v.CrossEnergy(r, r.Params)
	}
	if dSum/200 <= 0 {
		t.Fatalf("mean cross-window penalty %v, want positive", dSum/200)
	}
}

func TestVirtualSaltCoupling(t *testing.T) {
	s := virtSpec()
	v := NewAmberVirtual(2881, 1)
	r := newVirtReplica(v, s, 0)
	low := r.Params.Clone()
	low.SaltM = 0.1
	high := r.Params.Clone()
	high.SaltM = 6.4
	// With a negative pseudo ion-pairing coordinate mean, higher salt
	// lowers the energy (screening stabilizes).
	dSum := 0.0
	for i := 0; i < 200; i++ {
		v.OwnEnergy(r)
		dSum += v.CrossEnergy(r, high) - v.CrossEnergy(r, low)
	}
	if dSum/200 >= 0 {
		t.Fatalf("salt coupling mean %v, want negative", dSum/200)
	}
}

func TestVirtualMDTaskShape(t *testing.T) {
	s := virtSpec()
	v := NewAmberVirtual(2881, 1)
	r := newVirtReplica(v, s, 0)
	for dim, wantFiles := range map[int]int{0: 3, 1: 4, 2: 5} { // T,U,S
		spec := v.MDTask(r, s, dim)
		if spec.Kind != task.MD || spec.Cores != 1 || spec.Duration <= 0 {
			t.Fatalf("dim %d: bad MD task %+v", dim, spec)
		}
		if spec.OutFiles != wantFiles {
			t.Fatalf("dim %d: out files %d, want %d", dim, spec.OutFiles, wantFiles)
		}
		if !spec.CanFail {
			t.Fatal("MD tasks must be subject to fault injection")
		}
	}
}

func TestVirtualSinglePointOnlyForSalt(t *testing.T) {
	s := virtSpec()
	v := NewAmberVirtual(2881, 1)
	group := []*core.Replica{newVirtReplica(v, s, 0), newVirtReplica(v, s, 1)}
	if got := v.SinglePointTasks(0, group, s); got != nil {
		t.Fatal("T dimension produced SPE tasks")
	}
	if got := v.SinglePointTasks(1, group, s); got != nil {
		t.Fatal("U dimension produced SPE tasks")
	}
	spe := v.SinglePointTasks(2, group, s)
	if len(spe) != 2 {
		t.Fatalf("S dimension SPE tasks %d, want one per replica", len(spe))
	}
	for _, sp := range spe {
		if sp.Cores != 2 { // min(SPEWidth, group size)
			t.Fatalf("SPE width %d, want 2", sp.Cores)
		}
	}
}

func TestVirtualPrepOverheadGrowsWithDims(t *testing.T) {
	v := NewAmberVirtual(2881, 1)
	o1 := v.PrepOverhead(1000, 1)
	o3 := v.PrepOverhead(1000, 3)
	if o3 <= o1 {
		t.Fatalf("3D prep overhead %v not above 1D %v", o3, o1)
	}
	if v.PrepOverhead(64, 1) >= v.PrepOverhead(1728, 1) {
		t.Fatal("prep overhead must grow with task count")
	}
}

func TestVirtualRebindPanics(t *testing.T) {
	v := NewAmberVirtual(2881, 1)
	s1 := virtSpec()
	newVirtReplica(v, s1, 0)
	defer func() {
		if recover() == nil {
			t.Error("reusing a virtual engine across specs did not panic")
		}
	}()
	s2 := virtSpec()
	r2 := &core.Replica{ID: 0, Slot: 0, Alive: true, Params: md.Params{TemperatureK: 300}}
	v.InitReplica(r2, s2)
}

// --- real engine ---

func TestRealEngineFlavors(t *testing.T) {
	top, st := md.BuildAlanineDipeptide()
	sys := md.MustNewSystem(top, md.Box{}, 0)
	if _, err := NewReal("gromacs", sys, st, 1); err == nil {
		t.Error("unknown flavor accepted")
	}
	for _, flavor := range []string{"amber", "namd"} {
		e, err := NewReal(flavor, sys, st, 1)
		if err != nil {
			t.Fatalf("%s: %v", flavor, err)
		}
		if !strings.Contains(e.Name(), flavor) {
			t.Fatalf("engine name %q lacks flavor", e.Name())
		}
	}
}

func TestRealEngineMDTaskRuns(t *testing.T) {
	top, st := md.BuildAlanineDipeptide()
	sys := md.MustNewSystem(top, md.Box{}, 0)
	prm := md.Params{TemperatureK: 300}
	md.Minimize(sys, st, prm, 500, 1e-2)
	e := MustNewReal("amber", sys, st, 42)
	spec := &core.Spec{
		Name:            "real",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: []float64{290, 310}}},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   50,
		Cycles:          1,
		Seed:            1,
	}
	r := &core.Replica{ID: 0, Slot: 0, Alive: true, Params: md.Params{TemperatureK: 290}}
	e.InitReplica(r, spec)
	if r.State == nil {
		t.Fatal("InitReplica did not attach a state")
	}
	ts := e.MDTask(r, spec, 0)
	if ts.Run == nil {
		t.Fatal("real MD task lacks a Run closure")
	}
	if err := ts.Run(); err != nil {
		t.Fatalf("MD task failed: %v", err)
	}
	if e.WindowCount() != 1 {
		t.Fatalf("window count %d, want 1", e.WindowCount())
	}
	tr := e.WindowTrajectory(0)
	if tr == nil || tr.Steps != 50 {
		t.Fatalf("trajectory steps %v, want 50", tr)
	}
	// Energies well defined.
	own := e.OwnEnergy(r)
	hot := r.Params.Clone()
	hot.SaltM = 1.0
	cross := e.CrossEnergy(r, hot)
	if math.IsNaN(own) || math.IsNaN(cross) {
		t.Fatal("NaN energies")
	}
	if own == cross {
		t.Fatal("salt change did not alter the real cross energy")
	}
}

func TestRealEngineNAMDInputRoundTrip(t *testing.T) {
	top, st := md.BuildAlanineDipeptide()
	sys := md.MustNewSystem(top, md.Box{}, 0)
	e := MustNewReal("namd", sys, st, 42)
	spec := &core.Spec{
		Name:            "real-namd",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: []float64{300}}},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   20,
		Cycles:          1,
	}
	r := &core.Replica{ID: 0, Slot: 0, Alive: true, Params: md.Params{TemperatureK: 300}}
	e.InitReplica(r, spec)
	input := e.GenerateInput(r, spec)
	if !strings.Contains(input, "langevin") {
		t.Fatalf("NAMD input missing langevin block:\n%s", input)
	}
	if err := e.MDTask(r, spec, 0).Run(); err != nil {
		t.Fatalf("NAMD-flavoured task failed: %v", err)
	}
}

func TestRealEngineTorsionIndex(t *testing.T) {
	top, st := md.BuildAlanineDipeptide()
	sys := md.MustNewSystem(top, md.Box{}, 0)
	e := MustNewReal("amber", sys, st, 1)
	if e.TorsionIndex("phi") != top.FindDihedral("phi") {
		t.Fatal("torsion index mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown torsion label did not panic")
		}
	}()
	e.TorsionIndex("chi99")
}

func TestMixDeterministic(t *testing.T) {
	if mix(1, 2, 3) != mix(1, 2, 3) {
		t.Fatal("mix not deterministic")
	}
	if mix(1, 2, 3) == mix(3, 2, 1) {
		t.Fatal("mix ignores order")
	}
}
