package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv()
	var at float64
	e.Go("p", func(p *Proc) {
		p.Sleep(2.5)
		at = p.Now()
	})
	e.Run()
	if at != 2.5 {
		t.Fatalf("woke at %v, want 2.5", at)
	}
	if e.Now() != 2.5 {
		t.Fatalf("env clock %v, want 2.5", e.Now())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEnv()
	var at float64
	e.Go("p", func(p *Proc) {
		p.Sleep(-3)
		at = p.Now()
	})
	e.Run()
	if at != 0 {
		t.Fatalf("woke at %v, want 0", at)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Go("b", func(p *Proc) {
		p.Sleep(2)
		order = append(order, "b")
	})
	e.Go("a", func(p *Proc) {
		p.Sleep(1)
		order = append(order, "a")
	})
	e.Go("c", func(p *Proc) {
		p.Sleep(3)
		order = append(order, "c")
	})
	e.Run()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	// Events at identical times run in scheduling (seq) order.
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(1)
			order = append(order, i)
		})
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events out of FIFO order: %v", order)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEnv()
	hit := 0
	e.Go("p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(1)
			hit++
		}
	})
	e.RunUntil(4.5)
	if hit != 4 {
		t.Fatalf("hit = %d, want 4", hit)
	}
	if e.Now() != 4.5 {
		t.Fatalf("clock = %v, want 4.5", e.Now())
	}
	e.Run()
	if hit != 10 {
		t.Fatalf("after Run, hit = %d, want 10", hit)
	}
}

func TestGoAtStartsLater(t *testing.T) {
	e := NewEnv()
	var at float64
	e.GoAt("late", 7, func(p *Proc) { at = p.Now() })
	e.Run()
	if at != 7 {
		t.Fatalf("started at %v, want 7", at)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEnv()
	var childAt float64
	e.Go("parent", func(p *Proc) {
		p.Sleep(1)
		p.Env().Go("child", func(c *Proc) {
			c.Sleep(2)
			childAt = c.Now()
		})
		p.Sleep(10)
	})
	e.Run()
	if childAt != 3 {
		t.Fatalf("child at %v, want 3", childAt)
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	woke := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			s.Wait(p)
			woke++
		})
	}
	e.Go("caster", func(p *Proc) {
		p.Sleep(3)
		s.Broadcast()
	})
	e.Run()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestSignalWakesOne(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var woke []string
	for _, n := range []string{"a", "b", "c"} {
		n := n
		e.Go(n, func(p *Proc) {
			s.Wait(p)
			woke = append(woke, n)
		})
	}
	e.Go("caster", func(p *Proc) {
		p.Sleep(1)
		s.Signal()
		p.Sleep(1)
		s.Signal()
	})
	e.Run()
	if !reflect.DeepEqual(woke, []string{"a", "b"}) {
		t.Fatalf("woke = %v, want [a b]", woke)
	}
	if s.Waiters() != 1 {
		t.Fatalf("waiters = %d, want 1", s.Waiters())
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var got bool
	var at float64
	e.Go("w", func(p *Proc) {
		got = s.WaitTimeout(p, 5)
		at = p.Now()
	})
	e.Run()
	if got {
		t.Fatal("WaitTimeout returned true, want timeout (false)")
	}
	if at != 5 {
		t.Fatalf("timed out at %v, want 5", at)
	}
}

func TestWaitTimeoutSignaledFirst(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var got bool
	var at float64
	e.Go("w", func(p *Proc) {
		got = s.WaitTimeout(p, 5)
		at = p.Now()
	})
	e.Go("caster", func(p *Proc) {
		p.Sleep(2)
		s.Broadcast()
	})
	e.Run()
	if !got {
		t.Fatal("WaitTimeout returned false, want signal (true)")
	}
	if at != 2 {
		t.Fatalf("woke at %v, want 2", at)
	}
	// The stale timeout event must not wake the process again.
	if e.Now() != 2 {
		t.Fatalf("final clock %v, want 2 (timeout event dropped)", e.Now())
	}
}

func TestStaleTimeoutAfterResleep(t *testing.T) {
	// A process signaled before its timeout then sleeping again must not
	// be woken early by the stale timeout event.
	e := NewEnv()
	s := NewSignal(e)
	var at float64
	e.Go("w", func(p *Proc) {
		s.WaitTimeout(p, 10)
		p.Sleep(20)
		at = p.Now()
	})
	e.Go("caster", func(p *Proc) {
		p.Sleep(1)
		s.Broadcast()
	})
	e.Run()
	if at != 21 {
		t.Fatalf("woke at %v, want 21 (stale timeout must be dropped)", at)
	}
}

func TestResourceBasicAcquireRelease(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 4)
	e.Go("p", func(p *Proc) {
		r.Acquire(p, 3)
		if r.InUse() != 3 || r.Available() != 1 {
			t.Errorf("in use %d avail %d, want 3/1", r.InUse(), r.Available())
		}
		r.Release(3)
	})
	e.Run()
	if r.InUse() != 0 {
		t.Fatalf("in use %d after release, want 0", r.InUse())
	}
}

func TestResourceContention(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		e.Go("job", func(p *Proc) {
			r.Acquire(p, 1)
			p.Sleep(10)
			r.Release(1)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []float64{10, 10, 20, 20}
	if !reflect.DeepEqual(finish, want) {
		t.Fatalf("finish times %v, want %v", finish, want)
	}
	if r.PeakInUse() != 2 {
		t.Fatalf("peak %d, want 2", r.PeakInUse())
	}
}

func TestResourceFIFOHeadOfLineBlocking(t *testing.T) {
	// A large request at the head of the queue blocks later small ones.
	e := NewEnv()
	r := NewResource(e, 4)
	var order []string
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(10)
		r.Release(3)
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(1)
		r.Acquire(p, 4) // cannot fit until holder releases
		order = append(order, "big")
		r.Release(4)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(2)
		r.Acquire(p, 1) // would fit now, but queued behind big
		order = append(order, "small")
		r.Release(1)
	})
	e.Run()
	if !reflect.DeepEqual(order, []string{"big", "small"}) {
		t.Fatalf("order %v, want [big small]", order)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 2)
	if !r.TryAcquire(2) {
		t.Fatal("TryAcquire(2) on empty pool failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) on full pool succeeded")
	}
	r.Release(2)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) after release failed")
	}
}

func TestResourceAcquireBeyondCapacityPanics(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 2)
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Acquire beyond capacity did not panic")
			}
		}()
		r.Acquire(p, 3)
	})
	e.Run()
}

func TestResourceBusyIntegral(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 4)
	e.Go("p", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(5)
		r.Release(2)
		p.Sleep(5)
	})
	e.Run()
	if got := r.BusyIntegral(); got != 10 {
		t.Fatalf("busy integral %v, want 10 (2 cores x 5 s)", got)
	}
}

func TestCompletionAwait(t *testing.T) {
	e := NewEnv()
	c := NewCompletion(e)
	errBoom := errors.New("boom")
	var got error
	var at float64
	e.Go("waiter", func(p *Proc) {
		got = c.Await(p)
		at = p.Now()
	})
	e.Go("worker", func(p *Proc) {
		p.Sleep(4)
		c.Complete(errBoom)
	})
	e.Run()
	if got != errBoom {
		t.Fatalf("err = %v, want boom", got)
	}
	if at != 4 || c.At() != 4 {
		t.Fatalf("completed at %v/%v, want 4", at, c.At())
	}
}

func TestCompletionAwaitAlreadyDone(t *testing.T) {
	e := NewEnv()
	c := NewCompletion(e)
	var at float64
	e.Go("worker", func(p *Proc) { c.Complete(nil) })
	e.Go("late", func(p *Proc) {
		p.Sleep(9)
		if err := c.Await(p); err != nil {
			t.Errorf("err = %v, want nil", err)
		}
		at = p.Now()
	})
	e.Run()
	if at != 9 {
		t.Fatalf("await returned at %v, want 9 (no extra blocking)", at)
	}
}

func TestCompletionDoubleCompletePanics(t *testing.T) {
	e := NewEnv()
	c := NewCompletion(e)
	e.Go("p", func(p *Proc) {
		c.Complete(nil)
		defer func() {
			if recover() == nil {
				t.Error("double Complete did not panic")
			}
		}()
		c.Complete(nil)
	})
	e.Run()
}

func TestCompletionAwaitTimeout(t *testing.T) {
	e := NewEnv()
	c := NewCompletion(e)
	var ok bool
	e.Go("w", func(p *Proc) { ok = c.AwaitTimeout(p, 3) })
	e.Go("worker", func(p *Proc) {
		p.Sleep(10)
		c.Complete(nil)
	})
	e.Run()
	if ok {
		t.Fatal("AwaitTimeout = true, want false (timeout)")
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEnv()
	cs := make([]*Completion, 5)
	for i := range cs {
		cs[i] = NewCompletion(e)
		d := float64(5 - i) // reverse completion order
		c := cs[i]
		e.Go("worker", func(p *Proc) {
			p.Sleep(d)
			c.Complete(nil)
		})
	}
	var at float64
	e.Go("w", func(p *Proc) {
		WaitAll(p, cs)
		at = p.Now()
	})
	e.Run()
	if at != 5 {
		t.Fatalf("WaitAll returned at %v, want 5", at)
	}
}

func TestDeterminism(t *testing.T) {
	// The same randomized workload replayed twice must produce identical
	// completion traces.
	run := func(seed int64) []float64 {
		e := NewEnv()
		rng := rand.New(rand.NewSource(seed))
		r := NewResource(e, 3)
		var trace []float64
		for i := 0; i < 50; i++ {
			d := rng.Float64() * 10
			s := rng.Float64() * 5
			e.Go("job", func(p *Proc) {
				p.Sleep(s)
				r.Acquire(p, 1)
				p.Sleep(d)
				r.Release(1)
				trace = append(trace, p.Now())
			})
		}
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different traces")
	}
}

func TestLiveCount(t *testing.T) {
	e := NewEnv()
	e.Go("p", func(p *Proc) { p.Sleep(1) })
	if e.Live() != 1 {
		t.Fatalf("live = %d, want 1", e.Live())
	}
	e.Run()
	if e.Live() != 0 {
		t.Fatalf("live = %d after run, want 0", e.Live())
	}
}

// Property: for any set of sleep durations, processes complete in
// nondecreasing time order equal to the sorted durations.
func TestPropertySleepOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		e := NewEnv()
		var finish []float64
		for _, r := range raw {
			d := float64(r) / 100
			e.Go("p", func(p *Proc) {
				p.Sleep(d)
				finish = append(finish, p.Now())
			})
		}
		e.Run()
		if !sort.Float64sAreSorted(finish) {
			return false
		}
		want := make([]float64, len(raw))
		for i, r := range raw {
			want[i] = float64(r) / 100
		}
		sort.Float64s(want)
		return reflect.DeepEqual(finish, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: resource accounting never exceeds capacity and ends at zero.
func TestPropertyResourceNeverOversubscribed(t *testing.T) {
	f := func(seed int64, capRaw uint8, jobsRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		jobs := int(jobsRaw%40) + 1
		e := NewEnv()
		r := NewResource(e, capacity)
		rng := rand.New(rand.NewSource(seed))
		ok := true
		for i := 0; i < jobs; i++ {
			n := rng.Intn(capacity) + 1
			d := rng.Float64() * 3
			e.Go("job", func(p *Proc) {
				r.Acquire(p, n)
				if r.InUse() > r.Capacity() {
					ok = false
				}
				p.Sleep(d)
				r.Release(n)
			})
		}
		e.Run()
		return ok && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
