// Package sim provides a deterministic discrete-event simulation (DES)
// kernel with a virtual clock, cooperative processes, counting resources
// and condition signals.
//
// The kernel is the substrate on which the HPC cluster model
// (internal/cluster) and the pilot-job runtime (internal/pilot) execute in
// virtual time, so that experiments involving thousands of CPU cores and
// hours of wall time run in milliseconds while preserving ordering,
// contention and queueing behaviour.
//
// Processes are goroutines that run one at a time, hand-shaking with the
// kernel: at any instant either the kernel or exactly one process is
// active, which makes the simulation fully deterministic for a fixed seed
// and spawn order.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Env is a discrete-event simulation environment. The zero value is not
// usable; create one with NewEnv.
type Env struct {
	now    float64
	events eventHeap
	seq    int64
	yield  chan struct{}
	nlive  int
	trace  func(t float64, msg string)
}

// NewEnv returns a fresh simulation environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() float64 { return e.now }

// SetTrace installs a trace hook invoked on process wakeups; nil disables.
func (e *Env) SetTrace(fn func(t float64, msg string)) { e.trace = fn }

// Proc is a cooperative simulation process. All blocking methods
// (Sleep, Signal.Wait, Resource.Acquire, ...) must be called from the
// goroutine running the process body.
type Proc struct {
	env  *Env
	name string
	// resume is the kernel -> process hand-off channel.
	resume chan struct{}
	// gen is the wakeup generation; events scheduled for an earlier
	// generation are stale and are dropped by the kernel. This is what
	// lets a process wait on "signal OR timeout" without double-resume.
	gen  int64
	dead bool
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.env.now }

type event struct {
	t   float64
	seq int64
	p   *Proc
	gen int64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// schedule arranges for p to be resumed at time t with its current
// generation. Stale events (generation mismatch at pop time) are dropped.
func (e *Env) schedule(p *Proc, t float64) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, p: p, gen: p.gen})
}

// Go spawns a new process that starts at the current virtual time.
// It may be called before Run or from inside another process.
//
// fn must return normally: terminating the goroutine without returning
// (runtime.Goexit, e.g. via testing.T.Fatal) leaves the kernel waiting
// for a yield that never comes.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nlive++
	go func() {
		<-p.resume // wait until the kernel first schedules us
		fn(p)
		p.dead = true
		e.nlive--
		e.yield <- struct{}{}
	}()
	e.schedule(p, e.now)
	return p
}

// GoAt spawns a process that starts at absolute virtual time t (clamped to
// now if in the past).
func (e *Env) GoAt(name string, t float64, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nlive++
	go func() {
		<-p.resume
		fn(p)
		p.dead = true
		e.nlive--
		e.yield <- struct{}{}
	}()
	e.schedule(p, t)
	return p
}

// Run executes events until none remain.
func (e *Env) Run() { e.RunUntil(math.Inf(1)) }

// RunUntil executes events with timestamps <= t and then stops, leaving
// later events queued. The clock ends at min(t, last event time).
func (e *Env) RunUntil(t float64) {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.t > t {
			heap.Push(&e.events, ev)
			e.now = t
			return
		}
		if ev.p.dead || ev.gen != ev.p.gen {
			continue // stale wakeup
		}
		e.now = ev.t
		if e.trace != nil {
			e.trace(e.now, ev.p.name)
		}
		ev.p.gen++
		ev.p.resume <- struct{}{}
		<-e.yield
	}
}

// Pending reports the number of queued (possibly stale) events.
func (e *Env) Pending() int { return len(e.events) }

// Live reports the number of live (spawned, not finished) processes.
func (e *Env) Live() int { return e.nlive }

// block yields control to the kernel and waits to be resumed.
func (p *Proc) block() {
	p.env.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d virtual seconds. Negative d is treated
// as zero (yield to same-time events already queued).
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p, p.env.now+d)
	p.block()
}

// Yield reschedules the process at the current time, letting other
// same-time events run first.
func (p *Proc) Yield() { p.Sleep(0) }

// ---------------------------------------------------------------------------
// Signal: condition-variable style wakeups.

// Signal is a broadcast/signal condition for processes. The zero value is
// not usable; create with NewSignal.
type Signal struct {
	env     *Env
	waiters []sigWaiter
}

type sigWaiter struct {
	p        *Proc
	gen      int64
	notified *bool
}

// NewSignal returns a new Signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks the calling process until Signal or Broadcast is invoked.
func (s *Signal) Wait(p *Proc) {
	ok := false
	s.waiters = append(s.waiters, sigWaiter{p: p, gen: p.gen, notified: &ok})
	p.block()
}

// WaitTimeout blocks until the signal fires or d virtual seconds elapse.
// It reports whether the signal fired (true) or the timeout expired
// (false).
func (s *Signal) WaitTimeout(p *Proc, d float64) bool {
	if d < 0 {
		d = 0
	}
	ok := false
	s.waiters = append(s.waiters, sigWaiter{p: p, gen: p.gen, notified: &ok})
	p.env.schedule(p, p.env.now+d) // timeout event, same generation
	p.block()
	return ok
}

// Broadcast wakes all currently waiting processes at the current time.
func (s *Signal) Broadcast() {
	for i := range s.waiters {
		w := &s.waiters[i]
		if w.p.dead || w.p.gen != w.gen {
			continue // already woken by timeout or elsewhere
		}
		*w.notified = true
		s.env.schedule(w.p, s.env.now)
	}
	s.waiters = s.waiters[:0]
}

// Signal wakes a single waiting process (FIFO), if any.
func (s *Signal) Signal() {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		if w.p.dead || w.p.gen != w.gen {
			continue
		}
		*w.notified = true
		s.env.schedule(w.p, s.env.now)
		return
	}
}

// Waiters reports the number of registered (possibly stale) waiters.
func (s *Signal) Waiters() int { return len(s.waiters) }

// ---------------------------------------------------------------------------
// Resource: counting semaphore with FIFO queueing in virtual time.

// Resource models a pool of interchangeable units (e.g. CPU cores) that
// processes acquire and release. Queueing is strict FIFO: a large request
// at the head blocks smaller requests behind it, like a conservative
// backfill-free scheduler.
type Resource struct {
	env      *Env
	capacity int
	used     int
	queue    []resWaiter
	peakUsed int
	// busyIntegral accumulates used*dt for utilization accounting.
	busyIntegral float64
	lastUpdate   float64
}

type resWaiter struct {
	p       *Proc
	n       int
	granted *bool
	// aborted is non-nil for AcquireAbortable waiters: a capacity shrink
	// that makes the request permanently unsatisfiable sets it and wakes
	// the waiter instead of leaving it queued forever.
	aborted *bool
}

// NewResource returns a resource with the given capacity.
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 0 {
		panic(fmt.Sprintf("sim: negative resource capacity %d", capacity))
	}
	return &Resource{env: env, capacity: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.used }

// Available returns capacity minus in-use units.
func (r *Resource) Available() int { return r.capacity - r.used }

// PeakInUse returns the maximum concurrently held units observed.
func (r *Resource) PeakInUse() int { return r.peakUsed }

// QueueLen returns the number of waiting acquisitions.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) account() {
	now := r.env.now
	r.busyIntegral += float64(r.used) * (now - r.lastUpdate)
	r.lastUpdate = now
}

// BusyIntegral returns the time integral of units-in-use (unit-seconds)
// up to the current virtual time.
func (r *Resource) BusyIntegral() float64 {
	r.account()
	return r.busyIntegral
}

// Acquire blocks the calling process until n units are available and held.
// Acquiring more than the capacity panics (it would deadlock forever).
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 {
		return
	}
	if n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d exceeds capacity %d", n, r.capacity))
	}
	if len(r.queue) == 0 && r.used+n <= r.capacity {
		r.take(n)
		return
	}
	granted := false
	r.queue = append(r.queue, resWaiter{p: p, n: n, granted: &granted})
	for !granted {
		p.block()
	}
}

// AcquireAbortable blocks like Acquire but never deadlocks on an
// oversized request: it reports false immediately when n exceeds the
// current capacity, and false later if a capacity shrink (SetCapacity)
// makes the queued request unsatisfiable. It reports true once the
// units are held.
func (r *Resource) AcquireAbortable(p *Proc, n int) bool {
	if n <= 0 {
		return true
	}
	if n > r.capacity {
		return false
	}
	if len(r.queue) == 0 && r.used+n <= r.capacity {
		r.take(n)
		return true
	}
	granted, aborted := false, false
	r.queue = append(r.queue, resWaiter{p: p, n: n, granted: &granted, aborted: &aborted})
	for !granted && !aborted {
		p.block()
	}
	return granted
}

// TryAcquire attempts to take n units without blocking and reports success.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 {
		return true
	}
	if len(r.queue) == 0 && r.used+n <= r.capacity {
		r.take(n)
		return true
	}
	return false
}

func (r *Resource) take(n int) {
	r.account()
	r.used += n
	if r.used > r.peakUsed {
		r.peakUsed = r.used
	}
}

// Release returns n units to the pool and grants queued requests in FIFO
// order while they fit.
func (r *Resource) Release(n int) {
	if n <= 0 {
		return
	}
	r.account()
	r.used -= n
	if r.used < 0 {
		panic("sim: resource release below zero")
	}
	r.grantQueued()
}

// grantQueued grants queued requests in FIFO order while they fit.
func (r *Resource) grantQueued() {
	for len(r.queue) > 0 {
		w := r.queue[0]
		if w.p.dead {
			r.queue = r.queue[1:]
			continue
		}
		if r.used+w.n > r.capacity {
			break
		}
		r.queue = r.queue[1:]
		r.take(w.n)
		*w.granted = true
		r.env.schedule(w.p, r.env.now)
	}
}

// SetCapacity changes the capacity in place. Growing grants queued
// requests that now fit (FIFO); shrinking leaves in-use units
// untouched — the pool is simply over-committed until holders release —
// and aborts queued AcquireAbortable requests wider than the new
// capacity, since no sequence of releases could ever satisfy them.
// Queued plain Acquire requests are never aborted: their callers hold
// no abort path, so they stay queued (and a shrink below their width
// leaves them blocked until a matching grow, mirroring Acquire's
// capacity panic contract).
func (r *Resource) SetCapacity(n int) {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative resource capacity %d", n))
	}
	grew := n > r.capacity
	r.capacity = n
	if grew {
		r.grantQueued()
		return
	}
	keep := r.queue[:0]
	for _, w := range r.queue {
		if w.n > n && w.aborted != nil {
			*w.aborted = true
			r.env.schedule(w.p, r.env.now)
			continue
		}
		keep = append(keep, w)
	}
	r.queue = keep
}

// ---------------------------------------------------------------------------
// Completion: one-shot latch usable as a future.

// Completion is a one-shot event that processes can wait on; it carries an
// optional error value. It is the DES analogue of a future/promise.
type Completion struct {
	sig  *Signal
	done bool
	err  error
	at   float64
}

// NewCompletion returns an unfired completion bound to env.
func NewCompletion(env *Env) *Completion {
	return &Completion{sig: NewSignal(env)}
}

// Done reports whether the completion fired.
func (c *Completion) Done() bool { return c.done }

// Err returns the error recorded at completion (nil before completion).
func (c *Completion) Err() error { return c.err }

// At returns the virtual time the completion fired (0 before).
func (c *Completion) At() float64 { return c.at }

// Complete fires the completion, waking all waiters. Completing twice
// panics: it indicates a lifecycle bug in the caller.
func (c *Completion) Complete(err error) {
	if c.done {
		panic("sim: Completion fired twice")
	}
	c.done = true
	c.err = err
	c.at = c.sig.env.now
	c.sig.Broadcast()
}

// Await blocks until the completion fires and returns its error.
func (c *Completion) Await(p *Proc) error {
	for !c.done {
		c.sig.Wait(p)
	}
	return c.err
}

// AwaitTimeout blocks until the completion fires or d seconds pass; it
// reports whether the completion fired.
func (c *Completion) AwaitTimeout(p *Proc, d float64) bool {
	if c.done {
		return true
	}
	deadline := c.sig.env.now + d
	for !c.done {
		remain := deadline - c.sig.env.now
		if remain < 0 {
			return false
		}
		if !c.sig.WaitTimeout(p, remain) && !c.done {
			return false
		}
	}
	return true
}

// WaitAll blocks until every completion in cs has fired.
func WaitAll(p *Proc, cs []*Completion) {
	for _, c := range cs {
		c.Await(p)
	}
}
