// Package localexec implements task.Runtime on real goroutines and the
// wall clock. It is used when the MD engine genuinely integrates the
// equations of motion (validation runs and the examples), as opposed to
// the virtual-time pilot backend used for the scaling experiments.
//
// Cores are modelled as a weighted semaphore: a task occupying N cores
// holds N slots, so oversubscription behaviour (Execution Mode II) is
// preserved even in real execution.
package localexec

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/task"
)

// Runtime executes tasks on local goroutines.
type Runtime struct {
	start time.Time
	cores int

	mu    sync.Mutex
	cond  *sync.Cond
	inUse int

	// notify wakes the AwaitNext waiter on any task completion.
	notifyCh chan struct{}

	// stream holds watched completions not yet delivered by AwaitNext,
	// in completion order.
	streamMu sync.Mutex
	stream   []task.Handle

	overhead float64
}

// New returns a runtime with the given core budget. A non-positive value
// defaults to 1.
func New(cores int) *Runtime {
	if cores <= 0 {
		cores = 1
	}
	r := &Runtime{start: time.Now(), cores: cores, notifyCh: make(chan struct{}, 1)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Now returns wall seconds since the runtime was created.
func (r *Runtime) Now() float64 { return time.Since(r.start).Seconds() }

// Cores returns the core budget.
func (r *Runtime) Cores() int { return r.cores }

type handle struct {
	mu   sync.Mutex
	done bool
	res  task.Result
	ch   chan struct{}
}

func (h *handle) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}

func (h *handle) Result() task.Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res
}

func (h *handle) complete(res task.Result) {
	h.mu.Lock()
	h.done = true
	h.res = res
	h.mu.Unlock()
	close(h.ch)
}

// acquire takes n core slots, blocking while the pool is exhausted.
func (r *Runtime) acquire(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.inUse+n > r.cores {
		r.cond.Wait()
	}
	r.inUse += n
}

func (r *Runtime) release(n int) {
	r.mu.Lock()
	r.inUse -= n
	r.mu.Unlock()
	r.cond.Broadcast()
}

// poke wakes the AwaitNext waiter.
func (r *Runtime) poke() {
	select {
	case r.notifyCh <- struct{}{}:
	default:
	}
}

// Submit starts the task as soon as cores are available.
func (r *Runtime) Submit(s *task.Spec) task.Handle { return r.submit(s, false) }

// SubmitWatched starts the task and registers it on the completion
// stream for delivery by AwaitNext.
func (r *Runtime) SubmitWatched(s *task.Spec) task.Handle { return r.submit(s, true) }

func (r *Runtime) submit(s *task.Spec, watched bool) task.Handle {
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("localexec: invalid task spec: %v", err))
	}
	cores := s.Cores
	if cores > r.cores {
		// Clamp rather than deadlock: a real laptop cannot refuse a
		// 16-core MPI task, it just runs it slower.
		cores = r.cores
	}
	h := &handle{ch: make(chan struct{})}
	submitted := r.Now()
	go func() {
		r.acquire(cores)
		execStart := r.Now()
		var err error
		if s.Run != nil {
			err = s.Run()
		} else if s.Duration > 0 {
			// No real work attached: emulate the duration so that
			// pattern logic (barriers, windows) still behaves.
			time.Sleep(time.Duration(s.Duration * float64(time.Second)))
		}
		execEnd := r.Now()
		r.release(cores)
		h.complete(task.Result{
			Spec:      s,
			Submitted: submitted,
			Finished:  execEnd,
			CoreWait:  execStart - submitted,
			Exec:      execEnd - execStart,
			Err:       err,
		})
		if watched {
			r.streamMu.Lock()
			r.stream = append(r.stream, h)
			r.streamMu.Unlock()
		}
		r.poke()
	}()
	return h
}

// Await blocks until the task finishes.
func (r *Runtime) Await(h task.Handle) task.Result {
	hh := h.(*handle)
	<-hh.ch
	return hh.Result()
}

// AwaitAll blocks until every handle finishes.
func (r *Runtime) AwaitAll(hs []task.Handle) []task.Result {
	res := make([]task.Result, len(hs))
	for i, h := range hs {
		res[i] = r.Await(h)
	}
	return res
}

// AwaitNext blocks until at least one watched completion is pending
// delivery or the absolute deadline (in runtime seconds) passes, and
// drains the stream in completion order.
func (r *Runtime) AwaitNext(deadline float64) []task.Handle {
	for {
		r.streamMu.Lock()
		if len(r.stream) > 0 {
			out := r.stream
			r.stream = nil
			r.streamMu.Unlock()
			return out
		}
		r.streamMu.Unlock()
		if math.IsInf(deadline, 1) {
			<-r.notifyCh
			continue
		}
		remain := deadline - r.Now()
		if remain <= 0 {
			return nil
		}
		timer := time.NewTimer(time.Duration(remain * float64(time.Second)))
		select {
		case <-r.notifyCh:
			timer.Stop()
		case <-timer.C:
			// Deadline hit: one final drain attempt happens at the top of
			// the loop before the remain <= 0 return.
		}
	}
}

// SleepUntil blocks until the wall clock reaches runtime second t.
func (r *Runtime) SleepUntil(t float64) {
	if d := t - r.Now(); d > 0 {
		time.Sleep(time.Duration(d * float64(time.Second)))
	}
}

// Overhead records client-side overhead; it does not sleep in wall time.
func (r *Runtime) Overhead(d float64) {
	if d > 0 {
		r.overhead += d
	}
}

// OverheadTotal returns accumulated client-side overhead.
func (r *Runtime) OverheadTotal() float64 { return r.overhead }

var _ task.Runtime = (*Runtime)(nil)
