package localexec

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/task"
)

func TestRunRealWork(t *testing.T) {
	rt := New(2)
	var ran atomic.Bool
	h := rt.Submit(&task.Spec{Name: "job", Cores: 1, Run: func() error {
		ran.Store(true)
		return nil
	}})
	res := rt.Await(h)
	if !ran.Load() {
		t.Fatal("Run function did not execute")
	}
	if res.Err != nil {
		t.Fatalf("err = %v, want nil", res.Err)
	}
	if res.Finished < res.Submitted {
		t.Fatal("finished before submitted")
	}
}

func TestErrorPropagates(t *testing.T) {
	rt := New(1)
	boom := errors.New("boom")
	h := rt.Submit(&task.Spec{Name: "bad", Cores: 1, Run: func() error { return boom }})
	if res := rt.Await(h); !errors.Is(res.Err, boom) {
		t.Fatalf("err = %v, want boom", res.Err)
	}
}

func TestCoreLimitSerializes(t *testing.T) {
	rt := New(1)
	var concurrent, peak atomic.Int32
	work := func() error {
		c := concurrent.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		concurrent.Add(-1)
		return nil
	}
	var hs []task.Handle
	for i := 0; i < 4; i++ {
		hs = append(hs, rt.Submit(&task.Spec{Name: "w", Cores: 1, Run: work}))
	}
	rt.AwaitAll(hs)
	if peak.Load() != 1 {
		t.Fatalf("peak concurrency %d, want 1 on a 1-core runtime", peak.Load())
	}
}

func TestWideTaskClampedNotDeadlocked(t *testing.T) {
	rt := New(2)
	h := rt.Submit(&task.Spec{Name: "wide", Cores: 64, Run: func() error { return nil }})
	done := make(chan struct{})
	go func() {
		rt.Await(h)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wide task deadlocked instead of being clamped")
	}
}

func TestAwaitAllOrder(t *testing.T) {
	rt := New(4)
	specs := []*task.Spec{
		{Name: "a", Cores: 1, Run: func() error { time.Sleep(30 * time.Millisecond); return nil }},
		{Name: "b", Cores: 1, Run: func() error { return nil }},
	}
	results := task.RunAll(rt, specs)
	if results[0].Spec.Name != "a" || results[1].Spec.Name != "b" {
		t.Fatal("results not in submission order")
	}
}

func TestAwaitNextDeliversInCompletionOrder(t *testing.T) {
	rt := New(4)
	slow := rt.SubmitWatched(&task.Spec{Name: "slow", Cores: 1, Run: func() error {
		time.Sleep(300 * time.Millisecond)
		return nil
	}})
	fast := rt.SubmitWatched(&task.Spec{Name: "fast", Cores: 1, Run: func() error {
		time.Sleep(10 * time.Millisecond)
		return nil
	}})
	var got []task.Handle
	for len(got) < 2 {
		hs := rt.AwaitNext(rt.Now() + 5.0)
		if len(hs) == 0 {
			t.Fatal("AwaitNext timed out with completions outstanding")
		}
		got = append(got, hs...)
	}
	if got[0] != fast || got[1] != slow {
		t.Fatal("completions not delivered fast-first")
	}
	if got[0].Result().Spec.Name != "fast" {
		t.Fatal("wrong result on delivered handle")
	}
}

func TestAwaitNextDeliversExactlyOnce(t *testing.T) {
	rt := New(4)
	for i := 0; i < 5; i++ {
		rt.SubmitWatched(&task.Spec{Name: "w", Cores: 1, Run: func() error { return nil }})
	}
	seen := map[task.Handle]bool{}
	total := 0
	for total < 5 {
		for _, h := range rt.AwaitNext(rt.Now() + 5.0) {
			if seen[h] {
				t.Fatal("completion delivered twice")
			}
			seen[h] = true
			total++
		}
	}
	if extra := rt.AwaitNext(rt.Now() + 0.02); len(extra) != 0 {
		t.Fatalf("drained stream delivered %d more handles", len(extra))
	}
}

func TestAwaitNextDeadline(t *testing.T) {
	rt := New(4)
	h := rt.SubmitWatched(&task.Spec{Name: "slow", Cores: 1, Run: func() error {
		time.Sleep(200 * time.Millisecond)
		return nil
	}})
	start := time.Now()
	done := rt.AwaitNext(rt.Now() + 0.05)
	if len(done) != 0 {
		t.Fatalf("done set %v, want empty at deadline", done)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("deadline overshoot: %v", elapsed)
	}
	rt.Await(h)
}

func TestUnwatchedTasksStayOffStream(t *testing.T) {
	rt := New(4)
	h := rt.Submit(&task.Spec{Name: "plain", Cores: 1, Run: func() error { return nil }})
	rt.Await(h)
	if got := rt.AwaitNext(rt.Now() + 0.02); len(got) != 0 {
		t.Fatal("plain Submit leaked onto the completion stream")
	}
}

func TestDurationEmulationWithoutRun(t *testing.T) {
	rt := New(1)
	h := rt.Submit(&task.Spec{Name: "sleepy", Cores: 1, Duration: 0.05})
	res := rt.Await(h)
	if res.Exec < 0.04 {
		t.Fatalf("emulated duration %v, want >= ~0.05", res.Exec)
	}
}

func TestOverheadAccumulatesWithoutSleeping(t *testing.T) {
	rt := New(1)
	start := time.Now()
	rt.Overhead(100)
	if time.Since(start) > time.Second {
		t.Fatal("Overhead slept in wall time")
	}
	if rt.OverheadTotal() != 100 {
		t.Fatalf("overhead total %v, want 100", rt.OverheadTotal())
	}
}

func TestDefaultsToOneCore(t *testing.T) {
	if New(0).Cores() != 1 || New(-3).Cores() != 1 {
		t.Fatal("non-positive core count did not default to 1")
	}
}
