// Package ring provides the fixed-capacity rolling outcome window
// shared by the acceptance-statistics consumers: the analysis
// collector's per-pair windows and core.FeedbackTrigger's
// per-dimension measurement rings. One implementation means
// capacity-change and wrap-around behaviour cannot drift between the
// dashboard's view and the controller's.
//
// The type is deliberately plain data: Bool serializes as-is inside
// checkpoint state, Check validates rings restored from untrusted
// JSON before Push may assume their invariants, and Rebuild re-rings a
// window restored under a different capacity (keeping the newest
// outcomes when shrinking — the semantics both consumers want when a
// run resumes with a smaller window_events).
package ring

import "fmt"

// Bool is a rolling window over the most recent boolean outcomes: a
// fixed-capacity ring plus a running true-count, so the windowed ratio
// is O(1) to read. The struct serializes as-is (ring storage included)
// so windows survive checkpoints; the zero value is an empty window.
type Bool struct {
	// Outcomes is the ring storage, allocated on first Push so empty
	// windows serialize to nothing; Head indexes the oldest buffered
	// outcome and N counts them.
	Outcomes []bool `json:"outcomes,omitempty"`
	Head     int    `json:"head,omitempty"`
	N        int    `json:"n,omitempty"`
	// Accepted counts the true outcomes currently buffered (named for
	// the acceptance-window use both consumers put the ring to).
	Accepted int `json:"accepted,omitempty"`
}

// Push records one outcome, evicting the oldest when the ring is full.
// capacity sizes the ring on first use (non-positive values size a
// one-slot ring rather than panicking) and is ignored once allocated.
func (r *Bool) Push(accepted bool, capacity int) {
	if len(r.Outcomes) == 0 {
		if capacity < 1 {
			capacity = 1
		}
		r.Outcomes = make([]bool, capacity)
	}
	if r.N == len(r.Outcomes) {
		if r.Outcomes[r.Head] {
			r.Accepted--
		}
		r.Head = (r.Head + 1) % len(r.Outcomes)
		r.N--
	}
	r.Outcomes[(r.Head+r.N)%len(r.Outcomes)] = accepted
	r.N++
	if accepted {
		r.Accepted++
	}
}

// Check validates the invariants of a ring restored from untrusted
// serialized state: indices in range and the true-count consistent with
// the buffered outcomes. Push assumes these hold, so a restore path
// must reject violations instead of panicking mid-run later.
func (r *Bool) Check() error {
	if len(r.Outcomes) == 0 {
		if r.Head != 0 || r.N != 0 || r.Accepted != 0 {
			return fmt.Errorf("ring: empty storage with head=%d n=%d accepted=%d", r.Head, r.N, r.Accepted)
		}
		return nil
	}
	if r.N < 0 || r.N > len(r.Outcomes) || r.Head < 0 || r.Head >= len(r.Outcomes) {
		return fmt.Errorf("ring: head=%d n=%d outside %d-slot storage", r.Head, r.N, len(r.Outcomes))
	}
	acc := 0
	for i := 0; i < r.N; i++ {
		if r.Outcomes[(r.Head+i)%len(r.Outcomes)] {
			acc++
		}
	}
	if acc != r.Accepted {
		return fmt.Errorf("ring: accepted=%d, buffered outcomes hold %d", r.Accepted, acc)
	}
	return nil
}

// Linear returns the buffered outcomes oldest-first (the serialization
// order of a controller state).
func (r *Bool) Linear() []bool {
	out := make([]bool, 0, r.N)
	for i := 0; i < r.N; i++ {
		out = append(out, r.Outcomes[(r.Head+i)%len(r.Outcomes)])
	}
	return out
}

// Rebuild re-rings the buffered outcomes into a ring of the given
// capacity, keeping the newest entries when shrinking; used when
// restoring a snapshot taken under a different window depth. An empty
// ring is left alone: Push allocates at the new capacity.
func (r *Bool) Rebuild(capacity int) {
	if len(r.Outcomes) == 0 || len(r.Outcomes) == capacity {
		return
	}
	lin := r.Linear()
	if len(lin) > capacity {
		lin = lin[len(lin)-capacity:]
	}
	*r = Bool{}
	for _, v := range lin {
		r.Push(v, capacity)
	}
}
