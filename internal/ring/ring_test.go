package ring

import (
	"reflect"
	"testing"
)

func TestPushEvictsOldest(t *testing.T) {
	var r Bool
	seq := []bool{true, false, true, true, false}
	for _, v := range seq {
		r.Push(v, 3)
	}
	if r.N != 3 || r.Accepted != 2 {
		t.Fatalf("ring %d/%d, want 2/3 (last three of %v)", r.Accepted, r.N, seq)
	}
	if got := r.Linear(); !reflect.DeepEqual(got, []bool{true, true, false}) {
		t.Fatalf("linear %v, want newest three oldest-first", got)
	}
}

func TestRebuild(t *testing.T) {
	var r Bool
	for _, v := range []bool{true, true, false, true} {
		r.Push(v, 4)
	}
	r.Rebuild(2)
	if got := r.Linear(); !reflect.DeepEqual(got, []bool{false, true}) {
		t.Fatalf("shrunk ring %v, want the newest two", got)
	}
	if r.Accepted != 1 {
		t.Fatalf("accepted %d after shrink, want 1", r.Accepted)
	}
	// Growing keeps everything and leaves room.
	r.Rebuild(5)
	r.Push(true, 5)
	if got := r.Linear(); !reflect.DeepEqual(got, []bool{false, true, true}) {
		t.Fatalf("grown ring %v", got)
	}
	// Same capacity (and empty rings) are left untouched.
	var empty Bool
	empty.Rebuild(7)
	if empty.Outcomes != nil || empty.N != 0 {
		t.Fatalf("rebuild touched an empty ring: %+v", empty)
	}
}
