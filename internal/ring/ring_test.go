package ring

import (
	"reflect"
	"testing"
)

func TestPushEvictsOldest(t *testing.T) {
	var r Bool
	seq := []bool{true, false, true, true, false}
	for _, v := range seq {
		r.Push(v, 3)
	}
	if r.N != 3 || r.Accepted != 2 {
		t.Fatalf("ring %d/%d, want 2/3 (last three of %v)", r.Accepted, r.N, seq)
	}
	if got := r.Linear(); !reflect.DeepEqual(got, []bool{true, true, false}) {
		t.Fatalf("linear %v, want newest three oldest-first", got)
	}
}

func TestRebuild(t *testing.T) {
	var r Bool
	for _, v := range []bool{true, true, false, true} {
		r.Push(v, 4)
	}
	r.Rebuild(2)
	if got := r.Linear(); !reflect.DeepEqual(got, []bool{false, true}) {
		t.Fatalf("shrunk ring %v, want the newest two", got)
	}
	if r.Accepted != 1 {
		t.Fatalf("accepted %d after shrink, want 1", r.Accepted)
	}
	// Growing keeps everything and leaves room.
	r.Rebuild(5)
	r.Push(true, 5)
	if got := r.Linear(); !reflect.DeepEqual(got, []bool{false, true, true}) {
		t.Fatalf("grown ring %v", got)
	}
	// Same capacity (and empty rings) are left untouched.
	var empty Bool
	empty.Rebuild(7)
	if empty.Outcomes != nil || empty.N != 0 {
		t.Fatalf("rebuild touched an empty ring: %+v", empty)
	}
}

// TestRebuildWrappedShrink: shrinking a ring whose storage has wrapped
// (head mid-buffer) must keep the newest outcomes in order — the
// restore path of a snapshot taken under a larger window depth.
func TestRebuildWrappedShrink(t *testing.T) {
	var r Bool
	// Capacity 4, seven pushes: storage wrapped, head is mid-buffer.
	seq := []bool{true, false, false, true, false, true, true}
	for _, v := range seq {
		r.Push(v, 4)
	}
	if r.Head == 0 {
		t.Fatal("test setup: ring did not wrap")
	}
	r.Rebuild(2)
	if got := r.Linear(); !reflect.DeepEqual(got, []bool{true, true}) {
		t.Fatalf("wrapped shrink kept %v, want the newest two", got)
	}
	if r.N != 2 || r.Accepted != 2 || len(r.Outcomes) != 2 {
		t.Fatalf("wrapped shrink state n=%d accepted=%d cap=%d", r.N, r.Accepted, len(r.Outcomes))
	}
	// The shrunk ring keeps evicting correctly.
	r.Push(false, 2)
	if got := r.Linear(); !reflect.DeepEqual(got, []bool{true, false}) {
		t.Fatalf("post-shrink push kept %v", got)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPushNonPositiveCapacity(t *testing.T) {
	var r Bool
	r.Push(true, 0) // must size a one-slot ring, not panic
	r.Push(false, 0)
	if r.N != 1 || r.Accepted != 0 || len(r.Outcomes) != 1 {
		t.Fatalf("zero-capacity push state n=%d accepted=%d cap=%d", r.N, r.Accepted, len(r.Outcomes))
	}
}
