package md

import "math"

// Vec3 is a 3-vector in Å (positions), Å/ps (velocities) or
// kcal/mol/Å (forces), depending on context.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Unit returns v/|v|; the zero vector is returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Box is a rectangular periodic box; a zero box means open boundaries.
type Box struct{ Lx, Ly, Lz float64 }

// Periodic reports whether the box has nonzero volume.
func (b Box) Periodic() bool { return b.Lx > 0 && b.Ly > 0 && b.Lz > 0 }

// Volume returns the box volume (0 for open boundaries).
func (b Box) Volume() float64 { return b.Lx * b.Ly * b.Lz }

// MinImage returns the minimum-image displacement of d under the box.
func (b Box) MinImage(d Vec3) Vec3 {
	if !b.Periodic() {
		return d
	}
	d.X -= b.Lx * math.Round(d.X/b.Lx)
	d.Y -= b.Ly * math.Round(d.Y/b.Ly)
	d.Z -= b.Lz * math.Round(d.Z/b.Lz)
	return d
}

// Wrap maps p into the primary cell [0,L) per axis.
func (b Box) Wrap(p Vec3) Vec3 {
	if !b.Periodic() {
		return p
	}
	p.X -= b.Lx * math.Floor(p.X/b.Lx)
	p.Y -= b.Ly * math.Floor(p.Y/b.Ly)
	p.Z -= b.Lz * math.Floor(p.Z/b.Lz)
	return p
}

// WrapAngle maps an angle in radians to (-π, π].
func WrapAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a <= -math.Pi {
		a += 2 * math.Pi
	} else if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
