package md

import (
	"fmt"
	"math"
	"math/rand"
)

// Integrator advances a state in time under a system and parameters.
type Integrator interface {
	// Step advances the state by n time steps.
	Step(sys *System, st *State, prm Params, n int)
}

// VelocityVerlet is the symplectic NVE integrator, used mainly for
// energy-conservation verification.
type VelocityVerlet struct {
	// Dt is the time step in ps.
	Dt float64
	// scratch force buffers
	f []Vec3
}

// Step advances n velocity-Verlet steps.
func (vv *VelocityVerlet) Step(sys *System, st *State, prm Params, n int) {
	na := sys.Top.N()
	if len(vv.f) != na {
		vv.f = make([]Vec3, na)
		sys.EnergyForces(st, prm, vv.f)
	}
	dt := vv.Dt
	for step := 0; step < n; step++ {
		for i := 0; i < na; i++ {
			m := sys.Top.Atoms[i].Mass
			a := vv.f[i].Scale(AccelFactor / m)
			st.Vel[i] = st.Vel[i].Add(a.Scale(0.5 * dt))
			st.Pos[i] = st.Pos[i].Add(st.Vel[i].Scale(dt))
		}
		sys.EnergyForces(st, prm, vv.f)
		for i := 0; i < na; i++ {
			m := sys.Top.Atoms[i].Mass
			a := vv.f[i].Scale(AccelFactor / m)
			st.Vel[i] = st.Vel[i].Add(a.Scale(0.5 * dt))
		}
	}
}

// LangevinBAOAB is the BAOAB splitting of Langevin dynamics
// (Leimkuhler & Matthews), a high-quality canonical sampler. The
// thermostat temperature comes from the replica Params, which is what
// makes temperature a swappable replica-exchange parameter.
type LangevinBAOAB struct {
	// Dt is the time step in ps.
	Dt float64
	// Gamma is the friction coefficient in 1/ps.
	Gamma float64
	// RNG drives the stochastic kick; required.
	RNG *rand.Rand

	f []Vec3
}

// NewLangevin returns a BAOAB integrator with the given step, friction
// and seed.
func NewLangevin(dt, gamma float64, seed int64) *LangevinBAOAB {
	return &LangevinBAOAB{Dt: dt, Gamma: gamma, RNG: rand.New(rand.NewSource(seed))}
}

// Step advances n BAOAB steps at the temperature in prm.
func (lg *LangevinBAOAB) Step(sys *System, st *State, prm Params, n int) {
	if lg.RNG == nil {
		panic("md: LangevinBAOAB requires an RNG")
	}
	if err := prm.Validate(); err != nil {
		panic(fmt.Sprintf("md: %v", err))
	}
	na := sys.Top.N()
	if len(lg.f) != na {
		lg.f = make([]Vec3, na)
	}
	sys.EnergyForces(st, prm, lg.f)
	dt := lg.Dt
	c1 := math.Exp(-lg.Gamma * dt)
	c2 := math.Sqrt(1 - c1*c1)
	kT := KB * prm.TemperatureK
	for step := 0; step < n; step++ {
		// B: half kick.
		for i := 0; i < na; i++ {
			m := sys.Top.Atoms[i].Mass
			st.Vel[i] = st.Vel[i].Add(lg.f[i].Scale(0.5 * dt * AccelFactor / m))
		}
		// A: half drift.
		for i := 0; i < na; i++ {
			st.Pos[i] = st.Pos[i].Add(st.Vel[i].Scale(0.5 * dt))
		}
		// O: Ornstein-Uhlenbeck exact step.
		for i := 0; i < na; i++ {
			m := sys.Top.Atoms[i].Mass
			s := math.Sqrt(kT * AccelFactor / m)
			st.Vel[i] = Vec3{
				c1*st.Vel[i].X + c2*s*lg.RNG.NormFloat64(),
				c1*st.Vel[i].Y + c2*s*lg.RNG.NormFloat64(),
				c1*st.Vel[i].Z + c2*s*lg.RNG.NormFloat64(),
			}
		}
		// A: half drift.
		for i := 0; i < na; i++ {
			st.Pos[i] = st.Pos[i].Add(st.Vel[i].Scale(0.5 * dt))
		}
		// B: half kick with fresh forces.
		sys.EnergyForces(st, prm, lg.f)
		for i := 0; i < na; i++ {
			m := sys.Top.Atoms[i].Mass
			st.Vel[i] = st.Vel[i].Add(lg.f[i].Scale(0.5 * dt * AccelFactor / m))
		}
	}
}

// InitVelocities draws Maxwell-Boltzmann velocities at temperature tK and
// removes the centre-of-mass drift.
func InitVelocities(sys *System, st *State, tK float64, rng *rand.Rand) {
	kT := KB * tK
	var pTot Vec3
	mTot := 0.0
	for i, a := range sys.Top.Atoms {
		s := math.Sqrt(kT * AccelFactor / a.Mass)
		st.Vel[i] = Vec3{s * rng.NormFloat64(), s * rng.NormFloat64(), s * rng.NormFloat64()}
		pTot = pTot.Add(st.Vel[i].Scale(a.Mass))
		mTot += a.Mass
	}
	drift := pTot.Scale(1 / mTot)
	for i := range st.Vel {
		st.Vel[i] = st.Vel[i].Sub(drift)
	}
}

// Minimize performs simple steepest-descent energy minimisation for at
// most maxIter iterations or until the maximum force component falls
// below fTol (kcal/mol/Å). It returns the final potential energy.
func Minimize(sys *System, st *State, prm Params, maxIter int, fTol float64) float64 {
	n := sys.Top.N()
	f := make([]Vec3, n)
	step := 1e-4
	e := sys.EnergyForces(st, prm, f).Potential()
	for iter := 0; iter < maxIter; iter++ {
		fmax := 0.0
		for i := 0; i < n; i++ {
			fmax = math.Max(fmax, math.Abs(f[i].X))
			fmax = math.Max(fmax, math.Abs(f[i].Y))
			fmax = math.Max(fmax, math.Abs(f[i].Z))
		}
		if fmax < fTol {
			break
		}
		trial := st.Clone()
		for i := 0; i < n; i++ {
			trial.Pos[i] = trial.Pos[i].Add(f[i].Scale(step))
		}
		eTrial := sys.Energy(trial, prm).Potential()
		if eTrial < e {
			copy(st.Pos, trial.Pos)
			e = eTrial
			sys.EnergyForces(st, prm, f)
			step *= 1.2
		} else {
			step *= 0.5
			if step < 1e-12 {
				break
			}
		}
	}
	return e
}
