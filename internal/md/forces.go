package md

import (
	"fmt"
	"math"
)

// TorsionRestraint is a harmonic umbrella restraint on a proper torsion:
// E = K * wrap(φ - Center)², with the difference wrapped to (-π, π].
// The paper's umbrella windows use K = 0.02 kcal/mol/deg²
// (= 65.65 kcal/mol/rad²) centred uniformly over [0°, 360°).
type TorsionRestraint struct {
	// Dihedral indexes Topology.Dihedrals to locate the four atoms.
	Dihedral int
	// Center in radians.
	Center float64
	// K in kcal/mol/rad².
	K float64
}

// Params are the exchangeable thermodynamic parameters of a replica:
// exactly the quantities swapped by T-, S- and U-REMD.
type Params struct {
	// TemperatureK is the thermostat target in Kelvin (T dimension).
	TemperatureK float64
	// SaltM is the monovalent salt concentration in mol/L (S
	// dimension); it sets the Debye screening length of the
	// electrostatic term.
	SaltM float64
	// PH is the solution pH (H dimension); it sets the mean-field
	// charges of the topology's titratable sites and their protonation
	// self free energy. Zero means "no pH coupling".
	PH float64
	// Restraints are umbrella restraints (U dimensions).
	Restraints []TorsionRestraint
}

// Beta returns 1/(kB T) in mol/kcal.
func (p Params) Beta() float64 { return 1 / (KB * p.TemperatureK) }

// Kappa returns the Debye screening parameter in 1/Å. The standard
// aqueous relation κ = sqrt(I[M]) / 3.04 Å⁻¹ at ~298 K is used; zero salt
// means unscreened Coulomb.
func (p Params) Kappa() float64 {
	if p.SaltM <= 0 {
		return 0
	}
	return math.Sqrt(p.SaltM) / 3.04
}

// Validate reports non-physical parameters.
func (p Params) Validate() error {
	if p.TemperatureK <= 0 {
		return fmt.Errorf("params: temperature %g K must be positive", p.TemperatureK)
	}
	if p.SaltM < 0 {
		return fmt.Errorf("params: negative salt concentration %g M", p.SaltM)
	}
	if p.PH < 0 || p.PH > 14 {
		return fmt.Errorf("params: pH %g outside [0, 14]", p.PH)
	}
	for i, r := range p.Restraints {
		if r.K < 0 {
			return fmt.Errorf("params: restraint %d has negative force constant", i)
		}
	}
	return nil
}

// Clone returns a deep copy (the restraint slice is copied).
func (p Params) Clone() Params {
	q := p
	q.Restraints = append([]TorsionRestraint(nil), p.Restraints...)
	return q
}

// State is the dynamical state of a system: positions and velocities.
type State struct {
	Pos []Vec3
	Vel []Vec3
	// chargeBuf is scratch for pH-effective charges. It lives on the
	// State — owned by a single replica's MD task at a time — rather
	// than on the System, which is shared by concurrently integrating
	// replicas and must stay read-only during force evaluation.
	chargeBuf []float64
}

// NewState allocates a zeroed state for n atoms.
func NewState(n int) *State {
	return &State{Pos: make([]Vec3, n), Vel: make([]Vec3, n)}
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := NewState(len(s.Pos))
	copy(c.Pos, s.Pos)
	copy(c.Vel, s.Vel)
	return c
}

// Energy is the decomposition of the potential energy in kcal/mol.
type Energy struct {
	Bond      float64
	Angle     float64
	Dihedral  float64
	LJ        float64
	Coulomb   float64
	Restraint float64
	// Titration is the pH-dependent protonation self free energy of the
	// titratable sites (zero without pH coupling).
	Titration float64
}

// Potential returns the total potential energy.
func (e Energy) Potential() float64 {
	return e.Bond + e.Angle + e.Dihedral + e.LJ + e.Coulomb + e.Restraint + e.Titration
}

// System couples a topology with simulation-box and cutoff settings.
type System struct {
	Top *Topology
	Box Box
	// Cutoff is the nonbonded cutoff in Å; 0 disables truncation.
	Cutoff float64
}

// NewSystem validates the topology and returns a system.
func NewSystem(top *Topology, box Box, cutoff float64) (*System, error) {
	if err := top.Validate(); err != nil {
		return nil, err
	}
	if cutoff < 0 {
		return nil, fmt.Errorf("md: negative cutoff %g", cutoff)
	}
	top.BuildExclusions()
	return &System{Top: top, Box: box, Cutoff: cutoff}, nil
}

// MustNewSystem is NewSystem but panics on error.
func MustNewSystem(top *Topology, box Box, cutoff float64) *System {
	s, err := NewSystem(top, box, cutoff)
	if err != nil {
		panic(err)
	}
	return s
}

// Torsion computes the proper torsion angle (radians, in (-π, π]) over
// positions a-b-c-d with minimum-image convention under box.
func Torsion(box Box, a, b, c, d Vec3) float64 {
	b1 := box.MinImage(b.Sub(a))
	b2 := box.MinImage(c.Sub(b))
	b3 := box.MinImage(d.Sub(c))
	n1 := b1.Cross(b2)
	n2 := b2.Cross(b3)
	m := n1.Cross(b2.Unit())
	x := n1.Dot(n2)
	y := m.Dot(n2)
	return math.Atan2(y, x)
}

// DihedralAngle returns the current angle of topology dihedral di.
func (s *System) DihedralAngle(st *State, di int) float64 {
	d := s.Top.Dihedrals[di]
	return Torsion(s.Box, st.Pos[d.I], st.Pos[d.J], st.Pos[d.K], st.Pos[d.L])
}

// EnergyForces computes the potential energy decomposition and, if f is
// non-nil, accumulates forces (kcal/mol/Å) into f (which is zeroed
// first). Parameters enter through the Debye screening (salt) and the
// umbrella restraints; the temperature affects dynamics only.
func (s *System) EnergyForces(st *State, prm Params, f []Vec3) Energy {
	n := s.Top.N()
	if len(st.Pos) != n {
		panic(fmt.Sprintf("md: state has %d positions for %d atoms", len(st.Pos), n))
	}
	if f != nil {
		for i := range f {
			f[i] = Vec3{}
		}
	}
	var e Energy
	e.Bond = s.bondForces(st, f)
	e.Angle = s.angleForces(st, f)
	e.Dihedral = s.dihedralForces(st, f)
	lj, coul := s.nonbondedForces(st, prm, f)
	e.LJ, e.Coulomb = lj, coul
	e.Restraint = s.restraintForces(st, prm, f)
	e.Titration = s.Top.titrationEnergy(prm)
	return e
}

// Energy computes the potential energy without forces.
func (s *System) Energy(st *State, prm Params) Energy {
	return s.EnergyForces(st, prm, nil)
}

func (s *System) bondForces(st *State, f []Vec3) float64 {
	e := 0.0
	for _, b := range s.Top.Bonds {
		d := s.Box.MinImage(st.Pos[b.J].Sub(st.Pos[b.I]))
		r := d.Norm()
		dr := r - b.R0
		e += b.K * dr * dr
		if f != nil && r > 0 {
			// dE/dr = 2K dr; force on J is -dE/dr * d/r.
			g := 2 * b.K * dr / r
			f[b.I] = f[b.I].Add(d.Scale(g))
			f[b.J] = f[b.J].Sub(d.Scale(g))
		}
	}
	return e
}

func (s *System) angleForces(st *State, f []Vec3) float64 {
	e := 0.0
	for _, a := range s.Top.Angles {
		u := s.Box.MinImage(st.Pos[a.I].Sub(st.Pos[a.J]))
		v := s.Box.MinImage(st.Pos[a.K].Sub(st.Pos[a.J]))
		nu, nv := u.Norm(), v.Norm()
		if nu == 0 || nv == 0 {
			continue
		}
		cosT := u.Dot(v) / (nu * nv)
		cosT = math.Max(-1, math.Min(1, cosT))
		theta := math.Acos(cosT)
		dt := theta - a.Theta0
		e += a.KTheta * dt * dt
		if f != nil {
			sinT := math.Sqrt(1 - cosT*cosT)
			if sinT < 1e-8 {
				sinT = 1e-8
			}
			// dθ/dri = -1/sinθ * (v/(nu*nv) - cosθ*u/nu²)
			dEdT := 2 * a.KTheta * dt
			c := -1 / sinT
			gi := v.Scale(1 / (nu * nv)).Sub(u.Scale(cosT / (nu * nu))).Scale(c)
			gk := u.Scale(1 / (nu * nv)).Sub(v.Scale(cosT / (nv * nv))).Scale(c)
			f[a.I] = f[a.I].Sub(gi.Scale(dEdT))
			f[a.K] = f[a.K].Sub(gk.Scale(dEdT))
			f[a.J] = f[a.J].Add(gi.Add(gk).Scale(dEdT))
		}
	}
	return e
}

// torsionGrad computes φ and dφ/dr for the four atoms, shared by proper
// dihedrals and torsion restraints.
func torsionGrad(box Box, pi, pj, pk, pl Vec3) (phi float64, gi, gj, gk, gl Vec3, ok bool) {
	b1 := box.MinImage(pj.Sub(pi))
	b2 := box.MinImage(pk.Sub(pj))
	b3 := box.MinImage(pl.Sub(pk))
	n1 := b1.Cross(b2)
	n2 := b2.Cross(b3)
	nb2 := b2.Norm()
	n1sq := n1.Norm2()
	n2sq := n2.Norm2()
	if nb2 == 0 || n1sq < 1e-12 || n2sq < 1e-12 {
		return 0, Vec3{}, Vec3{}, Vec3{}, Vec3{}, false
	}
	m := n1.Cross(b2.Scale(1 / nb2))
	phi = math.Atan2(m.Dot(n2), n1.Dot(n2))
	// Analytic gradient of phi under this sign convention (verified
	// against central differences in the tests):
	//   dphi/dr_i = +(|b2|/|n1|^2) n1
	//   dphi/dr_l = -(|b2|/|n2|^2) n2
	//   dphi/dr_j = -(1+t) dphi/dr_i + u dphi/dr_l
	//   dphi/dr_k =   t   dphi/dr_i - (1+u) dphi/dr_l
	// with t = (b1.b2)/|b2|^2 and u = (b3.b2)/|b2|^2; the coefficients
	// sum to zero per end atom, giving translation invariance.
	gi = n1.Scale(nb2 / n1sq)
	gl = n2.Scale(-nb2 / n2sq)
	t := b1.Dot(b2) / (nb2 * nb2)
	u := b3.Dot(b2) / (nb2 * nb2)
	gj = gi.Scale(-(1 + t)).Add(gl.Scale(u))
	gk = gi.Scale(t).Sub(gl.Scale(1 + u))
	return phi, gi, gj, gk, gl, true
}

func (s *System) dihedralForces(st *State, f []Vec3) float64 {
	e := 0.0
	for _, d := range s.Top.Dihedrals {
		phi, gi, gj, gk, gl, ok := torsionGrad(s.Box, st.Pos[d.I], st.Pos[d.J], st.Pos[d.K], st.Pos[d.L])
		if !ok {
			continue
		}
		dEdPhi := 0.0
		for _, t := range d.Terms {
			e += t.K * (1 + math.Cos(float64(t.N)*phi-t.Phase))
			dEdPhi -= t.K * float64(t.N) * math.Sin(float64(t.N)*phi-t.Phase)
		}
		if f != nil {
			f[d.I] = f[d.I].Sub(gi.Scale(dEdPhi))
			f[d.J] = f[d.J].Sub(gj.Scale(dEdPhi))
			f[d.K] = f[d.K].Sub(gk.Scale(dEdPhi))
			f[d.L] = f[d.L].Sub(gl.Scale(dEdPhi))
		}
	}
	return e
}

func (s *System) restraintForces(st *State, prm Params, f []Vec3) float64 {
	e := 0.0
	for _, r := range prm.Restraints {
		if r.Dihedral < 0 || r.Dihedral >= len(s.Top.Dihedrals) {
			panic(fmt.Sprintf("md: restraint references dihedral %d of %d", r.Dihedral, len(s.Top.Dihedrals)))
		}
		d := s.Top.Dihedrals[r.Dihedral]
		phi, gi, gj, gk, gl, ok := torsionGrad(s.Box, st.Pos[d.I], st.Pos[d.J], st.Pos[d.K], st.Pos[d.L])
		if !ok {
			continue
		}
		dphi := WrapAngle(phi - r.Center)
		e += r.K * dphi * dphi
		if f != nil {
			dEdPhi := 2 * r.K * dphi
			f[d.I] = f[d.I].Sub(gi.Scale(dEdPhi))
			f[d.J] = f[d.J].Sub(gj.Scale(dEdPhi))
			f[d.K] = f[d.K].Sub(gk.Scale(dEdPhi))
			f[d.L] = f[d.L].Sub(gl.Scale(dEdPhi))
		}
	}
	return e
}

// nonbondedForces computes truncated-shifted LJ plus Debye–Hückel
// screened Coulomb over all non-excluded pairs, scaling 1-4 pairs.
func (s *System) nonbondedForces(st *State, prm Params, f []Vec3) (lj, coul float64) {
	top := s.Top
	n := top.N()
	kappa := prm.Kappa()
	// nil unless titration applies; static charges are read per atom
	// below. The scratch lives on the per-replica State because the
	// System is shared by concurrently running replicas.
	charges := top.effectiveCharges(prm, st.chargeBuf)
	if charges != nil {
		st.chargeBuf = charges
	}
	rc := s.Cutoff
	rc2 := rc * rc
	for i := 0; i < n; i++ {
		ai := top.Atoms[i]
		for j := i + 1; j < n; j++ {
			if top.Excluded(i, j) {
				continue
			}
			scale := 1.0
			if top.Is14(i, j) {
				scale = top.Scale14
				if scale == 0 {
					continue
				}
			}
			aj := top.Atoms[j]
			d := s.Box.MinImage(st.Pos[j].Sub(st.Pos[i]))
			r2 := d.Norm2()
			if rc > 0 && r2 > rc2 {
				continue
			}
			if r2 < 1e-12 {
				continue
			}
			r := math.Sqrt(r2)
			var dEdR float64
			// Lennard-Jones with Lorentz-Berthelot mixing,
			// truncated and shifted at the cutoff.
			eps := math.Sqrt(ai.LJEps * aj.LJEps)
			if eps > 0 {
				sig := 0.5 * (ai.LJSigma + aj.LJSigma)
				sr2 := sig * sig / r2
				sr6 := sr2 * sr2 * sr2
				sr12 := sr6 * sr6
				eLJ := 4 * eps * (sr12 - sr6)
				if rc > 0 {
					src2 := sig * sig / rc2
					src6 := src2 * src2 * src2
					eLJ -= 4 * eps * (src6*src6 - src6)
				}
				lj += scale * eLJ
				dEdR += scale * 4 * eps * (-12*sr12 + 6*sr6) / r
			}
			// Debye–Hückel screened Coulomb with pH-effective charges.
			qi, qj := ai.Charge, aj.Charge
			if charges != nil {
				qi, qj = charges[i], charges[j]
			}
			qq := qi * qj
			if qq != 0 {
				base := CoulombK * qq / r
				screen := 1.0
				if kappa > 0 {
					screen = math.Exp(-kappa * r)
				}
				eC := base * screen
				coul += scale * eC
				// dE/dr = -kq1q2 e^{-κr} (1/r² + κ/r)
				dEdR += scale * (-base*screen/r - base*screen*kappa)
			}
			if f != nil && dEdR != 0 {
				g := dEdR / r
				f[i] = f[i].Add(d.Scale(g))
				f[j] = f[j].Sub(d.Scale(g))
			}
		}
	}
	return lj, coul
}

// KineticEnergy returns the kinetic energy in kcal/mol.
// With v in Å/ps and m in amu, KE = Σ ½ m v² / AccelFactor.
func (s *System) KineticEnergy(st *State) float64 {
	ke := 0.0
	for i, a := range s.Top.Atoms {
		ke += 0.5 * a.Mass * st.Vel[i].Norm2()
	}
	return ke / AccelFactor
}

// InstantaneousTemperature returns the kinetic temperature in K.
func (s *System) InstantaneousTemperature(st *State) float64 {
	dof := float64(s.Top.DegreesOfFreedom())
	if dof == 0 {
		return 0
	}
	return 2 * s.KineticEnergy(st) / (dof * KB)
}
