package md

import "fmt"

// Physical constants in the internal unit system:
// length Å, energy kcal/mol, mass amu (g/mol), time ps, charge e.
const (
	// KB is Boltzmann's constant in kcal/mol/K.
	KB = 0.0019872041
	// AccelFactor converts force/mass (kcal/mol/Å/amu) to Å/ps².
	AccelFactor = 418.4
	// CoulombK is the electrostatic constant in kcal·Å/(mol·e²).
	CoulombK = 332.0636
)

// Atom is one interaction site.
type Atom struct {
	Name string
	// Mass in amu.
	Mass float64
	// Charge in units of e.
	Charge float64
	// LJEps (kcal/mol) and LJSigma (Å) are Lennard-Jones parameters;
	// pairs mix with Lorentz-Berthelot rules.
	LJEps   float64
	LJSigma float64
}

// Bond is a harmonic bond: E = K (r - R0)².
type Bond struct {
	I, J int
	K    float64 // kcal/mol/Å²
	R0   float64 // Å
}

// Angle is a harmonic angle: E = K (θ - Theta0)².
type Angle struct {
	I, J, K int
	KTheta  float64 // kcal/mol/rad²
	Theta0  float64 // rad
}

// DihedralTerm is one Fourier term: E = K (1 + cos(n φ - Phase)).
type DihedralTerm struct {
	K     float64 // kcal/mol
	N     int     // periodicity
	Phase float64 // rad
}

// Dihedral is a proper torsion over atoms I-J-K-L with one or more
// Fourier terms.
type Dihedral struct {
	I, J, K, L int
	Terms      []DihedralTerm
	// Label optionally tags named torsions ("phi", "psi") so restraints
	// and analysis can refer to them.
	Label string
}

// Topology is the complete static description of a molecular system.
type Topology struct {
	Atoms     []Atom
	Bonds     []Bond
	Angles    []Angle
	Dihedrals []Dihedral
	// Scale14 scales LJ and Coulomb interactions between atoms
	// separated by exactly three bonds (1-4 pairs); 1-2 and 1-3 pairs
	// are always fully excluded.
	Scale14 float64
	// Titratable lists pH-dependent sites (constant-pH REMD).
	Titratable []TitratableSite

	// exclusion maps, built lazily by BuildExclusions.
	excl   map[[2]int]bool
	pair14 map[[2]int]bool
}

// N returns the number of atoms.
func (t *Topology) N() int { return len(t.Atoms) }

// Validate checks index ranges and physical sanity of all terms.
func (t *Topology) Validate() error {
	n := t.N()
	if n == 0 {
		return fmt.Errorf("topology: no atoms")
	}
	for i, a := range t.Atoms {
		if a.Mass <= 0 {
			return fmt.Errorf("topology: atom %d (%s) has non-positive mass %g", i, a.Name, a.Mass)
		}
		if a.LJEps < 0 || a.LJSigma < 0 {
			return fmt.Errorf("topology: atom %d (%s) has negative LJ parameters", i, a.Name)
		}
	}
	in := func(i int) bool { return i >= 0 && i < n }
	for k, b := range t.Bonds {
		if !in(b.I) || !in(b.J) || b.I == b.J {
			return fmt.Errorf("topology: bond %d has bad indices (%d,%d)", k, b.I, b.J)
		}
		if b.K < 0 || b.R0 <= 0 {
			return fmt.Errorf("topology: bond %d has bad parameters K=%g R0=%g", k, b.K, b.R0)
		}
	}
	for k, a := range t.Angles {
		if !in(a.I) || !in(a.J) || !in(a.K) || a.I == a.J || a.J == a.K || a.I == a.K {
			return fmt.Errorf("topology: angle %d has bad indices (%d,%d,%d)", k, a.I, a.J, a.K)
		}
	}
	for k, d := range t.Dihedrals {
		idx := [4]int{d.I, d.J, d.K, d.L}
		for x := 0; x < 4; x++ {
			if !in(idx[x]) {
				return fmt.Errorf("topology: dihedral %d has bad index %d", k, idx[x])
			}
			for y := x + 1; y < 4; y++ {
				if idx[x] == idx[y] {
					return fmt.Errorf("topology: dihedral %d repeats atom %d", k, idx[x])
				}
			}
		}
		if len(d.Terms) == 0 {
			return fmt.Errorf("topology: dihedral %d has no Fourier terms", k)
		}
	}
	if t.Scale14 < 0 || t.Scale14 > 1 {
		return fmt.Errorf("topology: Scale14 = %g out of [0,1]", t.Scale14)
	}
	return nil
}

// FindDihedral returns the index of the first dihedral with the given
// label, or -1.
func (t *Topology) FindDihedral(label string) int {
	for i, d := range t.Dihedrals {
		if d.Label == label {
			return i
		}
	}
	return -1
}

func pairKey(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// BuildExclusions computes the 1-2/1-3 exclusion set and the 1-4 pair
// set from the bond graph. It is called automatically by the force
// routines but may be invoked eagerly.
func (t *Topology) BuildExclusions() {
	if t.excl != nil {
		return
	}
	t.excl = make(map[[2]int]bool)
	t.pair14 = make(map[[2]int]bool)
	adj := make([][]int, t.N())
	for _, b := range t.Bonds {
		adj[b.I] = append(adj[b.I], b.J)
		adj[b.J] = append(adj[b.J], b.I)
	}
	// 1-2
	for _, b := range t.Bonds {
		t.excl[pairKey(b.I, b.J)] = true
	}
	// 1-3
	for j := range adj {
		nb := adj[j]
		for x := 0; x < len(nb); x++ {
			for y := x + 1; y < len(nb); y++ {
				t.excl[pairKey(nb[x], nb[y])] = true
			}
		}
	}
	// 1-4: walk three bonds; only pairs not already 1-2/1-3.
	for i := range adj {
		for _, j := range adj[i] {
			for _, k := range adj[j] {
				if k == i {
					continue
				}
				for _, l := range adj[k] {
					if l == j || l == i {
						continue
					}
					key := pairKey(i, l)
					if !t.excl[key] {
						t.pair14[key] = true
					}
				}
			}
		}
	}
}

// Excluded reports whether the nonbonded interaction between i and j is
// fully excluded (1-2 or 1-3).
func (t *Topology) Excluded(i, j int) bool {
	t.BuildExclusions()
	return t.excl[pairKey(i, j)]
}

// Is14 reports whether (i,j) is a 1-4 pair (scaled by Scale14).
func (t *Topology) Is14(i, j int) bool {
	t.BuildExclusions()
	return t.pair14[pairKey(i, j)]
}

// TotalMass returns the sum of atomic masses.
func (t *Topology) TotalMass() float64 {
	m := 0.0
	for _, a := range t.Atoms {
		m += a.Mass
	}
	return m
}

// DegreesOfFreedom returns 3N (no constraints are used in this engine).
func (t *Topology) DegreesOfFreedom() int { return 3 * t.N() }
