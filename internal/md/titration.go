package md

import "math"

// TitratableSite marks an atom whose charge depends on pH, using the
// Henderson-Hasselbalch mean-field protonation model: at pH, the site's
// protonated fraction is f = 1/(1 + 10^(pH-PKa)) and its effective
// charge interpolates between the protonated and deprotonated values.
// This makes the Hamiltonian a smooth function of pH, which is exactly
// what constant-pH replica exchange needs: replicas at different pH
// values have different Hamiltonians, and exchanges use the standard
// Hamiltonian criterion with cross energies.
//
// Constant-pH exchange is the paper's named extension ("for example pH
// exchange", §5); the discrete-protonation dynamics of Meng & Roitberg
// is substituted by this mean-field model — see DESIGN.md.
type TitratableSite struct {
	// Atom indexes Topology.Atoms.
	Atom int
	// PKa of the site.
	PKa float64
	// ChargeProt and ChargeDeprot are the site charges in the
	// protonated and deprotonated states (units of e).
	ChargeProt   float64
	ChargeDeprot float64
}

// ProtonatedFraction returns the equilibrium protonated fraction at pH.
func (s TitratableSite) ProtonatedFraction(pH float64) float64 {
	return 1 / (1 + math.Pow(10, pH-s.PKa))
}

// EffectiveCharge returns the mean-field charge at pH.
func (s TitratableSite) EffectiveCharge(pH float64) float64 {
	f := s.ProtonatedFraction(pH)
	return f*s.ChargeProt + (1-f)*s.ChargeDeprot
}

// SelfFreeEnergy returns the pH-dependent free energy of the site's
// protonation equilibrium in kcal/mol at temperature tK:
//
//	F(pH) = -kT ln(1 + 10^(PKa - pH))
//
// It is independent of the coordinates but differs between pH replicas,
// so it enters the exchange criterion.
func (s TitratableSite) SelfFreeEnergy(pH, tK float64) float64 {
	return -KB * tK * math.Log(1+math.Pow(10, s.PKa-pH))
}

// effectiveCharges returns the per-atom charge vector under the given
// parameters — static charges with titratable sites replaced by their
// pH-dependent mean-field values — or nil when no titration applies
// (no titratable sites, or pH unset), in which case callers read the
// static charges directly. buf is caller-owned scratch (grown as
// needed): force evaluations run concurrently for different replicas
// sharing one topology, so the scratch must never live on shared
// structure.
func (t *Topology) effectiveCharges(prm Params, buf []float64) []float64 {
	if prm.PH <= 0 || len(t.Titratable) == 0 {
		return nil
	}
	n := t.N()
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = t.Atoms[i].Charge
	}
	for _, s := range t.Titratable {
		buf[s.Atom] = s.EffectiveCharge(prm.PH)
	}
	return buf
}

// titrationEnergy sums the sites' protonation self free energies.
func (t *Topology) titrationEnergy(prm Params) float64 {
	if prm.PH <= 0 || len(t.Titratable) == 0 {
		return 0
	}
	e := 0.0
	for _, s := range t.Titratable {
		e += s.SelfFreeEnergy(prm.PH, prm.TemperatureK)
	}
	return e
}

// BuildTitratableDipeptide returns the alanine dipeptide model with two
// titratable sites attached — a carboxylate-like site (pKa 4.0) on the
// ACE oxygen and an amine-like site (pKa 10.5) on the NME methyl — so
// that constant-pH REMD has real pH-dependent energetics.
func BuildTitratableDipeptide() (*Topology, *State) {
	top, st := BuildAlanineDipeptide()
	top.Titratable = []TitratableSite{
		{Atom: 2, PKa: 4.0, ChargeProt: -0.50, ChargeDeprot: -0.95},
		{Atom: 9, PKa: 10.5, ChargeProt: 0.80, ChargeDeprot: 0.35},
	}
	return top, st
}
