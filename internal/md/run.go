package md

// Trajectory holds time series sampled during a simulation segment.
type Trajectory struct {
	// Phi and Psi are the labelled backbone torsions in radians, one
	// entry per sample (empty if the topology lacks them).
	Phi, Psi []float64
	// Potential is the potential energy per sample (kcal/mol).
	Potential []float64
	// Kinetic is the kinetic energy per sample.
	Kinetic []float64
	// Steps is the number of integration steps covered.
	Steps int
}

// Append concatenates another trajectory onto t.
func (t *Trajectory) Append(o Trajectory) {
	t.Phi = append(t.Phi, o.Phi...)
	t.Psi = append(t.Psi, o.Psi...)
	t.Potential = append(t.Potential, o.Potential...)
	t.Kinetic = append(t.Kinetic, o.Kinetic...)
	t.Steps += o.Steps
}

// MeanPotential returns the average sampled potential energy, or 0 for an
// empty trajectory.
func (t *Trajectory) MeanPotential() float64 {
	if len(t.Potential) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range t.Potential {
		s += e
	}
	return s / float64(len(t.Potential))
}

// RunSegment advances the state by steps integration steps under prm,
// sampling observables every sampleEvery steps (sampleEvery <= 0 samples
// only the final frame). This is the "MD phase" primitive the
// replica-exchange core invokes between exchange attempts.
func RunSegment(sys *System, st *State, prm Params, integ Integrator, steps, sampleEvery int) Trajectory {
	var tr Trajectory
	tr.Steps = steps
	if sampleEvery <= 0 {
		sampleEvery = steps
	}
	phiIdx := sys.Top.FindDihedral("phi")
	psiIdx := sys.Top.FindDihedral("psi")
	sample := func() {
		e := sys.Energy(st, prm)
		tr.Potential = append(tr.Potential, e.Potential())
		tr.Kinetic = append(tr.Kinetic, sys.KineticEnergy(st))
		if phiIdx >= 0 {
			tr.Phi = append(tr.Phi, sys.DihedralAngle(st, phiIdx))
		}
		if psiIdx >= 0 {
			tr.Psi = append(tr.Psi, sys.DihedralAngle(st, psiIdx))
		}
	}
	done := 0
	for done < steps {
		chunk := sampleEvery
		if done+chunk > steps {
			chunk = steps - done
		}
		integ.Step(sys, st, prm, chunk)
		done += chunk
		sample()
	}
	return tr
}
