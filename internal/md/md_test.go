package md

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	cx := v.Cross(w)
	if math.Abs(cx.Dot(v)) > 1e-12 || math.Abs(cx.Dot(w)) > 1e-12 {
		t.Error("cross product not perpendicular to inputs")
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-12 {
		t.Error("Norm(3,4,0) != 5")
	}
	if u := (Vec3{0, 0, 7}).Unit(); u != (Vec3{0, 0, 1}) {
		t.Errorf("Unit = %v", u)
	}
	if z := (Vec3{}).Unit(); z != (Vec3{}) {
		t.Error("Unit of zero vector changed it")
	}
}

func TestBoxMinImage(t *testing.T) {
	b := Box{10, 10, 10}
	d := b.MinImage(Vec3{9, -9, 4})
	want := Vec3{-1, 1, 4}
	if d.Sub(want).Norm() > 1e-12 {
		t.Fatalf("MinImage = %v, want %v", d, want)
	}
	open := Box{}
	if got := open.MinImage(Vec3{9, -9, 4}); got != (Vec3{9, -9, 4}) {
		t.Fatal("open box must not wrap")
	}
}

func TestBoxWrap(t *testing.T) {
	b := Box{10, 10, 10}
	p := b.Wrap(Vec3{11, -1, 25})
	want := Vec3{1, 9, 5}
	if p.Sub(want).Norm() > 1e-12 {
		t.Fatalf("Wrap = %v, want %v", p, want)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi / 2, -math.Pi / 2},
		{2 * math.Pi, 0},
		{-7 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPropertyWrapAngleRange(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e9 {
			return true
		}
		w := WrapAngle(a)
		return w > -math.Pi-1e-9 && w <= math.Pi+1e-9 &&
			math.Abs(math.Cos(w)-math.Cos(a)) < 1e-6 &&
			math.Abs(math.Sin(w)-math.Sin(a)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyValidate(t *testing.T) {
	top, _ := BuildAlanineDipeptide()
	if err := top.Validate(); err != nil {
		t.Fatalf("dipeptide topology invalid: %v", err)
	}
	bad := &Topology{Atoms: []Atom{{Name: "X", Mass: -1}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative mass accepted")
	}
	bad2 := &Topology{
		Atoms: []Atom{{Name: "A", Mass: 1}, {Name: "B", Mass: 1}},
		Bonds: []Bond{{I: 0, J: 5, K: 1, R0: 1}},
	}
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range bond accepted")
	}
}

func TestExclusions(t *testing.T) {
	top, _ := BuildAlanineDipeptide()
	// 1-2: bonded atoms.
	if !top.Excluded(0, 1) {
		t.Error("bonded pair (0,1) not excluded")
	}
	// 1-3: 0-1-2.
	if !top.Excluded(0, 2) {
		t.Error("1-3 pair (0,2) not excluded")
	}
	// 1-4: 0-1-3-4.
	if !top.Is14(0, 4) {
		t.Error("(0,4) should be a 1-4 pair")
	}
	if top.Excluded(0, 4) {
		t.Error("1-4 pair must not be fully excluded")
	}
	// Distant pair: 0..9 is five bonds apart.
	if top.Excluded(0, 9) || top.Is14(0, 9) {
		t.Error("(0,9) should be a plain nonbonded pair")
	}
}

func TestFindDihedralLabels(t *testing.T) {
	top, _ := BuildAlanineDipeptide()
	phi, psi := PhiPsiIndices(top)
	if top.Dihedrals[phi].Label != "phi" || top.Dihedrals[psi].Label != "psi" {
		t.Fatal("phi/psi labels not found")
	}
	if top.FindDihedral("nope") != -1 {
		t.Fatal("FindDihedral of unknown label should be -1")
	}
}

func TestTorsionKnownGeometry(t *testing.T) {
	// Planar cis arrangement: torsion 0; trans: pi.
	a := Vec3{1, 1, 0}
	b := Vec3{0, 0, 0}
	c := Vec3{1, 0, 0} // wait: use standard 4 points
	_ = c
	// trans-butane-like: points in a plane, end atoms on opposite sides.
	p1 := Vec3{0, 1, 0}
	p2 := Vec3{0, 0, 0}
	p3 := Vec3{1, 0, 0}
	p4 := Vec3{1, -1, 0}
	if got := Torsion(Box{}, p1, p2, p3, p4); math.Abs(math.Abs(got)-math.Pi) > 1e-9 {
		t.Errorf("trans torsion = %v, want ±pi", got)
	}
	// cis: both ends on the same side.
	p4c := Vec3{1, 1, 0}
	if got := Torsion(Box{}, p1, p2, p3, p4c); math.Abs(got) > 1e-9 {
		t.Errorf("cis torsion = %v, want 0", got)
	}
	// +90 degrees.
	p4q := Vec3{1, 0, 1}
	got := Torsion(Box{}, p1, p2, p3, p4q)
	if math.Abs(math.Abs(got)-math.Pi/2) > 1e-9 {
		t.Errorf("perpendicular torsion = %v, want ±pi/2", got)
	}
	_ = a
	_ = b
}

// numericalForces computes -dE/dx by central differences.
func numericalForces(sys *System, st *State, prm Params) []Vec3 {
	const h = 1e-6
	n := sys.Top.N()
	out := make([]Vec3, n)
	for i := 0; i < n; i++ {
		for dim := 0; dim < 3; dim++ {
			bump := func(sign float64) float64 {
				c := st.Clone()
				switch dim {
				case 0:
					c.Pos[i].X += sign * h
				case 1:
					c.Pos[i].Y += sign * h
				case 2:
					c.Pos[i].Z += sign * h
				}
				return sys.Energy(c, prm).Potential()
			}
			g := (bump(1) - bump(-1)) / (2 * h)
			switch dim {
			case 0:
				out[i].X = -g
			case 1:
				out[i].Y = -g
			case 2:
				out[i].Z = -g
			}
		}
	}
	return out
}

func dipeptideSystem(t *testing.T) (*System, *State) {
	t.Helper()
	top, st := BuildAlanineDipeptide()
	sys, err := NewSystem(top, Box{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys, st
}

func TestAnalyticForcesMatchNumerical(t *testing.T) {
	sys, st := dipeptideSystem(t)
	prm := Params{
		TemperatureK: 300,
		SaltM:        0.15,
		Restraints: []TorsionRestraint{
			{Dihedral: sys.Top.FindDihedral("phi"), Center: Rad(60), K: 65.0},
			{Dihedral: sys.Top.FindDihedral("psi"), Center: Rad(-45), K: 65.0},
		},
	}
	// Perturb the geometry so no term sits at its minimum.
	rng := rand.New(rand.NewSource(3))
	for i := range st.Pos {
		st.Pos[i] = st.Pos[i].Add(Vec3{rng.Float64() * 0.2, rng.Float64() * 0.2, rng.Float64() * 0.2})
	}
	analytic := make([]Vec3, sys.Top.N())
	sys.EnergyForces(st, prm, analytic)
	numeric := numericalForces(sys, st, prm)
	for i := range analytic {
		diff := analytic[i].Sub(numeric[i]).Norm()
		scale := math.Max(1, numeric[i].Norm())
		if diff/scale > 1e-4 {
			t.Errorf("atom %d: analytic %v vs numeric %v (rel err %g)",
				i, analytic[i], numeric[i], diff/scale)
		}
	}
}

func TestForcesMatchNumericalPeriodicWithCutoff(t *testing.T) {
	top, st, box := BuildLJFluid(27, 0.02)
	sys := MustNewSystem(top, box, 6.0)
	rng := rand.New(rand.NewSource(7))
	for i := range st.Pos {
		st.Pos[i] = st.Pos[i].Add(Vec3{rng.Float64() * 0.3, rng.Float64() * 0.3, rng.Float64() * 0.3})
	}
	prm := Params{TemperatureK: 120}
	analytic := make([]Vec3, sys.Top.N())
	sys.EnergyForces(st, prm, analytic)
	numeric := numericalForces(sys, st, prm)
	for i := range analytic {
		diff := analytic[i].Sub(numeric[i]).Norm()
		scale := math.Max(1, numeric[i].Norm())
		if diff/scale > 1e-4 {
			t.Errorf("atom %d: analytic %v vs numeric %v", i, analytic[i], numeric[i])
		}
	}
}

func TestForceSumIsZero(t *testing.T) {
	// Newton's third law: internal forces sum to zero (open boundaries).
	sys, st := dipeptideSystem(t)
	prm := Params{TemperatureK: 300, SaltM: 0.1}
	f := make([]Vec3, sys.Top.N())
	sys.EnergyForces(st, prm, f)
	var sum Vec3
	for _, fi := range f {
		sum = sum.Add(fi)
	}
	if sum.Norm() > 1e-8 {
		t.Fatalf("net internal force %v, want ~0", sum)
	}
}

func TestEnergyDecompositionSums(t *testing.T) {
	sys, st := dipeptideSystem(t)
	e := sys.Energy(st, Params{TemperatureK: 300})
	total := e.Bond + e.Angle + e.Dihedral + e.LJ + e.Coulomb + e.Restraint
	if math.Abs(e.Potential()-total) > 1e-12 {
		t.Fatal("Potential() != sum of components")
	}
}

func TestSaltScreeningReducesCoulombMagnitude(t *testing.T) {
	sys, st := dipeptideSystem(t)
	e0 := sys.Energy(st, Params{TemperatureK: 300, SaltM: 0})
	e1 := sys.Energy(st, Params{TemperatureK: 300, SaltM: 0.5})
	e2 := sys.Energy(st, Params{TemperatureK: 300, SaltM: 2.0})
	if !(math.Abs(e2.Coulomb) < math.Abs(e1.Coulomb) && math.Abs(e1.Coulomb) < math.Abs(e0.Coulomb)) {
		t.Fatalf("screening not monotonic: %g %g %g", e0.Coulomb, e1.Coulomb, e2.Coulomb)
	}
	if e0.LJ != e1.LJ {
		t.Fatal("salt changed the LJ energy")
	}
}

func TestKappaZeroForZeroSalt(t *testing.T) {
	if (Params{TemperatureK: 300}).Kappa() != 0 {
		t.Fatal("kappa != 0 at zero salt")
	}
	k := (Params{TemperatureK: 300, SaltM: 0.15}).Kappa()
	want := math.Sqrt(0.15) / 3.04
	if math.Abs(k-want) > 1e-12 {
		t.Fatalf("kappa = %v, want %v", k, want)
	}
}

func TestRestraintEnergyAtCenterIsZero(t *testing.T) {
	sys, st := dipeptideSystem(t)
	phi, _ := PhiPsiIndices(sys.Top)
	cur := sys.DihedralAngle(st, phi)
	prm := Params{TemperatureK: 300, Restraints: []TorsionRestraint{{Dihedral: phi, Center: cur, K: 100}}}
	e := sys.Energy(st, prm)
	if math.Abs(e.Restraint) > 1e-9 {
		t.Fatalf("restraint energy %v at its center, want 0", e.Restraint)
	}
}

func TestRestraintWrapsPeriodically(t *testing.T) {
	// A restraint centred at +175 deg with the torsion at -175 deg must
	// see a 10 deg violation, not 350 deg.
	sys, st := dipeptideSystem(t)
	phi, _ := PhiPsiIndices(sys.Top)
	cur := sys.DihedralAngle(st, phi)
	// Center the restraint 2pi - 0.1 away so the wrapped distance is 0.1.
	center := WrapAngle(cur + 2*math.Pi - 0.1)
	prm := Params{TemperatureK: 300, Restraints: []TorsionRestraint{{Dihedral: phi, Center: center, K: 50}}}
	e := sys.Energy(st, prm)
	want := 50 * 0.1 * 0.1
	if math.Abs(e.Restraint-want) > 1e-6 {
		t.Fatalf("wrapped restraint energy %v, want %v", e.Restraint, want)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{TemperatureK: 300}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{TemperatureK: 0}).Validate(); err == nil {
		t.Error("zero temperature accepted")
	}
	if err := (Params{TemperatureK: 300, SaltM: -1}).Validate(); err == nil {
		t.Error("negative salt accepted")
	}
	if err := (Params{TemperatureK: 300, Restraints: []TorsionRestraint{{K: -5}}}).Validate(); err == nil {
		t.Error("negative restraint K accepted")
	}
}

func TestParamsCloneIsDeep(t *testing.T) {
	p := Params{TemperatureK: 300, Restraints: []TorsionRestraint{{Dihedral: 1, Center: 1, K: 2}}}
	q := p.Clone()
	q.Restraints[0].Center = 9
	if p.Restraints[0].Center == 9 {
		t.Fatal("Clone shares restraint storage")
	}
}

func TestMinimizeLowersEnergy(t *testing.T) {
	sys, st := dipeptideSystem(t)
	prm := Params{TemperatureK: 300}
	before := sys.Energy(st, prm).Potential()
	after := Minimize(sys, st, prm, 500, 1e-3)
	if after >= before {
		t.Fatalf("minimization did not lower energy: %v -> %v", before, after)
	}
}

func TestNVEEnergyConservation(t *testing.T) {
	sys, st := dipeptideSystem(t)
	prm := Params{TemperatureK: 300}
	Minimize(sys, st, prm, 2000, 1e-4)
	rng := rand.New(rand.NewSource(11))
	InitVelocities(sys, st, 300, rng)
	vv := &VelocityVerlet{Dt: 0.0005}
	e0 := sys.Energy(st, prm).Potential() + sys.KineticEnergy(st)
	vv.Step(sys, st, prm, 2000)
	e1 := sys.Energy(st, prm).Potential() + sys.KineticEnergy(st)
	drift := math.Abs(e1 - e0)
	if drift > 0.5 {
		t.Fatalf("NVE drift %v kcal/mol over 1 ps, want < 0.5", drift)
	}
}

func TestLangevinThermostatTemperature(t *testing.T) {
	sys, st := dipeptideSystem(t)
	prm := Params{TemperatureK: 300}
	Minimize(sys, st, prm, 1000, 1e-3)
	rng := rand.New(rand.NewSource(5))
	InitVelocities(sys, st, 300, rng)
	lg := NewLangevin(0.001, 5.0, 17)
	lg.Step(sys, st, prm, 2000) // equilibrate
	sum := 0.0
	const samples = 200
	for i := 0; i < samples; i++ {
		lg.Step(sys, st, prm, 25)
		sum += sys.InstantaneousTemperature(st)
	}
	mean := sum / samples
	if math.Abs(mean-300) > 45 {
		t.Fatalf("thermostat mean T = %v K, want 300 +- 45", mean)
	}
}

func TestInitVelocitiesRemovesDrift(t *testing.T) {
	sys, st := dipeptideSystem(t)
	rng := rand.New(rand.NewSource(2))
	InitVelocities(sys, st, 300, rng)
	var p Vec3
	for i, a := range sys.Top.Atoms {
		p = p.Add(st.Vel[i].Scale(a.Mass))
	}
	if p.Norm() > 1e-9 {
		t.Fatalf("net momentum %v, want 0", p)
	}
}

func TestRunSegmentSampling(t *testing.T) {
	sys, st := dipeptideSystem(t)
	prm := Params{TemperatureK: 300}
	Minimize(sys, st, prm, 500, 1e-2)
	rng := rand.New(rand.NewSource(4))
	InitVelocities(sys, st, 300, rng)
	lg := NewLangevin(0.001, 5.0, 6)
	tr := RunSegment(sys, st, prm, lg, 100, 10)
	if tr.Steps != 100 {
		t.Fatalf("steps = %d, want 100", tr.Steps)
	}
	if len(tr.Potential) != 10 || len(tr.Phi) != 10 || len(tr.Psi) != 10 {
		t.Fatalf("samples = %d/%d/%d, want 10 each", len(tr.Potential), len(tr.Phi), len(tr.Psi))
	}
	for _, phi := range tr.Phi {
		if phi < -math.Pi-1e-9 || phi > math.Pi+1e-9 {
			t.Fatalf("phi sample %v out of range", phi)
		}
	}
}

func TestTrajectoryAppendAndMean(t *testing.T) {
	a := Trajectory{Potential: []float64{1, 3}, Steps: 10}
	b := Trajectory{Potential: []float64{5}, Steps: 5}
	a.Append(b)
	if a.Steps != 15 || len(a.Potential) != 3 {
		t.Fatal("Append merged incorrectly")
	}
	if a.MeanPotential() != 3 {
		t.Fatalf("MeanPotential = %v, want 3", a.MeanPotential())
	}
	empty := Trajectory{}
	if empty.MeanPotential() != 0 {
		t.Fatal("empty MeanPotential should be 0")
	}
}

func TestBuildSolvatedDipeptideCounts(t *testing.T) {
	top, st, box := BuildSolvatedDipeptide(200)
	if top.N() < 150 || top.N() > 210 {
		t.Fatalf("atom count %d, want ~210 (some lattice sites clash)", top.N())
	}
	if len(st.Pos) != top.N() {
		t.Fatal("positions out of sync with topology")
	}
	if !box.Periodic() {
		t.Fatal("solvated system must be periodic")
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("solvated topology invalid: %v", err)
	}
	// All solvent inside the box.
	for i, p := range st.Pos[10:] {
		if p.X < 0 || p.X > box.Lx || p.Y < 0 || p.Y > box.Ly || p.Z < 0 || p.Z > box.Lz {
			t.Fatalf("solvent %d at %v outside box %v", i, p, box)
		}
	}
}

func TestBuildLJFluid(t *testing.T) {
	top, st, box := BuildLJFluid(64, 0.0334)
	if top.N() != 64 || len(st.Pos) != 64 {
		t.Fatalf("n = %d, want 64", top.N())
	}
	wantVol := 64 / 0.0334
	if math.Abs(box.Volume()-wantVol) > 1e-6*wantVol {
		t.Fatalf("volume %v, want %v", box.Volume(), wantVol)
	}
}

func TestUmbrellaPullsTorsionTowardCenter(t *testing.T) {
	// With a stiff umbrella at +60 deg, the sampled phi distribution
	// must centre near +60 deg regardless of the free landscape.
	sys, st := dipeptideSystem(t)
	phi, _ := PhiPsiIndices(sys.Top)
	target := Rad(60)
	prm := Params{
		TemperatureK: 300,
		Restraints:   []TorsionRestraint{{Dihedral: phi, Center: target, K: 200}},
	}
	Minimize(sys, st, prm, 3000, 1e-3)
	rng := rand.New(rand.NewSource(9))
	InitVelocities(sys, st, 300, rng)
	lg := NewLangevin(0.001, 5.0, 13)
	lg.Step(sys, st, prm, 1000)
	tr := RunSegment(sys, st, prm, lg, 3000, 10)
	// Circular mean of phi samples.
	var sx, sy float64
	for _, a := range tr.Phi {
		sx += math.Cos(a)
		sy += math.Sin(a)
	}
	mean := math.Atan2(sy, sx)
	if math.Abs(WrapAngle(mean-target)) > Rad(20) {
		t.Fatalf("umbrella-sampled phi mean %v deg, want ~60", Deg(mean))
	}
}

// Property: potential energy is invariant under rigid translation.
func TestPropertyTranslationInvariance(t *testing.T) {
	sys, st0 := dipeptideSystem(t)
	prm := Params{TemperatureK: 300, SaltM: 0.2}
	e0 := sys.Energy(st0, prm).Potential()
	f := func(dx, dy, dz float64) bool {
		if math.Abs(dx) > 1e3 || math.Abs(dy) > 1e3 || math.Abs(dz) > 1e3 {
			return true
		}
		st := st0.Clone()
		for i := range st.Pos {
			st.Pos[i] = st.Pos[i].Add(Vec3{dx, dy, dz})
		}
		return math.Abs(sys.Energy(st, prm).Potential()-e0) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: kinetic energy is nonnegative and temperature scales with it.
func TestPropertyKineticNonNegative(t *testing.T) {
	sys, st := dipeptideSystem(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		InitVelocities(sys, st, 250, rng)
		ke := sys.KineticEnergy(st)
		return ke >= 0 && sys.InstantaneousTemperature(st) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
