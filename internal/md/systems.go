package md

import (
	"fmt"
	"math"
)

// BuildAlanineDipeptide returns a 10-site united-atom model of alanine
// dipeptide (Ace-Ala-Nme), the physical system used throughout the
// paper's validation and experiments, together with an approximate
// starting geometry.
//
// The model resolves the backbone heavy atoms that define the φ
// (C-N-CA-C) and ψ (N-CA-C-N) torsions, carries partial charges so the
// Debye–Hückel salt term is active (S-REMD), and uses Fourier dihedral
// terms parameterised to give a multi-basin Ramachandran-like free
// energy surface. It is a stylised substitute for the Amber force field
// — see DESIGN.md, substitution 3.
func BuildAlanineDipeptide() (*Topology, *State) {
	top := &Topology{
		Atoms: []Atom{
			{Name: "CH3A", Mass: 15.035, Charge: 0.00, LJEps: 0.145, LJSigma: 3.80}, // 0 ACE methyl
			{Name: "C1", Mass: 12.011, Charge: 0.50, LJEps: 0.090, LJSigma: 3.40},   // 1 ACE carbonyl C
			{Name: "O1", Mass: 15.999, Charge: -0.50, LJEps: 0.210, LJSigma: 2.96},  // 2 ACE O
			{Name: "N1", Mass: 14.007, Charge: -0.35, LJEps: 0.170, LJSigma: 3.25},  // 3 amide N
			{Name: "CA", Mass: 13.019, Charge: 0.35, LJEps: 0.080, LJSigma: 3.80},   // 4 alpha carbon
			{Name: "CB", Mass: 15.035, Charge: 0.00, LJEps: 0.145, LJSigma: 3.80},   // 5 beta methyl
			{Name: "C2", Mass: 12.011, Charge: 0.50, LJEps: 0.090, LJSigma: 3.40},   // 6 carbonyl C
			{Name: "O2", Mass: 15.999, Charge: -0.50, LJEps: 0.210, LJSigma: 2.96},  // 7 O
			{Name: "N2", Mass: 14.007, Charge: -0.35, LJEps: 0.170, LJSigma: 3.25},  // 8 amide N
			{Name: "CH3N", Mass: 15.035, Charge: 0.35, LJEps: 0.145, LJSigma: 3.80}, // 9 NME methyl
		},
		Bonds: []Bond{
			{I: 0, J: 1, K: 150, R0: 1.52},
			{I: 1, J: 2, K: 280, R0: 1.23},
			{I: 1, J: 3, K: 210, R0: 1.33},
			{I: 3, J: 4, K: 160, R0: 1.45},
			{I: 4, J: 5, K: 150, R0: 1.52},
			{I: 4, J: 6, K: 150, R0: 1.52},
			{I: 6, J: 7, K: 280, R0: 1.23},
			{I: 6, J: 8, K: 210, R0: 1.33},
			{I: 8, J: 9, K: 160, R0: 1.45},
		},
		Angles: []Angle{
			{I: 0, J: 1, K: 2, KTheta: 35, Theta0: Rad(120)},
			{I: 0, J: 1, K: 3, KTheta: 35, Theta0: Rad(116)},
			{I: 2, J: 1, K: 3, KTheta: 40, Theta0: Rad(122)},
			{I: 1, J: 3, K: 4, KTheta: 35, Theta0: Rad(122)},
			{I: 3, J: 4, K: 5, KTheta: 30, Theta0: Rad(110)},
			{I: 3, J: 4, K: 6, KTheta: 30, Theta0: Rad(110)},
			{I: 5, J: 4, K: 6, KTheta: 30, Theta0: Rad(110)},
			{I: 4, J: 6, K: 7, KTheta: 35, Theta0: Rad(120)},
			{I: 4, J: 6, K: 8, KTheta: 35, Theta0: Rad(116)},
			{I: 7, J: 6, K: 8, KTheta: 40, Theta0: Rad(122)},
			{I: 6, J: 8, K: 9, KTheta: 35, Theta0: Rad(122)},
		},
		Dihedrals: []Dihedral{
			// omega-like planarity terms (trans/cis amide).
			{I: 0, J: 1, K: 3, L: 4, Terms: []DihedralTerm{{K: 5.0, N: 2, Phase: Rad(180)}}, Label: "omega1"},
			// phi: C1-N1-CA-C2. Two-fold term gives basins near ±90°,
			// one-fold term deepens the -85° basin.
			{I: 1, J: 3, K: 4, L: 6, Terms: []DihedralTerm{
				{K: 1.5, N: 2, Phase: 0},
				{K: 0.6, N: 1, Phase: Rad(100)},
			}, Label: "phi"},
			// psi: N1-CA-C2-N2, mirrored bias toward +100°.
			{I: 3, J: 4, K: 6, L: 8, Terms: []DihedralTerm{
				{K: 1.5, N: 2, Phase: 0},
				{K: 0.6, N: 1, Phase: Rad(-60)},
			}, Label: "psi"},
			{I: 4, J: 6, K: 8, L: 9, Terms: []DihedralTerm{{K: 5.0, N: 2, Phase: Rad(180)}}, Label: "omega2"},
		},
		Scale14: 0.5,
	}
	st := NewState(top.N())
	st.Pos = []Vec3{
		{-2.90, 1.20, 0.10},
		{-1.80, 0.30, 0.00},
		{-2.00, -0.90, 0.05},
		{-0.55, 0.80, -0.05},
		{0.65, 0.00, 0.00},
		{1.00, 0.20, 1.50},
		{1.80, 0.50, -0.90},
		{1.70, 1.70, -1.20},
		{2.90, -0.30, -1.20},
		{4.10, 0.10, -1.90},
	}
	return top, st
}

// PhiPsiIndices returns the dihedral indexes of the labelled phi and psi
// torsions, panicking if the topology has none (programming error).
func PhiPsiIndices(top *Topology) (phi, psi int) {
	phi = top.FindDihedral("phi")
	psi = top.FindDihedral("psi")
	if phi < 0 || psi < 0 {
		panic("md: topology lacks labelled phi/psi dihedrals")
	}
	return phi, psi
}

// WaterNumberDensity is the number density of liquid water in Å⁻³, used
// to size solvent boxes.
const WaterNumberDensity = 0.0334

// BuildSolvatedDipeptide returns the dipeptide immersed in nSolvent
// neutral Lennard-Jones "water" sites on a cubic lattice, in a periodic
// box at liquid-water density. Atom counts of 2881 and 64366 match the
// paper's small and large benchmark systems (total sites = 10 + nSolvent).
func BuildSolvatedDipeptide(nSolvent int) (*Topology, *State, Box) {
	top, st := BuildAlanineDipeptide()
	if nSolvent <= 0 {
		return top, st, Box{}
	}
	total := top.N() + nSolvent
	L := math.Cbrt(float64(total) / WaterNumberDensity)
	box := Box{L, L, L}
	// Cells per axis to fit nSolvent lattice sites.
	cells := int(math.Ceil(math.Cbrt(float64(nSolvent))))
	spacing := L / float64(cells)
	// Recentre the solute into the box middle.
	mid := Vec3{L / 2, L / 2, L / 2}
	var com Vec3
	for _, p := range st.Pos {
		com = com.Add(p)
	}
	com = com.Scale(1 / float64(len(st.Pos)))
	shift := mid.Sub(com)
	for i := range st.Pos {
		st.Pos[i] = st.Pos[i].Add(shift)
	}
	placed := 0
	for ix := 0; ix < cells && placed < nSolvent; ix++ {
		for iy := 0; iy < cells && placed < nSolvent; iy++ {
			for iz := 0; iz < cells && placed < nSolvent; iz++ {
				p := Vec3{
					(float64(ix) + 0.5) * spacing,
					(float64(iy) + 0.5) * spacing,
					(float64(iz) + 0.5) * spacing,
				}
				// Skip lattice sites clashing with the solute.
				clash := false
				for s := 0; s < 10; s++ {
					if box.MinImage(p.Sub(st.Pos[s])).Norm() < 2.5 {
						clash = true
						break
					}
				}
				if clash {
					continue
				}
				top.Atoms = append(top.Atoms, Atom{
					Name: "W", Mass: 18.015, Charge: 0,
					LJEps: 0.152, LJSigma: 3.15,
				})
				st.Pos = append(st.Pos, p)
				st.Vel = append(st.Vel, Vec3{})
				placed++
			}
		}
	}
	// Invalidate cached exclusions built for the bare solute.
	top.excl = nil
	top.pair14 = nil
	return top, st, box
}

// BuildLJFluid returns n identical Lennard-Jones particles on a lattice
// in a periodic cube at the given number density (Å⁻³).
func BuildLJFluid(n int, density float64) (*Topology, *State, Box) {
	if n <= 0 || density <= 0 {
		panic(fmt.Sprintf("md: bad LJ fluid spec n=%d rho=%g", n, density))
	}
	L := math.Cbrt(float64(n) / density)
	box := Box{L, L, L}
	top := &Topology{Scale14: 0}
	st := NewState(0)
	cells := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := L / float64(cells)
	placed := 0
	for ix := 0; ix < cells && placed < n; ix++ {
		for iy := 0; iy < cells && placed < n; iy++ {
			for iz := 0; iz < cells && placed < n; iz++ {
				top.Atoms = append(top.Atoms, Atom{
					Name: "LJ", Mass: 39.948, LJEps: 0.238, LJSigma: 3.405,
				})
				st.Pos = append(st.Pos, Vec3{
					(float64(ix) + 0.5) * spacing,
					(float64(iy) + 0.5) * spacing,
					(float64(iz) + 0.5) * spacing,
				})
				st.Vel = append(st.Vel, Vec3{})
				placed++
			}
		}
	}
	return top, st, box
}
