package md

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProtonatedFractionLimits(t *testing.T) {
	s := TitratableSite{PKa: 7}
	if f := s.ProtonatedFraction(7); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("fraction at pKa = %v, want 0.5", f)
	}
	if f := s.ProtonatedFraction(1); f < 0.999 {
		t.Fatalf("fraction at low pH = %v, want ~1", f)
	}
	if f := s.ProtonatedFraction(13); f > 0.001 {
		t.Fatalf("fraction at high pH = %v, want ~0", f)
	}
}

func TestEffectiveChargeInterpolates(t *testing.T) {
	s := TitratableSite{PKa: 4, ChargeProt: -0.5, ChargeDeprot: -0.95}
	qLow := s.EffectiveCharge(1)   // fully protonated
	qHigh := s.EffectiveCharge(12) // fully deprotonated
	if math.Abs(qLow+0.5) > 1e-3 {
		t.Fatalf("low-pH charge %v, want ~-0.5", qLow)
	}
	if math.Abs(qHigh+0.95) > 1e-3 {
		t.Fatalf("high-pH charge %v, want ~-0.95", qHigh)
	}
	qMid := s.EffectiveCharge(4)
	if math.Abs(qMid-(-0.725)) > 1e-6 {
		t.Fatalf("pKa charge %v, want midpoint -0.725", qMid)
	}
}

// Property: effective charge is monotone in pH between the two state
// charges.
func TestPropertyEffectiveChargeMonotone(t *testing.T) {
	s := TitratableSite{PKa: 6, ChargeProt: 0.8, ChargeDeprot: 0.35}
	f := func(a, b float64) bool {
		pa := math.Mod(math.Abs(a), 14)
		pb := math.Mod(math.Abs(b), 14)
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, qb := s.EffectiveCharge(pa), s.EffectiveCharge(pb)
		// Protonated charge is higher here, so charge decreases with pH.
		return qa >= qb-1e-12 &&
			qa <= s.ChargeProt+1e-12 && qb >= s.ChargeDeprot-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfFreeEnergyShape(t *testing.T) {
	s := TitratableSite{PKa: 7}
	// Far above the pKa the proton is gone: F -> 0.
	if f := s.SelfFreeEnergy(13, 300); math.Abs(f) > 1e-3 {
		t.Fatalf("F at high pH = %v, want ~0", f)
	}
	// Far below, F ~ -kT ln10 (pKa - pH) < 0 and decreasing.
	f3 := s.SelfFreeEnergy(3, 300)
	f5 := s.SelfFreeEnergy(5, 300)
	if !(f3 < f5 && f5 < 0) {
		t.Fatalf("F not decreasing toward low pH: F(3)=%v F(5)=%v", f3, f5)
	}
}

func TestTitratableDipeptideEnergyDependsOnPH(t *testing.T) {
	top, st := BuildTitratableDipeptide()
	sys := MustNewSystem(top, Box{}, 0)
	e4 := sys.Energy(st, Params{TemperatureK: 300, PH: 4})
	e10 := sys.Energy(st, Params{TemperatureK: 300, PH: 10})
	if e4.Potential() == e10.Potential() {
		t.Fatal("potential energy identical at pH 4 and 10")
	}
	if e4.Titration == e10.Titration {
		t.Fatal("titration term identical at pH 4 and 10")
	}
	if e4.Coulomb == e10.Coulomb {
		t.Fatal("Coulomb term identical at pH 4 and 10 (effective charges unused)")
	}
	// Without pH the titration term vanishes and charges are static.
	e0 := sys.Energy(st, Params{TemperatureK: 300})
	if e0.Titration != 0 {
		t.Fatalf("titration term %v without pH coupling, want 0", e0.Titration)
	}
}

func TestPHForcesMatchNumerical(t *testing.T) {
	// The analytic forces must stay consistent with the pH-effective
	// charges.
	top, st := BuildTitratableDipeptide()
	sys := MustNewSystem(top, Box{}, 0)
	prm := Params{TemperatureK: 300, PH: 5.5, SaltM: 0.1}
	analytic := make([]Vec3, top.N())
	sys.EnergyForces(st, prm, analytic)
	numeric := numericalForces(sys, st, prm)
	for i := range analytic {
		diff := analytic[i].Sub(numeric[i]).Norm()
		scale := math.Max(1, numeric[i].Norm())
		if diff/scale > 1e-4 {
			t.Fatalf("atom %d: analytic %v vs numeric %v", i, analytic[i], numeric[i])
		}
	}
}

func TestParamsValidatePH(t *testing.T) {
	if err := (Params{TemperatureK: 300, PH: 7}).Validate(); err != nil {
		t.Fatalf("valid pH rejected: %v", err)
	}
	if err := (Params{TemperatureK: 300, PH: -1}).Validate(); err == nil {
		t.Fatal("negative pH accepted")
	}
	if err := (Params{TemperatureK: 300, PH: 15}).Validate(); err == nil {
		t.Fatal("pH 15 accepted")
	}
}

func TestPlainDipeptideUnaffectedByPH(t *testing.T) {
	// Without titratable sites, pH must not change the energy.
	top, st := BuildAlanineDipeptide()
	sys := MustNewSystem(top, Box{}, 0)
	e1 := sys.Energy(st, Params{TemperatureK: 300, PH: 3}).Potential()
	e2 := sys.Energy(st, Params{TemperatureK: 300, PH: 11}).Potential()
	if e1 != e2 {
		t.Fatal("pH changed the energy of a system without titratable sites")
	}
}
