package exchange

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTypeCodes(t *testing.T) {
	cases := []struct {
		ty   Type
		code string
	}{{Temperature, "T"}, {Umbrella, "U"}, {Salt, "S"}}
	for _, c := range cases {
		if c.ty.Code() != c.code {
			t.Errorf("%v.Code() = %q, want %q", c.ty, c.ty.Code(), c.code)
		}
		parsed, err := ParseType(c.code)
		if err != nil || parsed != c.ty {
			t.Errorf("ParseType(%q) = %v, %v", c.code, parsed, err)
		}
	}
	if _, err := ParseType("X"); err == nil {
		t.Error("ParseType(X) succeeded, want error")
	}
	if Temperature.NeedsCrossEnergies() {
		t.Error("temperature exchange should not need cross energies")
	}
	if !Umbrella.NeedsCrossEnergies() || !Salt.NeedsCrossEnergies() {
		t.Error("U/S exchanges need cross energies")
	}
}

func TestAcceptTemperatureKnownCases(t *testing.T) {
	// Equal energies: always accept.
	if p := AcceptTemperature(1.5, 1.2, -100, -100); p != 1 {
		t.Errorf("equal energies p = %v, want 1", p)
	}
	// Equal betas: always accept.
	if p := AcceptTemperature(1.5, 1.5, -80, -120); p != 1 {
		t.Errorf("equal betas p = %v, want 1", p)
	}
	// Favourable: colder replica (higher beta) has higher energy ->
	// exponent (bI-bJ)(eI-eJ) > 0 -> accept with p = 1.
	if p := AcceptTemperature(2.0, 1.0, -50, -100); p != 1 {
		t.Errorf("favourable swap p = %v, want 1", p)
	}
	// Unfavourable case has p = exp(negative) < 1.
	p := AcceptTemperature(2.0, 1.0, -100, -50)
	want := math.Exp((2.0 - 1.0) * (-100 - -50))
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("unfavourable p = %v, want %v", p, want)
	}
}

func TestAcceptHamiltonianKnownCases(t *testing.T) {
	// If parameters don't change the energies, always accept.
	if p := AcceptHamiltonian(1.5, 1.5, -10, -10, -10, -10); p != 1 {
		t.Errorf("neutral Hamiltonian exchange p = %v, want 1", p)
	}
	// Cross configuration strictly better: accept.
	if p := AcceptHamiltonian(1, 1, 0, -5, 0, -5); p != 1 {
		t.Errorf("downhill exchange p = %v, want 1", p)
	}
	// Cross configuration worse by 2 kT total: p = exp(-2).
	p := AcceptHamiltonian(1, 1, 0, 1, 1, 0)
	if math.Abs(p-math.Exp(-2)) > 1e-12 {
		t.Errorf("uphill exchange p = %v, want exp(-2)", p)
	}
}

// Property: acceptance probabilities always lie in [0,1].
func TestPropertyAcceptanceBounds(t *testing.T) {
	f := func(bi, bj, a, b, c, d float64) bool {
		clampIn := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 1e3)
		}
		bi, bj = math.Abs(clampIn(bi))+1e-3, math.Abs(clampIn(bj))+1e-3
		a, b, c, d = clampIn(a), clampIn(b), clampIn(c), clampIn(d)
		p1 := AcceptTemperature(bi, bj, a, b)
		p2 := AcceptHamiltonian(bi, bj, a, b, c, d)
		return p1 >= 0 && p1 <= 1 && p2 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: detailed balance ratio. For the Metropolis rule,
// P(i->j)/P(j->i) = exp[(bi-bj)(ei-ej)] for temperature exchange.
func TestPropertyDetailedBalanceTemperature(t *testing.T) {
	f := func(rawBi, rawBj, rawEi, rawEj float64) bool {
		bi := math.Abs(math.Mod(rawBi, 3)) + 0.1
		bj := math.Abs(math.Mod(rawBj, 3)) + 0.1
		ei := math.Mod(rawEi, 50)
		ej := math.Mod(rawEj, 50)
		if math.IsNaN(ei) || math.IsNaN(ej) {
			return true
		}
		pF := AcceptTemperature(bi, bj, ei, ej)
		pR := AcceptTemperature(bj, bi, ej, ei) // reverse swap is identical
		if math.Abs(pF-pR) > 1e-12 {
			return false
		}
		// One direction must be exactly 1 (min(1, x) with x*1/x = 1).
		ratio := math.Exp((bi - bj) * (ei - ej))
		if ratio >= 1 {
			return pF == 1
		}
		return math.Abs(pF-ratio) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborPairsAlternate(t *testing.T) {
	group := []int{10, 11, 12, 13, 14}
	even := NeighborPairs(group, 0)
	odd := NeighborPairs(group, 1)
	wantEven := []Pair{{10, 11}, {12, 13}}
	wantOdd := []Pair{{11, 12}, {13, 14}}
	if !reflect.DeepEqual(even, wantEven) {
		t.Errorf("even pairs %v, want %v", even, wantEven)
	}
	if !reflect.DeepEqual(odd, wantOdd) {
		t.Errorf("odd pairs %v, want %v", odd, wantOdd)
	}
}

func TestNeighborPairsSmallGroups(t *testing.T) {
	if got := NeighborPairs([]int{5}, 0); len(got) != 0 {
		t.Errorf("singleton group pairs = %v, want none", got)
	}
	if got := NeighborPairs(nil, 1); len(got) != 0 {
		t.Errorf("empty group pairs = %v, want none", got)
	}
	if got := NeighborPairs([]int{3, 4}, 1); len(got) != 0 {
		t.Errorf("odd sweep of 2-group = %v, want none", got)
	}
}

// Property: pairs are disjoint and drawn from the group.
func TestPropertyNeighborPairsDisjoint(t *testing.T) {
	f := func(n uint8, sweep uint8) bool {
		size := int(n%32) + 1
		group := make([]int, size)
		for i := range group {
			group[i] = 100 + i
		}
		pairs := NeighborPairs(group, int(sweep))
		seen := map[int]bool{}
		for _, p := range pairs {
			if seen[p.I] || seen[p.J] || p.I == p.J {
				return false
			}
			seen[p.I] = true
			seen[p.J] = true
			if p.I < 100 || p.I >= 100+size || p.J < 100 || p.J >= 100+size {
				return false
			}
			// Nearest neighbours in group order.
			if p.J-p.I != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPairsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	group := []int{1, 2, 3, 4, 5, 6, 7}
	pairs := RandomPairs(group, rng)
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d, want 3 from a 7-group", len(pairs))
	}
	seen := map[int]bool{}
	for _, p := range pairs {
		if seen[p.I] || seen[p.J] {
			t.Fatal("random pairs overlap")
		}
		seen[p.I] = true
		seen[p.J] = true
	}
}

func TestGridIndexCoordRoundTrip(t *testing.T) {
	g := MustNewGrid(6, 8, 8)
	if g.Size() != 384 {
		t.Fatalf("size = %d, want 384 (the paper's validation grid)", g.Size())
	}
	for id := 0; id < g.Size(); id++ {
		if got := g.Index(g.Coord(id)); got != id {
			t.Fatalf("round trip failed: %d -> %v -> %d", id, g.Coord(id), got)
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := NewGrid(4, 0); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestGroupsAlongPartition(t *testing.T) {
	g := MustNewGrid(3, 4)
	for d := 0; d < 2; d++ {
		groups := g.GroupsAlong(d)
		wantGroups := g.Size() / g.Shape[d]
		if len(groups) != wantGroups {
			t.Fatalf("dim %d: %d groups, want %d", d, len(groups), wantGroups)
		}
		var all []int
		for _, grp := range groups {
			if len(grp) != g.Shape[d] {
				t.Fatalf("dim %d: group size %d, want %d", d, len(grp), g.Shape[d])
			}
			all = append(all, grp...)
			// Within a group only coordinate d varies, in order.
			for k := 1; k < len(grp); k++ {
				c0 := g.Coord(grp[k-1])
				c1 := g.Coord(grp[k])
				for dd := range c0 {
					if dd == d {
						if c1[dd] != c0[dd]+1 {
							t.Fatalf("group not ordered along dim %d", d)
						}
					} else if c0[dd] != c1[dd] {
						t.Fatalf("group varies along dim %d too", dd)
					}
				}
			}
		}
		sort.Ints(all)
		for i, id := range all {
			if id != i {
				t.Fatalf("dim %d: groups do not partition replicas", d)
			}
		}
	}
}

// Property: for any grid, groups along each dimension partition the
// replica set exactly.
func TestPropertyGroupsPartition(t *testing.T) {
	f := func(a, b, c uint8) bool {
		shape := []int{int(a%4) + 1, int(b%4) + 1, int(c%4) + 1}
		g := MustNewGrid(shape...)
		for d := 0; d < 3; d++ {
			var all []int
			for _, grp := range g.GroupsAlong(d) {
				all = append(all, grp...)
			}
			if len(all) != g.Size() {
				return false
			}
			sort.Ints(all)
			for i, id := range all {
				if id != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepRespectsProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pairs := make([]Pair, 10000)
	probs := make([]float64, len(pairs))
	for i := range pairs {
		pairs[i] = Pair{2 * i, 2*i + 1}
		probs[i] = 0.3
	}
	ds := Sweep(pairs, probs, rng)
	ratio := AcceptanceRatio(ds)
	if math.Abs(ratio-0.3) > 0.02 {
		t.Fatalf("acceptance ratio %v, want ~0.3", ratio)
	}
}

func TestSweepExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := Sweep([]Pair{{0, 1}, {2, 3}}, []float64{0, 1}, rng)
	if ds[0].Accepted {
		t.Error("p=0 pair accepted")
	}
	if !ds[1].Accepted {
		t.Error("p=1 pair rejected")
	}
}

func TestSweepLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched sweep inputs did not panic")
		}
	}()
	Sweep([]Pair{{0, 1}}, nil, rand.New(rand.NewSource(1)))
}

func TestAcceptanceRatioEmpty(t *testing.T) {
	if AcceptanceRatio(nil) != 0 {
		t.Fatal("empty ratio != 0")
	}
}

// groupsAlongReference is the original map-based implementation, kept as
// the oracle for the stride-arithmetic GroupsAlong: same groups, same
// group order (first-seen over ascending IDs), same member order.
func groupsAlongReference(g Grid, d int) [][]int {
	total := g.Size()
	groups := make(map[string][]int)
	var order []string
	for id := 0; id < total; id++ {
		coord := g.Coord(id)
		coord[d] = -1
		key := ""
		for _, c := range coord {
			key += string(rune('A'+c+1)) + ","
		}
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], id)
	}
	out := make([][]int, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}

func TestGroupsAlongMatchesReference(t *testing.T) {
	shapes := [][]int{
		{1}, {7}, {3, 4}, {4, 3}, {2, 2, 2}, {3, 1, 5}, {1, 6, 1}, {2, 3, 4, 2},
	}
	for _, shape := range shapes {
		g := MustNewGrid(shape...)
		for d := range shape {
			got := g.GroupsAlong(d)
			want := groupsAlongReference(g, d)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shape %v dim %d:\n got %v\nwant %v", shape, d, got, want)
			}
		}
	}
}

func BenchmarkGroupsAlong(b *testing.B) {
	g := MustNewGrid(12, 12, 12) // 1728 replicas, the paper's largest sweep
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for d := 0; d < 3; d++ {
			if len(g.GroupsAlong(d)) == 0 {
				b.Fatal("no groups")
			}
		}
	}
}
