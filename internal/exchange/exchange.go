// Package exchange implements the replica-exchange acceptance criteria,
// nearest-neighbour pairing and multi-dimensional replica grouping used
// by the RepEx core. It corresponds to the exchange procedures of RepEx's
// Remote Application Modules (RAM).
//
// Three exchange types are supported, matching the paper: temperature
// (T-REMD), umbrella/Hamiltonian (U-REMD) and salt concentration
// (S-REMD). T-REMD needs only the two replicas' own energies; U- and
// S-REMD are Hamiltonian exchanges requiring the 2x2 cross-energy matrix
// (each replica's coordinates evaluated under both parameter sets). For
// S-REMD those cross energies come from additional single-point-energy
// tasks run by the MD engine, which is why the paper's S exchange is an
// order of magnitude more expensive.
package exchange

import (
	"fmt"
	"math"
	"math/rand"
)

// Type identifies an exchange dimension type.
type Type int

const (
	// Temperature exchange (T).
	Temperature Type = iota
	// Umbrella (Hamiltonian) exchange (U).
	Umbrella
	// Salt concentration exchange (S).
	Salt
	// PH is constant-pH exchange (H), one of the paper's named
	// extensions ("a number of additional exchange parameters can be
	// added ... for example pH exchange", §5).
	PH
)

// Code returns the paper's one-letter code: T, U or S.
func (t Type) Code() string {
	switch t {
	case Temperature:
		return "T"
	case Umbrella:
		return "U"
	case Salt:
		return "S"
	case PH:
		return "H"
	default:
		return "?"
	}
}

// String returns a human-readable name.
func (t Type) String() string {
	switch t {
	case Temperature:
		return "temperature"
	case Umbrella:
		return "umbrella"
	case Salt:
		return "salt"
	case PH:
		return "pH"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// ParseType converts a one-letter code to a Type.
func ParseType(code string) (Type, error) {
	switch code {
	case "T", "t":
		return Temperature, nil
	case "U", "u":
		return Umbrella, nil
	case "S", "s":
		return Salt, nil
	case "H", "h", "pH", "PH":
		return PH, nil
	default:
		return 0, fmt.Errorf("exchange: unknown type code %q (want T, U or S)", code)
	}
}

// NeedsCrossEnergies reports whether the type requires the 2x2 energy
// matrix (Hamiltonian exchange) rather than just each replica's energy.
func (t Type) NeedsCrossEnergies() bool { return t != Temperature }

// AcceptTemperature returns the Metropolis acceptance probability of a
// temperature swap between replicas with inverse temperatures betaI,
// betaJ and potential energies eI, eJ:
//
//	P = min(1, exp[(betaI - betaJ)(eI - eJ)])
func AcceptTemperature(betaI, betaJ, eI, eJ float64) float64 {
	return pClamp(math.Exp((betaI - betaJ) * (eI - eJ)))
}

// AcceptHamiltonian returns the Metropolis acceptance probability for a
// general Hamiltonian (umbrella or salt) exchange. eAB is the potential
// of replica B's coordinates evaluated under replica A's parameters:
//
//	Delta = betaI*(eIJ - eII) + betaJ*(eJI - eJJ)
//	P     = min(1, exp(-Delta))
func AcceptHamiltonian(betaI, betaJ, eII, eIJ, eJI, eJJ float64) float64 {
	delta := betaI*(eIJ-eII) + betaJ*(eJI-eJJ)
	return pClamp(math.Exp(-delta))
}

func pClamp(p float64) float64 {
	if math.IsNaN(p) {
		return 0
	}
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// Pair is a candidate exchange between two replica IDs.
type Pair struct{ I, J int }

// NeighborPairs returns the nearest-neighbour pairs of an ordered group
// for the given sweep. Even sweeps pair (0,1)(2,3)...; odd sweeps pair
// (1,2)(3,4)...; together consecutive sweeps attempt every adjacent pair,
// the standard alternating scheme of synchronous REMD.
func NeighborPairs(group []int, sweep int) []Pair {
	return AppendNeighborPairs(nil, group, sweep)
}

// AppendNeighborPairs appends the group's nearest-neighbour pairs for the
// given sweep to dst and returns the extended slice. It is NeighborPairs
// with caller-owned storage, so a hot loop building the pair lists of
// many groups per exchange event can reuse one flat scratch slice
// instead of allocating per group.
func AppendNeighborPairs(dst []Pair, group []int, sweep int) []Pair {
	for i := sweep & 1; i+1 < len(group); i += 2 {
		dst = append(dst, Pair{group[i], group[i+1]})
	}
	return dst
}

// RandomPairs returns a random disjoint pairing of the group (used by the
// pairing ablation benchmark). A group of odd size leaves one replica
// unpaired.
func RandomPairs(group []int, rng *rand.Rand) []Pair {
	idx := append([]int(nil), group...)
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	var pairs []Pair
	for i := 0; i+1 < len(idx); i += 2 {
		pairs = append(pairs, Pair{idx[i], idx[i+1]})
	}
	return pairs
}

// Grid describes the replica layout of a multi-dimensional REMD
// simulation: Shape[d] is the number of windows along dimension d, and
// replica IDs are row-major indexes into the grid. Total replicas is the
// product of Shape.
type Grid struct{ Shape []int }

// NewGrid validates and returns a grid.
func NewGrid(shape ...int) (Grid, error) {
	if len(shape) == 0 {
		return Grid{}, fmt.Errorf("exchange: empty grid shape")
	}
	for d, n := range shape {
		if n <= 0 {
			return Grid{}, fmt.Errorf("exchange: dimension %d has non-positive size %d", d, n)
		}
	}
	return Grid{Shape: append([]int(nil), shape...)}, nil
}

// MustNewGrid is NewGrid but panics on error.
func MustNewGrid(shape ...int) Grid {
	g, err := NewGrid(shape...)
	if err != nil {
		panic(err)
	}
	return g
}

// Size returns the total number of replicas.
func (g Grid) Size() int {
	n := 1
	for _, s := range g.Shape {
		n *= s
	}
	return n
}

// Dims returns the number of dimensions.
func (g Grid) Dims() int { return len(g.Shape) }

// Index converts multi-indexes to a replica ID (row-major).
func (g Grid) Index(coord []int) int {
	if len(coord) != len(g.Shape) {
		panic(fmt.Sprintf("exchange: coord rank %d vs grid rank %d", len(coord), len(g.Shape)))
	}
	id := 0
	for d, c := range coord {
		if c < 0 || c >= g.Shape[d] {
			panic(fmt.Sprintf("exchange: coord %v out of shape %v", coord, g.Shape))
		}
		id = id*g.Shape[d] + c
	}
	return id
}

// Coord converts a replica ID to multi-indexes.
func (g Grid) Coord(id int) []int {
	coord := make([]int, len(g.Shape))
	for d := len(g.Shape) - 1; d >= 0; d-- {
		coord[d] = id % g.Shape[d]
		id /= g.Shape[d]
	}
	return coord
}

// GroupsAlong partitions all replica IDs into groups that differ only in
// their coordinate along dimension d; each group is ordered by that
// coordinate. Exchanges along dimension d happen within these groups,
// exactly the paper's "grouping of replicas by parameter values in each
// dimension".
//
// With row-major IDs the members of a group are an arithmetic sequence:
// base + k*stride(d), where stride(d) is the product of the trailing
// dimension sizes. Groups are emitted in increasing order of their
// smallest member (the coordinate-0 slot), i.e. outer prefix coordinates
// vary slowest, and members within a group are ordered by their
// coordinate along d.
func (g Grid) GroupsAlong(d int) [][]int {
	if d < 0 || d >= len(g.Shape) {
		panic(fmt.Sprintf("exchange: dimension %d out of range for shape %v", d, g.Shape))
	}
	stride := 1
	for i := d + 1; i < len(g.Shape); i++ {
		stride *= g.Shape[i]
	}
	nd := g.Shape[d]
	outer := g.Size() / (stride * nd)
	out := make([][]int, 0, outer*stride)
	members := make([]int, outer*stride*nd) // one backing array for all groups
	for a := 0; a < outer; a++ {
		for b := 0; b < stride; b++ {
			base := a*stride*nd + b
			group := members[:nd:nd]
			members = members[nd:]
			for k := 0; k < nd; k++ {
				group[k] = base + k*stride
			}
			out = append(out, group)
		}
	}
	return out
}

// Decision records one attempted exchange.
type Decision struct {
	Pair
	// Prob is the Metropolis acceptance probability.
	Prob float64
	// Accepted reports whether the swap was taken.
	Accepted bool
}

// Sweep draws accept/reject decisions for candidate pairs with the given
// probabilities.
func Sweep(pairs []Pair, probs []float64, rng *rand.Rand) []Decision {
	if len(pairs) != len(probs) {
		panic(fmt.Sprintf("exchange: %d pairs vs %d probabilities", len(pairs), len(probs)))
	}
	out := make([]Decision, len(pairs))
	for i, p := range pairs {
		out[i] = Decision{Pair: p, Prob: probs[i], Accepted: rng.Float64() < probs[i]}
	}
	return out
}

// AcceptanceRatio returns the fraction of accepted decisions (0 for an
// empty slice).
func AcceptanceRatio(ds []Decision) float64 {
	if len(ds) == 0 {
		return 0
	}
	n := 0
	for _, d := range ds {
		if d.Accepted {
			n++
		}
	}
	return float64(n) / float64(len(ds))
}
