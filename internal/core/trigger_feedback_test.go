package core_test

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exchange"
)

// neighbourEvent builds an exchange event with n true-neighbour pair
// outcomes, accepted per the mask (index i -> pair (i, i+1)).
func neighbourEvent(accepted ...bool) core.ExchangeEvent {
	ev := core.ExchangeEvent{Dim: 0}
	for i, a := range accepted {
		ev.Pairs = append(ev.Pairs, core.PairOutcome{Lo: i, Hi: i + 1, Accepted: a})
	}
	return ev
}

// feedFill activates a feedback trigger's controller by alternating
// outcomes until the measurement window fills: with an even
// WindowEvents the measured ratio lands exactly on 0.5.
func feedFill(t *core.FeedbackTrigger) {
	for i := 0; ; i++ {
		if _, n := t.Acceptance(); n >= t.WindowEvents {
			return
		}
		t.ObserveExchange(neighbourEvent(i%2 == 0))
	}
}

// TestFeedbackControllerConvergence drives the proportional controller
// with synthetic acceptance series: persistent rejection must widen the
// window monotonically until the upper clamp, persistent acceptance
// must narrow it to the lower clamp, and the window must stay within
// the clamps at every step.
func TestFeedbackControllerConvergence(t *testing.T) {
	tr := core.NewFeedbackTrigger(100)
	tr.Target = 0.5
	tr.WindowEvents = 16
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	lo, hi := 100.0/8, 100.0*8

	feedFill(tr)
	if w := tr.Window(); w != 100 {
		t.Fatalf("fresh controller window %v, want the 100s initial", w)
	}

	// Starve it: all-rejected windows must widen the window every event
	// until it parks at the upper clamp.
	prev := tr.Window()
	for i := 0; i < 40; i++ {
		tr.ObserveExchange(neighbourEvent(false, false))
		w := tr.Window()
		if w < lo-1e-9 || w > hi+1e-9 {
			t.Fatalf("window %v escaped clamps [%v, %v]", w, lo, hi)
		}
		if w < prev-1e-9 {
			t.Fatalf("window shrank (%v -> %v) while acceptance was below target", prev, w)
		}
		prev = w
	}
	if prev != hi {
		t.Fatalf("window settled at %v under persistent rejection, want upper clamp %v", prev, hi)
	}

	// Flood it: all-accepted windows must narrow to the lower clamp.
	for i := 0; i < 60; i++ {
		tr.ObserveExchange(neighbourEvent(true, true))
	}
	if w := tr.Window(); w != lo {
		t.Fatalf("window settled at %v under persistent acceptance, want lower clamp %v", w, lo)
	}

	// Hysteresis: holding exactly the target leaves the window alone.
	at := tr.Window()
	for i := 0; i < 16; i++ {
		tr.ObserveExchange(neighbourEvent(true, false))
	}
	if w := tr.Window(); w != at {
		t.Fatalf("window moved (%v -> %v) while measured acceptance equals the target", at, w)
	}
}

// TestFeedbackIgnoresGapPairs: bridged pairs (Hi > Lo+1) never enter
// the measurement, and events carrying only gap pairs apply no control
// step — the controller must not chase dead-replica artifacts.
func TestFeedbackIgnoresGapPairs(t *testing.T) {
	tr := core.NewFeedbackTrigger(100)
	tr.Target = 0.5
	tr.WindowEvents = 8
	gap := core.ExchangeEvent{Pairs: []core.PairOutcome{{Lo: 0, Hi: 2, Accepted: true}}}
	for i := 0; i < 50; i++ {
		tr.ObserveExchange(gap)
	}
	if _, n := tr.Acceptance(); n != 0 {
		t.Fatalf("gap pairs entered the measurement window: %d outcomes", n)
	}
	if w := tr.Window(); w != 100 {
		t.Fatalf("gap-only events moved the window to %v", w)
	}

	// Activate, park the measurement below target, then verify stale
	// gap-only events stop pushing the window further.
	for i := 0; i < 8; i++ {
		tr.ObserveExchange(neighbourEvent(false))
	}
	at := tr.Window()
	for i := 0; i < 50; i++ {
		tr.ObserveExchange(gap)
	}
	if w := tr.Window(); w != at {
		t.Fatalf("stale measurement kept pushing the window (%v -> %v)", at, w)
	}
}

// TestFeedbackStateRoundTrip: EncodeState/RestoreState transplants the
// controller exactly — same measurement, same window, same response to
// the next event.
func TestFeedbackStateRoundTrip(t *testing.T) {
	a := core.NewFeedbackTrigger(100)
	a.Target = 0.4
	a.WindowEvents = 8
	for i := 0; i < 12; i++ {
		a.ObserveExchange(neighbourEvent(i%3 == 0, i%2 == 0))
	}
	data, err := a.EncodeState()
	if err != nil {
		t.Fatal(err)
	}

	b := core.NewFeedbackTrigger(100)
	b.Target = 0.4
	b.WindowEvents = 8
	if err := b.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	ra, na := a.Acceptance()
	rb, nb := b.Acceptance()
	if ra != rb || na != nb {
		t.Fatalf("restored measurement %v/%d, want %v/%d", rb, nb, ra, na)
	}
	if a.Window() != b.Window() {
		t.Fatalf("restored window %v, want %v", b.Window(), a.Window())
	}
	next := neighbourEvent(true, false, false)
	a.ObserveExchange(next)
	b.ObserveExchange(next)
	if a.Window() != b.Window() {
		t.Fatalf("controllers diverged after one event: %v vs %v", b.Window(), a.Window())
	}

	if err := b.RestoreState([]byte("{")); err == nil {
		t.Fatal("corrupt controller state accepted")
	}
}

// TestAdaptiveStateRoundTrip: the adaptive policy's dispersion estimate
// survives checkpoint/restart through the same StatefulTrigger path, so
// a resumed adaptive run reopens its window at the adapted length
// instead of falling back to Initial.
func TestAdaptiveStateRoundTrip(t *testing.T) {
	mk := func() *core.AdaptiveTrigger { return core.NewAdaptiveTrigger(100) }
	a := mk()
	for _, lat := range []float64{90, 110, 130, 95, 140} {
		a.ObserveLatency(lat)
	}
	data, err := a.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	var zero core.TriggerState
	a.Reset(zero)
	b.Reset(zero)
	if da, db := a.Deadline(zero), b.Deadline(zero); da != db {
		t.Fatalf("restored adaptive window %v, want %v", db, da)
	}
	if da := a.Deadline(zero); da == 100 {
		t.Fatalf("dispersion state was not exercised: window stayed at Initial (%v)", da)
	}
	if err := b.RestoreState([]byte(`{"n":-3}`)); err == nil {
		t.Fatal("negative sample count accepted")
	}
}

// TestFeedbackResumeDeterminism is the closed-loop checkpoint
// acceptance criterion: a feedback-trigger run killed after a snapshot
// and resumed from it must reproduce the uninterrupted run's slot
// history, which requires the controller state (rolling outcomes,
// controlled window) to survive in the snapshot — a fresh controller
// would time its exchanges differently.
func TestFeedbackResumeDeterminism(t *testing.T) {
	mkSpec := func() (*core.Spec, *core.FeedbackTrigger) {
		tr := core.NewFeedbackTrigger(150)
		tr.Target = 0.5
		tr.WindowEvents = 12
		s := &core.Spec{
			Name:            "ckpt-feedback",
			Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 8)}},
			Pattern:         core.PatternAsynchronous,
			Trigger:         tr,
			CoresPerReplica: 1,
			StepsPerCycle:   6000,
			Cycles:          8,
			AsyncWindow:     150,
			Seed:            21,
		}
		return s, tr
	}

	var snaps []*core.Snapshot
	spec, trFull := mkSpec()
	spec.SnapshotEvery = 3
	spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	full := runVirtual(t, spec, quietCluster(), 8, 2881)
	if len(snaps) < 2 {
		t.Fatalf("%d snapshots, want >= 2", len(snaps))
	}
	if snaps[1].Trigger != "feedback" {
		t.Fatalf("snapshot trigger %q, want feedback", snaps[1].Trigger)
	}
	if len(snaps[1].TriggerData) == 0 {
		t.Fatal("snapshot carries no feedback controller state")
	}

	// Kill + restart from the second snapshot (controller warmed up),
	// round-tripping through the serialized form.
	data, err := snaps[1].Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	resumedSpec, trResumed := mkSpec()
	resumedSpec.Resume = snap
	resumed := runVirtual(t, resumedSpec, quietCluster(), 8, 2881)

	if resumed.ExchangeEvents != full.ExchangeEvents {
		t.Fatalf("resumed run fired %d events, uninterrupted %d",
			resumed.ExchangeEvents, full.ExchangeEvents)
	}
	if historyFingerprint(resumed.SlotHistory) != historyFingerprint(full.SlotHistory) {
		t.Fatalf("resumed slot history diverged:\nfull    %v\nresumed %v",
			full.SlotHistory, resumed.SlotHistory)
	}
	// The controllers themselves must land in the same state.
	ra, na := trFull.Acceptance()
	rb, nb := trResumed.Acceptance()
	if ra != rb || na != nb {
		t.Fatalf("controller measurement diverged: full %v/%d, resumed %v/%d", ra, na, rb, nb)
	}
	if trFull.Window() != trResumed.Window() {
		t.Fatalf("controlled window diverged: full %v, resumed %v",
			trFull.Window(), trResumed.Window())
	}
}

// TestFeedbackHoldsTargetAcceptance is the closed-loop e2e acceptance
// criterion: on a jittery virtual T-REMD workload the feedback trigger
// must hold the mean neighbour acceptance (the rolling-window view the
// collector exports) within ±0.05 of its target after warm-up.
func TestFeedbackHoldsTargetAcceptance(t *testing.T) {
	const target = 0.5
	tr := core.NewFeedbackTrigger(100)
	tr.Target = target
	tr.WindowEvents = 64
	spec := &core.Spec{
		Name:            "feedback-hold",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 12)}},
		Pattern:         core.PatternAsynchronous,
		Trigger:         tr,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          40,
		AsyncWindow:     100,
		Seed:            42,
	}
	spec.Bus = core.NewBus()
	col := analysis.New(analysis.ConfigFromSpec(spec))
	col.Attach(spec.Bus, analysis.RunBuffer(spec))
	cfg := cluster.SuperMIC()
	cfg.ExecJitter = 0.08
	cfg.FailureProb = 0
	runVirtual(t, spec, cfg, 12, 2881)

	if _, n := tr.Acceptance(); n < tr.WindowEvents {
		t.Fatalf("controller never warmed up: %d outcomes", n)
	}
	st := col.Snapshot()
	got := analysis.WeightedRatio(st.AcceptanceWindow[0])
	if math.Abs(got-target) > 0.05 {
		t.Fatalf("rolling neighbour acceptance %.3f, want within ±0.05 of %.2f", got, target)
	}
	// The controlled window must have settled inside its clamps.
	if w := tr.Window(); w < 100.0/8-1e-9 || w > 100.0*8+1e-9 {
		t.Fatalf("controlled window %v outside clamps", w)
	}
}

// dimEvent builds an exchange event along the given dimension with n
// true-neighbour pair outcomes accepted per the mask.
func dimEvent(dim int, accepted ...bool) core.ExchangeEvent {
	ev := neighbourEvent(accepted...)
	ev.Dim = dim
	return ev
}

// TestFeedbackPerDimIndependence: each exchange dimension owns its own
// measurement ring and actuators — starving one dimension must widen
// only that dimension's window, and per-dimension targets must resolve
// with fallback to the shared scalar.
func TestFeedbackPerDimIndependence(t *testing.T) {
	tr := core.NewFeedbackTrigger(100)
	tr.Target = 0.5
	tr.Targets = []float64{0, 0.25} // dim 0 falls back to Target
	tr.WindowEvents = 8
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// Fill both dims at their targets: dim 0 alternating (0.5), dim 1
	// one accept per three rejects (0.25).
	for i := 0; i < 8; i++ {
		tr.ObserveExchange(dimEvent(0, i%2 == 0))
		tr.ObserveExchange(dimEvent(1, i%4 == 0))
	}
	st := tr.ControllerStatus()
	if len(st) != 2 {
		t.Fatalf("controller tracks %d dims, want 2", len(st))
	}
	if st[0].Target != 0.5 || st[1].Target != 0.25 {
		t.Fatalf("resolved targets %v/%v, want 0.5/0.25", st[0].Target, st[1].Target)
	}
	if !st[0].Active || !st[1].Active {
		t.Fatalf("controllers not active after fill: %+v", st)
	}
	w0, w1 := tr.WindowFor(0), tr.WindowFor(1)

	// Starve dim 0 only.
	for i := 0; i < 20; i++ {
		tr.ObserveExchange(dimEvent(0, false, false))
	}
	if got := tr.WindowFor(0); got <= w0 {
		t.Fatalf("dim-0 window %v did not widen from %v under rejection", got, w0)
	}
	if got := tr.WindowFor(1); got != w1 {
		t.Fatalf("dim-1 window moved (%v -> %v) while only dim 0 was starved", w1, got)
	}

	// The per-dim windows drive Reset through TriggerState.Dim.
	tr.Reset(core.TriggerState{Now: 1000, Dim: 0})
	d0 := tr.Deadline(core.TriggerState{Dim: 0})
	tr.Reset(core.TriggerState{Now: 1000, Dim: 1})
	d1 := tr.Deadline(core.TriggerState{Dim: 1})
	if d0-1000 != tr.WindowFor(0) || d1-1000 != tr.WindowFor(1) {
		t.Fatalf("Reset ignored the upcoming dimension: deadlines %v/%v, windows %v/%v",
			d0-1000, d1-1000, tr.WindowFor(0), tr.WindowFor(1))
	}
}

// TestFeedbackSaturationDiagnostic is the integral-term acceptance
// criterion: a ladder whose natural acceptance cannot reach the target
// must park at the window clamp, raise the saturation diagnostic and
// engage the MinReady actuator — not oscillate at the clamp — and must
// recover promptly (anti-windup) once acceptance returns.
func TestFeedbackSaturationDiagnostic(t *testing.T) {
	tr := core.NewFeedbackTrigger(100)
	tr.Target = 0.5
	tr.WindowEvents = 8
	tr.MinReady = 3
	feedFill(tr)
	_, hi := 100.0/8, 100.0*8

	// Unreachable from below: persistent rejection.
	var windows []float64
	for i := 0; i < 40; i++ {
		tr.ObserveExchange(dimEvent(0, false, false))
		windows = append(windows, tr.WindowFor(0))
	}
	st := tr.ControllerStatus()[0]
	if !st.Saturated {
		t.Fatalf("controller not saturated after 40 all-rejected events: %+v", st)
	}
	if st.Window != hi {
		t.Fatalf("saturated window %v, want parked at clamp %v", st.Window, hi)
	}
	if st.MinReady != 0 {
		t.Fatalf("second actuator min-ready %d, want 0 (collect the largest subsets)", st.MinReady)
	}
	// Parked, not oscillating: once the clamp is reached the window
	// never leaves it while the starvation persists.
	pinned := false
	for _, w := range windows {
		if w == hi {
			pinned = true
		} else if pinned {
			t.Fatalf("window oscillated at the clamp: %v", windows)
		}
	}
	// Decide honours the override: with min-ready forced to 0 a ready
	// subset below the boundary must keep waiting.
	tr.Reset(core.TriggerState{Now: 0, Dim: 0})
	dec := tr.Decide(core.TriggerState{Now: 0, Pending: 5, Ready: 3, ReadyBudget: 3, Dim: 0})
	if dec == core.TriggerFire {
		t.Fatal("saturated-wide controller still fires early on MinReady")
	}

	// Anti-windup: the integral must not have wound up during the
	// pinned stretch, so recovery is prompt once acceptance returns.
	for i := 0; i < 12; i++ {
		tr.ObserveExchange(dimEvent(0, true, true))
	}
	st = tr.ControllerStatus()[0]
	if st.Saturated {
		t.Fatalf("diagnostic still raised after recovery: %+v", st)
	}
	if st.Window >= hi {
		t.Fatalf("window still pinned at %v after 12 all-accepted events", st.Window)
	}
	if st.MinReady != 3 {
		t.Fatalf("min-ready %d after recovery, want the configured base 3", st.MinReady)
	}
}

// TestFeedbackMinReadyActuatorNarrow: pinned at the narrow clamp with
// acceptance still above target, the second actuator drops MinReady to
// 2 so exchanges fire the moment a pair can exchange.
func TestFeedbackMinReadyActuatorNarrow(t *testing.T) {
	tr := core.NewFeedbackTrigger(100)
	tr.Target = 0.2
	tr.WindowEvents = 8
	feedFill(tr)
	for i := 0; i < 60; i++ {
		tr.ObserveExchange(dimEvent(0, true, true))
	}
	st := tr.ControllerStatus()[0]
	if !st.Saturated || st.Window != 100.0/8 {
		t.Fatalf("controller not saturated narrow: %+v", st)
	}
	if st.MinReady != 2 {
		t.Fatalf("second actuator min-ready %d, want 2 (fire as soon as a pair exists)", st.MinReady)
	}
	tr.Reset(core.TriggerState{Now: 0, Dim: 0})
	dec := tr.Decide(core.TriggerState{Now: 0, Pending: 5, Ready: 2, ReadyBudget: 2, Dim: 0})
	if dec != core.TriggerFire {
		t.Fatalf("saturated-narrow controller decision %v, want an immediate fire at 2 ready", dec)
	}
}

// TestFeedbackPerDimStateRoundTrip: the per-dimension controller state
// (rings, integral accumulators, windows, saturation, overrides)
// transplants exactly, and a legacy single-controller snapshot decodes
// into dimension 0.
func TestFeedbackPerDimStateRoundTrip(t *testing.T) {
	mk := func() *core.FeedbackTrigger {
		tr := core.NewFeedbackTrigger(100)
		tr.Targets = []float64{0.5, 0.2}
		tr.WindowEvents = 8
		return tr
	}
	a := mk()
	for i := 0; i < 14; i++ {
		a.ObserveExchange(dimEvent(0, i%2 == 0, i%3 == 0))
		a.ObserveExchange(dimEvent(1, true, true)) // drives dim 1 to saturation
	}
	data, err := a.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.ControllerStatus(), b.ControllerStatus()
	if len(sa) != len(sb) {
		t.Fatalf("restored %d dims, want %d", len(sb), len(sa))
	}
	for d := range sa {
		if sa[d] != sb[d] {
			t.Fatalf("dim %d state diverged after restore:\n  full    %+v\n  resumed %+v", d, sa[d], sb[d])
		}
	}
	// Same response to the next event on each dim.
	for d := 0; d < 2; d++ {
		ev := dimEvent(d, true, false, false)
		a.ObserveExchange(ev)
		b.ObserveExchange(ev)
		if a.WindowFor(d) != b.WindowFor(d) {
			t.Fatalf("dim %d diverged after one post-restore event", d)
		}
	}

	// Legacy (pre-per-dimension) controller state restores into dim 0.
	legacy := []byte(`{"outcomes":[true,false,true,false],"cur":140,"active":true,"warm_n":3,"warm_mean":90,"warm_m2":4}`)
	c := mk()
	if err := c.RestoreState(legacy); err != nil {
		t.Fatal(err)
	}
	if ratio, n := c.Acceptance(); n != 4 || ratio != 0.5 {
		t.Fatalf("legacy outcomes restored as %v/%d, want 0.5/4", ratio, n)
	}
	if w := c.WindowFor(0); w != 140 {
		t.Fatalf("legacy window %v, want 140", w)
	}
	if err := c.RestoreState([]byte(`{"dims":[{"cur":10,"active":true,"min_ready_override":-7}]}`)); err == nil {
		t.Fatal("invalid min-ready override accepted")
	}
	// A failed restore must leave the previous controller state intact.
	if w := c.WindowFor(0); w != 140 {
		t.Fatalf("failed restore clobbered the controller: window %v, want 140", w)
	}
}

// tuGridSpec builds the 2-dim T×U feedback workload of the per-dim e2e
// tests: an 8-window temperature ladder crossed with an 8-window
// umbrella ladder, whose natural acceptances differ enough that one
// blended controller could not hold both set points.
func tuGridSpec(tr *core.FeedbackTrigger, cycles int, seed int64) *core.Spec {
	return &core.Spec{
		Name: "feedback-tu",
		Dims: []core.Dimension{
			{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 8)},
			{Type: exchange.Umbrella, Values: core.UniformWindows(8), Torsion: "phi", K: core.UmbrellaK002},
		},
		Pattern:         core.PatternAsynchronous,
		Trigger:         tr,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          cycles,
		AsyncWindow:     100,
		Seed:            seed,
	}
}

// TestFeedbackHoldsPerDimTargets is the per-dimension e2e acceptance
// criterion: on a 2-dim T×U grid with different per-dim set points,
// each dimension's rolling neighbour acceptance (the collector's
// windowed view) must hold within ±0.05 of its own target.
func TestFeedbackHoldsPerDimTargets(t *testing.T) {
	targets := []float64{0.35, 0.18}
	tr := core.NewFeedbackTrigger(100)
	tr.Targets = targets
	tr.WindowEvents = 32
	spec := tuGridSpec(tr, 60, 42)
	spec.Bus = core.NewBus()
	col := analysis.New(analysis.ConfigFromSpec(spec))
	col.Attach(spec.Bus, analysis.RunBuffer(spec))
	cfg := cluster.SuperMIC()
	cfg.ExecJitter = 0.08
	cfg.FailureProb = 0
	runVirtual(t, spec, cfg, 64, 2881)

	st := col.Snapshot()
	for d, target := range targets {
		cs := tr.ControllerStatus()[d]
		if !cs.Active {
			t.Fatalf("dim %d controller never activated (%d outcomes)", d, cs.Outcomes)
		}
		got := analysis.WeightedRatio(st.AcceptanceWindow[d])
		if math.Abs(got-target) > 0.05 {
			t.Fatalf("dim %d rolling acceptance %.3f, want within ±0.05 of %.2f (controller: %+v)",
				d, got, target, cs)
		}
	}
	// The two dimensions must genuinely be steered apart: one shared
	// measurement could not hold both.
	a := analysis.WeightedRatio(st.AcceptanceWindow[0])
	b := analysis.WeightedRatio(st.AcceptanceWindow[1])
	if math.Abs(a-b) < 0.08 {
		t.Fatalf("per-dim acceptances %.3f/%.3f did not separate; targets %.2f/%.2f", a, b, targets[0], targets[1])
	}
}

// TestFeedbackPerDimResumeDeterminism is the multi-dimensional
// checkpoint acceptance criterion: a 2-dim feedback run killed after a
// snapshot and resumed from it must reproduce the uninterrupted slot
// history bit-for-bit, which requires every dimension's controller
// (ring, integral, window, actuator overrides) to survive in
// Snapshot.TriggerData.
func TestFeedbackPerDimResumeDeterminism(t *testing.T) {
	mkSpec := func() (*core.Spec, *core.FeedbackTrigger) {
		tr := core.NewFeedbackTrigger(150)
		tr.Targets = []float64{0.4, 0.2}
		tr.WindowEvents = 12
		return tuGridSpec(tr, 12, 21), tr
	}

	var snaps []*core.Snapshot
	spec, trFull := mkSpec()
	spec.SnapshotEvery = 2
	spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	full := runVirtual(t, spec, quietCluster(), 64, 2881)
	if len(snaps) < 3 {
		t.Fatalf("%d snapshots, want >= 3", len(snaps))
	}
	// Resume from a mid-run snapshot: the controllers are warmed up and
	// real work remains after the cut.
	sn := snaps[len(snaps)-2]
	if len(sn.TriggerData) == 0 {
		t.Fatal("snapshot carries no feedback controller state")
	}

	data, err := sn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	resumedSpec, trResumed := mkSpec()
	resumedSpec.Resume = snap
	resumed := runVirtual(t, resumedSpec, quietCluster(), 64, 2881)

	if resumed.ExchangeEvents != full.ExchangeEvents {
		t.Fatalf("resumed run fired %d events, uninterrupted %d",
			resumed.ExchangeEvents, full.ExchangeEvents)
	}
	if historyFingerprint(resumed.SlotHistory) != historyFingerprint(full.SlotHistory) {
		t.Fatal("resumed multi-dim slot history diverged from the uninterrupted run")
	}
	sa, sb := trFull.ControllerStatus(), trResumed.ControllerStatus()
	if len(sa) != len(sb) {
		t.Fatalf("controllers track %d vs %d dims", len(sa), len(sb))
	}
	for d := range sa {
		if sa[d] != sb[d] {
			t.Fatalf("dim %d controller state diverged:\n  full    %+v\n  resumed %+v", d, sa[d], sb[d])
		}
	}
}
