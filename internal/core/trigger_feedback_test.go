package core_test

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/task"
)

// neighbourEvent builds an exchange event with n true-neighbour pair
// outcomes, accepted per the mask (index i -> pair (i, i+1)).
func neighbourEvent(accepted ...bool) core.ExchangeEvent {
	ev := core.ExchangeEvent{Dim: 0}
	for i, a := range accepted {
		ev.Pairs = append(ev.Pairs, core.PairOutcome{Lo: i, Hi: i + 1, Accepted: a})
	}
	return ev
}

// feedFill activates a feedback trigger's controller by alternating
// outcomes until the measurement window fills: with an even
// WindowEvents the measured ratio lands exactly on 0.5.
func feedFill(t *core.FeedbackTrigger) {
	for i := 0; ; i++ {
		if _, n := t.Acceptance(); n >= t.WindowEvents {
			return
		}
		t.ObserveExchange(neighbourEvent(i%2 == 0))
	}
}

// TestFeedbackControllerConvergence drives the proportional controller
// with synthetic acceptance series: persistent rejection must widen the
// window monotonically until the upper clamp, persistent acceptance
// must narrow it to the lower clamp, and the window must stay within
// the clamps at every step.
func TestFeedbackControllerConvergence(t *testing.T) {
	tr := core.NewFeedbackTrigger(100)
	tr.Target = 0.5
	tr.WindowEvents = 16
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	lo, hi := 100.0/8, 100.0*8

	feedFill(tr)
	if w := tr.Window(); w != 100 {
		t.Fatalf("fresh controller window %v, want the 100s initial", w)
	}

	// Starve it: all-rejected windows must widen the window every event
	// until it parks at the upper clamp.
	prev := tr.Window()
	for i := 0; i < 40; i++ {
		tr.ObserveExchange(neighbourEvent(false, false))
		w := tr.Window()
		if w < lo-1e-9 || w > hi+1e-9 {
			t.Fatalf("window %v escaped clamps [%v, %v]", w, lo, hi)
		}
		if w < prev-1e-9 {
			t.Fatalf("window shrank (%v -> %v) while acceptance was below target", prev, w)
		}
		prev = w
	}
	if prev != hi {
		t.Fatalf("window settled at %v under persistent rejection, want upper clamp %v", prev, hi)
	}

	// Flood it: all-accepted windows must narrow to the lower clamp.
	for i := 0; i < 60; i++ {
		tr.ObserveExchange(neighbourEvent(true, true))
	}
	if w := tr.Window(); w != lo {
		t.Fatalf("window settled at %v under persistent acceptance, want lower clamp %v", w, lo)
	}

	// Hysteresis: holding exactly the target leaves the window alone.
	at := tr.Window()
	for i := 0; i < 16; i++ {
		tr.ObserveExchange(neighbourEvent(true, false))
	}
	if w := tr.Window(); w != at {
		t.Fatalf("window moved (%v -> %v) while measured acceptance equals the target", at, w)
	}
}

// TestFeedbackIgnoresGapPairs: bridged pairs (Hi > Lo+1) never enter
// the measurement, and events carrying only gap pairs apply no control
// step — the controller must not chase dead-replica artifacts.
func TestFeedbackIgnoresGapPairs(t *testing.T) {
	tr := core.NewFeedbackTrigger(100)
	tr.Target = 0.5
	tr.WindowEvents = 8
	gap := core.ExchangeEvent{Pairs: []core.PairOutcome{{Lo: 0, Hi: 2, Accepted: true}}}
	for i := 0; i < 50; i++ {
		tr.ObserveExchange(gap)
	}
	if _, n := tr.Acceptance(); n != 0 {
		t.Fatalf("gap pairs entered the measurement window: %d outcomes", n)
	}
	if w := tr.Window(); w != 100 {
		t.Fatalf("gap-only events moved the window to %v", w)
	}

	// Activate, park the measurement below target, then verify stale
	// gap-only events stop pushing the window further.
	for i := 0; i < 8; i++ {
		tr.ObserveExchange(neighbourEvent(false))
	}
	at := tr.Window()
	for i := 0; i < 50; i++ {
		tr.ObserveExchange(gap)
	}
	if w := tr.Window(); w != at {
		t.Fatalf("stale measurement kept pushing the window (%v -> %v)", at, w)
	}
}

// TestFeedbackStateRoundTrip: EncodeState/RestoreState transplants the
// controller exactly — same measurement, same window, same response to
// the next event.
func TestFeedbackStateRoundTrip(t *testing.T) {
	a := core.NewFeedbackTrigger(100)
	a.Target = 0.4
	a.WindowEvents = 8
	for i := 0; i < 12; i++ {
		a.ObserveExchange(neighbourEvent(i%3 == 0, i%2 == 0))
	}
	data, err := a.EncodeState()
	if err != nil {
		t.Fatal(err)
	}

	b := core.NewFeedbackTrigger(100)
	b.Target = 0.4
	b.WindowEvents = 8
	if err := b.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	ra, na := a.Acceptance()
	rb, nb := b.Acceptance()
	if ra != rb || na != nb {
		t.Fatalf("restored measurement %v/%d, want %v/%d", rb, nb, ra, na)
	}
	if a.Window() != b.Window() {
		t.Fatalf("restored window %v, want %v", b.Window(), a.Window())
	}
	next := neighbourEvent(true, false, false)
	a.ObserveExchange(next)
	b.ObserveExchange(next)
	if a.Window() != b.Window() {
		t.Fatalf("controllers diverged after one event: %v vs %v", b.Window(), a.Window())
	}

	if err := b.RestoreState([]byte("{")); err == nil {
		t.Fatal("corrupt controller state accepted")
	}
}

// TestAdaptiveStateRoundTrip: the adaptive policy's dispersion estimate
// survives checkpoint/restart through the same StatefulTrigger path, so
// a resumed adaptive run reopens its window at the adapted length
// instead of falling back to Initial.
func TestAdaptiveStateRoundTrip(t *testing.T) {
	mk := func() *core.AdaptiveTrigger { return core.NewAdaptiveTrigger(100) }
	a := mk()
	for _, exec := range []float64{90, 110, 130, 95, 140} {
		a.Observe(task.Result{Spec: &task.Spec{Kind: task.MD}, Exec: exec})
	}
	data, err := a.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	var zero core.TriggerState
	a.Reset(zero)
	b.Reset(zero)
	if da, db := a.Deadline(zero), b.Deadline(zero); da != db {
		t.Fatalf("restored adaptive window %v, want %v", db, da)
	}
	if da := a.Deadline(zero); da == 100 {
		t.Fatalf("dispersion state was not exercised: window stayed at Initial (%v)", da)
	}
	if err := b.RestoreState([]byte(`{"n":-3}`)); err == nil {
		t.Fatal("negative sample count accepted")
	}
}

// TestFeedbackResumeDeterminism is the closed-loop checkpoint
// acceptance criterion: a feedback-trigger run killed after a snapshot
// and resumed from it must reproduce the uninterrupted run's slot
// history, which requires the controller state (rolling outcomes,
// controlled window) to survive in the snapshot — a fresh controller
// would time its exchanges differently.
func TestFeedbackResumeDeterminism(t *testing.T) {
	mkSpec := func() (*core.Spec, *core.FeedbackTrigger) {
		tr := core.NewFeedbackTrigger(150)
		tr.Target = 0.5
		tr.WindowEvents = 12
		s := &core.Spec{
			Name:            "ckpt-feedback",
			Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 8)}},
			Pattern:         core.PatternAsynchronous,
			Trigger:         tr,
			CoresPerReplica: 1,
			StepsPerCycle:   6000,
			Cycles:          8,
			AsyncWindow:     150,
			Seed:            21,
		}
		return s, tr
	}

	var snaps []*core.Snapshot
	spec, trFull := mkSpec()
	spec.SnapshotEvery = 3
	spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	full := runVirtual(t, spec, quietCluster(), 8, 2881)
	if len(snaps) < 2 {
		t.Fatalf("%d snapshots, want >= 2", len(snaps))
	}
	if snaps[1].Trigger != "feedback" {
		t.Fatalf("snapshot trigger %q, want feedback", snaps[1].Trigger)
	}
	if len(snaps[1].TriggerData) == 0 {
		t.Fatal("snapshot carries no feedback controller state")
	}

	// Kill + restart from the second snapshot (controller warmed up),
	// round-tripping through the serialized form.
	data, err := snaps[1].Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	resumedSpec, trResumed := mkSpec()
	resumedSpec.Resume = snap
	resumed := runVirtual(t, resumedSpec, quietCluster(), 8, 2881)

	if resumed.ExchangeEvents != full.ExchangeEvents {
		t.Fatalf("resumed run fired %d events, uninterrupted %d",
			resumed.ExchangeEvents, full.ExchangeEvents)
	}
	if historyFingerprint(resumed.SlotHistory) != historyFingerprint(full.SlotHistory) {
		t.Fatalf("resumed slot history diverged:\nfull    %v\nresumed %v",
			full.SlotHistory, resumed.SlotHistory)
	}
	// The controllers themselves must land in the same state.
	ra, na := trFull.Acceptance()
	rb, nb := trResumed.Acceptance()
	if ra != rb || na != nb {
		t.Fatalf("controller measurement diverged: full %v/%d, resumed %v/%d", ra, na, rb, nb)
	}
	if trFull.Window() != trResumed.Window() {
		t.Fatalf("controlled window diverged: full %v, resumed %v",
			trFull.Window(), trResumed.Window())
	}
}

// TestFeedbackHoldsTargetAcceptance is the closed-loop e2e acceptance
// criterion: on a jittery virtual T-REMD workload the feedback trigger
// must hold the mean neighbour acceptance (the rolling-window view the
// collector exports) within ±0.05 of its target after warm-up.
func TestFeedbackHoldsTargetAcceptance(t *testing.T) {
	const target = 0.5
	tr := core.NewFeedbackTrigger(100)
	tr.Target = target
	tr.WindowEvents = 64
	spec := &core.Spec{
		Name:            "feedback-hold",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 12)}},
		Pattern:         core.PatternAsynchronous,
		Trigger:         tr,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          40,
		AsyncWindow:     100,
		Seed:            42,
	}
	spec.Bus = core.NewBus()
	col := analysis.New(analysis.ConfigFromSpec(spec))
	col.Attach(spec.Bus, analysis.RunBuffer(spec))
	cfg := cluster.SuperMIC()
	cfg.ExecJitter = 0.08
	cfg.FailureProb = 0
	runVirtual(t, spec, cfg, 12, 2881)

	if _, n := tr.Acceptance(); n < tr.WindowEvents {
		t.Fatalf("controller never warmed up: %d outcomes", n)
	}
	st := col.Snapshot()
	got := analysis.WeightedRatio(st.AcceptanceWindow[0])
	if math.Abs(got-target) > 0.05 {
		t.Fatalf("rolling neighbour acceptance %.3f, want within ±0.05 of %.2f", got, target)
	}
	// The controlled window must have settled inside its clamps.
	if w := tr.Window(); w < 100.0/8-1e-9 || w > 100.0*8+1e-9 {
		t.Fatalf("controlled window %v outside clamps", w)
	}
}
