package core

// Rolling slot-history fingerprint. The orchestrator fingerprints every
// slot-history row as it is recorded, so equivalence over the full
// exchange trajectory can be asserted — across worker counts, across
// checkpoint/resume, against pinned goldens — even when Spec.HistoryTail
// has rotated early rows out of memory.
//
// The encoding is the canonical text form used by the golden tests since
// the seed: each slot as decimal digits followed by ',', each row closed
// by ';', hashed with FNV-1a. An empty history fingerprints to the FNV
// offset basis.

const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnv64Prime }

// fnvInt folds the decimal encoding of v plus a ',' separator into h,
// byte-identical to hashing fmt.Sprintf("%d,", v).
func fnvInt(h uint64, v int) uint64 {
	if v < 0 {
		h = fnvByte(h, '-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	for ; i < len(buf); i++ {
		h = fnvByte(h, buf[i])
	}
	return fnvByte(h, ',')
}

// fnvRow folds one slot-history row (plus its ';' terminator) into h.
func fnvRow(h uint64, row []int) uint64 {
	for _, s := range row {
		h = fnvInt(h, s)
	}
	return fnvByte(h, ';')
}

// HistoryFingerprint returns the FNV-1a fingerprint of a slot history.
// For a run with an unbounded history it equals Report.SlotFingerprint;
// with Spec.HistoryTail set, Report.SlotFingerprint additionally covers
// the rotated-out rows.
func HistoryFingerprint(history [][]int) uint64 {
	h := fnv64Offset
	for _, row := range history {
		h = fnvRow(h, row)
	}
	return h
}
