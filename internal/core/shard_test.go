package core_test

import (
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exchange"
)

// TestShardedExchangeEquivalence is the acceptance test for the sharded
// exchange phase: the run must be bit-identical — same slot history
// fingerprint, same acceptance counts, same virtual makespan — whether
// the pair probabilities are evaluated serially or fanned across a
// worker pool. The golden fingerprints pin the serial seed behaviour,
// so a sharding change that reorders RNG draws or lets a swap leak into
// another pair's energy evaluation fails against the same constants the
// barrier golden test uses.
func TestShardedExchangeEquivalence(t *testing.T) {
	cases := []struct {
		name        string
		spec        func() *core.Spec
		cores       int
		fingerprint uint64
	}{
		{"tremd", goldenTREMDSpec, 8, 0xc1c22324216858e1},
		{"tsu", goldenTSUSpec, 36, 0x161a1d589ae87673},
	}
	workerSettings := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type outcome struct {
				fp                  uint64
				attempted, accepted int
				makespan            float64
			}
			var ref outcome
			for i, workers := range workerSettings {
				spec := tc.spec()
				spec.ExchangeWorkers = workers
				rep := runVirtual(t, spec, cluster.SuperMIC(), tc.cores, 2881)
				att, acc := sumExchanges(rep)
				got := outcome{rep.SlotFingerprint, att, acc, rep.Makespan()}
				if rep.SlotFingerprint != historyFingerprint(rep.SlotHistory) {
					t.Fatalf("workers=%d: rolling fingerprint %#x does not match history %#x",
						workers, rep.SlotFingerprint, historyFingerprint(rep.SlotHistory))
				}
				if rep.SlotFingerprint != tc.fingerprint {
					t.Fatalf("workers=%d: fingerprint %#x, golden %#x",
						workers, rep.SlotFingerprint, tc.fingerprint)
				}
				if rep.SlotRows != len(rep.SlotHistory) {
					t.Fatalf("workers=%d: SlotRows %d, history has %d rows",
						workers, rep.SlotRows, len(rep.SlotHistory))
				}
				if i == 0 {
					ref = got
					continue
				}
				if got != ref {
					t.Fatalf("workers=%d diverged from workers=%d: %+v vs %+v",
						workers, workerSettings[0], got, ref)
				}
			}
		})
	}
}

// TestShardedExchangeAsyncEquivalence covers the non-aligned dispatcher
// path: count-triggered exchanges over ready subsets must also be
// worker-count invariant (ragged group sizes, gap pairs and per-event
// dimension rotation all exercise the flat pair indexing).
func TestShardedExchangeAsyncEquivalence(t *testing.T) {
	run := func(workers int) *core.Report {
		spec := smallTREMD(12, 4)
		spec.Pattern = core.PatternAsynchronous
		spec.Trigger = core.NewCountTrigger(4)
		spec.ExchangeWorkers = workers
		return runVirtual(t, spec, quietCluster(), 6, 2881)
	}
	ref := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		rep := run(workers)
		if rep.SlotFingerprint != ref.SlotFingerprint {
			t.Fatalf("workers=%d: fingerprint %#x, serial %#x",
				workers, rep.SlotFingerprint, ref.SlotFingerprint)
		}
		if rep.ExchangeEvents != ref.ExchangeEvents || rep.Makespan() != ref.Makespan() {
			t.Fatalf("workers=%d: %d events makespan %v, serial %d events makespan %v",
				workers, rep.ExchangeEvents, rep.Makespan(), ref.ExchangeEvents, ref.Makespan())
		}
	}
}

// TestShardedExchangeResumeEquivalence kills a serial run at its first
// snapshot and resumes it with a sharded exchange phase: the resumed
// run must land on the uninterrupted serial run's fingerprint, proving
// the worker pool changes neither the RNG stream nor the swap order
// across a checkpoint boundary.
func TestShardedExchangeResumeEquivalence(t *testing.T) {
	mkSpec := func(workers int) *core.Spec {
		s := smallTREMD(8, 4)
		s.Name = "shard-ckpt"
		s.ExchangeWorkers = workers
		return s
	}

	var snaps []*core.Snapshot
	spec := mkSpec(1)
	spec.SnapshotEvery = 2
	spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	full := runVirtual(t, spec, quietCluster(), 8, 2881)
	if len(snaps) == 0 {
		t.Fatal("no snapshot captured")
	}

	snap, err := core.DecodeSnapshot(mustEncode(t, snaps[0]))
	if err != nil {
		t.Fatal(err)
	}
	resumedSpec := mkSpec(4)
	resumedSpec.Resume = snap
	resumed := runVirtual(t, resumedSpec, quietCluster(), 8, 2881)

	if resumed.SlotFingerprint != full.SlotFingerprint {
		t.Fatalf("sharded resume fingerprint %#x, serial uninterrupted %#x",
			resumed.SlotFingerprint, full.SlotFingerprint)
	}
	if resumed.SlotRows != full.SlotRows {
		t.Fatalf("sharded resume rows %d, serial uninterrupted %d",
			resumed.SlotRows, full.SlotRows)
	}
	if historyFingerprint(resumed.SlotHistory) != historyFingerprint(full.SlotHistory) {
		t.Fatal("sharded resume slot history diverged from the serial uninterrupted run")
	}
}

// TestHistoryTailBoundsHistory pins the bounded-history contract:
// HistoryTail keeps only the newest rows while SlotRows and the rolling
// fingerprint still describe the full run, identical to the unbounded
// run's.
func TestHistoryTailBoundsHistory(t *testing.T) {
	const tail = 3
	mk := func(tail int) *core.Spec {
		s := smallTREMD(8, 6)
		s.HistoryTail = tail
		return s
	}
	full := runVirtual(t, mk(0), quietCluster(), 8, 2881)
	bounded := runVirtual(t, mk(tail), quietCluster(), 8, 2881)

	if len(full.SlotHistory) != 6 || full.SlotRows != 6 {
		t.Fatalf("unbounded run kept %d rows (SlotRows %d), want 6", len(full.SlotHistory), full.SlotRows)
	}
	if len(bounded.SlotHistory) != tail {
		t.Fatalf("bounded run kept %d rows, want %d", len(bounded.SlotHistory), tail)
	}
	if bounded.SlotRows != full.SlotRows {
		t.Fatalf("bounded SlotRows %d, full %d", bounded.SlotRows, full.SlotRows)
	}
	if bounded.SlotFingerprint != full.SlotFingerprint {
		t.Fatalf("bounded fingerprint %#x, full %#x", bounded.SlotFingerprint, full.SlotFingerprint)
	}
	if core.HistoryFingerprint(full.SlotHistory) != full.SlotFingerprint {
		t.Fatalf("exported HistoryFingerprint %#x disagrees with rolling %#x",
			core.HistoryFingerprint(full.SlotHistory), full.SlotFingerprint)
	}
	// The retained rows are exactly the newest rows of the full history.
	offset := len(full.SlotHistory) - tail
	for i, row := range bounded.SlotHistory {
		want := full.SlotHistory[offset+i]
		for j := range row {
			if row[j] != want[j] {
				t.Fatalf("retained row %d differs from full row %d: %v vs %v",
					i, offset+i, row, want)
			}
		}
	}
}

// TestHistoryTailSnapshotResume proves the rolling fingerprint survives
// a checkpoint taken under a bounded history: the snapshot carries only
// the tail rows, yet the resumed run still reports the full-history
// fingerprint of the uninterrupted unbounded run.
func TestHistoryTailSnapshotResume(t *testing.T) {
	mkSpec := func() *core.Spec {
		s := smallTREMD(8, 4)
		s.Name = "tail-ckpt"
		s.HistoryTail = 1
		return s
	}

	unbounded := smallTREMD(8, 4)
	unbounded.Name = "tail-ckpt"
	ref := runVirtual(t, unbounded, quietCluster(), 8, 2881)

	var snaps []*core.Snapshot
	spec := mkSpec()
	spec.SnapshotEvery = 2
	spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	runVirtual(t, spec, quietCluster(), 8, 2881)
	if len(snaps) == 0 {
		t.Fatal("no snapshot captured")
	}
	if len(snaps[0].SlotHistory) != 1 {
		t.Fatalf("snapshot stored %d rows under HistoryTail=1, want 1", len(snaps[0].SlotHistory))
	}
	if snaps[0].SlotRows != 2 || snaps[0].SlotFingerprint == 0 {
		t.Fatalf("snapshot rows %d fingerprint %#x, want full-history values",
			snaps[0].SlotRows, snaps[0].SlotFingerprint)
	}

	snap, err := core.DecodeSnapshot(mustEncode(t, snaps[0]))
	if err != nil {
		t.Fatal(err)
	}
	resumedSpec := mkSpec()
	resumedSpec.Resume = snap
	resumed := runVirtual(t, resumedSpec, quietCluster(), 8, 2881)

	if resumed.SlotFingerprint != ref.SlotFingerprint {
		t.Fatalf("tail-bounded resumed fingerprint %#x, unbounded uninterrupted %#x",
			resumed.SlotFingerprint, ref.SlotFingerprint)
	}
	if resumed.SlotRows != ref.SlotRows {
		t.Fatalf("tail-bounded resumed rows %d, unbounded %d", resumed.SlotRows, ref.SlotRows)
	}
	if len(resumed.SlotHistory) != 1 {
		t.Fatalf("resumed run kept %d rows, want 1", len(resumed.SlotHistory))
	}
}

// TestHistoryTailBusRowsNotRecycled guards the rotation/aliasing hazard:
// ExchangeEvent.Slots shares the history row's backing array, so a
// bounded history must never reuse a rotated-out row's storage while a
// bus is attached — a subscriber's buffered event would silently mutate.
// Reconstructing the full-history fingerprint from the drained events
// proves every published row survived intact.
func TestHistoryTailBusRowsNotRecycled(t *testing.T) {
	bus := core.NewBus()
	sub := bus.Subscribe(256)
	spec := smallTREMD(6, 5)
	spec.HistoryTail = 1
	spec.Bus = bus
	rep := runVirtual(t, spec, quietCluster(), 6, 2881)

	var rows [][]int
	for _, ev := range sub.Drain(nil) {
		if ex, ok := ev.(core.ExchangeEvent); ok {
			rows = append(rows, ex.Slots)
		}
	}
	if len(rows) != rep.SlotRows {
		t.Fatalf("drained %d exchange events, report says %d rows", len(rows), rep.SlotRows)
	}
	if fp := core.HistoryFingerprint(rows); fp != rep.SlotFingerprint {
		t.Fatalf("fingerprint over drained event rows %#x, report %#x: rotated rows were recycled",
			fp, rep.SlotFingerprint)
	}
}

// TestHistoryTailValidation covers the config guard rails.
func TestHistoryTailValidation(t *testing.T) {
	s := smallTREMD(4, 1)
	s.HistoryTail = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative history tail accepted")
	}
	s = smallTREMD(4, 1)
	s.ExchangeWorkers = -2
	if err := s.Validate(); err == nil {
		t.Fatal("negative exchange workers accepted")
	}
}

// TestAdaptiveWindowWidensUnderRelaunch is the fault test for the
// latency-fed dispersion estimate: replica 0's first segment fails at
// 300s (the cluster kills a CanFail task halfway through its 600s
// duration) and its relaunch completes ~310s after first submission,
// while every per-attempt execution time in the run is 10s. A
// dispersion estimate built from per-attempt exec times would see zero
// spread and collapse the window to its lower clamp; the completion
// latency the dispatcher now feeds through ObserveLatency includes the
// fault-driven delay, so the adapted window must widen well past the
// initial one.
func TestAdaptiveWindowWidensUnderRelaunch(t *testing.T) {
	cfg := quietCluster()
	cfg.FailureProb = 1 // kills exactly the CanFail task
	cfg.SpeedFactor = 1 // keep task durations in reference seconds
	tr := core.NewAdaptiveTrigger(50)
	spec := &core.Spec{
		Name:            "adaptive-fault",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 6)}},
		Pattern:         core.PatternAsynchronous,
		Trigger:         tr,
		CoresPerReplica: 1,
		StepsPerCycle:   100,
		Cycles:          2,
		FaultPolicy:     core.FaultRelaunch,
		Seed:            13,
	}
	eng := &flakyEngine{fastDur: 10, failDur: 600, slowDur: 10}
	rep := runVirtualEngine(t, spec, cfg, 6, eng)

	if rep.Relaunches != 1 || rep.Dropped != 0 {
		t.Fatalf("relaunches %d dropped %d, want 1/0", rep.Relaunches, rep.Dropped)
	}
	// One latency observation per finally-completed segment: 6 replicas
	// x 2 cycles, with the failed attempt folded into its segment's
	// latency rather than counted separately.
	data, err := tr.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		N    int     `json:"n"`
		Mean float64 `json:"mean"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.N != 12 {
		t.Fatalf("dispersion estimate saw %d observations, want 12 (one per segment)", st.N)
	}
	// Every successful attempt ran 10s, so a per-attempt estimate would
	// have mean ~10; the relaunched segment's ~310s completion latency
	// must dominate the mean and widen the window past Initial.
	if st.Mean < 20 {
		t.Fatalf("latency mean %.1f, want fault-driven delay included (>= 20)", st.Mean)
	}
	tr.Reset(core.TriggerState{Now: 0})
	window := tr.Deadline(core.TriggerState{})
	if window <= 50 {
		t.Fatalf("adapted window %.1f did not widen past the initial 50s under a 300s fault delay", window)
	}
}
