package core

import (
	"fmt"
	"strings"

	"repro/internal/task"
)

// PhaseRecord aggregates the task results of one phase (MD or exchange)
// of one sub-cycle.
type PhaseRecord struct {
	// Wall is the phase duration from first submission to last
	// completion (barrier to barrier in the synchronous pattern).
	Wall float64
	// MaxExec is the longest task execution time (what the barrier
	// waits on).
	MaxExec float64
	// SumExec accumulates execution time over the phase's tasks.
	SumExec float64
	// MaxData is the longest per-task staging (in+out) time: T_data.
	MaxData float64
	// MaxLaunch is the longest per-task launch overhead: T_RP-over.
	MaxLaunch float64
	// Tasks and Failures count the phase's tasks.
	Tasks    int
	Failures int
	// ExecCoreSeconds is the sum over tasks of exec * cores, used for
	// utilization accounting.
	ExecCoreSeconds float64
}

// absorb merges a task result into the record.
func (p *PhaseRecord) absorb(r task.Result) {
	p.Tasks++
	if r.Failed() {
		p.Failures++
	}
	if r.Exec > p.MaxExec {
		p.MaxExec = r.Exec
	}
	p.SumExec += r.Exec
	if d := r.StageIn + r.StageOut; d > p.MaxData {
		p.MaxData = d
	}
	if r.Launch > p.MaxLaunch {
		p.MaxLaunch = r.Launch
	}
	p.ExecCoreSeconds += r.Exec * float64(r.Spec.Cores)
}

// CycleRecord is the timing record of one sub-cycle: the MD phase plus
// the exchange phase along one dimension. A full M-REMD cycle consists
// of one sub-cycle per dimension, matching the paper's statement that
// the M-REMD cycle time is the sum of 1D cycle times per dimension.
type CycleRecord struct {
	Cycle int
	// Dim is the exchange dimension of this sub-cycle.
	Dim int
	// At is the runtime time the exchange event fired, letting tests and
	// diagnostics order exchange events against other runtime activity
	// (e.g. proving an event fired while a relaunch was still in flight).
	At float64
	MD PhaseRecord
	EX PhaseRecord
	// RepExOverhead is the client-side task-preparation time charged
	// this sub-cycle: T_RepEx-over.
	RepExOverhead float64
	// Wall is the total sub-cycle duration.
	Wall float64
	// Attempted and Accepted count exchange decisions.
	Attempted int
	Accepted  int
}

// MeanExec returns the mean task execution time (0 for no tasks).
func (p PhaseRecord) MeanExec() float64 {
	if p.Tasks == 0 {
		return 0
	}
	return p.SumExec / float64(p.Tasks)
}

// TMD returns the MD time component of Eq. 1: the typical (mean) MD task
// execution time, the paper's "time to perform X simulation time-steps".
// The barrier cost of stragglers shows up in Wall and in utilization, not
// here.
func (c CycleRecord) TMD() float64 { return c.MD.MeanExec() }

// TEX returns the exchange time component: the full exchange phase wall
// time, which for salt exchange includes the single-point-energy waves.
func (c CycleRecord) TEX() float64 { return c.EX.Wall }

// TData returns the data movement component.
func (c CycleRecord) TData() float64 { return c.MD.MaxData + c.EX.MaxData }

// TRP returns the runtime (pilot) overhead component.
func (c CycleRecord) TRP() float64 { return c.MD.MaxLaunch + c.EX.MaxLaunch }

// AcceptanceRatio returns accepted/attempted (0 if none attempted).
func (c CycleRecord) AcceptanceRatio() float64 {
	if c.Attempted == 0 {
		return 0
	}
	return float64(c.Accepted) / float64(c.Attempted)
}

// Report is the outcome of a complete REMD simulation run.
type Report struct {
	Name    string
	DimCode string
	Pattern Pattern
	// Trigger names the exchange-trigger policy the run executed under
	// ("barrier", "window", "count", "adaptive", ...).
	Trigger  string
	Mode     Mode
	Engine   string
	Replicas int
	Cores    int
	Cycles   int

	Records []CycleRecord

	// Start and End bracket the whole simulation in runtime seconds.
	Start, End float64

	// MDExecCoreSeconds accumulates exec*cores over all MD tasks; the
	// numerator of the utilization metric (Eq. 4).
	MDExecCoreSeconds float64

	Dropped    int
	Relaunches int
	// CancelledUnits counts the in-flight MD segments discarded when the
	// run was cancelled through RunContext; their segments are redone on
	// resume.
	CancelledUnits int
	// Preemptions counts the preemption notices the run's pilots
	// received (drained from an elastic runtime's resource events).
	Preemptions int

	// SlotHistory records each replica's slot after every exchange event
	// (row = event, column = replica ID; one event per sub-cycle under
	// the barrier trigger). It feeds the mixing diagnostics in
	// internal/stats. When Spec.HistoryTail is positive only the most
	// recent rows are retained; SlotRows and SlotFingerprint still cover
	// the full run.
	SlotHistory [][]int
	// SlotRows counts every slot-history row ever recorded, including
	// rows rotated out of SlotHistory by Spec.HistoryTail.
	SlotRows int
	// SlotFingerprint is the rolling FNV-1a fingerprint over every
	// recorded row, retained or rotated out (see HistoryFingerprint); the
	// fingerprint of an empty history is the FNV offset basis.
	SlotFingerprint uint64

	// ExchangeEvents counts exchange phases executed.
	ExchangeEvents int
}

// Makespan returns the total wall (virtual) time of the run.
func (r *Report) Makespan() float64 { return r.End - r.Start }

// AvgCycleTime returns the mean duration of a full cycle (all dimensions'
// sub-cycles summed), the quantity plotted throughout the paper's
// evaluation ("average of 4 simulation cycles").
func (r *Report) AvgCycleTime() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	byCycle := map[int]float64{}
	for _, rec := range r.Records {
		byCycle[rec.Cycle] += rec.Wall
	}
	sum := 0.0
	for _, w := range byCycle {
		sum += w
	}
	return sum / float64(len(byCycle))
}

// Decomposition holds per-cycle averages of the Eq. 1 components.
type Decomposition struct {
	TMD, TEX, TData, TRepEx, TRP float64
}

// Decompose averages the Eq. 1 components per full cycle. For M-REMD the
// components of the per-dimension sub-cycles are summed within a cycle.
func (r *Report) Decompose() Decomposition {
	var d Decomposition
	if len(r.Records) == 0 {
		return d
	}
	cycles := map[int]bool{}
	for _, rec := range r.Records {
		cycles[rec.Cycle] = true
		d.TMD += rec.TMD()
		d.TEX += rec.TEX()
		d.TData += rec.TData()
		d.TRepEx += rec.RepExOverhead
		d.TRP += rec.TRP()
	}
	n := float64(len(cycles))
	d.TMD /= n
	d.TEX /= n
	d.TData /= n
	d.TRepEx /= n
	d.TRP /= n
	return d
}

// AvgMDWall returns the mean per-cycle MD phase wall time (summed over
// dimensions within a cycle). In Execution Mode II this includes the
// batched waves, which is what the paper's strong-scaling Figure 10
// plots as "MD-times".
func (r *Report) AvgMDWall() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	byCycle := map[int]float64{}
	for _, rec := range r.Records {
		byCycle[rec.Cycle] += rec.MD.Wall
	}
	sum := 0.0
	for _, w := range byCycle {
		sum += w
	}
	return sum / float64(len(byCycle))
}

// DimDecompose averages TMD and TEX per cycle for a single dimension
// index (used by the M-REMD figures, which report exchange time for each
// dimension separately).
func (r *Report) DimDecompose(dim int) (tmd, tex float64) {
	n := 0
	for _, rec := range r.Records {
		if rec.Dim != dim {
			continue
		}
		tmd += rec.TMD()
		tex += rec.TEX()
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return tmd / float64(n), tex / float64(n)
}

// AcceptanceRatioByDim returns accepted/attempted over all sub-cycles of
// the given dimension.
func (r *Report) AcceptanceRatioByDim(dim int) float64 {
	att, acc := 0, 0
	for _, rec := range r.Records {
		if rec.Dim == dim {
			att += rec.Attempted
			acc += rec.Accepted
		}
	}
	if att == 0 {
		return 0
	}
	return float64(acc) / float64(att)
}

// Utilization returns the fraction of allocated core time spent in MD
// execution (Eq. 4: U = U_pattern / U_max, since U_max corresponds to
// cores doing MD 100% of the time).
func (r *Report) Utilization() float64 {
	span := r.Makespan()
	if span <= 0 || r.Cores == 0 {
		return 0
	}
	return r.MDExecCoreSeconds / (float64(r.Cores) * span)
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	trigger := r.Trigger
	if trigger == "" {
		trigger = "?"
	}
	fmt.Fprintf(&b, "REMD %s [%s] pattern=%s trigger=%s mode=%s engine=%s\n",
		r.Name, r.DimCode, r.Pattern, trigger, r.Mode, r.Engine)
	fmt.Fprintf(&b, "  replicas=%d cores=%d cycles=%d makespan=%.1fs\n",
		r.Replicas, r.Cores, r.Cycles, r.Makespan())
	d := r.Decompose()
	fmt.Fprintf(&b, "  avg cycle=%.1fs  T_MD=%.1f T_EX=%.1f T_data=%.2f T_RepEx=%.2f T_RP=%.2f\n",
		r.AvgCycleTime(), d.TMD, d.TEX, d.TData, d.TRepEx, d.TRP)
	fmt.Fprintf(&b, "  utilization=%.1f%% dropped=%d relaunches=%d\n",
		100*r.Utilization(), r.Dropped, r.Relaunches)
	return b.String()
}

// WeakScalingEfficiency implements Eq. 2: Ew = T1/TN * 100%.
func WeakScalingEfficiency(t1, tn float64) float64 {
	if tn <= 0 {
		return 0
	}
	return t1 / tn * 100
}

// StrongScalingEfficiency implements Eq. 3: Es = T1/(N*TN) * 100%, where
// N is the core-count multiple relative to the baseline.
func StrongScalingEfficiency(t1, tn float64, coreMultiple float64) float64 {
	if tn <= 0 || coreMultiple <= 0 {
		return 0
	}
	return t1 / (coreMultiple * tn) * 100
}
