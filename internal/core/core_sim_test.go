package core_test

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/pilot"
	"repro/internal/sim"
	"repro/internal/stats"
)

// runVirtual executes a spec with a virtual engine on a simulated
// cluster with the given pilot size and returns the report.
func runVirtual(t *testing.T, spec *core.Spec, cfg cluster.Config, cores, natoms int) *core.Report {
	t.Helper()
	env := sim.NewEnv()
	cl := cluster.MustNew(env, cfg, spec.Seed+1)
	pl, err := pilot.Launch(cl, pilot.Description{Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	eng := engines.NewAmberVirtual(natoms, spec.Seed+2)
	var report *core.Report
	var runErr error
	env.Go("emm", func(p *sim.Proc) {
		rt := pilot.NewRuntime(pl, p)
		simu, err := core.New(spec, eng, rt)
		if err != nil {
			runErr = err
			return
		}
		report, runErr = simu.Run()
	})
	env.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if report == nil {
		t.Fatal("simulation produced no report")
	}
	return report
}

func quietCluster() cluster.Config {
	cfg := cluster.SuperMIC()
	cfg.ExecJitter = 0
	cfg.FailureProb = 0
	return cfg
}

func smallTREMD(n, cycles int) *core.Spec {
	return &core.Spec{
		Name:            "t-remd",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, n)}},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          cycles,
		Seed:            21,
	}
}

func TestVirtualTREMDModeI(t *testing.T) {
	spec := smallTREMD(16, 3)
	rep := runVirtual(t, spec, quietCluster(), 16, 2881)
	if rep.Mode != core.ModeI {
		t.Fatalf("mode %v, want I", rep.Mode)
	}
	if len(rep.Records) != 3 {
		t.Fatalf("records %d, want 3", len(rep.Records))
	}
	d := rep.Decompose()
	// 6000 steps of 2881 atoms with sander on SuperMIC: ~139.6 s.
	wantMD := engines.SanderSecsPerAtomStep * 2881 * 6000 / 1.18
	if math.Abs(d.TMD-wantMD)/wantMD > 0.02 {
		t.Fatalf("TMD %v, want ~%v (the paper's 139.6 s)", d.TMD, wantMD)
	}
	if d.TEX <= 0 || d.TRP <= 0 || d.TData <= 0 || d.TRepEx <= 0 {
		t.Fatalf("missing decomposition components: %+v", d)
	}
	// Eq. 1: components must approximately compose the cycle time.
	sum := d.TMD + d.TEX + d.TData + d.TRepEx + d.TRP
	if rep.AvgCycleTime() > sum*1.25 || rep.AvgCycleTime() < sum*0.75 {
		t.Fatalf("cycle time %v vs component sum %v: decomposition broken", rep.AvgCycleTime(), sum)
	}
}

func TestVirtualTREMDModeIIBatches(t *testing.T) {
	// 16 replicas on 4 cores: four waves per phase, so the MD phase
	// wall is ~4x a single segment.
	spec := smallTREMD(16, 2)
	rep := runVirtual(t, spec, quietCluster(), 4, 2881)
	if rep.Mode != core.ModeII {
		t.Fatalf("mode %v, want II", rep.Mode)
	}
	seg := engines.SanderSecsPerAtomStep * 2881 * 6000 / 1.18
	md := rep.Records[0].MD.Wall
	if md < 3.5*seg || md > 5*seg {
		t.Fatalf("Mode II MD phase wall %v, want ~4x segment (%v)", md, 4*seg)
	}
}

func TestVirtualSREMDSinglePointTasksRun(t *testing.T) {
	spec := &core.Spec{
		Name:            "s-remd",
		Dims:            []core.Dimension{{Type: exchange.Salt, Values: []float64{0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8}}},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          2,
		Seed:            5,
	}
	rep := runVirtual(t, spec, quietCluster(), 8, 2881)
	// Exchange phase must include the single-point wave: much longer
	// than a T-REMD exchange.
	tRep := runVirtual(t, smallTREMD(8, 2), quietCluster(), 8, 2881)
	dS, dT := rep.Decompose(), tRep.Decompose()
	if dS.TEX < 2*dT.TEX {
		t.Fatalf("S exchange %v not substantially longer than T exchange %v", dS.TEX, dT.TEX)
	}
	// Exchange phase tasks: 8 SPE + 1 exchange per cycle.
	if rep.Records[0].EX.Tasks != 9 {
		t.Fatalf("exchange phase tasks %d, want 9 (8 SPE + 1 exchange)", rep.Records[0].EX.Tasks)
	}
}

func TestVirtualTSU3D(t *testing.T) {
	spec := &core.Spec{
		Name: "tsu",
		Dims: []core.Dimension{
			{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 4)},
			{Type: exchange.Salt, Values: []float64{0.1, 0.2, 0.4, 0.8}},
			{Type: exchange.Umbrella, Values: core.UniformWindows(4), Torsion: "phi", K: core.UmbrellaK002},
		},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          2,
		Seed:            9,
	}
	rep := runVirtual(t, spec, quietCluster(), 64, 2881)
	if rep.DimCode != "TSU" || rep.Replicas != 64 {
		t.Fatalf("report %s/%d, want TSU/64", rep.DimCode, rep.Replicas)
	}
	// One record per (cycle, dim).
	if len(rep.Records) != 2*3 {
		t.Fatalf("records %d, want 6", len(rep.Records))
	}
	// M-REMD cycle time is the sum of per-dimension sub-cycles: the
	// average full-cycle MD time is ~3x a 1D cycle's.
	d := rep.Decompose()
	oneD := engines.SanderSecsPerAtomStep * 2881 * 6000 / 1.18
	if math.Abs(d.TMD-3*oneD)/(3*oneD) > 0.02 {
		t.Fatalf("3D TMD %v, want ~3x %v", d.TMD, oneD)
	}
	// Salt dimension exchange dominates the exchange time.
	_, texT := rep.DimDecompose(0)
	_, texS := rep.DimDecompose(1)
	if texS < 2*texT {
		t.Fatalf("S-dim exchange %v not dominant over T-dim %v", texS, texT)
	}
}

func TestFaultDropPolicy(t *testing.T) {
	cfg := quietCluster()
	cfg.FailureProb = 0.10
	spec := smallTREMD(16, 3)
	spec.FaultPolicy = core.FaultDrop
	spec.Seed = 3
	rep := runVirtual(t, spec, cfg, 16, 2881)
	if rep.Dropped == 0 {
		t.Fatal("no replicas dropped under 10% failure rate")
	}
	if rep.Relaunches != 0 {
		t.Fatal("drop policy must not relaunch")
	}
}

func TestFaultRelaunchPolicy(t *testing.T) {
	cfg := quietCluster()
	cfg.FailureProb = 0.10
	spec := smallTREMD(16, 3)
	spec.FaultPolicy = core.FaultRelaunch
	spec.Seed = 3
	rep := runVirtual(t, spec, cfg, 16, 2881)
	if rep.Relaunches == 0 {
		t.Fatal("no relaunches under 10% failure rate")
	}
	// With retries, most replicas survive.
	if rep.Dropped > 4 {
		t.Fatalf("dropped %d replicas despite relaunch policy", rep.Dropped)
	}
}

func TestAsyncPatternCompletes(t *testing.T) {
	spec := smallTREMD(12, 3)
	spec.Pattern = core.PatternAsynchronous
	spec.AsyncWindow = 30
	spec.AsyncMinReady = 4
	rep := runVirtual(t, spec, quietCluster(), 12, 2881)
	if rep.ExchangeEvents == 0 {
		t.Fatal("asynchronous run performed no exchanges")
	}
	if rep.Utilization() <= 0 || rep.Utilization() > 1 {
		t.Fatalf("utilization %v out of (0,1]", rep.Utilization())
	}
}

func TestSyncUtilizationExceedsAsync(t *testing.T) {
	// Figure 13's headline: synchronous utilization is higher.
	cfg := cluster.SuperMIC()
	cfg.FailureProb = 0
	cfg.ExecJitter = 0.06
	mk := func(pattern core.Pattern) *core.Report {
		spec := smallTREMD(24, 3)
		spec.Pattern = pattern
		if pattern == core.PatternAsynchronous {
			spec.AsyncWindow = 45 // pure window criterion (MinReady 0)
		}
		return runVirtual(t, spec, cfg, 24, 2881)
	}
	sync := mk(core.PatternSynchronous)
	async := mk(core.PatternAsynchronous)
	if sync.Utilization() <= async.Utilization() {
		t.Fatalf("sync utilization %.3f not above async %.3f",
			sync.Utilization(), async.Utilization())
	}
}

func TestAcceptanceRatiosReasonable(t *testing.T) {
	// The synthetic thermodynamics should produce acceptance in a
	// plausible REMD range: not 0, not ~100%.
	spec := smallTREMD(8, 8)
	rep := runVirtual(t, spec, quietCluster(), 8, 2881)
	r := rep.AcceptanceRatioByDim(0)
	if r <= 0.001 || r >= 0.9 {
		t.Fatalf("T-REMD acceptance %v outside plausible range", r)
	}
}

func TestReportString(t *testing.T) {
	rep := runVirtual(t, smallTREMD(4, 1), quietCluster(), 4, 2881)
	s := rep.String()
	for _, want := range []string{"T", "replicas=4", "utilization"} {
		if !contains(s, want) {
			t.Fatalf("report string missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestVirtualPHREMD(t *testing.T) {
	spec := &core.Spec{
		Name:            "ph-remd",
		Dims:            []core.Dimension{{Type: exchange.PH, Values: []float64{4, 5, 6, 7, 8, 9, 10}}},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          6,
		Seed:            31,
	}
	rep := runVirtual(t, spec, quietCluster(), 7, 2881)
	if rep.DimCode != "H" {
		t.Fatalf("dim code %q, want H", rep.DimCode)
	}
	acc := rep.AcceptanceRatioByDim(0)
	if acc <= 0.01 || acc >= 0.99 {
		t.Fatalf("pH acceptance %v outside plausible range", acc)
	}
}

func TestMixingDiagnosticsOverRun(t *testing.T) {
	spec := smallTREMD(8, 12)
	rep := runVirtual(t, spec, quietCluster(), 8, 2881)
	if len(rep.SlotHistory) != 12 {
		t.Fatalf("slot history rows %d, want 12", len(rep.SlotHistory))
	}
	mix, err := stats.AnalyzeMixing(rep.SlotHistory, rep.Replicas)
	if err != nil {
		t.Fatal(err)
	}
	// Exchanges happen, so replicas must move at least a little.
	if mix.MeanDisplacement <= 0 {
		t.Fatal("no ladder movement despite accepted exchanges")
	}
	if mix.VisitedFraction <= 1.0/8 {
		t.Fatal("replicas never left their starting slots")
	}
}
