package core_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/trace"
)

// TestTracerDoesNotPerturbRun is the flight recorder's golden
// non-interference guarantee: attaching a tracer changes the run's slot
// history bit-for-bit not at all. Recording touches neither the RNG
// stream nor the virtual clock, and this test enforces it on the
// barrier workload.
func TestTracerDoesNotPerturbRun(t *testing.T) {
	plain := runVirtual(t, smallTREMD(8, 4), quietCluster(), 8, 2881)

	spec := smallTREMD(8, 4)
	rec := trace.New(0)
	spec.Tracer = rec
	traced := runVirtual(t, spec, quietCluster(), 8, 2881)

	if rec.Recorded() == 0 {
		t.Fatal("tracer attached but nothing recorded")
	}
	if traced.SlotFingerprint != plain.SlotFingerprint {
		t.Fatalf("slot fingerprint diverged under tracing: %x vs %x",
			traced.SlotFingerprint, plain.SlotFingerprint)
	}
	if historyFingerprint(traced.SlotHistory) != historyFingerprint(plain.SlotHistory) {
		t.Fatalf("slot history diverged under tracing:\nplain  %v\ntraced %v",
			plain.SlotHistory, traced.SlotHistory)
	}
	if traced.Makespan() != plain.Makespan() {
		t.Fatalf("makespan diverged under tracing: %v vs %v",
			traced.Makespan(), plain.Makespan())
	}
	ta, tc := sumExchanges(traced)
	pa, pc := sumExchanges(plain)
	if ta != pa || tc != pc {
		t.Fatalf("exchange outcomes diverged under tracing: %d/%d vs %d/%d", ta, tc, pa, pc)
	}
}

// TestTracerCheckpointResumeIdentical extends the non-interference
// guarantee across the checkpoint/resume boundary: a traced run killed
// after a snapshot and resumed (still traced) reproduces the untraced
// uninterrupted run's slot history exactly.
func TestTracerCheckpointResumeIdentical(t *testing.T) {
	full := runVirtual(t, smallTREMD(8, 4), quietCluster(), 8, 2881)

	var snaps []*core.Snapshot
	first := smallTREMD(8, 4)
	first.Tracer = trace.New(0)
	first.SnapshotEvery = 2
	first.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	runVirtual(t, first, quietCluster(), 8, 2881)
	if len(snaps) == 0 {
		t.Fatal("no snapshots written")
	}
	data, err := snaps[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}

	resumedSpec := smallTREMD(8, 4)
	resumedSpec.Tracer = trace.New(0)
	resumedSpec.Resume = snap
	resumed := runVirtual(t, resumedSpec, quietCluster(), 8, 2881)

	if resumed.SlotFingerprint != full.SlotFingerprint {
		t.Fatalf("traced resume fingerprint %x, untraced uninterrupted %x",
			resumed.SlotFingerprint, full.SlotFingerprint)
	}
	if historyFingerprint(resumed.SlotHistory) != historyFingerprint(full.SlotHistory) {
		t.Fatalf("traced resume slot history diverged:\nfull    %v\nresumed %v",
			full.SlotHistory, resumed.SlotHistory)
	}
}

// TestTracerDeterministicTimeline: under the virtual engine the
// recorded timeline itself is reproducible — two identical runs export
// byte-identical Chrome trace JSON.
func TestTracerDeterministicTimeline(t *testing.T) {
	export := func() []byte {
		spec := smallTREMD(8, 3)
		rec := trace.New(0)
		spec.Tracer = rec
		runVirtual(t, spec, quietCluster(), 8, 2881)
		data, err := rec.ExportJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(export(), export()) {
		t.Fatal("two identical virtual runs exported different trace JSON")
	}
}

// TestTracerSpanAccounting is the coverage contract on a feedback-
// trigger run with a fault relaunch: every MD segment — including the
// relaunched one — appears as exactly one MD span (its retries carried
// in the span, the relaunch itself as a fault instant), every exchange
// event as one exchange span plus one controller-decision span, and the
// export is loadable trace JSON with the segments on the replica
// tracks.
func TestTracerSpanAccounting(t *testing.T) {
	cfg := quietCluster()
	cfg.FailureProb = 1 // kills exactly the flakyEngine's CanFail task
	cfg.SpeedFactor = 1
	tr := core.NewFeedbackTrigger(30)
	tr.Target = 0.5
	tr.WindowEvents = 8
	rec := trace.New(0)
	spec := &core.Spec{
		Name:            "trace-feedback",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 6)}},
		Pattern:         core.PatternAsynchronous,
		Trigger:         tr,
		CoresPerReplica: 1,
		StepsPerCycle:   100,
		Cycles:          3,
		AsyncWindow:     30,
		FaultPolicy:     core.FaultRelaunch,
		Seed:            13,
		Tracer:          rec,
	}
	eng := &flakyEngine{fastDur: 10, failDur: 100, slowDur: 50}
	rep := runVirtualEngine(t, spec, cfg, 6, eng)
	if rep.Relaunches != 1 || rep.Dropped != 0 {
		t.Fatalf("relaunches %d dropped %d, want 1/0 (flaky engine contract)",
			rep.Relaunches, rep.Dropped)
	}

	wantSegments := 6 * 3 // replicas x cycles, all completed
	var mdSpans, exSpans, ctlSpans, relaunchFaults, retries int
	for _, sp := range rec.Snapshot() {
		switch sp.Kind {
		case trace.KindMD:
			mdSpans++
			retries += sp.Retries
			if sp.Label != "" {
				t.Fatalf("unexpected failed MD span %+v in a zero-drop run", sp)
			}
			if sp.Dur <= 0 {
				t.Fatalf("MD span without duration: %+v", sp)
			}
		case trace.KindExchange:
			exSpans++
		case trace.KindController:
			ctlSpans++
		case trace.KindFault:
			if sp.Label == core.FaultKindRelaunch {
				relaunchFaults++
			}
		}
	}
	if mdSpans != wantSegments {
		t.Fatalf("%d MD spans, want %d (every finally-processed segment, relaunched one included)",
			mdSpans, wantSegments)
	}
	if retries != rep.Relaunches {
		t.Fatalf("MD spans carry %d retries, report says %d relaunches", retries, rep.Relaunches)
	}
	if relaunchFaults != rep.Relaunches {
		t.Fatalf("%d relaunch fault spans, want %d", relaunchFaults, rep.Relaunches)
	}
	if exSpans != rep.ExchangeEvents {
		t.Fatalf("%d exchange spans, want %d (one per fired event)", exSpans, rep.ExchangeEvents)
	}
	if ctlSpans != rep.ExchangeEvents {
		t.Fatalf("%d controller spans, want %d (one decision per fired event)", ctlSpans, rep.ExchangeEvents)
	}

	// The export must be loadable trace JSON carrying every segment on
	// the replica tracks (pid 2) and again on the pilot tracks (pid 3).
	data, err := rec.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	mdEvents := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "md" {
			mdEvents++
		}
	}
	if mdEvents != 2*wantSegments {
		t.Fatalf("%d md events in the export, want %d (segments on replica + pilot tracks)",
			mdEvents, 2*wantSegments)
	}
}

// TestTracerCheckpointAndCancelSpans: periodic snapshot deliveries and
// the cancellation boundary surface as checkpoint spans; cancelled
// in-flight segments as fault instants.
func TestTracerCheckpointSpans(t *testing.T) {
	rec := trace.New(0)
	spec := smallTREMD(8, 4)
	spec.Tracer = rec
	spec.SnapshotEvery = 2
	spec.OnSnapshot = func(*core.Snapshot) {}
	runVirtual(t, spec, quietCluster(), 8, 2881)
	ckpts := 0
	for _, sp := range rec.Snapshot() {
		if sp.Kind == trace.KindCheckpoint {
			ckpts++
		}
	}
	if ckpts != 2 {
		t.Fatalf("%d checkpoint spans, want 2 (4 events at SnapshotEvery=2)", ckpts)
	}
}
