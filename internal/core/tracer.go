package core

import (
	"repro/internal/task"
	"repro/internal/trace"
)

// This file is the dispatcher's flight-recorder side: every record*
// helper is a guarded no-op without an attached Spec.Tracer, and none
// of them touches the RNG stream or the virtual clock — recording can
// reorder nothing and delay nothing, which is what keeps a traced run
// bit-identical to an untraced one (see TestTracerDoesNotPerturbRun).

// recordMD emits one MD-segment span at the segment's final processing:
// first submission to final completion, spanning every relaunch retry
// in between. Failed terminal segments (replica dropped) carry the
// "failed" label.
func (s *Simulation) recordMD(f *mdFlight, res task.Result) {
	if s.tracer == nil {
		return
	}
	sp := trace.Span{
		Kind:    trace.KindMD,
		Start:   f.start,
		Dur:     res.Finished - f.start,
		Replica: f.r.ID,
		Dim:     f.dim,
		Pilot:   res.Pilot,
		Retries: f.infra + f.rel,
	}
	if res.Failed() {
		// finishMD left Cycle at the failed segment's index.
		sp.Event = f.r.Cycle
		sp.Label = "failed"
	} else {
		sp.Event = f.r.Cycle - 1
	}
	s.tracer.Record(sp)
}

// recordExchange emits the whole-phase exchange span of one fired
// event.
func (s *Simulation) recordExchange(event, dim int, start float64, rec *CycleRecord) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(trace.Span{
		Kind:     trace.KindExchange,
		Start:    start,
		Dur:      s.rt.Now() - start,
		Dim:      dim,
		Event:    event,
		Pairs:    rec.Attempted,
		Accepted: rec.Accepted,
	})
}

// recordSPE emits the single-point-energy task-wave sub-span of one
// exchange phase (salt dimensions submit one SPE task per replica).
func (s *Simulation) recordSPE(dim, event, tasks int, start float64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(trace.Span{
		Kind:  trace.KindSPE,
		Start: start,
		Dur:   s.rt.Now() - start,
		Dim:   dim,
		Event: event,
		Pairs: tasks,
	})
}

// recordPairs emits the Metropolis pair-sweep sub-span of one exchange
// phase: uniform pre-draw, sharded probability evaluation, serial
// decisions and swaps. The sweep consumes no virtual time, so the span
// is usually an instant marking where in the phase it happened.
func (s *Simulation) recordPairs(dim, event, pairs, accepted int, start float64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(trace.Span{
		Kind:     trace.KindPairs,
		Start:    start,
		Dur:      s.rt.Now() - start,
		Dim:      dim,
		Event:    event,
		Pairs:    pairs,
		Accepted: accepted,
	})
}

// recordController emits one feedback-controller decision span right
// after the trigger's ObserveExchange ran its control step for the
// fired dimension. Non-feedback policies record nothing.
func (s *Simulation) recordController(fb *FeedbackTrigger, dim, event int) {
	if s.tracer == nil || fb == nil {
		return
	}
	st := fb.DimStatus(dim)
	sp := trace.Span{
		Kind:     trace.KindController,
		Start:    s.rt.Now(),
		Dim:      dim,
		Event:    event,
		Pairs:    st.Outcomes,
		Window:   st.Window,
		Measured: st.Measured,
		MinReady: st.MinReady,
	}
	if st.Saturated {
		sp.Label = "saturated"
	}
	s.tracer.Record(sp)
}

// recordRespace emits one ladder re-fit instant on the dimension's
// controller track; Retries carries the dimension's refit ordinal.
func (s *Simulation) recordRespace(dim, event, refit int) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(trace.Span{
		Kind:    trace.KindRespace,
		Start:   s.rt.Now(),
		Dim:     dim,
		Event:   event,
		Retries: refit,
	})
}

// recordCheckpoint emits one snapshot-write span (instant in virtual
// time: capture and delivery consume no simulated clock).
func (s *Simulation) recordCheckpoint(events int, label string) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(trace.Span{
		Kind:  trace.KindCheckpoint,
		Start: s.rt.Now(),
		Event: events,
		Label: label,
	})
}

// recordResource emits one pilot lifecycle instant on the pilot's
// track (launch, shrink, preempt, resize, expire).
func (s *Simulation) recordResource(ev task.ResourceEvent) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(trace.Span{
		Kind:  trace.KindResource,
		Start: ev.At,
		Pilot: ev.Pilot,
		Pairs: ev.Cores,
		Label: ev.Kind,
	})
}

// recordFault emits one fault-action instant on the replica's track.
func (s *Simulation) recordFault(replica int, kind string, retries int) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(trace.Span{
		Kind:    trace.KindFault,
		Start:   s.rt.Now(),
		Replica: replica,
		Retries: retries,
		Label:   kind,
	})
}
