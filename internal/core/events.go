package core

import (
	"sync"
	"sync/atomic"
)

// Typed event bus: the dispatcher publishes one record per MD completion,
// exchange event and fault action, and online consumers (the analysis
// collector, the status server, tests) subscribe without ever touching
// the hot loop's control flow. Publish is strictly non-blocking: each
// subscriber owns a bounded ring buffer, and when a slow consumer lets
// its ring fill up the oldest events are overwritten (and counted as
// dropped) rather than stalling the publisher. A stalled subscriber
// therefore cannot change the simulation's behaviour — only its own view
// of it.

// Event is one record published on the Bus: MDEvent, ExchangeEvent or
// FaultEvent.
type Event interface {
	// When is the virtual runtime time the event was published at.
	When() float64
}

// MDEvent records one finally-processed MD segment (a successful
// completion, or a terminal failure that exhausted its retry budget).
// Relaunched attempts appear as FaultEvents instead.
type MDEvent struct {
	At float64
	// Replica is the replica ID; Cycle its completed-segment count after
	// this segment.
	Replica int
	Cycle   int
	// Exec is the segment's execution time in runtime seconds.
	Exec float64
	// Failed marks a terminal failure (the replica was dropped).
	Failed bool
}

// When returns the publication time.
func (e MDEvent) When() float64 { return e.At }

// PairOutcome is one attempted exchange between ladder neighbours along
// the event's dimension.
type PairOutcome struct {
	// Lo and Hi are the window (coordinate) indices of the two partners
	// along the exchange dimension, Lo < Hi. With all replicas alive they
	// are adjacent (Hi == Lo+1); failures can pair across gaps.
	Lo, Hi int
	// ReplicaI and ReplicaJ are the partner replica IDs.
	ReplicaI, ReplicaJ int
	// Accepted reports whether the swap was taken.
	Accepted bool
}

// ExchangeEvent records one completed exchange event: the Metropolis
// outcomes of every attempted pair and the slot assignment afterwards.
type ExchangeEvent struct {
	At float64
	// Event is the exchange-event index (row in the slot history).
	Event int
	// Cycle and Dim locate the event in the simulation schedule.
	Cycle int
	Dim   int
	// Pairs are the attempted exchanges of this event.
	Pairs []PairOutcome
	// Slots is the slot per replica ID after the event. The slice is
	// shared with the report's slot history: consumers must not mutate it.
	Slots []int
	// MDWall and EXWall are the MD-collection and exchange-phase wall
	// times of the event's record.
	MDWall, EXWall float64
}

// When returns the publication time.
func (e ExchangeEvent) When() float64 { return e.At }

// Fault-event kinds.
const (
	// FaultKindRelaunch is a replica failure resubmitted under
	// FaultRelaunch (consumes the replica's retry budget).
	FaultKindRelaunch = "relaunch"
	// FaultKindResourceLost is a resubmission after pilot walltime expiry
	// (infrastructure fault; does not consume the replica budget).
	FaultKindResourceLost = "resource-lost"
	// FaultKindDrop is a terminal failure that removed the replica.
	FaultKindDrop = "drop"
	// FaultKindCancelled is an in-flight MD segment discarded by run
	// cancellation; its segment is redone on resume.
	FaultKindCancelled = "cancelled"
)

// ResourceEvent mirrors one task.ResourceEvent on the bus: a pilot
// lifecycle change (launch, node-loss shrink, preemption notice,
// resize, expiry) drained from an elastic runtime.
type ResourceEvent struct {
	At float64
	// Pilot is the routing slot (multi-pilot) or failover generation
	// (single-pilot) of the affected pilot.
	Pilot int
	// Kind is one of the task.Resource* kind strings ("launch",
	// "shrink", "preempt", "resize", "expire").
	Kind string
	// Cores is the pilot's core count after the change; Delta the
	// signed change.
	Cores int
	Delta int
	// Notice is the preemption notice window in seconds (preempt only).
	Notice float64
}

// When returns the publication time.
func (e ResourceEvent) When() float64 { return e.At }

// FaultEvent records one fault-handling action.
type FaultEvent struct {
	At      float64
	Replica int
	// Kind is one of the FaultKind constants.
	Kind string
	// Retries is the replica's consumed retry budget (relaunch/drop) or
	// the segment's resource-loss resubmission count.
	Retries int
	// Exec is the failed attempt's execution time for relaunch kinds
	// (the attempt never reaches an MDEvent, so overhead consumers pick
	// it up here); 0 for drops, whose exec is on the terminal MDEvent.
	Exec float64
}

// When returns the publication time.
func (e FaultEvent) When() float64 { return e.At }

// RespaceEvent records one online ladder re-fit: a saturated dimension's
// window values were replaced by the flat-acceptance re-fit at a
// checkpoint boundary. Consumers must not mutate the value slices.
type RespaceEvent struct {
	At float64
	// Event is the exchange-event index the refit fired after.
	Event int
	// Dim is the re-fitted exchange dimension; Refit its refit ordinal
	// for this run (1 for the dimension's first refit).
	Dim   int
	Refit int
	// Old and New are the dimension's window values before and after.
	Old []float64
	New []float64
}

// When returns the publication time.
func (e RespaceEvent) When() float64 { return e.At }

// Bus fans events out to subscribers. The zero value is not usable; use
// NewBus. A nil *Bus is a valid "disabled" bus for Spec.Bus.
type Bus struct {
	mu        sync.Mutex // guards Subscribe (writers of subs)
	subs      atomic.Pointer[[]*Subscription]
	published atomic.Uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers a consumer with a ring buffer of the given
// capacity (minimum 1; a non-positive value selects 1024). Events
// published while the ring is full overwrite the oldest entry.
func (b *Bus) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 1024
	}
	s := &Subscription{ring: make([]Event, buffer)}
	b.mu.Lock()
	var subs []*Subscription
	if old := b.subs.Load(); old != nil {
		subs = append(subs, *old...)
	}
	subs = append(subs, s)
	b.subs.Store(&subs)
	b.mu.Unlock()
	return s
}

// Unsubscribe removes a subscription registered with Subscribe; events
// published afterwards are no longer delivered to it. Removing a
// subscription that is not registered (or removing twice) is a no-op.
// Long-lived buses with transient consumers (e.g. SSE streams) must
// unsubscribe, or their rings stay reachable forever.
func (b *Bus) Unsubscribe(target *Subscription) {
	if b == nil || target == nil {
		return
	}
	b.mu.Lock()
	if old := b.subs.Load(); old != nil {
		subs := make([]*Subscription, 0, len(*old))
		for _, s := range *old {
			if s != target {
				subs = append(subs, s)
			}
		}
		b.subs.Store(&subs)
	}
	b.mu.Unlock()
}

// Publish delivers ev to every subscriber without blocking: full rings
// drop their oldest event. Safe for concurrent use; the subscriber list
// is read lock-free to keep the hot loop's cost at one atomic load.
func (b *Bus) Publish(ev Event) {
	b.published.Add(1)
	if subs := b.subs.Load(); subs != nil {
		for _, s := range *subs {
			s.push(ev)
		}
	}
}

// PublishBatch delivers evs in order to every subscriber, taking each
// subscriber's ring lock once per batch instead of once per event. The
// dispatcher batches the MD, fault and exchange records of a collection
// round this way so per-pair outcome fan-out does not serialize the hot
// path at production replica counts.
func (b *Bus) PublishBatch(evs []Event) {
	if len(evs) == 0 {
		return
	}
	b.published.Add(uint64(len(evs)))
	if subs := b.subs.Load(); subs != nil {
		for _, s := range *subs {
			s.pushBatch(evs)
		}
	}
}

// Published returns the number of events published so far.
func (b *Bus) Published() uint64 {
	if b == nil {
		return 0
	}
	return b.published.Load()
}

// Subscription is one consumer's bounded view of the bus.
type Subscription struct {
	mu      sync.Mutex
	ring    []Event
	head    int // index of the oldest buffered event
	n       int // buffered events
	dropped uint64
}

func (s *Subscription) push(ev Event) {
	s.mu.Lock()
	s.pushLocked(ev)
	s.mu.Unlock()
}

func (s *Subscription) pushBatch(evs []Event) {
	s.mu.Lock()
	for _, ev := range evs {
		s.pushLocked(ev)
	}
	s.mu.Unlock()
}

func (s *Subscription) pushLocked(ev Event) {
	if s.n == len(s.ring) {
		s.ring[s.head] = ev
		s.head = (s.head + 1) % len(s.ring)
		s.dropped++
	} else {
		s.ring[(s.head+s.n)%len(s.ring)] = ev
		s.n++
	}
}

// Drain appends all buffered events to dst in publication order and
// empties the ring. Drained slots are cleared so consumed events (and
// their payload slices) do not stay reachable from a large ring.
func (s *Subscription) Drain(dst []Event) []Event {
	s.mu.Lock()
	for i := 0; i < s.n; i++ {
		j := (s.head + i) % len(s.ring)
		dst = append(dst, s.ring[j])
		s.ring[j] = nil
	}
	s.head, s.n = 0, 0
	s.mu.Unlock()
	return dst
}

// Dropped returns the number of events this subscriber lost to ring
// overflow.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
