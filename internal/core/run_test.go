package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/pilot"
	"repro/internal/sim"
)

// runVirtualCtx is runVirtual with a caller-supplied context and no
// fatal error handling: cancellation tests need the partial report, the
// final run state and the returned error.
func runVirtualCtx(t *testing.T, ctx context.Context, spec *core.Spec, cfg cluster.Config, cores, natoms int) (*core.Report, core.RunState, error) {
	t.Helper()
	env := sim.NewEnv()
	cl := cluster.MustNew(env, cfg, spec.Seed+1)
	pl, err := pilot.Launch(cl, pilot.Description{Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	eng := engines.NewAmberVirtual(natoms, spec.Seed+2)
	var report *core.Report
	var state core.RunState
	var runErr error
	env.Go("emm", func(p *sim.Proc) {
		rt := pilot.NewRuntime(pl, p)
		simu, err := core.New(spec, eng, rt)
		if err != nil {
			runErr = err
			return
		}
		if got := simu.State(); got != core.RunPending {
			t.Errorf("pre-run state %v, want pending", got)
		}
		report, runErr = simu.RunContext(ctx)
		state = simu.State()
	})
	env.Run()
	return report, state, runErr
}

func TestRunStateMachine(t *testing.T) {
	rep, state, err := runVirtualCtx(t, context.Background(), smallTREMD(4, 2), quietCluster(), 4, 2881)
	if err != nil {
		t.Fatal(err)
	}
	if state != core.RunCompleted {
		t.Fatalf("state after clean run %v, want completed", state)
	}
	if rep.CancelledUnits != 0 {
		t.Fatalf("clean run discarded %d units", rep.CancelledUnits)
	}
	// State names are the status-payload vocabulary; terminality drives
	// registry bookkeeping.
	names := map[core.RunState]string{
		core.RunPending: "pending", core.RunRunning: "running",
		core.RunCompleted: "completed", core.RunFailed: "failed",
		core.RunCancelled: "cancelled",
	}
	for st, want := range names {
		if st.String() != want {
			t.Fatalf("state %d renders %q, want %q", st, st.String(), want)
		}
		wantTerm := st != core.RunPending && st != core.RunRunning
		if st.Terminal() != wantTerm {
			t.Fatalf("state %v terminal=%v, want %v", st, st.Terminal(), wantTerm)
		}
	}
}

func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var snaps []*core.Snapshot
	spec := smallTREMD(4, 2)
	spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	rep, state, err := runVirtualCtx(t, ctx, spec, quietCluster(), 4, 2881)
	if !errors.Is(err, core.ErrRunCancelled) {
		t.Fatalf("pre-cancelled context returned %v, want ErrRunCancelled", err)
	}
	if state != core.RunCancelled {
		t.Fatalf("state %v, want cancelled", state)
	}
	if rep.ExchangeEvents != 0 {
		t.Fatalf("%d exchange events fired under a pre-cancelled context", rep.ExchangeEvents)
	}
	if len(snaps) != 1 || snaps[0].Events != 0 {
		t.Fatalf("want one boundary snapshot at event 0, got %d", len(snaps))
	}
}

// TestCancelledRunResumesBitExactBarrier is the tentpole acceptance
// test on the synchronous path: a run cancelled mid-flight leaves a
// final snapshot that, resumed, reproduces the uninterrupted run's slot
// history bit for bit. Cancellation is injected from inside OnSnapshot
// — which the dispatcher invokes at the exchange-event boundary — so
// the cancel lands at a deterministic event.
func TestCancelledRunResumesBitExactBarrier(t *testing.T) {
	full := runVirtual(t, smallTREMD(8, 4), quietCluster(), 8, 2881)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snaps []*core.Snapshot
	spec := smallTREMD(8, 4)
	spec.SnapshotEvery = 2
	spec.OnSnapshot = func(sn *core.Snapshot) {
		snaps = append(snaps, sn)
		cancel()
	}
	rep, state, err := runVirtualCtx(t, ctx, spec, quietCluster(), 8, 2881)
	if !errors.Is(err, core.ErrRunCancelled) {
		t.Fatalf("cancelled run returned %v, want ErrRunCancelled", err)
	}
	if state != core.RunCancelled {
		t.Fatalf("state %v, want cancelled", state)
	}
	if rep == nil || rep.ExchangeEvents != 2 {
		t.Fatalf("cancelled at the event-2 boundary, report says %+v", rep)
	}
	// The periodic snapshot triggered the cancel; the forced boundary
	// snapshot follows at the same event with identical state.
	final := snaps[len(snaps)-1]
	if final.Events != 2 {
		t.Fatalf("final snapshot at event %d, want 2", final.Events)
	}

	data, err := final.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	resumedSpec := smallTREMD(8, 4)
	resumedSpec.Resume = snap
	resumed := runVirtual(t, resumedSpec, quietCluster(), 8, 2881)
	if resumed.ExchangeEvents != full.ExchangeEvents {
		t.Fatalf("resumed run fired %d events, uninterrupted %d",
			resumed.ExchangeEvents, full.ExchangeEvents)
	}
	if historyFingerprint(resumed.SlotHistory) != historyFingerprint(full.SlotHistory) {
		t.Fatalf("resume after cancel diverged from the uninterrupted run:\nfull    %v\nresumed %v",
			full.SlotHistory, resumed.SlotHistory)
	}
}

// TestCancelledRunResumesBitExactAsync covers the non-aligned path,
// where cancellation after an exchange event must leave a snapshot that
// resumes exactly like a periodic one. The spec mirrors
// TestFeedbackResumeDeterminism — the feedback trigger is the
// asynchronous policy with snapshot-deterministic resume (count-style
// ready-subset policies reconstruct a different post-resume completion
// interleaving with or without cancellation).
func TestCancelledRunResumesBitExactAsync(t *testing.T) {
	full := runVirtual(t, asyncFeedbackSpec(), quietCluster(), 8, 2881)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snaps []*core.Snapshot
	spec := asyncFeedbackSpec()
	spec.SnapshotEvery = 3
	spec.OnSnapshot = func(sn *core.Snapshot) {
		snaps = append(snaps, sn)
		cancel()
	}
	rep, state, err := runVirtualCtx(t, ctx, spec, quietCluster(), 8, 2881)
	if !errors.Is(err, core.ErrRunCancelled) {
		t.Fatalf("cancelled run returned %v, want ErrRunCancelled", err)
	}
	if state != core.RunCancelled {
		t.Fatalf("state %v, want cancelled", state)
	}
	if rep.ExchangeEvents != 3 {
		t.Fatalf("cancelled at the event-3 boundary, report fired %d", rep.ExchangeEvents)
	}

	final := snaps[len(snaps)-1]
	data, err := final.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	resumedSpec := asyncFeedbackSpec()
	resumedSpec.Resume = snap
	resumed := runVirtual(t, resumedSpec, quietCluster(), 8, 2881)
	if resumed.ExchangeEvents != full.ExchangeEvents {
		t.Fatalf("resumed run fired %d events, uninterrupted %d",
			resumed.ExchangeEvents, full.ExchangeEvents)
	}
	if historyFingerprint(resumed.SlotHistory) != historyFingerprint(full.SlotHistory) {
		t.Fatalf("async resume after cancel diverged:\nfull    %v\nresumed %v",
			full.SlotHistory, resumed.SlotHistory)
	}
}

func asyncFeedbackSpec() *core.Spec {
	tr := core.NewFeedbackTrigger(150)
	tr.Target = 0.5
	tr.WindowEvents = 12
	return &core.Spec{
		Name:            "cancel-async",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 8)}},
		Pattern:         core.PatternAsynchronous,
		Trigger:         tr,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          8,
		AsyncWindow:     150,
		Seed:            21,
	}
}

// TestCancelDrainsInFlightSegments oversubscribes the pilot (8 replicas
// on 4 cores) so exchange events fire with MD segments genuinely in
// flight: cancellation must await and discard them — never absorb them
// into replica state — count them, and publish one cancelled fault
// event each. The final snapshot stays valid and resumable; the redone
// segments mean the resumed interleaving differs from the uninterrupted
// one, exactly as it would for a kill+restart from a periodic snapshot
// of the same boundary (snapshots deliberately do not record in-flight
// progress).
func TestCancelDrainsInFlightSegments(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snaps []*core.Snapshot
	spec := asyncFeedbackSpec()
	spec.SnapshotEvery = 1
	spec.OnSnapshot = func(sn *core.Snapshot) {
		snaps = append(snaps, sn)
		cancel()
	}
	bus := core.NewBus()
	sub := bus.Subscribe(1 << 14)
	spec.Bus = bus
	rep, state, err := runVirtualCtx(t, ctx, spec, quietCluster(), 4, 2881)
	if !errors.Is(err, core.ErrRunCancelled) {
		t.Fatalf("cancelled run returned %v, want ErrRunCancelled", err)
	}
	if state != core.RunCancelled {
		t.Fatalf("state %v, want cancelled", state)
	}
	if rep.CancelledUnits == 0 {
		t.Fatal("oversubscribed async cancel drained no in-flight segments; expected > 0")
	}
	cancelledEvents := 0
	for _, ev := range sub.Drain(nil) {
		if f, ok := ev.(core.FaultEvent); ok && f.Kind == core.FaultKindCancelled {
			cancelledEvents++
		}
	}
	if cancelledEvents != rep.CancelledUnits {
		t.Fatalf("%d cancelled fault events on the bus, report counted %d",
			cancelledEvents, rep.CancelledUnits)
	}

	// The snapshot was captured before the drain, so it is exactly the
	// boundary state: resuming it must run to completion.
	final := snaps[len(snaps)-1]
	data, err := final.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	resumedSpec := asyncFeedbackSpec()
	resumedSpec.Resume = snap
	resumed := runVirtual(t, resumedSpec, quietCluster(), 4, 2881)
	if resumed.ExchangeEvents <= final.Events {
		t.Fatalf("resume made no progress past the cancel boundary: %d events", resumed.ExchangeEvents)
	}
}

func TestBusUnsubscribe(t *testing.T) {
	bus := core.NewBus()
	keep := bus.Subscribe(8)
	gone := bus.Subscribe(8)
	bus.Publish(core.MDEvent{At: 1})
	bus.Unsubscribe(gone)
	bus.Unsubscribe(gone) // double-remove is a no-op
	bus.Unsubscribe(nil)
	bus.Publish(core.MDEvent{At: 2})
	if n := len(keep.Drain(nil)); n != 2 {
		t.Fatalf("surviving subscriber saw %d events, want 2", n)
	}
	if n := len(gone.Drain(nil)); n != 1 {
		t.Fatalf("unsubscribed ring holds %d events, want only the pre-unsubscribe 1", n)
	}
}
