package core

import (
	"math"
	"testing"
)

// TestRespaceSane exercises the last-line defence between a planner
// proposal and the live grid: anything that changes the ladder's
// contract must be rejected.
func TestRespaceSane(t *testing.T) {
	inc := []float64{273, 300, 330, 373}
	dec := []float64{373, 330, 300, 273}
	cases := []struct {
		name string
		old  []float64
		next []float64
		want bool
	}{
		{"identity", inc, []float64{273, 300, 330, 373}, true},
		{"interior move", inc, []float64{273, 310, 350, 373}, true},
		{"decreasing identity", dec, []float64{373, 330, 300, 273}, true},
		{"decreasing interior move", dec, []float64{373, 350, 310, 273}, true},
		{"length change", inc, []float64{273, 330, 373}, false},
		{"duplicate rung", inc, []float64{273, 300, 300, 373}, false},
		{"direction flip", inc, []float64{373, 330, 300, 273}, false},
		{"below envelope", inc, []float64{272, 300, 330, 373}, false},
		{"above envelope", inc, []float64{273, 300, 330, 374}, false},
		{"NaN rung", inc, []float64{273, math.NaN(), 330, 373}, false},
		{"infinite rung", inc, []float64{273, 300, math.Inf(1), 373}, false},
		{"too short", []float64{300}, []float64{300}, false},
	}
	for _, tc := range cases {
		if got := respaceSane(tc.old, tc.next); got != tc.want {
			t.Errorf("%s: respaceSane(%v, %v) = %v, want %v",
				tc.name, tc.old, tc.next, got, tc.want)
		}
	}
}

// TestRespaceSpecValidate covers the parameter guard plus the default
// resolution helpers.
func TestRespaceSpecValidate(t *testing.T) {
	if err := (&RespaceSpec{}).validate(1); err != nil {
		t.Errorf("zero-value spec rejected: %v", err)
	}
	if err := (&RespaceSpec{AfterSteps: -1}).validate(1); err == nil {
		t.Error("negative after-steps accepted")
	}
	if err := (&RespaceSpec{MaxRefits: -1}).validate(1); err == nil {
		t.Error("negative max-refits accepted")
	}
	if err := (&RespaceSpec{Disabled: []bool{true, false}}).validate(1); err == nil {
		t.Error("disabled list longer than dims accepted")
	}
	rs := &RespaceSpec{}
	if rs.afterSteps() != 12 || rs.maxRefits() != 3 {
		t.Errorf("defaults: afterSteps %d (want 12), maxRefits %d (want 3)",
			rs.afterSteps(), rs.maxRefits())
	}
	rs = &RespaceSpec{AfterSteps: 4, MaxRefits: 1, Disabled: []bool{true}}
	if rs.afterSteps() != 4 || rs.maxRefits() != 1 {
		t.Errorf("explicit values not honoured: %d, %d", rs.afterSteps(), rs.maxRefits())
	}
	if !rs.disabled(0) || rs.disabled(1) || rs.disabled(-1) {
		t.Error("disabled() index handling wrong")
	}
}
