package core_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/md"
	"repro/internal/pilot"
	"repro/internal/sim"
	"repro/internal/task"
)

// mdCall records one MDTask preparation: which replica, for which cycle,
// under which exchange dimension.
type mdCall struct {
	replica, cycle, dim int
}

// flakyEngine is a deterministic fault-testing engine: replica 0's first
// MD segment is marked CanFail (the cluster's FailureProb=1 then kills
// exactly that task) and its relaunch runs slowDur seconds, while every
// other segment runs fastDur. All MDTask preparations are recorded in
// call order so tests can assert which dimension a relaunch was
// submitted under.
type flakyEngine struct {
	fastDur, failDur, slowDur float64
	calls                     []mdCall
}

func (e *flakyEngine) Name() string                              { return "flaky" }
func (e *flakyEngine) InitReplica(r *core.Replica, s *core.Spec) {}
func (e *flakyEngine) MDTask(r *core.Replica, s *core.Spec, dim int) *task.Spec {
	e.calls = append(e.calls, mdCall{replica: r.ID, cycle: r.Cycle, dim: dim})
	spec := &task.Spec{
		Name:      fmt.Sprintf("md-r%d-c%d", r.ID, r.Cycle),
		Kind:      task.MD,
		ReplicaID: r.ID,
		Cores:     s.CoresPerReplica,
		Duration:  e.fastDur,
	}
	if r.ID == 0 && r.Cycle == 0 {
		if e.firstAttempt(r.ID) {
			spec.Duration = e.failDur
			spec.CanFail = true // FailureProb=1 kills exactly this task
		} else {
			spec.Duration = e.slowDur // the relaunch everyone must not wait for
		}
	}
	return spec
}

// firstAttempt reports whether this is the first MDTask call for the
// replica's current segment.
func (e *flakyEngine) firstAttempt(replica int) bool {
	n := 0
	for _, c := range e.calls {
		if c.replica == replica && c.cycle == 0 {
			n++
		}
	}
	return n <= 1 // the call being prepared was already recorded
}

func (e *flakyEngine) ExchangeTask(dim, n int, s *core.Spec) *task.Spec { return nil }
func (e *flakyEngine) SinglePointTasks(dim int, g []*core.Replica, s *core.Spec) []*task.Spec {
	return nil
}
func (e *flakyEngine) OwnEnergy(r *core.Replica) float64 { return -float64(r.Slot) * 3 }
func (e *flakyEngine) CrossEnergy(r *core.Replica, under md.Params) float64 {
	return float64(len(under.Restraints))
}
func (e *flakyEngine) TorsionIndex(label string) int          { return 0 }
func (e *flakyEngine) PrepOverhead(nTasks, ndims int) float64 { return 0 }

// runVirtualEngine is runVirtual with a caller-supplied engine.
func runVirtualEngine(t *testing.T, spec *core.Spec, cfg cluster.Config, cores int, eng core.Engine) *core.Report {
	t.Helper()
	env := sim.NewEnv()
	cl := cluster.MustNew(env, cfg, spec.Seed+1)
	pl, err := pilot.Launch(cl, pilot.Description{Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	var report *core.Report
	var runErr error
	env.Go("emm", func(p *sim.Proc) {
		rt := pilot.NewRuntime(pl, p)
		simu, err := core.New(spec, eng, rt)
		if err != nil {
			runErr = err
			return
		}
		report, runErr = simu.Run()
	})
	env.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	return report
}

// TestRelaunchDoesNotBlockExchanges is the regression test for the
// blocking FaultRelaunch path: while replica 0's relaunched segment
// (1000 virtual seconds) is still in flight, the healthy replicas must
// keep firing exchange events. The seed implementation awaited the
// relaunch inside the dispatcher loop, so the first exchange could not
// happen before the relaunch finished (~1050s); event-driven relaunches
// fire it within the first collection round (~20s).
func TestRelaunchDoesNotBlockExchanges(t *testing.T) {
	cfg := quietCluster()
	cfg.FailureProb = 1 // kills exactly the CanFail task
	cfg.SpeedFactor = 1 // keep task durations in reference seconds
	spec := &core.Spec{
		Name:            "nonblocking",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 6)}},
		Pattern:         core.PatternAsynchronous,
		Trigger:         core.NewCountTrigger(2),
		CoresPerReplica: 1,
		StepsPerCycle:   100,
		Cycles:          2,
		FaultPolicy:     core.FaultRelaunch,
		Seed:            13,
	}
	eng := &flakyEngine{fastDur: 10, failDur: 100, slowDur: 1000}
	rep := runVirtualEngine(t, spec, cfg, 6, eng)

	if rep.Relaunches != 1 {
		t.Fatalf("relaunches %d, want 1", rep.Relaunches)
	}
	if rep.Dropped != 0 {
		t.Fatalf("dropped %d replicas, want 0 (relaunch must recover)", rep.Dropped)
	}
	if rep.ExchangeEvents < 2 {
		t.Fatalf("exchange events %d, want >= 2", rep.ExchangeEvents)
	}
	// Virtual-time ordering: the failed attempt dies at ~50s and its
	// relaunch cannot finish before 1050s. Healthy replicas (10s
	// segments) must have exchanged long before that.
	midRelaunch := 0
	for _, rec := range rep.Records {
		if rec.At < 1000 {
			midRelaunch++
		}
	}
	if midRelaunch < 2 {
		t.Fatalf("only %d exchange events fired while the relaunch was in flight (records %v)",
			midRelaunch, recordTimes(rep))
	}
	if rep.Records[0].At > 100 {
		t.Fatalf("first exchange at %v, blocked behind the relaunch", rep.Records[0].At)
	}
	// The relaunched replica still completes its budget: the run's
	// makespan covers the 1000s relaunch plus replica 0's second segment.
	if rep.Makespan() < 1000 {
		t.Fatalf("makespan %v, relaunched segment cannot have completed", rep.Makespan())
	}
}

func recordTimes(rep *core.Report) []float64 {
	out := make([]float64, len(rep.Records))
	for i, rec := range rep.Records {
		out[i] = rec.At
	}
	return out
}

// TestRelaunchUsesSubmissionDim is the regression test for the async
// dimension mismatch: a segment submitted for dimension 0 whose failure
// arrives after the dispatcher advanced to dimension 1 must be
// relaunched under dimension 0, not the current one.
func TestRelaunchUsesSubmissionDim(t *testing.T) {
	cfg := quietCluster()
	cfg.FailureProb = 1
	spec := &core.Spec{
		Name: "dim-carry",
		Dims: []core.Dimension{
			{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 3)},
			{Type: exchange.Umbrella, Values: core.UniformWindows(2), Torsion: "phi", K: core.UmbrellaK002},
		},
		Pattern:         core.PatternAsynchronous,
		Trigger:         core.NewCountTrigger(2),
		CoresPerReplica: 1,
		StepsPerCycle:   100,
		Cycles:          3,
		FaultPolicy:     core.FaultRelaunch,
		Seed:            17,
	}
	eng := &flakyEngine{fastDur: 4, failDur: 100, slowDur: 10}
	rep := runVirtualEngine(t, spec, cfg, 6, eng)
	if rep.Relaunches != 1 || rep.Dropped != 0 {
		t.Fatalf("relaunches %d dropped %d, want 1/0", rep.Relaunches, rep.Dropped)
	}

	// Locate replica 0's two preparations for its first segment: the
	// failed attempt and its relaunch.
	var seg0 []int
	for i, c := range eng.calls {
		if c.replica == 0 && c.cycle == 0 {
			seg0 = append(seg0, i)
		}
	}
	if len(seg0) != 2 {
		t.Fatalf("replica 0 segment 0 prepared %d times, want 2", len(seg0))
	}
	submitted, relaunched := eng.calls[seg0[0]], eng.calls[seg0[1]]
	if relaunched.dim != submitted.dim {
		t.Fatalf("relaunch submitted under dim %d, segment belongs to dim %d",
			relaunched.dim, submitted.dim)
	}
	// Sanity: the dispatcher had already moved past the submission
	// dimension when the failure arrived (~50s; the 4s replicas cycle
	// through both dimensions within that), so the old current-dim
	// behaviour would have mismatched here.
	advanced := false
	for _, c := range eng.calls[:seg0[1]] {
		if c.dim != submitted.dim {
			advanced = true
			break
		}
	}
	if !advanced {
		t.Fatal("test premise broken: no other dimension was submitted before the relaunch")
	}
}

// TestAsyncMDWallAccounted is the regression test for asynchronous MD
// wall accounting: non-aligned records previously left MD.Wall at zero,
// so Report.AvgMDWall silently reported 0 for window/count/adaptive
// runs.
func TestAsyncMDWallAccounted(t *testing.T) {
	for _, tr := range []core.Trigger{core.NewCountTrigger(4), core.NewWindowTrigger(45, 0)} {
		spec := smallTREMD(12, 3)
		spec.Pattern = core.PatternAsynchronous
		spec.AsyncWindow = 45
		spec.Trigger = tr
		rep := runVirtual(t, spec, quietCluster(), 12, 2881)
		if rep.AvgMDWall() <= 0 {
			t.Fatalf("%s: AvgMDWall %v, want > 0", tr.Name(), rep.AvgMDWall())
		}
		for i, rec := range rep.Records {
			if rec.MD.Tasks > 0 && rec.MD.Wall <= 0 {
				t.Fatalf("%s: record %d has %d MD tasks but zero MD wall",
					tr.Name(), i, rec.MD.Tasks)
			}
		}
	}
}

// TestPilotWalltimeFailover is the end-to-end fault-recovery test: a
// walltime-bounded pilot expires mid-run, its executing segments fail
// with a resource-loss error, the dispatcher resubmits them (without
// charging replica retry budgets) and the failover runtime provisions a
// fresh pilot. The run completes with no replica lost.
func TestPilotWalltimeFailover(t *testing.T) {
	spec := smallTREMD(8, 3)
	spec.FaultPolicy = core.FaultRelaunch
	env := sim.NewEnv()
	cl := cluster.MustNew(env, quietCluster(), spec.Seed+1)
	eng := engines.NewAmberVirtual(2881, spec.Seed+2)
	var rt *pilot.Runtime
	var report *core.Report
	var runErr error
	env.Go("emm", func(p *sim.Proc) {
		var err error
		// One 139.6s segment per cycle; a 250s walltime guarantees the
		// pilot dies inside the second segment.
		rt, err = pilot.NewFailoverRuntime(cl, pilot.Description{Cores: 8, Walltime: 250}, p)
		if err != nil {
			runErr = err
			return
		}
		simu, err := core.New(spec, eng, rt)
		if err != nil {
			runErr = err
			return
		}
		report, runErr = simu.Run()
	})
	env.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if rt.Relaunched() == 0 {
		t.Fatal("no pilot failover happened; walltime not enforced")
	}
	if report.Relaunches == 0 {
		t.Fatal("no interrupted segment was resubmitted")
	}
	if report.Dropped != 0 {
		t.Fatalf("dropped %d replicas; resource loss must not kill replicas", report.Dropped)
	}
	if len(report.Records) != 3 {
		t.Fatalf("records %d, want 3 (run did not complete)", len(report.Records))
	}
	// Each failover pays the batch queue again.
	if report.Makespan() < 3*139 {
		t.Fatalf("makespan %v too short for three segments", report.Makespan())
	}
}
