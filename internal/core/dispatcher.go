package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/exchange"
	"repro/internal/task"
)

// This file is the event-driven scheduling core: one dispatcher loop,
// parameterized by a Trigger policy, drives every Replica Exchange
// Pattern. MD completions stream in through task.Runtime.AwaitNext (O(1)
// per event); the trigger decides when the ready replicas transition to
// the exchange phase, and one shared exchangePhase routine performs it.
//
// Failure handling is event-driven too: a failed MD segment is
// resubmitted through SubmitWatched as another in-flight event, so a
// retrying replica never blocks the loop — exchanges keep firing among
// the healthy replicas while the relaunch runs (the non-blocking fault
// recovery the paper's production scale requires).

// mdFlight is one replica's in-flight MD segment: the task handle, the
// dimension the segment was submitted for (relaunches must reuse it even
// if the dispatcher's current dimension has advanced) and the failure
// accounting of this segment.
type mdFlight struct {
	r *Replica
	h task.Handle
	// dim is the exchange dimension the segment was submitted under.
	dim int
	// start is the runtime time of the segment's first submission;
	// relaunches keep it, so (now - start) at final completion is the
	// segment's completion latency including every retry.
	start float64
	// infra counts resource-loss resubmissions (pilot walltime expiry)
	// of this segment; unlike Replica.Retries it is per-segment and does
	// not consume the replica's fault budget.
	infra int
	// rel counts replica-failure relaunches of this segment, so the
	// segment's trace span can report how many retries it absorbed
	// (infra + rel) without decoding the replica's lifetime budget.
	rel int
}

// dispatch runs the simulation to completion under the given trigger
// policy, or until ctx is cancelled (checked at exchange-event
// boundaries only, so every observable stop point has the shape of a
// periodic snapshot).
//
// Aligned policies (the barrier) reproduce the synchronous pattern
// exactly: each round is one (cycle, dimension) sub-cycle over all alive
// replicas, MD results are processed in submission order once the whole
// batch finished, and the record carries MD wall plus preparation
// overhead. Non-aligned policies reproduce the asynchronous shape:
// completions are processed as they arrive, exchanges run over the ready
// subset, and each record covers one exchange event.
func (s *Simulation) dispatch(ctx context.Context, tr Trigger) error {
	spec := s.spec
	ndims := len(spec.Dims)
	aligned := tr.Aligned()
	if s.resumed && spec.Resume.Trigger != "" && spec.Resume.Trigger != tr.Name() {
		return fmt.Errorf("core: snapshot was taken under trigger %q, resuming under %q",
			spec.Resume.Trigger, tr.Name())
	}
	// Closed-loop policies are fed exchange outcomes through the
	// observer hook; stateful ones additionally resume their controller
	// state, so a resumed run makes the same trigger decisions.
	s.exObs, _ = tr.(ExchangeObserver)
	// Latency-adaptive policies are fed each MD segment's completion
	// latency — submission to final completion, including relaunch
	// retries — rather than the raw per-attempt exec time Observe sees.
	latObs, _ := tr.(LatencyObserver)
	// Feedback policies get a controller-decision span after each fire:
	// publishExchange feeds ObserveExchange synchronously, so the fired
	// dimension's control step has already run when the span is recorded.
	fbTr, _ := tr.(*FeedbackTrigger)
	// Queued bus events are flushed once per dispatcher wakeup; the
	// deferred flush covers error returns mid-round. Resource events are
	// drained first (LIFO), so pilot lifecycle changes buffered by an
	// elastic runtime reach the bus even on error paths.
	defer s.flushBus()
	defer s.drainResourceEvents()
	if s.resumed && len(spec.Resume.TriggerData) > 0 {
		st, ok := tr.(StatefulTrigger)
		if !ok {
			return fmt.Errorf("core: snapshot carries %q trigger state, but the policy cannot restore it",
				spec.Resume.Trigger)
		}
		if err := st.RestoreState(spec.Resume.TriggerData); err != nil {
			return err
		}
	}
	// A replica's MD-segment budget: the synchronous pattern runs one
	// segment per (cycle, dimension) sub-cycle, the asynchronous family
	// one segment per cycle.
	segBudget := spec.Cycles
	if aligned {
		segBudget *= ndims
	}

	var (
		owner   = make(map[task.Handle]*mdFlight, len(s.replicas))
		batch   []*mdFlight // aligned: this round's flights in submission order
		ready   []*Replica  // non-aligned: processed replicas awaiting exchange
		next    []*Replica  // fire-time resubmission set, reused across rounds
		free    []*mdFlight // free list: absorbed flights are recycled
		readyB  int         // ready replicas with budget left
		pending int         // outstanding MD tasks
		done    int         // completed-but-unprocessed tasks (aligned)
		alive   = s.aliveCount()
		event   = s.resumeEvents // exchange events fired so far
		dim     = s.resumeEvents % ndims
		mdAccum PhaseRecord // MD results (incl. failed attempts) of the round
		prep    float64     // MD preparation overhead of the current round
		roundT0 float64     // round start (before MD preparation)
		mdStart float64     // first MD submission of the current round
	)

	// newFlight and freeFlight recycle mdFlight structs: the dispatcher
	// creates one per MD segment, which at production replica counts is
	// the dominant per-event allocation (ROADMAP: dispatcher allocation
	// pressure).
	newFlight := func(r *Replica) *mdFlight {
		if n := len(free) - 1; n >= 0 {
			f := free[n]
			free = free[:n]
			*f = mdFlight{r: r, dim: dim}
			return f
		}
		return &mdFlight{r: r, dim: dim}
	}
	freeFlight := func(f *mdFlight) {
		*f = mdFlight{}
		free = append(free, f)
	}

	// absorb processes one completed MD segment, tracking deaths.
	absorb := func(r *Replica, res task.Result, phase *PhaseRecord) {
		s.finishMD(r, res, phase)
		if !r.Alive {
			alive--
		}
	}

	state := func() TriggerState {
		st := TriggerState{
			Now:     s.rt.Now(),
			Pending: pending,
			Alive:   alive,
			// dim already points at the upcoming exchange's dimension:
			// fires advance it before Reset opens the next window, so
			// per-dimension policies steer the right actuator pair.
			Dim: dim,
		}
		if aligned {
			st.Ready = done
		} else {
			st.Ready = len(ready)
			st.ReadyBudget = readyB
		}
		return st
	}

	// submit sends one MD segment per replica, charging a single
	// task-preparation overhead for the whole batch.
	submit := func(rs []*Replica) {
		if len(rs) == 0 {
			return
		}
		p := s.engine.PrepOverhead(len(rs), ndims)
		s.rt.Overhead(p)
		prep += p
		mdStart = s.rt.Now()
		for _, r := range rs {
			f := newFlight(r)
			f.start = mdStart
			f.h = s.rt.SubmitWatched(s.engine.MDTask(r, spec, dim))
			owner[f.h] = f
			pending++
			if aligned {
				batch = append(batch, f)
			}
		}
	}

	// relaunch resubmits a failed MD segment as a fresh dispatcher event
	// and reports whether it did. Replica failures consume the replica's
	// retry budget under FaultRelaunch; resource-loss failures (pilot
	// walltime expiry) are resubmitted under either policy against a
	// separate per-segment cap, since they are the infrastructure's
	// fault, not the replica's.
	relaunch := func(f *mdFlight, res task.Result) bool {
		kind, retries := "", 0
		switch {
		case errors.Is(res.Err, task.ErrResourceLost):
			if f.infra >= spec.MaxRetries {
				return false
			}
			f.infra++
			kind, retries = FaultKindResourceLost, f.infra
		case spec.FaultPolicy == FaultRelaunch && f.r.Retries < spec.MaxRetries:
			f.r.Retries++
			f.rel++
			kind, retries = FaultKindRelaunch, f.r.Retries
		default:
			return false
		}
		s.report.Relaunches++
		s.publish(FaultEvent{At: s.rt.Now(), Replica: f.r.ID,
			Kind: kind, Retries: retries, Exec: res.Exec})
		s.recordFault(f.r.ID, kind, retries)
		// The failed attempt is charged to the round it happened in.
		mdAccum.absorb(res)
		s.report.MDExecCoreSeconds += res.Exec * float64(res.Spec.Cores)
		h := s.rt.SubmitWatched(s.engine.MDTask(f.r, spec, f.dim))
		delete(owner, f.h)
		f.h = h
		owner[h] = f
		pending++
		return true
	}

	// cancelRun stops the run at an exchange-event boundary. The snapshot
	// is captured first, so it has exactly the shape of a periodic one:
	// taken right after a fire, with no partially-absorbed MD results.
	// Every in-flight segment is then awaited and discarded — never
	// absorbed into replica state, so the engine's RNG stream stays at
	// the boundary and the discarded segments are simply redone on
	// resume, reproducing the uninterrupted run's slot history exactly.
	cancelRun := func() error {
		sn, snErr := s.captureSnapshot(tr, event)
		for pending > 0 {
			for _, h := range s.rt.AwaitNext(math.Inf(1)) {
				f := owner[h]
				delete(owner, h)
				pending--
				s.report.CancelledUnits++
				s.publish(FaultEvent{At: s.rt.Now(), Replica: f.r.ID,
					Kind: FaultKindCancelled})
				s.recordFault(f.r.ID, FaultKindCancelled, 0)
				freeFlight(f)
			}
		}
		batch = batch[:0]
		ready = ready[:0]
		done, readyB = 0, 0
		s.flushBus()
		if snErr != nil {
			return snErr
		}
		if s.spec.OnSnapshot != nil {
			s.spec.OnSnapshot(sn)
			s.recordCheckpoint(event, "cancel")
		}
		return fmt.Errorf("core: %w at exchange event %d", ErrRunCancelled, event)
	}

	// A context cancelled before the run starts stops at event 0 — the
	// same boundary semantics, with nothing in flight yet.
	if ctx.Err() != nil {
		return cancelRun()
	}

	roundT0 = s.rt.Now()
	submit(s.budgetedReplicas(segBudget))
	s.drainResourceEvents() // pilot launch events precede the first round
	s.flushBus()
	tr.Reset(state())

	// noopFires detects policies that fire without making progress: two
	// consecutive no-op fires at the same instant cannot change the
	// trigger's input and would spin forever (e.g. a zero-length window
	// slipped past validation).
	noopFires := 0
	lastFireAt := 0.0

	for pending > 0 || done > 0 || len(ready) > 0 {
		st := state()
		switch tr.Decide(st) {
		case TriggerWait:
			if pending == 0 {
				return fmt.Errorf("core: trigger %q stalled with no MD task outstanding", tr.Name())
			}
			noopFires = 0
			for _, h := range s.rt.AwaitNext(tr.Deadline(st)) {
				f := owner[h]
				delete(owner, h)
				pending--
				res := h.Result()
				tr.Observe(res)
				if res.Failed() && relaunch(f, res) {
					continue
				}
				if latObs != nil && !res.Failed() {
					// Final completion of this segment: its latency spans
					// back to the first submission, so fault-driven
					// relaunch delay widens adaptive windows correctly.
					latObs.ObserveLatency(s.rt.Now() - f.start)
				}
				if aligned {
					// Deferred: the barrier processes the whole batch in
					// submission order at fire time, matching the
					// synchronous pattern's post-barrier accounting.
					done++
					continue
				}
				absorb(f.r, res, &mdAccum)
				s.recordMD(f, res)
				if f.r.Alive {
					ready = append(ready, f.r)
					if f.r.Cycle < segBudget {
						readyB++
					}
				}
				freeFlight(f)
			}
			s.drainResourceEvents()
			s.flushBus()

		case TriggerFireAtDeadline:
			s.rt.SleepUntil(tr.Deadline(st))
			fallthrough
		case TriggerFire:
			s.drainResourceEvents()
			fired := aligned || len(ready) >= 2
			if aligned {
				// One synchronous sub-cycle: process the batch, exchange
				// over all alive replicas, snapshot, advance.
				cycle := event / ndims
				rec := CycleRecord{Cycle: cycle, Dim: dim, At: s.rt.Now(),
					MD: mdAccum, RepExOverhead: prep}
				mdAccum = PhaseRecord{}
				prep = 0
				for _, f := range batch {
					res := f.h.Result()
					absorb(f.r, res, &rec.MD)
					s.recordMD(f, res)
					freeFlight(f)
				}
				batch = batch[:0]
				done = 0
				rec.MD.Wall = s.rt.Now() - mdStart
				if !spec.DisableExchange {
					exStart := s.rt.Now()
					s.exchangePhase(s.aliveReplicas(), dim, cycle, &rec)
					rec.EX.Wall = s.rt.Now() - exStart
					s.recordExchange(event, dim, exStart, &rec)
				}
				rec.Wall = s.rt.Now() - roundT0
				s.report.Records = append(s.report.Records, rec)
				s.report.ExchangeEvents++
				s.snapshotSlots()
				s.publishExchange(event, cycle, dim, &rec)
				s.recordController(fbTr, dim, event)
				if alive < 2 {
					return fmt.Errorf("core: fewer than two replicas alive after cycle %d", cycle)
				}
				event++
				dim = event % ndims
			} else if len(ready) >= 2 {
				// One asynchronous exchange event over the ready subset
				// (FIFO over the collection round). The round's MD wall is
				// the collection span: fire time minus round start.
				rec := CycleRecord{Cycle: event, Dim: dim, At: s.rt.Now(),
					MD: mdAccum, RepExOverhead: prep}
				rec.MD.Wall = s.rt.Now() - roundT0
				mdAccum = PhaseRecord{}
				prep = 0
				exStart := s.rt.Now()
				if !spec.DisableExchange {
					s.exchangePhase(ready, dim, event, &rec)
					s.recordExchange(event, dim, exStart, &rec)
				}
				rec.EX.Wall = s.rt.Now() - exStart
				rec.Wall = rec.EX.Wall
				s.report.Records = append(s.report.Records, rec)
				s.report.ExchangeEvents++
				s.snapshotSlots()
				s.publishExchange(event, event, dim, &rec)
				s.recordController(fbTr, dim, event)
				event++
				dim = event % ndims
			}
			if fired {
				// Respace before the boundary's snapshot so a refit and
				// the checkpoint that persists it land atomically.
				s.maybeRespace(fbTr, event)
				if err := s.maybeSnapshot(tr, event); err != nil {
					return err
				}
				// Cancellation is honoured only at fired boundaries: after
				// a no-op fire, ready-but-unexchanged replicas would not be
				// reconstructible from a snapshot, so the run keeps going
				// to the next real exchange event.
				if ctx.Err() != nil {
					return cancelRun()
				}
			}

			// Replicas with budget left go back to MD; the rest are done.
			next = next[:0]
			if aligned {
				for _, r := range s.replicas {
					if r.Alive && r.Cycle < segBudget {
						next = append(next, r)
					}
				}
			} else {
				for _, r := range ready {
					if r.Alive && r.Cycle < segBudget {
						next = append(next, r)
					}
				}
				ready = ready[:0]
				readyB = 0
			}
			// A new collection round starts only when an exchange event
			// actually fired; after a no-op fire (async, <2 ready) the
			// round — and its MD wall span — continues accumulating.
			if fired {
				roundT0 = s.rt.Now()
			}
			submit(next)
			tr.Reset(state())
			if fired || len(next) > 0 {
				noopFires = 0
			} else {
				if noopFires > 0 && s.rt.Now() <= lastFireAt {
					return fmt.Errorf("core: trigger %q fires without progress (livelock)", tr.Name())
				}
				noopFires++
				lastFireAt = s.rt.Now()
			}
		}
	}
	return nil
}

// exchangePhase performs one exchange along dimension d among the given
// participants: the single-point-energy tasks a dimension requires
// (salt), the exchange-computation task, the Metropolis sweep and the
// parameter swaps. Exchange groups are the grid lines along d restricted
// to alive participants; groups with fewer than two members cannot
// exchange and simply keep simulating. sweep seeds the alternating
// neighbour pairing.
//
// The Metropolis sweep is sharded: the per-pair uniforms are pre-drawn
// serially in pair order (preserving the serial RNG stream exactly), the
// read-only acceptance-probability math fans out across the bounded
// worker pool (evalPairProbs), and decisions plus swaps are applied
// serially in pair order afterwards. Pairs are disjoint — a replica
// belongs to exactly one group along d and to at most one pair per sweep
// — so no pair's probability depends on another pair's swap, and the
// result is bit-identical to the fully serial phase for any
// Spec.ExchangeWorkers setting.
func (s *Simulation) exchangePhase(participants []*Replica, d, sweep int, rec *CycleRecord) {
	in := s.inScratch
	for _, r := range participants {
		if r.Alive {
			in[r.ID] = true
		}
	}
	members, off := s.collectGroups(d, in, 2)
	for _, r := range participants {
		in[r.ID] = false
	}
	nGroups := len(off) - 1
	if nGroups == 0 {
		return
	}

	// Client-side preparation of exchange tasks.
	prep := s.engine.PrepOverhead(nGroups, len(s.spec.Dims))
	s.rt.Overhead(prep)
	rec.RepExOverhead += prep

	// Single-point energy tasks (salt exchange): one per replica, wide
	// as its group, doubling the task count — the paper's stated cause
	// of S-REMD's exchange cost.
	speStart := s.rt.Now()
	spe := s.speScratch[:0]
	for gi := 0; gi < nGroups; gi++ {
		for _, spec := range s.engine.SinglePointTasks(d, members[off[gi]:off[gi+1]], s.spec) {
			spe = append(spe, s.rt.Submit(spec))
		}
	}
	s.speScratch = spe
	if len(spe) > 0 {
		for _, res := range s.rt.AwaitAll(spe) {
			rec.EX.absorb(res)
		}
		s.recordSPE(d, sweep, len(spe), speStart)
	}

	// The exchange-computation task itself (partner determination).
	if exSpec := s.engine.ExchangeTask(d, len(members), s.spec); exSpec != nil {
		rec.EX.absorb(s.rt.Await(s.rt.Submit(exSpec)))
	}

	// Neighbour pair lists, flat across groups in group order — the same
	// pair order the per-group serial sweep produced.
	ids := s.exIDs[:0]
	for _, r := range members {
		ids = append(ids, r.ID)
	}
	s.exIDs = ids
	pairs := s.exPairs[:0]
	for gi := 0; gi < nGroups; gi++ {
		pairs = exchange.AppendNeighborPairs(pairs, ids[off[gi]:off[gi+1]], sweep)
	}
	s.exPairs = pairs

	pairStart := s.rt.Now()
	a0 := rec.Accepted

	// Pre-draw one uniform per pair serially, in pair order: the RNG
	// stream is independent of the worker count, which is what keeps the
	// sharded evaluation below bit-identical to the serial path.
	probs := floatScratch(s.exProbs, len(pairs))
	unis := floatScratch(s.exUnis, len(pairs))
	s.exProbs, s.exUnis = probs, unis
	s.rngDraws += int64(len(pairs))
	for i := range unis {
		unis[i] = s.rng.Float64()
	}

	// Metropolis probabilities: the read-only energy math, sharded.
	s.evalPairProbs(d, pairs, probs)

	// Decisions and swaps, serially in pair order (client side,
	// negligible cost).
	wantOut := s.wantsPairOutcomes()
	for i, pr := range pairs {
		rec.Attempted++
		accepted := unis[i] < probs[i]
		if wantOut {
			// Captured before applySwap: Lo/Hi are the partners'
			// window indices along d at decision time.
			ci := s.coordAlong(s.replicas[pr.I].Slot, d)
			cj := s.coordAlong(s.replicas[pr.J].Slot, d)
			out := PairOutcome{Lo: ci, Hi: cj, ReplicaI: pr.I, ReplicaJ: pr.J,
				Accepted: accepted}
			if out.Lo > out.Hi {
				out.Lo, out.Hi = out.Hi, out.Lo
				out.ReplicaI, out.ReplicaJ = out.ReplicaJ, out.ReplicaI
			}
			s.pairScratch = append(s.pairScratch, out)
		}
		if accepted {
			rec.Accepted++
			s.applySwap(s.replicas[pr.I], s.replicas[pr.J])
		}
	}
	s.recordPairs(d, sweep, len(pairs), rec.Accepted-a0, pairStart)
}
