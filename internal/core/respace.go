package core

import (
	"fmt"
	"math"
)

// Online ladder respacing: the actuator behind the feedback trigger's
// saturation diagnostic. When a dimension's PI controller has been
// pinned at a window clamp long enough (the target acceptance is
// unreachable at any window length — the ladder spacing itself is
// wrong), the dispatcher asks a RespacePlanner for a re-fitted set of
// window values derived from the measured per-pair acceptance profile,
// swaps the dimension's grid onto the new rungs at a checkpoint
// boundary, and resets that dimension's controller so it re-warms
// against the new ladder. The planner lives in internal/respace (it
// reads the analysis collector); core only defines the interface, the
// policy knobs and the apply step, keeping the dependency direction
// core <- analysis intact.

// RespacePlanner proposes a replacement value ladder for a saturated
// exchange dimension. PlanRespace receives the dimension index and a
// copy of the current window values; it returns the re-fitted values
// and true, or ok=false when no refit is possible (insufficient
// acceptance data, degenerate profile, or a re-fit that would not move
// any rung). Implementations must be pure with respect to the
// simulation: same measured history, same answer.
type RespacePlanner interface {
	PlanRespace(dim int, current []float64) (next []float64, ok bool)
}

// RespaceSpec configures online ladder respacing (Spec.Respace; nil
// disables the mechanism entirely).
type RespaceSpec struct {
	// Planner proposes re-fitted ladders. A nil planner disables
	// respacing at run time while keeping the configuration valid —
	// config dry-runs build the spec before any collector exists.
	Planner RespacePlanner
	// AfterSteps is how many consecutive saturated controller steps a
	// dimension must accumulate before it is re-fitted; 0 selects the
	// default (12 — above the trigger's own saturation threshold, so
	// the diagnostic is well established before the grid moves).
	AfterSteps int
	// MaxRefits bounds the refits per dimension; 0 selects the default
	// (3). A ladder that saturates again after exhausting its budget
	// stays on its last grid and the diagnostic keeps reporting.
	MaxRefits int
	// Disabled opts individual dimensions out (indexed like Spec.Dims;
	// a short slice leaves the remaining dimensions enabled).
	Disabled []bool
}

// afterSteps resolves the saturation-persistence threshold.
func (r *RespaceSpec) afterSteps() int {
	if r.AfterSteps > 0 {
		return r.AfterSteps
	}
	return 12
}

// maxRefits resolves the per-dimension refit budget.
func (r *RespaceSpec) maxRefits() int {
	if r.MaxRefits > 0 {
		return r.MaxRefits
	}
	return 3
}

// disabled reports whether dimension d is opted out.
func (r *RespaceSpec) disabled(d int) bool {
	return d >= 0 && d < len(r.Disabled) && r.Disabled[d]
}

// validate rejects unusable respacing parameterizations; dims is the
// spec's dimension count.
func (r *RespaceSpec) validate(dims int) error {
	if r.AfterSteps < 0 {
		return fmt.Errorf("respace after-steps must be non-negative, got %d", r.AfterSteps)
	}
	if r.MaxRefits < 0 {
		return fmt.Errorf("respace max-refits must be non-negative, got %d", r.MaxRefits)
	}
	if len(r.Disabled) > dims {
		return fmt.Errorf("respace disables %d dimensions, spec has %d", len(r.Disabled), dims)
	}
	return nil
}

// RespaceRecord is one applied ladder re-fit, as surfaced in the refit
// history (/status, cmd/repex summary) and carried through snapshots.
type RespaceRecord struct {
	// At is the virtual time of the refit; Event the exchange-event
	// index it fired after.
	At    float64 `json:"at"`
	Event int     `json:"event"`
	// Dim is the re-fitted dimension; Refit its refit ordinal (1-based).
	Dim   int `json:"dim"`
	Refit int `json:"refit"`
	// Old and New are the window values before and after.
	Old []float64 `json:"old"`
	New []float64 `json:"new"`
}

// maybeRespace runs the respacing policy after a fired exchange event,
// before the snapshot for the same boundary is captured (so a refit and
// the checkpoint that persists it are atomic). For every dimension whose
// controller has been saturated past the persistence threshold it asks
// the planner for a re-fitted ladder, sanity-checks the proposal, swaps
// the grid, resets the dimension's controller and publishes a
// RespaceEvent. No RNG draws and no virtual time pass here, so a run
// that never refits is bit-identical with respacing on or off.
func (s *Simulation) maybeRespace(fb *FeedbackTrigger, event int) {
	rs := s.spec.Respace
	if rs == nil || rs.Planner == nil || fb == nil {
		return
	}
	// Refits ride on checkpoint boundaries: resuming the pre-refit
	// snapshot replays the refit identically (controller and collector
	// state restore bit-exact, the planner is pure), and the post-refit
	// snapshot captures the new grid directly.
	if s.spec.SnapshotEvery > 0 && event%s.spec.SnapshotEvery != 0 {
		return
	}
	for d := range s.spec.Dims {
		if rs.disabled(d) || len(s.spec.Dims[d].Values) < 2 || s.refits[d] >= rs.maxRefits() {
			continue
		}
		st := fb.DimStatus(d)
		if !st.Saturated || st.SatSteps < rs.afterSteps() {
			continue
		}
		old := append([]float64(nil), s.spec.Dims[d].Values...)
		next, ok := rs.Planner.PlanRespace(d, append([]float64(nil), old...))
		if !ok || !respaceSane(old, next) {
			continue
		}
		s.applyRespace(d, next)
		fb.ResetDim(d)
		s.respaceMu.Lock()
		s.refits[d]++
		refit := s.refits[d]
		s.respacings = append(s.respacings, RespaceRecord{
			At: s.rt.Now(), Event: event, Dim: d, Refit: refit,
			Old: old, New: append([]float64(nil), next...),
		})
		s.respaceMu.Unlock()
		s.publish(RespaceEvent{At: s.rt.Now(), Event: event, Dim: d,
			Refit: refit, Old: old, New: append([]float64(nil), next...)})
		s.flushBus()
		s.recordRespace(d, event, refit)
	}
}

// respaceSane verifies a planner proposal preserves the ladder's
// contract: same rung count, strictly monotone in the original
// direction, endpoints inside the original [min, max] envelope, and
// every value finite. A proposal failing any check is dropped — the run
// keeps its current grid.
func respaceSane(old, next []float64) bool {
	if len(next) != len(old) || len(old) < 2 {
		return false
	}
	up := old[len(old)-1] > old[0]
	lo, hi := old[0], old[len(old)-1]
	if !up {
		lo, hi = hi, lo
	}
	for i, v := range next {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < lo || v > hi {
			return false
		}
		if i > 0 {
			if up && next[i] <= next[i-1] {
				return false
			}
			if !up && next[i] >= next[i-1] {
				return false
			}
		}
	}
	return true
}

// applyRespace swaps dimension dim's window values for next and
// rebuilds every slot's derived parameters. Slot indices are preserved
// (the re-fit keeps rung count and order), so each replica stays in its
// slot and simply receives that slot's new parameters — the
// nearest-new-rung remap is the identity on slot index. Temperature
// changes rescale velocities by sqrt(Tnew/Told), the same rule applySwap
// uses, so engine state stays consistent with its thermostat.
func (s *Simulation) applyRespace(dim int, next []float64) {
	s.respaceMu.Lock()
	s.spec.Dims[dim].Values = append([]float64(nil), next...)
	for slot := range s.slotParams {
		s.slotParams[slot] = s.paramsForSlot(slot)
	}
	s.respaceMu.Unlock()
	for _, r := range s.replicas {
		oldT := r.Params.TemperatureK
		r.Params = s.slotParams[r.Slot].Clone()
		if r.State != nil && r.Params.TemperatureK != oldT && oldT > 0 {
			scale := math.Sqrt(r.Params.TemperatureK / oldT)
			for i := range r.State.Vel {
				r.State.Vel[i] = r.State.Vel[i].Scale(scale)
			}
		}
	}
}

// LadderValues returns a deep copy of every dimension's current window
// values. Safe for concurrent use with a running dispatcher (the live
// HTTP server reads it mid-run, while a refit may be rewriting the
// grid).
func (s *Simulation) LadderValues() [][]float64 {
	s.respaceMu.Lock()
	defer s.respaceMu.Unlock()
	out := make([][]float64, len(s.spec.Dims))
	for d := range s.spec.Dims {
		out[d] = append([]float64(nil), s.spec.Dims[d].Values...)
	}
	return out
}

// RespaceHistory returns a copy of the applied refits in order. Safe
// for concurrent use like LadderValues.
func (s *Simulation) RespaceHistory() []RespaceRecord {
	s.respaceMu.Lock()
	defer s.respaceMu.Unlock()
	out := make([]RespaceRecord, len(s.respacings))
	copy(out, s.respacings)
	return out
}

// RefitCounts returns the per-dimension applied-refit counts. Safe for
// concurrent use like LadderValues.
func (s *Simulation) RefitCounts() []int {
	s.respaceMu.Lock()
	defer s.respaceMu.Unlock()
	return append([]int(nil), s.refits...)
}
