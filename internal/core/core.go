package core
