package core_test

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

func TestBusRingOverflowDropsOldest(t *testing.T) {
	bus := core.NewBus()
	sub := bus.Subscribe(4)
	for i := 0; i < 10; i++ {
		bus.Publish(core.MDEvent{At: float64(i), Replica: i})
	}
	got := sub.Drain(nil)
	if len(got) != 4 {
		t.Fatalf("drained %d events from a 4-slot ring, want 4", len(got))
	}
	for i, ev := range got {
		if ev.(core.MDEvent).Replica != 6+i {
			t.Fatalf("event %d is replica %d, want %d (oldest must be dropped first)",
				i, ev.(core.MDEvent).Replica, 6+i)
		}
	}
	if sub.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", sub.Dropped())
	}
	if bus.Published() != 10 {
		t.Fatalf("published %d, want 10", bus.Published())
	}
	if again := sub.Drain(nil); len(again) != 0 {
		t.Fatalf("second drain returned %d events, want 0", len(again))
	}
}

// TestStalledSubscriberDoesNotPerturbGoldenRun is the non-blocking
// guarantee of the event bus: a subscriber that never drains its
// (tiny) ring must not change the golden BarrierTrigger output in any
// way — same exchanges, same makespan, same slot history.
func TestStalledSubscriberDoesNotPerturbGoldenRun(t *testing.T) {
	spec := goldenTREMDSpec()
	spec.Bus = core.NewBus()
	sub := spec.Bus.Subscribe(2) // deliberately stalled: never drained
	rep := runVirtual(t, spec, cluster.SuperMIC(), 8, 2881)

	att, acc := sumExchanges(rep)
	if att != 14 || acc != 5 {
		t.Fatalf("exchanges %d/%d with stalled subscriber, golden 5/14", acc, att)
	}
	if math.Abs(rep.Makespan()-625.788863) > 1e-4 {
		t.Fatalf("makespan %.6f with stalled subscriber, golden 625.788863", rep.Makespan())
	}
	if fp := historyFingerprint(rep.SlotHistory); fp != 0xc1c22324216858e1 {
		t.Fatalf("slot-history fingerprint %#x with stalled subscriber, golden 0xc1c22324216858e1", fp)
	}
	if sub.Dropped() == 0 {
		t.Fatal("stalled 2-slot subscriber dropped nothing: the stall was not exercised")
	}
}

func TestBusDeliversEventStream(t *testing.T) {
	spec := smallTREMD(8, 3)
	spec.Bus = core.NewBus()
	sub := spec.Bus.Subscribe(4096)
	rep := runVirtual(t, spec, quietCluster(), 8, 2881)

	var mds, exs int
	var lastEx core.ExchangeEvent
	nextEvent := 0
	for _, ev := range sub.Drain(nil) {
		switch e := ev.(type) {
		case core.MDEvent:
			mds++
			if e.Failed {
				t.Fatalf("failed MD event on a quiet cluster: %+v", e)
			}
		case core.ExchangeEvent:
			if e.Event != nextEvent {
				t.Fatalf("exchange event index %d, want %d (sequential)", e.Event, nextEvent)
			}
			nextEvent++
			exs++
			lastEx = e
		case core.FaultEvent:
			t.Fatalf("fault event on a quiet cluster: %+v", e)
		}
	}
	wantMD := 0
	for _, rec := range rep.Records {
		wantMD += rec.MD.Tasks
	}
	if mds != wantMD {
		t.Fatalf("%d MD events, want %d (one per processed segment)", mds, wantMD)
	}
	if exs != rep.ExchangeEvents {
		t.Fatalf("%d exchange events, want %d", exs, rep.ExchangeEvents)
	}
	// The final event's slots are the final slot assignment, and its
	// pair outcomes sum to the record's counts.
	final := rep.SlotHistory[len(rep.SlotHistory)-1]
	for i, slot := range lastEx.Slots {
		if slot != final[i] {
			t.Fatalf("final exchange event slots %v, history row %v", lastEx.Slots, final)
		}
	}
	att, acc := 0, 0
	for _, p := range lastEx.Pairs {
		if p.Hi != p.Lo+1 {
			t.Fatalf("pair %+v not adjacent with all replicas alive", p)
		}
		att++
		if p.Accepted {
			acc++
		}
	}
	lastRec := rep.Records[len(rep.Records)-1]
	if att != lastRec.Attempted || acc != lastRec.Accepted {
		t.Fatalf("final event pairs %d/%d, record %d/%d", acc, att, lastRec.Accepted, lastRec.Attempted)
	}
}

func TestNoBusMeansNoPublications(t *testing.T) {
	// A nil Spec.Bus must be completely inert (and Published on a nil
	// bus must be safe for status readers).
	var b *core.Bus
	if b.Published() != 0 {
		t.Fatal("nil bus reports publications")
	}
	spec := smallTREMD(4, 2)
	runVirtual(t, spec, quietCluster(), 4, 2881) // would panic on a nil-deref
}
