package core

import (
	"context"
	"errors"
)

// RunState is the lifecycle state of a Simulation: pending → running →
// {completed, failed, cancelled}. It is readable concurrently with the
// run through Simulation.State, which is how external observers (status
// endpoints, run registries) track a run without touching the
// dispatcher.
type RunState int32

const (
	// RunPending is a constructed simulation that has not started.
	RunPending RunState = iota
	// RunRunning is a simulation inside Run/RunContext.
	RunRunning
	// RunCompleted is a run that finished its cycle budget.
	RunCompleted
	// RunFailed is a run that returned a non-cancellation error.
	RunFailed
	// RunCancelled is a run stopped through its context; its error wraps
	// ErrRunCancelled and its final snapshot (when a Spec.OnSnapshot hook
	// is attached) resumes exactly like a periodic one.
	RunCancelled
)

// String returns the lower-case state name used in status payloads.
func (s RunState) String() string {
	switch s {
	case RunPending:
		return "pending"
	case RunRunning:
		return "running"
	case RunCompleted:
		return "completed"
	case RunFailed:
		return "failed"
	case RunCancelled:
		return "cancelled"
	}
	return "unknown"
}

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == RunCompleted || s == RunFailed || s == RunCancelled
}

// ErrRunCancelled is wrapped by the error RunContext returns when the
// run was stopped through its context. errors.Is(err, ErrRunCancelled)
// distinguishes cancellation from genuine failures.
var ErrRunCancelled = errors.New("run cancelled")

// State returns the run's lifecycle state. Safe to call from any
// goroutine at any time.
func (s *Simulation) State() RunState { return RunState(s.state.Load()) }

func (s *Simulation) setState(st RunState) { s.state.Store(int32(st)) }

// Run executes the simulation under the spec's exchange-trigger policy
// (derived from the RE pattern when none is set explicitly) and returns
// the report. It is RunContext with a background (non-cancellable)
// context.
func (s *Simulation) Run() (*Report, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the simulation like Run, stopping early when ctx
// is cancelled. Cancellation takes effect at the next exchange-event
// boundary: in-flight MD segments are failed cleanly (awaited and
// discarded, never absorbed into replica state), a final snapshot of
// the boundary is delivered through Spec.OnSnapshot, queued bus events
// are flushed, and the run returns its partial report with an error
// wrapping ErrRunCancelled. Because the forced snapshot has exactly the
// shape of a periodic one — taken right after a fire, discarded
// segments simply redone on resume — resuming it reproduces the
// uninterrupted run's slot history bit for bit.
func (s *Simulation) RunContext(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.setState(RunRunning)
	// A resumed run back-dates its start by the snapshot's elapsed time,
	// keeping Makespan and Utilization cumulative over the whole
	// simulation rather than just the post-resume segment.
	s.report.Start = s.rt.Now() - s.resumeElapsed
	tr, err := s.spec.triggerPolicy()
	if err == nil {
		s.report.Trigger = tr.Name()
		err = s.dispatch(ctx, tr)
	}
	s.report.End = s.rt.Now()
	switch {
	case err == nil:
		s.setState(RunCompleted)
	case errors.Is(err, ErrRunCancelled):
		s.setState(RunCancelled)
	default:
		s.setState(RunFailed)
	}
	return s.report, err
}
