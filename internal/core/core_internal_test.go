package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/exchange"
	"repro/internal/localexec"
	"repro/internal/md"
	"repro/internal/task"
)

// stubEngine is a minimal Engine for unit-testing the orchestrator
// without cost models or real MD: MD tasks are instantaneous no-ops and
// energies are deterministic functions of the slot.
type stubEngine struct {
	energyOf func(r *Replica) float64
	crossOf  func(r *Replica, under md.Params) float64
}

func (e *stubEngine) Name() string                    { return "stub" }
func (e *stubEngine) InitReplica(r *Replica, s *Spec) {}
func (e *stubEngine) MDTask(r *Replica, s *Spec, dim int) *task.Spec {
	return &task.Spec{Name: "md", Kind: task.MD, Cores: s.CoresPerReplica,
		Run: func() error { return nil }}
}
func (e *stubEngine) ExchangeTask(dim, n int, s *Spec) *task.Spec { return nil }
func (e *stubEngine) SinglePointTasks(dim int, g []*Replica, s *Spec) []*task.Spec {
	return nil
}
func (e *stubEngine) OwnEnergy(r *Replica) float64 {
	if e.energyOf != nil {
		return e.energyOf(r)
	}
	return 0
}
func (e *stubEngine) CrossEnergy(r *Replica, under md.Params) float64 {
	if e.crossOf != nil {
		return e.crossOf(r, under)
	}
	return 0
}
func (e *stubEngine) TorsionIndex(label string) int          { return 0 }
func (e *stubEngine) PrepOverhead(nTasks, ndims int) float64 { return 0 }

func tremdSpec(nT int) *Spec {
	return &Spec{
		Name:            "t-test",
		Dims:            []Dimension{{Type: exchange.Temperature, Values: GeometricTemperatures(273, 373, nT)}},
		Pattern:         PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   100,
		Cycles:          2,
		Seed:            7,
	}
}

func tsuSpec() *Spec {
	return &Spec{
		Name: "tsu-test",
		Dims: []Dimension{
			{Type: exchange.Temperature, Values: GeometricTemperatures(273, 373, 3)},
			{Type: exchange.Salt, Values: []float64{0.1, 0.2, 0.4}},
			{Type: exchange.Umbrella, Values: UniformWindows(4), Torsion: "phi", K: UmbrellaK002},
		},
		Pattern:         PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   100,
		Cycles:          2,
		Seed:            11,
	}
}

func TestSpecValidate(t *testing.T) {
	ok := tsuSpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no dims", func(s *Spec) { s.Dims = nil }},
		{"empty windows", func(s *Spec) { s.Dims[0].Values = nil }},
		{"bad temperature", func(s *Spec) { s.Dims[0].Values = []float64{-3} }},
		{"negative salt", func(s *Spec) { s.Dims[1].Values = []float64{-0.1} }},
		{"umbrella no torsion", func(s *Spec) { s.Dims[2].Torsion = "" }},
		{"zero cores", func(s *Spec) { s.CoresPerReplica = 0 }},
		{"zero cycles", func(s *Spec) { s.Cycles = 0 }},
		{"async no window", func(s *Spec) { s.Pattern = PatternAsynchronous; s.AsyncWindow = 0 }},
	}
	for _, tc := range cases {
		s := tsuSpec()
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestGeometricTemperatures(t *testing.T) {
	ts := GeometricTemperatures(273, 373, 6)
	if len(ts) != 6 || ts[0] != 273 {
		t.Fatalf("bad ladder %v", ts)
	}
	if math.Abs(ts[5]-373) > 1e-9 {
		t.Fatalf("last T %v, want 373", ts[5])
	}
	ratio := ts[1] / ts[0]
	for i := 1; i < len(ts); i++ {
		if math.Abs(ts[i]/ts[i-1]-ratio) > 1e-9 {
			t.Fatal("ladder not geometric")
		}
	}
}

func TestUniformWindows(t *testing.T) {
	ws := UniformWindows(8)
	if len(ws) != 8 {
		t.Fatalf("got %d windows", len(ws))
	}
	if ws[0] != 0 {
		t.Fatalf("first window %v, want 0", ws[0])
	}
	for _, w := range ws {
		if w <= -math.Pi-1e-9 || w > math.Pi+1e-9 {
			t.Fatalf("window %v out of wrapped range", w)
		}
	}
}

func TestDimCodeAndReplicas(t *testing.T) {
	s := tsuSpec()
	if s.DimCode() != "TSU" {
		t.Fatalf("DimCode = %q, want TSU", s.DimCode())
	}
	if s.Replicas() != 3*3*4 {
		t.Fatalf("Replicas = %d, want 36", s.Replicas())
	}
}

func TestUmbrellaK002Value(t *testing.T) {
	// 0.02 kcal/mol/deg² in rad²: 0.02 * (180/pi)^2 ≈ 65.65.
	if math.Abs(UmbrellaK002-65.65) > 0.05 {
		t.Fatalf("UmbrellaK002 = %v, want ~65.65", UmbrellaK002)
	}
}

func newTestSim(t *testing.T, spec *Spec, eng Engine, cores int) *Simulation {
	t.Helper()
	rt := localexec.New(cores)
	sim, err := New(spec, eng, rt)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestParamsForSlotTSU(t *testing.T) {
	spec := tsuSpec()
	sim := newTestSim(t, spec, &stubEngine{}, 64)
	grid := sim.Grid()
	for slot := 0; slot < grid.Size(); slot++ {
		coord := grid.Coord(slot)
		p := sim.SlotParams(slot)
		if p.TemperatureK != spec.Dims[0].Values[coord[0]] {
			t.Fatalf("slot %d temperature %v, want %v", slot, p.TemperatureK, spec.Dims[0].Values[coord[0]])
		}
		if p.SaltM != spec.Dims[1].Values[coord[1]] {
			t.Fatalf("slot %d salt %v", slot, p.SaltM)
		}
		if len(p.Restraints) != 1 {
			t.Fatalf("slot %d has %d restraints, want 1", slot, len(p.Restraints))
		}
		if p.Restraints[0].Center != spec.Dims[2].Values[coord[2]] {
			t.Fatalf("slot %d restraint center %v", slot, p.Restraints[0].Center)
		}
	}
}

func TestModeDetection(t *testing.T) {
	spec := tremdSpec(8)
	simI := newTestSim(t, spec, &stubEngine{}, 8)
	if simI.Report().Mode != ModeI {
		t.Fatalf("8 cores / 8 replicas: mode %v, want I", simI.Report().Mode)
	}
	spec2 := tremdSpec(8)
	simII := newTestSim(t, spec2, &stubEngine{}, 4)
	if simII.Report().Mode != ModeII {
		t.Fatalf("4 cores / 8 replicas: mode %v, want II", simII.Report().Mode)
	}
}

func TestApplySwapExchangesSlotsAndParams(t *testing.T) {
	spec := tremdSpec(4)
	sim := newTestSim(t, spec, &stubEngine{}, 8)
	a, b := sim.replicas[0], sim.replicas[1]
	ta, tb := a.Params.TemperatureK, b.Params.TemperatureK
	sim.applySwap(a, b)
	if a.Slot != 1 || b.Slot != 0 {
		t.Fatalf("slots after swap: %d,%d", a.Slot, b.Slot)
	}
	if a.Params.TemperatureK != tb || b.Params.TemperatureK != ta {
		t.Fatal("parameters not swapped")
	}
	if sim.replicaAt[0] != b.ID || sim.replicaAt[1] != a.ID {
		t.Fatal("replicaAt mapping not updated")
	}
}

func TestApplySwapRescalesVelocities(t *testing.T) {
	spec := tremdSpec(2)
	sim := newTestSim(t, spec, &stubEngine{}, 4)
	a, b := sim.replicas[0], sim.replicas[1]
	a.State = md.NewState(2)
	b.State = md.NewState(2)
	a.State.Vel[0] = md.Vec3{X: 1}
	b.State.Vel[0] = md.Vec3{X: 1}
	ta, tb := a.Params.TemperatureK, b.Params.TemperatureK
	sim.applySwap(a, b)
	wantA := math.Sqrt(tb / ta)
	if math.Abs(a.State.Vel[0].X-wantA) > 1e-12 {
		t.Fatalf("replica a velocity scale %v, want %v", a.State.Vel[0].X, wantA)
	}
	wantB := math.Sqrt(ta / tb)
	if math.Abs(b.State.Vel[0].X-wantB) > 1e-12 {
		t.Fatalf("replica b velocity scale %v, want %v", b.State.Vel[0].X, wantB)
	}
}

func TestLiveGroupsSkipDeadReplicas(t *testing.T) {
	spec := tsuSpec()
	sim := newTestSim(t, spec, &stubEngine{}, 64)
	sim.replicas[0].Alive = false
	sim.replicas[7].Alive = false
	for d := 0; d < 3; d++ {
		total := 0
		for _, g := range sim.liveGroups(d) {
			total += len(g)
			for _, r := range g {
				if !r.Alive {
					t.Fatal("dead replica in live group")
				}
			}
		}
		if total != sim.Grid().Size()-2 {
			t.Fatalf("dim %d live group total %d, want %d", d, total, sim.Grid().Size()-2)
		}
	}
}

// hotColdEngine gives replicas an energy proportional to their slot so
// that temperature swaps are always accepted for adjacent pairs with
// inverted energy ordering.
func TestSyncRunExchangesOccur(t *testing.T) {
	spec := tremdSpec(8)
	spec.Cycles = 6
	eng := &stubEngine{energyOf: func(r *Replica) float64 {
		// Colder slots get HIGHER energy: uphill ordering makes every
		// neighbour swap favourable (p = 1).
		return -float64(r.Slot) * 100
	}}
	sim := newTestSim(t, spec, eng, 16)
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 6 {
		t.Fatalf("records = %d, want 6", len(rep.Records))
	}
	attempted, accepted := 0, 0
	for _, rec := range rep.Records {
		attempted += rec.Attempted
		accepted += rec.Accepted
	}
	if attempted == 0 {
		t.Fatal("no exchanges attempted")
	}
	if accepted != attempted {
		t.Fatalf("accepted %d of %d; energy ordering should force all accepts", accepted, attempted)
	}
	for _, r := range sim.Replicas() {
		if r.Cycle != 6 {
			t.Fatalf("replica %d completed %d cycles, want 6", r.ID, r.Cycle)
		}
	}
}

func TestSlotPermutationInvariant(t *testing.T) {
	spec := tsuSpec()
	spec.Cycles = 4
	eng := &stubEngine{
		energyOf: func(r *Replica) float64 { return float64(r.Slot%7) * 3 },
		crossOf:  func(r *Replica, under md.Params) float64 { return under.SaltM * 10 },
	}
	sim := newTestSim(t, spec, eng, 64)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	slots := make([]int, 0, len(sim.Replicas()))
	for _, r := range sim.Replicas() {
		slots = append(slots, r.Slot)
	}
	sort.Ints(slots)
	for i, s := range slots {
		if s != i {
			t.Fatal("slots are not a permutation after exchanges")
		}
	}
	for slot, id := range sim.replicaAt {
		if sim.replicas[id].Slot != slot {
			t.Fatal("replicaAt inconsistent with replica slots")
		}
	}
}

// Property: the slot permutation invariant holds for random seeds and
// grid shapes.
func TestPropertySlotPermutation(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		spec := &Spec{
			Name: "prop",
			Dims: []Dimension{
				{Type: exchange.Temperature, Values: GeometricTemperatures(280, 360, int(a%3)+2)},
				{Type: exchange.Umbrella, Values: UniformWindows(int(b%3) + 2), Torsion: "phi", K: 10},
			},
			Pattern:         PatternSynchronous,
			CoresPerReplica: 1,
			StepsPerCycle:   10,
			Cycles:          3,
			Seed:            seed,
		}
		eng := &stubEngine{
			energyOf: func(r *Replica) float64 { return float64((r.Slot*13)%11) - 5 },
			crossOf:  func(r *Replica, under md.Params) float64 { return float64(len(under.Restraints)) },
		}
		rt := localexec.New(32)
		sim, err := New(spec, eng, rt)
		if err != nil {
			return false
		}
		if _, err := sim.Run(); err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, r := range sim.Replicas() {
			if seen[r.Slot] {
				return false
			}
			seen[r.Slot] = true
		}
		return len(seen) == spec.Replicas()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiencyFormulas(t *testing.T) {
	if e := WeakScalingEfficiency(100, 125); math.Abs(e-80) > 1e-9 {
		t.Fatalf("weak efficiency %v, want 80", e)
	}
	if e := StrongScalingEfficiency(1000, 125, 8); math.Abs(e-100) > 1e-9 {
		t.Fatalf("strong efficiency %v, want 100 (ideal)", e)
	}
	if WeakScalingEfficiency(1, 0) != 0 || StrongScalingEfficiency(1, 0, 2) != 0 {
		t.Fatal("zero denominators must give 0")
	}
}

func TestReportDecompose(t *testing.T) {
	mdPhase := func(exec float64) PhaseRecord {
		return PhaseRecord{Tasks: 1, SumExec: exec, MaxExec: exec}
	}
	md0 := mdPhase(10)
	md0.MaxData, md0.MaxLaunch = 1, 2
	r := &Report{
		Records: []CycleRecord{
			{Cycle: 0, Dim: 0, MD: md0, EX: PhaseRecord{Wall: 5}, RepExOverhead: 0.5, Wall: 18},
			{Cycle: 0, Dim: 1, MD: mdPhase(10), EX: PhaseRecord{Wall: 7}, Wall: 17},
			{Cycle: 1, Dim: 0, MD: mdPhase(12), EX: PhaseRecord{Wall: 5}, Wall: 17},
			{Cycle: 1, Dim: 1, MD: mdPhase(8), EX: PhaseRecord{Wall: 7}, Wall: 15},
		},
	}
	d := r.Decompose()
	if math.Abs(d.TMD-20) > 1e-9 { // (10+10+12+8)/2 cycles
		t.Fatalf("TMD %v, want 20", d.TMD)
	}
	if math.Abs(d.TEX-12) > 1e-9 {
		t.Fatalf("TEX %v, want 12", d.TEX)
	}
	if math.Abs(r.AvgCycleTime()-33.5) > 1e-9 { // (18+17+17+15)/2
		t.Fatalf("AvgCycleTime %v, want 33.5", r.AvgCycleTime())
	}
	tmd0, tex0 := r.DimDecompose(0)
	if tmd0 != 11 || tex0 != 5 {
		t.Fatalf("DimDecompose(0) = %v,%v, want 11,5", tmd0, tex0)
	}
}

func TestCycleRecordAcceptance(t *testing.T) {
	rec := CycleRecord{Attempted: 4, Accepted: 1}
	if rec.AcceptanceRatio() != 0.25 {
		t.Fatalf("ratio %v, want 0.25", rec.AcceptanceRatio())
	}
	if (CycleRecord{}).AcceptanceRatio() != 0 {
		t.Fatal("empty ratio != 0")
	}
}
