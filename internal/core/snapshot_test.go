package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/localexec"
)

// TestSnapshotResumeDeterminism is the checkpoint/restart acceptance
// test: a run killed after its snapshot and resumed from it must produce
// exactly the slot history of the uninterrupted run — same exchange
// decisions, same acceptance counts — because replica state and both RNG
// streams (orchestrator and engine) are restored exactly.
func TestSnapshotResumeDeterminism(t *testing.T) {
	mkSpec := func() *core.Spec {
		s := smallTREMD(8, 4)
		s.Name = "ckpt"
		return s
	}

	var snaps []*core.Snapshot
	spec := mkSpec()
	spec.SnapshotEvery = 2
	spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	full := runVirtual(t, spec, quietCluster(), 8, 2881)
	if len(snaps) != 2 {
		t.Fatalf("4 events at SnapshotEvery=2 produced %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Events != 2 || snaps[0].Trigger != "barrier" {
		t.Fatalf("first snapshot at event %d under %q, want 2 under barrier",
			snaps[0].Events, snaps[0].Trigger)
	}

	// Serialize/deserialize, simulating the kill + restart.
	data, err := snaps[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}

	resumedSpec := mkSpec()
	resumedSpec.Resume = snap
	resumed := runVirtual(t, resumedSpec, quietCluster(), 8, 2881)

	if resumed.ExchangeEvents != full.ExchangeEvents {
		t.Fatalf("resumed run fired %d events, uninterrupted %d",
			resumed.ExchangeEvents, full.ExchangeEvents)
	}
	if len(resumed.SlotHistory) != len(full.SlotHistory) {
		t.Fatalf("resumed history %d rows, full %d",
			len(resumed.SlotHistory), len(full.SlotHistory))
	}
	if historyFingerprint(resumed.SlotHistory) != historyFingerprint(full.SlotHistory) {
		t.Fatalf("resumed slot history diverged from the uninterrupted run:\nfull    %v\nresumed %v",
			full.SlotHistory, resumed.SlotHistory)
	}
	// Post-resume records cover events 3 and 4 only; their exchange
	// attempts must match the uninterrupted run's last two records.
	_, resumedAcc := sumExchanges(resumed)
	wantAcc := 0
	for _, rec := range full.Records[2:] {
		wantAcc += rec.Accepted
	}
	if resumedAcc != wantAcc {
		t.Fatalf("resumed accepted %d exchanges, want %d (uninterrupted events 3-4)",
			resumedAcc, wantAcc)
	}
	// The resumed report stays cumulative: its start is back-dated by
	// the snapshot's elapsed time, so Makespan covers the whole
	// simulation (plus one fresh batch-queue wait) and Utilization stays
	// a physical fraction instead of counting pre-snapshot MD exec
	// against a post-resume span.
	if resumed.Makespan() < full.Makespan() {
		t.Fatalf("resumed makespan %v below uninterrupted %v: not cumulative",
			resumed.Makespan(), full.Makespan())
	}
	if u := resumed.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("resumed utilization %v out of (0,1]", u)
	}
}

func TestSnapshotRoundTripPreservesState(t *testing.T) {
	var snaps []*core.Snapshot
	spec := smallTREMD(6, 2)
	spec.SnapshotEvery = 1
	spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	runVirtual(t, spec, quietCluster(), 6, 2881)
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots, want 2 (SnapshotEvery=1, 2 events)", len(snaps))
	}
	sn := snaps[1]
	if sn.Version != core.SnapshotVersion || sn.Name != spec.Name {
		t.Fatalf("snapshot header %d/%q", sn.Version, sn.Name)
	}
	if sn.EngineDraws < 0 {
		t.Fatal("virtual engine must be replayable (EngineDraws >= 0)")
	}
	if sn.RNGDraws <= 0 {
		t.Fatal("orchestrator RNG draws not recorded")
	}
	data, err := sn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Events != sn.Events || back.RNGDraws != sn.RNGDraws ||
		back.EngineDraws != sn.EngineDraws || len(back.Replicas) != len(sn.Replicas) {
		t.Fatalf("round trip lost state: %+v vs %+v", back, sn)
	}
	slots := map[int]bool{}
	for _, rs := range back.Replicas {
		if slots[rs.Slot] {
			t.Fatal("snapshot slots are not a permutation")
		}
		slots[rs.Slot] = true
		if len(rs.Synth) == 0 {
			t.Fatal("virtual engine synth coordinates missing from snapshot")
		}
	}
}

func TestResumeValidation(t *testing.T) {
	var snaps []*core.Snapshot
	spec := smallTREMD(6, 2)
	spec.SnapshotEvery = 1
	spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	runVirtual(t, spec, quietCluster(), 6, 2881)
	snap := snaps[0]

	eng := func() *rngEngine { return &rngEngine{rng: rand.New(rand.NewSource(5))} }

	// Wrong replica count: the snapshot belongs to a different grid.
	other := smallTREMD(8, 2)
	other.Resume = snap
	if _, err := core.New(other, eng(), localexec.New(8)); err == nil {
		t.Fatal("snapshot with wrong replica count accepted")
	}

	// Wrong trigger: resuming a barrier snapshot under a count policy.
	mismatch := smallTREMD(6, 2)
	mismatch.Pattern = core.PatternAsynchronous
	mismatch.Trigger = core.NewCountTrigger(2)
	mismatch.Resume = snap
	simu, err := core.New(mismatch, eng(), localexec.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simu.Run(); err == nil {
		t.Fatal("barrier snapshot resumed under count trigger")
	}

	// Corrupt slots: two replicas in the same slot.
	dup := smallTREMD(6, 2)
	badSnap, err := core.DecodeSnapshot(mustEncode(t, snap))
	if err != nil {
		t.Fatal(err)
	}
	badSnap.Replicas[1].Slot = badSnap.Replicas[0].Slot
	dup.Resume = badSnap
	if _, err := core.New(dup, eng(), localexec.New(8)); err == nil {
		t.Fatal("non-permutation snapshot slots accepted")
	}

	// Corrupt IDs: the same replica restored twice (distinct slots, so
	// the slot check alone would not catch it).
	dupID := smallTREMD(6, 2)
	badID, err := core.DecodeSnapshot(mustEncode(t, snap))
	if err != nil {
		t.Fatal(err)
	}
	badID.Replicas[1].ID = badID.Replicas[0].ID
	dupID.Resume = badID
	if _, err := core.New(dupID, eng(), localexec.New(8)); err == nil {
		t.Fatal("duplicate snapshot replica IDs accepted")
	}

	// Wrong simulation: a snapshot from a different run name.
	renamed := smallTREMD(6, 2)
	renamed.Name = "some-other-simulation"
	renamed.Resume = snap
	if _, err := core.New(renamed, eng(), localexec.New(8)); err == nil {
		t.Fatal("snapshot from a different simulation accepted")
	}
}

func mustEncode(t *testing.T, sn *core.Snapshot) []byte {
	t.Helper()
	data, err := sn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSnapshotsDisabledByDefault(t *testing.T) {
	spec := smallTREMD(4, 2)
	called := false
	spec.OnSnapshot = func(*core.Snapshot) { called = true } // SnapshotEvery unset
	runVirtual(t, spec, quietCluster(), 4, 2881)
	if called {
		t.Fatal("snapshot captured without SnapshotEvery")
	}
}
