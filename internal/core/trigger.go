package core

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"repro/internal/ring"
	"repro/internal/task"
)

// TriggerState is the dispatcher bookkeeping snapshot handed to trigger
// policies when they are consulted.
type TriggerState struct {
	// Now is the runtime clock.
	Now float64
	// Pending counts replicas whose MD segment is still executing.
	Pending int
	// Ready counts replicas that have completed their MD segment and
	// await an exchange.
	Ready int
	// ReadyBudget counts the ready replicas that still have MD segments
	// left after the next exchange (i.e. waiting for a window boundary
	// is not pointless).
	ReadyBudget int
	// Alive counts live replicas.
	Alive int
	// Dim is the exchange dimension the next fire will exchange along.
	// Multi-dimensional grids rotate dimensions round-robin, and
	// per-dimension policies (FeedbackTrigger) pick that dimension's
	// actuator settings from it.
	Dim int
}

// TriggerDecision is a trigger policy's verdict for the current
// dispatcher state.
type TriggerDecision int

const (
	// TriggerWait keeps collecting MD completions.
	TriggerWait TriggerDecision = iota
	// TriggerFire runs the exchange step now.
	TriggerFire
	// TriggerFireAtDeadline idles the orchestrator until the policy's
	// deadline (the window boundary) and then runs the exchange step —
	// the utilization cost of fixed-window asynchronous RE (§4.6).
	TriggerFireAtDeadline
)

// Trigger is a pluggable exchange-trigger criterion: the policy deciding
// *when* replicas transition from the MD phase to the exchange phase.
// The paper's two Replica Exchange Patterns are the two canonical
// policies (BarrierTrigger for synchronous, WindowTrigger for
// asynchronous); CountTrigger, AdaptiveTrigger and FeedbackTrigger
// extend the taxonomy. All policies drive the same event-driven
// dispatcher loop in Simulation.dispatch.
type Trigger interface {
	// Name identifies the policy in reports.
	Name() string
	// Aligned reports a global-barrier policy: the dispatcher then waits
	// for the full replica set, processes MD results in submission order
	// and uses synchronous (cycle, dimension) accounting. Non-aligned
	// policies exchange among ready subsets with free-running accounting.
	Aligned() bool
	// Deadline returns the absolute runtime time until which the
	// dispatcher may block waiting for completions; +Inf blocks until
	// the next completion.
	Deadline(st TriggerState) float64
	// Decide is consulted whenever the dispatcher state changes (after
	// completions are absorbed, or after the deadline passes with none).
	Decide(st TriggerState) TriggerDecision
	// Observe is invoked for every completed MD segment, letting
	// adaptive policies track execution-time statistics.
	Observe(res task.Result)
	// Reset begins a new collection round; called once when dispatch
	// starts and again after every exchange step.
	Reset(st TriggerState)
}

// ExchangeObserver is an optional Trigger extension: a policy that also
// implements it is fed every completed exchange event's outcomes by the
// dispatcher, synchronously and independently of Spec.Bus. This is the
// feedback path of closed-loop policies (FeedbackTrigger): unlike a bus
// subscription, the hook cannot drop events, so resumed runs replay the
// same controller inputs deterministically.
type ExchangeObserver interface {
	// ObserveExchange is invoked right after the dispatcher publishes an
	// exchange event, before the next collection round opens. The event
	// (including its Pairs and Slots slices) is shared with other
	// consumers and must not be mutated or retained.
	ObserveExchange(ev ExchangeEvent)
}

// LatencyObserver is an optional Trigger extension: a policy that also
// implements it is fed each MD segment's completion latency — first
// submission to final successful completion, including every relaunch
// retry and any queueing delay. This is the dispersion signal
// window-adapting policies (AdaptiveTrigger, FeedbackTrigger's warm-up)
// track: the raw per-attempt exec times Observe sees miss fault-driven
// delay entirely, so a flaky replica would never widen the window.
type LatencyObserver interface {
	// ObserveLatency is invoked once per finally-completed MD segment
	// with its completion latency in runtime seconds.
	ObserveLatency(latency float64)
}

// StatefulTrigger is an optional Trigger extension for policies whose
// accumulated controller state must survive checkpoint/restart (e.g.
// FeedbackTrigger's rolling outcome window and controlled window
// length). The dispatcher embeds EncodeState's bytes in each Snapshot
// and replays them through RestoreState on resume, so a resumed run
// makes the same trigger decisions as the uninterrupted one.
type StatefulTrigger interface {
	Trigger
	// EncodeState serializes the controller state.
	EncodeState() ([]byte, error)
	// RestoreState replaces the controller state with one produced by
	// EncodeState.
	RestoreState(data []byte) error
}

// ---------------------------------------------------------------------------
// BarrierTrigger: the synchronous pattern.

// BarrierTrigger fires only when every alive replica has finished its MD
// segment: the paper's synchronous RE pattern (global barrier after the
// MD phase and after the exchange phase).
type BarrierTrigger struct{}

// NewBarrierTrigger returns the synchronous-pattern policy.
func NewBarrierTrigger() *BarrierTrigger { return &BarrierTrigger{} }

// Name identifies the policy.
func (t *BarrierTrigger) Name() string { return "barrier" }

// Aligned reports true: the barrier is a phase-aligned policy.
func (t *BarrierTrigger) Aligned() bool { return true }

// Deadline is +Inf: the barrier always waits for the next completion.
func (t *BarrierTrigger) Deadline(TriggerState) float64 { return math.Inf(1) }

// Decide fires once no MD segment is outstanding.
func (t *BarrierTrigger) Decide(st TriggerState) TriggerDecision {
	if st.Pending == 0 {
		return TriggerFire
	}
	return TriggerWait
}

// Observe is a no-op.
func (t *BarrierTrigger) Observe(task.Result) {}

// Reset is a no-op.
func (t *BarrierTrigger) Reset(TriggerState) {}

// ---------------------------------------------------------------------------
// WindowTrigger: the asynchronous pattern.

// WindowTrigger fires at fixed real-time window boundaries: the paper's
// asynchronous RE pattern (§3.2.1, Figure 1b). Replicas that finished
// their MD segment when the window closes exchange among themselves
// while the rest keep simulating. A positive MinReady additionally fires
// as soon as that many replicas are ready, before the boundary.
type WindowTrigger struct {
	// Window is the real-time period in runtime seconds.
	Window float64
	// MinReady, when positive, triggers an exchange before the window
	// expires once that many replicas are ready.
	MinReady int

	windowEnd float64
}

// NewWindowTrigger returns the asynchronous-pattern policy.
func NewWindowTrigger(window float64, minReady int) *WindowTrigger {
	return &WindowTrigger{Window: window, MinReady: minReady}
}

// Validate rejects parameterizations that cannot make progress.
func (t *WindowTrigger) Validate() error {
	if t.Window <= 0 {
		return fmt.Errorf("window trigger requires a positive window, got %g", t.Window)
	}
	return nil
}

// Name identifies the policy.
func (t *WindowTrigger) Name() string { return "window" }

// Aligned reports false: windows exchange among ready subsets.
func (t *WindowTrigger) Aligned() bool { return false }

// Deadline is the current window boundary.
func (t *WindowTrigger) Deadline(TriggerState) float64 { return t.windowEnd }

// Decide fires at the window boundary, early once MinReady replicas are
// ready, or immediately when nothing is left to wait for.
func (t *WindowTrigger) Decide(st TriggerState) TriggerDecision {
	return windowDecision(st, t.windowEnd, t.MinReady)
}

// Observe is a no-op.
func (t *WindowTrigger) Observe(task.Result) {}

// Reset opens the next window.
func (t *WindowTrigger) Reset(st TriggerState) { t.windowEnd = st.Now + t.Window }

// windowDecision is the fire rule shared by the window-style policies:
// fire early once minReady replicas are ready, fire at the window
// boundary, idle to the boundary when every running segment has
// finished but replicas will resubmit, and flush immediately when
// nothing is left to wait for.
func windowDecision(st TriggerState, windowEnd float64, minReady int) TriggerDecision {
	if minReady > 0 && st.Ready >= minReady && st.Ready >= 2 {
		return TriggerFire
	}
	if st.Now >= windowEnd {
		return TriggerFire
	}
	if st.Pending == 0 {
		if st.ReadyBudget == 0 {
			// Final flush: no replica will resubmit, so idling to the
			// boundary would be pure waste.
			return TriggerFire
		}
		// Pure window criterion: ready replicas idle until the boundary
		// even though every running MD segment has finished — the
		// utilization cost of fixed-window asynchronous RE (§4.6).
		return TriggerFireAtDeadline
	}
	return TriggerWait
}

// ---------------------------------------------------------------------------
// CountTrigger: exchange as soon as N replicas are ready.

// CountTrigger fires as soon as Count replicas are ready, with no
// real-time window at all: the "number of replicas" transition criterion
// from the paper's flexibility argument. Lagging replicas never block
// the exchange and ready replicas never idle at a boundary.
type CountTrigger struct {
	// Count is the ready-replica threshold (values below 2 behave as 2,
	// the smallest exchangeable subset).
	Count int
}

// NewCountTrigger returns a count-criterion policy.
func NewCountTrigger(count int) *CountTrigger { return &CountTrigger{Count: count} }

// Name identifies the policy.
func (t *CountTrigger) Name() string { return "count" }

// Aligned reports false: counts exchange among ready subsets.
func (t *CountTrigger) Aligned() bool { return false }

// Deadline is +Inf: the policy is purely completion-driven.
func (t *CountTrigger) Deadline(TriggerState) float64 { return math.Inf(1) }

// Decide fires at the threshold, or when no MD segment is outstanding
// (so the tail of a run always drains).
func (t *CountTrigger) Decide(st TriggerState) TriggerDecision {
	n := t.Count
	if n < 2 {
		n = 2
	}
	if st.Ready >= n {
		return TriggerFire
	}
	if st.Pending == 0 {
		return TriggerFire
	}
	return TriggerWait
}

// Observe is a no-op.
func (t *CountTrigger) Observe(task.Result) {}

// Reset is a no-op.
func (t *CountTrigger) Reset(TriggerState) {}

// ---------------------------------------------------------------------------
// AdaptiveTrigger: a window that tracks observed MD-time dispersion.

// execStats is a Welford accumulator over completed MD segments'
// completion latencies (submission to final completion, including
// relaunch retries): the dispersion estimate behind the adaptive window
// (AdaptiveTrigger, and FeedbackTrigger's warm-up fallback). The
// dispatcher feeds it through the LatencyObserver hook.
type execStats struct {
	n        int
	mean, m2 float64
}

// add folds one completion latency in.
func (e *execStats) add(x float64) {
	e.n++
	d := x - e.mean
	e.mean += d / float64(e.n)
	e.m2 += d * (x - e.mean)
}

// window returns mean + gain·stddev clamped to [lo, hi], or initial
// until two segments were observed.
func (e *execStats) window(initial, gain, lo, hi float64) float64 {
	if e.n < 2 {
		return initial
	}
	sigma := math.Sqrt(e.m2 / float64(e.n-1))
	return math.Min(math.Max(e.mean+gain*sigma, lo), hi)
}

// AdaptiveTrigger is a window trigger whose period adapts to the
// observed MD completion latencies (including relaunch retries): the
// window is mean + Gain·stddev of the
// segments seen so far, clamped to [MinWindow, MaxWindow]. Under uniform
// replica performance the window shrinks towards the mean segment time
// (fast exchanges, little idling); under heterogeneous or jittery
// performance it grows so that most replicas make each exchange — the
// flexible transition criterion the paper argues patterns should expose.
type AdaptiveTrigger struct {
	// Initial is the window used until enough segments were observed.
	Initial float64
	// Gain is the dispersion multiplier (default 2).
	Gain float64
	// MinWindow and MaxWindow clamp the adapted window; they default to
	// Initial/4 and Initial*4.
	MinWindow, MaxWindow float64
	// MinReady, when positive, fires early once that many replicas are
	// ready (as in WindowTrigger).
	MinReady int

	stats execStats

	windowEnd float64
}

// NewAdaptiveTrigger returns an adaptive-window policy starting from the
// given initial window.
func NewAdaptiveTrigger(initial float64) *AdaptiveTrigger {
	return &AdaptiveTrigger{Initial: initial}
}

// Validate rejects parameterizations that cannot make progress.
func (t *AdaptiveTrigger) Validate() error {
	if t.Initial <= 0 {
		return fmt.Errorf("adaptive trigger requires a positive initial window, got %g", t.Initial)
	}
	if t.MinWindow < 0 || (t.MaxWindow > 0 && t.MaxWindow < t.MinWindow) {
		return fmt.Errorf("adaptive trigger window clamp [%g, %g] is invalid", t.MinWindow, t.MaxWindow)
	}
	return nil
}

// Name identifies the policy.
func (t *AdaptiveTrigger) Name() string { return "adaptive" }

// Aligned reports false: adaptive windows exchange among ready subsets.
func (t *AdaptiveTrigger) Aligned() bool { return false }

// Deadline is the current (adapted) window boundary.
func (t *AdaptiveTrigger) Deadline(TriggerState) float64 { return t.windowEnd }

// Decide mirrors WindowTrigger against the adapted boundary.
func (t *AdaptiveTrigger) Decide(st TriggerState) TriggerDecision {
	return windowDecision(st, t.windowEnd, t.MinReady)
}

// Observe is a no-op: the dispersion estimate is fed completion
// latencies through ObserveLatency instead, so fault-driven relaunch
// delay widens the window (raw per-attempt exec times would miss it).
func (t *AdaptiveTrigger) Observe(task.Result) {}

// ObserveLatency folds a completed MD segment's completion latency —
// including relaunch retries — into the dispersion estimate
// (LatencyObserver).
func (t *AdaptiveTrigger) ObserveLatency(latency float64) { t.stats.add(latency) }

// window returns the current adapted window length.
func (t *AdaptiveTrigger) window() float64 {
	lo, hi := t.MinWindow, t.MaxWindow
	if lo <= 0 {
		lo = t.Initial / 4
	}
	if hi <= 0 {
		hi = t.Initial * 4
	}
	gain := t.Gain
	if gain <= 0 {
		gain = 2
	}
	return t.stats.window(t.Initial, gain, lo, hi)
}

// Reset opens the next window at the adapted length.
func (t *AdaptiveTrigger) Reset(st TriggerState) { t.windowEnd = st.Now + t.window() }

// adaptiveState is the serialized dispersion state of an AdaptiveTrigger.
type adaptiveState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// EncodeState serializes the dispersion estimate (StatefulTrigger), so
// a resumed adaptive run reopens its window at the adapted length
// instead of falling back to Initial.
func (t *AdaptiveTrigger) EncodeState() ([]byte, error) {
	return json.Marshal(&adaptiveState{N: t.stats.n, Mean: t.stats.mean, M2: t.stats.m2})
}

// RestoreState replaces the dispersion estimate with one produced by
// EncodeState (StatefulTrigger).
func (t *AdaptiveTrigger) RestoreState(data []byte) error {
	var st adaptiveState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: decoding adaptive trigger state: %v", err)
	}
	if st.N < 0 || st.M2 < 0 {
		return fmt.Errorf("core: adaptive trigger state n=%d m2=%g is invalid", st.N, st.M2)
	}
	t.stats = execStats{n: st.N, mean: st.Mean, m2: st.M2}
	return nil
}

// ---------------------------------------------------------------------------
// FeedbackTrigger: closed-loop acceptance control.

// DefaultTargetAcceptance is FeedbackTrigger's default acceptance-ratio
// set point, in the band REMD practice aims exchange ladders at.
const DefaultTargetAcceptance = 0.3

// FeedbackTrigger is a window trigger that closes the loop on the
// quantity REMD is actually judged by: the neighbour-pair acceptance
// ratio. The dispatcher feeds it every exchange event's outcomes
// through the ExchangeObserver hook, and it runs one independent PI
// controller per exchange dimension: a temperature ladder and an
// umbrella ladder have very different natural acceptance, so a
// multi-dimensional grid (the paper's TSU/TUU runs) must not steer
// both with one blended measurement. Each dimension owns a rolling
// measurement ring of its last WindowEvents true-neighbour outcomes
// and an actuator pair — the exchange window opened before that
// dimension's fires, plus a steered MinReady threshold — and the
// control step is
//
//	window *= 1 + Gain·err + IntegralGain·∑err,   err = target − measured
//
// clamped per step and to [MinWindow, MaxWindow]. Measured acceptance
// below the target widens the window — more replicas make each
// exchange, ready subsets stay contiguous and fewer attempts straddle
// window gaps — while acceptance above it narrows the window so ready
// replicas exchange (and re-enter MD) sooner. The integral term
// removes the steady-state error a pure-P controller leaves inside the
// deadband; it accumulates only while the window is strictly inside
// its clamps (anti-windup), so a long saturated stretch cannot wind up
// a correction that would overshoot for dozens of events after
// conditions change.
//
// When a dimension's window is pinned at a clamp for SaturationSteps
// consecutive control steps with the error still outside the deadband,
// the plant cannot reach the set point — typically the ladder spacing
// yields a natural acceptance far from the target. Instead of silently
// parking, the controller raises a per-dimension saturation diagnostic
// (ControllerStatus, surfaced on /status and as the
// repex_feedback_saturated{dim} gauge) and engages its second
// actuator: pinned wide with acceptance still below target it disables
// early firing (MinReady 0) so every boundary collects the largest
// possible subset; pinned narrow with acceptance still above target it
// drops MinReady to 2 so exchanges fire the moment an exchangeable
// pair exists. The diagnostic clears as soon as the measurement
// returns to the deadband or the window comes off its clamp.
//
// A Deadband around the target provides hysteresis so measurement
// noise does not jitter the window, and gap pairs (Hi > Lo+1,
// bridging dead replicas or ready-subset holes) never enter the
// measurement, so the controller cannot chase dead-replica artifacts.
// Until a dimension's ring has filled once, that dimension falls back
// to AdaptiveTrigger behaviour: the window tracks mean + 2σ of the
// observed MD execution times, giving the controller a sane operating
// point to take over from.
type FeedbackTrigger struct {
	// Initial is the window used until enough data accumulates.
	Initial float64
	// Target is the acceptance-ratio set point shared by every
	// dimension without a per-dimension override (default
	// DefaultTargetAcceptance).
	Target float64
	// Targets optionally overrides the set point per exchange
	// dimension (index = dimension index); entries <= 0 fall back to
	// Target. A nil slice applies Target everywhere.
	Targets []float64
	// WindowEvents is the rolling measurement window: the number of
	// recent neighbour-pair outcomes each dimension's acceptance is
	// computed over (default 64).
	WindowEvents int
	// Gain is the proportional gain: relative window change per unit of
	// acceptance error (default 1.5).
	Gain float64
	// IntegralGain is the integral gain: relative window change per
	// unit of accumulated acceptance error (default 0.1).
	IntegralGain float64
	// IntegralClamp bounds the accumulated error (anti-windup, default
	// 3).
	IntegralClamp float64
	// SaturationSteps is the number of consecutive clamp-pinned control
	// steps after which a dimension raises its saturation diagnostic
	// (default 8).
	SaturationSteps int
	// Deadband is the hysteresis half-width: errors within ±Deadband of
	// the target leave the window unchanged (default 0.02).
	Deadband float64
	// MinWindow and MaxWindow clamp the controlled window; they default
	// to Initial/8 and Initial*8 (wider than AdaptiveTrigger's, since
	// the controller is expected to explore).
	MinWindow, MaxWindow float64
	// MinReady, when positive, fires early once that many replicas are
	// ready (as in WindowTrigger). It is the base value of the second
	// actuator: saturated dimensions override it until they recover.
	MinReady int

	// mu guards warm and dims: the dispatcher mutates them between
	// events while status readers (the live HTTP server) snapshot
	// ControllerStatus concurrently.
	mu sync.Mutex

	// warm is the warm-up dispersion estimate over observed MD
	// execution times (the AdaptiveTrigger fallback). MD segment times
	// are not dimension-specific, so it is shared.
	warm execStats

	// dims holds one controller per exchange dimension, grown lazily as
	// dimensions are observed.
	dims []feedbackDim

	windowEnd float64
}

// feedbackDim is one dimension's controller state.
type feedbackDim struct {
	// win is the rolling ring of this dimension's neighbour-pair
	// outcomes, the same structure the analysis collector keeps per
	// pair.
	win ring.Bool
	// cur is the controlled window length; valid once active.
	cur    float64
	active bool
	// integ is the accumulated acceptance error (the I term), clamped
	// to ±IntegralClamp.
	integ float64
	// satRun counts consecutive control steps pinned at a clamp with
	// the error outside the deadband; saturated raises at
	// SaturationSteps.
	satRun    int
	saturated bool
	// minReadyOverride is the second actuator: -1 follows the base
	// MinReady, otherwise it replaces it while the dimension is
	// saturated.
	minReadyOverride int
}

// FeedbackDimStatus is one dimension's controller state as exposed to
// status surfaces (cmd/repex /status, the repex_feedback_* gauges).
type FeedbackDimStatus struct {
	// Dim is the exchange dimension index.
	Dim int `json:"dim"`
	// Target is the dimension's acceptance set point.
	Target float64 `json:"target"`
	// Measured is the rolling acceptance over Outcomes buffered
	// outcomes (0 while empty).
	Measured float64 `json:"measured"`
	Outcomes int     `json:"outcomes"`
	// Window is the exchange window the next fire along this dimension
	// would open.
	Window float64 `json:"window_sec"`
	// MinReady is the dimension's effective early-fire threshold after
	// second-actuator steering.
	MinReady int `json:"min_ready"`
	// Integral is the accumulated acceptance error (the I term).
	Integral float64 `json:"integral"`
	// Active reports that the measurement ring has filled and the
	// controller has taken over from the warm-up window.
	Active bool `json:"active"`
	// Saturated reports the ladder-spacing diagnostic: the window is
	// pinned at a clamp and the target remains unreachable.
	Saturated bool `json:"saturated"`
	// SatSteps counts the consecutive clamp-pinned control steps behind
	// Saturated (the respace planner waits for it to exceed its own,
	// longer threshold before re-fitting the ladder).
	SatSteps int `json:"sat_steps,omitempty"`
}

// NewFeedbackTrigger returns an acceptance-targeting policy starting
// from the given initial window.
func NewFeedbackTrigger(initial float64) *FeedbackTrigger {
	return &FeedbackTrigger{Initial: initial}
}

// Validate rejects parameterizations that cannot make progress.
func (t *FeedbackTrigger) Validate() error {
	if t.Initial <= 0 {
		return fmt.Errorf("feedback trigger requires a positive initial window, got %g", t.Initial)
	}
	if t.Target < 0 || t.Target >= 1 {
		return fmt.Errorf("feedback trigger target acceptance %g outside [0, 1) (0 selects the default %g)",
			t.Target, DefaultTargetAcceptance)
	}
	for d, v := range t.Targets {
		if v < 0 || v >= 1 {
			return fmt.Errorf("feedback trigger dimension-%d target acceptance %g outside [0, 1)", d, v)
		}
	}
	if t.WindowEvents < 0 {
		return fmt.Errorf("feedback trigger window events must be non-negative, got %d", t.WindowEvents)
	}
	if t.Gain < 0 || t.Deadband < 0 {
		return fmt.Errorf("feedback trigger gain %g and deadband %g must be non-negative", t.Gain, t.Deadband)
	}
	if t.IntegralGain < 0 || t.IntegralClamp < 0 {
		return fmt.Errorf("feedback trigger integral gain %g and clamp %g must be non-negative",
			t.IntegralGain, t.IntegralClamp)
	}
	if t.SaturationSteps < 0 {
		return fmt.Errorf("feedback trigger saturation steps must be non-negative, got %d", t.SaturationSteps)
	}
	if t.MinWindow < 0 || (t.MaxWindow > 0 && t.MaxWindow < t.MinWindow) {
		return fmt.Errorf("feedback trigger window clamp [%g, %g] is invalid", t.MinWindow, t.MaxWindow)
	}
	return nil
}

// Name identifies the policy.
func (t *FeedbackTrigger) Name() string { return "feedback" }

// Aligned reports false: feedback windows exchange among ready subsets.
func (t *FeedbackTrigger) Aligned() bool { return false }

// Deadline is the current window boundary.
func (t *FeedbackTrigger) Deadline(TriggerState) float64 { return t.windowEnd }

// Decide mirrors WindowTrigger against the controlled boundary of the
// upcoming dimension, with one closed-loop refinement: when no MD
// segment is outstanding the exchange fires immediately instead of
// idling to the boundary. The window exists to gather more
// participants per exchange — once nothing more can arrive, waiting
// cannot raise acceptance, only burn allocation.
func (t *FeedbackTrigger) Decide(st TriggerState) TriggerDecision {
	if st.Pending == 0 {
		return TriggerFire
	}
	t.mu.Lock()
	minReady := t.dim(st.Dim).effectiveMinReady(t.MinReady)
	t.mu.Unlock()
	return windowDecision(st, t.windowEnd, minReady)
}

// effectiveMinReady resolves the second actuator: the saturation
// override when set, the configured base otherwise.
func (d *feedbackDim) effectiveMinReady(base int) int {
	if d.minReadyOverride >= 0 {
		return d.minReadyOverride
	}
	return base
}

// Observe is a no-op: the warm-up dispersion estimate is fed completion
// latencies through ObserveLatency instead (see LatencyObserver).
func (t *FeedbackTrigger) Observe(task.Result) {}

// ObserveLatency folds a completed MD segment's completion latency —
// including relaunch retries — into the warm-up dispersion estimate (the
// AdaptiveTrigger fallback).
func (t *FeedbackTrigger) ObserveLatency(latency float64) {
	t.mu.Lock()
	t.warm.add(latency)
	t.mu.Unlock()
}

// dim returns dimension d's controller, growing the per-dimension
// state as higher dimensions are first observed. Callers hold mu.
func (t *FeedbackTrigger) dim(d int) *feedbackDim {
	if d < 0 {
		d = 0
	}
	for len(t.dims) <= d {
		t.dims = append(t.dims, feedbackDim{minReadyOverride: -1})
	}
	return &t.dims[d]
}

// ObserveExchange feeds the exchange event's true-neighbour outcomes
// into its dimension's rolling measurement ring and, once that ring
// has filled, applies one PI control step to that dimension's
// actuators. Gap pairs (Hi > Lo+1) are excluded, and events
// contributing no fresh neighbour outcome apply no step — stale
// measurements must not keep pushing the window.
func (t *FeedbackTrigger) ObserveExchange(ev ExchangeEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	dd := t.dim(ev.Dim)
	fresh := false
	for _, p := range ev.Pairs {
		if p.Hi != p.Lo+1 {
			continue
		}
		dd.win.Push(p.Accepted, t.windowEvents())
		fresh = true
	}
	if !dd.active && dd.win.N > 0 && dd.win.N == len(dd.win.Outcomes) {
		// The measurement ring filled for the first time: this
		// dimension's controller takes over from the warm-up window.
		dd.active = true
		dd.cur = t.warmWindow()
	}
	if !dd.active || !fresh {
		return
	}
	t.controlStep(ev.Dim, dd)
}

// controlStep applies one PI step to dimension d's actuators; callers
// hold mu and have verified the controller is active with fresh
// evidence.
func (t *FeedbackTrigger) controlStep(d int, dd *feedbackDim) {
	err := t.target(d) - float64(dd.win.Accepted)/float64(dd.win.N)
	if math.Abs(err) <= t.deadband() {
		// On target: stand down the diagnostic and the second actuator.
		// The integral is kept — it encodes the steady-state correction
		// that brought the error inside the deadband.
		dd.satRun, dd.saturated, dd.minReadyOverride = 0, false, -1
		return
	}
	factor := 1 + t.gain()*err + t.integralGain()*dd.integ
	// Bound a single step: one noisy window must not collapse or
	// explode the operating point.
	factor = math.Min(math.Max(factor, 0.5), 2)
	lo, hi := t.clamps()
	next := math.Min(math.Max(dd.cur*factor, lo), hi)
	if (next == hi && err > 0) || (next == lo && err < 0) {
		// Pinned at a clamp with the error still pushing outward: the
		// set point is unreachable from here. Freeze the integral
		// (anti-windup) and, after SaturationSteps consecutive pinned
		// steps, raise the ladder-spacing diagnostic and engage the
		// MinReady actuator.
		dd.satRun++
		if dd.satRun >= t.saturationSteps() {
			dd.saturated = true
			if err > 0 {
				// Even the widest window cannot buy enough acceptance:
				// disable early fires so every boundary collects the
				// largest possible subset.
				dd.minReadyOverride = 0
			} else {
				// Even the narrowest window leaves acceptance above
				// target: fire the moment a pair can exchange.
				dd.minReadyOverride = 2
			}
		}
	} else {
		c := t.integralClamp()
		dd.integ = math.Min(math.Max(dd.integ+err, -c), c)
		dd.satRun, dd.saturated, dd.minReadyOverride = 0, false, -1
	}
	dd.cur = next
}

// Acceptance returns the measured rolling acceptance ratio pooled over
// every dimension's ring and the number of outcomes it covers. For
// per-dimension measurements see ControllerStatus.
func (t *FeedbackTrigger) Acceptance() (ratio float64, outcomes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	acc, n := 0, 0
	for i := range t.dims {
		acc += t.dims[i].win.Accepted
		n += t.dims[i].win.N
	}
	if n == 0 {
		return 0, 0
	}
	return float64(acc) / float64(n), n
}

// Window returns the window length the next Reset would open for
// dimension 0 (the only dimension of a 1-D ladder). For other
// dimensions see WindowFor.
func (t *FeedbackTrigger) Window() float64 { return t.WindowFor(0) }

// WindowFor returns the window length the next Reset would open for
// the given exchange dimension.
func (t *FeedbackTrigger) WindowFor(d int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.windowFor(d)
}

// windowFor is WindowFor with mu held.
func (t *FeedbackTrigger) windowFor(d int) float64 {
	dd := t.dim(d)
	if dd.active {
		return dd.cur
	}
	return t.warmWindow()
}

// ControllerStatus snapshots every observed dimension's controller
// state for status surfaces. Safe for concurrent use with a running
// dispatcher (the live HTTP server polls it mid-run).
func (t *FeedbackTrigger) ControllerStatus() []FeedbackDimStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]FeedbackDimStatus, len(t.dims))
	for d := range t.dims {
		out[d] = t.dimStatus(d)
	}
	return out
}

// DimStatus snapshots one dimension's controller state; dimensions the
// controller has not observed yet report a zero status. Safe for
// concurrent use like ControllerStatus.
func (t *FeedbackTrigger) DimStatus(d int) FeedbackDimStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d < 0 || d >= len(t.dims) {
		return FeedbackDimStatus{Dim: d}
	}
	return t.dimStatus(d)
}

// ResetDim discards one dimension's controller state — measurement
// ring, integral, saturation run and second-actuator override — so the
// controller re-warms against a freshly re-fitted ladder instead of
// steering from measurements of the grid that no longer exists. The
// dispatcher calls it immediately after an online respace; resetting a
// dimension the controller has not observed is a no-op.
func (t *FeedbackTrigger) ResetDim(d int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d < 0 || d >= len(t.dims) {
		return
	}
	t.dims[d] = feedbackDim{minReadyOverride: -1}
}

// dimStatus builds dimension d's status with mu held; d must be in
// range.
func (t *FeedbackTrigger) dimStatus(d int) FeedbackDimStatus {
	dd := &t.dims[d]
	st := FeedbackDimStatus{
		Dim:       d,
		Target:    t.target(d),
		Outcomes:  dd.win.N,
		Window:    t.windowFor(d),
		MinReady:  dd.effectiveMinReady(t.MinReady),
		Integral:  dd.integ,
		Active:    dd.active,
		Saturated: dd.saturated,
		SatSteps:  dd.satRun,
	}
	if dd.win.N > 0 {
		st.Measured = float64(dd.win.Accepted) / float64(dd.win.N)
	}
	return st
}

// target resolves dimension d's set point: the per-dimension override
// when given, Target otherwise, DefaultTargetAcceptance when neither.
func (t *FeedbackTrigger) target(d int) float64 {
	if d >= 0 && d < len(t.Targets) && t.Targets[d] > 0 {
		return t.Targets[d]
	}
	if t.Target > 0 {
		return t.Target
	}
	return DefaultTargetAcceptance
}

func (t *FeedbackTrigger) gain() float64 {
	if t.Gain > 0 {
		return t.Gain
	}
	return 1.5
}

func (t *FeedbackTrigger) integralGain() float64 {
	if t.IntegralGain > 0 {
		return t.IntegralGain
	}
	return 0.1
}

func (t *FeedbackTrigger) integralClamp() float64 {
	if t.IntegralClamp > 0 {
		return t.IntegralClamp
	}
	return 3
}

func (t *FeedbackTrigger) saturationSteps() int {
	if t.SaturationSteps > 0 {
		return t.SaturationSteps
	}
	return 8
}

func (t *FeedbackTrigger) deadband() float64 {
	if t.Deadband > 0 {
		return t.Deadband
	}
	return 0.02
}

func (t *FeedbackTrigger) windowEvents() int {
	if t.WindowEvents > 0 {
		return t.WindowEvents
	}
	return 64
}

func (t *FeedbackTrigger) clamps() (lo, hi float64) {
	lo, hi = t.MinWindow, t.MaxWindow
	if lo <= 0 {
		lo = t.Initial / 8
	}
	if hi <= 0 {
		hi = t.Initial * 8
	}
	return lo, hi
}

// warmWindow is the AdaptiveTrigger-style fallback: mean + 2σ of the
// observed MD execution times, clamped.
func (t *FeedbackTrigger) warmWindow() float64 {
	lo, hi := t.clamps()
	return t.warm.window(t.Initial, 2, lo, hi)
}

// Reset opens the next window at the upcoming dimension's controlled
// (or warm-up) length.
func (t *FeedbackTrigger) Reset(st TriggerState) {
	t.mu.Lock()
	t.windowEnd = st.Now + t.windowFor(st.Dim)
	t.mu.Unlock()
}

// feedbackDimState is one dimension's serialized controller state.
type feedbackDimState struct {
	// Outcomes is the measurement ring's contents, oldest first.
	Outcomes  []bool  `json:"outcomes,omitempty"`
	Cur       float64 `json:"cur,omitempty"`
	Active    bool    `json:"active,omitempty"`
	Integ     float64 `json:"integ,omitempty"`
	SatRun    int     `json:"sat_run,omitempty"`
	Saturated bool    `json:"saturated,omitempty"`
	// MinReadyOverride uses -1 for "follow the base MinReady", so it is
	// always emitted.
	MinReadyOverride int `json:"min_ready_override"`
}

// feedbackState is the serialized controller state of a FeedbackTrigger.
type feedbackState struct {
	// Dims holds one controller per exchange dimension.
	Dims     []feedbackDimState `json:"dims,omitempty"`
	WarmN    int                `json:"warm_n"`
	WarmMean float64            `json:"warm_mean"`
	WarmM2   float64            `json:"warm_m2"`
	// Outcomes/Cur/Active are the legacy single-controller fields of
	// pre-per-dimension snapshots; RestoreState maps them to dimension
	// 0 when Dims is absent.
	Outcomes []bool  `json:"outcomes,omitempty"`
	Cur      float64 `json:"cur,omitempty"`
	Active   bool    `json:"active,omitempty"`
}

// EncodeState serializes the controller state (StatefulTrigger).
func (t *FeedbackTrigger) EncodeState() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := feedbackState{
		Dims:     make([]feedbackDimState, len(t.dims)),
		WarmN:    t.warm.n,
		WarmMean: t.warm.mean,
		WarmM2:   t.warm.m2,
	}
	for d := range t.dims {
		dd := &t.dims[d]
		st.Dims[d] = feedbackDimState{
			Outcomes:         dd.win.Linear(),
			Cur:              dd.cur,
			Active:           dd.active,
			Integ:            dd.integ,
			SatRun:           dd.satRun,
			Saturated:        dd.saturated,
			MinReadyOverride: dd.minReadyOverride,
		}
	}
	return json.Marshal(&st)
}

// RestoreState replaces the controller state with one produced by
// EncodeState (StatefulTrigger). Outcomes beyond this trigger's
// WindowEvents are dropped oldest-first; a legacy single-controller
// snapshot restores into dimension 0.
func (t *FeedbackTrigger) RestoreState(data []byte) error {
	var st feedbackState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: decoding feedback trigger state: %v", err)
	}
	if len(st.Dims) == 0 && (len(st.Outcomes) > 0 || st.Active || st.Cur != 0) {
		st.Dims = []feedbackDimState{{
			Outcomes: st.Outcomes, Cur: st.Cur, Active: st.Active,
			MinReadyOverride: -1,
		}}
	}
	// Build the restored controllers aside and swap only on success, so
	// a caller that handles the error keeps a consistent trigger
	// instead of a half-restored one.
	dims := make([]feedbackDim, len(st.Dims))
	for d, ds := range st.Dims {
		if ds.Active && ds.Cur <= 0 {
			return fmt.Errorf("core: feedback trigger state for dimension %d is active with window %g", d, ds.Cur)
		}
		if ds.MinReadyOverride < -1 {
			return fmt.Errorf("core: feedback trigger state for dimension %d has min-ready override %d", d, ds.MinReadyOverride)
		}
		dd := &dims[d]
		for _, v := range ds.Outcomes {
			dd.win.Push(v, t.windowEvents())
		}
		dd.cur = ds.Cur
		dd.active = ds.Active
		dd.integ = ds.Integ
		dd.satRun = ds.SatRun
		dd.saturated = ds.Saturated
		dd.minReadyOverride = ds.MinReadyOverride
	}
	t.mu.Lock()
	t.dims = dims
	t.warm = execStats{n: st.WarmN, mean: st.WarmMean, m2: st.WarmM2}
	t.mu.Unlock()
	return nil
}
