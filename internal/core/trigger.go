package core

import (
	"fmt"
	"math"

	"repro/internal/task"
)

// TriggerState is the dispatcher bookkeeping snapshot handed to trigger
// policies when they are consulted.
type TriggerState struct {
	// Now is the runtime clock.
	Now float64
	// Pending counts replicas whose MD segment is still executing.
	Pending int
	// Ready counts replicas that have completed their MD segment and
	// await an exchange.
	Ready int
	// ReadyBudget counts the ready replicas that still have MD segments
	// left after the next exchange (i.e. waiting for a window boundary
	// is not pointless).
	ReadyBudget int
	// Alive counts live replicas.
	Alive int
}

// TriggerDecision is a trigger policy's verdict for the current
// dispatcher state.
type TriggerDecision int

const (
	// TriggerWait keeps collecting MD completions.
	TriggerWait TriggerDecision = iota
	// TriggerFire runs the exchange step now.
	TriggerFire
	// TriggerFireAtDeadline idles the orchestrator until the policy's
	// deadline (the window boundary) and then runs the exchange step —
	// the utilization cost of fixed-window asynchronous RE (§4.6).
	TriggerFireAtDeadline
)

// Trigger is a pluggable exchange-trigger criterion: the policy deciding
// *when* replicas transition from the MD phase to the exchange phase.
// The paper's two Replica Exchange Patterns are the two canonical
// policies (BarrierTrigger for synchronous, WindowTrigger for
// asynchronous); CountTrigger and AdaptiveTrigger extend the taxonomy.
// All policies drive the same event-driven dispatcher loop in
// Simulation.dispatch.
type Trigger interface {
	// Name identifies the policy in reports.
	Name() string
	// Aligned reports a global-barrier policy: the dispatcher then waits
	// for the full replica set, processes MD results in submission order
	// and uses synchronous (cycle, dimension) accounting. Non-aligned
	// policies exchange among ready subsets with free-running accounting.
	Aligned() bool
	// Deadline returns the absolute runtime time until which the
	// dispatcher may block waiting for completions; +Inf blocks until
	// the next completion.
	Deadline(st TriggerState) float64
	// Decide is consulted whenever the dispatcher state changes (after
	// completions are absorbed, or after the deadline passes with none).
	Decide(st TriggerState) TriggerDecision
	// Observe is invoked for every completed MD segment, letting
	// adaptive policies track execution-time statistics.
	Observe(res task.Result)
	// Reset begins a new collection round; called once when dispatch
	// starts and again after every exchange step.
	Reset(st TriggerState)
}

// ---------------------------------------------------------------------------
// BarrierTrigger: the synchronous pattern.

// BarrierTrigger fires only when every alive replica has finished its MD
// segment: the paper's synchronous RE pattern (global barrier after the
// MD phase and after the exchange phase).
type BarrierTrigger struct{}

// NewBarrierTrigger returns the synchronous-pattern policy.
func NewBarrierTrigger() *BarrierTrigger { return &BarrierTrigger{} }

// Name identifies the policy.
func (t *BarrierTrigger) Name() string { return "barrier" }

// Aligned reports true: the barrier is a phase-aligned policy.
func (t *BarrierTrigger) Aligned() bool { return true }

// Deadline is +Inf: the barrier always waits for the next completion.
func (t *BarrierTrigger) Deadline(TriggerState) float64 { return math.Inf(1) }

// Decide fires once no MD segment is outstanding.
func (t *BarrierTrigger) Decide(st TriggerState) TriggerDecision {
	if st.Pending == 0 {
		return TriggerFire
	}
	return TriggerWait
}

// Observe is a no-op.
func (t *BarrierTrigger) Observe(task.Result) {}

// Reset is a no-op.
func (t *BarrierTrigger) Reset(TriggerState) {}

// ---------------------------------------------------------------------------
// WindowTrigger: the asynchronous pattern.

// WindowTrigger fires at fixed real-time window boundaries: the paper's
// asynchronous RE pattern (§3.2.1, Figure 1b). Replicas that finished
// their MD segment when the window closes exchange among themselves
// while the rest keep simulating. A positive MinReady additionally fires
// as soon as that many replicas are ready, before the boundary.
type WindowTrigger struct {
	// Window is the real-time period in runtime seconds.
	Window float64
	// MinReady, when positive, triggers an exchange before the window
	// expires once that many replicas are ready.
	MinReady int

	windowEnd float64
}

// NewWindowTrigger returns the asynchronous-pattern policy.
func NewWindowTrigger(window float64, minReady int) *WindowTrigger {
	return &WindowTrigger{Window: window, MinReady: minReady}
}

// Validate rejects parameterizations that cannot make progress.
func (t *WindowTrigger) Validate() error {
	if t.Window <= 0 {
		return fmt.Errorf("window trigger requires a positive window, got %g", t.Window)
	}
	return nil
}

// Name identifies the policy.
func (t *WindowTrigger) Name() string { return "window" }

// Aligned reports false: windows exchange among ready subsets.
func (t *WindowTrigger) Aligned() bool { return false }

// Deadline is the current window boundary.
func (t *WindowTrigger) Deadline(TriggerState) float64 { return t.windowEnd }

// Decide fires at the window boundary, early once MinReady replicas are
// ready, or immediately when nothing is left to wait for.
func (t *WindowTrigger) Decide(st TriggerState) TriggerDecision {
	return windowDecision(st, t.windowEnd, t.MinReady)
}

// Observe is a no-op.
func (t *WindowTrigger) Observe(task.Result) {}

// Reset opens the next window.
func (t *WindowTrigger) Reset(st TriggerState) { t.windowEnd = st.Now + t.Window }

// windowDecision is the fire rule shared by the window-style policies:
// fire early once minReady replicas are ready, fire at the window
// boundary, idle to the boundary when every running segment has
// finished but replicas will resubmit, and flush immediately when
// nothing is left to wait for.
func windowDecision(st TriggerState, windowEnd float64, minReady int) TriggerDecision {
	if minReady > 0 && st.Ready >= minReady && st.Ready >= 2 {
		return TriggerFire
	}
	if st.Now >= windowEnd {
		return TriggerFire
	}
	if st.Pending == 0 {
		if st.ReadyBudget == 0 {
			// Final flush: no replica will resubmit, so idling to the
			// boundary would be pure waste.
			return TriggerFire
		}
		// Pure window criterion: ready replicas idle until the boundary
		// even though every running MD segment has finished — the
		// utilization cost of fixed-window asynchronous RE (§4.6).
		return TriggerFireAtDeadline
	}
	return TriggerWait
}

// ---------------------------------------------------------------------------
// CountTrigger: exchange as soon as N replicas are ready.

// CountTrigger fires as soon as Count replicas are ready, with no
// real-time window at all: the "number of replicas" transition criterion
// from the paper's flexibility argument. Lagging replicas never block
// the exchange and ready replicas never idle at a boundary.
type CountTrigger struct {
	// Count is the ready-replica threshold (values below 2 behave as 2,
	// the smallest exchangeable subset).
	Count int
}

// NewCountTrigger returns a count-criterion policy.
func NewCountTrigger(count int) *CountTrigger { return &CountTrigger{Count: count} }

// Name identifies the policy.
func (t *CountTrigger) Name() string { return "count" }

// Aligned reports false: counts exchange among ready subsets.
func (t *CountTrigger) Aligned() bool { return false }

// Deadline is +Inf: the policy is purely completion-driven.
func (t *CountTrigger) Deadline(TriggerState) float64 { return math.Inf(1) }

// Decide fires at the threshold, or when no MD segment is outstanding
// (so the tail of a run always drains).
func (t *CountTrigger) Decide(st TriggerState) TriggerDecision {
	n := t.Count
	if n < 2 {
		n = 2
	}
	if st.Ready >= n {
		return TriggerFire
	}
	if st.Pending == 0 {
		return TriggerFire
	}
	return TriggerWait
}

// Observe is a no-op.
func (t *CountTrigger) Observe(task.Result) {}

// Reset is a no-op.
func (t *CountTrigger) Reset(TriggerState) {}

// ---------------------------------------------------------------------------
// AdaptiveTrigger: a window that tracks observed MD-time dispersion.

// AdaptiveTrigger is a window trigger whose period adapts to the
// observed MD execution times: the window is mean + Gain·stddev of the
// segments seen so far, clamped to [MinWindow, MaxWindow]. Under uniform
// replica performance the window shrinks towards the mean segment time
// (fast exchanges, little idling); under heterogeneous or jittery
// performance it grows so that most replicas make each exchange — the
// flexible transition criterion the paper argues patterns should expose.
type AdaptiveTrigger struct {
	// Initial is the window used until enough segments were observed.
	Initial float64
	// Gain is the dispersion multiplier (default 2).
	Gain float64
	// MinWindow and MaxWindow clamp the adapted window; they default to
	// Initial/4 and Initial*4.
	MinWindow, MaxWindow float64
	// MinReady, when positive, fires early once that many replicas are
	// ready (as in WindowTrigger).
	MinReady int

	// Welford accumulator over observed MD execution times.
	n        int
	mean, m2 float64

	windowEnd float64
}

// NewAdaptiveTrigger returns an adaptive-window policy starting from the
// given initial window.
func NewAdaptiveTrigger(initial float64) *AdaptiveTrigger {
	return &AdaptiveTrigger{Initial: initial}
}

// Validate rejects parameterizations that cannot make progress.
func (t *AdaptiveTrigger) Validate() error {
	if t.Initial <= 0 {
		return fmt.Errorf("adaptive trigger requires a positive initial window, got %g", t.Initial)
	}
	if t.MinWindow < 0 || (t.MaxWindow > 0 && t.MaxWindow < t.MinWindow) {
		return fmt.Errorf("adaptive trigger window clamp [%g, %g] is invalid", t.MinWindow, t.MaxWindow)
	}
	return nil
}

// Name identifies the policy.
func (t *AdaptiveTrigger) Name() string { return "adaptive" }

// Aligned reports false: adaptive windows exchange among ready subsets.
func (t *AdaptiveTrigger) Aligned() bool { return false }

// Deadline is the current (adapted) window boundary.
func (t *AdaptiveTrigger) Deadline(TriggerState) float64 { return t.windowEnd }

// Decide mirrors WindowTrigger against the adapted boundary.
func (t *AdaptiveTrigger) Decide(st TriggerState) TriggerDecision {
	return windowDecision(st, t.windowEnd, t.MinReady)
}

// Observe folds a completed MD segment's execution time into the
// dispersion estimate.
func (t *AdaptiveTrigger) Observe(res task.Result) {
	if res.Failed() || res.Spec == nil || res.Spec.Kind != task.MD {
		return
	}
	t.n++
	d := res.Exec - t.mean
	t.mean += d / float64(t.n)
	t.m2 += d * (res.Exec - t.mean)
}

// window returns the current adapted window length.
func (t *AdaptiveTrigger) window() float64 {
	lo, hi := t.MinWindow, t.MaxWindow
	if lo <= 0 {
		lo = t.Initial / 4
	}
	if hi <= 0 {
		hi = t.Initial * 4
	}
	if t.n < 2 {
		return t.Initial
	}
	gain := t.Gain
	if gain <= 0 {
		gain = 2
	}
	sigma := math.Sqrt(t.m2 / float64(t.n-1))
	w := t.mean + gain*sigma
	return math.Min(math.Max(w, lo), hi)
}

// Reset opens the next window at the adapted length.
func (t *AdaptiveTrigger) Reset(st TriggerState) { t.windowEnd = st.Now + t.window() }
