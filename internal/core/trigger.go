package core

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/ring"
	"repro/internal/task"
)

// TriggerState is the dispatcher bookkeeping snapshot handed to trigger
// policies when they are consulted.
type TriggerState struct {
	// Now is the runtime clock.
	Now float64
	// Pending counts replicas whose MD segment is still executing.
	Pending int
	// Ready counts replicas that have completed their MD segment and
	// await an exchange.
	Ready int
	// ReadyBudget counts the ready replicas that still have MD segments
	// left after the next exchange (i.e. waiting for a window boundary
	// is not pointless).
	ReadyBudget int
	// Alive counts live replicas.
	Alive int
}

// TriggerDecision is a trigger policy's verdict for the current
// dispatcher state.
type TriggerDecision int

const (
	// TriggerWait keeps collecting MD completions.
	TriggerWait TriggerDecision = iota
	// TriggerFire runs the exchange step now.
	TriggerFire
	// TriggerFireAtDeadline idles the orchestrator until the policy's
	// deadline (the window boundary) and then runs the exchange step —
	// the utilization cost of fixed-window asynchronous RE (§4.6).
	TriggerFireAtDeadline
)

// Trigger is a pluggable exchange-trigger criterion: the policy deciding
// *when* replicas transition from the MD phase to the exchange phase.
// The paper's two Replica Exchange Patterns are the two canonical
// policies (BarrierTrigger for synchronous, WindowTrigger for
// asynchronous); CountTrigger, AdaptiveTrigger and FeedbackTrigger
// extend the taxonomy. All policies drive the same event-driven
// dispatcher loop in Simulation.dispatch.
type Trigger interface {
	// Name identifies the policy in reports.
	Name() string
	// Aligned reports a global-barrier policy: the dispatcher then waits
	// for the full replica set, processes MD results in submission order
	// and uses synchronous (cycle, dimension) accounting. Non-aligned
	// policies exchange among ready subsets with free-running accounting.
	Aligned() bool
	// Deadline returns the absolute runtime time until which the
	// dispatcher may block waiting for completions; +Inf blocks until
	// the next completion.
	Deadline(st TriggerState) float64
	// Decide is consulted whenever the dispatcher state changes (after
	// completions are absorbed, or after the deadline passes with none).
	Decide(st TriggerState) TriggerDecision
	// Observe is invoked for every completed MD segment, letting
	// adaptive policies track execution-time statistics.
	Observe(res task.Result)
	// Reset begins a new collection round; called once when dispatch
	// starts and again after every exchange step.
	Reset(st TriggerState)
}

// ExchangeObserver is an optional Trigger extension: a policy that also
// implements it is fed every completed exchange event's outcomes by the
// dispatcher, synchronously and independently of Spec.Bus. This is the
// feedback path of closed-loop policies (FeedbackTrigger): unlike a bus
// subscription, the hook cannot drop events, so resumed runs replay the
// same controller inputs deterministically.
type ExchangeObserver interface {
	// ObserveExchange is invoked right after the dispatcher publishes an
	// exchange event, before the next collection round opens. The event
	// (including its Pairs and Slots slices) is shared with other
	// consumers and must not be mutated or retained.
	ObserveExchange(ev ExchangeEvent)
}

// StatefulTrigger is an optional Trigger extension for policies whose
// accumulated controller state must survive checkpoint/restart (e.g.
// FeedbackTrigger's rolling outcome window and controlled window
// length). The dispatcher embeds EncodeState's bytes in each Snapshot
// and replays them through RestoreState on resume, so a resumed run
// makes the same trigger decisions as the uninterrupted one.
type StatefulTrigger interface {
	Trigger
	// EncodeState serializes the controller state.
	EncodeState() ([]byte, error)
	// RestoreState replaces the controller state with one produced by
	// EncodeState.
	RestoreState(data []byte) error
}

// ---------------------------------------------------------------------------
// BarrierTrigger: the synchronous pattern.

// BarrierTrigger fires only when every alive replica has finished its MD
// segment: the paper's synchronous RE pattern (global barrier after the
// MD phase and after the exchange phase).
type BarrierTrigger struct{}

// NewBarrierTrigger returns the synchronous-pattern policy.
func NewBarrierTrigger() *BarrierTrigger { return &BarrierTrigger{} }

// Name identifies the policy.
func (t *BarrierTrigger) Name() string { return "barrier" }

// Aligned reports true: the barrier is a phase-aligned policy.
func (t *BarrierTrigger) Aligned() bool { return true }

// Deadline is +Inf: the barrier always waits for the next completion.
func (t *BarrierTrigger) Deadline(TriggerState) float64 { return math.Inf(1) }

// Decide fires once no MD segment is outstanding.
func (t *BarrierTrigger) Decide(st TriggerState) TriggerDecision {
	if st.Pending == 0 {
		return TriggerFire
	}
	return TriggerWait
}

// Observe is a no-op.
func (t *BarrierTrigger) Observe(task.Result) {}

// Reset is a no-op.
func (t *BarrierTrigger) Reset(TriggerState) {}

// ---------------------------------------------------------------------------
// WindowTrigger: the asynchronous pattern.

// WindowTrigger fires at fixed real-time window boundaries: the paper's
// asynchronous RE pattern (§3.2.1, Figure 1b). Replicas that finished
// their MD segment when the window closes exchange among themselves
// while the rest keep simulating. A positive MinReady additionally fires
// as soon as that many replicas are ready, before the boundary.
type WindowTrigger struct {
	// Window is the real-time period in runtime seconds.
	Window float64
	// MinReady, when positive, triggers an exchange before the window
	// expires once that many replicas are ready.
	MinReady int

	windowEnd float64
}

// NewWindowTrigger returns the asynchronous-pattern policy.
func NewWindowTrigger(window float64, minReady int) *WindowTrigger {
	return &WindowTrigger{Window: window, MinReady: minReady}
}

// Validate rejects parameterizations that cannot make progress.
func (t *WindowTrigger) Validate() error {
	if t.Window <= 0 {
		return fmt.Errorf("window trigger requires a positive window, got %g", t.Window)
	}
	return nil
}

// Name identifies the policy.
func (t *WindowTrigger) Name() string { return "window" }

// Aligned reports false: windows exchange among ready subsets.
func (t *WindowTrigger) Aligned() bool { return false }

// Deadline is the current window boundary.
func (t *WindowTrigger) Deadline(TriggerState) float64 { return t.windowEnd }

// Decide fires at the window boundary, early once MinReady replicas are
// ready, or immediately when nothing is left to wait for.
func (t *WindowTrigger) Decide(st TriggerState) TriggerDecision {
	return windowDecision(st, t.windowEnd, t.MinReady)
}

// Observe is a no-op.
func (t *WindowTrigger) Observe(task.Result) {}

// Reset opens the next window.
func (t *WindowTrigger) Reset(st TriggerState) { t.windowEnd = st.Now + t.Window }

// windowDecision is the fire rule shared by the window-style policies:
// fire early once minReady replicas are ready, fire at the window
// boundary, idle to the boundary when every running segment has
// finished but replicas will resubmit, and flush immediately when
// nothing is left to wait for.
func windowDecision(st TriggerState, windowEnd float64, minReady int) TriggerDecision {
	if minReady > 0 && st.Ready >= minReady && st.Ready >= 2 {
		return TriggerFire
	}
	if st.Now >= windowEnd {
		return TriggerFire
	}
	if st.Pending == 0 {
		if st.ReadyBudget == 0 {
			// Final flush: no replica will resubmit, so idling to the
			// boundary would be pure waste.
			return TriggerFire
		}
		// Pure window criterion: ready replicas idle until the boundary
		// even though every running MD segment has finished — the
		// utilization cost of fixed-window asynchronous RE (§4.6).
		return TriggerFireAtDeadline
	}
	return TriggerWait
}

// ---------------------------------------------------------------------------
// CountTrigger: exchange as soon as N replicas are ready.

// CountTrigger fires as soon as Count replicas are ready, with no
// real-time window at all: the "number of replicas" transition criterion
// from the paper's flexibility argument. Lagging replicas never block
// the exchange and ready replicas never idle at a boundary.
type CountTrigger struct {
	// Count is the ready-replica threshold (values below 2 behave as 2,
	// the smallest exchangeable subset).
	Count int
}

// NewCountTrigger returns a count-criterion policy.
func NewCountTrigger(count int) *CountTrigger { return &CountTrigger{Count: count} }

// Name identifies the policy.
func (t *CountTrigger) Name() string { return "count" }

// Aligned reports false: counts exchange among ready subsets.
func (t *CountTrigger) Aligned() bool { return false }

// Deadline is +Inf: the policy is purely completion-driven.
func (t *CountTrigger) Deadline(TriggerState) float64 { return math.Inf(1) }

// Decide fires at the threshold, or when no MD segment is outstanding
// (so the tail of a run always drains).
func (t *CountTrigger) Decide(st TriggerState) TriggerDecision {
	n := t.Count
	if n < 2 {
		n = 2
	}
	if st.Ready >= n {
		return TriggerFire
	}
	if st.Pending == 0 {
		return TriggerFire
	}
	return TriggerWait
}

// Observe is a no-op.
func (t *CountTrigger) Observe(task.Result) {}

// Reset is a no-op.
func (t *CountTrigger) Reset(TriggerState) {}

// ---------------------------------------------------------------------------
// AdaptiveTrigger: a window that tracks observed MD-time dispersion.

// execStats is a Welford accumulator over completed MD segments'
// execution times: the dispersion estimate behind the adaptive window
// (AdaptiveTrigger, and FeedbackTrigger's warm-up fallback).
type execStats struct {
	n        int
	mean, m2 float64
}

// observe folds one completed MD segment's execution time in; failed
// and non-MD results are ignored.
func (e *execStats) observe(res task.Result) {
	if res.Failed() || res.Spec == nil || res.Spec.Kind != task.MD {
		return
	}
	e.n++
	d := res.Exec - e.mean
	e.mean += d / float64(e.n)
	e.m2 += d * (res.Exec - e.mean)
}

// window returns mean + gain·stddev clamped to [lo, hi], or initial
// until two segments were observed.
func (e *execStats) window(initial, gain, lo, hi float64) float64 {
	if e.n < 2 {
		return initial
	}
	sigma := math.Sqrt(e.m2 / float64(e.n-1))
	return math.Min(math.Max(e.mean+gain*sigma, lo), hi)
}

// AdaptiveTrigger is a window trigger whose period adapts to the
// observed MD execution times: the window is mean + Gain·stddev of the
// segments seen so far, clamped to [MinWindow, MaxWindow]. Under uniform
// replica performance the window shrinks towards the mean segment time
// (fast exchanges, little idling); under heterogeneous or jittery
// performance it grows so that most replicas make each exchange — the
// flexible transition criterion the paper argues patterns should expose.
type AdaptiveTrigger struct {
	// Initial is the window used until enough segments were observed.
	Initial float64
	// Gain is the dispersion multiplier (default 2).
	Gain float64
	// MinWindow and MaxWindow clamp the adapted window; they default to
	// Initial/4 and Initial*4.
	MinWindow, MaxWindow float64
	// MinReady, when positive, fires early once that many replicas are
	// ready (as in WindowTrigger).
	MinReady int

	stats execStats

	windowEnd float64
}

// NewAdaptiveTrigger returns an adaptive-window policy starting from the
// given initial window.
func NewAdaptiveTrigger(initial float64) *AdaptiveTrigger {
	return &AdaptiveTrigger{Initial: initial}
}

// Validate rejects parameterizations that cannot make progress.
func (t *AdaptiveTrigger) Validate() error {
	if t.Initial <= 0 {
		return fmt.Errorf("adaptive trigger requires a positive initial window, got %g", t.Initial)
	}
	if t.MinWindow < 0 || (t.MaxWindow > 0 && t.MaxWindow < t.MinWindow) {
		return fmt.Errorf("adaptive trigger window clamp [%g, %g] is invalid", t.MinWindow, t.MaxWindow)
	}
	return nil
}

// Name identifies the policy.
func (t *AdaptiveTrigger) Name() string { return "adaptive" }

// Aligned reports false: adaptive windows exchange among ready subsets.
func (t *AdaptiveTrigger) Aligned() bool { return false }

// Deadline is the current (adapted) window boundary.
func (t *AdaptiveTrigger) Deadline(TriggerState) float64 { return t.windowEnd }

// Decide mirrors WindowTrigger against the adapted boundary.
func (t *AdaptiveTrigger) Decide(st TriggerState) TriggerDecision {
	return windowDecision(st, t.windowEnd, t.MinReady)
}

// Observe folds a completed MD segment's execution time into the
// dispersion estimate.
func (t *AdaptiveTrigger) Observe(res task.Result) { t.stats.observe(res) }

// window returns the current adapted window length.
func (t *AdaptiveTrigger) window() float64 {
	lo, hi := t.MinWindow, t.MaxWindow
	if lo <= 0 {
		lo = t.Initial / 4
	}
	if hi <= 0 {
		hi = t.Initial * 4
	}
	gain := t.Gain
	if gain <= 0 {
		gain = 2
	}
	return t.stats.window(t.Initial, gain, lo, hi)
}

// Reset opens the next window at the adapted length.
func (t *AdaptiveTrigger) Reset(st TriggerState) { t.windowEnd = st.Now + t.window() }

// adaptiveState is the serialized dispersion state of an AdaptiveTrigger.
type adaptiveState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// EncodeState serializes the dispersion estimate (StatefulTrigger), so
// a resumed adaptive run reopens its window at the adapted length
// instead of falling back to Initial.
func (t *AdaptiveTrigger) EncodeState() ([]byte, error) {
	return json.Marshal(&adaptiveState{N: t.stats.n, Mean: t.stats.mean, M2: t.stats.m2})
}

// RestoreState replaces the dispersion estimate with one produced by
// EncodeState (StatefulTrigger).
func (t *AdaptiveTrigger) RestoreState(data []byte) error {
	var st adaptiveState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: decoding adaptive trigger state: %v", err)
	}
	if st.N < 0 || st.M2 < 0 {
		return fmt.Errorf("core: adaptive trigger state n=%d m2=%g is invalid", st.N, st.M2)
	}
	t.stats = execStats{n: st.N, mean: st.Mean, m2: st.M2}
	return nil
}

// ---------------------------------------------------------------------------
// FeedbackTrigger: closed-loop acceptance control.

// DefaultTargetAcceptance is FeedbackTrigger's default acceptance-ratio
// set point, in the band REMD practice aims exchange ladders at.
const DefaultTargetAcceptance = 0.3

// FeedbackTrigger is a window trigger that closes the loop on the
// quantity REMD is actually judged by: the neighbour-pair acceptance
// ratio. It keeps a rolling window of the last WindowEvents
// true-neighbour exchange outcomes (fed by the dispatcher through the
// ExchangeObserver hook) and steers its exchange window with
// proportional control to hold Target:
//
//	window *= 1 + Gain·(Target - measured)
//
// clamped per step and to [MinWindow, MaxWindow]. Measured acceptance
// below the target widens the window — more replicas make each
// exchange, ready subsets stay contiguous and fewer attempts straddle
// window gaps — while acceptance above it narrows the window so ready
// replicas exchange (and re-enter MD) sooner. A deadband around the
// target (Deadband) provides hysteresis so measurement noise does not
// jitter the window, and gap pairs (Hi > Lo+1, bridging dead replicas
// or ready-subset holes) never enter the measurement, so the controller
// cannot chase dead-replica artifacts.
//
// Until the outcome window has filled once, the policy falls back to
// AdaptiveTrigger behaviour: the window tracks mean + 2σ of the
// observed MD execution times, giving the controller a sane operating
// point to take over from.
type FeedbackTrigger struct {
	// Initial is the window used until enough data accumulates.
	Initial float64
	// Target is the acceptance-ratio set point (default
	// DefaultTargetAcceptance).
	Target float64
	// WindowEvents is the rolling measurement window: the number of
	// recent neighbour-pair outcomes acceptance is computed over
	// (default 64).
	WindowEvents int
	// Gain is the proportional gain: relative window change per unit of
	// acceptance error (default 1.5).
	Gain float64
	// Deadband is the hysteresis half-width: errors within ±Deadband of
	// the target leave the window unchanged (default 0.02).
	Deadband float64
	// MinWindow and MaxWindow clamp the controlled window; they default
	// to Initial/8 and Initial*8 (wider than AdaptiveTrigger's, since
	// the controller is expected to explore).
	MinWindow, MaxWindow float64
	// MinReady, when positive, fires early once that many replicas are
	// ready (as in WindowTrigger).
	MinReady int

	// warm is the warm-up dispersion estimate over observed MD
	// execution times (the AdaptiveTrigger fallback).
	warm execStats

	// win is the rolling window of neighbour-pair outcomes, the same
	// ring structure the analysis collector keeps per pair.
	win ring.Bool

	// cur is the controlled window length; valid once active.
	cur    float64
	active bool

	windowEnd float64
}

// NewFeedbackTrigger returns an acceptance-targeting policy starting
// from the given initial window.
func NewFeedbackTrigger(initial float64) *FeedbackTrigger {
	return &FeedbackTrigger{Initial: initial}
}

// Validate rejects parameterizations that cannot make progress.
func (t *FeedbackTrigger) Validate() error {
	if t.Initial <= 0 {
		return fmt.Errorf("feedback trigger requires a positive initial window, got %g", t.Initial)
	}
	if t.Target < 0 || t.Target >= 1 {
		return fmt.Errorf("feedback trigger target acceptance %g outside [0, 1) (0 selects the default %g)",
			t.Target, DefaultTargetAcceptance)
	}
	if t.WindowEvents < 0 {
		return fmt.Errorf("feedback trigger window events must be non-negative, got %d", t.WindowEvents)
	}
	if t.Gain < 0 || t.Deadband < 0 {
		return fmt.Errorf("feedback trigger gain %g and deadband %g must be non-negative", t.Gain, t.Deadband)
	}
	if t.MinWindow < 0 || (t.MaxWindow > 0 && t.MaxWindow < t.MinWindow) {
		return fmt.Errorf("feedback trigger window clamp [%g, %g] is invalid", t.MinWindow, t.MaxWindow)
	}
	return nil
}

// Name identifies the policy.
func (t *FeedbackTrigger) Name() string { return "feedback" }

// Aligned reports false: feedback windows exchange among ready subsets.
func (t *FeedbackTrigger) Aligned() bool { return false }

// Deadline is the current window boundary.
func (t *FeedbackTrigger) Deadline(TriggerState) float64 { return t.windowEnd }

// Decide mirrors WindowTrigger against the controlled boundary, with
// one closed-loop refinement: when no MD segment is outstanding the
// exchange fires immediately instead of idling to the boundary. The
// window exists to gather more participants per exchange — once nothing
// more can arrive, waiting cannot raise acceptance, only burn
// allocation.
func (t *FeedbackTrigger) Decide(st TriggerState) TriggerDecision {
	if st.Pending == 0 {
		return TriggerFire
	}
	return windowDecision(st, t.windowEnd, t.MinReady)
}

// Observe folds a completed MD segment's execution time into the
// warm-up dispersion estimate (the AdaptiveTrigger fallback).
func (t *FeedbackTrigger) Observe(res task.Result) { t.warm.observe(res) }

// ObserveExchange feeds the exchange event's true-neighbour outcomes
// into the rolling measurement window and, once the window has filled,
// applies one proportional control step. Gap pairs (Hi > Lo+1) are
// excluded, and events contributing no fresh neighbour outcome apply no
// step — stale measurements must not keep pushing the window.
func (t *FeedbackTrigger) ObserveExchange(ev ExchangeEvent) {
	fresh := false
	for _, p := range ev.Pairs {
		if p.Hi != p.Lo+1 {
			continue
		}
		t.win.Push(p.Accepted, t.windowEvents())
		fresh = true
	}
	if !t.active && t.win.N > 0 && t.win.N == len(t.win.Outcomes) {
		// The measurement window filled for the first time: the
		// controller takes over from the warm-up window.
		t.active = true
		t.cur = t.warmWindow()
	}
	if !t.active || !fresh {
		return
	}
	err := t.target() - float64(t.win.Accepted)/float64(t.win.N)
	if math.Abs(err) <= t.deadband() {
		return
	}
	factor := 1 + t.gain()*err
	// Bound a single step: one noisy window must not collapse or
	// explode the operating point.
	factor = math.Min(math.Max(factor, 0.5), 2)
	lo, hi := t.clamps()
	t.cur = math.Min(math.Max(t.cur*factor, lo), hi)
}

// Acceptance returns the measured rolling-window acceptance ratio and
// the number of outcomes it covers.
func (t *FeedbackTrigger) Acceptance() (ratio float64, outcomes int) {
	if t.win.N == 0 {
		return 0, 0
	}
	return float64(t.win.Accepted) / float64(t.win.N), t.win.N
}

// Window returns the window length the next Reset will open with.
func (t *FeedbackTrigger) Window() float64 {
	if t.active {
		return t.cur
	}
	return t.warmWindow()
}

func (t *FeedbackTrigger) target() float64 {
	if t.Target > 0 {
		return t.Target
	}
	return DefaultTargetAcceptance
}

func (t *FeedbackTrigger) gain() float64 {
	if t.Gain > 0 {
		return t.Gain
	}
	return 1.5
}

func (t *FeedbackTrigger) deadband() float64 {
	if t.Deadband > 0 {
		return t.Deadband
	}
	return 0.02
}

func (t *FeedbackTrigger) windowEvents() int {
	if t.WindowEvents > 0 {
		return t.WindowEvents
	}
	return 64
}

func (t *FeedbackTrigger) clamps() (lo, hi float64) {
	lo, hi = t.MinWindow, t.MaxWindow
	if lo <= 0 {
		lo = t.Initial / 8
	}
	if hi <= 0 {
		hi = t.Initial * 8
	}
	return lo, hi
}

// warmWindow is the AdaptiveTrigger-style fallback: mean + 2σ of the
// observed MD execution times, clamped.
func (t *FeedbackTrigger) warmWindow() float64 {
	lo, hi := t.clamps()
	return t.warm.window(t.Initial, 2, lo, hi)
}

// Reset opens the next window at the controlled (or warm-up) length.
func (t *FeedbackTrigger) Reset(st TriggerState) { t.windowEnd = st.Now + t.Window() }

// feedbackState is the serialized controller state of a FeedbackTrigger.
type feedbackState struct {
	// Outcomes is the rolling window's contents, oldest first.
	Outcomes []bool  `json:"outcomes"`
	Cur      float64 `json:"cur"`
	Active   bool    `json:"active"`
	WarmN    int     `json:"warm_n"`
	WarmMean float64 `json:"warm_mean"`
	WarmM2   float64 `json:"warm_m2"`
}

// EncodeState serializes the controller state (StatefulTrigger).
func (t *FeedbackTrigger) EncodeState() ([]byte, error) {
	st := feedbackState{
		Outcomes: t.win.Linear(),
		Cur:      t.cur,
		Active:   t.active,
		WarmN:    t.warm.n,
		WarmMean: t.warm.mean,
		WarmM2:   t.warm.m2,
	}
	return json.Marshal(&st)
}

// RestoreState replaces the controller state with one produced by
// EncodeState (StatefulTrigger). Outcomes beyond this trigger's
// WindowEvents are dropped oldest-first.
func (t *FeedbackTrigger) RestoreState(data []byte) error {
	var st feedbackState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: decoding feedback trigger state: %v", err)
	}
	t.win = ring.Bool{}
	for _, v := range st.Outcomes {
		t.win.Push(v, t.windowEvents())
	}
	t.cur = st.Cur
	t.active = st.Active
	t.warm = execStats{n: st.WarmN, mean: st.WarmMean, m2: st.WarmM2}
	if t.active && t.cur <= 0 {
		return fmt.Errorf("core: feedback trigger state is active with window %g", t.cur)
	}
	return nil
}
