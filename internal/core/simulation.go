package core

import (
	"math"
	"math/rand"

	"repro/internal/exchange"
	"repro/internal/md"
	"repro/internal/task"
)

// Simulation is a configured REMD run: the EMM of the paper's module
// structure. It owns the replica set, the slot-to-replica mapping and
// all runtime interaction; it is engine independent.
type Simulation struct {
	spec   *Spec
	engine Engine
	rt     task.Runtime

	grid       exchange.Grid
	replicas   []*Replica
	replicaAt  []int // slot -> replica ID
	slotParams []md.Params
	// slotGroups caches grid.GroupsAlong per dimension: the grouping is a
	// pure function of the grid shape, so recomputing it on every
	// exchange event (hot for asynchronous triggers) would be waste.
	slotGroups [][][]int
	// dimStride caches the row-major stride of each dimension for O(1)
	// slot-to-window-index conversion when publishing pair outcomes.
	dimStride []int
	// pairScratch accumulates the current exchange event's pair outcomes
	// for the event bus and the trigger's ExchangeObserver hook (nil
	// while neither consumer is attached).
	pairScratch []PairOutcome
	// exObs is the running trigger's ExchangeObserver side, set by
	// dispatch for closed-loop policies (nil otherwise).
	exObs ExchangeObserver
	rng   *rand.Rand
	// rngDraws counts uniforms consumed from rng, so a Snapshot can
	// restore the exact RNG state by replaying the draw count.
	rngDraws int64

	// resumeEvents is the exchange-event counter restored from
	// Spec.Resume (0 for a fresh run); resumeElapsed is the virtual run
	// time consumed before the snapshot, and resumed marks a restored
	// run.
	resumeEvents  int
	resumeElapsed float64
	resumed       bool

	report *Report
}

// New validates the spec and builds the replica set with initial
// parameters; replica i starts in slot i.
func New(spec *Spec, engine Engine, rt task.Runtime) (*Simulation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.MaxRetries == 0 {
		spec.MaxRetries = 3
	}
	grid := spec.Grid()
	n := grid.Size()
	s := &Simulation{
		spec:       spec,
		engine:     engine,
		rt:         rt,
		grid:       grid,
		replicas:   make([]*Replica, n),
		replicaAt:  make([]int, n),
		slotParams: make([]md.Params, n),
		rng:        rand.New(rand.NewSource(spec.Seed)),
	}
	for slot := 0; slot < n; slot++ {
		s.slotParams[slot] = s.paramsForSlot(slot)
	}
	s.slotGroups = make([][][]int, len(spec.Dims))
	for d := range spec.Dims {
		s.slotGroups[d] = grid.GroupsAlong(d)
	}
	s.dimStride = make([]int, len(spec.Dims))
	stride := 1
	for d := len(spec.Dims) - 1; d >= 0; d-- {
		s.dimStride[d] = stride
		stride *= len(spec.Dims[d].Values)
	}
	for i := 0; i < n; i++ {
		r := &Replica{
			ID:     i,
			Slot:   i,
			Params: s.slotParams[i].Clone(),
			Alive:  true,
		}
		engine.InitReplica(r, spec)
		s.replicas[i] = r
		s.replicaAt[i] = i
	}
	mode := ModeI
	if rt.Cores() < n*spec.CoresPerReplica {
		mode = ModeII
	}
	s.report = &Report{
		Name:     spec.Name,
		DimCode:  spec.DimCode(),
		Pattern:  spec.Pattern,
		Mode:     mode,
		Engine:   engine.Name(),
		Replicas: n,
		Cores:    rt.Cores(),
		Cycles:   spec.Cycles,
	}
	if spec.Resume != nil {
		if err := s.applySnapshot(spec.Resume); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// paramsForSlot derives the thermodynamic parameters of a grid slot.
func (s *Simulation) paramsForSlot(slot int) md.Params {
	coord := s.grid.Coord(slot)
	p := md.Params{TemperatureK: s.spec.BaseTemperature, SaltM: s.spec.BaseSalt}
	if p.TemperatureK <= 0 {
		p.TemperatureK = 300
	}
	for d, dim := range s.spec.Dims {
		v := dim.Values[coord[d]]
		switch dim.Type {
		case exchange.Temperature:
			p.TemperatureK = v
		case exchange.Salt:
			p.SaltM = v
		case exchange.PH:
			p.PH = v
		case exchange.Umbrella:
			p.Restraints = append(p.Restraints, md.TorsionRestraint{
				Dihedral: s.engine.TorsionIndex(dim.Torsion),
				Center:   v,
				K:        dim.K,
			})
		}
	}
	return p
}

// Replicas exposes the replica set (read-mostly; used by analysis).
func (s *Simulation) Replicas() []*Replica { return s.replicas }

// Report returns the accumulating run report.
func (s *Simulation) Report() *Report { return s.report }

// Grid returns the replica grid.
func (s *Simulation) Grid() exchange.Grid { return s.grid }

// SlotParams returns the fixed parameters of a slot.
func (s *Simulation) SlotParams(slot int) md.Params { return s.slotParams[slot] }

// Run executes the simulation under the spec's exchange-trigger policy
// (derived from the RE pattern when none is set explicitly) and returns
// the report.
func (s *Simulation) Run() (*Report, error) {
	// A resumed run back-dates its start by the snapshot's elapsed time,
	// keeping Makespan and Utilization cumulative over the whole
	// simulation rather than just the post-resume segment.
	s.report.Start = s.rt.Now() - s.resumeElapsed
	tr, err := s.spec.triggerPolicy()
	if err == nil {
		s.report.Trigger = tr.Name()
		err = s.dispatch(tr)
	}
	s.report.End = s.rt.Now()
	return s.report, err
}

// finishMD processes one final MD task result: cycle count and energy
// refresh, or replica death. Relaunchable failures never reach this
// point — the dispatcher resubmits them as fresh events (see dispatch),
// so a result that arrives here failed has exhausted its retry budget
// (or runs under FaultDrop) and removes the replica.
func (s *Simulation) finishMD(r *Replica, res task.Result, phase *PhaseRecord) {
	phase.absorb(res)
	s.report.MDExecCoreSeconds += res.Exec * float64(res.Spec.Cores)
	if res.Failed() {
		r.Alive = false
		s.report.Dropped++
		if s.spec.Bus != nil {
			s.spec.Bus.Publish(MDEvent{At: s.rt.Now(), Replica: r.ID, Cycle: r.Cycle,
				Exec: res.Exec, Failed: true})
			s.spec.Bus.Publish(FaultEvent{At: s.rt.Now(), Replica: r.ID,
				Kind: FaultKindDrop, Retries: r.Retries})
		}
		return
	}
	r.Cycle++
	r.Energy = s.engine.OwnEnergy(r)
	if s.spec.Bus != nil {
		s.spec.Bus.Publish(MDEvent{At: s.rt.Now(), Replica: r.ID, Cycle: r.Cycle,
			Exec: res.Exec})
	}
}

// coordAlong returns slot's window index along dimension d.
func (s *Simulation) coordAlong(slot, d int) int {
	return slot / s.dimStride[d] % len(s.spec.Dims[d].Values)
}

// wantsPairOutcomes reports whether anyone consumes per-pair exchange
// outcomes: the event bus or a closed-loop trigger's observer hook.
func (s *Simulation) wantsPairOutcomes() bool {
	return s.spec.Bus != nil || s.exObs != nil
}

// publishExchange emits the ExchangeEvent record of the exchange event
// that just completed; called by the dispatcher right after
// snapshotSlots, so Slots shares the freshly appended history row. The
// trigger's ExchangeObserver hook (closed-loop policies) is fed first,
// synchronously — it can never lose events to ring overflow — then the
// bus fans the same record out to its subscribers.
func (s *Simulation) publishExchange(event, cycle, dim int, rec *CycleRecord) {
	if !s.wantsPairOutcomes() {
		return
	}
	pairs := s.pairScratch
	s.pairScratch = nil
	var row []int
	if n := len(s.report.SlotHistory); n > 0 {
		row = s.report.SlotHistory[n-1]
	}
	ev := ExchangeEvent{At: s.rt.Now(), Event: event, Cycle: cycle,
		Dim: dim, Pairs: pairs, Slots: row, MDWall: rec.MD.Wall, EXWall: rec.EX.Wall}
	if s.exObs != nil {
		s.exObs.ObserveExchange(ev)
	}
	if s.spec.Bus != nil {
		s.spec.Bus.Publish(ev)
	}
}

// pairProbability computes the Metropolis acceptance probability for
// swapping the slots of replicas a and b along dimension d.
func (s *Simulation) pairProbability(d int, a, b *Replica) float64 {
	dim := s.spec.Dims[d]
	betaA := a.Params.Beta()
	betaB := b.Params.Beta()
	if dim.Type == exchange.Temperature {
		return exchange.AcceptTemperature(betaA, betaB, a.Energy, b.Energy)
	}
	// Hamiltonian exchange: cross energies of each configuration under
	// the other's parameters.
	eAA := a.Energy
	eBB := b.Energy
	eAB := s.engine.CrossEnergy(b, a.Params) // A's params on B's coords
	eBA := s.engine.CrossEnergy(a, b.Params) // B's params on A's coords
	return exchange.AcceptHamiltonian(betaA, betaB, eAA, eAB, eBA, eBB)
}

// applySwap exchanges the grid slots (and hence parameters) of two
// replicas. For real engines with a temperature change, velocities are
// rescaled by sqrt(Tnew/Told), the standard T-REMD velocity rescaling.
func (s *Simulation) applySwap(a, b *Replica) {
	oldTa, oldTb := a.Params.TemperatureK, b.Params.TemperatureK
	a.Slot, b.Slot = b.Slot, a.Slot
	s.replicaAt[a.Slot] = a.ID
	s.replicaAt[b.Slot] = b.ID
	a.Params = s.slotParams[a.Slot].Clone()
	b.Params = s.slotParams[b.Slot].Clone()
	if a.State != nil && a.Params.TemperatureK != oldTa {
		scale := math.Sqrt(a.Params.TemperatureK / oldTa)
		for i := range a.State.Vel {
			a.State.Vel[i] = a.State.Vel[i].Scale(scale)
		}
	}
	if b.State != nil && b.Params.TemperatureK != oldTb {
		scale := math.Sqrt(b.Params.TemperatureK / oldTb)
		for i := range b.State.Vel {
			b.State.Vel[i] = b.State.Vel[i].Scale(scale)
		}
	}
}

// snapshotSlots appends the replicas' current slot assignment to the
// report's slot history.
func (s *Simulation) snapshotSlots() {
	row := make([]int, len(s.replicas))
	for i, r := range s.replicas {
		row[i] = r.Slot
	}
	s.report.SlotHistory = append(s.report.SlotHistory, row)
}

// aliveReplicas returns the live replicas in ID order.
func (s *Simulation) aliveReplicas() []*Replica {
	var out []*Replica
	for _, r := range s.replicas {
		if r.Alive {
			out = append(out, r)
		}
	}
	return out
}

// budgetedReplicas returns the live replicas that still have MD segments
// left, in ID order. On a fresh run this equals aliveReplicas; after a
// resume, replicas restored at their full segment budget are excluded.
func (s *Simulation) budgetedReplicas(segBudget int) []*Replica {
	var out []*Replica
	for _, r := range s.replicas {
		if r.Alive && r.Cycle < segBudget {
			out = append(out, r)
		}
	}
	return out
}

func (s *Simulation) aliveCount() int {
	n := 0
	for _, r := range s.replicas {
		if r.Alive {
			n++
		}
	}
	return n
}

// liveGroups returns, for dimension d, the exchange groups as slices of
// live replicas ordered by their coordinate along d. Dead replicas are
// skipped, which is what lets the simulation continue across failures.
// The slot grouping comes from the per-dimension cache built in New.
func (s *Simulation) liveGroups(d int) [][]*Replica {
	slotGroups := s.slotGroups[d]
	out := make([][]*Replica, 0, len(slotGroups))
	for _, slots := range slotGroups {
		var g []*Replica
		for _, slot := range slots {
			r := s.replicas[s.replicaAt[slot]]
			if r.Alive {
				g = append(g, r)
			}
		}
		if len(g) >= 1 {
			out = append(out, g)
		}
	}
	return out
}
