package core

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/exchange"
	"repro/internal/md"
	"repro/internal/task"
	"repro/internal/trace"
)

// Simulation is a configured REMD run: the EMM of the paper's module
// structure. It owns the replica set, the slot-to-replica mapping and
// all runtime interaction; it is engine independent.
type Simulation struct {
	spec   *Spec
	engine Engine
	rt     task.Runtime

	grid       exchange.Grid
	replicas   []*Replica
	replicaAt  []int // slot -> replica ID
	slotParams []md.Params
	// slotGroups caches grid.GroupsAlong per dimension: the grouping is a
	// pure function of the grid shape, so recomputing it on every
	// exchange event (hot for asynchronous triggers) would be waste.
	slotGroups [][][]int
	// dimStride caches the row-major stride of each dimension for O(1)
	// slot-to-window-index conversion when publishing pair outcomes.
	dimStride []int
	// pairScratch accumulates the current exchange event's pair outcomes
	// for the event bus and the trigger's ExchangeObserver hook (nil
	// while neither consumer is attached).
	pairScratch []PairOutcome
	// exObs is the running trigger's ExchangeObserver side, set by
	// dispatch for closed-loop policies (nil otherwise).
	exObs ExchangeObserver
	rng   *rand.Rand
	// rngDraws counts uniforms consumed from rng, so a Snapshot can
	// restore the exact RNG state by replaying the draw count.
	rngDraws int64

	// exWorkers is the resolved exchange worker-pool bound; exForce marks
	// an explicit Spec.ExchangeWorkers >= 2, which shards regardless of
	// event size (the default pool stays serial below a work threshold).
	exWorkers int
	exForce   bool
	// Exchange-phase scratch, reused across events so the hot loop
	// allocates nothing per exchange: participant membership by replica
	// ID, the flat group members with their boundary offsets and IDs, the
	// grouped view handed to liveGroups callers, the flat pair list and
	// its probability/uniform arrays, and the single-point-energy
	// handles.
	inScratch    []bool
	exMembers    []*Replica
	exOff        []int
	exIDs        []int
	groupScratch [][]*Replica
	exPairs      []exchange.Pair
	exProbs      []float64
	exUnis       []float64
	speScratch   []task.Handle
	// busBatch accumulates a collection round's bus events for one
	// batched Bus.PublishBatch call per dispatcher wakeup.
	busBatch []Event
	// tracer is the optional flight recorder (Spec.Tracer); the
	// record* helpers in tracer.go no-op while it is nil.
	tracer *trace.Recorder

	// respaceMu guards the fields a live ladder re-fit rewrites against
	// concurrent status readers: spec.Dims values, slotParams, the refit
	// counters and the respacing history. Only the dispatcher goroutine
	// mutates them; HTTP surfaces read through LadderValues and
	// RespaceHistory.
	respaceMu sync.Mutex
	// respacings is the run's refit history (appended by maybeRespace);
	// refits counts refits per dimension for the MaxRefits budget.
	respacings []RespaceRecord
	refits     []int

	// resumeEvents is the exchange-event counter restored from
	// Spec.Resume (0 for a fresh run); resumeElapsed is the virtual run
	// time consumed before the snapshot, and resumed marks a restored
	// run.
	resumeEvents  int
	resumeElapsed float64
	resumed       bool

	// state is the run's lifecycle state (RunState), readable
	// concurrently through State while the dispatcher runs.
	state atomic.Int32

	report *Report
}

// New validates the spec and builds the replica set with initial
// parameters; replica i starts in slot i.
func New(spec *Spec, engine Engine, rt task.Runtime) (*Simulation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.MaxRetries == 0 {
		spec.MaxRetries = 3
	}
	grid := spec.Grid()
	n := grid.Size()
	s := &Simulation{
		spec:       spec,
		engine:     engine,
		rt:         rt,
		grid:       grid,
		replicas:   make([]*Replica, n),
		replicaAt:  make([]int, n),
		slotParams: make([]md.Params, n),
		rng:        rand.New(rand.NewSource(spec.Seed)),
		tracer:     spec.Tracer,
	}
	for slot := 0; slot < n; slot++ {
		s.slotParams[slot] = s.paramsForSlot(slot)
	}
	s.slotGroups = make([][][]int, len(spec.Dims))
	for d := range spec.Dims {
		s.slotGroups[d] = grid.GroupsAlong(d)
	}
	s.dimStride = make([]int, len(spec.Dims))
	s.refits = make([]int, len(spec.Dims))
	stride := 1
	for d := len(spec.Dims) - 1; d >= 0; d-- {
		s.dimStride[d] = stride
		stride *= len(spec.Dims[d].Values)
	}
	for i := 0; i < n; i++ {
		r := &Replica{
			ID:     i,
			Slot:   i,
			Params: s.slotParams[i].Clone(),
			Alive:  true,
		}
		engine.InitReplica(r, spec)
		s.replicas[i] = r
		s.replicaAt[i] = i
	}
	s.exWorkers = spec.ExchangeWorkers
	switch {
	case s.exWorkers <= 0:
		s.exWorkers = runtime.GOMAXPROCS(0)
	case s.exWorkers >= 2:
		s.exForce = true
	}
	s.inScratch = make([]bool, n)
	mode := ModeI
	if rt.Cores() < n*spec.CoresPerReplica {
		mode = ModeII
	}
	s.report = &Report{
		Name:            spec.Name,
		DimCode:         spec.DimCode(),
		Pattern:         spec.Pattern,
		Mode:            mode,
		Engine:          engine.Name(),
		Replicas:        n,
		Cores:           rt.Cores(),
		Cycles:          spec.Cycles,
		SlotFingerprint: fnv64Offset,
	}
	if spec.Resume != nil {
		if err := s.applySnapshot(spec.Resume); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// paramsForSlot derives the thermodynamic parameters of a grid slot.
func (s *Simulation) paramsForSlot(slot int) md.Params {
	coord := s.grid.Coord(slot)
	p := md.Params{TemperatureK: s.spec.BaseTemperature, SaltM: s.spec.BaseSalt}
	if p.TemperatureK <= 0 {
		p.TemperatureK = 300
	}
	for d, dim := range s.spec.Dims {
		v := dim.Values[coord[d]]
		switch dim.Type {
		case exchange.Temperature:
			p.TemperatureK = v
		case exchange.Salt:
			p.SaltM = v
		case exchange.PH:
			p.PH = v
		case exchange.Umbrella:
			p.Restraints = append(p.Restraints, md.TorsionRestraint{
				Dihedral: s.engine.TorsionIndex(dim.Torsion),
				Center:   v,
				K:        dim.K,
			})
		}
	}
	return p
}

// Replicas exposes the replica set (read-mostly; used by analysis).
func (s *Simulation) Replicas() []*Replica { return s.replicas }

// Report returns the accumulating run report.
func (s *Simulation) Report() *Report { return s.report }

// Grid returns the replica grid.
func (s *Simulation) Grid() exchange.Grid { return s.grid }

// SlotParams returns the fixed parameters of a slot.
func (s *Simulation) SlotParams(slot int) md.Params { return s.slotParams[slot] }

// finishMD processes one final MD task result: cycle count and energy
// refresh, or replica death. Relaunchable failures never reach this
// point — the dispatcher resubmits them as fresh events (see dispatch),
// so a result that arrives here failed has exhausted its retry budget
// (or runs under FaultDrop) and removes the replica.
func (s *Simulation) finishMD(r *Replica, res task.Result, phase *PhaseRecord) {
	phase.absorb(res)
	s.report.MDExecCoreSeconds += res.Exec * float64(res.Spec.Cores)
	if res.Failed() {
		r.Alive = false
		s.report.Dropped++
		s.publish(MDEvent{At: s.rt.Now(), Replica: r.ID, Cycle: r.Cycle,
			Exec: res.Exec, Failed: true})
		s.publish(FaultEvent{At: s.rt.Now(), Replica: r.ID,
			Kind: FaultKindDrop, Retries: r.Retries})
		s.recordFault(r.ID, FaultKindDrop, r.Retries)
		return
	}
	r.Cycle++
	r.Energy = s.engine.OwnEnergy(r)
	s.publish(MDEvent{At: s.rt.Now(), Replica: r.ID, Cycle: r.Cycle,
		Exec: res.Exec})
}

// publish queues one event for the next batched bus flush; a no-op
// without a bus. Queued events reach subscribers in publication order
// when the dispatcher calls flushBus (once per wakeup / exchange event),
// which takes each subscriber's ring lock once per batch instead of once
// per event.
func (s *Simulation) publish(ev Event) {
	if s.spec.Bus != nil {
		s.busBatch = append(s.busBatch, ev)
	}
}

// flushBus delivers the queued event batch to the bus.
func (s *Simulation) flushBus() {
	if len(s.busBatch) == 0 {
		return
	}
	s.spec.Bus.PublishBatch(s.busBatch)
	for i := range s.busBatch {
		s.busBatch[i] = nil
	}
	s.busBatch = s.busBatch[:0]
}

// drainResourceEvents pulls buffered pilot lifecycle events out of an
// elastic runtime (one implementing task.ResourceReporter) into the
// observability pipeline: each is queued on the bus as a ResourceEvent,
// mirrored onto the flight recorder, and preemption notices bump the
// report counter. Runtimes without the interface make this a no-op, and
// nothing here touches the RNG stream or the virtual clock.
func (s *Simulation) drainResourceEvents() {
	rr, ok := s.rt.(task.ResourceReporter)
	if !ok {
		return
	}
	for _, ev := range rr.DrainResourceEvents() {
		if ev.Kind == task.ResourcePreempt {
			s.report.Preemptions++
		}
		s.publish(ResourceEvent{At: ev.At, Pilot: ev.Pilot, Kind: ev.Kind,
			Cores: ev.Cores, Delta: ev.Delta, Notice: ev.Notice})
		s.recordResource(ev)
	}
}

// coordAlong returns slot's window index along dimension d.
func (s *Simulation) coordAlong(slot, d int) int {
	return slot / s.dimStride[d] % len(s.spec.Dims[d].Values)
}

// wantsPairOutcomes reports whether anyone consumes per-pair exchange
// outcomes: the event bus or a closed-loop trigger's observer hook.
func (s *Simulation) wantsPairOutcomes() bool {
	return s.spec.Bus != nil || s.exObs != nil
}

// publishExchange emits the ExchangeEvent record of the exchange event
// that just completed; called by the dispatcher right after
// snapshotSlots, so Slots shares the freshly appended history row. The
// trigger's ExchangeObserver hook (closed-loop policies) is fed first,
// synchronously — it can never lose events to ring overflow — then the
// bus fans the same record out to its subscribers.
func (s *Simulation) publishExchange(event, cycle, dim int, rec *CycleRecord) {
	if !s.wantsPairOutcomes() {
		return
	}
	pairs := s.pairScratch
	s.pairScratch = nil
	var row []int
	if n := len(s.report.SlotHistory); n > 0 {
		row = s.report.SlotHistory[n-1]
	}
	ev := ExchangeEvent{At: s.rt.Now(), Event: event, Cycle: cycle,
		Dim: dim, Pairs: pairs, Slots: row, MDWall: rec.MD.Wall, EXWall: rec.EX.Wall}
	if s.exObs != nil {
		s.exObs.ObserveExchange(ev)
	}
	s.publish(ev)
	s.flushBus()
}

// pairProbability computes the Metropolis acceptance probability for
// swapping the slots of replicas a and b along dimension d.
func (s *Simulation) pairProbability(d int, a, b *Replica) float64 {
	dim := s.spec.Dims[d]
	betaA := a.Params.Beta()
	betaB := b.Params.Beta()
	if dim.Type == exchange.Temperature {
		return exchange.AcceptTemperature(betaA, betaB, a.Energy, b.Energy)
	}
	// Hamiltonian exchange: cross energies of each configuration under
	// the other's parameters.
	eAA := a.Energy
	eBB := b.Energy
	eAB := s.engine.CrossEnergy(b, a.Params) // A's params on B's coords
	eBA := s.engine.CrossEnergy(a, b.Params) // B's params on A's coords
	return exchange.AcceptHamiltonian(betaA, betaB, eAA, eAB, eBA, eBB)
}

// applySwap exchanges the grid slots (and hence parameters) of two
// replicas. For real engines with a temperature change, velocities are
// rescaled by sqrt(Tnew/Told), the standard T-REMD velocity rescaling.
func (s *Simulation) applySwap(a, b *Replica) {
	oldTa, oldTb := a.Params.TemperatureK, b.Params.TemperatureK
	a.Slot, b.Slot = b.Slot, a.Slot
	s.replicaAt[a.Slot] = a.ID
	s.replicaAt[b.Slot] = b.ID
	a.Params = s.slotParams[a.Slot].Clone()
	b.Params = s.slotParams[b.Slot].Clone()
	if a.State != nil && a.Params.TemperatureK != oldTa {
		scale := math.Sqrt(a.Params.TemperatureK / oldTa)
		for i := range a.State.Vel {
			a.State.Vel[i] = a.State.Vel[i].Scale(scale)
		}
	}
	if b.State != nil && b.Params.TemperatureK != oldTb {
		scale := math.Sqrt(b.Params.TemperatureK / oldTb)
		for i := range b.State.Vel {
			b.State.Vel[i] = b.State.Vel[i].Scale(scale)
		}
	}
}

// snapshotSlots records the replicas' current slot assignment: the row
// is folded into the rolling fingerprint and appended to the report's
// slot history, which Spec.HistoryTail bounds to the most recent rows.
// A rotated-out row's backing array is recycled only when no bus is
// attached — ExchangeEvent.Slots shares the history rows, and a slow
// subscriber's ring may still reference rotated-out rows.
func (s *Simulation) snapshotSlots() {
	hist := s.report.SlotHistory
	tail := s.spec.HistoryTail
	rotate := tail > 0 && len(hist) >= tail
	var row []int
	if rotate && s.spec.Bus == nil {
		row = hist[0][:0]
	} else {
		row = make([]int, 0, len(s.replicas))
	}
	for _, r := range s.replicas {
		row = append(row, r.Slot)
	}
	s.report.SlotFingerprint = fnvRow(s.report.SlotFingerprint, row)
	s.report.SlotRows++
	if rotate {
		copy(hist, hist[1:])
		hist[len(hist)-1] = row
	} else {
		hist = append(hist, row)
	}
	s.report.SlotHistory = hist
}

// aliveReplicas returns the live replicas in ID order.
func (s *Simulation) aliveReplicas() []*Replica {
	var out []*Replica
	for _, r := range s.replicas {
		if r.Alive {
			out = append(out, r)
		}
	}
	return out
}

// budgetedReplicas returns the live replicas that still have MD segments
// left, in ID order. On a fresh run this equals aliveReplicas; after a
// resume, replicas restored at their full segment budget are excluded.
func (s *Simulation) budgetedReplicas(segBudget int) []*Replica {
	var out []*Replica
	for _, r := range s.replicas {
		if r.Alive && r.Cycle < segBudget {
			out = append(out, r)
		}
	}
	return out
}

func (s *Simulation) aliveCount() int {
	n := 0
	for _, r := range s.replicas {
		if r.Alive {
			n++
		}
	}
	return n
}

// collectGroups fills the exchange-group scratch for dimension d with
// the alive replicas for which keep (indexed by replica ID) is true —
// nil keeps every alive replica — dropping groups smaller than minSize.
// It returns the flat member slice and the group boundary offsets:
// group i is members[off[i]:off[i+1]]. Both returned slices alias
// per-simulation scratch and are valid until the next call.
func (s *Simulation) collectGroups(d int, keep []bool, minSize int) ([]*Replica, []int) {
	members := s.exMembers[:0]
	off := s.exOff[:0]
	for _, slots := range s.slotGroups[d] {
		start := len(members)
		for _, slot := range slots {
			r := s.replicas[s.replicaAt[slot]]
			if r.Alive && (keep == nil || keep[r.ID]) {
				members = append(members, r)
			}
		}
		if len(members)-start >= minSize {
			off = append(off, start)
		} else {
			members = members[:start]
		}
	}
	off = append(off, len(members))
	s.exMembers, s.exOff = members, off
	return members, off
}

// liveGroups returns, for dimension d, the exchange groups as slices of
// live replicas ordered by their coordinate along d. Dead replicas are
// skipped, which is what lets the simulation continue across failures.
// The slot grouping comes from the per-dimension cache built in New; the
// returned groups alias per-simulation scratch reused across exchange
// events and are valid until the next call.
func (s *Simulation) liveGroups(d int) [][]*Replica {
	members, off := s.collectGroups(d, nil, 1)
	out := s.groupScratch[:0]
	for i := 0; i+1 < len(off); i++ {
		out = append(out, members[off[i]:off[i+1]:off[i+1]])
	}
	s.groupScratch = out
	return out
}

// minPairsPerWorker gates the default exchange worker pool: below this
// many pairs per worker the goroutine fan-out costs more than the
// acceptance math it parallelizes, so small events stay serial. An
// explicit Spec.ExchangeWorkers >= 2 bypasses the gate.
const minPairsPerWorker = 256

// evalPairProbs fills probs[i] with the Metropolis acceptance
// probability of pairs[i] along dimension d, fanning the energy math
// across the bounded worker pool when the event is large enough (or
// sharding is forced). Probability evaluation is read-only over disjoint
// replica pairs — pairProbability touches only the pair's two replicas,
// and Engine.CrossEnergy implementations are pure — so the result is
// bit-identical to the serial loop for any worker count.
func (s *Simulation) evalPairProbs(d int, pairs []exchange.Pair, probs []float64) {
	workers := s.exWorkers
	if !s.exForce && workers > len(pairs)/minPairsPerWorker {
		workers = len(pairs) / minPairsPerWorker
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for i, pr := range pairs {
			probs[i] = s.pairProbability(d, s.replicas[pr.I], s.replicas[pr.J])
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for lo := 0; lo < len(pairs); lo += chunk {
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				pr := pairs[i]
				probs[i] = s.pairProbability(d, s.replicas[pr.I], s.replicas[pr.J])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// floatScratch returns a length-n slice, reusing s's backing when it is
// large enough.
func floatScratch(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
