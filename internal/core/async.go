package core

import (
	"repro/internal/exchange"
	"repro/internal/task"
)

// runAsync is the asynchronous RE pattern (paper §3.2.1, Figure 1b):
// there is no global barrier. Replicas run MD continuously; every
// AsyncWindow seconds of (runtime) time, the replicas that have finished
// their current MD segment transition into an exchange phase among
// themselves while the others keep simulating. This implements the
// paper's real-time-window transition criterion.
func (s *Simulation) runAsync() error {
	type pendingMD struct {
		r *Replica
		h task.Handle
	}
	var pending []pendingMD
	var ready []*Replica
	exDim := 0
	// mdAccum collects MD task stats between exchange events so the
	// report's records carry the MD phase too.
	var mdAccum PhaseRecord

	// submitBatch charges one task-preparation overhead for the whole
	// batch (as the synchronous pattern does per phase) and submits the
	// replicas' next MD segments.
	submitBatch := func(rs []*Replica) {
		if len(rs) == 0 {
			return
		}
		s.rt.Overhead(s.engine.PrepOverhead(len(rs), len(s.spec.Dims)))
		for _, r := range rs {
			pending = append(pending, pendingMD{r: r, h: s.rt.Submit(s.engine.MDTask(r, s.spec, exDim))})
		}
	}

	submitBatch(s.aliveReplicas())
	event := 0
	for len(pending) > 0 {
		// Collect completions until the window closes. With
		// AsyncMinReady == 0 the dispatcher acts only at window
		// boundaries (the paper's fixed real-time-period criterion);
		// with AsyncMinReady > 0 an exchange may trigger early once
		// that many replicas are ready.
		deadline := s.rt.Now() + s.spec.AsyncWindow
		earlyTrigger := false
		for s.rt.Now() < deadline && len(pending) > 0 {
			hs := make([]task.Handle, len(pending))
			for i, p := range pending {
				hs[i] = p.h
			}
			doneIdx := s.rt.AwaitAnyUntil(hs, deadline)
			if len(doneIdx) == 0 {
				break // window expired with nothing new
			}
			// Absorb finished MD tasks; keep the rest pending.
			doneSet := map[int]bool{}
			for _, i := range doneIdx {
				doneSet[i] = true
			}
			var still []pendingMD
			for i, p := range pending {
				if !doneSet[i] {
					still = append(still, p)
					continue
				}
				res := p.h.Result()
				s.finishMD(p.r, res, exDim, &mdAccum)
				if p.r.Alive {
					ready = append(ready, p.r)
				}
			}
			pending = still
			if s.spec.AsyncMinReady > 0 && len(ready) >= s.spec.AsyncMinReady && len(ready) >= 2 {
				earlyTrigger = true
				break
			}
		}
		// Pure window criterion: ready replicas idle until the window
		// boundary even when every running MD segment has finished —
		// the utilization cost of the asynchronous pattern (§4.6).
		if !earlyTrigger && s.rt.Now() < deadline && moreWorkRemains(ready, s.spec.Cycles) {
			s.rt.SleepUntil(deadline)
		}

		// Exchange among the ready subset (FIFO over the window).
		if len(ready) >= 2 {
			rec := CycleRecord{Cycle: event, Dim: exDim, MD: mdAccum}
			mdAccum = PhaseRecord{}
			exStart := s.rt.Now()
			s.exchangeSubset(ready, exDim, event, &rec)
			rec.EX.Wall = s.rt.Now() - exStart
			rec.Wall = rec.EX.Wall
			s.report.Records = append(s.report.Records, rec)
			s.report.ExchangeEvents++
			exDim = (exDim + 1) % len(s.spec.Dims)
			event++
		}

		// Ready replicas go back to MD (or finish their budget).
		var resubmit []*Replica
		for _, r := range ready {
			if r.Alive && r.Cycle < s.spec.Cycles {
				resubmit = append(resubmit, r)
			}
		}
		submitBatch(resubmit)
		ready = ready[:0]
	}
	return nil
}

// moreWorkRemains reports whether any ready replica still has MD cycles
// left (i.e. waiting for the window boundary is not pointless).
func moreWorkRemains(ready []*Replica, cycles int) bool {
	for _, r := range ready {
		if r.Alive && r.Cycle < cycles {
			return true
		}
	}
	return false
}

// exchangeSubset runs an exchange phase restricted to the given replicas
// along dimension d: only group members that are in the subset
// participate, mirroring the asynchronous pattern where lagging replicas
// simply keep simulating.
func (s *Simulation) exchangeSubset(subset []*Replica, d, sweep int, rec *CycleRecord) {
	inSubset := map[int]bool{}
	for _, r := range subset {
		inSubset[r.ID] = true
	}
	// Groups along d, filtered to the ready subset.
	var groups [][]*Replica
	for _, g := range s.liveGroups(d) {
		var sub []*Replica
		for _, r := range g {
			if inSubset[r.ID] {
				sub = append(sub, r)
			}
		}
		if len(sub) >= 2 {
			groups = append(groups, sub)
		}
	}
	if len(groups) == 0 {
		return
	}

	prep := s.engine.PrepOverhead(len(groups), len(s.spec.Dims))
	s.rt.Overhead(prep)
	rec.RepExOverhead += prep

	var speHandles []task.Handle
	for _, g := range groups {
		for _, spec := range s.engine.SinglePointTasks(d, g, s.spec) {
			speHandles = append(speHandles, s.rt.Submit(spec))
		}
	}
	if len(speHandles) > 0 {
		for _, res := range s.rt.AwaitAll(speHandles) {
			rec.EX.absorb(res)
		}
	}
	nReady := 0
	for _, g := range groups {
		nReady += len(g)
	}
	if exSpec := s.engine.ExchangeTask(d, nReady, s.spec); exSpec != nil {
		res := s.rt.Await(s.rt.Submit(exSpec))
		rec.EX.absorb(res)
	}

	for _, g := range groups {
		ids := make([]int, len(g))
		for i, r := range g {
			ids[i] = r.ID
		}
		pairs := exchange.NeighborPairs(ids, sweep)
		probs := make([]float64, len(pairs))
		for i, pr := range pairs {
			probs[i] = s.pairProbability(d, s.replicas[pr.I], s.replicas[pr.J])
		}
		for _, dec := range exchange.Sweep(pairs, probs, s.rng) {
			rec.Attempted++
			if dec.Accepted {
				rec.Accepted++
				s.applySwap(s.replicas[dec.I], s.replicas[dec.J])
			}
		}
	}
}
