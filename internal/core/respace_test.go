package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/pilot"
	"repro/internal/respace"
	"repro/internal/sim"
	"repro/internal/trace"
)

// bunchedLadder is a deliberately mis-spaced 8-rung T ladder: seven
// rungs crowded into 273–303 K (neighbour exchanges accept nearly
// always) and one 70 K cliff to 373 K (neighbour exchanges accept
// nearly never). No window length reaches the acceptance target on it,
// so the feedback controller saturates — the scenario respacing exists
// for.
func bunchedLadder() []float64 {
	return []float64{273, 278, 283, 288, 293, 298, 303, 373}
}

// mkRespaceRun builds a feedback-trigger run over the bunched ladder
// with respacing armed: short saturation threshold, a collector feeding
// the planner, and snapshots every 3 events.
func mkRespaceRun() (*core.Spec, *core.FeedbackTrigger, *analysis.Collector) {
	tr := core.NewFeedbackTrigger(150)
	tr.Target = 0.3
	tr.WindowEvents = 8
	tr.SaturationSteps = 2
	spec := &core.Spec{
		Name:            "respace-resume",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: bunchedLadder()}},
		Pattern:         core.PatternAsynchronous,
		Trigger:         tr,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          16,
		AsyncWindow:     150,
		Seed:            33,
	}
	spec.Bus = core.NewBus()
	col := analysis.New(analysis.ConfigFromSpec(spec))
	col.Attach(spec.Bus, analysis.RunBuffer(spec))
	spec.Respace = &core.RespaceSpec{
		AfterSteps: 2,
		MaxRefits:  2,
		Planner:    respace.NewPlanner(col),
	}
	spec.SnapshotEvery = 3
	return spec, tr, col
}

// runVirtualSim is runVirtual with the simulation handle kept, so tests
// can read the respace accessors after the run.
func runVirtualSim(t *testing.T, spec *core.Spec, cfg cluster.Config, cores, natoms int) (*core.Report, *core.Simulation) {
	t.Helper()
	env := sim.NewEnv()
	cl := cluster.MustNew(env, cfg, spec.Seed+1)
	pl, err := pilot.Launch(cl, pilot.Description{Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	eng := engines.NewAmberVirtual(natoms, spec.Seed+2)
	var report *core.Report
	var simu *core.Simulation
	var runErr error
	env.Go("emm", func(p *sim.Proc) {
		rt := pilot.NewRuntime(pl, p)
		simu, err = core.New(spec, eng, rt)
		if err != nil {
			runErr = err
			return
		}
		report, runErr = simu.Run()
	})
	env.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if report == nil {
		t.Fatal("simulation produced no report")
	}
	return report, simu
}

// TestRespaceFiresOnSaturatedLadder is the closed-loop acceptance
// criterion for the tentpole: on the bunched ladder the run must
// actually perform a refit, the refit must land on a snapshot boundary,
// and the resulting grid must keep the rung count, the endpoints and
// strict monotonicity while pulling rungs toward the cliff.
func TestRespaceFiresOnSaturatedLadder(t *testing.T) {
	spec, _, _ := mkRespaceRun()
	var snaps []*core.Snapshot
	spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	_, simu := runVirtualSim(t, spec, quietCluster(), 8, 2881)

	hist := simu.RespaceHistory()
	if len(hist) == 0 {
		t.Fatal("bunched ladder never respaced")
	}
	rec := hist[0]
	if spec.SnapshotEvery > 0 && rec.Event%spec.SnapshotEvery != 0 {
		t.Fatalf("refit at event %d, not on a snapshot boundary (every %d)",
			rec.Event, spec.SnapshotEvery)
	}
	old, next := rec.Old, rec.New
	if len(next) != len(old) {
		t.Fatalf("refit changed rung count: %d -> %d", len(old), len(next))
	}
	if next[0] != old[0] || next[len(next)-1] != old[len(old)-1] {
		t.Fatalf("refit moved endpoints: %v -> %v", old, next)
	}
	for i := 1; i < len(next); i++ {
		if next[i] <= next[i-1] {
			t.Fatalf("refit ladder not strictly increasing: %v", next)
		}
	}
	// The cliff sat between the last two rungs; the re-fit must widen
	// the crowded region, i.e. every interior rung moves up.
	for i := 1; i < len(next)-1; i++ {
		if next[i] <= old[i] {
			t.Fatalf("rung %d did not move toward the cliff: %v -> %v", i, old[i], next[i])
		}
	}
	// The simulation's live grid and the record agree.
	if got := simu.LadderValues()[0]; !reflect.DeepEqual(got, hist[len(hist)-1].New) {
		t.Fatalf("live ladder %v does not match last refit %v", got, hist[len(hist)-1].New)
	}
	if counts := simu.RefitCounts(); counts[0] != len(hist) {
		t.Fatalf("refit count %d, history has %d records", counts[0], len(hist))
	}
	// Snapshots taken at or after the refit carry the refitted grid.
	carried := false
	for _, sn := range snaps {
		if sn.Events >= rec.Event && len(sn.DimValues) > 0 {
			if !reflect.DeepEqual(sn.DimValues[0], rec.New) {
				t.Fatalf("snapshot at event %d carries %v, refit produced %v",
					sn.Events, sn.DimValues[0], rec.New)
			}
			carried = true
			break
		}
	}
	if !carried {
		t.Fatal("no snapshot carried the refitted grid")
	}
}

// maskAt zeroes the virtual-clock timestamps of a refit history so
// cross-resume comparisons check the decisions, not the clock origin.
func maskAt(hist []core.RespaceRecord) []core.RespaceRecord {
	out := make([]core.RespaceRecord, len(hist))
	copy(out, hist)
	for i := range out {
		out[i].At = 0
	}
	return out
}

// TestRespaceResumeDeterminism is the determinism acceptance criterion:
// a run interrupted BEFORE its refit and resumed from that snapshot
// must replay the refit identically — same event, same new grid — and
// reproduce the uninterrupted run's slot history bit-exactly. This
// rests on three restored pieces: the controller's saturation counters
// (TriggerData), the collector's acceptance profile (Analysis), and the
// planner being a pure function of that profile.
func TestRespaceResumeDeterminism(t *testing.T) {
	spec, trFull, colFull := mkRespaceRun()
	var snaps []*core.Snapshot
	spec.OnSnapshot = func(sn *core.Snapshot) {
		if data, err := colFull.EncodeState(); err == nil {
			sn.Analysis = data
		} else {
			t.Errorf("encoding analysis state: %v", err)
		}
		snaps = append(snaps, sn)
	}
	full, fullSim := runVirtualSim(t, spec, quietCluster(), 8, 2881)

	fullHist := fullSim.RespaceHistory()
	if len(fullHist) == 0 {
		t.Fatal("full run never respaced; nothing to replay")
	}
	// Resume from the last snapshot strictly before the first refit, so
	// the resumed run has to re-decide the refit itself.
	var pre *core.Snapshot
	for _, sn := range snaps {
		if sn.Events < fullHist[0].Event {
			pre = sn
		}
	}
	if pre == nil {
		t.Fatalf("no snapshot precedes the first refit (event %d)", fullHist[0].Event)
	}
	data, err := pre.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}

	resumedSpec, trResumed, colResumed := mkRespaceRun()
	resumedSpec.OnSnapshot = func(*core.Snapshot) {}
	if err := colResumed.Restore(snap.Analysis); err != nil {
		t.Fatalf("restoring collector: %v", err)
	}
	resumedSpec.Resume = snap
	resumed, resumedSim := runVirtualSim(t, resumedSpec, quietCluster(), 8, 2881)

	if resumed.ExchangeEvents != full.ExchangeEvents {
		t.Fatalf("resumed run fired %d events, uninterrupted %d",
			resumed.ExchangeEvents, full.ExchangeEvents)
	}
	if historyFingerprint(resumed.SlotHistory) != historyFingerprint(full.SlotHistory) {
		t.Fatalf("resumed slot history diverged:\nfull    %v\nresumed %v",
			full.SlotHistory, resumed.SlotHistory)
	}
	// Record timestamps are raw virtual-clock readings (like every bus
	// event's At) and the resumed environment's clock restarts at zero,
	// so compare the histories with At masked: same event, same refit
	// ordinal, same grids is the determinism that matters.
	if !reflect.DeepEqual(maskAt(resumedSim.RespaceHistory()), maskAt(fullHist)) {
		t.Fatalf("refit history diverged:\nfull    %+v\nresumed %+v",
			fullHist, resumedSim.RespaceHistory())
	}
	if !reflect.DeepEqual(resumedSim.LadderValues(), fullSim.LadderValues()) {
		t.Fatalf("final ladders diverged:\nfull    %v\nresumed %v",
			fullSim.LadderValues(), resumedSim.LadderValues())
	}
	ra, na := trFull.Acceptance()
	rb, nb := trResumed.Acceptance()
	if ra != rb || na != nb {
		t.Fatalf("controller measurement diverged: full %v/%d, resumed %v/%d", ra, na, rb, nb)
	}
}

// TestRespaceResumeAfterRefit: resuming from a snapshot taken at or
// after the refit must restore the refitted grid (Snapshot.DimValues)
// and the refit budget, not re-derive them — and still reproduce the
// full run's slot history.
func TestRespaceResumeAfterRefit(t *testing.T) {
	spec, _, colFull := mkRespaceRun()
	var snaps []*core.Snapshot
	spec.OnSnapshot = func(sn *core.Snapshot) {
		if data, err := colFull.EncodeState(); err == nil {
			sn.Analysis = data
		}
		snaps = append(snaps, sn)
	}
	full, fullSim := runVirtualSim(t, spec, quietCluster(), 8, 2881)
	fullHist := fullSim.RespaceHistory()
	if len(fullHist) == 0 {
		t.Fatal("full run never respaced")
	}
	var post *core.Snapshot
	for _, sn := range snaps {
		if sn.Events >= fullHist[0].Event && len(sn.DimValues) > 0 {
			post = sn
			break
		}
	}
	if post == nil {
		t.Fatal("no snapshot captured after the refit")
	}
	data, err := post.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	resumedSpec, _, colResumed := mkRespaceRun()
	if err := colResumed.Restore(snap.Analysis); err != nil {
		t.Fatalf("restoring collector: %v", err)
	}
	resumedSpec.Resume = snap
	resumed, resumedSim := runVirtualSim(t, resumedSpec, quietCluster(), 8, 2881)

	if historyFingerprint(resumed.SlotHistory) != historyFingerprint(full.SlotHistory) {
		t.Fatalf("resumed slot history diverged")
	}
	if !reflect.DeepEqual(resumedSim.LadderValues(), fullSim.LadderValues()) {
		t.Fatalf("resumed ladder %v, full %v",
			resumedSim.LadderValues(), fullSim.LadderValues())
	}
	if !reflect.DeepEqual(resumedSim.RespaceHistory(), fullHist) {
		t.Fatalf("restored refit history diverged:\nfull    %+v\nresumed %+v",
			fullHist, resumedSim.RespaceHistory())
	}
}

// TestRespaceTraceDeterminism: two fresh runs of the same respacing
// spec export byte-identical flight-recorder traces — the respace
// instants land at the same virtual times with the same payloads, so
// the whole pipeline (controller, planner, apply, tracer) is
// deterministic end to end.
func TestRespaceTraceDeterminism(t *testing.T) {
	export := func() []byte {
		spec, _, _ := mkRespaceRun()
		rec := trace.New(0)
		spec.Tracer = rec
		_, simu := runVirtualSim(t, spec, quietCluster(), 8, 2881)
		if len(simu.RespaceHistory()) == 0 {
			t.Fatal("run never respaced; trace carries no respace instants")
		}
		out, err := rec.ExportJSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace exports differ between identical runs: %d vs %d bytes", len(a), len(b))
	}
	if !bytes.Contains(a, []byte(`"respace"`)) {
		t.Fatal("trace export carries no respace instant")
	}
}

// TestRespaceDisabledDimStaysPut: a dimension opted out via Disabled
// keeps its grid no matter how saturated its controller gets.
func TestRespaceDisabledDimStaysPut(t *testing.T) {
	spec, _, _ := mkRespaceRun()
	spec.Respace.Disabled = []bool{true}
	_, simu := runVirtualSim(t, spec, quietCluster(), 8, 2881)
	if hist := simu.RespaceHistory(); len(hist) != 0 {
		t.Fatalf("disabled dimension respaced: %+v", hist)
	}
	if got := simu.LadderValues()[0]; !reflect.DeepEqual(got, bunchedLadder()) {
		t.Fatalf("disabled dimension's ladder moved: %v", got)
	}
}

// TestRespaceMaxRefitsBudget: the per-dimension budget caps applied
// refits even if the ladder keeps saturating.
func TestRespaceMaxRefitsBudget(t *testing.T) {
	spec, _, _ := mkRespaceRun()
	spec.Respace.MaxRefits = 1
	spec.Cycles = 24
	_, simu := runVirtualSim(t, spec, quietCluster(), 8, 2881)
	if got := simu.RefitCounts()[0]; got > 1 {
		t.Fatalf("refit budget 1, applied %d", got)
	}
}
