package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// Snapshot is a serializable checkpoint of a running simulation, taken
// after an exchange event. Together with the original Spec (same
// dimensions, seed and trigger) it restores the run exactly: replica
// slots, completed cycles, energies and synthetic coordinates, the
// orchestrator's RNG position, and the report counters accumulated so
// far. Runs longer than one pilot walltime chain through snapshots:
// kill, resume, repeat.
//
// RNG state is stored as a draw count and restored by replaying that
// many draws from the spec seed, which keeps the snapshot format
// independent of math/rand's internal state while remaining exact.
type Snapshot struct {
	// Version is the snapshot format version.
	Version int `json:"version"`
	// Name echoes Spec.Name for sanity checks.
	Name string `json:"name"`
	// Trigger names the exchange-trigger policy the run executed under;
	// resuming under a different policy is rejected.
	Trigger string `json:"trigger"`
	// TriggerData is the serialized controller state of a
	// StatefulTrigger policy (e.g. FeedbackTrigger's rolling outcome
	// window and controlled window length); empty for stateless
	// policies. Restored in dispatch so resumed runs make the same
	// trigger decisions as the uninterrupted run.
	TriggerData json.RawMessage `json:"trigger_data,omitempty"`
	// Events is the number of exchange events fired before the snapshot.
	Events int `json:"events"`
	// Elapsed is the virtual run time consumed before the snapshot
	// (capture time minus run start); resumed reports offset their start
	// by it so Makespan and Utilization stay cumulative.
	Elapsed float64 `json:"elapsed"`
	// RNGDraws is the orchestrator RNG position (uniforms consumed).
	RNGDraws int64 `json:"rng_draws"`
	// EngineDraws is the engine RNG position for ReplayableEngine
	// implementations; -1 when the engine does not support replay.
	EngineDraws int64 `json:"engine_draws"`
	// Replicas holds the per-replica state in ID order.
	Replicas []ReplicaState `json:"replicas"`
	// SlotHistory is the slot assignment after each exchange event so
	// far — bounded to the most recent rows when Spec.HistoryTail is set
	// — so a resumed run's report carries the retained history.
	SlotHistory [][]int `json:"slot_history"`
	// SlotRows and SlotFingerprint carry the full-history row count and
	// rolling fingerprint (see Report), so resume equivalence holds even
	// when HistoryTail rotated early rows out of SlotHistory. A zero
	// fingerprint marks a pre-fingerprint snapshot; both are then
	// recomputed from SlotHistory on resume.
	SlotRows        int    `json:"slot_rows,omitempty"`
	SlotFingerprint uint64 `json:"slot_fingerprint,omitempty"`
	// Report counters accumulated before the snapshot.
	Dropped           int     `json:"dropped"`
	Relaunches        int     `json:"relaunches"`
	MDExecCoreSeconds float64 `json:"md_exec_core_seconds"`
	// Analysis is the serialized state of an online-analysis collector
	// (internal/analysis), attached by the OnSnapshot callback so
	// exchange statistics survive checkpoint/restart. Opaque to core.
	Analysis json.RawMessage `json:"analysis,omitempty"`
	// DimValues holds every dimension's window values at capture time,
	// recorded once a ladder re-fit has changed them from the spec's
	// originals; resume restores the refitted grid before replica
	// parameters are rebuilt. Empty for runs that never respaced.
	DimValues [][]float64 `json:"dim_values,omitempty"`
	// Respacings is the applied refit history at capture time, so a
	// resumed run's status surfaces and per-dimension refit budgets
	// continue where the interrupted run stopped.
	Respacings []RespaceRecord `json:"respacings,omitempty"`
}

// ReplicaState is the serializable state of one replica.
type ReplicaState struct {
	ID      int       `json:"id"`
	Slot    int       `json:"slot"`
	Cycle   int       `json:"cycle"`
	Energy  float64   `json:"energy"`
	Synth   []float64 `json:"synth,omitempty"`
	Alive   bool      `json:"alive"`
	Retries int       `json:"retries"`
}

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

// ReplayableEngine is implemented by engines whose stochastic state can
// be captured as a draw count and restored by replaying it from the
// engine's seed (the virtual cost-model engines). Engines that do not
// implement it still resume — energies and synthetic coordinates come
// from the snapshot — but their post-resume random stream is fresh, so
// bit-exact continuation is not guaranteed.
type ReplayableEngine interface {
	// RNGDraws returns the number of draws consumed so far.
	RNGDraws() int64
	// ReplayRNG resets the engine RNG to its seed and replays n draws.
	ReplayRNG(n int64)
}

// Encode serializes the snapshot to JSON.
func (sn *Snapshot) Encode() ([]byte, error) {
	return json.MarshalIndent(sn, "", " ")
}

// DecodeSnapshot parses a snapshot produced by Encode.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var sn Snapshot
	if err := json.Unmarshal(data, &sn); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %v", err)
	}
	if sn.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", sn.Version, SnapshotVersion)
	}
	return &sn, nil
}

// captureSnapshot builds a checkpoint of the current state; called by
// the dispatcher right after an exchange event completes. It fails when
// a stateful trigger cannot serialize its controller state: writing a
// checkpoint without it would resume with a fresh controller and
// silently break resume determinism.
func (s *Simulation) captureSnapshot(tr Trigger, events int) (*Snapshot, error) {
	sn := &Snapshot{
		Version:           SnapshotVersion,
		Name:              s.spec.Name,
		Trigger:           tr.Name(),
		Events:            events,
		Elapsed:           s.rt.Now() - s.report.Start,
		RNGDraws:          s.rngDraws,
		EngineDraws:       -1,
		Replicas:          make([]ReplicaState, len(s.replicas)),
		SlotHistory:       make([][]int, len(s.report.SlotHistory)),
		SlotRows:          s.report.SlotRows,
		SlotFingerprint:   s.report.SlotFingerprint,
		Dropped:           s.report.Dropped,
		Relaunches:        s.report.Relaunches,
		MDExecCoreSeconds: s.report.MDExecCoreSeconds,
	}
	if re, ok := s.engine.(ReplayableEngine); ok {
		sn.EngineDraws = re.RNGDraws()
	}
	if st, ok := tr.(StatefulTrigger); ok {
		data, err := st.EncodeState()
		if err != nil {
			return nil, fmt.Errorf("core: encoding %q trigger state for snapshot: %v", tr.Name(), err)
		}
		sn.TriggerData = data
	}
	for i, r := range s.replicas {
		sn.Replicas[i] = ReplicaState{
			ID:      r.ID,
			Slot:    r.Slot,
			Cycle:   r.Cycle,
			Energy:  r.Energy,
			Synth:   append([]float64(nil), r.Synth...),
			Alive:   r.Alive,
			Retries: r.Retries,
		}
	}
	for i, row := range s.report.SlotHistory {
		sn.SlotHistory[i] = append([]int(nil), row...)
	}
	if hist := s.RespaceHistory(); len(hist) > 0 {
		sn.Respacings = hist
		sn.DimValues = s.LadderValues()
	}
	return sn, nil
}

// maybeSnapshot captures and delivers a checkpoint when the spec asks
// for one at this exchange-event count.
func (s *Simulation) maybeSnapshot(tr Trigger, events int) error {
	if s.spec.SnapshotEvery <= 0 || s.spec.OnSnapshot == nil {
		return nil
	}
	if events%s.spec.SnapshotEvery != 0 {
		return nil
	}
	sn, err := s.captureSnapshot(tr, events)
	if err != nil {
		return err
	}
	s.spec.OnSnapshot(sn)
	s.recordCheckpoint(events, "")
	return nil
}

// applySnapshot restores replica and RNG state from a checkpoint; called
// from New after the fresh replica set is built.
func (s *Simulation) applySnapshot(sn *Snapshot) error {
	if sn.Name != s.spec.Name {
		return fmt.Errorf("core: snapshot belongs to simulation %q, resuming %q",
			sn.Name, s.spec.Name)
	}
	if len(sn.Replicas) != len(s.replicas) {
		return fmt.Errorf("core: snapshot has %d replicas, spec %q has %d",
			len(sn.Replicas), s.spec.Name, len(s.replicas))
	}
	// Restore a respaced grid before replica parameters are cloned from
	// slotParams below: the snapshot's values replace the spec's
	// originals, exactly as applyRespace left them.
	if len(sn.DimValues) > 0 {
		if len(sn.DimValues) != len(s.spec.Dims) {
			return fmt.Errorf("core: snapshot carries %d dimension grids, spec %q has %d",
				len(sn.DimValues), s.spec.Name, len(s.spec.Dims))
		}
		for d, vals := range sn.DimValues {
			if len(vals) != len(s.spec.Dims[d].Values) {
				return fmt.Errorf("core: snapshot dimension %d has %d windows, spec %q has %d",
					d, len(vals), s.spec.Name, len(s.spec.Dims[d].Values))
			}
			s.spec.Dims[d].Values = append([]float64(nil), vals...)
		}
		for slot := range s.slotParams {
			s.slotParams[slot] = s.paramsForSlot(slot)
		}
	}
	if len(sn.Respacings) > 0 {
		s.respacings = make([]RespaceRecord, len(sn.Respacings))
		copy(s.respacings, sn.Respacings)
		for _, rec := range sn.Respacings {
			if rec.Dim >= 0 && rec.Dim < len(s.refits) {
				s.refits[rec.Dim]++
			}
		}
	}
	seenSlot := make([]bool, len(s.replicas))
	seenID := make([]bool, len(s.replicas))
	for _, rs := range sn.Replicas {
		if rs.ID < 0 || rs.ID >= len(s.replicas) || seenID[rs.ID] {
			return fmt.Errorf("core: snapshot replica ID %d out of range or duplicated", rs.ID)
		}
		seenID[rs.ID] = true
		if rs.Slot < 0 || rs.Slot >= len(s.replicas) || seenSlot[rs.Slot] {
			return fmt.Errorf("core: snapshot slots are not a permutation (slot %d)", rs.Slot)
		}
		seenSlot[rs.Slot] = true
		r := s.replicas[rs.ID]
		r.Slot = rs.Slot
		r.Cycle = rs.Cycle
		r.Energy = rs.Energy
		r.Alive = rs.Alive
		r.Retries = rs.Retries
		if len(rs.Synth) > 0 {
			r.Synth = append([]float64(nil), rs.Synth...)
		}
		r.Params = s.slotParams[r.Slot].Clone()
		s.replicaAt[r.Slot] = r.ID
	}
	// Replay the orchestrator RNG to its snapshot position.
	s.rng = rand.New(rand.NewSource(s.spec.Seed))
	for i := int64(0); i < sn.RNGDraws; i++ {
		s.rng.Float64()
	}
	s.rngDraws = sn.RNGDraws
	if re, ok := s.engine.(ReplayableEngine); ok && sn.EngineDraws >= 0 {
		re.ReplayRNG(sn.EngineDraws)
	}
	s.resumeEvents = sn.Events
	s.resumeElapsed = sn.Elapsed
	s.resumed = true
	s.report.Dropped = sn.Dropped
	s.report.Relaunches = sn.Relaunches
	s.report.MDExecCoreSeconds = sn.MDExecCoreSeconds
	s.report.ExchangeEvents = sn.Events
	s.report.SlotHistory = make([][]int, len(sn.SlotHistory))
	for i, row := range sn.SlotHistory {
		s.report.SlotHistory[i] = append([]int(nil), row...)
	}
	if sn.SlotFingerprint != 0 {
		s.report.SlotRows = sn.SlotRows
		s.report.SlotFingerprint = sn.SlotFingerprint
	} else {
		// Pre-fingerprint snapshot: its history is complete (HistoryTail
		// did not exist), so both values derive from the stored rows.
		s.report.SlotRows = len(sn.SlotHistory)
		s.report.SlotFingerprint = HistoryFingerprint(sn.SlotHistory)
	}
	// A resumed history longer than the tail (snapshot taken without one,
	// or with a larger one) is trimmed so the bound holds from the start.
	if tail := s.spec.HistoryTail; tail > 0 && len(s.report.SlotHistory) > tail {
		s.report.SlotHistory = s.report.SlotHistory[len(s.report.SlotHistory)-tail:]
	}
	return nil
}
