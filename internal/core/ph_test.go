package core

import (
	"testing"

	"repro/internal/exchange"
)

// pH-exchange integration tests: the paper's §5 extension wired through
// the whole stack.

func phSpec(n int) *Spec {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 4 + 6*float64(i)/float64(n-1) // pH 4..10
	}
	return &Spec{
		Name:            "ph-remd",
		Dims:            []Dimension{{Type: exchange.PH, Values: vals}},
		Pattern:         PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   50,
		Cycles:          3,
		Seed:            5,
	}
}

func TestPHDimCode(t *testing.T) {
	s := phSpec(4)
	if s.DimCode() != "H" {
		t.Fatalf("dim code %q, want H", s.DimCode())
	}
}

func TestPHSpecValidation(t *testing.T) {
	s := phSpec(4)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid pH spec rejected: %v", err)
	}
	s.Dims[0].Values = []float64{0}
	if err := s.Validate(); err == nil {
		t.Fatal("pH 0 accepted")
	}
	s.Dims[0].Values = []float64{15}
	if err := s.Validate(); err == nil {
		t.Fatal("pH 15 accepted")
	}
}

func TestPHParamsForSlot(t *testing.T) {
	spec := phSpec(4)
	sim := newTestSim(t, spec, &stubEngine{}, 8)
	for slot := 0; slot < 4; slot++ {
		if got := sim.SlotParams(slot).PH; got != spec.Dims[0].Values[slot] {
			t.Fatalf("slot %d pH %v, want %v", slot, got, spec.Dims[0].Values[slot])
		}
	}
}

func TestPHExchangeRunsAndSwaps(t *testing.T) {
	spec := phSpec(6)
	spec.Cycles = 6
	// Neutral energies make every Hamiltonian delta zero, so acceptance
	// is certain and the pH exchanges exercise applySwap.
	eng := &stubEngine{energyOf: func(r *Replica) float64 { return 0 }}
	sim := newTestSim(t, spec, eng, 8)
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	attempted := 0
	accepted := 0
	for _, rec := range rep.Records {
		attempted += rec.Attempted
		accepted += rec.Accepted
	}
	if attempted == 0 {
		t.Fatal("no pH exchanges attempted")
	}
	// Zero energies -> Hamiltonian delta 0 -> always accept.
	if accepted != attempted {
		t.Fatalf("accepted %d/%d with neutral energies", accepted, attempted)
	}
	// Slot history recorded for mixing analysis.
	if len(rep.SlotHistory) != spec.Cycles {
		t.Fatalf("slot history rows %d, want %d", len(rep.SlotHistory), spec.Cycles)
	}
}

func TestSlotHistoryConsistency(t *testing.T) {
	spec := phSpec(4)
	sim := newTestSim(t, spec, &stubEngine{}, 8)
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.SlotHistory {
		seen := map[int]bool{}
		for _, slot := range row {
			if seen[slot] {
				t.Fatal("slot history row is not a permutation")
			}
			seen[slot] = true
		}
	}
}
