// Package core implements the RepEx framework itself: the paper's primary
// contribution. It decouples the replica-exchange algorithm from the MD
// engine (via the Engine interface) and from resource management (via
// task.Runtime), and makes Replica Exchange Patterns first-class,
// swappable policies: one event-driven dispatcher parameterized by an
// exchange-trigger criterion (the Trigger interface). The paper's two
// patterns are the two canonical policies — BarrierTrigger (synchronous)
// and WindowTrigger (asynchronous real-time window) — and further
// criteria (CountTrigger, AdaptiveTrigger, FeedbackTrigger) are small
// policies rather than forks of the core. The two Execution Modes (I: cores >= replicas,
// II: cores < replicas) of Section 3.2.3 are derived from the ratio of
// allocated cores to replicas.
//
// The module structure mirrors the paper's Section 3.3:
//
//   - EMM (execution management): the event-driven dispatcher loop in
//     dispatcher.go, parameterized by a Trigger policy — engine
//     independent, owns synchronization and all runtime calls.
//   - AMM (application management): the Engine implementations in
//     internal/engines — engine specific, translate replicas into tasks.
//   - RAM (remote application modules): the exchange procedures in
//     internal/exchange plus the single-point-energy tasks which execute
//     "on the cluster" (inside compute units).
package core

import (
	"fmt"
	"math"

	"repro/internal/exchange"
	"repro/internal/md"
	"repro/internal/task"
	"repro/internal/trace"
)

// Pattern is a Replica Exchange Pattern (paper §3.2.1). A pattern is an
// alias for a canonical exchange-trigger policy: PatternSynchronous for
// BarrierTrigger and PatternAsynchronous for WindowTrigger. Further
// criteria (CountTrigger, AdaptiveTrigger, or user-supplied policies)
// are selected directly through Spec.Trigger.
type Pattern int

const (
	// PatternSynchronous places a global barrier after the MD phase and
	// after the exchange phase (BarrierTrigger).
	PatternSynchronous Pattern = iota
	// PatternAsynchronous has no global barrier: replicas transition to
	// the exchange phase in subsets based on a real-time window
	// (WindowTrigger honouring AsyncWindow and AsyncMinReady).
	PatternAsynchronous
)

// String names the pattern.
func (p Pattern) String() string {
	if p == PatternAsynchronous {
		return "asynchronous"
	}
	return "synchronous"
}

// Mode is an Execution Mode (paper §3.2.3). It is derived from the ratio
// of allocated cores to simulation size, never set directly.
type Mode int

const (
	// ModeI: enough cores to run every replica concurrently (R >= S).
	ModeI Mode = iota
	// ModeII: fewer cores than replicas; phases run in batched waves.
	ModeII
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeII {
		return "II"
	}
	return "I"
}

// FaultPolicy selects what happens when a replica's MD task fails.
type FaultPolicy int

const (
	// FaultDrop removes the failed replica from the simulation; the
	// remaining replicas continue (the "continue" behaviour in §1).
	FaultDrop FaultPolicy = iota
	// FaultRelaunch resubmits the failed MD task, up to MaxRetries.
	FaultRelaunch
)

// String names the policy.
func (f FaultPolicy) String() string {
	if f == FaultRelaunch {
		return "relaunch"
	}
	return "drop"
}

// Dimension describes one exchange dimension.
type Dimension struct {
	// Type is T, U or S.
	Type exchange.Type
	// Values are the window values along this dimension: Kelvin for T,
	// mol/L for S, restraint centres in radians for U.
	Values []float64
	// Torsion is the labelled torsion a U dimension restrains
	// (e.g. "phi", "psi"); ignored for T and S.
	Torsion string
	// K is the umbrella force constant in kcal/mol/rad² for U
	// dimensions. The paper uses 0.02 kcal/mol/deg² = 65.65.
	K float64
}

// GeometricTemperatures returns n temperatures from lo to hi (Kelvin) in
// geometric progression, the standard T-REMD ladder (and the paper's
// validation choice: 6 windows, 273-373 K).
func GeometricTemperatures(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	t := lo
	for i := 0; i < n; i++ {
		out[i] = t
		t *= ratio
	}
	return out
}

// UniformWindows returns n values uniformly spaced over [0, 2π), the
// paper's umbrella window layout (8 windows over 0°..360°).
func UniformWindows(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = md.WrapAngle(2 * math.Pi * float64(i) / float64(n))
	}
	return out
}

// UmbrellaK002 is the paper's umbrella force constant,
// 0.02 kcal/mol/deg², converted to kcal/mol/rad².
var UmbrellaK002 = 0.02 * (180 / math.Pi) * (180 / math.Pi)

// Spec fully describes an REMD simulation; it corresponds to RepEx's
// simulation input file.
type Spec struct {
	Name string
	// Dims are the exchange dimensions in order (e.g. TSU, TUU). The
	// paper supports up to three; the implementation is generic.
	Dims []Dimension
	// Pattern selects synchronous or asynchronous RE.
	Pattern Pattern
	// CoresPerReplica is the MPI width of each replica's MD task.
	CoresPerReplica int
	// StepsPerCycle is the number of MD time-steps between exchange
	// attempts (the paper uses 6000 for Amber, 4000 for NAMD, 20000 for
	// the multi-core experiments).
	StepsPerCycle int
	// Cycles is the number of simulation cycles to run.
	Cycles int
	// FaultPolicy governs replica failures.
	FaultPolicy FaultPolicy
	// MaxRetries bounds relaunch attempts per replica (default 3).
	MaxRetries int
	// BaseTemperature/BaseSalt seed replica params for dimensions that
	// are not exchanged (e.g. salt in a pure T-REMD run).
	BaseTemperature float64
	BaseSalt        float64
	// AsyncWindow is the real-time window (seconds) after which ready
	// replicas transition to the exchange phase (asynchronous pattern).
	AsyncWindow float64
	// AsyncMinReady optionally triggers an exchange before the window
	// expires once that many replicas are ready; 0 (the default) uses
	// the pure fixed-real-time-window criterion of §4.6.
	AsyncMinReady int
	// DisableExchange skips the exchange phase entirely: replicas run
	// plain MD. Used for the paper's "No exchange" efficiency baseline
	// (Figure 7).
	DisableExchange bool
	// Trigger optionally selects the exchange-trigger policy directly,
	// overriding the Pattern-derived default. This is how criteria
	// beyond the two canonical patterns (e.g. CountTrigger,
	// AdaptiveTrigger, FeedbackTrigger) are chosen. Triggers carry
	// per-run state, so a Trigger instance must not be shared by
	// concurrently running simulations.
	Trigger Trigger
	// Seed drives all stochastic choices of the orchestrator.
	Seed int64
	// SnapshotEvery, when positive, captures a checkpoint Snapshot every
	// that many exchange events and hands it to OnSnapshot. Snapshots
	// taken under the barrier trigger are exact resume points (no MD
	// segment is in flight at a barrier fire); under asynchronous
	// triggers, in-flight segments at the snapshot instant are redone
	// after a resume.
	SnapshotEvery int
	// OnSnapshot receives each captured checkpoint; the caller owns
	// persistence (e.g. cmd/repex writes it to the -checkpoint file).
	OnSnapshot func(*Snapshot)
	// Resume restores the simulation from a checkpoint taken by an
	// earlier run of the same spec: replica slots, cycles, energies,
	// synthetic coordinates and RNG state are restored in New, and the
	// dispatcher continues from the snapshot's exchange-event counter.
	Resume *Snapshot
	// Bus, when non-nil, receives typed MDEvent/ExchangeEvent/FaultEvent
	// records as the run progresses (see events.go). Publication is
	// non-blocking — a slow or stalled subscriber never affects the
	// dispatcher — so attaching a bus cannot change simulation results.
	Bus *Bus
	// Tracer, when non-nil, receives one flight-recorder span per MD
	// segment (submission to final completion, spanning relaunches),
	// exchange phase (with pair-eval and single-point sub-spans),
	// checkpoint write, feedback-controller decision and fault action.
	// Recording is bounded (fixed ring, drop-oldest) and touches
	// neither the RNG stream nor the virtual clock, so an attached
	// tracer cannot change simulation results — the slot history is
	// bit-identical with and without it (test-enforced).
	Tracer *trace.Recorder
	// ExchangeWorkers bounds the worker pool that shards each exchange
	// event's pair evaluation (the Metropolis acceptance-probability
	// math). 0, the default, uses GOMAXPROCS with a work-size gate so
	// small events stay on the serial path; 1 forces serial evaluation;
	// an explicit value >= 2 always shards (tests use this to exercise
	// the parallel path on small ladders). Results are bit-identical for
	// every setting: the per-pair uniforms are pre-drawn serially in pair
	// order, so the RNG stream — and with it every accept/reject
	// decision, slot-history fingerprint and resumed run — does not
	// depend on the worker count.
	ExchangeWorkers int
	// HistoryTail, when positive, bounds Report.SlotHistory to the most
	// recent HistoryTail rows; older rows are folded into the rolling
	// Report.SlotFingerprint as they rotate out, keeping exchange-event
	// memory O(tail×replicas) instead of O(events×replicas). 0, the
	// default, retains the complete history.
	HistoryTail int
	// Respace, when non-nil, enables online ladder respacing: a
	// dimension whose feedback controller stays saturated past the
	// configured persistence threshold has its window values re-fitted
	// from measured per-pair acceptance at a checkpoint boundary (see
	// respace.go). Only meaningful with a FeedbackTrigger; nil disables
	// the mechanism.
	Respace *RespaceSpec
}

// triggerPolicy resolves the exchange-trigger policy: Spec.Trigger when
// set, otherwise the canonical policy of the RE pattern.
func (s *Spec) triggerPolicy() (Trigger, error) {
	if s.Trigger != nil {
		return s.Trigger, nil
	}
	switch s.Pattern {
	case PatternSynchronous:
		return NewBarrierTrigger(), nil
	case PatternAsynchronous:
		return NewWindowTrigger(s.AsyncWindow, s.AsyncMinReady), nil
	default:
		return nil, fmt.Errorf("core: unknown pattern %d", s.Pattern)
	}
}

// TriggerName returns the name of the exchange-trigger policy the spec
// selects — Spec.Trigger when set, otherwise the pattern's canonical
// policy — or "" for an invalid pattern. Status surfaces use it so the
// pattern-to-policy mapping lives only in triggerPolicy.
func (s *Spec) TriggerName() string {
	tr, err := s.triggerPolicy()
	if err != nil {
		return ""
	}
	return tr.Name()
}

// Grid returns the replica grid implied by the dimensions.
func (s *Spec) Grid() exchange.Grid {
	shape := make([]int, len(s.Dims))
	for i, d := range s.Dims {
		shape[i] = len(d.Values)
	}
	return exchange.MustNewGrid(shape...)
}

// Replicas returns the total replica count (product of window counts).
func (s *Spec) Replicas() int { return s.Grid().Size() }

// DimCode returns the paper-style dimension string, e.g. "TSU" or "TUU".
func (s *Spec) DimCode() string {
	code := ""
	for _, d := range s.Dims {
		code += d.Type.Code()
	}
	return code
}

// Validate reports specification errors.
func (s *Spec) Validate() error {
	if len(s.Dims) == 0 {
		return fmt.Errorf("spec %q: at least one exchange dimension required", s.Name)
	}
	for i, d := range s.Dims {
		if len(d.Values) == 0 {
			return fmt.Errorf("spec %q: dimension %d has no windows", s.Name, i)
		}
		switch d.Type {
		case exchange.Temperature:
			for _, v := range d.Values {
				if v <= 0 {
					return fmt.Errorf("spec %q: non-positive temperature %g", s.Name, v)
				}
			}
		case exchange.Salt:
			for _, v := range d.Values {
				if v < 0 {
					return fmt.Errorf("spec %q: negative salt concentration %g", s.Name, v)
				}
			}
		case exchange.PH:
			for _, v := range d.Values {
				if v <= 0 || v > 14 {
					return fmt.Errorf("spec %q: pH window %g outside (0, 14]", s.Name, v)
				}
			}
		case exchange.Umbrella:
			if d.K < 0 {
				return fmt.Errorf("spec %q: negative umbrella K", s.Name)
			}
			if d.Torsion == "" {
				return fmt.Errorf("spec %q: umbrella dimension %d needs a torsion label", s.Name, i)
			}
		}
	}
	if s.CoresPerReplica <= 0 {
		return fmt.Errorf("spec %q: cores per replica must be positive", s.Name)
	}
	if s.StepsPerCycle <= 0 || s.Cycles <= 0 {
		return fmt.Errorf("spec %q: steps per cycle and cycles must be positive", s.Name)
	}
	if s.Pattern == PatternAsynchronous && s.Trigger == nil && s.AsyncWindow <= 0 {
		return fmt.Errorf("spec %q: asynchronous pattern requires a positive AsyncWindow", s.Name)
	}
	if s.ExchangeWorkers < 0 {
		return fmt.Errorf("spec %q: negative exchange workers %d", s.Name, s.ExchangeWorkers)
	}
	if s.HistoryTail < 0 {
		return fmt.Errorf("spec %q: negative history tail %d", s.Name, s.HistoryTail)
	}
	if s.Respace != nil {
		if err := s.Respace.validate(len(s.Dims)); err != nil {
			return fmt.Errorf("spec %q: %v", s.Name, err)
		}
	}
	// Policies with parameters veto configurations that cannot make
	// progress (e.g. a zero-length window, which would livelock).
	if v, ok := s.Trigger.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("spec %q: %v", s.Name, err)
		}
	}
	return nil
}

// hasTemperatureDim reports whether any dimension exchanges temperature.
func (s *Spec) hasTemperatureDim() bool {
	for _, d := range s.Dims {
		if d.Type == exchange.Temperature {
			return true
		}
	}
	return false
}

// Replica is one replica of the simulated system.
type Replica struct {
	// ID is the permanent replica identity.
	ID int
	// Slot is the current grid slot (parameter assignment); exchanges
	// swap slots between replicas.
	Slot int
	// Params are the current thermodynamic parameters (derived from
	// Slot).
	Params md.Params
	// State is the molecular state for real-execution engines; nil for
	// virtual engines.
	State *md.State
	// Synth are per-dimension pseudo-coordinates maintained by virtual
	// engines to produce realistic exchange statistics.
	Synth []float64
	// Energy is the most recent potential energy (kcal/mol).
	Energy float64
	// Cycle counts completed MD segments.
	Cycle int
	// Alive is false once the replica has been dropped after failures.
	Alive bool
	// Retries counts relaunch attempts.
	Retries int
}

// Engine is the AMM-side abstraction over an MD engine: it translates
// replicas into task specs and provides energies for exchange decisions.
// Implementations live in internal/engines (amberlite, nanomd and their
// virtual cost-model counterparts).
type Engine interface {
	// Name identifies the engine ("amber", "namd", ...).
	Name() string
	// InitReplica prepares engine-specific replica state (molecular
	// coordinates for real engines, pseudo-coordinates for virtual).
	InitReplica(r *Replica, s *Spec)
	// MDTask builds the MD-phase task for a replica; dim is the
	// dimension whose exchange follows this MD segment (it determines
	// which output files the engine stages, matching the paper's
	// observation that data times differ per exchange type).
	MDTask(r *Replica, s *Spec, dim int) *task.Spec
	// ExchangeTask builds the exchange-computation task for one
	// dimension over the whole replica set (the paper uses a single
	// MPI task for T/U exchanges).
	ExchangeTask(dim int, totalReplicas int, s *Spec) *task.Spec
	// SinglePointTasks builds the extra per-replica energy tasks a
	// dimension requires (non-empty only for salt exchange).
	SinglePointTasks(dim int, group []*Replica, s *Spec) []*task.Spec
	// OwnEnergy returns the replica's potential energy under its own
	// parameters; called after the MD phase.
	OwnEnergy(r *Replica) float64
	// CrossEnergy returns the energy of r's configuration evaluated
	// under foreign parameters (Hamiltonian exchange).
	CrossEnergy(r *Replica, under md.Params) float64
	// TorsionIndex resolves a labelled torsion to a dihedral index for
	// umbrella restraints (virtual engines may return the dim index).
	TorsionIndex(label string) int
	// PrepOverhead models RepEx's client-side task-preparation time for
	// one phase of nTasks tasks in a ndims-dimensional simulation.
	PrepOverhead(nTasks, ndims int) float64
}
