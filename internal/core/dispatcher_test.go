package core_test

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/localexec"
	"repro/internal/md"
	"repro/internal/task"
)

// The golden values in this file were captured from the seed
// implementation's runSync (the pre-dispatcher synchronous pattern) for
// fixed seeds. The dispatcher with BarrierTrigger must reproduce them
// bit-for-bit: same slot history, same acceptance counts, same virtual
// makespan.

// historyFingerprint hashes a slot history (FNV-1a over the row-major
// decimal rendering) into a compact value for golden comparisons.
func historyFingerprint(h [][]int) uint64 {
	f := fnv.New64a()
	for _, row := range h {
		for _, s := range row {
			fmt.Fprintf(f, "%d,", s)
		}
		fmt.Fprint(f, ";")
	}
	return f.Sum64()
}

func goldenTREMDSpec() *core.Spec {
	return &core.Spec{
		Name:            "golden-t",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 8)}},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          4,
		Seed:            21,
	}
}

func goldenTSUSpec() *core.Spec {
	return &core.Spec{
		Name: "golden-tsu",
		Dims: []core.Dimension{
			{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 3)},
			{Type: exchange.Salt, Values: []float64{0.1, 0.2, 0.4}},
			{Type: exchange.Umbrella, Values: core.UniformWindows(4), Torsion: "phi", K: core.UmbrellaK002},
		},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          2,
		Seed:            11,
	}
}

func sumExchanges(rep *core.Report) (attempted, accepted int) {
	for _, rec := range rep.Records {
		attempted += rec.Attempted
		accepted += rec.Accepted
	}
	return
}

func TestBarrierTriggerReproducesSeedSyncOnPilot(t *testing.T) {
	cases := []struct {
		spec        *core.Spec
		cores       int
		attempted   int
		accepted    int
		makespan    float64
		fingerprint uint64
		rows        int
	}{
		{goldenTREMDSpec(), 8, 14, 5, 625.788863, 0xc1c22324216858e1, 4},
		{goldenTSUSpec(), 36, 75, 15, 1102.091112, 0x161a1d589ae87673, 6},
	}
	for _, tc := range cases {
		// Default SuperMIC (jittered) — the seed goldens were captured
		// with the same machine, seeds and engine.
		rep := runVirtual(t, tc.spec, cluster.SuperMIC(), tc.cores, 2881)
		att, acc := sumExchanges(rep)
		if att != tc.attempted || acc != tc.accepted {
			t.Fatalf("%s: exchanges %d/%d, golden %d/%d",
				tc.spec.Name, acc, att, tc.accepted, tc.attempted)
		}
		if math.Abs(rep.Makespan()-tc.makespan) > 1e-4 {
			t.Fatalf("%s: makespan %.6f, golden %.6f", tc.spec.Name, rep.Makespan(), tc.makespan)
		}
		if len(rep.SlotHistory) != tc.rows {
			t.Fatalf("%s: %d slot-history rows, golden %d", tc.spec.Name, len(rep.SlotHistory), tc.rows)
		}
		if fp := historyFingerprint(rep.SlotHistory); fp != tc.fingerprint {
			t.Fatalf("%s: slot-history fingerprint %#x, golden %#x", tc.spec.Name, fp, tc.fingerprint)
		}
		if rep.Trigger != "barrier" {
			t.Fatalf("%s: trigger %q, want barrier", tc.spec.Name, rep.Trigger)
		}
	}
}

// rngEngine exposes the orchestrator's result-processing order: OwnEnergy
// consumes the engine rng, so any deviation from the seed's
// submission-order processing changes the energies and hence the
// exchange outcomes.
type rngEngine struct{ rng *rand.Rand }

func (e *rngEngine) Name() string                              { return "rng-stub" }
func (e *rngEngine) InitReplica(r *core.Replica, s *core.Spec) {}
func (e *rngEngine) MDTask(r *core.Replica, s *core.Spec, dim int) *task.Spec {
	return &task.Spec{Name: "md", Kind: task.MD, Cores: s.CoresPerReplica,
		Run: func() error { return nil }}
}
func (e *rngEngine) ExchangeTask(dim, n int, s *core.Spec) *task.Spec { return nil }
func (e *rngEngine) SinglePointTasks(dim int, g []*core.Replica, s *core.Spec) []*task.Spec {
	return nil
}
func (e *rngEngine) OwnEnergy(r *core.Replica) float64 {
	return -float64(r.Slot)*3 + 8*e.rng.NormFloat64()
}
func (e *rngEngine) CrossEnergy(r *core.Replica, under md.Params) float64 {
	return under.SaltM*10 + float64(len(under.Restraints))
}
func (e *rngEngine) TorsionIndex(label string) int          { return 0 }
func (e *rngEngine) PrepOverhead(nTasks, ndims int) float64 { return 0 }

func TestBarrierTriggerReproducesSeedSyncOnLocalexec(t *testing.T) {
	spec := &core.Spec{
		Name: "golden-local",
		Dims: []core.Dimension{
			{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, 3)},
			{Type: exchange.Salt, Values: []float64{0.1, 0.2, 0.4}},
			{Type: exchange.Umbrella, Values: core.UniformWindows(4), Torsion: "phi", K: core.UmbrellaK002},
		},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   100,
		Cycles:          3,
		Seed:            19,
	}
	eng := &rngEngine{rng: rand.New(rand.NewSource(5))}
	simu, err := core.New(spec, eng, localexec.New(16))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simu.Run()
	if err != nil {
		t.Fatal(err)
	}
	att, acc := sumExchanges(rep)
	if att != 117 || acc != 36 {
		t.Fatalf("exchanges %d/%d, golden 36/117", acc, att)
	}
	if len(rep.SlotHistory) != 9 {
		t.Fatalf("%d slot-history rows, golden 9", len(rep.SlotHistory))
	}
	if fp := historyFingerprint(rep.SlotHistory); fp != 0xc5a7ff8a68eb79b2 {
		t.Fatalf("slot-history fingerprint %#x, golden 0xc5a7ff8a68eb79b2", fp)
	}
}

func TestDispatcherRunsAreDeterministic(t *testing.T) {
	run := func() *core.Report { return runVirtual(t, goldenTSUSpec(), cluster.SuperMIC(), 36, 2881) }
	a, b := run(), run()
	if historyFingerprint(a.SlotHistory) != historyFingerprint(b.SlotHistory) {
		t.Fatal("same seed produced different slot histories")
	}
	if a.Makespan() != b.Makespan() {
		t.Fatalf("same seed produced different makespans: %v vs %v", a.Makespan(), b.Makespan())
	}
}

func TestWindowTriggerIsAsyncPatternAlias(t *testing.T) {
	mk := func(explicit bool) *core.Report {
		spec := smallTREMD(12, 3)
		spec.Pattern = core.PatternAsynchronous
		spec.AsyncWindow = 45
		spec.AsyncMinReady = 4
		if explicit {
			spec.Trigger = core.NewWindowTrigger(45, 4)
		}
		return runVirtual(t, spec, quietCluster(), 12, 2881)
	}
	alias, explicit := mk(false), mk(true)
	if alias.Makespan() != explicit.Makespan() {
		t.Fatalf("alias makespan %v != explicit window trigger %v", alias.Makespan(), explicit.Makespan())
	}
	if historyFingerprint(alias.SlotHistory) != historyFingerprint(explicit.SlotHistory) {
		t.Fatal("alias and explicit window trigger diverged")
	}
	if alias.Trigger != "window" || explicit.Trigger != "window" {
		t.Fatalf("trigger names %q/%q, want window", alias.Trigger, explicit.Trigger)
	}
}

func TestCountTriggerCompletes(t *testing.T) {
	spec := smallTREMD(12, 3)
	spec.Pattern = core.PatternAsynchronous
	spec.Trigger = core.NewCountTrigger(4)
	cfg := quietCluster()
	cfg.ExecJitter = 0.06
	rep := runVirtual(t, spec, cfg, 12, 2881)
	if rep.ExchangeEvents == 0 {
		t.Fatal("count trigger performed no exchanges")
	}
	if rep.Trigger != "count" {
		t.Fatalf("trigger %q, want count", rep.Trigger)
	}
	if u := rep.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %v out of (0,1]", u)
	}
	for _, r := range rep.Records {
		if r.Attempted == 0 {
			continue
		}
		if r.AcceptanceRatio() < 0 || r.AcceptanceRatio() > 1 {
			t.Fatalf("acceptance ratio %v out of range", r.AcceptanceRatio())
		}
	}
}

func TestCountTriggerNeverIdlesAtBoundaries(t *testing.T) {
	// With no window there is no boundary idling, so the count trigger's
	// utilization must be at least the window trigger's on the same
	// jittery workload.
	cfg := quietCluster()
	cfg.ExecJitter = 0.06
	mk := func(tr core.Trigger) *core.Report {
		spec := smallTREMD(16, 3)
		spec.Pattern = core.PatternAsynchronous
		spec.AsyncWindow = 100
		spec.Trigger = tr
		return runVirtual(t, spec, cfg, 16, 2881)
	}
	count := mk(core.NewCountTrigger(4))
	window := mk(core.NewWindowTrigger(100, 0))
	if count.Utilization() < window.Utilization() {
		t.Fatalf("count utilization %.3f below window %.3f",
			count.Utilization(), window.Utilization())
	}
}

func TestAdaptiveTriggerCompletes(t *testing.T) {
	spec := smallTREMD(12, 4)
	spec.Pattern = core.PatternAsynchronous
	spec.Trigger = core.NewAdaptiveTrigger(150)
	cfg := quietCluster()
	cfg.ExecJitter = 0.08
	rep := runVirtual(t, spec, cfg, 12, 2881)
	if rep.ExchangeEvents == 0 {
		t.Fatal("adaptive trigger performed no exchanges")
	}
	if rep.Trigger != "adaptive" {
		t.Fatalf("trigger %q, want adaptive", rep.Trigger)
	}
	// Every replica runs its full MD-segment budget; all but a possible
	// trailing unexchanged accumulation appear in the records.
	mdTasks := 0
	for _, r := range rep.Records {
		mdTasks += r.MD.Tasks
	}
	if mdTasks < spec.Replicas()*(spec.Cycles-1) || mdTasks > spec.Replicas()*spec.Cycles {
		t.Fatalf("recorded %d MD segments for a %d-segment budget", mdTasks, spec.Replicas()*spec.Cycles)
	}
}

func TestAdaptiveWindowTracksDispersion(t *testing.T) {
	// Unit-level: feed the trigger segment latencies with low and high
	// dispersion and check the adapted window expands with the spread.
	observe := func(tr *core.AdaptiveTrigger, lats []float64) float64 {
		for _, e := range lats {
			tr.ObserveLatency(e)
		}
		tr.Reset(core.TriggerState{Now: 1000})
		return tr.Deadline(core.TriggerState{}) - 1000
	}
	tight := observe(core.NewAdaptiveTrigger(100), []float64{100, 101, 99, 100, 100})
	wide := observe(core.NewAdaptiveTrigger(100), []float64{60, 140, 80, 120, 100})
	if wide <= tight {
		t.Fatalf("adaptive window did not grow with dispersion: tight %v, wide %v", tight, wide)
	}
	// Clamped to [Initial/4, Initial*4].
	huge := observe(core.NewAdaptiveTrigger(100), []float64{1, 4000, 1, 4000, 1})
	if huge > 400+1e-9 {
		t.Fatalf("adaptive window %v exceeded the clamp", huge)
	}
}

func TestNonPositiveWindowTriggersRejected(t *testing.T) {
	// A zero-length window can never make progress (the dispatcher
	// would fire no-op exchanges forever), so Validate must veto it
	// even though Spec.Trigger bypasses the AsyncWindow check.
	for _, tr := range []core.Trigger{
		core.NewWindowTrigger(0, 0),
		core.NewAdaptiveTrigger(0),
	} {
		spec := smallTREMD(4, 1)
		spec.Pattern = core.PatternAsynchronous
		spec.Trigger = tr
		if err := spec.Validate(); err == nil {
			t.Errorf("%s trigger with zero window accepted", tr.Name())
		}
	}
}

func TestAsyncRecordsSlotHistory(t *testing.T) {
	// The dispatcher snapshots slots after every exchange event, so
	// mixing diagnostics now work for the asynchronous family too.
	spec := smallTREMD(12, 3)
	spec.Pattern = core.PatternAsynchronous
	spec.AsyncWindow = 30
	spec.AsyncMinReady = 4
	rep := runVirtual(t, spec, quietCluster(), 12, 2881)
	if len(rep.SlotHistory) != rep.ExchangeEvents {
		t.Fatalf("slot history rows %d, want one per exchange event (%d)",
			len(rep.SlotHistory), rep.ExchangeEvents)
	}
}
