package respace

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/exchange"
)

// checkInvariants asserts every property a re-fitted ladder must hold
// against its input: same rung count, pinned endpoints, strict
// monotonicity in the original direction, and every interior rung
// inside the original envelope.
func checkInvariants(t *testing.T, values, out []float64) {
	t.Helper()
	if len(out) != len(values) {
		t.Fatalf("rung count changed: %d -> %d", len(values), len(out))
	}
	n := len(values)
	if out[0] != values[0] || out[n-1] != values[n-1] {
		t.Fatalf("endpoints moved: [%v %v] -> [%v %v]",
			values[0], values[n-1], out[0], out[n-1])
	}
	up := values[n-1] > values[0]
	lo, hi := values[0], values[n-1]
	if !up {
		lo, hi = hi, lo
	}
	for i := 1; i < n; i++ {
		if up && out[i] <= out[i-1] {
			t.Fatalf("not strictly increasing at %d: %v", i, out)
		}
		if !up && out[i] >= out[i-1] {
			t.Fatalf("not strictly decreasing at %d: %v", i, out)
		}
	}
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite rung %d: %v", i, out)
		}
		if v < lo || v > hi {
			t.Fatalf("rung %d = %v escapes envelope [%v, %v]", i, v, lo, hi)
		}
	}
}

// TestRefitInvariantsRandom sweeps seeded random ladders and acceptance
// profiles — including degenerate all-rejected and all-accepted pairs,
// two-rung ladders, and decreasing ladders — and checks the re-fit
// invariants on every one. 2000 cases cover the space densely enough
// that a clamping or interpolation regression cannot hide.
func TestRefitInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(14)
		values := make([]float64, n)
		v := 200 + 200*rng.Float64()
		for i := range values {
			values[i] = v
			v += 0.01 + 30*rng.Float64()
		}
		if rng.Intn(2) == 1 { // half the trials exercise decreasing ladders
			for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
				values[i], values[j] = values[j], values[i]
			}
		}
		acceptance := make([]float64, n-1)
		for i := range acceptance {
			switch rng.Intn(6) {
			case 0:
				acceptance[i] = 0 // all rejected
			case 1:
				acceptance[i] = 1 // all accepted
			default:
				acceptance[i] = rng.Float64()
			}
		}
		out, err := Refit(values, acceptance)
		if err != nil {
			t.Fatalf("trial %d: Refit(%v, %v): %v", trial, values, acceptance, err)
		}
		checkInvariants(t, values, out)
	}
}

// TestRefitFlatProfileIsNoop: a profile with the same acceptance on
// every gap carries no spacing signal, so the re-fit must return the
// ladder verbatim — bit-exact, not merely close — including profiles
// that are flat only after clamping (all-0 and all-1).
func TestRefitFlatProfileIsNoop(t *testing.T) {
	values := []float64{273, 291, 310, 330, 351, 373}
	for _, a := range []float64{0, 0.35, 1} {
		acceptance := []float64{a, a, a, a, a}
		out, err := Refit(values, acceptance)
		if err != nil {
			t.Fatalf("Refit flat %v: %v", a, err)
		}
		for i := range values {
			if out[i] != values[i] {
				t.Fatalf("flat profile %v moved rung %d: %v -> %v", a, i, values[i], out[i])
			}
		}
	}
}

// TestRefitTwoRungsIsCopy: with only endpoints there is nothing to
// re-place; the result is an exact copy whatever the single ratio says.
func TestRefitTwoRungsIsCopy(t *testing.T) {
	for _, a := range []float64{0, 0.5, 1} {
		out, err := Refit([]float64{273, 373}, []float64{a})
		if err != nil {
			t.Fatalf("Refit 2-rung: %v", err)
		}
		if out[0] != 273 || out[1] != 373 {
			t.Fatalf("2-rung ladder changed: %v", out)
		}
	}
}

// TestRefitMovesTowardHardGap: a gap that rejects everything holds the
// whole difficulty budget, so the interior rungs must migrate toward it
// — the bunched side spreads out and the hard gap is subdivided.
func TestRefitMovesTowardHardGap(t *testing.T) {
	values := []float64{273, 278, 283, 288, 373}
	// Easy bunched gaps, then one hard gap at the top.
	out, err := Refit(values, []float64{0.9, 0.9, 0.9, 0.01})
	if err != nil {
		t.Fatalf("Refit: %v", err)
	}
	checkInvariants(t, values, out)
	for i := 1; i < len(values)-1; i++ {
		if out[i] <= values[i] {
			t.Fatalf("rung %d did not move toward the hard gap: %v -> %v", i, values[i], out[i])
		}
	}
}

func TestRefitRejectsBadInput(t *testing.T) {
	cases := []struct {
		name       string
		values     []float64
		acceptance []float64
	}{
		{"one rung", []float64{300}, nil},
		{"length mismatch", []float64{273, 323, 373}, []float64{0.5}},
		{"duplicate rung", []float64{273, 273, 373}, []float64{0.5, 0.5}},
		{"non-monotone", []float64{273, 373, 323}, []float64{0.5, 0.5}},
	}
	for _, tc := range cases {
		if _, err := Refit(tc.values, tc.acceptance); err == nil {
			t.Errorf("%s: Refit accepted invalid input", tc.name)
		}
	}
}

// TestRefitDecreasingMirrorsIncreasing: re-fitting a decreasing ladder
// must equal re-fitting its reversal and flipping the result, so both
// directions share one code path's numerics.
func TestRefitDecreasingMirrorsIncreasing(t *testing.T) {
	inc := []float64{273, 278, 283, 288, 373}
	acc := []float64{0.8, 0.7, 0.6, 0.05}
	upOut, err := Refit(inc, acc)
	if err != nil {
		t.Fatalf("increasing Refit: %v", err)
	}
	n := len(inc)
	dec := make([]float64, n)
	decAcc := make([]float64, n-1)
	for i := range dec {
		dec[i] = inc[n-1-i]
	}
	for i := range decAcc {
		decAcc[i] = acc[n-2-i]
	}
	downOut, err := Refit(dec, decAcc)
	if err != nil {
		t.Fatalf("decreasing Refit: %v", err)
	}
	for i := range upOut {
		if downOut[i] != upOut[n-1-i] {
			t.Fatalf("direction asymmetry at %d: up %v, down %v", i, upOut, downOut)
		}
	}
}

// TestRefitDeterministic: the re-fit is a pure function — repeated
// calls on the same inputs return bit-identical ladders, the property
// checkpoint/resume determinism rests on.
func TestRefitDeterministic(t *testing.T) {
	values := []float64{273, 280, 295, 320, 373}
	acceptance := []float64{0.95, 0.6, 0.2, 0.02}
	first, err := Refit(values, acceptance)
	if err != nil {
		t.Fatalf("Refit: %v", err)
	}
	for i := 0; i < 5; i++ {
		again, err := Refit(values, acceptance)
		if err != nil {
			t.Fatalf("Refit repeat %d: %v", i, err)
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("repeat %d diverged at rung %d: %v vs %v", i, j, first[j], again[j])
			}
		}
	}
}

// feedEvents pushes synthetic exchange events through a bus so the
// collector accumulates a known per-pair acceptance profile
// (pairAccept[p][round] is pair p's outcome in the given round). Slot
// assignments are held at identity: only the acceptance table matters.
func feedEvents(bus *core.Bus, nReplicas int, pairAccept [][]bool) {
	slots := make([]int, nReplicas)
	for i := range slots {
		slots[i] = i
	}
	for round := range pairAccept[0] {
		var pairs []core.PairOutcome
		for p := range pairAccept {
			pairs = append(pairs, core.PairOutcome{
				Lo: p, Hi: p + 1, ReplicaI: p, ReplicaJ: p + 1,
				Accepted: pairAccept[p][round],
			})
		}
		bus.Publish(core.ExchangeEvent{
			At: float64(round + 1), Event: round, Dim: 0,
			Pairs: pairs, Slots: slots,
		})
	}
}

// TestPlannerPlanRespace drives a real collector with synthetic
// exchange events: a profile with one hard gap yields a proposal that
// moves rungs; a flat profile yields no proposal; a missing profile
// (no events) yields no proposal.
func TestPlannerPlanRespace(t *testing.T) {
	ladder := []float64{273, 278, 283, 288, 373}
	mkCollector := func(pairAccept [][]bool) *Planner {
		spec := &core.Spec{
			Name: "planner-test",
			Dims: []core.Dimension{{Type: exchange.Temperature, Values: ladder}},
			Bus:  core.NewBus(),
		}
		col := analysis.New(analysis.ConfigFromSpec(spec))
		col.Attach(spec.Bus, analysis.RunBuffer(spec))
		feedEvents(spec.Bus, len(ladder), pairAccept)
		return NewPlanner(col)
	}

	rounds := func(accept bool, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = accept
		}
		return out
	}

	t.Run("skewed profile proposes a move", func(t *testing.T) {
		p := mkCollector([][]bool{
			rounds(true, 8), rounds(true, 8), rounds(true, 8), rounds(false, 8),
		})
		next, ok := p.PlanRespace(0, ladder)
		if !ok {
			t.Fatal("expected a proposal for a skewed profile")
		}
		checkInvariants(t, ladder, next)
	})

	t.Run("flat profile proposes nothing", func(t *testing.T) {
		p := mkCollector([][]bool{
			rounds(true, 8), rounds(true, 8), rounds(true, 8), rounds(true, 8),
		})
		if next, ok := p.PlanRespace(0, ladder); ok {
			t.Fatalf("flat profile produced a proposal: %v", next)
		}
	})

	t.Run("no measurements proposes nothing", func(t *testing.T) {
		spec := &core.Spec{
			Name: "planner-empty",
			Dims: []core.Dimension{{Type: exchange.Temperature, Values: ladder}},
			Bus:  core.NewBus(),
		}
		col := analysis.New(analysis.ConfigFromSpec(spec))
		col.Attach(spec.Bus, analysis.RunBuffer(spec))
		if next, ok := NewPlanner(col).PlanRespace(0, ladder); ok {
			t.Fatalf("empty collector produced a proposal: %v", next)
		}
	})

	t.Run("nil planner and short ladders propose nothing", func(t *testing.T) {
		var p *Planner
		if _, ok := p.PlanRespace(0, ladder); ok {
			t.Fatal("nil planner proposed")
		}
		if _, ok := NewPlanner(nil).PlanRespace(0, []float64{273, 373}); ok {
			t.Fatal("2-rung ladder proposed")
		}
	})
}
