// Package respace closes the last control loop of the flexible-REMD
// story: turning the feedback trigger's ladder-saturation diagnostic
// into action. When a dimension's PI controller reports that its
// acceptance target is unreachable at any exchange-window length — the
// ladder spacing itself is wrong — the Planner re-fits that dimension's
// window values from the measured per-pair acceptance profile held by
// the analysis collector, and the core dispatcher swaps the grid at a
// checkpoint boundary (see core.RespaceSpec).
//
// The re-fit is the classic flat-acceptance construction: per-pair
// acceptance ratios a_i define an "exchange difficulty" d_i = -ln(a_i)
// per rung gap, the cumulative difficulty curve is piecewise-linearly
// interpolated over the current values, and the same number of rungs is
// re-placed at equal cumulative-difficulty spacing with the endpoints
// pinned. Gaps that accepted everything contribute ~0 difficulty and
// get squeezed; gaps that accepted nothing dominate the budget and get
// subdivided. A profile that is already flat re-fits to itself.
//
// The planner is a pure function of the collector's measured history:
// the same observed events always produce the same proposal, which is
// what lets a refit replay bit-exactly across checkpoint/resume.
package respace

import (
	"fmt"
	"math"

	"repro/internal/analysis"
)

// ratioFloor clamps per-pair acceptance ratios away from 0 and 1 so
// -ln(a) stays finite: an all-rejected pair contributes difficulty
// -ln(1e-3) ≈ 6.9, an all-accepted pair ≈ 1e-3.
const ratioFloor = 1e-3

// Refit re-places a strictly monotone value ladder at equal
// cumulative-difficulty spacing given the measured acceptance ratio of
// each neighbour gap (acceptance[i] covers values[i]..values[i+1]).
// The returned ladder has the same length, the same endpoints and the
// same direction; a two-rung ladder or a flat acceptance profile
// returns an exact copy. Errors reject non-monotone input or a length
// mismatch.
func Refit(values, acceptance []float64) ([]float64, error) {
	n := len(values)
	if n < 2 {
		return nil, fmt.Errorf("respace: need at least 2 rungs, got %d", n)
	}
	if len(acceptance) != n-1 {
		return nil, fmt.Errorf("respace: %d rungs need %d acceptance ratios, got %d",
			n, n-1, len(acceptance))
	}
	up := values[n-1] > values[0]
	if !up {
		// Re-fit the reversed (increasing) ladder, then reverse back.
		rv := make([]float64, n)
		ra := make([]float64, n-1)
		for i := range rv {
			rv[i] = values[n-1-i]
		}
		for i := range ra {
			ra[i] = acceptance[n-2-i]
		}
		out, err := Refit(rv, ra)
		if err != nil {
			return nil, err
		}
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out, nil
	}
	for i := 1; i < n; i++ {
		if values[i] <= values[i-1] {
			return nil, fmt.Errorf("respace: values not strictly monotone at index %d", i)
		}
	}
	out := make([]float64, n)
	copy(out, values)
	if n == 2 {
		return out, nil
	}
	// Cumulative difficulty over the current rungs, with a flatness
	// check: equal clamped ratios everywhere means the equal-difficulty
	// targets land exactly on the current rungs, so copy them verbatim
	// instead of round-tripping through the interpolation arithmetic.
	diff := make([]float64, n-1)
	flat := true
	for i, a := range acceptance {
		diff[i] = -math.Log(clampRatio(a))
		if i > 0 && diff[i] != diff[0] {
			flat = false
		}
	}
	if flat {
		return out, nil
	}
	cum := make([]float64, n)
	for i := 1; i < n; i++ {
		cum[i] = cum[i-1] + diff[i-1]
	}
	total := cum[n-1]
	// Invert the curve at equal spacing; endpoints stay pinned.
	seg := 0
	for j := 1; j < n-1; j++ {
		target := total * float64(j) / float64(n-1)
		for seg < n-2 && cum[seg+1] < target {
			seg++
		}
		span := cum[seg+1] - cum[seg]
		frac := 0.0
		if span > 0 {
			frac = (target - cum[seg]) / span
		}
		out[j] = values[seg] + frac*(values[seg+1]-values[seg])
	}
	for i := 1; i < n; i++ {
		if out[i] <= out[i-1] {
			return nil, fmt.Errorf("respace: re-fit collapsed rungs %d and %d", i-1, i)
		}
	}
	return out, nil
}

// clampRatio bounds an acceptance ratio to [ratioFloor, 1-ratioFloor].
func clampRatio(a float64) float64 {
	if math.IsNaN(a) {
		return ratioFloor
	}
	if a < ratioFloor {
		return ratioFloor
	}
	if a > 1-ratioFloor {
		return 1 - ratioFloor
	}
	return a
}

// Planner implements core.RespacePlanner on top of the analysis
// collector's measured per-pair acceptance statistics.
type Planner struct {
	col *analysis.Collector
}

// NewPlanner wraps a collector; the dispatcher calls PlanRespace when a
// dimension's saturation diagnostic persists past the configured
// threshold.
func NewPlanner(col *analysis.Collector) *Planner { return &Planner{col: col} }

// PlanRespace proposes a re-fitted value ladder for dimension dim. It
// prefers each pair's rolling acceptance window (the same signal the
// feedback controller steers on) and falls back to the cumulative
// ratios; either way every gap must have at least one measured attempt,
// otherwise there is no profile to fit and ok is false. A proposal that
// does not move any rung (already flat) also returns false — the
// dispatcher would only churn state applying it.
func (p *Planner) PlanRespace(dim int, current []float64) ([]float64, bool) {
	if p == nil || p.col == nil || len(current) < 3 {
		return nil, false
	}
	stats := p.col.SnapshotLite()
	ratios, ok := pairRatios(stats.AcceptanceWindow, dim, len(current)-1)
	if !ok {
		ratios, ok = pairRatios(stats.Acceptance, dim, len(current)-1)
	}
	if !ok {
		return nil, false
	}
	next, err := Refit(current, ratios)
	if err != nil {
		return nil, false
	}
	moved := false
	for i := range next {
		if next[i] != current[i] {
			moved = true
			break
		}
	}
	if !moved {
		return nil, false
	}
	return next, true
}

// pairRatios extracts dimension dim's per-pair acceptance ratios from a
// per-dimension PairStat table, requiring exactly want pairs with at
// least one attempt each.
func pairRatios(table [][]analysis.PairStat, dim, want int) ([]float64, bool) {
	if dim < 0 || dim >= len(table) || len(table[dim]) != want {
		return nil, false
	}
	out := make([]float64, want)
	for i, ps := range table[dim] {
		if ps.Attempted == 0 {
			return nil, false
		}
		out[i] = ps.Ratio()
	}
	return out, true
}
