package pilot

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/task"
)

// DefaultLoadDecayTau is the e-folding time, in virtual seconds, of the
// completed-work load estimate used by MultiRuntime routing.
const DefaultLoadDecayTau = 300.0

// DefaultAffinityBonus is the load discount granted to the pilot that
// last successfully ran a replica's task (staging affinity: its inputs
// are already on that machine's filesystem).
const DefaultAffinityBonus = 0.05

// MultiRuntime schedules one REMD workload across several pilots on
// (possibly different) machines at once — the paper's final named
// extension ("RepEx can be extended to use multiple HPC resources
// simultaneously for a single REMD simulation", §5).
//
// Routing is weighted least-loaded over two signals: the core-width
// currently in flight on each pilot, plus an exponentially decaying
// estimate of recently completed core work. Both are kept per routing
// slot, not per pilot incarnation, so a failover relaunch inherits its
// slot's history instead of looking idle and attracting a thundering
// herd. A staging-affinity discount prefers the pilot that last ran a
// replica (its staged inputs are already there). All pilots must live
// in the same simulation environment and be driven from the same
// orchestrator process.
type MultiRuntime struct {
	pilots []*Pilot
	proc   *sim.Proc
	stream *unitStream
	// OverheadTotal accumulates client-side overhead (T_RepEx-over).
	OverheadTotal float64
	// Failover, when set, replaces an expired or draining pilot in
	// place (same machine, same description, fresh batch-queue wait)
	// the next time a submission would route to it. When unset, dead
	// pilots are simply skipped and the surviving allocations absorb
	// the work.
	Failover bool
	// LoadDecayTau is the e-folding time (virtual seconds) of the
	// completed-work estimate; 0 selects DefaultLoadDecayTau.
	LoadDecayTau float64
	// AffinityBonus is the staging-affinity load discount; 0 selects
	// DefaultAffinityBonus, negative disables affinity.
	AffinityBonus float64
	// routed counts tasks per pilot slot, for balance inspection.
	routed []int
	// inflight tracks core-width submitted but not yet completed per
	// slot. It is decremented by unit completion callbacks, so pilot
	// failures (whose units all fail, completing them) drain it
	// naturally — no reset on relaunch.
	inflight []int
	// recent / recentAt implement the per-slot decaying completed-work
	// estimate (core-width units, e-folding over LoadDecayTau).
	recent   []float64
	recentAt []float64
	// lastPilot remembers which pilot instance last successfully ran
	// each replica, for the staging-affinity discount. Instance
	// pointers, not slots: a relaunched pilot has lost the staged data.
	lastPilot map[int]*Pilot
	// relaunched counts replacement pilots launched by failover.
	relaunched int
	// retired holds replaced pilots until their remaining resource
	// events (the drain-then-expire of a preempted pilot) are drained.
	retired []ownedPilot
}

// NewMultiRuntime binds pilots to an orchestrator process. At least one
// pilot is required and all must share the orchestrator's environment.
func NewMultiRuntime(proc *sim.Proc, pilots ...*Pilot) (*MultiRuntime, error) {
	if len(pilots) == 0 {
		return nil, fmt.Errorf("pilot: multi-runtime needs at least one pilot")
	}
	for i, pl := range pilots {
		if pl.env != proc.Env() {
			return nil, fmt.Errorf("pilot: pilot %d lives in a different simulation environment", i)
		}
	}
	return &MultiRuntime{
		pilots:    pilots,
		proc:      proc,
		stream:    newUnitStream(proc),
		routed:    make([]int, len(pilots)),
		inflight:  make([]int, len(pilots)),
		recent:    make([]float64, len(pilots)),
		recentAt:  make([]float64, len(pilots)),
		lastPilot: make(map[int]*Pilot),
	}, nil
}

// Pilots returns the managed pilots.
func (m *MultiRuntime) Pilots() []*Pilot { return m.pilots }

// PilotAt returns the pilot currently occupying routing slot i (the
// chaos driver's lookup: after a failover relaunch the slot holds the
// replacement).
func (m *MultiRuntime) PilotAt(i int) *Pilot {
	if i < 0 || i >= len(m.pilots) {
		return nil
	}
	return m.pilots[i]
}

// Routed returns how many tasks each pilot slot received.
func (m *MultiRuntime) Routed() []int { return append([]int(nil), m.routed...) }

// InFlightCores returns the core-width submitted but not yet completed
// per slot (for tests and balance inspection).
func (m *MultiRuntime) InFlightCores() []int { return append([]int(nil), m.inflight...) }

// Now returns the shared virtual time.
func (m *MultiRuntime) Now() float64 { return m.proc.Now() }

// Cores returns the aggregate current core count across all pilots.
func (m *MultiRuntime) Cores() int {
	n := 0
	for _, pl := range m.pilots {
		n += pl.Cores()
	}
	return n
}

// decayTau returns the configured or default decay constant.
func (m *MultiRuntime) decayTau() float64 {
	if m.LoadDecayTau > 0 {
		return m.LoadDecayTau
	}
	return DefaultLoadDecayTau
}

// affinityBonus returns the configured or default staging-affinity
// discount (0 when disabled).
func (m *MultiRuntime) affinityBonus() float64 {
	switch {
	case m.AffinityBonus > 0:
		return m.AffinityBonus
	case m.AffinityBonus < 0:
		return 0
	default:
		return DefaultAffinityBonus
	}
}

// decayedRecent folds the elapsed-time decay into slot i's completed
// work estimate and returns it.
func (m *MultiRuntime) decayedRecent(i int) float64 {
	now := m.proc.Now()
	if dt := now - m.recentAt[i]; dt > 0 {
		m.recent[i] *= math.Exp(-dt / m.decayTau())
		m.recentAt[i] = now
	}
	return m.recent[i]
}

// RecentLoad returns slot i's decayed completed-work estimate in
// core-width units (for tests and balance inspection).
func (m *MultiRuntime) RecentLoad(i int) float64 { return m.decayedRecent(i) }

// Submit routes the task to the pilot whose relative load — in-flight
// core-width plus the decaying completed-work estimate, over current
// capacity, minus the staging-affinity discount when the pilot last ran
// this replica — would stay lowest. Tasks wider than a pilot are only
// routed to pilots that fit them. Expired and draining pilots are
// replaced in place when Failover is set and skipped otherwise; if no
// live candidate remains the task is submitted to the least-loaded dead
// one and fails fast, which the scheduler's resubmission cap converts
// into replica drops.
func (m *MultiRuntime) Submit(s *task.Spec) task.Handle {
	best, bestLoad := -1, 0.0
	bestAny, bestAnyLoad := -1, 0.0 // fallback incl. expired pilots
	bonus := m.affinityBonus()
	for i := range m.pilots {
		pl := m.pilots[i]
		if m.Failover && (pl.Expired() || pl.Draining()) && s.Cores <= pl.desc.Cores {
			if npl, err := Launch(pl.cl, pl.desc); err == nil {
				m.retired = append(m.retired, ownedPilot{pl: pl, label: i})
				m.pilots[i] = npl
				m.relaunched++
				pl = npl
			}
		}
		// Fit against the nominal size for dead pilots (fail-fast
		// fallback) and the current size for live ones.
		if s.Cores > pl.desc.Cores && s.Cores > pl.Cores() {
			continue
		}
		capacity := pl.Cores()
		if capacity <= 0 {
			capacity = pl.desc.Cores
		}
		load := (float64(m.inflight[i]) + m.decayedRecent(i) + float64(s.Cores)) / float64(capacity)
		if bonus > 0 && m.lastPilot[s.ReplicaID] == pl {
			load -= bonus
		}
		if bestAny < 0 || load < bestAnyLoad {
			bestAny, bestAnyLoad = i, load
		}
		if pl.Expired() || pl.Draining() || s.Cores > pl.Cores() {
			continue
		}
		if best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best < 0 {
		best = bestAny
	}
	if best < 0 {
		panic(fmt.Sprintf("pilot: task %q (%d cores) fits no pilot", s.Name, s.Cores))
	}
	slot := best
	pl := m.pilots[slot]
	m.routed[slot]++
	m.inflight[slot] += s.Cores
	u := pl.SubmitUnit(s)
	// Stamp the routing decision for the flight recorder (race-free:
	// the unit's process starts only after the orchestrator yields).
	u.res.Pilot = slot
	// Completion callback: settle the in-flight width, feed the decayed
	// completed-work estimate, and remember the replica's last home for
	// staging affinity (successful runs only — a killed unit left no
	// usable outputs behind). unitStream.watch composes around it.
	u.onDone = func(u *Unit) {
		m.inflight[slot] -= s.Cores
		if u.res.Err == nil {
			m.recent[slot] = m.decayedRecent(slot) + float64(s.Cores)
			m.lastPilot[s.ReplicaID] = pl
		}
	}
	return u
}

// Relaunched reports how many replacement pilots failover has launched.
func (m *MultiRuntime) Relaunched() int { return m.relaunched }

// DrainResourceEvents returns and clears buffered pilot lifecycle
// events across current and retired pilots, stamped with their routing
// slot and merged into occurrence order (task.ResourceReporter).
func (m *MultiRuntime) DrainResourceEvents() []task.ResourceEvent {
	ev, kept := drainOwned(m.retired)
	m.retired = kept
	for i, pl := range m.pilots {
		pe := pl.TakeEvents()
		for j := range pe {
			pe[j].Pilot = i
		}
		ev = append(ev, pe...)
	}
	sortResourceEvents(ev)
	return ev
}

// Await blocks the orchestrator until the unit finishes.
func (m *MultiRuntime) Await(h task.Handle) task.Result {
	u := h.(*Unit)
	u.done.Await(m.proc)
	return u.res
}

// AwaitAll blocks until all units finish.
func (m *MultiRuntime) AwaitAll(hs []task.Handle) []task.Result {
	res := make([]task.Result, len(hs))
	for i, h := range hs {
		res[i] = m.Await(h)
	}
	return res
}

// SubmitWatched routes the task like Submit and registers it on the
// completion stream for delivery by AwaitNext.
func (m *MultiRuntime) SubmitWatched(s *task.Spec) task.Handle {
	u := m.Submit(s).(*Unit)
	m.stream.watch(u)
	return u
}

// AwaitNext blocks until a watched unit completion is pending delivery
// or the deadline passes, draining the stream in completion order.
func (m *MultiRuntime) AwaitNext(deadline float64) []task.Handle {
	return m.stream.awaitNext(deadline)
}

// Overhead charges client-side overhead to the virtual clock.
func (m *MultiRuntime) Overhead(d float64) {
	if d <= 0 {
		return
	}
	m.OverheadTotal += d
	m.proc.Sleep(d)
}

// SleepUntil blocks the orchestrator until virtual time t.
func (m *MultiRuntime) SleepUntil(t float64) {
	if d := t - m.proc.Now(); d > 0 {
		m.proc.Sleep(d)
	}
}

// BusyCoreSeconds sums the pilots' busy core-seconds.
func (m *MultiRuntime) BusyCoreSeconds() float64 {
	s := 0.0
	for _, pl := range m.pilots {
		s += pl.BusyCoreSeconds()
	}
	return s
}

var (
	_ task.Runtime          = (*MultiRuntime)(nil)
	_ task.ResourceReporter = (*MultiRuntime)(nil)
)
