package pilot

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/task"
)

// MultiRuntime schedules one REMD workload across several pilots on
// (possibly different) machines at once — the paper's final named
// extension ("RepEx can be extended to use multiple HPC resources
// simultaneously for a single REMD simulation", §5).
//
// Tasks are routed to the pilot with the most free capacity at submit
// time (weighted least-loaded), so a big allocation on one machine and a
// small one on another are both kept busy. All pilots must live in the
// same simulation environment and be driven from the same orchestrator
// process.
type MultiRuntime struct {
	pilots []*Pilot
	proc   *sim.Proc
	stream *unitStream
	// OverheadTotal accumulates client-side overhead (T_RepEx-over).
	OverheadTotal float64
	// Failover, when set, replaces an expired pilot in place (same
	// machine, same description, fresh batch-queue wait) the next time a
	// submission would route to it. When unset, expired pilots are
	// simply skipped and the surviving allocations absorb the work.
	Failover bool
	// routed counts tasks per pilot, for balance inspection.
	routed []int
	// assignedCores tracks total core-width submitted per pilot, the
	// basis of the capacity-proportional routing decision.
	assignedCores []int
	// relaunched counts replacement pilots launched by failover.
	relaunched int
}

// NewMultiRuntime binds pilots to an orchestrator process. At least one
// pilot is required and all must share the orchestrator's environment.
func NewMultiRuntime(proc *sim.Proc, pilots ...*Pilot) (*MultiRuntime, error) {
	if len(pilots) == 0 {
		return nil, fmt.Errorf("pilot: multi-runtime needs at least one pilot")
	}
	for i, pl := range pilots {
		if pl.env != proc.Env() {
			return nil, fmt.Errorf("pilot: pilot %d lives in a different simulation environment", i)
		}
	}
	return &MultiRuntime{
		pilots:        pilots,
		proc:          proc,
		stream:        newUnitStream(proc),
		routed:        make([]int, len(pilots)),
		assignedCores: make([]int, len(pilots)),
	}, nil
}

// Pilots returns the managed pilots.
func (m *MultiRuntime) Pilots() []*Pilot { return m.pilots }

// Routed returns how many tasks each pilot received.
func (m *MultiRuntime) Routed() []int { return append([]int(nil), m.routed...) }

// Now returns the shared virtual time.
func (m *MultiRuntime) Now() float64 { return m.proc.Now() }

// Cores returns the aggregate core count across all pilots.
func (m *MultiRuntime) Cores() int {
	n := 0
	for _, pl := range m.pilots {
		n += pl.Cores()
	}
	return n
}

// Submit routes the task to the pilot whose relative assigned load
// (submitted core-width over capacity) would stay lowest, so work is
// spread proportionally to each machine's allocation. Tasks wider than
// some pilots are only routed to pilots that fit them. Expired pilots
// are replaced in place when Failover is set and skipped otherwise; if
// every candidate pilot has expired the task is submitted to the
// least-loaded expired one and fails fast with ErrPilotExpired, which
// the scheduler's resubmission cap converts into replica drops.
func (m *MultiRuntime) Submit(s *task.Spec) task.Handle {
	best, bestLoad := -1, 0.0
	bestAny, bestAnyLoad := -1, 0.0 // fallback incl. expired pilots
	for i := range m.pilots {
		pl := m.pilots[i]
		if s.Cores > pl.Cores() {
			continue
		}
		if pl.Expired() && m.Failover {
			if npl, err := Launch(pl.cl, pl.desc); err == nil {
				m.pilots[i] = npl
				m.assignedCores[i] = 0
				m.relaunched++
				pl = npl
			}
		}
		load := float64(m.assignedCores[i]+s.Cores) / float64(pl.Cores())
		if bestAny < 0 || load < bestAnyLoad {
			bestAny, bestAnyLoad = i, load
		}
		if pl.Expired() {
			continue
		}
		if best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best < 0 {
		best = bestAny
	}
	if best < 0 {
		panic(fmt.Sprintf("pilot: task %q (%d cores) fits no pilot", s.Name, s.Cores))
	}
	m.routed[best]++
	m.assignedCores[best] += s.Cores
	u := m.pilots[best].SubmitUnit(s)
	// Stamp the routing decision for the flight recorder (race-free:
	// the unit's process starts only after the orchestrator yields).
	u.res.Pilot = best
	return u
}

// Relaunched reports how many replacement pilots failover has launched.
func (m *MultiRuntime) Relaunched() int { return m.relaunched }

// Await blocks the orchestrator until the unit finishes.
func (m *MultiRuntime) Await(h task.Handle) task.Result {
	u := h.(*Unit)
	u.done.Await(m.proc)
	return u.res
}

// AwaitAll blocks until all units finish.
func (m *MultiRuntime) AwaitAll(hs []task.Handle) []task.Result {
	res := make([]task.Result, len(hs))
	for i, h := range hs {
		res[i] = m.Await(h)
	}
	return res
}

// SubmitWatched routes the task like Submit and registers it on the
// completion stream for delivery by AwaitNext.
func (m *MultiRuntime) SubmitWatched(s *task.Spec) task.Handle {
	u := m.Submit(s).(*Unit)
	m.stream.watch(u)
	return u
}

// AwaitNext blocks until a watched unit completion is pending delivery
// or the deadline passes, draining the stream in completion order.
func (m *MultiRuntime) AwaitNext(deadline float64) []task.Handle {
	return m.stream.awaitNext(deadline)
}

// Overhead charges client-side overhead to the virtual clock.
func (m *MultiRuntime) Overhead(d float64) {
	if d <= 0 {
		return
	}
	m.OverheadTotal += d
	m.proc.Sleep(d)
}

// SleepUntil blocks the orchestrator until virtual time t.
func (m *MultiRuntime) SleepUntil(t float64) {
	if d := t - m.proc.Now(); d > 0 {
		m.proc.Sleep(d)
	}
}

// BusyCoreSeconds sums the pilots' busy core-seconds.
func (m *MultiRuntime) BusyCoreSeconds() float64 {
	s := 0.0
	for _, pl := range m.pilots {
		s += pl.BusyCoreSeconds()
	}
	return s
}

var _ task.Runtime = (*MultiRuntime)(nil)
