package pilot

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestWalltimeExpiryFailsUnitsAndReleasesAllocation(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, quietConfig(), 1) // QueueWait 10
	pl, err := Launch(cl, Description{Cores: 8, Walltime: 50})
	if err != nil {
		t.Fatal(err)
	}
	long := pl.SubmitUnit(&task.Spec{Name: "long", Kind: task.MD, Cores: 4, Duration: 1000})
	short := pl.SubmitUnit(&task.Spec{Name: "short", Cores: 1, Duration: 5})
	e.Run()

	if err := short.Result().Err; err != nil {
		t.Fatalf("unit finishing inside the walltime failed: %v", err)
	}
	res := long.Result()
	if !errors.Is(res.Err, ErrPilotExpired) {
		t.Fatalf("long unit error %v, want ErrPilotExpired", res.Err)
	}
	if !errors.Is(res.Err, task.ErrResourceLost) {
		t.Fatal("ErrPilotExpired must wrap task.ErrResourceLost")
	}
	if long.State() != StateFailed {
		t.Fatalf("long unit state %v, want FAILED", long.State())
	}
	// The batch system reclaims the job at activation (queue wait 10)
	// plus walltime 50.
	if math.Abs(res.Finished-60) > 1e-6 {
		t.Fatalf("long unit killed at %v, want 60", res.Finished)
	}
	if !pl.Expired() {
		t.Fatal("pilot not marked expired")
	}
	if pl.UnitsExpired() != 1 {
		t.Fatalf("units expired %d, want 1", pl.UnitsExpired())
	}
	// An expiring pilot must not hold machine cores hostage.
	if cl.CoresInUse() != 0 {
		t.Fatalf("machine cores in use %d after expiry, want 0", cl.CoresInUse())
	}
}

func TestWalltimeExpiryKillsQueuedUnits(t *testing.T) {
	// A unit still waiting for cores when the walltime runs out dies
	// with the pilot instead of waiting forever.
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.QueueWait = 0
	cfg.LaunchGap = 0
	cfg.LaunchLatency = 0
	cl := cluster.MustNew(e, cfg, 1)
	pl, _ := Launch(cl, Description{Cores: 1, Walltime: 30})
	running := pl.SubmitUnit(&task.Spec{Name: "running", Cores: 1, Duration: 100})
	queued := pl.SubmitUnit(&task.Spec{Name: "queued", Cores: 1, Duration: 100})
	e.Run()
	for _, u := range []*Unit{running, queued} {
		if !errors.Is(u.Result().Err, ErrPilotExpired) {
			t.Fatalf("unit %s error %v, want ErrPilotExpired", u.Result().Spec.Name, u.Result().Err)
		}
	}
	if pl.UnitsExpired() != 2 {
		t.Fatalf("units expired %d, want 2", pl.UnitsExpired())
	}
}

func TestSubmitAfterExpiryFailsFast(t *testing.T) {
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.QueueWait = 0
	cl := cluster.MustNew(e, cfg, 1)
	pl, _ := Launch(cl, Description{Cores: 4, Walltime: 20})
	e.Run() // run to expiry with no units
	if !pl.Expired() {
		t.Fatal("idle pilot did not expire")
	}
	u := pl.SubmitUnit(&task.Spec{Name: "late", Cores: 1, Duration: 5})
	e.Run()
	if !errors.Is(u.Result().Err, ErrPilotExpired) {
		t.Fatalf("late unit error %v, want ErrPilotExpired", u.Result().Err)
	}
}

func TestFailoverRuntimeRelaunchesPilot(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, quietConfig(), 1) // QueueWait 10
	var rt *Runtime
	var interrupted, redone task.Result
	e.Go("orchestrator", func(p *sim.Proc) {
		var err error
		rt, err = NewFailoverRuntime(cl, Description{Cores: 4, Walltime: 50}, p)
		if err != nil {
			t.Error(err)
			return
		}
		// Outlives the walltime: killed by the first pilot's expiry.
		interrupted = rt.Await(rt.Submit(&task.Spec{Name: "long", Kind: task.MD, Cores: 1, Duration: 1000}))
		// Resubmission lands on a transparently relaunched pilot.
		redone = rt.Await(rt.Submit(&task.Spec{Name: "redo", Kind: task.MD, Cores: 1, Duration: 20}))
	})
	e.Run()
	if !errors.Is(interrupted.Err, task.ErrResourceLost) {
		t.Fatalf("interrupted unit error %v, want resource loss", interrupted.Err)
	}
	if redone.Err != nil {
		t.Fatalf("resubmitted unit failed: %v", redone.Err)
	}
	if rt.Relaunched() != 1 {
		t.Fatalf("relaunched %d pilots, want 1", rt.Relaunched())
	}
	// The replacement pays the batch queue again: the redo unit cannot
	// have finished before expiry (60) + queue wait (10) + exec (20).
	if redone.Finished < 90 {
		t.Fatalf("redo finished at %v, want >= 90 (fresh queue wait)", redone.Finished)
	}
}

func TestMultiRuntimeRoutesAroundExpiredPilots(t *testing.T) {
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.QueueWait = 0
	cl := cluster.MustNew(e, cfg, 1)
	plA, _ := Launch(cl, Description{Cores: 4, Walltime: 50})
	plB, _ := Launch(cl, Description{Cores: 4}) // unbounded
	var m *MultiRuntime
	var killed, rerouted, failedOver task.Result
	e.Go("orchestrator", func(p *sim.Proc) {
		var err error
		m, err = NewMultiRuntime(p, plA, plB)
		if err != nil {
			t.Error(err)
			return
		}
		// Ties route to the first pilot: lands on plA and is killed.
		killed = m.Await(m.Submit(&task.Spec{Name: "long", Kind: task.MD, Cores: 1, Duration: 1000}))
		// plA is now expired and skipped: plB absorbs the work.
		rerouted = m.Await(m.Submit(&task.Spec{Name: "reroute", Cores: 1, Duration: 5}))
		// With failover enabled, plA is replaced in place instead.
		m.Failover = true
		failedOver = m.Await(m.Submit(&task.Spec{Name: "failover", Cores: 1, Duration: 5}))
	})
	e.Run()
	if !errors.Is(killed.Err, task.ErrResourceLost) {
		t.Fatalf("killed unit error %v, want resource loss", killed.Err)
	}
	if rerouted.Err != nil {
		t.Fatalf("rerouted unit failed: %v", rerouted.Err)
	}
	if routed := m.Routed(); routed[1] == 0 {
		t.Fatalf("healthy pilot received no work: routed %v", routed)
	}
	if failedOver.Err != nil {
		t.Fatalf("failover unit failed: %v", failedOver.Err)
	}
	if m.Relaunched() != 1 {
		t.Fatalf("relaunched %d pilots, want 1", m.Relaunched())
	}
}
