package pilot

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/task"
)

// twoClusterSetup builds two machines in one environment with pilots of
// the given sizes and runs fn on an orchestrator process.
func twoClusterSetup(t *testing.T, coresA, coresB int, fn func(m *MultiRuntime)) {
	t.Helper()
	e := sim.NewEnv()
	cfgA := quietConfig()
	cfgA.QueueWait = 0
	cfgB := quietConfig()
	cfgB.QueueWait = 0
	cfgB.Name = "second"
	clA := cluster.MustNew(e, cfgA, 1)
	clB := cluster.MustNew(e, cfgB, 2)
	plA, err := Launch(clA, Description{Cores: coresA})
	if err != nil {
		t.Fatal(err)
	}
	plB, err := Launch(clB, Description{Cores: coresB})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("orchestrator", func(p *sim.Proc) {
		m, err := NewMultiRuntime(p, plA, plB)
		if err != nil {
			t.Error(err)
			return
		}
		fn(m)
	})
	e.Run()
}

func TestMultiRuntimeAggregateCores(t *testing.T) {
	twoClusterSetup(t, 32, 16, func(m *MultiRuntime) {
		if m.Cores() != 48 {
			t.Errorf("aggregate cores %d, want 48", m.Cores())
		}
	})
}

func TestMultiRuntimeBalancesLoad(t *testing.T) {
	twoClusterSetup(t, 32, 32, func(m *MultiRuntime) {
		var hs []task.Handle
		for i := 0; i < 64; i++ {
			hs = append(hs, m.Submit(&task.Spec{Name: "u", Cores: 1, Duration: 10}))
		}
		m.AwaitAll(hs)
		routed := m.Routed()
		if routed[0]+routed[1] != 64 {
			t.Errorf("routed %v, want 64 total", routed)
		}
		// Capacity-proportional routing over equal pilots splits evenly.
		if routed[0] != 32 || routed[1] != 32 {
			t.Errorf("routing imbalanced: %v", routed)
		}
	})
}

func TestMultiRuntimeFasterThanSinglePilot(t *testing.T) {
	// 64 single-core tasks of 10 s: 32 cores alone need >= 20 s; adding
	// a second 32-core machine halves the makespan.
	var multiSpan float64
	twoClusterSetup(t, 32, 32, func(m *MultiRuntime) {
		start := m.Now()
		var hs []task.Handle
		for i := 0; i < 64; i++ {
			hs = append(hs, m.Submit(&task.Spec{Name: "u", Cores: 1, Duration: 10}))
		}
		m.AwaitAll(hs)
		multiSpan = m.Now() - start
	})
	if multiSpan >= 15 {
		t.Fatalf("multi-resource makespan %v, want ~one wave (<15 s)", multiSpan)
	}
}

func TestMultiRuntimeWideTaskRouting(t *testing.T) {
	// A task wider than the small pilot must go to the big one.
	twoClusterSetup(t, 64, 8, func(m *MultiRuntime) {
		h := m.Submit(&task.Spec{Name: "wide", Cores: 32, Duration: 5})
		m.Await(h)
		routed := m.Routed()
		if routed[0] != 1 || routed[1] != 0 {
			t.Errorf("wide task routed %v, want pilot 0 only", routed)
		}
	})
}

func TestMultiRuntimeTooWideEverywherePanics(t *testing.T) {
	twoClusterSetup(t, 8, 8, func(m *MultiRuntime) {
		defer func() {
			if recover() == nil {
				t.Error("task fitting no pilot did not panic")
			}
		}()
		m.Submit(&task.Spec{Name: "huge", Cores: 64, Duration: 1})
	})
}

func TestMultiRuntimeOverheadAndSleep(t *testing.T) {
	twoClusterSetup(t, 8, 8, func(m *MultiRuntime) {
		m.Overhead(2.5)
		if m.OverheadTotal != 2.5 {
			t.Errorf("overhead total %v", m.OverheadTotal)
		}
		m.SleepUntil(m.Now() + 5)
		if m.Now() < 7.4 {
			t.Errorf("clock %v after overhead+sleep, want >= 7.5", m.Now())
		}
	})
}

func TestMultiRuntimeRequiresPilots(t *testing.T) {
	e := sim.NewEnv()
	e.Go("p", func(p *sim.Proc) {
		if _, err := NewMultiRuntime(p); err == nil {
			t.Error("empty pilot list accepted")
		}
	})
	e.Run()
}

func TestMultiRuntimeRejectsForeignEnv(t *testing.T) {
	e1 := sim.NewEnv()
	e2 := sim.NewEnv()
	cl := cluster.MustNew(e2, quietConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 8})
	e1.Go("p", func(p *sim.Proc) {
		if _, err := NewMultiRuntime(p, pl); err == nil {
			t.Error("pilot from a foreign environment accepted")
		}
	})
	e1.Run()
	e2.Run()
}
