// Package pilot implements a pilot-job runtime in virtual time, modelled
// on RADICAL-Pilot (Merzky et al.), the runtime system RepEx builds on.
//
// A Pilot is a placeholder job: it waits in the machine's batch queue,
// then holds a block of cores for the workload. Compute units (tasks) are
// submitted to the pilot independently of the machine's batch system and
// go through the RADICAL-Pilot unit lifecycle:
//
//	NEW -> STAGING_IN -> SCHEDULING -> EXECUTING -> STAGING_OUT -> DONE/FAILED
//
// Three overhead sources are modelled explicitly because the paper
// measures them (Figure 5):
//
//   - staging through the shared filesystem (T_data),
//   - the agent's serialized task launcher, making launch overhead
//     proportional to the number of concurrent tasks (T_RP-over), and
//   - a wave-scheduling penalty for units that had to wait for cores
//     (the RP 0.35 "MPI task scheduling issue" visible in Figure 11b).
//
// Pilots are mortal: Description.Walltime bounds a pilot's life like a
// real batch job, and on expiry executing and queued units fail with
// ErrPilotExpired (wrapping task.ErrResourceLost) while the machine
// allocation is released. NewFailoverRuntime transparently launches a
// replacement pilot on the next submission after an expiry, and
// MultiRuntime aggregates pilots on several machines into one
// task.Runtime (optionally with per-pilot failover), which is how one
// REMD simulation spans multiple HPC resources simultaneously.
package pilot

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/task"
)

// ErrTaskFailed is the error recorded on a unit killed by fault injection.
var ErrTaskFailed = errors.New("pilot: task failed (injected fault)")

// ErrPilotExpired is the error recorded on units interrupted by their
// pilot's walltime expiring. It wraps task.ErrResourceLost so the
// scheduler recognises it as an infrastructure failure (resubmit without
// charging the replica's fault budget) rather than a task failure.
var ErrPilotExpired = fmt.Errorf("pilot: walltime expired: %w", task.ErrResourceLost)

// ErrPilotPreempted is the error recorded on units killed when a
// preemption notice's window runs out, and on submissions a draining
// pilot refuses. Like ErrPilotExpired it wraps task.ErrResourceLost.
var ErrPilotPreempted = fmt.Errorf("pilot: preempted: %w", task.ErrResourceLost)

// ErrNodeLost is the error recorded on units killed by a node failing
// inside a live allocation (LoseCores). The pilot itself survives,
// smaller; only the units on the lost cores fail. Wraps
// task.ErrResourceLost.
var ErrNodeLost = fmt.Errorf("pilot: node lost: %w", task.ErrResourceLost)

// ErrNoCapacity is the error recorded on units whose core request can
// never be satisfied by the pilot's *current* core count (after node
// losses or shrinking resizes). Wraps task.ErrResourceLost so the
// scheduler resubmits — under a multi-pilot runtime the resubmission
// routes to a pilot that still fits the task.
var ErrNoCapacity = fmt.Errorf("pilot: task wider than remaining cores: %w", task.ErrResourceLost)

// State is the compute-unit lifecycle state.
type State int

// Unit lifecycle states.
const (
	StateNew State = iota
	StateStagingIn
	StateScheduling
	StateExecuting
	StateStagingOut
	StateDone
	StateFailed
)

// String returns the RADICAL-Pilot style state name.
func (s State) String() string {
	switch s {
	case StateNew:
		return "NEW"
	case StateStagingIn:
		return "STAGING_IN"
	case StateScheduling:
		return "SCHEDULING"
	case StateExecuting:
		return "EXECUTING"
	case StateStagingOut:
		return "STAGING_OUT"
	case StateDone:
		return "DONE"
	case StateFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("STATE(%d)", int(s))
	}
}

// Description describes a pilot: the core count to hold and a walltime.
// A positive Walltime bounds the pilot's life: that many virtual seconds
// after the allocation becomes active, the pilot expires — executing and
// queued units fail with ErrPilotExpired and the machine allocation is
// released, exactly like a batch system killing an over-walltime job.
// Zero or negative means unbounded.
type Description struct {
	Cores    int
	Walltime float64
}

// Pilot is a live pilot job.
type Pilot struct {
	env      *sim.Env
	cl       *cluster.Cluster
	desc     Description
	cores    *sim.Resource
	launcher *sim.Resource
	active   *sim.Completion
	alloc    *cluster.Allocation
	// expiry fires when the pilot terminates (walltime, preemption
	// deadline or full node loss); nil for unbounded pilots that were
	// never preempted.
	expiry  *sim.Completion
	expired bool
	// expireErr records why the pilot ended (ErrPilotExpired,
	// ErrPilotPreempted or ErrNodeLost).
	expireErr error
	// curCores is the pilot's current core count: desc.Cores minus node
	// losses and shrinks, plus elastic grows.
	curCores int
	// draining is set by a preemption notice: no new submissions, units
	// already in flight run until the notice window closes.
	draining bool
	// running lists units currently holding cores, oldest first; node
	// loss kills from the tail (newest first).
	running []*Unit
	// events buffers resource lifecycle changes until a runtime drains
	// them (task.ResourceReporter).
	events []task.ResourceEvent

	unitsSubmitted int
	unitsDone      int
	unitsFailed    int
	unitsExpired   int
}

// Unit is a submitted compute unit; it implements task.Handle.
type Unit struct {
	spec  *task.Spec
	state State
	res   task.Result
	done  *sim.Completion
	// interrupt fires to kill this unit mid-flight, carrying the cause
	// (walltime expiry, preemption deadline, node loss). Awaiting it
	// with a timeout is the unit's execution sleep: for an unmolested
	// unit it schedules exactly the one timeout event a plain Sleep
	// would, so elastic pilots cost nothing on the happy path.
	interrupt *sim.Completion
	// onDone, when set, is invoked by the unit's lifecycle process right
	// after the unit reaches DONE or FAILED; the runtimes use it to feed
	// their completion streams (one callback per completion: O(1)).
	onDone func(*Unit)
}

// Done reports whether the unit reached DONE or FAILED.
func (u *Unit) Done() bool { return u.done.Done() }

// Result returns the unit's record; valid once Done is true.
func (u *Unit) Result() task.Result { return u.res }

// State returns the unit's current lifecycle state.
func (u *Unit) State() State { return u.state }

// notifyDone invokes the completion-stream callback, if any.
func (u *Unit) notifyDone() {
	if u.onDone != nil {
		u.onDone(u)
	}
}

// Launch submits a pilot to the cluster's batch queue and returns
// immediately; the pilot becomes active after the queue wait. An error is
// returned only for impossible descriptions (more cores than the machine
// has).
func Launch(cl *cluster.Cluster, desc Description) (*Pilot, error) {
	if desc.Cores <= 0 {
		return nil, fmt.Errorf("pilot: core count must be positive, got %d", desc.Cores)
	}
	if desc.Cores > cl.TotalCores() {
		return nil, fmt.Errorf("pilot: %d cores exceed machine %s (%d cores)",
			desc.Cores, cl.Config().Name, cl.TotalCores())
	}
	env := cl.Env()
	pl := &Pilot{
		env:      env,
		cl:       cl,
		desc:     desc,
		curCores: desc.Cores,
		cores:    sim.NewResource(env, desc.Cores),
		launcher: sim.NewResource(env, 1),
		active:   sim.NewCompletion(env),
		expiry:   sim.NewCompletion(env),
	}
	env.Go(fmt.Sprintf("pilot-%s", cl.Config().Name), func(p *sim.Proc) {
		alloc, err := cl.Allocate(p, desc.Cores)
		if err != nil {
			pl.active.Complete(err)
			return
		}
		pl.alloc = alloc
		pl.record(task.ResourceLaunch, desc.Cores, 0)
		pl.active.Complete(nil)
		if desc.Walltime > 0 {
			// Walltime watchdog: the batch system reclaims the
			// allocation that many seconds after it became active —
			// unless preemption or a full node loss terminated the
			// pilot first (expiry fires, the wait returns early).
			if !pl.expiry.AwaitTimeout(p, desc.Walltime) {
				pl.expire(ErrPilotExpired)
			}
		}
	})
	return pl, nil
}

// record buffers one resource lifecycle event at the current time.
func (pl *Pilot) record(kind string, delta int, notice float64) {
	pl.events = append(pl.events, task.ResourceEvent{
		At:     pl.env.Now(),
		Kind:   kind,
		Cores:  pl.curCores,
		Delta:  delta,
		Notice: notice,
	})
}

// TakeEvents returns and clears the buffered resource lifecycle events
// in occurrence order. The Pilot field is zero; the owning runtime
// stamps its routing slot or failover generation.
func (pl *Pilot) TakeEvents() []task.ResourceEvent {
	ev := pl.events
	pl.events = nil
	return ev
}

// expire terminates the pilot with the given cause: executing units are
// interrupted, the machine allocation is released and future
// submissions fail fast. Idempotent — the first cause wins.
func (pl *Pilot) expire(err error) {
	if pl.expired {
		return
	}
	pl.expired = true
	pl.expireErr = err
	if pl.expiry != nil && !pl.expiry.Done() {
		pl.expiry.Complete(err)
	}
	for _, u := range pl.running {
		if !u.interrupt.Done() {
			u.interrupt.Complete(err)
		}
	}
	if pl.alloc != nil {
		pl.alloc.Release()
	}
	delta := -pl.curCores
	pl.curCores = 0
	pl.record(task.ResourceExpire, delta, 0)
}

// LoseCores models a node failure inside the live allocation: the pilot
// shrinks by n cores instead of dying. Units on the lost cores (newest
// first) fail with ErrNodeLost; everything else keeps running on the
// smaller pilot. Losing every remaining core terminates the pilot.
// Returns the cores actually removed (0 before activation or after
// expiry).
func (pl *Pilot) LoseCores(n int) int {
	if n <= 0 || pl.expired || pl.alloc == nil {
		return 0
	}
	if n >= pl.curCores {
		// Losing every remaining core: the expire event carries the drop.
		n = pl.curCores
		pl.expire(ErrNodeLost)
		return n
	}
	pl.curCores -= n
	pl.cores.SetCapacity(pl.curCores)
	// Kill newest units until the held cores fit the shrunk capacity.
	// InUse only drops when the interrupted unit processes wake and
	// release, so track the excess locally.
	excess := pl.cores.InUse() - pl.curCores
	for i := len(pl.running) - 1; i >= 0 && excess > 0; i-- {
		u := pl.running[i]
		if u.interrupt.Done() {
			continue
		}
		u.interrupt.Complete(ErrNodeLost)
		excess -= u.spec.Cores
	}
	pl.alloc.ReleasePartial(n)
	pl.record(task.ResourceShrink, -n, 0)
	return n
}

// Preempt delivers a spot-style preemption notice: the pilot stops
// accepting submissions immediately (Draining), lets in-flight units
// run for up to notice virtual seconds, then expires with
// ErrPilotPreempted — killing whatever did not finish in the window. A
// non-positive notice expires the pilot immediately. No-op before
// activation, after expiry, or when a notice is already pending.
func (pl *Pilot) Preempt(notice float64) {
	if pl.expired || pl.draining || pl.alloc == nil {
		return
	}
	pl.draining = true
	pl.record(task.ResourcePreempt, 0, notice)
	if notice <= 0 {
		pl.expire(ErrPilotPreempted)
		return
	}
	pl.env.Go(fmt.Sprintf("pilot-%s-preempt", pl.cl.Config().Name), func(p *sim.Proc) {
		// Race the notice window against other terminations (walltime);
		// expire is idempotent, so whichever fires first wins.
		if !pl.expiry.AwaitTimeout(p, notice) {
			pl.expire(ErrPilotPreempted)
		}
	})
}

// Resize changes the pilot's core count by delta. Growing acquires
// cores from the machine without queueing (failing if none are free);
// shrinking is graceful — capacity drops and over-committed cores drain
// as units finish, no unit is killed — and is clamped to keep at least
// one core (use LoseCores or Preempt to end a pilot). Returns the
// signed change actually applied.
func (pl *Pilot) Resize(delta int) int {
	if delta == 0 || pl.expired || pl.alloc == nil {
		return 0
	}
	if delta > 0 {
		if !pl.alloc.Grow(delta) {
			return 0
		}
		pl.curCores += delta
		pl.cores.SetCapacity(pl.curCores)
		pl.record(task.ResourceResize, delta, 0)
		return delta
	}
	n := -delta
	if n >= pl.curCores {
		n = pl.curCores - 1
	}
	if n <= 0 {
		return 0
	}
	pl.curCores -= n
	pl.cores.SetCapacity(pl.curCores)
	pl.alloc.ReleasePartial(n)
	pl.record(task.ResourceResize, -n, 0)
	return -n
}

// Draining reports whether a preemption notice is pending: the pilot
// still runs in-flight units but refuses new submissions.
func (pl *Pilot) Draining() bool { return pl.draining && !pl.expired }

// Active returns the completion fired when the pilot's allocation becomes
// active (after the batch queue wait).
func (pl *Pilot) Active() *sim.Completion { return pl.active }

// Cores returns the pilot's *current* core count: the launched size
// minus node losses and shrinks, plus elastic grows (0 once expired).
// Description().Cores keeps the nominal launched size.
func (pl *Pilot) Cores() int { return pl.curCores }

// CoresInUse returns cores currently held by executing units.
func (pl *Pilot) CoresInUse() int { return pl.cores.InUse() }

// BusyCoreSeconds returns the integral of cores held by units over time,
// the numerator of the utilization metric (Eq. 4).
func (pl *Pilot) BusyCoreSeconds() float64 { return pl.cores.BusyIntegral() }

// Cancel releases the pilot's machine allocation.
func (pl *Pilot) Cancel() {
	if pl.alloc != nil {
		pl.alloc.Release()
	}
}

// Expired reports whether the pilot's walltime has run out.
func (pl *Pilot) Expired() bool { return pl.expired }

// Walltime returns the pilot's walltime bound (<= 0 means unbounded).
func (pl *Pilot) Walltime() float64 { return pl.desc.Walltime }

// Description returns the pilot's description.
func (pl *Pilot) Description() Description { return pl.desc }

// Cluster returns the machine the pilot runs on.
func (pl *Pilot) Cluster() *cluster.Cluster { return pl.cl }

// Counters reports unit accounting.
func (pl *Pilot) Counters() (submitted, done, failed int) {
	return pl.unitsSubmitted, pl.unitsDone, pl.unitsFailed
}

// UnitsExpired reports how many units the walltime expiry killed.
func (pl *Pilot) UnitsExpired() int { return pl.unitsExpired }

// SubmitUnit schedules a compute unit on the pilot. It returns
// immediately; the unit runs through its lifecycle as resources permit.
func (pl *Pilot) SubmitUnit(spec *task.Spec) *Unit {
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("pilot: invalid task spec: %v", err))
	}
	if spec.Cores > pl.desc.Cores {
		panic(fmt.Sprintf("pilot: task %q wants %d cores, pilot has %d",
			spec.Name, spec.Cores, pl.desc.Cores))
	}
	u := &Unit{
		spec:      spec,
		state:     StateNew,
		done:      sim.NewCompletion(pl.env),
		interrupt: sim.NewCompletion(pl.env),
	}
	u.res.Spec = spec
	pl.unitsSubmitted++
	pl.env.Go("unit:"+spec.Name, func(p *sim.Proc) { pl.runUnit(p, u) })
	return u
}

// failUnit completes a unit as FAILED with the given error.
func (pl *Pilot) failUnit(p *sim.Proc, u *Unit, err error) {
	u.state = StateFailed
	u.res.Err = err
	u.res.Finished = p.Now()
	pl.unitsFailed++
	if errors.Is(err, task.ErrResourceLost) {
		pl.unitsExpired++
	}
	u.done.Complete(err)
	u.notifyDone()
}

// sleepOrInterrupt sleeps d virtual seconds on the unit's own
// interrupt latch, returning the kill cause if the unit is interrupted
// first (walltime, preemption deadline or node loss) and nil if the
// sleep completes.
func (pl *Pilot) sleepOrInterrupt(p *sim.Proc, u *Unit, d float64) error {
	if u.interrupt.Done() {
		return u.interrupt.Err()
	}
	if u.interrupt.AwaitTimeout(p, d) {
		return u.interrupt.Err()
	}
	return nil
}

// killErr returns the error a unit holding cores should fail with right
// now: its own interrupt's cause, the pilot's termination cause, or nil.
func (pl *Pilot) killErr(u *Unit) error {
	if u.interrupt.Done() {
		return u.interrupt.Err()
	}
	if pl.expired {
		return pl.expireErr
	}
	return nil
}

// releaseUnit returns the unit's cores and removes it from the running
// list (idempotent on the list: expire/LoseCores may already have
// dropped interest in it).
func (pl *Pilot) releaseUnit(u *Unit) {
	pl.cores.Release(u.spec.Cores)
	for i, r := range pl.running {
		if r == u {
			pl.running = append(pl.running[:i], pl.running[i+1:]...)
			break
		}
	}
}

// runUnit drives one unit through its lifecycle on process p.
func (pl *Pilot) runUnit(p *sim.Proc, u *Unit) {
	cfg := pl.cl.Config()
	u.res.Submitted = p.Now()

	// The unit cannot progress before the pilot is active.
	if err := pl.active.Await(p); err != nil {
		pl.failUnit(p, u, err)
		return
	}
	if pl.expired {
		pl.failUnit(p, u, pl.expireErr)
		return
	}
	if pl.draining {
		// A pilot under preemption notice accepts no new work.
		pl.failUnit(p, u, ErrPilotPreempted)
		return
	}

	// STAGING_IN: input files through the shared filesystem.
	u.state = StateStagingIn
	u.res.StageIn = pl.cl.StageFiles(p, u.spec.InFiles, u.spec.InBytes)

	// SCHEDULING: wait for cores within the pilot. A unit that was still
	// queued when the pilot terminated dies with it (other units'
	// failures release their cores, so queued waiters always wake); a
	// unit wider than the post-shrink capacity is aborted rather than
	// left queued forever.
	u.state = StateScheduling
	t0 := p.Now()
	if !pl.cores.AcquireAbortable(p, u.spec.Cores) {
		u.res.CoreWait = p.Now() - t0
		err := ErrNoCapacity
		if pl.expired {
			err = pl.expireErr
		}
		pl.failUnit(p, u, err)
		return
	}
	u.res.CoreWait = p.Now() - t0
	if pl.expired {
		pl.cores.Release(u.spec.Cores)
		pl.failUnit(p, u, pl.expireErr)
		return
	}
	pl.running = append(pl.running, u)

	// Launch: serialized through the agent launcher, plus fixed latency.
	// Units that had to wait for cores (second and later waves in
	// Execution Mode II) pay the wave penalty *inside* the serialized
	// launcher, modelling RADICAL-Pilot 0.35's MPI task re-scheduling
	// issue: its wall-clock cost grows with the number of re-scheduled
	// tasks, which is what produces the paper's Figure 11b efficiency
	// dip in Mode II and the uptick once cores = replicas.
	t1 := p.Now()
	gap := cfg.LaunchGap
	if u.res.CoreWait > 1e-9 && u.spec.Kind == task.MD {
		// Only the main MD workload is affected: the issue was with
		// re-scheduling the wide MPI task waves of the simulation
		// phase, not the short bookkeeping tasks.
		gap += cfg.WavePenalty
	}
	pl.launcher.Acquire(p, 1)
	p.Sleep(gap)
	pl.launcher.Release(1)
	p.Sleep(cfg.LaunchLatency)
	u.res.Launch = p.Now() - t1
	if err := pl.killErr(u); err != nil {
		pl.releaseUnit(u)
		pl.failUnit(p, u, err)
		return
	}

	// EXECUTING.
	u.state = StateExecuting
	d := pl.cl.ScaleDuration(u.spec.Duration)
	failed := u.spec.CanFail && pl.cl.TaskFails()
	if failed {
		// Fail partway through the run (unless the pilot's termination
		// or a node loss kills the unit first).
		ierr := pl.sleepOrInterrupt(p, u, d/2)
		u.res.Exec = p.Now() - t1 - u.res.Launch
		pl.releaseUnit(u)
		err := ErrTaskFailed
		if ierr != nil {
			err = ierr
		}
		pl.failUnit(p, u, err)
		return
	}
	t2 := p.Now()
	ierr := pl.sleepOrInterrupt(p, u, d)
	u.res.Exec = p.Now() - t2
	pl.releaseUnit(u)
	if ierr != nil {
		pl.failUnit(p, u, ierr)
		return
	}

	// STAGING_OUT.
	u.state = StateStagingOut
	u.res.StageOut = pl.cl.StageFiles(p, u.spec.OutFiles, u.spec.OutBytes)

	u.state = StateDone
	u.res.Finished = p.Now()
	pl.unitsDone++
	u.done.Complete(nil)
	u.notifyDone()
}

// ---------------------------------------------------------------------------
// Runtime adapter: task.Runtime over a pilot, bound to an orchestrator
// process.

// unitStream is the completion-stream state shared by the pilot
// runtimes: completed watched units queue here (in virtual-time
// completion order) until the orchestrator drains them with AwaitNext.
type unitStream struct {
	proc     *sim.Proc
	arrivals *sim.Signal
	queue    []*Unit
}

func newUnitStream(proc *sim.Proc) *unitStream {
	return &unitStream{proc: proc, arrivals: sim.NewSignal(proc.Env())}
}

// watch registers a unit for stream delivery on completion, composing
// around any accounting callback the runtime installed at submission.
func (s *unitStream) watch(u *Unit) {
	if prev := u.onDone; prev != nil {
		u.onDone = func(u *Unit) {
			prev(u)
			s.enqueue(u)
		}
		return
	}
	u.onDone = s.enqueue
}

func (s *unitStream) enqueue(u *Unit) {
	s.queue = append(s.queue, u)
	s.arrivals.Broadcast()
}

// awaitNext blocks the orchestrator until the queue is non-empty or the
// absolute deadline passes, then drains it.
func (s *unitStream) awaitNext(deadline float64) []task.Handle {
	for len(s.queue) == 0 {
		if math.IsInf(deadline, 1) {
			s.arrivals.Wait(s.proc)
			continue
		}
		remain := deadline - s.proc.Now()
		if remain <= 0 {
			return nil
		}
		s.arrivals.WaitTimeout(s.proc, remain)
	}
	out := make([]task.Handle, len(s.queue))
	for i, u := range s.queue {
		out[i] = u
	}
	s.queue = s.queue[:0]
	return out
}

// Runtime adapts a Pilot to the task.Runtime interface. All methods must
// be called from the bound orchestrator process, mirroring RepEx's
// single-threaded execution-management module.
//
// A runtime built with NewFailoverRuntime additionally survives pilot
// walltime expiry: the first submission after the current pilot expires
// transparently launches a replacement pilot from the same description
// (paying the batch-queue wait again), so interrupted segments
// resubmitted by the scheduler land on fresh cores instead of failing
// forever against a dead allocation.
type Runtime struct {
	pl     *Pilot
	proc   *sim.Proc
	stream *unitStream
	// OverheadTotal accumulates client-side overhead charged via
	// Overhead, for reporting T_RepEx-over.
	OverheadTotal float64

	// relaunch, when set, replaces an expired pilot on demand.
	relaunch   func() (*Pilot, error)
	relaunched int
	// owned tracks every pilot incarnation with its failover generation,
	// so resource events from retired pilots (the expire after a
	// preemption drain) are still delivered by DrainResourceEvents.
	owned []ownedPilot
}

// ownedPilot pairs a pilot incarnation with the label its resource
// events are stamped with: the failover generation under Runtime, the
// routing slot under MultiRuntime.
type ownedPilot struct {
	pl    *Pilot
	label int
}

// drainOwned collects and clears buffered resource events across pilot
// incarnations/slots, stamping each event with its pilot's label and
// merging into occurrence order. Fully-drained expired pilots are
// dropped from the list so a long run cannot accumulate dead pilots.
func drainOwned(owned []ownedPilot) ([]task.ResourceEvent, []ownedPilot) {
	var out []task.ResourceEvent
	kept := owned[:0]
	for _, o := range owned {
		ev := o.pl.TakeEvents()
		for i := range ev {
			ev[i].Pilot = o.label
		}
		out = append(out, ev...)
		if !o.pl.Expired() {
			kept = append(kept, o)
		}
	}
	sortResourceEvents(out)
	return out, kept
}

// sortResourceEvents stable-sorts by event time (insertion sort: the
// per-drain batches are tiny and already near-sorted).
func sortResourceEvents(ev []task.ResourceEvent) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].At < ev[j-1].At; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// NewRuntime binds a pilot to an orchestrator process.
func NewRuntime(pl *Pilot, proc *sim.Proc) *Runtime {
	return &Runtime{
		pl:     pl,
		proc:   proc,
		stream: newUnitStream(proc),
		owned:  []ownedPilot{{pl: pl, label: 0}},
	}
}

// NewFailoverRuntime launches a pilot from desc on cl and binds it to
// proc; when that pilot's walltime expires, the next submission launches
// a replacement pilot with the same description (pilot-level failover).
func NewFailoverRuntime(cl *cluster.Cluster, desc Description, proc *sim.Proc) (*Runtime, error) {
	pl, err := Launch(cl, desc)
	if err != nil {
		return nil, err
	}
	r := NewRuntime(pl, proc)
	r.relaunch = func() (*Pilot, error) { return Launch(cl, desc) }
	return r, nil
}

// Pilot returns the underlying (current) pilot.
func (r *Runtime) Pilot() *Pilot { return r.pl }

// Relaunched reports how many replacement pilots failover has launched.
func (r *Runtime) Relaunched() int { return r.relaunched }

// ensurePilot replaces an expired or draining pilot before a submission
// when failover is configured — a preemption notice triggers the
// replacement launch immediately, overlapping the new batch-queue wait
// with the old pilot's drain window. If the replacement launch fails
// the old pilot is kept: submissions then fail fast and the scheduler's
// resubmission cap converts that into replica drops.
func (r *Runtime) ensurePilot() {
	if r.relaunch == nil || !(r.pl.Expired() || r.pl.Draining()) {
		return
	}
	pl, err := r.relaunch()
	if err != nil {
		return
	}
	r.pl = pl
	r.relaunched++
	r.owned = append(r.owned, ownedPilot{pl: pl, label: r.relaunched})
}

// DrainResourceEvents returns and clears buffered pilot lifecycle
// events across every incarnation, stamped with the failover
// generation (task.ResourceReporter).
func (r *Runtime) DrainResourceEvents() []task.ResourceEvent {
	ev, kept := drainOwned(r.owned)
	r.owned = kept
	return ev
}

// Now returns the virtual time.
func (r *Runtime) Now() float64 { return r.proc.Now() }

// Cores returns the pilot's core count.
func (r *Runtime) Cores() int { return r.pl.Cores() }

// Submit schedules a unit (on a fresh pilot if the current one expired
// and failover is configured). The unit's result is stamped with the
// failover generation so traces can show which pilot incarnation ran
// it; the write is race-free because spawned unit processes only start
// once the orchestrator yields to the virtual-time kernel.
func (r *Runtime) Submit(s *task.Spec) task.Handle {
	r.ensurePilot()
	u := r.pl.SubmitUnit(s)
	u.res.Pilot = r.relaunched
	return u
}

// SubmitWatched schedules a unit and registers it on the completion
// stream for delivery by AwaitNext.
func (r *Runtime) SubmitWatched(s *task.Spec) task.Handle {
	r.ensurePilot()
	u := r.pl.SubmitUnit(s)
	u.res.Pilot = r.relaunched
	r.stream.watch(u)
	return u
}

// Await blocks the orchestrator until the unit finishes.
func (r *Runtime) Await(h task.Handle) task.Result {
	u := h.(*Unit)
	u.done.Await(r.proc)
	return u.res
}

// AwaitAll blocks until all units finish.
func (r *Runtime) AwaitAll(hs []task.Handle) []task.Result {
	res := make([]task.Result, len(hs))
	for i, h := range hs {
		res[i] = r.Await(h)
	}
	return res
}

// AwaitNext blocks until a watched unit completion is pending delivery
// or the deadline passes, draining the stream in completion order.
func (r *Runtime) AwaitNext(deadline float64) []task.Handle {
	return r.stream.awaitNext(deadline)
}

// SleepUntil blocks the orchestrator until virtual time t.
func (r *Runtime) SleepUntil(t float64) {
	if d := t - r.proc.Now(); d > 0 {
		r.proc.Sleep(d)
	}
}

// Overhead charges client-side (RepEx) overhead to the virtual clock.
func (r *Runtime) Overhead(d float64) {
	if d <= 0 {
		return
	}
	r.OverheadTotal += d
	r.proc.Sleep(d)
}

var (
	_ task.Runtime          = (*Runtime)(nil)
	_ task.ResourceReporter = (*Runtime)(nil)
)
