// Package pilot implements a pilot-job runtime in virtual time, modelled
// on RADICAL-Pilot (Merzky et al.), the runtime system RepEx builds on.
//
// A Pilot is a placeholder job: it waits in the machine's batch queue,
// then holds a block of cores for the workload. Compute units (tasks) are
// submitted to the pilot independently of the machine's batch system and
// go through the RADICAL-Pilot unit lifecycle:
//
//	NEW -> STAGING_IN -> SCHEDULING -> EXECUTING -> STAGING_OUT -> DONE/FAILED
//
// Three overhead sources are modelled explicitly because the paper
// measures them (Figure 5):
//
//   - staging through the shared filesystem (T_data),
//   - the agent's serialized task launcher, making launch overhead
//     proportional to the number of concurrent tasks (T_RP-over), and
//   - a wave-scheduling penalty for units that had to wait for cores
//     (the RP 0.35 "MPI task scheduling issue" visible in Figure 11b).
//
// Pilots are mortal: Description.Walltime bounds a pilot's life like a
// real batch job, and on expiry executing and queued units fail with
// ErrPilotExpired (wrapping task.ErrResourceLost) while the machine
// allocation is released. NewFailoverRuntime transparently launches a
// replacement pilot on the next submission after an expiry, and
// MultiRuntime aggregates pilots on several machines into one
// task.Runtime (optionally with per-pilot failover), which is how one
// REMD simulation spans multiple HPC resources simultaneously.
package pilot

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/task"
)

// ErrTaskFailed is the error recorded on a unit killed by fault injection.
var ErrTaskFailed = errors.New("pilot: task failed (injected fault)")

// ErrPilotExpired is the error recorded on units interrupted by their
// pilot's walltime expiring. It wraps task.ErrResourceLost so the
// scheduler recognises it as an infrastructure failure (resubmit without
// charging the replica's fault budget) rather than a task failure.
var ErrPilotExpired = fmt.Errorf("pilot: walltime expired: %w", task.ErrResourceLost)

// State is the compute-unit lifecycle state.
type State int

// Unit lifecycle states.
const (
	StateNew State = iota
	StateStagingIn
	StateScheduling
	StateExecuting
	StateStagingOut
	StateDone
	StateFailed
)

// String returns the RADICAL-Pilot style state name.
func (s State) String() string {
	switch s {
	case StateNew:
		return "NEW"
	case StateStagingIn:
		return "STAGING_IN"
	case StateScheduling:
		return "SCHEDULING"
	case StateExecuting:
		return "EXECUTING"
	case StateStagingOut:
		return "STAGING_OUT"
	case StateDone:
		return "DONE"
	case StateFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("STATE(%d)", int(s))
	}
}

// Description describes a pilot: the core count to hold and a walltime.
// A positive Walltime bounds the pilot's life: that many virtual seconds
// after the allocation becomes active, the pilot expires — executing and
// queued units fail with ErrPilotExpired and the machine allocation is
// released, exactly like a batch system killing an over-walltime job.
// Zero or negative means unbounded.
type Description struct {
	Cores    int
	Walltime float64
}

// Pilot is a live pilot job.
type Pilot struct {
	env      *sim.Env
	cl       *cluster.Cluster
	desc     Description
	cores    *sim.Resource
	launcher *sim.Resource
	active   *sim.Completion
	alloc    *cluster.Allocation
	// expiry fires when the walltime runs out; nil for unbounded pilots.
	expiry  *sim.Completion
	expired bool

	unitsSubmitted int
	unitsDone      int
	unitsFailed    int
	unitsExpired   int
}

// Unit is a submitted compute unit; it implements task.Handle.
type Unit struct {
	spec  *task.Spec
	state State
	res   task.Result
	done  *sim.Completion
	// onDone, when set, is invoked by the unit's lifecycle process right
	// after the unit reaches DONE or FAILED; the runtimes use it to feed
	// their completion streams (one callback per completion: O(1)).
	onDone func(*Unit)
}

// Done reports whether the unit reached DONE or FAILED.
func (u *Unit) Done() bool { return u.done.Done() }

// Result returns the unit's record; valid once Done is true.
func (u *Unit) Result() task.Result { return u.res }

// State returns the unit's current lifecycle state.
func (u *Unit) State() State { return u.state }

// notifyDone invokes the completion-stream callback, if any.
func (u *Unit) notifyDone() {
	if u.onDone != nil {
		u.onDone(u)
	}
}

// Launch submits a pilot to the cluster's batch queue and returns
// immediately; the pilot becomes active after the queue wait. An error is
// returned only for impossible descriptions (more cores than the machine
// has).
func Launch(cl *cluster.Cluster, desc Description) (*Pilot, error) {
	if desc.Cores <= 0 {
		return nil, fmt.Errorf("pilot: core count must be positive, got %d", desc.Cores)
	}
	if desc.Cores > cl.TotalCores() {
		return nil, fmt.Errorf("pilot: %d cores exceed machine %s (%d cores)",
			desc.Cores, cl.Config().Name, cl.TotalCores())
	}
	env := cl.Env()
	pl := &Pilot{
		env:      env,
		cl:       cl,
		desc:     desc,
		cores:    sim.NewResource(env, desc.Cores),
		launcher: sim.NewResource(env, 1),
		active:   sim.NewCompletion(env),
	}
	if desc.Walltime > 0 {
		pl.expiry = sim.NewCompletion(env)
	}
	env.Go(fmt.Sprintf("pilot-%s", cl.Config().Name), func(p *sim.Proc) {
		alloc, err := cl.Allocate(p, desc.Cores)
		if err != nil {
			pl.active.Complete(err)
			return
		}
		pl.alloc = alloc
		pl.active.Complete(nil)
		if pl.expiry != nil {
			// Walltime watchdog: the batch system reclaims the
			// allocation that many seconds after it became active.
			p.Sleep(desc.Walltime)
			pl.expired = true
			pl.expiry.Complete(ErrPilotExpired)
			pl.alloc.Release()
		}
	})
	return pl, nil
}

// Active returns the completion fired when the pilot's allocation becomes
// active (after the batch queue wait).
func (pl *Pilot) Active() *sim.Completion { return pl.active }

// Cores returns the pilot's core count.
func (pl *Pilot) Cores() int { return pl.desc.Cores }

// CoresInUse returns cores currently held by executing units.
func (pl *Pilot) CoresInUse() int { return pl.cores.InUse() }

// BusyCoreSeconds returns the integral of cores held by units over time,
// the numerator of the utilization metric (Eq. 4).
func (pl *Pilot) BusyCoreSeconds() float64 { return pl.cores.BusyIntegral() }

// Cancel releases the pilot's machine allocation.
func (pl *Pilot) Cancel() {
	if pl.alloc != nil {
		pl.alloc.Release()
	}
}

// Expired reports whether the pilot's walltime has run out.
func (pl *Pilot) Expired() bool { return pl.expired }

// Walltime returns the pilot's walltime bound (<= 0 means unbounded).
func (pl *Pilot) Walltime() float64 { return pl.desc.Walltime }

// Description returns the pilot's description.
func (pl *Pilot) Description() Description { return pl.desc }

// Cluster returns the machine the pilot runs on.
func (pl *Pilot) Cluster() *cluster.Cluster { return pl.cl }

// Counters reports unit accounting.
func (pl *Pilot) Counters() (submitted, done, failed int) {
	return pl.unitsSubmitted, pl.unitsDone, pl.unitsFailed
}

// UnitsExpired reports how many units the walltime expiry killed.
func (pl *Pilot) UnitsExpired() int { return pl.unitsExpired }

// SubmitUnit schedules a compute unit on the pilot. It returns
// immediately; the unit runs through its lifecycle as resources permit.
func (pl *Pilot) SubmitUnit(spec *task.Spec) *Unit {
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("pilot: invalid task spec: %v", err))
	}
	if spec.Cores > pl.desc.Cores {
		panic(fmt.Sprintf("pilot: task %q wants %d cores, pilot has %d",
			spec.Name, spec.Cores, pl.desc.Cores))
	}
	u := &Unit{spec: spec, state: StateNew, done: sim.NewCompletion(pl.env)}
	u.res.Spec = spec
	pl.unitsSubmitted++
	pl.env.Go("unit:"+spec.Name, func(p *sim.Proc) { pl.runUnit(p, u) })
	return u
}

// failUnit completes a unit as FAILED with the given error.
func (pl *Pilot) failUnit(p *sim.Proc, u *Unit, err error) {
	u.state = StateFailed
	u.res.Err = err
	u.res.Finished = p.Now()
	pl.unitsFailed++
	if errors.Is(err, task.ErrResourceLost) {
		pl.unitsExpired++
	}
	u.done.Complete(err)
	u.notifyDone()
}

// sleepOrExpire sleeps d virtual seconds, returning true early if the
// pilot's walltime expires first (the batch system kills the unit
// mid-execution).
func (pl *Pilot) sleepOrExpire(p *sim.Proc, d float64) bool {
	if pl.expiry == nil {
		p.Sleep(d)
		return false
	}
	if pl.expired {
		return true
	}
	return pl.expiry.AwaitTimeout(p, d)
}

// runUnit drives one unit through its lifecycle on process p.
func (pl *Pilot) runUnit(p *sim.Proc, u *Unit) {
	cfg := pl.cl.Config()
	u.res.Submitted = p.Now()

	// The unit cannot progress before the pilot is active.
	if err := pl.active.Await(p); err != nil {
		pl.failUnit(p, u, err)
		return
	}
	if pl.expired {
		pl.failUnit(p, u, ErrPilotExpired)
		return
	}

	// STAGING_IN: input files through the shared filesystem.
	u.state = StateStagingIn
	u.res.StageIn = pl.cl.StageFiles(p, u.spec.InFiles, u.spec.InBytes)

	// SCHEDULING: wait for cores within the pilot. A unit that was still
	// queued when the walltime ran out dies with the pilot (other units'
	// failures release their cores, so queued waiters always wake).
	u.state = StateScheduling
	t0 := p.Now()
	pl.cores.Acquire(p, u.spec.Cores)
	u.res.CoreWait = p.Now() - t0
	if pl.expired {
		pl.cores.Release(u.spec.Cores)
		pl.failUnit(p, u, ErrPilotExpired)
		return
	}

	// Launch: serialized through the agent launcher, plus fixed latency.
	// Units that had to wait for cores (second and later waves in
	// Execution Mode II) pay the wave penalty *inside* the serialized
	// launcher, modelling RADICAL-Pilot 0.35's MPI task re-scheduling
	// issue: its wall-clock cost grows with the number of re-scheduled
	// tasks, which is what produces the paper's Figure 11b efficiency
	// dip in Mode II and the uptick once cores = replicas.
	t1 := p.Now()
	gap := cfg.LaunchGap
	if u.res.CoreWait > 1e-9 && u.spec.Kind == task.MD {
		// Only the main MD workload is affected: the issue was with
		// re-scheduling the wide MPI task waves of the simulation
		// phase, not the short bookkeeping tasks.
		gap += cfg.WavePenalty
	}
	pl.launcher.Acquire(p, 1)
	p.Sleep(gap)
	pl.launcher.Release(1)
	p.Sleep(cfg.LaunchLatency)
	u.res.Launch = p.Now() - t1
	if pl.expired {
		pl.cores.Release(u.spec.Cores)
		pl.failUnit(p, u, ErrPilotExpired)
		return
	}

	// EXECUTING.
	u.state = StateExecuting
	d := pl.cl.ScaleDuration(u.spec.Duration)
	failed := u.spec.CanFail && pl.cl.TaskFails()
	if failed {
		// Fail partway through the run (unless the walltime kills the
		// unit first).
		expired := pl.sleepOrExpire(p, d/2)
		u.res.Exec = p.Now() - t1 - u.res.Launch
		pl.cores.Release(u.spec.Cores)
		err := ErrTaskFailed
		if expired {
			err = ErrPilotExpired
		}
		pl.failUnit(p, u, err)
		return
	}
	t2 := p.Now()
	expired := pl.sleepOrExpire(p, d)
	u.res.Exec = p.Now() - t2
	if expired {
		pl.cores.Release(u.spec.Cores)
		pl.failUnit(p, u, ErrPilotExpired)
		return
	}
	pl.cores.Release(u.spec.Cores)

	// STAGING_OUT.
	u.state = StateStagingOut
	u.res.StageOut = pl.cl.StageFiles(p, u.spec.OutFiles, u.spec.OutBytes)

	u.state = StateDone
	u.res.Finished = p.Now()
	pl.unitsDone++
	u.done.Complete(nil)
	u.notifyDone()
}

// ---------------------------------------------------------------------------
// Runtime adapter: task.Runtime over a pilot, bound to an orchestrator
// process.

// unitStream is the completion-stream state shared by the pilot
// runtimes: completed watched units queue here (in virtual-time
// completion order) until the orchestrator drains them with AwaitNext.
type unitStream struct {
	proc     *sim.Proc
	arrivals *sim.Signal
	queue    []*Unit
}

func newUnitStream(proc *sim.Proc) *unitStream {
	return &unitStream{proc: proc, arrivals: sim.NewSignal(proc.Env())}
}

// watch registers a unit for stream delivery on completion.
func (s *unitStream) watch(u *Unit) {
	u.onDone = s.enqueue
}

func (s *unitStream) enqueue(u *Unit) {
	s.queue = append(s.queue, u)
	s.arrivals.Broadcast()
}

// awaitNext blocks the orchestrator until the queue is non-empty or the
// absolute deadline passes, then drains it.
func (s *unitStream) awaitNext(deadline float64) []task.Handle {
	for len(s.queue) == 0 {
		if math.IsInf(deadline, 1) {
			s.arrivals.Wait(s.proc)
			continue
		}
		remain := deadline - s.proc.Now()
		if remain <= 0 {
			return nil
		}
		s.arrivals.WaitTimeout(s.proc, remain)
	}
	out := make([]task.Handle, len(s.queue))
	for i, u := range s.queue {
		out[i] = u
	}
	s.queue = s.queue[:0]
	return out
}

// Runtime adapts a Pilot to the task.Runtime interface. All methods must
// be called from the bound orchestrator process, mirroring RepEx's
// single-threaded execution-management module.
//
// A runtime built with NewFailoverRuntime additionally survives pilot
// walltime expiry: the first submission after the current pilot expires
// transparently launches a replacement pilot from the same description
// (paying the batch-queue wait again), so interrupted segments
// resubmitted by the scheduler land on fresh cores instead of failing
// forever against a dead allocation.
type Runtime struct {
	pl     *Pilot
	proc   *sim.Proc
	stream *unitStream
	// OverheadTotal accumulates client-side overhead charged via
	// Overhead, for reporting T_RepEx-over.
	OverheadTotal float64

	// relaunch, when set, replaces an expired pilot on demand.
	relaunch   func() (*Pilot, error)
	relaunched int
}

// NewRuntime binds a pilot to an orchestrator process.
func NewRuntime(pl *Pilot, proc *sim.Proc) *Runtime {
	return &Runtime{pl: pl, proc: proc, stream: newUnitStream(proc)}
}

// NewFailoverRuntime launches a pilot from desc on cl and binds it to
// proc; when that pilot's walltime expires, the next submission launches
// a replacement pilot with the same description (pilot-level failover).
func NewFailoverRuntime(cl *cluster.Cluster, desc Description, proc *sim.Proc) (*Runtime, error) {
	pl, err := Launch(cl, desc)
	if err != nil {
		return nil, err
	}
	r := NewRuntime(pl, proc)
	r.relaunch = func() (*Pilot, error) { return Launch(cl, desc) }
	return r, nil
}

// Pilot returns the underlying (current) pilot.
func (r *Runtime) Pilot() *Pilot { return r.pl }

// Relaunched reports how many replacement pilots failover has launched.
func (r *Runtime) Relaunched() int { return r.relaunched }

// ensurePilot replaces an expired pilot before a submission when
// failover is configured. If the replacement launch fails the expired
// pilot is kept: submissions then fail fast with ErrPilotExpired and the
// scheduler's resubmission cap converts that into replica drops.
func (r *Runtime) ensurePilot() {
	if r.relaunch == nil || !r.pl.Expired() {
		return
	}
	pl, err := r.relaunch()
	if err != nil {
		return
	}
	r.pl = pl
	r.relaunched++
}

// Now returns the virtual time.
func (r *Runtime) Now() float64 { return r.proc.Now() }

// Cores returns the pilot's core count.
func (r *Runtime) Cores() int { return r.pl.Cores() }

// Submit schedules a unit (on a fresh pilot if the current one expired
// and failover is configured). The unit's result is stamped with the
// failover generation so traces can show which pilot incarnation ran
// it; the write is race-free because spawned unit processes only start
// once the orchestrator yields to the virtual-time kernel.
func (r *Runtime) Submit(s *task.Spec) task.Handle {
	r.ensurePilot()
	u := r.pl.SubmitUnit(s)
	u.res.Pilot = r.relaunched
	return u
}

// SubmitWatched schedules a unit and registers it on the completion
// stream for delivery by AwaitNext.
func (r *Runtime) SubmitWatched(s *task.Spec) task.Handle {
	r.ensurePilot()
	u := r.pl.SubmitUnit(s)
	u.res.Pilot = r.relaunched
	r.stream.watch(u)
	return u
}

// Await blocks the orchestrator until the unit finishes.
func (r *Runtime) Await(h task.Handle) task.Result {
	u := h.(*Unit)
	u.done.Await(r.proc)
	return u.res
}

// AwaitAll blocks until all units finish.
func (r *Runtime) AwaitAll(hs []task.Handle) []task.Result {
	res := make([]task.Result, len(hs))
	for i, h := range hs {
		res[i] = r.Await(h)
	}
	return res
}

// AwaitNext blocks until a watched unit completion is pending delivery
// or the deadline passes, draining the stream in completion order.
func (r *Runtime) AwaitNext(deadline float64) []task.Handle {
	return r.stream.awaitNext(deadline)
}

// SleepUntil blocks the orchestrator until virtual time t.
func (r *Runtime) SleepUntil(t float64) {
	if d := t - r.proc.Now(); d > 0 {
		r.proc.Sleep(d)
	}
}

// Overhead charges client-side (RepEx) overhead to the virtual clock.
func (r *Runtime) Overhead(d float64) {
	if d <= 0 {
		return
	}
	r.OverheadTotal += d
	r.proc.Sleep(d)
}

var _ task.Runtime = (*Runtime)(nil)
