package pilot

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/task"
)

// quietConfig returns a deterministic cluster config with no jitter, no
// failures and negligible staging, so timing assertions are exact.
func quietConfig() cluster.Config {
	cfg := cluster.Small(8, 16) // 128 cores
	cfg.QueueWait = 10
	cfg.LaunchGap = 0.1
	cfg.LaunchLatency = 0.5
	cfg.WavePenalty = 0
	cfg.ExecJitter = 0
	cfg.FailureProb = 0
	cfg.SpeedFactor = 1
	cfg.FS.MetaLatency = 0
	cfg.FS.Bandwidth = 1e15
	return cfg
}

func TestLaunchValidation(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, quietConfig(), 1)
	if _, err := Launch(cl, Description{Cores: 0}); err == nil {
		t.Error("Launch with 0 cores succeeded, want error")
	}
	if _, err := Launch(cl, Description{Cores: 1 << 20}); err == nil {
		t.Error("Launch larger than machine succeeded, want error")
	}
}

func TestPilotBecomesActiveAfterQueueWait(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, quietConfig(), 1)
	pl, err := Launch(cl, Description{Cores: 32, Walltime: 3600})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !pl.Active().Done() || pl.Active().Err() != nil {
		t.Fatal("pilot did not become active")
	}
	if got := pl.Active().At(); got != 10 {
		t.Fatalf("active at %v, want 10 (queue wait)", got)
	}
}

func TestUnitLifecycleTimes(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, quietConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 32})
	u := pl.SubmitUnit(&task.Spec{Name: "md0", Kind: task.MD, Cores: 1, Duration: 100})
	e.Run()
	if !u.Done() {
		t.Fatal("unit not done")
	}
	r := u.Result()
	if r.Err != nil {
		t.Fatalf("unit failed: %v", r.Err)
	}
	if r.Submitted != 0 {
		t.Errorf("submitted at %v, want 0", r.Submitted)
	}
	if r.CoreWait != 0 {
		t.Errorf("core wait %v, want 0 (idle pilot)", r.CoreWait)
	}
	if math.Abs(r.Launch-0.6) > 1e-9 {
		t.Errorf("launch %v, want 0.6 (gap+latency)", r.Launch)
	}
	if math.Abs(r.Exec-100) > 1e-9 {
		t.Errorf("exec %v, want 100", r.Exec)
	}
	// 10 queue wait + 0.6 launch + 100 exec
	if math.Abs(r.Finished-110.6) > 1e-9 {
		t.Errorf("finished at %v, want 110.6", r.Finished)
	}
	if u.State() != StateDone {
		t.Errorf("state %v, want DONE", u.State())
	}
}

func TestLauncherSerialization(t *testing.T) {
	// N concurrent units pay N*gap serialized launcher time: the last
	// unit's launch component ~= N*gap + latency.
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.QueueWait = 0
	cl := cluster.MustNew(e, cfg, 1)
	pl, _ := Launch(cl, Description{Cores: 128})
	const n = 64
	units := make([]*Unit, n)
	for i := 0; i < n; i++ {
		units[i] = pl.SubmitUnit(&task.Spec{Name: "u", Cores: 1, Duration: 5})
	}
	e.Run()
	maxLaunch := 0.0
	for _, u := range units {
		if l := u.Result().Launch; l > maxLaunch {
			maxLaunch = l
		}
	}
	want := float64(n)*0.1 + 0.5
	if math.Abs(maxLaunch-want) > 1e-6 {
		t.Fatalf("max launch %v, want %v (serialized launcher)", maxLaunch, want)
	}
}

func TestExecutionModeIIWaves(t *testing.T) {
	// 4 single-core units on a 2-core pilot run in two waves.
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.QueueWait = 0
	cfg.LaunchGap = 0
	cfg.LaunchLatency = 0
	cl := cluster.MustNew(e, cfg, 1)
	pl, _ := Launch(cl, Description{Cores: 2})
	var units []*Unit
	for i := 0; i < 4; i++ {
		units = append(units, pl.SubmitUnit(&task.Spec{Name: "u", Cores: 1, Duration: 10}))
	}
	e.Run()
	var waits []float64
	for _, u := range units {
		waits = append(waits, u.Result().CoreWait)
	}
	nWaited := 0
	for _, w := range waits {
		if w > 0 {
			nWaited++
		}
	}
	if nWaited != 2 {
		t.Fatalf("units that waited = %d (%v), want 2", nWaited, waits)
	}
	if e.Now() != 20 {
		t.Fatalf("makespan %v, want 20 (two waves of 10)", e.Now())
	}
}

func TestWavePenaltyAppliesOnlyToWaitingUnits(t *testing.T) {
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.QueueWait = 0
	cfg.LaunchGap = 0
	cfg.LaunchLatency = 0
	cfg.WavePenalty = 3
	cl := cluster.MustNew(e, cfg, 1)
	pl, _ := Launch(cl, Description{Cores: 1})
	u1 := pl.SubmitUnit(&task.Spec{Name: "a", Cores: 1, Duration: 10})
	u2 := pl.SubmitUnit(&task.Spec{Name: "b", Cores: 1, Duration: 10})
	e.Run()
	if got := u1.Result().Launch; got != 0 {
		t.Errorf("first-wave launch %v, want 0 (no penalty)", got)
	}
	if got := u2.Result().Launch; got != 3 {
		t.Errorf("second-wave launch %v, want 3 (wave penalty)", got)
	}
}

func TestMultiCoreUnitOccupancy(t *testing.T) {
	// A 64-core unit plus a 96-core unit cannot overlap on a 128-core
	// pilot; makespan is sequential.
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.QueueWait = 0
	cfg.LaunchGap = 0
	cfg.LaunchLatency = 0
	cl := cluster.MustNew(e, cfg, 1)
	pl, _ := Launch(cl, Description{Cores: 128})
	pl.SubmitUnit(&task.Spec{Name: "big1", Cores: 64, Duration: 10})
	pl.SubmitUnit(&task.Spec{Name: "big2", Cores: 96, Duration: 10})
	e.Run()
	if e.Now() != 20 {
		t.Fatalf("makespan %v, want 20 (no overlap possible)", e.Now())
	}
}

func TestUnitTooWideForPilotPanics(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, quietConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 4})
	defer func() {
		if recover() == nil {
			t.Error("submitting unit wider than pilot did not panic")
		}
	}()
	pl.SubmitUnit(&task.Spec{Name: "wide", Cores: 8, Duration: 1})
}

func TestFaultInjection(t *testing.T) {
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.FailureProb = 1.0 // every CanFail task fails
	cl := cluster.MustNew(e, cfg, 1)
	pl, _ := Launch(cl, Description{Cores: 8})
	bad := pl.SubmitUnit(&task.Spec{Name: "dies", Cores: 1, Duration: 10, CanFail: true})
	good := pl.SubmitUnit(&task.Spec{Name: "survives", Cores: 1, Duration: 10}) // CanFail=false
	e.Run()
	if !bad.Done() || bad.Result().Err == nil {
		t.Fatal("CanFail unit did not fail under FailureProb=1")
	}
	if bad.State() != StateFailed {
		t.Fatalf("state %v, want FAILED", bad.State())
	}
	if good.Result().Err != nil {
		t.Fatal("non-CanFail unit failed")
	}
	_, done, failed := pl.Counters()
	if done != 1 || failed != 1 {
		t.Fatalf("counters done=%d failed=%d, want 1/1", done, failed)
	}
	// Failed unit must release its cores.
	if pl.CoresInUse() != 0 {
		t.Fatalf("cores in use %d after failure, want 0", pl.CoresInUse())
	}
}

func TestRuntimeAwaitAll(t *testing.T) {
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.QueueWait = 0
	cfg.LaunchGap = 0
	cfg.LaunchLatency = 0
	cl := cluster.MustNew(e, cfg, 1)
	pl, _ := Launch(cl, Description{Cores: 16})
	var results []task.Result
	e.Go("orchestrator", func(p *sim.Proc) {
		rt := NewRuntime(pl, p)
		specs := []*task.Spec{
			{Name: "a", Cores: 1, Duration: 5},
			{Name: "b", Cores: 1, Duration: 7},
			{Name: "c", Cores: 1, Duration: 3},
		}
		results = task.RunAll(rt, specs)
	})
	e.Run()
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("task %s failed: %v", r.Spec.Name, r.Err)
		}
	}
	if e.Now() != 7 {
		t.Fatalf("barrier completed at %v, want 7 (slowest task)", e.Now())
	}
}

func TestRuntimeAwaitNext(t *testing.T) {
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.QueueWait = 0
	cfg.LaunchGap = 0
	cfg.LaunchLatency = 0
	cl := cluster.MustNew(e, cfg, 1)
	pl, _ := Launch(cl, Description{Cores: 16})
	var first, timedOut, last []task.Handle
	var fast, slow task.Handle
	e.Go("orchestrator", func(p *sim.Proc) {
		rt := NewRuntime(pl, p)
		slow = rt.SubmitWatched(&task.Spec{Name: "slow", Cores: 1, Duration: 100})
		fast = rt.SubmitWatched(&task.Spec{Name: "fast", Cores: 1, Duration: 2})
		first = rt.AwaitNext(rt.Now() + 50)
		timedOut = rt.AwaitNext(rt.Now() + 10) // slow still running
		last = rt.AwaitNext(rt.Now() + 1000)
	})
	e.Run()
	if len(first) != 1 || first[0] != fast {
		t.Fatalf("first delivery %v, want the fast unit", first)
	}
	if len(timedOut) != 0 {
		t.Fatalf("delivery before slow completion: %v, want timeout", timedOut)
	}
	if len(last) != 1 || last[0] != slow {
		t.Fatalf("last delivery %v, want the slow unit", last)
	}
	if last[0].Result().Spec.Name != "slow" {
		t.Fatal("wrong result on delivered handle")
	}
}

func TestRuntimeOverheadAdvancesClock(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, quietConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 4})
	var after float64
	e.Go("orchestrator", func(p *sim.Proc) {
		rt := NewRuntime(pl, p)
		rt.Overhead(4.5)
		after = rt.Now()
		if rt.OverheadTotal != 4.5 {
			t.Errorf("overhead total %v, want 4.5", rt.OverheadTotal)
		}
	})
	e.Run()
	if after != 4.5 {
		t.Fatalf("clock %v after overhead, want 4.5", after)
	}
}

func TestBusyCoreSecondsAccounting(t *testing.T) {
	e := sim.NewEnv()
	cfg := quietConfig()
	cfg.QueueWait = 0
	cfg.LaunchGap = 0
	cfg.LaunchLatency = 0
	cl := cluster.MustNew(e, cfg, 1)
	pl, _ := Launch(cl, Description{Cores: 8})
	pl.SubmitUnit(&task.Spec{Name: "a", Cores: 2, Duration: 10})
	pl.SubmitUnit(&task.Spec{Name: "b", Cores: 1, Duration: 4})
	e.Run()
	want := 2.0*10 + 1*4
	if got := pl.BusyCoreSeconds(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("busy core-seconds %v, want %v", got, want)
	}
}
