package pilot

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/task"
)

// twoPilots launches two identical pilots on a quiet machine with zero
// queue wait and zero launch overhead, for exact routing assertions.
func twoPilots(e *sim.Env, cores int) (*cluster.Cluster, *Pilot, *Pilot) {
	cl := cluster.MustNew(e, elasticConfig(), 1)
	a, _ := Launch(cl, Description{Cores: cores})
	b, _ := Launch(cl, Description{Cores: cores})
	return cl, a, b
}

func TestMultiRuntimeLoadEstimateDecays(t *testing.T) {
	e := sim.NewEnv()
	_, a, b := twoPilots(e, 4)
	e.Go("orchestrator", func(p *sim.Proc) {
		m, err := NewMultiRuntime(p, a, b)
		if err != nil {
			t.Error(err)
			return
		}
		m.LoadDecayTau = 100
		res := m.Await(m.Submit(&task.Spec{Name: "u", Kind: task.MD, ReplicaID: 1, Cores: 2, Duration: 10}))
		if res.Err != nil {
			t.Errorf("unit failed: %v", res.Err)
			return
		}
		// Completion fed the slot's estimate with the unit's core-width.
		if got := m.RecentLoad(0); math.Abs(got-2) > 1e-9 {
			t.Errorf("recent load %v right after completion, want 2", got)
		}
		if got := m.RecentLoad(1); got != 0 {
			t.Errorf("idle slot recent load %v, want 0", got)
		}
		// One e-folding time later the estimate has decayed to 2/e.
		p.Sleep(100)
		if got, want := m.RecentLoad(0), 2/math.E; math.Abs(got-want) > 1e-9 {
			t.Errorf("recent load %v one tau later, want %v", got, want)
		}
		// In-flight width drained with the completion.
		if got := m.InFlightCores(); got[0] != 0 || got[1] != 0 {
			t.Errorf("in-flight cores %v after completion, want [0 0]", got)
		}
	})
	e.Run()
}

func TestMultiRuntimeStagingAffinity(t *testing.T) {
	// The affinity bonus must steer a replica back to the pilot that
	// last ran it even when that pilot carries more load — and must not
	// apply to replicas the pilot never ran.
	e := sim.NewEnv()
	_, a, b := twoPilots(e, 4)
	e.Go("orchestrator", func(p *sim.Proc) {
		m, err := NewMultiRuntime(p, a, b)
		if err != nil {
			t.Error(err)
			return
		}
		m.AffinityBonus = 0.5
		// Replica 7's first unit ties to slot 0 and completes there.
		if res := m.Await(m.Submit(&task.Spec{Name: "r7a", Kind: task.MD, ReplicaID: 7, Cores: 1, Duration: 10})); res.Err != nil {
			t.Errorf("unit failed: %v", res.Err)
			return
		}
		// A stranger replica sees slot 0's completed-work estimate and
		// routes to the idle slot 1.
		h8 := m.Submit(&task.Spec{Name: "r8", Kind: task.MD, ReplicaID: 8, Cores: 1, Duration: 10})
		// Replica 7 routes back to slot 0 despite that same estimate:
		// its staged inputs are already there.
		h7 := m.Submit(&task.Spec{Name: "r7b", Kind: task.MD, ReplicaID: 7, Cores: 1, Duration: 10})
		m.Await(h8)
		m.Await(h7)
		if got := m.Routed(); got[0] != 2 || got[1] != 1 {
			t.Errorf("routed %v, want [2 1] (affinity holds replica 7 on slot 0)", got)
		}
	})
	e.Run()
}

func TestMultiRuntimeAffinityForgottenOnRelaunch(t *testing.T) {
	// Affinity tracks pilot instances, not slots: a failover replacement
	// lost the staged data, so the returning replica gets no bonus.
	e := sim.NewEnv()
	cl := cluster.MustNew(e, elasticConfig(), 1)
	a, _ := Launch(cl, Description{Cores: 4, Walltime: 50})
	b, _ := Launch(cl, Description{Cores: 4})
	e.Go("orchestrator", func(p *sim.Proc) {
		m, err := NewMultiRuntime(p, a, b)
		if err != nil {
			t.Error(err)
			return
		}
		m.Failover = true
		m.AffinityBonus = 0.5
		if res := m.Await(m.Submit(&task.Spec{Name: "r7a", Kind: task.MD, ReplicaID: 7, Cores: 1, Duration: 10})); res.Err != nil {
			t.Errorf("unit failed: %v", res.Err)
			return
		}
		m.SleepUntil(60) // pilot A expires idle at t=50
		// Replica 7 returns; slot 0 relaunches, but the replacement never
		// ran it. With no bonus anywhere the decayed completed-work
		// estimate on slot 0 routes the unit to slot 1.
		if res := m.Await(m.Submit(&task.Spec{Name: "r7b", Kind: task.MD, ReplicaID: 7, Cores: 1, Duration: 10})); res.Err != nil {
			t.Errorf("unit failed: %v", res.Err)
			return
		}
		if m.Relaunched() != 1 {
			t.Errorf("relaunched %d pilots, want 1", m.Relaunched())
		}
		if got := m.Routed(); got[0] != 1 || got[1] != 1 {
			t.Errorf("routed %v, want [1 1] (no affinity to a replacement pilot)", got)
		}
	})
	e.Run()
}

func TestMultiRuntimeRoutingStableAcrossRelaunch(t *testing.T) {
	// A failover relaunch must inherit its slot's routing history: if
	// the counters reset, the fresh pilot looks idle and attracts a
	// thundering herd of the next burst.
	e := sim.NewEnv()
	cl := cluster.MustNew(e, elasticConfig(), 1)
	a, _ := Launch(cl, Description{Cores: 4, Walltime: 50})
	b, _ := Launch(cl, Description{Cores: 4})
	e.Go("orchestrator", func(p *sim.Proc) {
		m, err := NewMultiRuntime(p, a, b)
		if err != nil {
			t.Error(err)
			return
		}
		m.Failover = true
		// Round one: four units spread two-and-two, completing at t=40.
		var hs []task.Handle
		for i := 0; i < 4; i++ {
			hs = append(hs, m.Submit(&task.Spec{Name: "warm", Kind: task.MD, ReplicaID: i, Cores: 1, Duration: 40}))
		}
		for _, r := range m.AwaitAll(hs) {
			if r.Err != nil {
				t.Errorf("warm-up unit failed: %v", r.Err)
				return
			}
		}
		if got := m.Routed(); got[0] != 2 || got[1] != 2 {
			t.Errorf("warm-up routed %v, want [2 2]", got)
			return
		}
		m.SleepUntil(60) // pilot A expires idle at t=50

		// Round two, fresh replicas: the first submission replaces the
		// expired pilot A in place.
		hs = hs[:0]
		for i := 0; i < 4; i++ {
			hs = append(hs, m.Submit(&task.Spec{Name: "burst", Kind: task.MD, ReplicaID: 10 + i, Cores: 1, Duration: 10}))
		}
		if m.Relaunched() != 1 {
			t.Errorf("relaunched %d pilots, want 1", m.Relaunched())
		}
		if m.PilotAt(0) == a {
			t.Error("slot 0 still holds the expired pilot")
		}
		// The replacement inherited the slot's decayed completed-work
		// estimate instead of starting from zero.
		if got := m.RecentLoad(0); got < 1.5 {
			t.Errorf("slot 0 recent load %v after relaunch, want the inherited (decayed) estimate > 1.5", got)
		}
		for _, r := range m.AwaitAll(hs) {
			if r.Err != nil {
				t.Errorf("burst unit failed: %v", r.Err)
				return
			}
		}
		// With inherited history both slots look equally loaded and the
		// burst splits evenly; a reset would have dumped it on slot 0.
		if got := m.Routed(); got[0] != 4 || got[1] != 4 {
			t.Errorf("routed %v after the burst, want [4 4] (no thundering herd)", got)
		}
	})
	e.Run()
}
