package pilot

import (
	"errors"
	"fmt"
	"sync"
)

// ErrPoolExhausted is returned by Pool.Acquire when the requested cores
// would exceed the pool's total. Callers (the repexd run registry) turn
// it into an admission rejection rather than queueing: a run that
// cannot get its cores now should fail fast, not deadlock the pool.
var ErrPoolExhausted = errors.New("pilot: core pool exhausted")

// Pool is a process-wide admission controller over a bounded number of
// cores shared by concurrent runs. Each run's pilots exist in that
// run's own simulated environment, so the runs cannot share one runtime
// object; what they share is the core budget — Acquire before launching
// a run's pilots, Release when the run ends. A nil *Pool admits
// everything (single-run tools don't need a budget).
type Pool struct {
	mu    sync.Mutex
	total int
	used  int
}

// NewPool returns a pool of the given total cores. A non-positive
// total returns nil: the unbounded pool.
func NewPool(total int) *Pool {
	if total <= 0 {
		return nil
	}
	return &Pool{total: total}
}

// Acquire reserves cores for one run, or returns an error wrapping
// ErrPoolExhausted stating the shortfall.
func (p *Pool) Acquire(cores int) error {
	if p == nil {
		return nil
	}
	if cores <= 0 {
		return fmt.Errorf("pilot: acquiring %d cores", cores)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.used+cores > p.total {
		return fmt.Errorf("%w: %d requested, %d of %d available",
			ErrPoolExhausted, cores, p.total-p.used, p.total)
	}
	p.used += cores
	return nil
}

// Release returns cores reserved by a successful Acquire.
func (p *Pool) Release(cores int) {
	if p == nil || cores <= 0 {
		return
	}
	p.mu.Lock()
	p.used -= cores
	if p.used < 0 {
		p.used = 0
	}
	p.mu.Unlock()
}

// Resize changes the pool's total core budget. Shrinking below the
// currently reserved cores is allowed: running runs keep their
// reservation and the pool is over-committed until they release —
// admission of new runs simply re-checks against the smaller total.
// Resizing the unbounded nil pool or to a non-positive total is an
// error (an unbounded pool cannot become bounded retroactively: nil
// was shared by value).
func (p *Pool) Resize(total int) error {
	if p == nil {
		return errors.New("pilot: cannot resize the unbounded pool")
	}
	if total <= 0 {
		return fmt.Errorf("pilot: pool total must be positive, got %d", total)
	}
	p.mu.Lock()
	p.total = total
	p.mu.Unlock()
	return nil
}

// Total returns the pool's core budget (0 for the unbounded nil pool).
func (p *Pool) Total() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Used returns the currently reserved cores.
func (p *Pool) Used() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}
