package pilot

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// ChaosEvent is one scripted resource fault, pinned to virtual time so
// a chaos run is exactly as deterministic as a quiet one.
type ChaosEvent struct {
	// At is the virtual time the fault fires, in seconds from run start.
	At float64
	// Pilot is the routing slot the fault targets (always 0 under a
	// single-pilot runtime). The fault applies to whichever pilot
	// occupies the slot at fire time — after a failover relaunch, the
	// replacement.
	Pilot int
	// Kind is "node-loss", "preempt" or "resize".
	Kind string
	// Cores is the core count removed by "node-loss" or the signed
	// delta applied by "resize".
	Cores int
	// Notice is the preemption notice window in seconds ("preempt").
	Notice float64
}

// Chaos event kinds.
const (
	ChaosNodeLoss = "node-loss"
	ChaosPreempt  = "preempt"
	ChaosResize   = "resize"
)

// Validate reports malformed chaos events.
func (e ChaosEvent) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("chaos event at t=%g: time must be non-negative", e.At)
	}
	if e.Pilot < 0 {
		return fmt.Errorf("chaos event at t=%g: pilot slot must be non-negative, got %d", e.At, e.Pilot)
	}
	switch e.Kind {
	case ChaosNodeLoss:
		if e.Cores <= 0 {
			return fmt.Errorf("chaos event at t=%g: node-loss needs a positive core count, got %d", e.At, e.Cores)
		}
	case ChaosPreempt:
		if e.Notice < 0 {
			return fmt.Errorf("chaos event at t=%g: preempt notice must be non-negative, got %g", e.At, e.Notice)
		}
	case ChaosResize:
		if e.Cores == 0 {
			return fmt.Errorf("chaos event at t=%g: resize needs a non-zero core delta", e.At)
		}
	default:
		return fmt.Errorf("chaos event at t=%g: unknown kind %q (want %s, %s or %s)",
			e.At, e.Kind, ChaosNodeLoss, ChaosPreempt, ChaosResize)
	}
	return nil
}

// ChaosPlan is a scripted sequence of resource faults driven entirely
// in virtual time: node losses that shrink a pilot, spot-style
// preemption notices, and elastic resizes. Because every fault fires at
// a fixed virtual time on the deterministic DES clock, a chaos run is
// bit-reproducible — which is what lets CI gate on it.
type ChaosPlan struct {
	Events []ChaosEvent
}

// Validate reports the first malformed event.
func (c *ChaosPlan) Validate() error {
	for _, e := range c.Events {
		if err := e.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Empty reports a nil or event-free plan.
func (c *ChaosPlan) Empty() bool { return c == nil || len(c.Events) == 0 }

// Drive spawns the chaos driver process on env: it sleeps to each
// event's virtual time in order and applies the fault to the pilot then
// occupying the targeted slot (via lookup, so failover replacements are
// hit, not corpses). Faults against inactive pilots wait for
// activation; faults against expired pilots or empty slots are skipped.
// The plan is stable-sorted by time, so same-time events apply in plan
// order.
func (c *ChaosPlan) Drive(env *sim.Env, lookup func(slot int) *Pilot) {
	if c.Empty() {
		return
	}
	events := append([]ChaosEvent(nil), c.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	env.Go("chaos", func(p *sim.Proc) {
		for _, e := range events {
			if d := e.At - p.Now(); d > 0 {
				p.Sleep(d)
			}
			pl := lookup(e.Pilot)
			if pl == nil {
				continue
			}
			if !pl.active.Done() {
				// The fault arrived while the pilot sat in the batch
				// queue; a real node can only fail once held.
				if pl.active.Await(p) != nil {
					continue
				}
			}
			if pl.Expired() {
				continue
			}
			switch e.Kind {
			case ChaosNodeLoss:
				pl.LoseCores(e.Cores)
			case ChaosPreempt:
				pl.Preempt(e.Notice)
			case ChaosResize:
				pl.Resize(e.Cores)
			}
		}
	})
}
