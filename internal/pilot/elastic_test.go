package pilot

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/task"
)

// elasticConfig is quietConfig with zero queue wait and zero launch
// overhead, so fault-timing assertions are exact.
func elasticConfig() cluster.Config {
	cfg := quietConfig()
	cfg.QueueWait = 0
	cfg.LaunchGap = 0
	cfg.LaunchLatency = 0
	return cfg
}

func TestLoseCoresKillsNewestUnits(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, elasticConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 4})
	units := make([]*Unit, 4)
	for i := range units {
		units[i] = pl.SubmitUnit(&task.Spec{Name: "u", Kind: task.MD, Cores: 1, Duration: 100})
	}
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(50)
		if got := pl.LoseCores(2); got != 2 {
			t.Errorf("LoseCores removed %d cores, want 2", got)
		}
	})
	e.Run()

	// The two oldest units keep their cores; the two newest die at the
	// moment of the node loss.
	for _, u := range units[:2] {
		if err := u.Result().Err; err != nil {
			t.Fatalf("surviving unit failed: %v", err)
		}
		if math.Abs(u.Result().Finished-100) > 1e-9 {
			t.Fatalf("surviving unit finished at %v, want 100", u.Result().Finished)
		}
	}
	for _, u := range units[2:] {
		res := u.Result()
		if !errors.Is(res.Err, ErrNodeLost) {
			t.Fatalf("lost unit error %v, want ErrNodeLost", res.Err)
		}
		if !errors.Is(res.Err, task.ErrResourceLost) {
			t.Fatal("ErrNodeLost must wrap task.ErrResourceLost")
		}
		if math.Abs(res.Finished-50) > 1e-9 {
			t.Fatalf("lost unit killed at %v, want 50", res.Finished)
		}
	}
	if pl.Expired() {
		t.Fatal("partial node loss must not expire the pilot")
	}
	if pl.Cores() != 2 {
		t.Fatalf("pilot has %d cores after the loss, want 2", pl.Cores())
	}
	// The lost cores went back to the machine, the held ones did not.
	if cl.CoresInUse() != 2 {
		t.Fatalf("machine cores in use %d mid-run, want 2", cl.CoresInUse())
	}
}

func TestLoseAllCoresExpiresPilot(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, elasticConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 2})
	u := pl.SubmitUnit(&task.Spec{Name: "u", Kind: task.MD, Cores: 1, Duration: 100})
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(30)
		// Asking for more than remains still only removes what is there.
		if got := pl.LoseCores(99); got != 2 {
			t.Errorf("LoseCores removed %d cores, want 2", got)
		}
	})
	e.Run()
	if !errors.Is(u.Result().Err, ErrNodeLost) {
		t.Fatalf("unit error %v, want ErrNodeLost", u.Result().Err)
	}
	if !pl.Expired() {
		t.Fatal("losing every core must expire the pilot")
	}
	if pl.Cores() != 0 {
		t.Fatalf("expired pilot reports %d cores, want 0", pl.Cores())
	}
	if cl.CoresInUse() != 0 {
		t.Fatalf("machine cores in use %d after full loss, want 0", cl.CoresInUse())
	}
}

func TestLoseCoresAbortsTooWideQueuedUnit(t *testing.T) {
	// A queued unit wider than the post-shrink capacity can never run;
	// it must fail fast instead of waiting forever.
	e := sim.NewEnv()
	cl := cluster.MustNew(e, elasticConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 4})
	running := pl.SubmitUnit(&task.Spec{Name: "run", Kind: task.MD, Cores: 2, Duration: 100})
	wide := pl.SubmitUnit(&task.Spec{Name: "wide", Kind: task.MD, Cores: 4, Duration: 10})
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(50)
		pl.LoseCores(1) // 4 -> 3: "wide" (4 cores) no longer fits
	})
	e.Run()
	if err := running.Result().Err; err != nil {
		t.Fatalf("narrow unit failed: %v", err)
	}
	res := wide.Result()
	if !errors.Is(res.Err, ErrNoCapacity) {
		t.Fatalf("wide unit error %v, want ErrNoCapacity", res.Err)
	}
	if !errors.Is(res.Err, task.ErrResourceLost) {
		t.Fatal("ErrNoCapacity must wrap task.ErrResourceLost")
	}
	if math.Abs(res.Finished-50) > 1e-9 {
		t.Fatalf("wide unit aborted at %v, want 50 (the shrink)", res.Finished)
	}
}

func TestPreemptNoticeDrainsThenKills(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, elasticConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 4})
	short := pl.SubmitUnit(&task.Spec{Name: "short", Kind: task.MD, Cores: 1, Duration: 50})
	long := pl.SubmitUnit(&task.Spec{Name: "long", Kind: task.MD, Cores: 1, Duration: 500})
	var refused *Unit
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(30)
		pl.Preempt(40) // deadline t=70
		if !pl.Draining() {
			t.Error("pilot not draining after the notice")
		}
		// A draining pilot refuses new work immediately.
		refused = pl.SubmitUnit(&task.Spec{Name: "late", Kind: task.MD, Cores: 1, Duration: 5})
		// A second notice while one is pending is a no-op.
		pl.Preempt(1)
	})
	e.Run()
	if err := short.Result().Err; err != nil {
		t.Fatalf("unit finishing inside the notice window failed: %v", err)
	}
	res := long.Result()
	if !errors.Is(res.Err, ErrPilotPreempted) {
		t.Fatalf("long unit error %v, want ErrPilotPreempted", res.Err)
	}
	if math.Abs(res.Finished-70) > 1e-9 {
		t.Fatalf("long unit killed at %v, want 70 (notice deadline, not the second notice)", res.Finished)
	}
	if !errors.Is(refused.Result().Err, ErrPilotPreempted) {
		t.Fatalf("refused unit error %v, want ErrPilotPreempted", refused.Result().Err)
	}
	if !pl.Expired() {
		t.Fatal("pilot not expired after the notice window")
	}
	if pl.Draining() {
		t.Fatal("an expired pilot must not report Draining")
	}
}

func TestPreemptWithoutNoticeExpiresImmediately(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, elasticConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 2})
	u := pl.SubmitUnit(&task.Spec{Name: "u", Kind: task.MD, Cores: 1, Duration: 100})
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(25)
		pl.Preempt(0)
	})
	e.Run()
	res := u.Result()
	if !errors.Is(res.Err, ErrPilotPreempted) {
		t.Fatalf("unit error %v, want ErrPilotPreempted", res.Err)
	}
	if math.Abs(res.Finished-25) > 1e-9 {
		t.Fatalf("unit killed at %v, want 25 (no notice)", res.Finished)
	}
	if !pl.Expired() {
		t.Fatal("pilot not expired")
	}
}

func TestResizeGrowAndGracefulShrink(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, elasticConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 4})
	u := pl.SubmitUnit(&task.Spec{Name: "u", Kind: task.MD, Cores: 2, Duration: 100})
	e.Go("elastic", func(p *sim.Proc) {
		p.Sleep(10)
		if got := pl.Resize(4); got != 4 {
			t.Errorf("grow applied %d, want 4", got)
		}
		if pl.Cores() != 8 {
			t.Errorf("pilot has %d cores after grow, want 8", pl.Cores())
		}
		p.Sleep(10)
		// Shrink far below the running unit: graceful, clamps to one
		// core, kills nothing.
		if got := pl.Resize(-99); got != -7 {
			t.Errorf("shrink applied %d, want -7 (clamped to keep one core)", got)
		}
		if pl.Cores() != 1 {
			t.Errorf("pilot has %d cores after shrink, want 1", pl.Cores())
		}
	})
	e.Run()
	if err := u.Result().Err; err != nil {
		t.Fatalf("unit killed by a graceful shrink: %v", err)
	}
	if math.Abs(u.Result().Finished-100) > 1e-9 {
		t.Fatalf("unit finished at %v, want 100", u.Result().Finished)
	}
	if pl.Expired() {
		t.Fatal("resize must never expire a pilot")
	}
}

func TestChaosPlanDriveAppliesFaultsInOrder(t *testing.T) {
	e := sim.NewEnv()
	cl := cluster.MustNew(e, elasticConfig(), 1)
	pl, _ := Launch(cl, Description{Cores: 8})
	u := pl.SubmitUnit(&task.Spec{Name: "u", Kind: task.MD, Cores: 1, Duration: 1000})
	// Deliberately unsorted; Drive stable-sorts by time. The event
	// against slot 1 has no pilot and must be skipped.
	plan := &ChaosPlan{Events: []ChaosEvent{
		{At: 200, Pilot: 0, Kind: ChaosPreempt, Notice: 50},
		{At: 100, Pilot: 0, Kind: ChaosNodeLoss, Cores: 3},
		{At: 150, Pilot: 1, Kind: ChaosNodeLoss, Cores: 8},
		{At: 120, Pilot: 0, Kind: ChaosResize, Cores: -1},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	plan.Drive(e, func(slot int) *Pilot {
		if slot != 0 {
			return nil
		}
		return pl
	})
	e.Run()

	if !errors.Is(u.Result().Err, ErrPilotPreempted) {
		t.Fatalf("unit error %v, want ErrPilotPreempted", u.Result().Err)
	}
	if math.Abs(u.Result().Finished-250) > 1e-9 {
		t.Fatalf("unit killed at %v, want 250 (preempt deadline)", u.Result().Finished)
	}
	ev := pl.TakeEvents()
	var kinds []string
	for _, re := range ev {
		kinds = append(kinds, re.Kind)
	}
	want := []string{
		task.ResourceLaunch,  // t=0, 8 cores
		task.ResourceShrink,  // t=100, 8 -> 5
		task.ResourceResize,  // t=120, 5 -> 4
		task.ResourcePreempt, // t=200
		task.ResourceExpire,  // t=250
	}
	if len(kinds) != len(want) {
		t.Fatalf("resource events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("resource events %v, want %v", kinds, want)
		}
	}
	if ev[1].Cores != 5 || ev[1].Delta != -3 {
		t.Fatalf("shrink event %+v, want cores 5 delta -3", ev[1])
	}
	if ev[3].Notice != 50 {
		t.Fatalf("preempt event notice %v, want 50", ev[3].Notice)
	}
	// Events drain exactly once.
	if again := pl.TakeEvents(); len(again) != 0 {
		t.Fatalf("second drain returned %d events, want 0", len(again))
	}
}

func TestChaosEventValidation(t *testing.T) {
	bad := []ChaosEvent{
		{At: -1, Kind: ChaosPreempt},
		{At: 1, Pilot: -1, Kind: ChaosPreempt},
		{At: 1, Kind: ChaosNodeLoss, Cores: 0},
		{At: 1, Kind: ChaosPreempt, Notice: -1},
		{At: 1, Kind: ChaosResize, Cores: 0},
		{At: 1, Kind: "meteor"},
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("event %+v validated, want error", e)
		}
	}
	ok := ChaosEvent{At: 0, Kind: ChaosResize, Cores: -2}
	if err := ok.Validate(); err != nil {
		t.Errorf("event %+v rejected: %v", ok, err)
	}
	var nilPlan *ChaosPlan
	if !nilPlan.Empty() {
		t.Error("nil plan not Empty")
	}
	if err := (&ChaosPlan{Events: bad[:1]}).Validate(); err == nil {
		t.Error("plan with a bad event validated")
	}
}
