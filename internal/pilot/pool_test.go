package pilot

import (
	"errors"
	"sync"
	"testing"
)

func TestPoolAdmission(t *testing.T) {
	p := NewPool(64)
	if err := p.Acquire(48); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(32); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("over-budget acquire returned %v, want ErrPoolExhausted", err)
	}
	if err := p.Acquire(16); err != nil {
		t.Fatalf("exact-fit acquire failed: %v", err)
	}
	if got := p.Used(); got != 64 {
		t.Fatalf("used %d, want 64", got)
	}
	p.Release(48)
	if err := p.Acquire(40); err != nil {
		t.Fatalf("acquire after release failed: %v", err)
	}
	if p.Total() != 64 {
		t.Fatalf("total %d, want 64", p.Total())
	}
}

func TestPoolNilIsUnbounded(t *testing.T) {
	var p *Pool
	for i := 0; i < 100; i++ {
		if err := p.Acquire(1 << 20); err != nil {
			t.Fatal(err)
		}
	}
	p.Release(1 << 20)
	if p.Total() != 0 || p.Used() != 0 {
		t.Fatal("nil pool reports a budget")
	}
	if NewPool(0) != nil {
		t.Fatal("NewPool(0) must return the unbounded nil pool")
	}
}

func TestPoolInvalidAcquire(t *testing.T) {
	p := NewPool(8)
	if err := p.Acquire(0); err == nil {
		t.Fatal("zero-core acquire accepted")
	}
	if err := p.Acquire(-4); err == nil {
		t.Fatal("negative acquire accepted")
	}
	p.Release(100) // over-release clamps, never goes negative
	if p.Used() != 0 {
		t.Fatalf("used %d after over-release, want 0", p.Used())
	}
}

func TestPoolResize(t *testing.T) {
	p := NewPool(16)
	if err := p.Acquire(12); err != nil {
		t.Fatal(err)
	}
	// Shrinking below the reservation over-commits instead of revoking.
	if err := p.Resize(8); err != nil {
		t.Fatal(err)
	}
	if p.Total() != 8 || p.Used() != 12 {
		t.Fatalf("total %d used %d after shrink, want 8/12 (over-committed)", p.Total(), p.Used())
	}
	if err := p.Acquire(1); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("acquire on an over-committed pool returned %v, want ErrPoolExhausted", err)
	}
	p.Release(12)
	if err := p.Acquire(8); err != nil {
		t.Fatalf("exact fit against the new total failed: %v", err)
	}
	p.Release(8)
	// Growing admits what the old total refused.
	if err := p.Resize(32); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(24); err != nil {
		t.Fatalf("acquire after grow failed: %v", err)
	}
	// Invalid resizes.
	if err := p.Resize(0); err == nil {
		t.Fatal("Resize(0) accepted")
	}
	var nilPool *Pool
	if err := nilPool.Resize(8); err == nil {
		t.Fatal("resizing the unbounded pool accepted")
	}
}

// Admission must stay consistent under concurrent runs acquiring and
// releasing: never more than total reserved, bookkeeping exact.
func TestPoolConcurrent(t *testing.T) {
	p := NewPool(32)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := p.Acquire(4); err == nil {
					if u := p.Used(); u > 32 {
						t.Errorf("used %d exceeds total 32", u)
					}
					p.Release(4)
				}
			}
		}()
	}
	wg.Wait()
	if p.Used() != 0 {
		t.Fatalf("used %d after all releases, want 0", p.Used())
	}
}
