// Package task defines the workload abstraction shared by the RepEx core
// and its runtime backends. It is the Go analogue of RADICAL-Pilot's
// ComputeUnit description/record split: a Spec says what to run, a Result
// records when and how it ran, and a Runtime schedules Specs onto
// resources.
//
// Two backends implement Runtime:
//
//   - internal/pilot.Runtime — executes tasks in virtual time on a
//     simulated cluster (used for all performance experiments), and
//   - internal/localexec.Runtime — executes the task's Run function for
//     real on local goroutines (used for validation and examples).
//
// The RepEx core (internal/core) is written against this interface only,
// which is precisely the decoupling the paper's design argues for.
package task

import (
	"errors"
	"fmt"
)

// ErrResourceLost marks a task failure caused by the executing resource
// disappearing (e.g. a pilot's walltime expiring) rather than by the
// task itself. Runtimes wrap this sentinel (errors.Is) so the scheduler
// can resubmit interrupted work without charging it against the task's
// own failure budget.
var ErrResourceLost = errors.New("task: executing resource lost")

// ResourceEvent records one lifecycle change of an executing resource:
// a pilot becoming active, shrinking after a node loss, receiving a
// preemption notice, resizing, or expiring. Runtimes that model elastic
// resources buffer these and expose them through ResourceReporter so
// the scheduler can publish them to its observability pipeline without
// the runtime depending on it.
type ResourceEvent struct {
	// At is the runtime-clock time of the change.
	At float64
	// Pilot identifies the pilot, using the same numbering as
	// Result.Pilot (routing slot or failover generation).
	Pilot int
	// Kind is one of the ResourceEvent* constants.
	Kind string
	// Cores is the pilot's core count after the change.
	Cores int
	// Delta is the signed core change (negative for losses).
	Delta int
	// Notice is the preemption notice window in seconds (preempt only).
	Notice float64
}

// ResourceEvent kinds.
const (
	// ResourceLaunch: the pilot's allocation became active.
	ResourceLaunch = "launch"
	// ResourceShrink: node loss removed cores from a live pilot.
	ResourceShrink = "shrink"
	// ResourcePreempt: a preemption notice arrived; the pilot drains.
	ResourcePreempt = "preempt"
	// ResourceResize: an elastic resize changed the pilot's core count.
	ResourceResize = "resize"
	// ResourceExpire: the pilot ended (walltime, preemption or full loss).
	ResourceExpire = "expire"
)

// ResourceReporter is implemented by runtimes that buffer
// ResourceEvents. DrainResourceEvents returns and clears the buffered
// events in occurrence order; it is called from the orchestrator
// context like every other Runtime method.
type ResourceReporter interface {
	DrainResourceEvents() []ResourceEvent
}

// Kind classifies a task within a replica-exchange cycle.
type Kind int

const (
	// MD is a molecular-dynamics simulation phase task.
	MD Kind = iota
	// Exchange is an exchange-phase task (partner determination).
	Exchange
	// SinglePoint is a single-point energy evaluation task, used by
	// salt-concentration exchange where cross-state energies must be
	// computed by the MD engine itself.
	SinglePoint
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case MD:
		return "md"
	case Exchange:
		return "exchange"
	case SinglePoint:
		return "spe"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec describes one task.
type Spec struct {
	Name      string
	Kind      Kind
	ReplicaID int
	// Cores is the number of CPU cores the task occupies (MPI width).
	Cores int
	// Duration is the compute time on the reference machine, in
	// seconds, used by the virtual-time backend. The backend applies
	// machine speed scaling and jitter.
	Duration float64
	// Staging volumes: number of files and total bytes moved before and
	// after execution through the shared filesystem.
	InFiles  int
	InBytes  int64
	OutFiles int
	OutBytes int64
	// Run is the real work for the local backend; ignored by the
	// virtual backend. May be nil when only simulating.
	Run func() error
	// CanFail marks the task as subject to the cluster's fault
	// injection. MD tasks are typically CanFail; bookkeeping tasks not.
	CanFail bool
}

// Validate reports malformed specs.
func (s *Spec) Validate() error {
	if s.Cores <= 0 {
		return fmt.Errorf("task %q: cores must be positive, got %d", s.Name, s.Cores)
	}
	if s.Duration < 0 {
		return fmt.Errorf("task %q: negative duration %g", s.Name, s.Duration)
	}
	if s.InFiles < 0 || s.OutFiles < 0 || s.InBytes < 0 || s.OutBytes < 0 {
		return fmt.Errorf("task %q: negative staging volume", s.Name)
	}
	return nil
}

// Result records one executed task. All times are in the runtime's clock
// (virtual seconds for the pilot backend, wall seconds for localexec).
type Result struct {
	Spec *Spec
	// Submitted .. Finished bracket the full lifetime.
	Submitted float64
	Finished  float64
	// Component durations (Eq. 1 decomposition inputs):
	StageIn  float64 // input staging incl. metadata-server queueing
	CoreWait float64 // waiting for cores (Execution Mode II waves)
	Launch   float64 // agent launcher queueing + launch latency (T_RP-over)
	Exec     float64 // compute time (T_MD or T_EX)
	StageOut float64 // output staging
	// Pilot identifies the pilot that executed the task, for runtimes
	// managing more than one: the routing index under a multi-pilot
	// runtime, the failover generation (0 for the initial pilot) under
	// a single-pilot failover runtime. Stamped at submission, so the
	// flight recorder can attribute each segment to its executor.
	Pilot int
	// Err is non-nil if the task failed (fault injection or real error).
	Err error
}

// Failed reports whether the task failed.
func (r Result) Failed() bool { return r.Err != nil }

// Total returns Finished - Submitted.
func (r Result) Total() float64 { return r.Finished - r.Submitted }

// Handle is a pending task.
type Handle interface {
	// Done reports whether the task has finished (successfully or not).
	Done() bool
	// Result returns the result; valid only after Done reports true.
	Result() Result
}

// Runtime schedules task specs onto resources. All methods must be called
// from the single orchestrator context that owns the runtime (matching
// RepEx's single-threaded client-side EMM).
//
// The runtime exposes two waiting styles: direct awaits on individual
// handles (Await, AwaitAll), and a completion stream (SubmitWatched,
// AwaitNext) that delivers finished tasks incrementally in completion
// order. The stream is what the event-driven dispatcher in internal/core
// runs on: each completion is enqueued once and delivered once, so the
// dispatcher pays O(1) per event instead of rescanning a handle slice.
type Runtime interface {
	// Now returns the runtime's current time in seconds.
	Now() float64
	// Cores returns the number of cores available to the workload.
	Cores() int
	// Submit enqueues a task for execution and returns immediately.
	Submit(s *Spec) Handle
	// SubmitWatched enqueues a task like Submit and additionally
	// registers it on the runtime's completion stream: when the task
	// finishes (successfully or not), its handle is delivered exactly
	// once by a subsequent AwaitNext call.
	SubmitWatched(s *Spec) Handle
	// AwaitNext blocks until at least one watched completion is pending
	// delivery or the absolute deadline passes, and returns the completed
	// watched handles in completion order (nil on timeout). A +Inf
	// deadline waits indefinitely for the next completion; callers must
	// therefore only pass +Inf while watched tasks are outstanding.
	AwaitNext(deadline float64) []Handle
	// Await blocks until h is done and returns its result.
	Await(h Handle) Result
	// AwaitAll blocks until all handles are done.
	AwaitAll(hs []Handle) []Result
	// Overhead charges d seconds of client-side overhead to the clock
	// (RepEx task-preparation time; a no-op sleep in wall time).
	Overhead(d float64)
	// SleepUntil blocks the orchestrator until the absolute time t
	// (used by window-style exchange triggers to idle to a boundary).
	SleepUntil(t float64)
}

// RunAll is a convenience that submits all specs and awaits all results.
func RunAll(rt Runtime, specs []*Spec) []Result {
	hs := make([]Handle, len(specs))
	for i, s := range specs {
		hs[i] = rt.Submit(s)
	}
	return rt.AwaitAll(hs)
}
