package task_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/localexec"
	"repro/internal/task"
)

func validSpec() *task.Spec {
	return &task.Spec{Name: "ok", Kind: task.MD, Cores: 4, Duration: 1.5,
		InFiles: 2, InBytes: 1 << 10, OutFiles: 1, OutBytes: 1 << 9}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*task.Spec)
	}{
		{"zero cores", func(s *task.Spec) { s.Cores = 0 }},
		{"negative cores", func(s *task.Spec) { s.Cores = -2 }},
		{"negative duration", func(s *task.Spec) { s.Duration = -1 }},
		{"negative in files", func(s *task.Spec) { s.InFiles = -1 }},
		{"negative out files", func(s *task.Spec) { s.OutFiles = -1 }},
		{"negative in bytes", func(s *task.Spec) { s.InBytes = -1 }},
		{"negative out bytes", func(s *task.Spec) { s.OutBytes = -1 }},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), s.Name) {
			t.Errorf("%s: error %q does not name the task", tc.name, err)
		}
	}
}

func TestKindString(t *testing.T) {
	for kind, want := range map[task.Kind]string{
		task.MD: "md", task.Exchange: "exchange", task.SinglePoint: "spe", task.Kind(9): "kind(9)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(kind), got, want)
		}
	}
}

func TestResultTotalAndFailed(t *testing.T) {
	r := task.Result{Submitted: 2.5, Finished: 10.0}
	if r.Total() != 7.5 {
		t.Fatalf("Total = %v, want 7.5", r.Total())
	}
	if r.Failed() {
		t.Fatal("result without error reported Failed")
	}
	r.Err = errors.New("boom")
	if !r.Failed() {
		t.Fatal("result with error did not report Failed")
	}
}

func TestRunAll(t *testing.T) {
	rt := localexec.New(2)
	var specs []*task.Spec
	for _, name := range []string{"a", "b", "c"} {
		specs = append(specs, &task.Spec{Name: name, Cores: 1, Run: func() error { return nil }})
	}
	specs = append(specs, &task.Spec{Name: "bad", Cores: 1, Run: func() error { return errors.New("boom") }})
	results := task.RunAll(rt, specs)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i, res := range results {
		if res.Spec != specs[i] {
			t.Fatalf("result %d out of submission order", i)
		}
	}
	if results[3].Err == nil || results[0].Err != nil {
		t.Fatal("errors not propagated per task")
	}
}
