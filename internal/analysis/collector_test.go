package analysis_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/pilot"
	"repro/internal/sim"
)

func tremdSpec(n, cycles int) *core.Spec {
	return &core.Spec{
		Name:            "t-remd",
		Dims:            []core.Dimension{{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, n)}},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          cycles,
		Seed:            21,
	}
}

func quietCluster() cluster.Config {
	cfg := cluster.SuperMIC()
	cfg.ExecJitter = 0
	cfg.FailureProb = 0
	return cfg
}

func runVirtual(t *testing.T, spec *core.Spec, cores int) *core.Report {
	t.Helper()
	env := sim.NewEnv()
	cl := cluster.MustNew(env, quietCluster(), spec.Seed+1)
	pl, err := pilot.Launch(cl, pilot.Description{Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	eng := engines.NewAmberVirtual(2881, spec.Seed+2)
	var report *core.Report
	var runErr error
	env.Go("emm", func(p *sim.Proc) {
		rt := pilot.NewRuntime(pl, p)
		simu, err := core.New(spec, eng, rt)
		if err != nil {
			runErr = err
			return
		}
		report, runErr = simu.Run()
	})
	env.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	return report
}

// TestAcceptanceMatchesSlotHistoryRecomputation runs a virtual-engine
// 1-D T-REMD simulation with the collector online and then recomputes
// the per-pair acceptance statistics post hoc from the slot history
// alone: replaying the alternating neighbour pairing over each
// pre-event slot assignment and detecting accepted swaps from the slot
// changes. Both views must agree exactly.
func TestAcceptanceMatchesSlotHistoryRecomputation(t *testing.T) {
	const n, cycles = 8, 6
	spec := tremdSpec(n, cycles)
	spec.Bus = core.NewBus()
	col := analysis.New(analysis.ConfigFromSpec(spec))
	col.Attach(spec.Bus, 1<<14)
	rep := runVirtual(t, spec, n)
	stats := col.Snapshot()

	if stats.Events != rep.ExchangeEvents || stats.Events != cycles {
		t.Fatalf("collector saw %d events, report %d, want %d",
			stats.Events, rep.ExchangeEvents, cycles)
	}

	// Post-hoc recomputation. Replica i starts in slot i; for 1-D
	// T-REMD event e the dispatcher pairs ladder neighbours with
	// alternating parity (sweep = e) over the pre-event assignment.
	attempted := make([]uint64, n-1)
	accepted := make([]uint64, n-1)
	prev := make([]int, n)
	for i := range prev {
		prev[i] = i
	}
	for e, row := range rep.SlotHistory {
		bySlot := make([]int, n) // slot -> replica ID
		for id, slot := range prev {
			bySlot[slot] = id
		}
		for _, pr := range exchange.NeighborPairs(bySlot, e) {
			lo := prev[pr.I]
			if prev[pr.J] < lo {
				lo = prev[pr.J]
			}
			attempted[lo]++
			if row[pr.I] == prev[pr.J] && row[pr.J] == prev[pr.I] && row[pr.I] != prev[pr.I] {
				accepted[lo]++
			}
		}
		copy(prev, row)
	}

	if len(stats.Acceptance) != 1 || len(stats.Acceptance[0]) != n-1 {
		t.Fatalf("acceptance shape %d dims, want 1 dim with %d pairs", len(stats.Acceptance), n-1)
	}
	totalAtt := uint64(0)
	for i, ps := range stats.Acceptance[0] {
		if ps.Attempted != attempted[i] || ps.Accepted != accepted[i] {
			t.Fatalf("pair %d: collector %d/%d, slot-history recomputation %d/%d",
				i, ps.Accepted, ps.Attempted, accepted[i], attempted[i])
		}
		totalAtt += ps.Attempted
	}
	if totalAtt == 0 {
		t.Fatal("no exchange attempts recorded: the comparison is vacuous")
	}
}

// exEvent builds a hand-crafted exchange event carrying only what the
// walk tracker consumes.
func exEvent(event int, slots []int) core.ExchangeEvent {
	return core.ExchangeEvent{Event: event, Slots: slots}
}

// TestRoundTripTimesOnHandBuiltTrace drives the round-trip state
// machine with a fully known walk: replica A does 0 -> 1 -> 2 -> 1 -> 0
// on a 3-slot ladder, one complete round trip spanning 4 exchange
// events.
func TestRoundTripTimesOnHandBuiltTrace(t *testing.T) {
	col := analysis.New(analysis.Config{DimSizes: []int{3}, Replicas: 3})
	// Initial assignment (collector time 0): A=0 B=1 C=2.
	walkA := [][]int{
		{1, 0, 2}, // t=1: A leaves bottom
		{2, 0, 1}, // t=2: A reaches top (armed)
		{1, 0, 2}, // t=3: coming back
		{0, 1, 2}, // t=4: A back at bottom -> round trip of 4 events
	}
	for e, slots := range walkA {
		col.Apply(exEvent(e, slots))
	}
	st := col.Snapshot()
	if st.RoundTrips != 1 {
		t.Fatalf("round trips %d, want 1 (only A completed one)", st.RoundTrips)
	}
	if st.MeanRoundTripEvents != 4 {
		t.Fatalf("mean round-trip %v events, want 4", st.MeanRoundTripEvents)
	}
	// A visited both endpoints; B never saw the top, C never the bottom.
	if want := 1.0 / 3.0; st.FullTraversalFraction != want {
		t.Fatalf("full-traversal fraction %v, want %v", st.FullTraversalFraction, want)
	}
	if st.Slots[0] != 0 || st.Slots[1] != 1 || st.Slots[2] != 2 {
		t.Fatalf("final slots %v, want [0 1 2]", st.Slots)
	}
	if got := st.Traces[0]; !reflect.DeepEqual(got, []int{1, 2, 1, 0}) {
		t.Fatalf("trace of replica 0 is %v, want [1 2 1 0]", got)
	}
}

// TestRoundTripClockRestartsOnUnarmedRevisit pins the "last departure"
// semantics: lingering at the starting endpoint must not inflate the
// round-trip time.
func TestRoundTripClockRestartsOnUnarmedRevisit(t *testing.T) {
	col := analysis.New(analysis.Config{DimSizes: []int{3}, Replicas: 3})
	steps := [][]int{
		{0, 1, 2}, // t=1: A lingers at bottom (clock restarts)
		{0, 1, 2}, // t=2: still lingering (clock restarts)
		{1, 0, 2}, // t=3
		{2, 0, 1}, // t=4: top, armed
		{1, 0, 2}, // t=5
		{0, 1, 2}, // t=6: round trip measured from t=2, not t=0
	}
	for e, slots := range steps {
		col.Apply(exEvent(e, slots))
	}
	st := col.Snapshot()
	if st.RoundTrips != 1 || st.MeanRoundTripEvents != 4 {
		t.Fatalf("got %d trips, mean %v events; want 1 trip of 4 events (clock restarts at last departure)",
			st.RoundTrips, st.MeanRoundTripEvents)
	}
}

// TestCollectorStateSurvivesCheckpointRestart is the tentpole's
// checkpoint acceptance criterion: on the barrier-trigger golden
// workload, statistics from a run killed at its snapshot and resumed
// must equal the uninterrupted run's statistics exactly.
func TestCollectorStateSurvivesCheckpointRestart(t *testing.T) {
	const n, cycles = 8, 4
	mkSpec := func() *core.Spec { return tremdSpec(n, cycles) }

	// Uninterrupted run, collector online the whole time; snapshots are
	// captured with the collector state attached, exactly as cmd/repex
	// writes them.
	var snaps []*core.Snapshot
	full := mkSpec()
	full.Bus = core.NewBus()
	colFull := analysis.New(analysis.ConfigFromSpec(full))
	colFull.Attach(full.Bus, 1<<14)
	full.SnapshotEvery = 2
	full.OnSnapshot = func(sn *core.Snapshot) {
		data, err := colFull.EncodeState()
		if err != nil {
			t.Errorf("encoding collector state: %v", err)
			return
		}
		sn.Analysis = data
		snaps = append(snaps, sn)
	}
	runVirtual(t, full, n)
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots, want 2", len(snaps))
	}
	fullStats := colFull.Snapshot()

	// Kill + restart from the first snapshot (event 2), round-tripping
	// the snapshot through its serialized form.
	data, err := snaps[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Analysis) == 0 {
		t.Fatal("snapshot lost the embedded analysis state")
	}
	resumed := mkSpec()
	resumed.Resume = snap
	resumed.Bus = core.NewBus()
	colResumed := analysis.New(analysis.ConfigFromSpec(resumed))
	if err := colResumed.Restore(snap.Analysis); err != nil {
		t.Fatal(err)
	}
	colResumed.Attach(resumed.Bus, 1<<14)
	runVirtual(t, resumed, n)
	resumedStats := colResumed.Snapshot()

	// Histogram sums accumulate wall-time differences whose floating-
	// point rounding depends on the absolute time base, and a resumed
	// run's clock is offset by a fresh batch-queue wait — so the sums
	// may differ in the last ulp. Everything else must match bit-for-
	// bit: compare with the sums zeroed, then the sums with tolerance.
	checkSum := func(name string, a, b float64) {
		t.Helper()
		if diff := a - b; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s histogram sum diverged: full %v, resumed %v", name, a, b)
		}
	}
	checkSum("md_exec", fullStats.MDExec.Sum, resumedStats.MDExec.Sum)
	checkSum("exchange_overhead", fullStats.ExchangeOverhead.Sum, resumedStats.ExchangeOverhead.Sum)
	fullStats.MDExec.Sum, resumedStats.MDExec.Sum = 0, 0
	fullStats.ExchangeOverhead.Sum, resumedStats.ExchangeOverhead.Sum = 0, 0
	// A resumed run genuinely launches a fresh pilot, so it sees one more
	// resource (launch) event than the uninterrupted run; the science
	// statistics must still match exactly.
	if resumedStats.ResourceEvents != fullStats.ResourceEvents+1 {
		t.Fatalf("resumed run saw %d resource events, full run %d (want exactly one extra launch)",
			resumedStats.ResourceEvents, fullStats.ResourceEvents)
	}
	fullStats.ResourceEvents, resumedStats.ResourceEvents = 0, 0
	a, err := json.Marshal(fullStats)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(resumedStats)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("resumed statistics diverged from the uninterrupted run:\nfull    %s\nresumed %s", a, b)
	}
	if resumedStats.Events != cycles {
		t.Fatalf("resumed collector saw %d events, want %d", resumedStats.Events, cycles)
	}
}

// TestGapPairsExcludedFromNeighbourStats: an attempt bridging a dead
// replica's window (Hi > Lo+1) must not pollute the (Lo, Lo+1) ratio.
func TestGapPairsExcludedFromNeighbourStats(t *testing.T) {
	col := analysis.New(analysis.Config{DimSizes: []int{4}, Replicas: 4})
	col.Apply(core.ExchangeEvent{
		Event: 0, Dim: 0,
		Pairs: []core.PairOutcome{
			{Lo: 0, Hi: 1, ReplicaI: 0, ReplicaJ: 1, Accepted: true},
			{Lo: 1, Hi: 3, ReplicaI: 1, ReplicaJ: 3, Accepted: true}, // window 2 dead
		},
		Slots: []int{1, 0, 2, 3},
	})
	st := col.Snapshot()
	if st.Acceptance[0][0].Attempted != 1 || st.Acceptance[0][0].Accepted != 1 {
		t.Fatalf("pair (0,1) stats %+v, want 1/1", st.Acceptance[0][0])
	}
	for _, i := range []int{1, 2} {
		if st.Acceptance[0][i].Attempted != 0 {
			t.Fatalf("gap attempt (1,3) leaked into neighbour pair %d: %+v", i, st.Acceptance[0][i])
		}
	}
}

// TestRunBufferCoversWholeRun: a collector sized by RunBuffer and
// drained only at the end must lose nothing.
func TestRunBufferCoversWholeRun(t *testing.T) {
	spec := tremdSpec(8, 6)
	if n := analysis.RunBuffer(spec); n < 8*6*2 {
		t.Fatalf("RunBuffer %d below the run's segment count", n)
	}
	spec.Bus = core.NewBus()
	col := analysis.New(analysis.ConfigFromSpec(spec))
	col.Attach(spec.Bus, analysis.RunBuffer(spec))
	runVirtual(t, spec, 8)
	st := col.Snapshot()
	if st.BusDropped != 0 {
		t.Fatalf("RunBuffer-sized collector dropped %d events", st.BusDropped)
	}
	seen := uint64(st.MDSegments+st.Events) + st.ResourceEvents
	if seen != spec.Bus.Published() {
		t.Fatalf("collector saw %d events, bus published %d",
			seen, spec.Bus.Published())
	}
}

// TestRestoreShrinksOversizedTraces: a trace restored from a collector
// with a larger TraceLen must converge back to this collector's cap
// instead of growing without bound.
func TestRestoreShrinksOversizedTraces(t *testing.T) {
	big := analysis.New(analysis.Config{DimSizes: []int{3}, Replicas: 3, TraceLen: 8})
	rows := [][]int{{1, 0, 2}, {2, 0, 1}, {1, 0, 2}, {0, 1, 2}, {1, 0, 2}, {2, 0, 1}}
	for e, slots := range rows {
		big.Apply(exEvent(e, slots))
	}
	data, err := big.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	small := analysis.New(analysis.Config{DimSizes: []int{3}, Replicas: 3, TraceLen: 4})
	if err := small.Restore(data); err != nil {
		t.Fatal(err)
	}
	small.Apply(exEvent(6, []int{1, 0, 2}))
	small.Apply(exEvent(7, []int{0, 1, 2}))
	for id, tr := range small.Snapshot().Traces {
		if len(tr) > 4 {
			t.Fatalf("replica %d trace grew to %d entries past the cap of 4: %v", id, len(tr), tr)
		}
	}
	// The tail is the most recent slots.
	if got := small.Snapshot().Traces[0]; got[len(got)-1] != 0 || got[len(got)-2] != 1 {
		t.Fatalf("trace tail %v does not end with the latest slots", got)
	}
}

// TestSeedResumeUsesSnapshotBaseline: resuming without embedded
// analysis state must baseline walks at the checkpoint's slot
// assignment and event counter, not the fresh-run identity.
func TestSeedResumeUsesSnapshotBaseline(t *testing.T) {
	col := analysis.New(analysis.Config{DimSizes: []int{3}, Replicas: 3})
	sn := &core.Snapshot{
		Events: 10,
		Replicas: []core.ReplicaState{
			{ID: 0, Slot: 2}, {ID: 1, Slot: 0}, {ID: 2, Slot: 1},
		},
	}
	if err := col.SeedResume(sn); err != nil {
		t.Fatal(err)
	}
	st := col.Snapshot()
	if st.Events != 10 {
		t.Fatalf("seeded event clock %d, want 10", st.Events)
	}
	if st.Slots[0] != 2 || st.Slots[1] != 0 || st.Slots[2] != 1 {
		t.Fatalf("seeded slots %v, want snapshot assignment [2 0 1]", st.Slots)
	}
	// Replica 0 starts at the top post-seed; walking it to the bottom
	// and back must count one round trip timed from the seed point.
	col.Apply(exEvent(10, []int{1, 0, 2})) // t=11
	col.Apply(exEvent(11, []int{0, 1, 2})) // t=12: bottom (armed... no—opposite)
	col.Apply(exEvent(12, []int{1, 0, 2})) // t=13
	col.Apply(exEvent(13, []int{2, 0, 1})) // t=14: back at top -> round trip
	st = col.Snapshot()
	if st.RoundTrips != 1 || st.MeanRoundTripEvents != 4 {
		t.Fatalf("post-seed walk: %d trips, mean %v; want 1 trip of 4 events (10->14)",
			st.RoundTrips, st.MeanRoundTripEvents)
	}
	// Wrong replica count is rejected.
	if err := col.SeedResume(&core.Snapshot{Replicas: make([]core.ReplicaState, 5)}); err == nil {
		t.Fatal("snapshot with 5 replicas seeded a 3-replica collector")
	}
}

// TestRelaunchExecFeedsHistogram: every MD attempt's execution time is
// observed exactly once — relaunched attempts via their FaultEvent,
// final results via MDEvent — while the segment/failure counters track
// final results only.
func TestRelaunchExecFeedsHistogram(t *testing.T) {
	col := analysis.New(analysis.Config{DimSizes: []int{3}, Replicas: 3})
	col.Apply(core.FaultEvent{Replica: 0, Kind: core.FaultKindRelaunch, Retries: 1, Exec: 50})
	col.Apply(core.FaultEvent{Replica: 0, Kind: core.FaultKindResourceLost, Retries: 1, Exec: 20})
	col.Apply(core.MDEvent{Replica: 0, Cycle: 1, Exec: 100})
	col.Apply(core.MDEvent{Replica: 1, Cycle: 1, Exec: 110, Failed: true}) // terminal: dropped
	col.Apply(core.FaultEvent{Replica: 1, Kind: core.FaultKindDrop, Retries: 3})
	st := col.Snapshot()
	if st.MDExec.Count != 4 {
		t.Fatalf("histogram observed %d attempts, want 4 (2 relaunched + 2 final)", st.MDExec.Count)
	}
	if st.MDExec.Sum != 50+20+100+110 {
		t.Fatalf("histogram sum %v, want 280", st.MDExec.Sum)
	}
	if st.MDSegments != 2 || st.MDFailures != 1 {
		t.Fatalf("segments/failures %d/%d, want 2/1 (final results only)", st.MDSegments, st.MDFailures)
	}
	if st.Faults[core.FaultKindRelaunch] != 1 || st.Faults[core.FaultKindDrop] != 1 {
		t.Fatalf("fault counts %v", st.Faults)
	}
}

// TestRestoreRejectsMismatchedState guards resume against stale or
// foreign collector state.
func TestRestoreRejectsMismatchedState(t *testing.T) {
	col := analysis.New(analysis.Config{DimSizes: []int{4}, Replicas: 4})
	other := analysis.New(analysis.Config{DimSizes: []int{6}, Replicas: 6})
	data, err := other.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Restore(data); err == nil {
		t.Fatal("state from a 6-replica run restored into a 4-replica collector")
	}
	if err := col.Restore([]byte("{trunc")); err == nil {
		t.Fatal("truncated state accepted")
	}
	// Same rank and replica count, different grid shape: 2x6 vs 3x4.
	grid26 := analysis.New(analysis.Config{DimSizes: []int{2, 6}, Replicas: 12})
	grid34 := analysis.New(analysis.Config{DimSizes: []int{3, 4}, Replicas: 12})
	shaped, err := grid26.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if err := grid34.Restore(shaped); err == nil {
		t.Fatal("2x6 state restored into a 3x4 collector")
	}
}
