package analysis_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
)

// pairEvent builds an exchange event attempting the single neighbour
// pair (lo, lo+1) along dimension 0 with the given outcome.
func pairEvent(event, lo int, accepted bool) core.ExchangeEvent {
	return core.ExchangeEvent{
		Event: event, Dim: 0,
		Pairs: []core.PairOutcome{{Lo: lo, Hi: lo + 1, Accepted: accepted}},
	}
}

// TestWindowExactRatiosOnHandBuiltTrace drives one pair with a fully
// known outcome sequence and checks the rolling window against a hand
// computation at every step: with WindowEvents=4, the windowed stats
// must cover exactly the last four outcomes while the cumulative stats
// keep counting everything.
func TestWindowExactRatiosOnHandBuiltTrace(t *testing.T) {
	col := analysis.New(analysis.Config{DimSizes: []int{2}, Replicas: 2, WindowEvents: 4})
	outcomes := []bool{true, true, false, true, false, false, true, false, false, false}
	for e, acc := range outcomes {
		col.Apply(pairEvent(e, 0, acc))

		st := col.Snapshot()
		if st.WindowEvents != 4 {
			t.Fatalf("window depth %d, want 4", st.WindowEvents)
		}
		// Hand-built expectation over the last <=4 outcomes.
		start := 0
		if e+1 > 4 {
			start = e + 1 - 4
		}
		wantAtt, wantAcc := 0, 0
		for _, a := range outcomes[start : e+1] {
			wantAtt++
			if a {
				wantAcc++
			}
		}
		got := st.AcceptanceWindow[0][0]
		if got.Attempted != uint64(wantAtt) || got.Accepted != uint64(wantAcc) {
			t.Fatalf("after %d outcomes: window %d/%d, want %d/%d",
				e+1, got.Accepted, got.Attempted, wantAcc, wantAtt)
		}
		cum := st.Acceptance[0][0]
		if cum.Attempted != uint64(e+1) {
			t.Fatalf("cumulative attempts %d, want %d", cum.Attempted, e+1)
		}
	}
	// Final state: cumulative 4/10, window covers the last 4 (F T F F).
	st := col.Snapshot()
	if r := st.Acceptance[0][0].Ratio(); r != 0.4 {
		t.Fatalf("cumulative ratio %v, want 0.4", r)
	}
	if r := st.AcceptanceWindow[0][0].Ratio(); r != 0.25 {
		t.Fatalf("windowed ratio %v, want 0.25 (1 accept in last 4)", r)
	}
}

// TestWindowWrapAround exercises the ring across many times its
// capacity: after a long rejected prefix, a window-full of accepts must
// read exactly 1.0 — no stale outcome may survive the wrap.
func TestWindowWrapAround(t *testing.T) {
	col := analysis.New(analysis.Config{DimSizes: []int{2}, Replicas: 2, WindowEvents: 8})
	for e := 0; e < 100; e++ {
		col.Apply(pairEvent(e, 0, false))
	}
	for e := 100; e < 108; e++ {
		col.Apply(pairEvent(e, 0, true))
	}
	st := col.Snapshot()
	got := st.AcceptanceWindow[0][0]
	if got.Attempted != 8 || got.Accepted != 8 {
		t.Fatalf("window %d/%d after wrap, want 8/8", got.Accepted, got.Attempted)
	}
	if cum := st.Acceptance[0][0]; cum.Attempted != 108 || cum.Accepted != 8 {
		t.Fatalf("cumulative %d/%d, want 8/108", cum.Accepted, cum.Attempted)
	}
}

// TestWindowSkipsGapPairs is the controller-safety assertion: an
// attempt bridging a dead replica's window (Hi > Lo+1) must not enter
// the rolling window either, or a feedback trigger consuming it would
// chase dead-replica artifacts.
func TestWindowSkipsGapPairs(t *testing.T) {
	col := analysis.New(analysis.Config{DimSizes: []int{4}, Replicas: 4, WindowEvents: 4})
	col.Apply(core.ExchangeEvent{
		Event: 0, Dim: 0,
		Pairs: []core.PairOutcome{
			{Lo: 0, Hi: 1, Accepted: true},
			{Lo: 1, Hi: 3, Accepted: true}, // window 2 dead: bridged pair
		},
		Slots: []int{1, 0, 2, 3},
	})
	st := col.Snapshot()
	if got := st.AcceptanceWindow[0][0]; got.Attempted != 1 || got.Accepted != 1 {
		t.Fatalf("pair (0,1) window %+v, want 1/1", got)
	}
	for _, i := range []int{1, 2} {
		if got := st.AcceptanceWindow[0][i]; got.Attempted != 0 {
			t.Fatalf("gap attempt (1,3) leaked into windowed pair %d: %+v", i, got)
		}
	}
}

// TestWindowSurvivesRestore: the rolling windows round-trip through
// EncodeState/Restore, and a snapshot from a collector with a larger
// WindowEvents restores into a smaller one keeping the newest outcomes.
func TestWindowSurvivesRestore(t *testing.T) {
	big := analysis.New(analysis.Config{DimSizes: []int{2}, Replicas: 2, WindowEvents: 8})
	outcomes := []bool{true, true, true, true, false, true, false, false}
	for e, acc := range outcomes {
		big.Apply(pairEvent(e, 0, acc))
	}
	data, err := big.EncodeState()
	if err != nil {
		t.Fatal(err)
	}

	same := analysis.New(analysis.Config{DimSizes: []int{2}, Replicas: 2, WindowEvents: 8})
	if err := same.Restore(data); err != nil {
		t.Fatal(err)
	}
	if got := same.Snapshot().AcceptanceWindow[0][0]; got.Attempted != 8 || got.Accepted != 5 {
		t.Fatalf("same-size restore window %d/%d, want 5/8", got.Accepted, got.Attempted)
	}

	small := analysis.New(analysis.Config{DimSizes: []int{2}, Replicas: 2, WindowEvents: 4})
	if err := small.Restore(data); err != nil {
		t.Fatal(err)
	}
	// Newest four outcomes are F T F F -> 1/4.
	if got := small.Snapshot().AcceptanceWindow[0][0]; got.Attempted != 4 || got.Accepted != 1 {
		t.Fatalf("shrinking restore window %d/%d, want 1/4", got.Accepted, got.Attempted)
	}
	// The shrunk ring must keep rolling correctly.
	small.Apply(pairEvent(8, 0, true))
	if got := small.Snapshot().AcceptanceWindow[0][0]; got.Attempted != 4 || got.Accepted != 2 {
		t.Fatalf("post-restore push window %d/%d, want 2/4", got.Accepted, got.Attempted)
	}
}

// TestRestoreAcceptsPreWindowState: a checkpoint written before rolling
// windows existed (no pair_windows field) must restore with empty
// windows rather than fail — old snapshots stay usable.
func TestRestoreAcceptsPreWindowState(t *testing.T) {
	src := analysis.New(analysis.Config{DimSizes: []int{3}, Replicas: 3, WindowEvents: 4})
	src.Apply(pairEvent(0, 0, true))
	data, err := src.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	delete(raw, "pair_windows")
	old, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}

	col := analysis.New(analysis.Config{DimSizes: []int{3}, Replicas: 3, WindowEvents: 4})
	if err := col.Restore(old); err != nil {
		t.Fatalf("pre-window state rejected: %v", err)
	}
	st := col.Snapshot()
	if st.Acceptance[0][0].Attempted != 1 {
		t.Fatalf("cumulative stats lost: %+v", st.Acceptance[0][0])
	}
	if got := st.AcceptanceWindow[0][0]; got.Attempted != 0 {
		t.Fatalf("window not empty after pre-window restore: %+v", got)
	}
	// And the collector keeps collecting into the fresh windows.
	col.Apply(pairEvent(1, 1, false))
	if got := col.Snapshot().AcceptanceWindow[0][1]; got.Attempted != 1 || got.Accepted != 0 {
		t.Fatalf("post-restore window %+v, want 0/1", got)
	}
}

// TestRestoreRejectsCorruptWindow: ring internals come from untrusted
// checkpoint JSON; out-of-range indices or an inconsistent accepted
// count must fail Restore instead of panicking on the first
// post-resume push.
func TestRestoreRejectsCorruptWindow(t *testing.T) {
	src := analysis.New(analysis.Config{DimSizes: []int{2}, Replicas: 2, WindowEvents: 4})
	for e := 0; e < 4; e++ {
		src.Apply(pairEvent(e, 0, e%2 == 0))
	}
	data, err := src.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(field string, value int) []byte {
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(data, &raw); err != nil {
			t.Fatal(err)
		}
		var wins [][]map[string]json.RawMessage
		if err := json.Unmarshal(raw["pair_windows"], &wins); err != nil {
			t.Fatal(err)
		}
		wins[0][0][field] = json.RawMessage(fmt.Sprintf("%d", value))
		patched, err := json.Marshal(wins)
		if err != nil {
			t.Fatal(err)
		}
		raw["pair_windows"] = patched
		out, err := json.Marshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, tc := range []struct {
		field string
		value int
	}{
		{"head", 70},
		{"n", 9},
		{"accepted", 4},
	} {
		col := analysis.New(analysis.Config{DimSizes: []int{2}, Replicas: 2, WindowEvents: 4})
		if err := col.Restore(corrupt(tc.field, tc.value)); err == nil {
			t.Errorf("corrupt %s=%d accepted by Restore", tc.field, tc.value)
		}
	}
}

// TestWeightedRatio: the attempt-weighted mean over pairs.
func TestWeightedRatio(t *testing.T) {
	pairs := []analysis.PairStat{
		{Attempted: 8, Accepted: 4},
		{Attempted: 2, Accepted: 2},
		{Attempted: 0, Accepted: 0},
	}
	if got := analysis.WeightedRatio(pairs); got != 0.6 {
		t.Fatalf("weighted ratio %v, want 0.6", got)
	}
	if got := analysis.WeightedRatio(nil); got != 0 {
		t.Fatalf("empty weighted ratio %v, want 0", got)
	}
}
