// Package analysis implements online exchange statistics for a running
// REMD simulation: per-neighbour-pair acceptance ratios per dimension,
// per-replica slot random walks with round-trip times through the
// ladder, an end-to-end mixing metric (fraction of replicas that
// traversed the full ladder) and rolling MD/exchange overhead
// histograms. A Collector consumes the typed event bus published by the
// dispatcher (core.Bus) through a bounded subscription, so it can run
// behind a live HTTP status server without ever touching the hot loop.
//
// All collector state is serializable: EncodeState/Restore round-trip it
// through core.Snapshot's Analysis field, so statistics survive
// checkpoint/restart exactly. To keep that exactness, the collector's
// internal clock is the exchange-event index, not virtual seconds — a
// resumed run replays the same event sequence even though its absolute
// runtime times shift by a fresh batch-queue wait.
//
// The rolling per-pair windows (Stats.AcceptanceWindow, the last
// WindowEvents outcomes of each neighbour pair) are the observable
// counterpart of the signal core.FeedbackTrigger steers on: the
// trigger measures per dimension over the same ring structure
// (internal/ring), so the dashboard's rolling view and the
// controller's measurement cannot drift apart.
package analysis

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/task"
)

// Config sizes a Collector for one simulation.
type Config struct {
	// DimSizes is the number of windows along each exchange dimension.
	DimSizes []int
	// Replicas is the total replica count (product of DimSizes).
	Replicas int
	// TraceLen bounds the per-replica slot-trace tail kept for
	// inspection (default 64; snapshots grow with it).
	TraceLen int
	// WindowEvents is the rolling-window depth of the per-pair
	// acceptance statistics: the last WindowEvents outcomes of each
	// neighbour pair (default DefaultWindowEvents). Cumulative ratios
	// answer "how did the run go"; windowed ratios answer "how is it
	// going right now" — the signal a feedback trigger consumes.
	WindowEvents int
	// SecondsBounds are the histogram bucket upper bounds for the MD and
	// exchange overhead histograms (default DefaultSecondsBounds).
	SecondsBounds []float64
}

// DefaultWindowEvents is the default rolling-window depth per pair.
const DefaultWindowEvents = 64

// ConfigFromSpec derives the collector configuration from a simulation
// spec.
func ConfigFromSpec(spec *core.Spec) Config {
	sizes := make([]int, len(spec.Dims))
	for i, d := range spec.Dims {
		sizes[i] = len(d.Values)
	}
	return Config{DimSizes: sizes, Replicas: spec.Replicas()}
}

// DefaultSecondsBounds spans milliseconds (localexec) to hours (virtual
// supercomputer cycles).
var DefaultSecondsBounds = []float64{
	0.001, 0.01, 0.1, 1, 10, 30, 60, 120, 300, 600, 1800, 3600,
}

// PairStat counts the exchange attempts of one neighbour pair.
type PairStat struct {
	Attempted uint64 `json:"attempted"`
	Accepted  uint64 `json:"accepted"`
}

// Ratio returns accepted/attempted (0 if never attempted).
func (p PairStat) Ratio() float64 {
	if p.Attempted == 0 {
		return 0
	}
	return float64(p.Accepted) / float64(p.Attempted)
}

// windowStat summarizes one pair's rolling window as a PairStat
// (attempted = buffered outcomes). The window itself is the shared
// ring.Bool, the same structure core.FeedbackTrigger measures on.
func windowStat(r *ring.Bool) PairStat {
	return PairStat{Attempted: uint64(r.N), Accepted: uint64(r.Accepted)}
}

// Histogram is a fixed-bound histogram in the Prometheus style: Counts
// has one bucket per bound plus a final overflow (+Inf) bucket.
type Histogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// NewHistogram builds an empty histogram over the given bucket bounds.
func NewHistogram(bounds []float64) Histogram {
	return Histogram{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Sum += v
	h.Count++
}

// Mean returns the sample mean (0 for no samples).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// walk is one replica's random-walk state through the flattened slot
// ladder (slot 0 = bottom, nSlots-1 = top). The collector's clock for
// round trips is the exchange-event index: the initial assignment is
// time 0 and exchange event e completes at time e+1.
type walk struct {
	// Slot is the replica's current slot.
	Slot int `json:"slot"`
	// StartEnd is the endpoint the current round started at (-1 none,
	// 0 bottom, 1 top); StartAt its event time (last unarmed touch).
	StartEnd int `json:"start_end"`
	StartAt  int `json:"start_at"`
	// Armed marks that the opposite endpoint was visited since StartAt.
	Armed bool `json:"armed,omitempty"`
	// SeenBottom/SeenTop feed the full-traversal mixing metric.
	SeenBottom bool `json:"seen_bottom,omitempty"`
	SeenTop    bool `json:"seen_top,omitempty"`
	// RoundTrips counts completed endpoint-to-endpoint-and-back
	// traversals; TripEvents sums their durations in exchange events.
	RoundTrips int `json:"round_trips,omitempty"`
	TripEvents int `json:"trip_events,omitempty"`
	// Trace is the tail window of recent slots (after each event).
	Trace []int `json:"trace,omitempty"`
}

// state is the complete serializable collector state.
type state struct {
	Events      int               `json:"events"`
	MDSegments  int               `json:"md_segments"`
	MDFailures  int               `json:"md_failures"`
	Faults      map[string]uint64 `json:"faults"`
	Pairs       [][]PairStat      `json:"pairs"`
	PairWindows [][]ring.Bool     `json:"pair_windows,omitempty"`
	Walks       []walk            `json:"walks"`
	MDExec      Histogram         `json:"md_exec"`
	ExchangeOvh Histogram         `json:"exchange_overhead"`
	// ResourceEvents counts pilot lifecycle events, Preemptions the
	// preemption notices among them; PilotCores is the latest core count
	// per pilot slot (nil until a resource event arrives — quiet runs
	// publish none).
	ResourceEvents uint64      `json:"resource_events,omitempty"`
	Preemptions    uint64      `json:"preemptions,omitempty"`
	PilotCores     map[int]int `json:"pilot_cores,omitempty"`
}

// Collector accumulates online statistics from simulation events. All
// methods are safe for concurrent use; a live HTTP server can read while
// the simulation publishes.
type Collector struct {
	mu      sync.Mutex
	cfg     Config
	sub     *core.Subscription
	scratch []core.Event
	st      state
}

// New builds a collector for the given configuration. Replica i is
// assumed to start in slot i (the simulation's initial assignment);
// Restore overwrites this for resumed runs.
func New(cfg Config) *Collector {
	if cfg.TraceLen <= 0 {
		cfg.TraceLen = 64
	}
	if cfg.WindowEvents <= 0 {
		cfg.WindowEvents = DefaultWindowEvents
	}
	if len(cfg.SecondsBounds) == 0 {
		cfg.SecondsBounds = DefaultSecondsBounds
	}
	c := &Collector{cfg: cfg}
	c.st = state{
		Faults:      map[string]uint64{},
		Pairs:       make([][]PairStat, len(cfg.DimSizes)),
		PairWindows: make([][]ring.Bool, len(cfg.DimSizes)),
		Walks:       make([]walk, cfg.Replicas),
		MDExec:      NewHistogram(cfg.SecondsBounds),
		ExchangeOvh: NewHistogram(cfg.SecondsBounds),
	}
	for d, n := range cfg.DimSizes {
		if n > 1 {
			c.st.Pairs[d] = make([]PairStat, n-1)
			c.st.PairWindows[d] = make([]ring.Bool, n-1)
		}
	}
	for i := range c.st.Walks {
		w := &c.st.Walks[i]
		w.Slot = i
		w.StartEnd = -1
		c.touchEndpoint(w, 0)
	}
	return c
}

// Attach subscribes the collector to a bus with the given ring capacity
// (non-positive selects a 8192-event ring). Call Sync to drain.
//
// The ring must cover every event published between two Syncs or the
// oldest are lost (Stats.BusDropped counts them). A collector that is
// only drained on demand — an HTTP scrape, a checkpoint, the final
// report — should size the ring for the whole run: see RunBuffer.
func (c *Collector) Attach(bus *core.Bus, buffer int) {
	if buffer <= 0 {
		buffer = 8192
	}
	c.mu.Lock()
	c.sub = bus.Subscribe(buffer)
	c.mu.Unlock()
}

// RunBuffer returns a ring capacity covering every event a run of the
// spec can publish — one MDEvent per segment, one ExchangeEvent per
// exchange, FaultEvents bounded by the retry budgets — so a collector
// drained only on demand still sees the complete stream. Capped at 2^20
// entries (a few MB) for truly enormous specs; beyond that, drain
// periodically.
func RunBuffer(spec *core.Spec) int {
	segments := spec.Replicas() * spec.Cycles * (len(spec.Dims) + 1)
	retries := spec.MaxRetries
	if retries <= 0 {
		retries = 3 // core's default
	}
	n := segments*(2+retries) + 4096
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

// Sync drains the subscription and applies every pending event. It is
// called by readers (the HTTP server, the checkpoint hook) so statistics
// are current at observation time without polling goroutines.
func (c *Collector) Sync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sub == nil {
		return
	}
	c.scratch = c.sub.Drain(c.scratch[:0])
	for _, ev := range c.scratch {
		c.apply(ev)
	}
}

// Apply feeds one event directly (tests, or callers without a bus).
func (c *Collector) Apply(ev core.Event) {
	c.mu.Lock()
	c.apply(ev)
	c.mu.Unlock()
}

func (c *Collector) apply(ev core.Event) {
	switch e := ev.(type) {
	case core.MDEvent:
		c.st.MDSegments++
		if e.Failed {
			c.st.MDFailures++
		}
		c.st.MDExec.Observe(e.Exec)
	case core.FaultEvent:
		c.st.Faults[e.Kind]++
		// Relaunched attempts never reach an MDEvent; their exec feeds
		// the histogram here so every attempt is observed exactly once
		// (a drop's exec arrives on its terminal MDEvent instead).
		// MDSegments/MDFailures stay final-result counters.
		if e.Kind != core.FaultKindDrop {
			c.st.MDExec.Observe(e.Exec)
		}
	case core.ResourceEvent:
		c.st.ResourceEvents++
		if c.st.PilotCores == nil {
			c.st.PilotCores = map[int]int{}
		}
		c.st.PilotCores[e.Pilot] = e.Cores
		if e.Kind == task.ResourcePreempt {
			c.st.Preemptions++
		}
	case core.ExchangeEvent:
		c.applyExchange(e)
	}
}

func (c *Collector) applyExchange(e core.ExchangeEvent) {
	for _, p := range e.Pairs {
		// Only true neighbour attempts feed the per-pair ladder stats;
		// pairs bridging a dead replica's window (Hi > Lo+1) would
		// pollute the (Lo, Lo+1) ratio with swaps that never involved
		// that pair.
		if p.Hi != p.Lo+1 {
			continue
		}
		if e.Dim < len(c.st.Pairs) && p.Lo >= 0 && p.Lo < len(c.st.Pairs[e.Dim]) {
			ps := &c.st.Pairs[e.Dim][p.Lo]
			ps.Attempted++
			if p.Accepted {
				ps.Accepted++
			}
			c.st.PairWindows[e.Dim][p.Lo].Push(p.Accepted, c.cfg.WindowEvents)
		}
	}
	c.st.ExchangeOvh.Observe(e.EXWall)
	c.st.Events++
	now := c.st.Events // event e completes at collector time e+1
	for id, slot := range e.Slots {
		if id >= len(c.st.Walks) {
			break
		}
		w := &c.st.Walks[id]
		w.Slot = slot
		// >= (with trim), not ==: a Restore can hand us a trace longer
		// than this collector's TraceLen.
		if len(w.Trace) >= c.cfg.TraceLen {
			n := copy(w.Trace, w.Trace[len(w.Trace)-c.cfg.TraceLen+1:])
			w.Trace = w.Trace[:n]
		}
		w.Trace = append(w.Trace, slot)
		c.touchEndpoint(w, now)
	}
}

// touchEndpoint advances the round-trip state machine for a replica
// observed at its current slot at collector time t.
func (c *Collector) touchEndpoint(w *walk, t int) {
	top := c.cfg.Replicas - 1
	var end int
	switch w.Slot {
	case 0:
		end = 0
		w.SeenBottom = true
	case top:
		end = 1
		w.SeenTop = true
	default:
		return
	}
	if top == 0 {
		return // degenerate one-slot ladder
	}
	switch {
	case w.StartEnd == -1:
		w.StartEnd = end
		w.StartAt = t
	case end == w.StartEnd:
		if w.Armed {
			// Completed start -> opposite -> start: one round trip.
			w.RoundTrips++
			w.TripEvents += t - w.StartAt
			w.Armed = false
		}
		// Unarmed revisits restart the clock: a round trip is measured
		// from the last departure of the starting endpoint.
		w.StartAt = t
	default:
		w.Armed = true
	}
}

// Stats is the collector's externally visible snapshot (the /stats
// payload).
type Stats struct {
	// Events is the number of exchange events observed; MDSegments and
	// MDFailures count finally-processed MD segments.
	Events     int               `json:"events"`
	MDSegments int               `json:"md_segments"`
	MDFailures int               `json:"md_failures"`
	Faults     map[string]uint64 `json:"faults"`
	// Acceptance holds, per dimension, the per-neighbour-pair exchange
	// statistics: entry i covers the pair of windows (i, i+1).
	Acceptance [][]PairStat `json:"acceptance"`
	// AcceptanceWindow is the rolling-window counterpart of Acceptance:
	// the same pair layout, restricted to each pair's last WindowEvents
	// outcomes (Attempted is the number of outcomes currently buffered).
	AcceptanceWindow [][]PairStat `json:"acceptance_window"`
	// WindowEvents is the configured rolling-window depth.
	WindowEvents int `json:"window_events"`
	// RoundTrips counts completed ladder round trips over all replicas;
	// MeanRoundTripEvents is their mean duration in exchange events.
	RoundTrips          int     `json:"round_trips"`
	MeanRoundTripEvents float64 `json:"mean_round_trip_events"`
	// FullTraversalFraction is the fraction of replicas that have
	// visited both ends of the flattened ladder (end-to-end mixing).
	FullTraversalFraction float64 `json:"full_traversal_fraction"`
	// Slots is the current slot per replica; Traces the recent tail of
	// each replica's slot walk.
	Slots  []int   `json:"slots"`
	Traces [][]int `json:"traces,omitempty"`
	// MDExec and ExchangeOverhead are the rolling duration histograms
	// (seconds).
	MDExec           Histogram `json:"md_exec"`
	ExchangeOverhead Histogram `json:"exchange_overhead"`
	// ResourceEvents counts pilot lifecycle events observed on the bus;
	// Preemptions the preemption notices among them.
	ResourceEvents uint64 `json:"resource_events"`
	Preemptions    uint64 `json:"preemptions"`
	// PilotCores is the latest core count per pilot slot, present only
	// for runs that published resource events (elastic runtimes).
	PilotCores map[int]int `json:"pilot_cores,omitempty"`
	// BusDropped counts events this collector lost to ring overflow.
	BusDropped uint64 `json:"bus_dropped"`
}

// Snapshot syncs the subscription and returns a deep copy of the
// current statistics.
func (c *Collector) Snapshot() Stats { return c.snapshot(true) }

// SnapshotLite is Snapshot without the per-replica trace clones —
// cheaper for readers that never render them (/status, /metrics scrape
// this every few seconds).
func (c *Collector) SnapshotLite() Stats { return c.snapshot(false) }

func (c *Collector) snapshot(withTraces bool) Stats {
	c.Sync()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Events:           c.st.Events,
		MDSegments:       c.st.MDSegments,
		MDFailures:       c.st.MDFailures,
		Faults:           map[string]uint64{},
		Acceptance:       make([][]PairStat, len(c.st.Pairs)),
		AcceptanceWindow: make([][]PairStat, len(c.st.Pairs)),
		WindowEvents:     c.cfg.WindowEvents,
		Slots:            make([]int, len(c.st.Walks)),
	}
	if withTraces {
		s.Traces = make([][]int, len(c.st.Walks))
	}
	for k, v := range c.st.Faults {
		s.Faults[k] = v
	}
	for d, pairs := range c.st.Pairs {
		s.Acceptance[d] = append([]PairStat(nil), pairs...)
		if len(pairs) > 0 {
			ws := make([]PairStat, len(pairs))
			for i := range c.st.PairWindows[d] {
				ws[i] = windowStat(&c.st.PairWindows[d][i])
			}
			s.AcceptanceWindow[d] = ws
		}
	}
	seenBoth, tripEvents := 0, 0
	for i := range c.st.Walks {
		w := &c.st.Walks[i]
		s.Slots[i] = w.Slot
		if withTraces {
			s.Traces[i] = append([]int(nil), w.Trace...)
		}
		s.RoundTrips += w.RoundTrips
		tripEvents += w.TripEvents
		if w.SeenBottom && w.SeenTop {
			seenBoth++
		}
	}
	if s.RoundTrips > 0 {
		s.MeanRoundTripEvents = float64(tripEvents) / float64(s.RoundTrips)
	}
	if n := len(c.st.Walks); n > 0 {
		s.FullTraversalFraction = float64(seenBoth) / float64(n)
	}
	s.ResourceEvents = c.st.ResourceEvents
	s.Preemptions = c.st.Preemptions
	if len(c.st.PilotCores) > 0 {
		s.PilotCores = make(map[int]int, len(c.st.PilotCores))
		for k, v := range c.st.PilotCores {
			s.PilotCores[k] = v
		}
	}
	s.MDExec = cloneHistogram(c.st.MDExec)
	s.ExchangeOverhead = cloneHistogram(c.st.ExchangeOvh)
	if c.sub != nil {
		s.BusDropped = c.sub.Dropped()
	}
	return s
}

func cloneHistogram(h Histogram) Histogram {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Counts = append([]uint64(nil), h.Counts...)
	return h
}

// EncodeState syncs and serializes the full collector state for
// embedding in a core.Snapshot (the Analysis field).
func (c *Collector) EncodeState() ([]byte, error) {
	c.Sync()
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(&c.st)
}

// SeedResume aligns a fresh collector with a resumed simulation whose
// checkpoint carried no analysis state (e.g. one written without a
// collector attached): the event clock continues from the snapshot's
// counter and each walk starts from the snapshot's slot assignment
// instead of the fresh-run identity. The pre-snapshot event stream is
// genuinely lost, so acceptance ratios, round trips, traversal flags
// and histograms cover the resumed portion only — callers should say
// so.
func (c *Collector) SeedResume(sn *core.Snapshot) error {
	if len(sn.Replicas) != c.cfg.Replicas {
		return fmt.Errorf("analysis: snapshot has %d replicas, collector %d",
			len(sn.Replicas), c.cfg.Replicas)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.Events = sn.Events
	for _, rs := range sn.Replicas {
		if rs.ID < 0 || rs.ID >= len(c.st.Walks) {
			continue
		}
		w := &c.st.Walks[rs.ID]
		*w = walk{Slot: rs.Slot, StartEnd: -1}
		c.touchEndpoint(w, sn.Events)
	}
	return nil
}

// Restore replaces the collector state with one serialized by
// EncodeState; used when resuming a checkpointed run so post-resume
// statistics continue from the pre-snapshot totals.
func (c *Collector) Restore(data []byte) error {
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("analysis: decoding collector state: %v", err)
	}
	if len(st.Walks) != c.cfg.Replicas {
		return fmt.Errorf("analysis: state has %d replicas, collector %d",
			len(st.Walks), c.cfg.Replicas)
	}
	if len(st.Pairs) != len(c.cfg.DimSizes) {
		return fmt.Errorf("analysis: state has %d dimensions, collector %d",
			len(st.Pairs), len(c.cfg.DimSizes))
	}
	if st.PairWindows != nil && len(st.PairWindows) != len(st.Pairs) {
		return fmt.Errorf("analysis: state has %d pair-window dimensions, %d pair dimensions",
			len(st.PairWindows), len(st.Pairs))
	}
	// Same rank and replica count do not imply the same grid: a 2x6
	// checkpoint must not restore into a 3x4 collector.
	for d, n := range c.cfg.DimSizes {
		want := 0
		if n > 1 {
			want = n - 1
		}
		if len(st.Pairs[d]) != want {
			return fmt.Errorf("analysis: state has %d pairs along dimension %d, collector ladder has %d windows",
				len(st.Pairs[d]), d, n)
		}
		if st.PairWindows != nil && len(st.PairWindows[d]) != want {
			return fmt.Errorf("analysis: state has %d pair windows along dimension %d, collector ladder has %d windows",
				len(st.PairWindows[d]), d, n)
		}
	}
	// Snapshots written before rolling windows existed carry none:
	// start the windows empty. A snapshot from a different WindowEvents
	// configuration is re-rung, keeping the newest outcomes.
	if st.PairWindows == nil {
		st.PairWindows = make([][]ring.Bool, len(st.Pairs))
	}
	for d := range st.PairWindows {
		if st.PairWindows[d] == nil && len(st.Pairs[d]) > 0 {
			st.PairWindows[d] = make([]ring.Bool, len(st.Pairs[d]))
		}
		for i := range st.PairWindows[d] {
			// Rings come from untrusted JSON: corrupt indices would
			// panic inside Push on the first post-resume event.
			if err := st.PairWindows[d][i].Check(); err != nil {
				return fmt.Errorf("analysis: state window for pair (%d,%d) of dimension %d: %v",
					i, i+1, d, err)
			}
			st.PairWindows[d][i].Rebuild(c.cfg.WindowEvents)
		}
	}
	for i := range st.Walks {
		if s := st.Walks[i].Slot; s < 0 || s >= c.cfg.Replicas {
			return fmt.Errorf("analysis: state walk %d at slot %d, outside [0,%d)",
				i, s, c.cfg.Replicas)
		}
	}
	if st.Faults == nil {
		st.Faults = map[string]uint64{}
	}
	c.mu.Lock()
	c.st = st
	c.mu.Unlock()
	return nil
}

// WeightedRatio returns the attempt-weighted mean acceptance ratio over
// a set of pair statistics (0 when nothing was attempted). Weighting by
// attempts makes the mean of a partially filled rolling window honest:
// a pair with one buffered outcome does not count as much as one with a
// full ring.
func WeightedRatio(pairs []PairStat) float64 {
	var att, acc uint64
	for _, p := range pairs {
		att += p.Attempted
		acc += p.Accepted
	}
	if att == 0 {
		return 0
	}
	return float64(acc) / float64(att)
}
