// Package ckpt writes and reads checkpoint files atomically. A
// checkpoint consumer (repex -resume, the repexd POST /runs resume
// path) must never observe a torn file: WriteAtomic stages the bytes in
// a uniquely-named temp file in the destination directory, syncs it to
// stable storage and renames it over the destination, so every reader
// sees either the previous complete checkpoint or the new one — even
// across a crash mid-write or two writers racing on the same path.
package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteAtomic writes data to path atomically: temp file in the same
// directory (rename is only atomic within a filesystem), fsync, rename.
// The temp name is unique per call, so concurrent writers to the same
// path never corrupt each other — last rename wins with a complete
// file. On error the temp file is removed and the destination is left
// untouched.
func WriteAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-")
	if err != nil {
		return fmt.Errorf("ckpt: staging checkpoint %s: %v", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("ckpt: writing checkpoint %s: %v", path, err)
	}
	// Flush file contents before the rename publishes the name: a crash
	// between rename and sync must not leave a complete-looking empty
	// file at the destination.
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: syncing checkpoint %s: %v", path, err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("ckpt: checkpoint permissions %s: %v", path, err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		tmp = nil
		return fmt.Errorf("ckpt: closing checkpoint %s: %v", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		tmp = nil
		return fmt.Errorf("ckpt: publishing checkpoint %s: %v", path, err)
	}
	tmp = nil
	return nil
}

// Load reads a checkpoint file, failing fast with the path in the
// message so a mistyped -resume or a missing daemon snapshot is
// diagnosed immediately.
func Load(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading checkpoint %s: %v", path, err)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("ckpt: checkpoint %s is empty", path)
	}
	return data, nil
}
