package ckpt_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/ckpt"
)

func TestWriteAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	want := []byte(`{"version":3}`)
	if err := ckpt.WriteAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("loaded %q, want %q", got, want)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("checkpoint mode %v, want 0644", fi.Mode().Perm())
	}
}

func TestWriteAtomicLeavesNoTempResidue(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	for i := 0; i < 5; i++ {
		if err := ckpt.WriteAtomic(path, []byte(fmt.Sprintf("gen %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp residue %s after successful writes", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries in checkpoint dir, want only the checkpoint", len(entries))
	}
}

func TestWriteAtomicOverwritesCompletely(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := ckpt.WriteAtomic(path, []byte(strings.Repeat("x", 4096))); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.WriteAtomic(path, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "short" {
		t.Fatalf("shrinking overwrite left %d bytes", len(got))
	}
}

// Concurrent writers on one path must each publish a complete file:
// unique temp names mean the final content is exactly one writer's
// payload, never an interleaving.
func TestWriteAtomicConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	const writers = 16
	payload := func(i int) string { return strings.Repeat(fmt.Sprintf("%02d", i), 2048) }
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ckpt.WriteAtomic(path, []byte(payload(i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	for i := 0; i < writers; i++ {
		if string(got) == payload(i) {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("final checkpoint is no single writer's payload (%d bytes)", len(got))
	}
}

func TestWriteAtomicErrorLeavesDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "missing-subdir", "snap.json")
	if err := ckpt.WriteAtomic(path, []byte("x")); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed write left %d entries behind", len(entries))
	}
}

func TestLoadFailsFast(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.json")
	if _, err := ckpt.Load(missing); err == nil || !strings.Contains(err.Error(), missing) {
		t.Fatalf("missing checkpoint error %v does not name the path", err)
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.Load(empty); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty checkpoint error %v", err)
	}
}

// TestWriteAtomicFailurePaths walks the distinct ways a write can fail
// mid-flight and asserts the two contract points each time: the error
// names the failing stage, and the destination (plus any unrelated
// files) is exactly as it was before the call. chmod-based permission
// traps do not work under root (CI containers), so the cases trip
// filesystem-structure errors instead.
func TestWriteAtomicFailurePaths(t *testing.T) {
	t.Run("parent is a file", func(t *testing.T) {
		dir := t.TempDir()
		parent := filepath.Join(dir, "parent")
		if err := os.WriteFile(parent, []byte("not a dir"), 0o644); err != nil {
			t.Fatal(err)
		}
		err := ckpt.WriteAtomic(filepath.Join(parent, "snap.json"), []byte("x"))
		if err == nil || !strings.Contains(err.Error(), "staging") {
			t.Fatalf("error %v, want a staging failure", err)
		}
		got, readErr := os.ReadFile(parent)
		if readErr != nil || string(got) != "not a dir" {
			t.Fatalf("parent file disturbed: %q, %v", got, readErr)
		}
	})

	t.Run("destination is a directory", func(t *testing.T) {
		dir := t.TempDir()
		dest := filepath.Join(dir, "snap.json")
		if err := os.Mkdir(dest, 0o755); err != nil {
			t.Fatal(err)
		}
		err := ckpt.WriteAtomic(dest, []byte("x"))
		if err == nil || !strings.Contains(err.Error(), "publishing") {
			t.Fatalf("error %v, want a publishing failure", err)
		}
		fi, statErr := os.Stat(dest)
		if statErr != nil || !fi.IsDir() {
			t.Fatalf("destination directory disturbed: %v, %v", fi, statErr)
		}
		// The staged temp file must not linger after the failed rename.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Fatalf("failed publish left %d entries, want just the destination", len(entries))
		}
	})

	t.Run("pre-existing temp file survives", func(t *testing.T) {
		// Temp names are unique per call, so a stale temp from a
		// crashed writer is never clobbered or published.
		dir := t.TempDir()
		path := filepath.Join(dir, "snap.json")
		stale := path + ".tmp-stale"
		if err := os.WriteFile(stale, []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ckpt.WriteAtomic(path, []byte("fresh")); err != nil {
			t.Fatal(err)
		}
		got, err := ckpt.Load(path)
		if err != nil || string(got) != "fresh" {
			t.Fatalf("destination %q, %v", got, err)
		}
		if data, err := os.ReadFile(stale); err != nil || string(data) != "stale" {
			t.Fatalf("stale temp disturbed: %q, %v", data, err)
		}
	})
}
