// Package trace is the run flight recorder: a low-overhead, bounded
// span log of one simulation's timeline. The dispatcher records one
// Span per MD segment, exchange phase (with pair-eval and single-point
// sub-spans), checkpoint write, controller decision and fault action;
// the Recorder keeps the most recent spans in a fixed ring with
// drop-oldest semantics and a drop counter, mirroring the event bus
// discipline — recording never blocks and never grows, so an attached
// recorder cannot perturb the run it observes.
//
// Spans carry virtual-time instants (the simulation clock in seconds),
// which makes the recorded timeline reproducible run-to-run under the
// virtual engine. Export renders a snapshot as Chrome trace-event JSON
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing:
// one track per replica, one per pilot, one per exchange dimension and
// one per dimension's feedback controller.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind classifies a span.
type Kind uint8

const (
	// KindMD is one replica's MD segment: first submission to final
	// completion, spanning every relaunch retry in between.
	KindMD Kind = iota
	// KindExchange is one exchange phase along a dimension.
	KindExchange
	// KindSPE is the single-point-energy task wave inside an exchange
	// phase (salt dimensions).
	KindSPE
	// KindPairs is the Metropolis pair sweep inside an exchange phase:
	// pre-drawn uniforms, sharded probability evaluation, serial
	// decisions and swaps.
	KindPairs
	// KindCheckpoint is one snapshot capture and delivery.
	KindCheckpoint
	// KindController is one feedback-controller decision after an
	// exchange event along the controlled dimension.
	KindController
	// KindFault is one fault-handling action (relaunch, resource-lost
	// resubmission, terminal drop, cancellation discard).
	KindFault
	// KindResource is one pilot lifecycle instant (launch, node-loss
	// shrink, preemption notice, resize, expiry) on the pilot's track.
	KindResource
	// KindRespace is one online ladder re-fit instant on the dimension's
	// controller track: the saturated dimension's window values were
	// replaced by the flat-acceptance re-fit.
	KindRespace
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMD:
		return "md"
	case KindExchange:
		return "exchange"
	case KindSPE:
		return "spe"
	case KindPairs:
		return "pairs"
	case KindCheckpoint:
		return "checkpoint"
	case KindController:
		return "controller"
	case KindFault:
		return "fault"
	case KindResource:
		return "resource"
	case KindRespace:
		return "respace"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Span is one recorded interval (or instant, Dur 0) on the run's
// timeline. Times are in the runtime's clock — virtual seconds for the
// pilot backend — so identical virtual runs record identical spans.
// Which identity fields are meaningful depends on Kind; the rest stay
// zero.
type Span struct {
	Kind  Kind    `json:"kind"`
	Start float64 `json:"start"`
	Dur   float64 `json:"dur"`
	// Replica identifies MD and fault spans.
	Replica int `json:"replica,omitempty"`
	// Dim is the exchange dimension of MD, exchange and controller
	// spans.
	Dim int `json:"dim,omitempty"`
	// Pilot is the pilot that executed an MD span: the routing index
	// under a multi-pilot runtime, the failover generation (0 for the
	// initial pilot) under a single-pilot one.
	Pilot int `json:"pilot,omitempty"`
	// Event is the segment cycle (MD) or exchange-event index.
	Event int `json:"event,omitempty"`
	// Retries counts the relaunches an MD segment absorbed, or the
	// retry count a fault action reached.
	Retries int `json:"retries,omitempty"`
	// Pairs counts attempted pairs (exchange/pairs spans), SPE tasks
	// (spe spans) or buffered outcomes (controller spans).
	Pairs int `json:"pairs,omitempty"`
	// Accepted counts accepted pairs.
	Accepted int `json:"accepted,omitempty"`
	// Window and Measured are the controller's window actuator and
	// measured rolling acceptance.
	Window   float64 `json:"window,omitempty"`
	Measured float64 `json:"measured,omitempty"`
	// MinReady is the controller's effective early-fire threshold.
	MinReady int `json:"min_ready,omitempty"`
	// Label carries the fault kind, "failed" on a terminal MD span,
	// "saturated" on a pinned controller, "cancel" on the cancellation
	// boundary snapshot.
	Label string `json:"label,omitempty"`
}

// DefaultCapacity is the ring size New uses for capacity <= 0: deep
// enough for the full timeline of most runs, ~2 MB when full.
const DefaultCapacity = 16384

// Recorder is the bounded flight recorder. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so call sites can
// record unconditionally.
type Recorder struct {
	mu       sync.Mutex
	ring     []Span
	head     int // oldest retained span
	n        int // retained spans
	recorded uint64
	dropped  uint64
}

// New returns a recorder retaining at most capacity spans
// (DefaultCapacity for capacity <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: make([]Span, capacity)}
}

// Record appends one span, evicting the oldest retained span when the
// ring is full (counted in Dropped).
func (r *Recorder) Record(sp Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.n < len(r.ring) {
		r.ring[(r.head+r.n)%len(r.ring)] = sp
		r.n++
	} else {
		r.ring[r.head] = sp
		r.head = (r.head + 1) % len(r.ring)
		r.dropped++
	}
	r.recorded++
	r.mu.Unlock()
}

// Snapshot copies the retained spans, oldest first.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.ring[(r.head+i)%len(r.ring)]
	}
	return out
}

// Capacity returns the ring size (0 on nil).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Recorded returns the total spans recorded, including those since
// evicted.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}

// Dropped returns the spans evicted by ring overflow.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ExportJSON renders the current snapshot as Chrome trace-event JSON.
func (r *Recorder) ExportJSON() ([]byte, error) { return Export(r.Snapshot()) }

// Track process IDs of the exported trace: Perfetto groups tracks by
// pid, so each entity class gets its own process row.
const (
	pidRun      = 1 // checkpoints and run-level instants
	pidReplicas = 2 // one thread per replica: MD spans, fault instants
	pidPilots   = 3 // one thread per pilot: the same MD spans by executor
	pidExchange = 4 // one thread per dimension: exchange phases + sub-spans
	pidControl  = 5 // one thread per dimension's feedback controller
)

// chromeEvent is one entry of the Chrome trace-event format. Only
// complete events (ph "X") and metadata events (ph "M") are emitted —
// a deliberately small, schema-stable subset every viewer loads.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const usPerSecond = 1e6

// Export renders spans as Chrome trace-event JSON: one complete event
// per span (MD spans appear twice — on the replica track and on the
// executing pilot's track), plus process/thread name metadata for every
// track present. The output is deterministic for a given span slice.
func Export(spans []Span) ([]byte, error) {
	events := make([]chromeEvent, 0, len(spans)+16)
	tracks := map[[2]int]bool{}
	emit := func(name string, sp Span, pid, tid int, args map[string]any) {
		tracks[[2]int{pid, tid}] = true
		events = append(events, chromeEvent{
			Name: name, Ph: "X",
			Ts: sp.Start * usPerSecond, Dur: sp.Dur * usPerSecond,
			Pid: pid, Tid: tid, Args: args,
		})
	}
	for _, sp := range spans {
		switch sp.Kind {
		case KindMD:
			name := "md"
			args := map[string]any{
				"replica": sp.Replica, "dim": sp.Dim, "pilot": sp.Pilot,
				"cycle": sp.Event, "retries": sp.Retries,
			}
			if sp.Label != "" {
				name = "md (" + sp.Label + ")"
				args["outcome"] = sp.Label
			}
			emit(name, sp, pidReplicas, sp.Replica, args)
			emit(name, sp, pidPilots, sp.Pilot, args)
		case KindFault:
			name := sp.Label
			if name == "" {
				name = "fault"
			}
			emit(name, sp, pidReplicas, sp.Replica,
				map[string]any{"retries": sp.Retries})
		case KindExchange:
			emit("exchange", sp, pidExchange, sp.Dim, map[string]any{
				"event": sp.Event, "pairs": sp.Pairs, "accepted": sp.Accepted,
			})
		case KindSPE:
			emit("spe", sp, pidExchange, sp.Dim,
				map[string]any{"event": sp.Event, "tasks": sp.Pairs})
		case KindPairs:
			emit("pairs", sp, pidExchange, sp.Dim, map[string]any{
				"event": sp.Event, "pairs": sp.Pairs, "accepted": sp.Accepted,
			})
		case KindController:
			args := map[string]any{
				"event": sp.Event, "window_sec": sp.Window,
				"measured": sp.Measured, "min_ready": sp.MinReady,
				"outcomes": sp.Pairs,
			}
			if sp.Label != "" {
				args["state"] = sp.Label
			}
			emit("control", sp, pidControl, sp.Dim, args)
		case KindCheckpoint:
			name := "checkpoint"
			if sp.Label != "" {
				name = "checkpoint (" + sp.Label + ")"
			}
			emit(name, sp, pidRun, 0, map[string]any{"event": sp.Event})
		case KindResource:
			name := sp.Label
			if name == "" {
				name = "resource"
			}
			emit(name, sp, pidPilots, sp.Pilot,
				map[string]any{"cores": sp.Pairs})
		case KindRespace:
			emit("respace", sp, pidControl, sp.Dim,
				map[string]any{"event": sp.Event, "refit": sp.Retries})
		}
	}

	// Track metadata, sorted for deterministic output.
	keys := make([][2]int, 0, len(tracks))
	for k := range tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	meta := make([]chromeEvent, 0, 2*len(keys))
	seenPid := map[int]bool{}
	for _, k := range keys {
		pid, tid := k[0], k[1]
		if !seenPid[pid] {
			seenPid[pid] = true
			meta = append(meta, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": processName(pid)},
			})
			meta = append(meta, chromeEvent{
				Name: "process_sort_index", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"sort_index": pid},
			})
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": threadName(pid, tid)},
		})
	}
	return json.Marshal(chromeTrace{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
	})
}

// WriteJSON writes the Chrome trace-event JSON of spans to w.
func WriteJSON(w io.Writer, spans []Span) error {
	data, err := Export(spans)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

func processName(pid int) string {
	switch pid {
	case pidRun:
		return "run"
	case pidReplicas:
		return "replicas"
	case pidPilots:
		return "pilots"
	case pidExchange:
		return "exchange"
	case pidControl:
		return "controllers"
	default:
		return fmt.Sprintf("pid %d", pid)
	}
}

func threadName(pid, tid int) string {
	switch pid {
	case pidRun:
		return "run"
	case pidReplicas:
		return fmt.Sprintf("replica %d", tid)
	case pidPilots:
		return fmt.Sprintf("pilot %d", tid)
	case pidExchange:
		return fmt.Sprintf("dim %d exchange", tid)
	case pidControl:
		return fmt.Sprintf("dim %d controller", tid)
	default:
		return fmt.Sprintf("tid %d", tid)
	}
}
