package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNewDefaultCapacity(t *testing.T) {
	if c := New(0).Capacity(); c != DefaultCapacity {
		t.Fatalf("New(0) capacity %d, want %d", c, DefaultCapacity)
	}
	if c := New(-3).Capacity(); c != DefaultCapacity {
		t.Fatalf("New(-3) capacity %d, want %d", c, DefaultCapacity)
	}
	if c := New(7).Capacity(); c != 7 {
		t.Fatalf("New(7) capacity %d, want 7", c)
	}
}

// TestRingDropOldest is the bounded-recorder contract: a full ring
// evicts the oldest span per new record, counts every eviction, and
// Snapshot returns the retained window oldest-first.
func TestRingDropOldest(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(Span{Kind: KindMD, Event: i})
	}
	if got := r.Recorded(); got != 10 {
		t.Fatalf("recorded %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped %d, want 6", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot %d spans, want 4", len(snap))
	}
	for i, sp := range snap {
		if sp.Event != 6+i {
			t.Fatalf("snapshot[%d].Event = %d, want %d (oldest-first tail)", i, sp.Event, 6+i)
		}
	}
}

// TestNilRecorderSafe: every method no-ops on a nil receiver, so call
// sites record unconditionally without tracer-presence branches.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Span{Kind: KindExchange})
	if r.Snapshot() != nil || r.Capacity() != 0 || r.Recorded() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if _, err := r.ExportJSON(); err != nil {
		t.Fatalf("nil recorder export: %v", err)
	}
}

// sampleSpans covers every kind, including a failed MD segment and a
// saturated controller decision.
func sampleSpans() []Span {
	return []Span{
		{Kind: KindMD, Start: 0, Dur: 10, Replica: 0, Dim: 0, Pilot: 0, Event: 0, Retries: 0},
		{Kind: KindMD, Start: 0, Dur: 12, Replica: 1, Dim: 0, Pilot: 1, Event: 0, Retries: 2, Label: "failed"},
		{Kind: KindFault, Start: 5, Replica: 1, Retries: 1, Label: "relaunch"},
		{Kind: KindSPE, Start: 12, Dur: 3, Dim: 1, Event: 0, Pairs: 8},
		{Kind: KindPairs, Start: 15, Dim: 1, Event: 0, Pairs: 4, Accepted: 2},
		{Kind: KindExchange, Start: 12, Dur: 3.5, Dim: 1, Event: 0, Pairs: 4, Accepted: 2},
		{Kind: KindController, Start: 15.5, Dim: 1, Event: 0, Pairs: 4, Window: 30, Measured: 0.5, MinReady: 2, Label: "saturated"},
		{Kind: KindCheckpoint, Start: 15.5, Event: 1},
	}
}

// TestExportChromeTraceValidity: the export is a loadable Chrome
// trace-event JSON object — every event is a complete ("X") or metadata
// ("M") event with non-negative timestamps, MD spans appear on both the
// replica and the executing pilot's track, and every referenced track
// carries thread_name metadata.
func TestExportChromeTraceValidity(t *testing.T) {
	data, err := Export(sampleSpans())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	named := map[[2]int]bool{} // tracks with thread_name metadata
	used := map[[2]int]bool{}  // tracks referenced by X events
	var mdTracks [][2]int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				named[[2]int{ev.Pid, ev.Tid}] = true
			}
		case "X":
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("event %q has negative ts/dur: %v/%v", ev.Name, ev.Ts, ev.Dur)
			}
			used[[2]int{ev.Pid, ev.Tid}] = true
			if ev.Name == "md" || ev.Name == "md (failed)" {
				mdTracks = append(mdTracks, [2]int{ev.Pid, ev.Tid})
			}
		default:
			t.Fatalf("unexpected phase %q (only complete and metadata events are emitted)", ev.Ph)
		}
	}
	for track := range used {
		if !named[track] {
			t.Fatalf("track pid=%d tid=%d has events but no thread_name metadata", track[0], track[1])
		}
	}
	// Each MD span is emitted twice: replica track (pid 2) and pilot
	// track (pid 3). sampleSpans has two MD spans -> four events.
	if len(mdTracks) != 4 {
		t.Fatalf("%d md events, want 4 (2 spans x replica+pilot track)", len(mdTracks))
	}
	pids := map[int]int{}
	for _, tr := range mdTracks {
		pids[tr[0]]++
	}
	if pids[pidReplicas] != 2 || pids[pidPilots] != 2 {
		t.Fatalf("md events per pid = %v, want 2 on replicas (pid %d) and 2 on pilots (pid %d)",
			pids, pidReplicas, pidPilots)
	}
	// Virtual seconds surface as microseconds.
	wantTs := 12 * usPerSecond
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "spe" && ev.Ts == wantTs {
			found = true
		}
	}
	if !found {
		t.Fatalf("spe span at 12s not exported at ts=%v us", wantTs)
	}
}

// TestExportDeterministic: the same span slice always renders the same
// bytes (metadata is sorted, maps marshal with sorted keys), so golden
// comparisons and repeated scrapes are stable.
func TestExportDeterministic(t *testing.T) {
	a, err := Export(sampleSpans())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Export(sampleSpans())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two exports of the same spans differ")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindMD: "md", KindExchange: "exchange", KindSPE: "spe",
		KindPairs: "pairs", KindCheckpoint: "checkpoint",
		KindController: "controller", KindFault: "fault", Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
