package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/pilot"
	"repro/internal/respace"
)

// chaosParams loads the committed chaos configs (the pair the CI
// chaos-soak lane runs) into fresh RunParams. Specs are stateful, so
// every call rebuilds everything from the files.
func chaosParams(t *testing.T) RunParams {
	t.Helper()
	simData, err := os.ReadFile(filepath.Join("..", "..", "configs", "chaos_sim_small.json"))
	if err != nil {
		t.Fatal(err)
	}
	simFile, err := config.ParseSimulation(simData)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := simFile.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	resData, err := os.ReadFile(filepath.Join("..", "..", "configs", "chaos_small.json"))
	if err != nil {
		t.Fatal(err)
	}
	machine, ps, err := config.ParseResource(resData)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Chaos.Empty() {
		t.Fatal("configs/chaos_small.json carries no chaos plan")
	}
	return RunParams{
		Spec:          spec,
		Cluster:       machine,
		PilotCores:    ps.Cores,
		PilotWalltime: ps.Walltime,
		Pilots:        ps.Pilots,
		Chaos:         ps.Chaos,
		NewEngine: func(seed int64) core.Engine {
			return engines.NewNamedVirtual(simFile.Engine, simFile.Atoms, seed)
		},
		Seed: spec.Seed,
	}
}

// checkChaosReport asserts the invariants the chaos lane gates on:
// the scripted faults really happened (preemption observed, units
// relaunched) and no replica was lost to them — every failure was
// resource loss, which is the infrastructure's fault, not the
// replica's.
func checkChaosReport(t *testing.T, rep *core.Report) {
	t.Helper()
	if rep.Dropped != 0 {
		t.Fatalf("chaos run dropped %d replicas, want 0 (resource loss must not consume replica budgets)", rep.Dropped)
	}
	if rep.Preemptions < 1 {
		t.Fatalf("chaos run observed %d preemptions, want >= 1 (the plan scripts one)", rep.Preemptions)
	}
	if rep.Relaunches < 1 {
		t.Fatal("chaos run relaunched nothing; the node loss and preemption should have killed in-flight units")
	}
	if rep.SlotRows != rep.Cycles {
		t.Fatalf("chaos run recorded %d slot rows, want %d (one per barrier sub-cycle)", rep.SlotRows, rep.Cycles)
	}
}

// TestChaosSmallDeterministic: the committed chaos plan — node loss
// mid-cycle, a preemption with notice, an elastic shrink — perturbs
// only virtual-time scheduling, so two runs produce bit-identical slot
// histories and the committed golden fingerprint still matches.
func TestChaosSmallDeterministic(t *testing.T) {
	a, err := Run(chaosParams(t))
	if err != nil {
		t.Fatal(err)
	}
	checkChaosReport(t, a)
	b, err := Run(chaosParams(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.SlotFingerprint != b.SlotFingerprint || a.SlotRows != b.SlotRows {
		t.Fatalf("chaos run not reproducible: %d rows %016x vs %d rows %016x",
			a.SlotRows, a.SlotFingerprint, b.SlotRows, b.SlotFingerprint)
	}

	golden, err := os.ReadFile(filepath.Join("..", "..", "configs", "chaos_small.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%d %016x", a.SlotRows, a.SlotFingerprint)
	if want := strings.TrimSpace(string(golden)); got != want {
		t.Fatalf("slot history diverged from configs/chaos_small.golden: got %q, want %q\n"+
			"(if the change is intentional, update the golden file)", got, want)
	}
}

// TestChaosSmallResume: killing the chaos run at a checkpoint boundary
// and resuming — with the same chaos plan re-driven against the fresh
// virtual clock — completes with the identical slot history: the
// barrier absorbs completions in submission order, so resource faults
// can delay segments but never reorder the exchange decisions.
func TestChaosSmallResume(t *testing.T) {
	full, err := Run(chaosParams(t))
	if err != nil {
		t.Fatal(err)
	}
	checkChaosReport(t, full)

	var snaps []*core.Snapshot
	p := chaosParams(t)
	p.Spec.SnapshotEvery = 3
	p.Spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots captured")
	}
	data, err := snaps[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}

	rp := chaosParams(t)
	rp.Spec.Resume = snap
	resumed, err := Run(rp)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Dropped != 0 {
		t.Fatalf("resumed chaos run dropped %d replicas, want 0", resumed.Dropped)
	}
	if resumed.SlotFingerprint != full.SlotFingerprint || resumed.SlotRows != full.SlotRows {
		t.Fatalf("resumed chaos run diverged: %d rows %016x, uninterrupted %d rows %016x",
			resumed.SlotRows, resumed.SlotFingerprint, full.SlotRows, full.SlotFingerprint)
	}
}

// respaceChaosParams builds a feedback-trigger run over a deliberately
// bunched T ladder (seven crowded rungs, one 70 K cliff) with online
// respacing armed, running on the chaos-lane cluster. The returned
// simPtr is filled by OnStart so the test can read the refit history
// after the run.
func respaceChaosParams(t *testing.T, chaos *pilot.ChaosPlan) (RunParams, **core.Simulation) {
	t.Helper()
	resData, err := os.ReadFile(filepath.Join("..", "..", "configs", "chaos_small.json"))
	if err != nil {
		t.Fatal(err)
	}
	machine, ps, err := config.ParseResource(resData)
	if err != nil {
		t.Fatal(err)
	}
	tr := core.NewFeedbackTrigger(150)
	// 0.9 is unreachable on this ladder at any window length (the cliff
	// pair rejects nearly everything), so the controller saturates — the
	// same scenario the saturation smoke scripts.
	tr.Target = 0.9
	tr.WindowEvents = 8
	tr.SaturationSteps = 2
	spec := &core.Spec{
		Name:    "respace-chaos",
		Dims:    []core.Dimension{{Type: exchange.Temperature, Values: []float64{273, 278, 283, 288, 293, 298, 303, 373}}},
		Pattern: core.PatternAsynchronous,
		Trigger: tr,
		// relaunch keeps resource faults from consuming replica budgets,
		// the same policy the committed chaos configs use implicitly.
		FaultPolicy:     core.FaultRelaunch,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          16,
		AsyncWindow:     150,
		Seed:            33,
	}
	spec.Bus = core.NewBus()
	col := analysis.New(analysis.ConfigFromSpec(spec))
	col.Attach(spec.Bus, analysis.RunBuffer(spec))
	spec.Respace = &core.RespaceSpec{AfterSteps: 2, MaxRefits: 2, Planner: respace.NewPlanner(col)}
	simPtr := new(*core.Simulation)
	return RunParams{
		Spec:          spec,
		Cluster:       machine,
		PilotCores:    ps.Cores,
		PilotWalltime: ps.Walltime,
		Pilots:        ps.Pilots,
		Chaos:         chaos,
		NewEngine: func(seed int64) core.Engine {
			return engines.NewAmberVirtual(2881, seed)
		},
		Seed:    spec.Seed,
		OnStart: func(s *core.Simulation) { *simPtr = s },
	}, simPtr
}

// TestChaosDuringRespace: scripted resource faults bracketing the
// refit window — a node loss while the controller is accumulating
// saturation and a preemption right around the refit itself — must not
// stop the ladder re-fit, drop replicas, or break bit-reproducibility.
// The quiet run locates the refit's virtual time first, so the plan
// stays pinned to the refit no matter how the schedule drifts.
func TestChaosDuringRespace(t *testing.T) {
	quietParams, quietSim := respaceChaosParams(t, nil)
	quiet, err := Run(quietParams)
	if err != nil {
		t.Fatal(err)
	}
	quietHist := (*quietSim).RespaceHistory()
	if len(quietHist) == 0 {
		t.Fatal("quiet run never respaced; the chaos overlap has nothing to target")
	}
	refitAt := quietHist[0].At

	plan := &pilot.ChaosPlan{Events: []pilot.ChaosEvent{
		{At: refitAt * 0.5, Pilot: 0, Kind: pilot.ChaosNodeLoss, Cores: 6},
		{At: refitAt * 0.95, Pilot: 1, Kind: pilot.ChaosPreempt, Notice: 30},
	}}
	run := func() (*core.Report, []core.RespaceRecord) {
		p, simPtr := respaceChaosParams(t, plan)
		rep, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return rep, (*simPtr).RespaceHistory()
	}
	a, histA := run()
	if a.Dropped != 0 {
		t.Fatalf("chaos-during-respace run dropped %d replicas, want 0", a.Dropped)
	}
	if a.Preemptions < 1 {
		t.Fatalf("chaos plan never preempted (%d), events mistimed", a.Preemptions)
	}
	if a.Relaunches < 1 {
		t.Fatal("chaos plan relaunched nothing; faults did not land in-flight")
	}
	if len(histA) == 0 {
		t.Fatal("faults suppressed the refit entirely")
	}
	if a.ExchangeEvents != quiet.ExchangeEvents {
		t.Fatalf("chaos run fired %d events, quiet run %d — the run did not converge",
			a.ExchangeEvents, quiet.ExchangeEvents)
	}
	b, histB := run()
	if a.SlotFingerprint != b.SlotFingerprint || a.SlotRows != b.SlotRows {
		t.Fatalf("chaos-during-respace run not reproducible: %d rows %016x vs %d rows %016x",
			a.SlotRows, a.SlotFingerprint, b.SlotRows, b.SlotFingerprint)
	}
	if len(histA) != len(histB) || histA[0].Event != histB[0].Event {
		t.Fatalf("refit schedule not reproducible: %+v vs %+v", histA, histB)
	}
}

// TestChaosNoChaosDiverges guards against the chaos plan silently not
// firing: the same configs without the plan must route differently
// enough to relaunch nothing and preempt nothing.
func TestChaosNoChaosDiverges(t *testing.T) {
	p := chaosParams(t)
	p.Chaos = nil
	rep, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions != 0 {
		t.Fatalf("quiet run observed %d preemptions, want 0", rep.Preemptions)
	}
	if rep.Relaunches != 0 {
		t.Fatalf("quiet run relaunched %d units, want 0 (no walltime, no chaos)", rep.Relaunches)
	}
	if rep.Dropped != 0 {
		t.Fatalf("quiet run dropped %d replicas", rep.Dropped)
	}
}
