package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engines"
)

// chaosParams loads the committed chaos configs (the pair the CI
// chaos-soak lane runs) into fresh RunParams. Specs are stateful, so
// every call rebuilds everything from the files.
func chaosParams(t *testing.T) RunParams {
	t.Helper()
	simData, err := os.ReadFile(filepath.Join("..", "..", "configs", "chaos_sim_small.json"))
	if err != nil {
		t.Fatal(err)
	}
	simFile, err := config.ParseSimulation(simData)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := simFile.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	resData, err := os.ReadFile(filepath.Join("..", "..", "configs", "chaos_small.json"))
	if err != nil {
		t.Fatal(err)
	}
	machine, ps, err := config.ParseResource(resData)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Chaos.Empty() {
		t.Fatal("configs/chaos_small.json carries no chaos plan")
	}
	return RunParams{
		Spec:          spec,
		Cluster:       machine,
		PilotCores:    ps.Cores,
		PilotWalltime: ps.Walltime,
		Pilots:        ps.Pilots,
		Chaos:         ps.Chaos,
		NewEngine: func(seed int64) core.Engine {
			return engines.NewNamedVirtual(simFile.Engine, simFile.Atoms, seed)
		},
		Seed: spec.Seed,
	}
}

// checkChaosReport asserts the invariants the chaos lane gates on:
// the scripted faults really happened (preemption observed, units
// relaunched) and no replica was lost to them — every failure was
// resource loss, which is the infrastructure's fault, not the
// replica's.
func checkChaosReport(t *testing.T, rep *core.Report) {
	t.Helper()
	if rep.Dropped != 0 {
		t.Fatalf("chaos run dropped %d replicas, want 0 (resource loss must not consume replica budgets)", rep.Dropped)
	}
	if rep.Preemptions < 1 {
		t.Fatalf("chaos run observed %d preemptions, want >= 1 (the plan scripts one)", rep.Preemptions)
	}
	if rep.Relaunches < 1 {
		t.Fatal("chaos run relaunched nothing; the node loss and preemption should have killed in-flight units")
	}
	if rep.SlotRows != rep.Cycles {
		t.Fatalf("chaos run recorded %d slot rows, want %d (one per barrier sub-cycle)", rep.SlotRows, rep.Cycles)
	}
}

// TestChaosSmallDeterministic: the committed chaos plan — node loss
// mid-cycle, a preemption with notice, an elastic shrink — perturbs
// only virtual-time scheduling, so two runs produce bit-identical slot
// histories and the committed golden fingerprint still matches.
func TestChaosSmallDeterministic(t *testing.T) {
	a, err := Run(chaosParams(t))
	if err != nil {
		t.Fatal(err)
	}
	checkChaosReport(t, a)
	b, err := Run(chaosParams(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.SlotFingerprint != b.SlotFingerprint || a.SlotRows != b.SlotRows {
		t.Fatalf("chaos run not reproducible: %d rows %016x vs %d rows %016x",
			a.SlotRows, a.SlotFingerprint, b.SlotRows, b.SlotFingerprint)
	}

	golden, err := os.ReadFile(filepath.Join("..", "..", "configs", "chaos_small.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%d %016x", a.SlotRows, a.SlotFingerprint)
	if want := strings.TrimSpace(string(golden)); got != want {
		t.Fatalf("slot history diverged from configs/chaos_small.golden: got %q, want %q\n"+
			"(if the change is intentional, update the golden file)", got, want)
	}
}

// TestChaosSmallResume: killing the chaos run at a checkpoint boundary
// and resuming — with the same chaos plan re-driven against the fresh
// virtual clock — completes with the identical slot history: the
// barrier absorbs completions in submission order, so resource faults
// can delay segments but never reorder the exchange decisions.
func TestChaosSmallResume(t *testing.T) {
	full, err := Run(chaosParams(t))
	if err != nil {
		t.Fatal(err)
	}
	checkChaosReport(t, full)

	var snaps []*core.Snapshot
	p := chaosParams(t)
	p.Spec.SnapshotEvery = 3
	p.Spec.OnSnapshot = func(sn *core.Snapshot) { snaps = append(snaps, sn) }
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots captured")
	}
	data, err := snaps[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}

	rp := chaosParams(t)
	rp.Spec.Resume = snap
	resumed, err := Run(rp)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Dropped != 0 {
		t.Fatalf("resumed chaos run dropped %d replicas, want 0", resumed.Dropped)
	}
	if resumed.SlotFingerprint != full.SlotFingerprint || resumed.SlotRows != full.SlotRows {
		t.Fatalf("resumed chaos run diverged: %d rows %016x, uninterrupted %d rows %016x",
			resumed.SlotRows, resumed.SlotFingerprint, full.SlotRows, full.SlotFingerprint)
	}
}

// TestChaosNoChaosDiverges guards against the chaos plan silently not
// firing: the same configs without the plan must route differently
// enough to relaunch nothing and preempt nothing.
func TestChaosNoChaosDiverges(t *testing.T) {
	p := chaosParams(t)
	p.Chaos = nil
	rep, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions != 0 {
		t.Fatalf("quiet run observed %d preemptions, want 0", rep.Preemptions)
	}
	if rep.Relaunches != 0 {
		t.Fatalf("quiet run relaunched %d units, want 0 (no walltime, no chaos)", rep.Relaunches)
	}
	if rep.Dropped != 0 {
		t.Fatalf("quiet run dropped %d replicas", rep.Dropped)
	}
}
