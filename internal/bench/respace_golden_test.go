package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/respace"
)

// respaceSmallParams loads the committed respace walkthrough config
// (the pair the respace smoke runs) with the collector-backed planner
// wired exactly the way cmd/repex wires it.
func respaceSmallParams(t *testing.T) (RunParams, **core.Simulation) {
	t.Helper()
	simData, err := os.ReadFile(filepath.Join("..", "..", "configs", "respace_small.json"))
	if err != nil {
		t.Fatal(err)
	}
	simFile, err := config.ParseSimulation(simData)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := simFile.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Respace == nil {
		t.Fatal("configs/respace_small.json does not enable respacing")
	}
	resData, err := os.ReadFile(filepath.Join("..", "..", "configs", "small_cluster_16.json"))
	if err != nil {
		t.Fatal(err)
	}
	machine, ps, err := config.ParseResource(resData)
	if err != nil {
		t.Fatal(err)
	}
	spec.Bus = core.NewBus()
	col := analysis.New(analysis.ConfigFromSpec(spec))
	col.Attach(spec.Bus, analysis.RunBuffer(spec))
	spec.Respace.Planner = respace.NewPlanner(col)
	simPtr := new(*core.Simulation)
	return RunParams{
		Spec:          spec,
		Cluster:       machine,
		PilotCores:    ps.Cores,
		PilotWalltime: ps.Walltime,
		Pilots:        ps.Pilots,
		NewEngine: func(seed int64) core.Engine {
			return engines.NewNamedVirtual(simFile.Engine, simFile.Atoms, seed)
		},
		Seed:    spec.Seed,
		OnStart: func(s *core.Simulation) { *simPtr = s },
	}, simPtr
}

// TestRespaceSmallGolden locks the committed respace walkthrough to its
// golden slot fingerprint: the mis-spaced ladder must refit at least
// once, the post-refit trajectory is bit-reproducible, and any change
// to the respacing pipeline that moves the refit (different event,
// different grid) shows up as a fingerprint diff against
// configs/respace_small.golden.
func TestRespaceSmallGolden(t *testing.T) {
	run := func() (*core.Report, []core.RespaceRecord) {
		p, simPtr := respaceSmallParams(t)
		rep, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return rep, (*simPtr).RespaceHistory()
	}
	a, histA := run()
	if a.Dropped != 0 {
		t.Fatalf("respace-small dropped %d replicas, want 0", a.Dropped)
	}
	if len(histA) == 0 {
		t.Fatal("respace-small never refitted its ladder")
	}
	b, histB := run()
	if a.SlotFingerprint != b.SlotFingerprint || a.SlotRows != b.SlotRows {
		t.Fatalf("respace-small not reproducible: %d rows %016x vs %d rows %016x",
			a.SlotRows, a.SlotFingerprint, b.SlotRows, b.SlotFingerprint)
	}
	if len(histA) != len(histB) || histA[0].Event != histB[0].Event {
		t.Fatalf("refit schedule not reproducible: %+v vs %+v", histA, histB)
	}

	golden, err := os.ReadFile(filepath.Join("..", "..", "configs", "respace_small.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%d %016x", a.SlotRows, a.SlotFingerprint)
	if want := strings.TrimSpace(string(golden)); got != want {
		t.Fatalf("slot history diverged from configs/respace_small.golden: got %q, want %q\n"+
			"(if the change is intentional, update the golden file)", got, want)
	}
}
