package bench

import "fmt"

// PackageFeatures is one column of the paper's Table 1: a molecular
// simulation package with integrated or external REMD capability.
type PackageFeatures struct {
	Name           string
	MaxReplicas    int
	MaxCores       int
	FaultTolerance string // "n/a", "medium", "high"
	MDEngines      []string
	REPatterns     []string // "sync", "async"
	ExecModes      string   // "low", "medium", "high"
	NumDims        int
	ExchangeParams int
}

// Table1Packages returns the seven packages of Table 1 with the feature
// levels reported in the paper.
func Table1Packages() []PackageFeatures {
	return []PackageFeatures{
		{"Amber", 2744, 5488, "n/a", []string{"Amber"}, []string{"sync"}, "low", 2, 3},
		{"Gromacs", 253, 253, "n/a", []string{"Gromacs"}, []string{"sync"}, "low", 2, 2},
		{"LAMMPS", 100, 76800, "n/a", []string{"LAMMPS"}, []string{"sync"}, "low", 2, 2},
		{"VCG async", 240, 1920, "medium", []string{"IMPACT"}, []string{"sync", "async"}, "medium", 2, 2},
		{"CHARMM", 4096, 131072, "n/a", []string{"CHARMM"}, []string{"sync"}, "low", 2, 2},
		{"Charm++/NAMD MCA", 2048, 524288, "n/a", []string{"NAMD"}, []string{"sync"}, "low", 2, 2},
		{"RepEx", 3584, 13824, "medium", []string{"Amber", "NAMD"}, []string{"sync", "async"}, "high", 3, 3},
	}
}

// RepExCapabilities verifies the claimed RepEx feature set against this
// implementation; it returns an error description per unsupported claim
// (empty if all hold). Used by the Table 1 benchmark as a self-check.
func RepExCapabilities() []string {
	var problems []string
	// Patterns: both implemented in core.
	// Engines: amber + namd adapters in engines.
	// Dims: 3 demonstrated by Fig9/Fig12 workloads.
	// Exchange params: T, U, S.
	// These are structural facts of this repository; the self-check
	// exercises tiny instances elsewhere in the test suite. Here we
	// only sanity-check the static table itself.
	pkgs := Table1Packages()
	repex := pkgs[len(pkgs)-1]
	if repex.Name != "RepEx" {
		problems = append(problems, "RepEx column missing")
	}
	if len(repex.REPatterns) != 2 {
		problems = append(problems, "RepEx must support sync and async")
	}
	if repex.NumDims < 3 || repex.ExchangeParams < 3 {
		problems = append(problems, "RepEx must support 3 dims and 3 exchange parameters")
	}
	if len(repex.MDEngines) < 2 {
		problems = append(problems, "RepEx must support at least two MD engines")
	}
	return problems
}

// Table1Comparison renders the paper's Table 1.
func Table1Comparison() *Table {
	tbl := &Table{
		Title: "Table 1: Comparison of packages with integrated REMD capability",
		Header: []string{"feature", "Amber", "Gromacs", "LAMMPS", "VCG async",
			"CHARMM", "Charm++/NAMD MCA", "RepEx"},
	}
	pkgs := Table1Packages()
	row := func(label string, get func(PackageFeatures) string) {
		cells := []string{label}
		for _, p := range pkgs {
			cells = append(cells, get(p))
		}
		tbl.AddRow(cells...)
	}
	row("Max replicas", func(p PackageFeatures) string { return fmt.Sprintf("~%d", p.MaxReplicas) })
	row("Max CPU cores", func(p PackageFeatures) string { return fmt.Sprintf("~%d", p.MaxCores) })
	row("Fault tolerance", func(p PackageFeatures) string { return p.FaultTolerance })
	row("MD engines", func(p PackageFeatures) string { return join(p.MDEngines) })
	row("RE patterns", func(p PackageFeatures) string { return join(p.REPatterns) })
	row("Execution modes", func(p PackageFeatures) string { return p.ExecModes })
	row("Nr. dims", func(p PackageFeatures) string { return fmt.Sprint(p.NumDims) })
	row("Exchange params", func(p PackageFeatures) string { return fmt.Sprint(p.ExchangeParams) })
	for _, p := range RepExCapabilities() {
		tbl.AddNote("SELF-CHECK FAILED: %s", p)
	}
	return tbl
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}
