package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
)

// tsuSpec builds the paper's 3D TSU-REMD workload with `side` windows
// per dimension (total replicas side³).
func tsuSpec(side, cycles int, seed int64) *core.Spec {
	saltVals := make([]float64, side)
	for i := range saltVals {
		saltVals[i] = 0.05 + 2.0*float64(i)/float64(side)
	}
	return &core.Spec{
		Name: fmt.Sprintf("tsu-%d", side),
		Dims: []core.Dimension{
			{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, side)},
			{Type: exchange.Salt, Values: saltVals},
			{Type: exchange.Umbrella, Values: core.UniformWindows(side), Torsion: "phi", K: core.UmbrellaK002},
		},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          cycles,
		Seed:            seed,
	}
}

// tuuSpec builds the TUU workload of the multi-core experiments: one
// temperature dimension and two umbrella dimensions (φ and ψ).
func tuuSpec(side, steps, coresPerReplica, cycles int, seed int64) *core.Spec {
	return &core.Spec{
		Name: fmt.Sprintf("tuu-%d-c%d", side, coresPerReplica),
		Dims: []core.Dimension{
			{Type: exchange.Temperature, Values: core.GeometricTemperatures(273, 373, side)},
			{Type: exchange.Umbrella, Values: core.UniformWindows(side), Torsion: "phi", K: core.UmbrellaK002},
			{Type: exchange.Umbrella, Values: core.UniformWindows(side), Torsion: "psi", K: core.UmbrellaK002},
		},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: coresPerReplica,
		StepsPerCycle:   steps,
		Cycles:          cycles,
		Seed:            seed,
	}
}

// Fig9Row is one bar group of the TSU weak-scaling figure.
type Fig9Row struct {
	Replicas      int
	MD            float64
	EXT, EXS, EXU float64
	Cycle         float64
}

// Fig9WeakTSU reproduces Figure 9: TSU-REMD weak scaling on Stampede,
// replicas = cores = side³ for side 4..12.
func Fig9WeakTSU(quick bool) ([]Fig9Row, *Table, error) {
	cycles := cyclesFor(quick)
	sides := []int{4, 6, 8, 10, 12}
	if quick {
		sides = []int{4, 6}
	}
	var rows []Fig9Row
	tbl := &Table{
		Title:  "Figure 9: TSU-REMD weak scaling (seconds, Stampede)",
		Header: []string{"cores,replicas", "MD", "T exch (D1)", "S exch (D2)", "U exch (D3)"},
	}
	for _, side := range sides {
		n := side * side * side
		rep, err := Run(RunParams{
			Spec:       tsuSpec(side, cycles, 700+int64(n)),
			Cluster:    stampedeFor(n),
			PilotCores: n,
			NewEngine:  func(s int64) core.Engine { return engines.NewAmberVirtual(SmallSystemAtoms, s) },
			Seed:       700 + int64(n),
		})
		if err != nil {
			return nil, nil, err
		}
		d := rep.Decompose()
		_, exT := rep.DimDecompose(0)
		_, exS := rep.DimDecompose(1)
		_, exU := rep.DimDecompose(2)
		row := Fig9Row{Replicas: n, MD: d.TMD, EXT: exT, EXS: exS, EXU: exU, Cycle: rep.AvgCycleTime()}
		rows = append(rows, row)
		tbl.AddRow(fmt.Sprintf("%d,%d", n, n), f1(row.MD), f1(row.EXT), f1(row.EXS), f1(row.EXU))
	}
	tbl.AddNote("paper shape: MD flat ~495 s; T and U exchange similar, near-linear; S exchange dominant")
	return rows, tbl, nil
}

// Fig10Row is one bar group of the TSU strong-scaling figure.
type Fig10Row struct {
	Cores         int
	Replicas      int
	MD            float64
	EXT, EXS, EXU float64
	Cycle         float64
	Mode          core.Mode
}

// Fig10StrongTSU reproduces Figure 10: TSU-REMD strong scaling, replicas
// fixed (1728 = 12³; 216 = 6³ in quick mode) while cores grow to the
// replica count; all but the last point run in Execution Mode II.
func Fig10StrongTSU(quick bool) ([]Fig10Row, *Table, error) {
	cycles := cyclesFor(quick)
	side := 12
	coreCounts := []int{112, 224, 432, 864, 1728}
	if quick {
		side = 6
		coreCounts = []int{27, 54, 108, 216}
	}
	n := side * side * side
	var rows []Fig10Row
	tbl := &Table{
		Title:  fmt.Sprintf("Figure 10: TSU-REMD strong scaling, %d replicas (seconds, Stampede)", n),
		Header: []string{"cores,replicas", "mode", "MD", "T exch (D1)", "S exch (D2)", "U exch (D3)"},
	}
	for _, c := range coreCounts {
		rep, err := Run(RunParams{
			Spec:       tsuSpec(side, cycles, 800+int64(c)),
			Cluster:    stampedeFor(n),
			PilotCores: c,
			NewEngine:  func(s int64) core.Engine { return engines.NewAmberVirtual(SmallSystemAtoms, s) },
			Seed:       800 + int64(c),
		})
		if err != nil {
			return nil, nil, err
		}
		_, exT := rep.DimDecompose(0)
		_, exS := rep.DimDecompose(1)
		_, exU := rep.DimDecompose(2)
		// Strong scaling plots the MD *phase* time, which in Execution
		// Mode II includes the batched waves.
		row := Fig10Row{Cores: c, Replicas: n, MD: rep.AvgMDWall(), EXT: exT, EXS: exS, EXU: exU,
			Cycle: rep.AvgCycleTime(), Mode: rep.Mode}
		rows = append(rows, row)
		tbl.AddRow(fmt.Sprintf("%d,%d", c, n), row.Mode.String(), f1(row.MD),
			f1(row.EXT), f1(row.EXS), f1(row.EXU))
	}
	tbl.AddNote("paper shape: doubling cores halves the MD phase; T/U exchange ~flat; S exchange ~1800 s at 112 cores")
	return rows, tbl, nil
}

// Fig11Row is one point of the TSU efficiency curves.
type Fig11Row struct {
	Cores   int
	WeakEff float64
	StrEff  float64
}

// Fig11EfficiencyTSU reproduces Figure 11: (a) weak-scaling efficiency
// from the Figure 9 sweep and (b) strong-scaling efficiency from the
// Figure 10 sweep, including the efficiency uptick at the final point
// where cores = replicas (Execution Mode I removes the wave-scheduling
// penalty).
func Fig11EfficiencyTSU(quick bool) ([]Fig11Row, *Table, error) {
	weakRows, _, err := Fig9WeakTSU(quick)
	if err != nil {
		return nil, nil, err
	}
	strongRows, _, err := Fig10StrongTSU(quick)
	if err != nil {
		return nil, nil, err
	}
	tbl := &Table{
		Title:  "Figure 11: TSU-REMD parallel efficiency (% of linear scaling, Stampede)",
		Header: []string{"series", "cores", "efficiency"},
	}
	var rows []Fig11Row
	baseWeak := weakRows[0].Cycle
	for _, r := range weakRows {
		e := core.WeakScalingEfficiency(baseWeak, r.Cycle)
		rows = append(rows, Fig11Row{Cores: r.Replicas, WeakEff: e})
		tbl.AddRow("weak (a)", fmt.Sprint(r.Replicas), pct(e))
	}
	baseStrong := strongRows[0]
	for _, r := range strongRows {
		mult := float64(r.Cores) / float64(baseStrong.Cores)
		e := core.StrongScalingEfficiency(baseStrong.Cycle, r.Cycle, mult)
		rows = append(rows, Fig11Row{Cores: r.Cores, StrEff: e})
		tbl.AddRow("strong (b)", fmt.Sprint(r.Cores), pct(e))
	}
	tbl.AddNote("paper shape: (a) decreasing but >50%%; (b) decreasing with an uptick at cores=replicas (Mode II->I)")
	return rows, tbl, nil
}

// Fig12Row is one bar of the multi-core-replica figure.
type Fig12Row struct {
	CoresPerReplica int
	TotalCores      int
	MD              float64
	Executable      string
}

// Fig12MultiCore reproduces Figure 12: TUU-REMD with 216 replicas of the
// 64366-atom system, 20000 steps per cycle, varying cores per replica
// from 1 (sander) to 64 (pmemd.MPI) on Stampede.
func Fig12MultiCore(quick bool) ([]Fig12Row, *Table, error) {
	cycles := cyclesFor(quick) / 2
	if cycles < 1 {
		cycles = 1
	}
	side := 6 // 6x6x6 = 216 replicas
	cprs := []int{1, 16, 32, 48, 64}
	if quick {
		cprs = []int{1, 16}
	}
	var rows []Fig12Row
	tbl := &Table{
		Title:  "Figure 12: TUU-REMD multi-core replicas, 216 replicas, 64366 atoms (seconds, Stampede)",
		Header: []string{"cores,replicas", "cores/replica", "executable", "MD time"},
	}
	for _, cpr := range cprs {
		exe := "pmemd.MPI"
		newEngine := func(s int64) core.Engine { return engines.NewPmemdVirtual(LargeSystemAtoms, s) }
		if cpr == 1 {
			// pmemd.MPI can't run on a single core; the paper switches
			// to sander there.
			exe = "sander"
			newEngine = func(s int64) core.Engine { return engines.NewAmberVirtual(LargeSystemAtoms, s) }
		}
		total := 216 * cpr
		rep, err := Run(RunParams{
			Spec:       tuuSpec(side, 20000, cpr, cycles, 900+int64(cpr)),
			Cluster:    stampedeFor(total),
			PilotCores: total,
			NewEngine:  newEngine,
			Seed:       900 + int64(cpr),
		})
		if err != nil {
			return nil, nil, err
		}
		d := rep.Decompose()
		row := Fig12Row{CoresPerReplica: cpr, TotalCores: total, MD: d.TMD, Executable: exe}
		rows = append(rows, row)
		md := row.MD
		note := ""
		if cpr == 1 {
			md /= 10
			note = " (shown /10 as in the paper)"
		}
		tbl.AddRow(fmt.Sprintf("%d,216", total), fmt.Sprint(cpr), exe, f1(md)+note)
	}
	tbl.AddNote("paper shape: large MD drop to 16 cores/replica; sub-linear gains beyond (small system)")
	return rows, tbl, nil
}

// Fig13Row is one point pair of the utilization figure.
type Fig13Row struct {
	Replicas  int
	SyncUtil  float64
	AsyncUtil float64
}

// Fig13Utilization reproduces Figure 13: CPU utilization (fraction of
// ideal MD-only time, Eq. 4) for the synchronous and asynchronous RE
// patterns over 120-960 single-core replicas, Execution Mode I. The
// asynchronous pattern uses the fixed real-time-window transition
// criterion described in §4.6.
func Fig13Utilization(quick bool) ([]Fig13Row, *Table, error) {
	// Utilization needs enough cycles for the async window idling to
	// reach steady state (the final cycle pays no window wait), so the
	// cycle count is not reduced in quick mode.
	cycles := 4
	ns := []int{120, 240, 480, 960}
	if quick {
		ns = []int{120, 240}
	}
	var rows []Fig13Row
	tbl := &Table{
		Title:  "Figure 13: Utilization, sync vs async T-REMD (% of ideal, SuperMIC)",
		Header: []string{"cores,replicas", "Sync T-REMD", "Async T-REMD"},
	}
	for _, n := range ns {
		mk := func(pattern core.Pattern) (*core.Report, error) {
			spec := oneDSpec(exchange.Temperature, n, cycles, 1000+int64(n))
			spec.Pattern = pattern
			if pattern == core.PatternAsynchronous {
				spec.AsyncWindow = 100 // ~70% of a segment: boundary quantization costs ~10 pp, as in the paper

			}
			cfg := superMICFor(n)
			cfg.ExecJitter = 0.06
			return Run(RunParams{
				Spec:       spec,
				Cluster:    cfg,
				PilotCores: n,
				NewEngine:  func(s int64) core.Engine { return engines.NewAmberVirtual(SmallSystemAtoms, s) },
				Seed:       1000 + int64(n),
			})
		}
		syncRep, err := mk(core.PatternSynchronous)
		if err != nil {
			return nil, nil, err
		}
		asyncRep, err := mk(core.PatternAsynchronous)
		if err != nil {
			return nil, nil, err
		}
		row := Fig13Row{Replicas: n, SyncUtil: 100 * syncRep.Utilization(), AsyncUtil: 100 * asyncRep.Utilization()}
		rows = append(rows, row)
		tbl.AddRow(fmt.Sprintf("%d,%d", n, n), pct(row.SyncUtil), pct(row.AsyncUtil))
	}
	tbl.AddNote("paper shape: sync ~10 percentage points above async, roughly flat in replica count")
	return rows, tbl, nil
}
