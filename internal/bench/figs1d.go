package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
)

// oneDSpec builds a 1D REMD spec of the given exchange type with n
// windows, matching the §4.2 setup (alanine dipeptide, 6000 steps
// between exchanges, single-core replicas, sander).
func oneDSpec(t exchange.Type, n, cycles int, seed int64) *core.Spec {
	var dim core.Dimension
	switch t {
	case exchange.Temperature:
		dim = core.Dimension{Type: t, Values: core.GeometricTemperatures(273, 373, n)}
	case exchange.Umbrella:
		dim = core.Dimension{Type: t, Values: core.UniformWindows(n), Torsion: "phi", K: core.UmbrellaK002}
	case exchange.Salt:
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 0.05 + 2.0*float64(i)/float64(n)
		}
		dim = core.Dimension{Type: t, Values: vals}
	}
	return &core.Spec{
		Name:            fmt.Sprintf("%s-remd-%d", t.Code(), n),
		Dims:            []core.Dimension{dim},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          cycles,
		Seed:            seed,
	}
}

// superMICFor returns the SuperMIC model sized to hold n cores.
func superMICFor(n int) cluster.Config {
	cfg := cluster.SuperMIC()
	for cfg.TotalCores() < n {
		cfg.Nodes *= 2
	}
	return cfg
}

// stampedeFor returns the Stampede model sized to hold n cores.
func stampedeFor(n int) cluster.Config {
	cfg := cluster.Stampede()
	for cfg.TotalCores() < n {
		cfg.Nodes *= 2
	}
	return cfg
}

// run1D executes a 1D run in Execution Mode I (cores = replicas).
func run1D(t exchange.Type, n, cycles int, seed int64) (*core.Report, error) {
	return Run(RunParams{
		Spec:       oneDSpec(t, n, cycles, seed),
		Cluster:    superMICFor(n),
		PilotCores: n,
		NewEngine:  func(s int64) core.Engine { return engines.NewAmberVirtual(SmallSystemAtoms, s) },
		Seed:       seed,
	})
}

// Fig5Row is one replica count of the overhead characterisation.
type Fig5Row struct {
	Replicas                 int
	TData, UData, SData      float64
	RepEx1D, RepEx3D, RPOver float64
}

// Fig5Overheads reproduces Figure 5: data times per exchange type, RepEx
// overhead for 1D and 3D simulations, and RP overhead, as functions of
// the replica count on SuperMIC.
func Fig5Overheads(quick bool) ([]Fig5Row, *Table, error) {
	cycles := cyclesFor(quick)
	var rows []Fig5Row
	tbl := &Table{
		Title:  "Figure 5: Characterization of overheads (seconds, SuperMIC)",
		Header: []string{"replicas", "T data", "U data", "S data", "RepEx 1D", "RepEx 3D", "RP over"},
	}
	for _, n := range counts(quick) {
		row := Fig5Row{Replicas: n}
		for _, t := range []exchange.Type{exchange.Temperature, exchange.Umbrella, exchange.Salt} {
			rep, err := run1D(t, n, cycles, 100+int64(n))
			if err != nil {
				return nil, nil, err
			}
			d := rep.Decompose()
			switch t {
			case exchange.Temperature:
				row.TData = d.TData
				row.RepEx1D = d.TRepEx
				row.RPOver = d.TRP
			case exchange.Umbrella:
				row.UData = d.TData
			case exchange.Salt:
				row.SData = d.TData
			}
		}
		// A 3D run of the same total size for the 3D RepEx overhead.
		side := cubeSideFor(n)
		rep3, err := Run(RunParams{
			Spec:       tsuSpec(side, cycles, 300+int64(n)),
			Cluster:    superMICFor(side * side * side),
			PilotCores: side * side * side,
			NewEngine:  func(s int64) core.Engine { return engines.NewAmberVirtual(SmallSystemAtoms, s) },
			Seed:       301 + int64(n),
		})
		if err != nil {
			return nil, nil, err
		}
		// Per-sub-cycle overhead, comparable to the 1D value.
		row.RepEx3D = rep3.Decompose().TRepEx / 3
		rows = append(rows, row)
		tbl.AddRow(fmt.Sprint(n), f2(row.TData), f2(row.UData), f2(row.SData),
			f2(row.RepEx1D), f2(row.RepEx3D), f2(row.RPOver))
	}
	tbl.AddNote("paper shape: data times small (max ~6.3 s), T<U<S; RP overhead ∝ replicas; RepEx 3D > 1D")
	return rows, tbl, nil
}

// cubeSideFor maps a 1D replica count to the cube side used by the
// paper's 3D runs (64 -> 4, 216 -> 6, ..., 1728 -> 12).
func cubeSideFor(n int) int {
	side := 2
	for side*side*side < n {
		side++
	}
	return side
}

// Fig6Row is one bar group of the 1D weak-scaling figure.
type Fig6Row struct {
	Replicas               int
	MDT, MDU, MDS          float64 // MD time per exchange type
	EXT, EXU, EXS          float64 // exchange time per exchange type
	CycleT, CycleU, CycleS float64
}

// Fig6Weak1D reproduces Figure 6: decomposition of average cycle time
// into MD and exchange time for U-, S- and T-REMD, replicas = cores from
// 64 to 1728 on SuperMIC.
func Fig6Weak1D(quick bool) ([]Fig6Row, *Table, error) {
	cycles := cyclesFor(quick)
	var rows []Fig6Row
	tbl := &Table{
		Title:  "Figure 6: 1D-REMD weak scaling, Tc decomposition (seconds, SuperMIC)",
		Header: []string{"cores,replicas", "MD(T)", "MD(U)", "MD(S)", "EX(T)", "EX(U)", "EX(S)"},
	}
	for _, n := range counts(quick) {
		row := Fig6Row{Replicas: n}
		for _, t := range []exchange.Type{exchange.Temperature, exchange.Umbrella, exchange.Salt} {
			rep, err := run1D(t, n, cycles, 400+int64(n))
			if err != nil {
				return nil, nil, err
			}
			d := rep.Decompose()
			switch t {
			case exchange.Temperature:
				row.MDT, row.EXT, row.CycleT = d.TMD, d.TEX, rep.AvgCycleTime()
			case exchange.Umbrella:
				row.MDU, row.EXU, row.CycleU = d.TMD, d.TEX, rep.AvgCycleTime()
			case exchange.Salt:
				row.MDS, row.EXS, row.CycleS = d.TMD, d.TEX, rep.AvgCycleTime()
			}
		}
		rows = append(rows, row)
		tbl.AddRow(fmt.Sprintf("%d,%d", n, n), f1(row.MDT), f1(row.MDU), f1(row.MDS),
			f1(row.EXT), f1(row.EXU), f1(row.EXS))
	}
	tbl.AddNote("paper shape: MD bars flat at ~139.6 s; EX(T)≈EX(U), near-linear; EX(S) substantially longer")
	return rows, tbl, nil
}

// Fig7Row is one point of the 1D parallel-efficiency figure.
type Fig7Row struct {
	Cores                     int
	EffT, EffS, EffU, EffNone float64
}

// Fig7Efficiency1D reproduces Figure 7: weak-scaling parallel efficiency
// for T-, S-, U-REMD and the no-exchange baseline, relative to the
// 64-core run.
func Fig7Efficiency1D(quick bool) ([]Fig7Row, *Table, error) {
	cycles := cyclesFor(quick)
	cs := counts(quick)
	type series struct {
		t     exchange.Type
		none  bool
		times map[int]float64
	}
	ss := []*series{
		{t: exchange.Temperature, times: map[int]float64{}},
		{t: exchange.Salt, times: map[int]float64{}},
		{t: exchange.Umbrella, times: map[int]float64{}},
		{t: exchange.Temperature, none: true, times: map[int]float64{}},
	}
	for _, s := range ss {
		for _, n := range cs {
			spec := oneDSpec(s.t, n, cycles, 500+int64(n))
			spec.DisableExchange = s.none
			rep, err := Run(RunParams{
				Spec:       spec,
				Cluster:    superMICFor(n),
				PilotCores: n,
				NewEngine:  func(sd int64) core.Engine { return engines.NewAmberVirtual(SmallSystemAtoms, sd) },
				Seed:       500 + int64(n),
			})
			if err != nil {
				return nil, nil, err
			}
			s.times[n] = rep.AvgCycleTime()
		}
	}
	var rows []Fig7Row
	tbl := &Table{
		Title:  "Figure 7: 1D-REMD parallel efficiency (% of linear scaling, SuperMIC)",
		Header: []string{"cores", "T-REMD", "S-REMD", "U-REMD", "No exchange"},
	}
	base := cs[0]
	for _, n := range cs {
		row := Fig7Row{
			Cores:   n,
			EffT:    core.WeakScalingEfficiency(ss[0].times[base], ss[0].times[n]),
			EffS:    core.WeakScalingEfficiency(ss[1].times[base], ss[1].times[n]),
			EffU:    core.WeakScalingEfficiency(ss[2].times[base], ss[2].times[n]),
			EffNone: core.WeakScalingEfficiency(ss[3].times[base], ss[3].times[n]),
		}
		rows = append(rows, row)
		tbl.AddRow(fmt.Sprint(n), pct(row.EffT), pct(row.EffS), pct(row.EffU), pct(row.EffNone))
	}
	tbl.AddNote("paper shape: efficiency decreases with cores; S lowest; no-exchange highest")
	return rows, tbl, nil
}

// Fig8Row is one bar pair of the NAMD weak-scaling figure.
type Fig8Row struct {
	Replicas int
	MD, EX   float64
}

// Fig8NAMD reproduces Figure 8: T-REMD with the NAMD engine, 4000 steps
// between exchanges, weak scaling on SuperMIC.
func Fig8NAMD(quick bool) ([]Fig8Row, *Table, error) {
	cycles := cyclesFor(quick)
	var rows []Fig8Row
	tbl := &Table{
		Title:  "Figure 8: T-REMD with NAMD engine, weak scaling (seconds, SuperMIC)",
		Header: []string{"cores,replicas", "MD time", "Exchange time"},
	}
	for _, n := range counts(quick) {
		spec := oneDSpec(exchange.Temperature, n, cycles, 600+int64(n))
		spec.StepsPerCycle = 4000
		rep, err := Run(RunParams{
			Spec:       spec,
			Cluster:    superMICFor(n),
			PilotCores: n,
			NewEngine:  func(s int64) core.Engine { return engines.NewNAMDVirtual(SmallSystemAtoms, s) },
			Seed:       600 + int64(n),
		})
		if err != nil {
			return nil, nil, err
		}
		d := rep.Decompose()
		row := Fig8Row{Replicas: n, MD: d.TMD, EX: d.TEX}
		rows = append(rows, row)
		tbl.AddRow(fmt.Sprintf("%d,%d", n, n), f1(row.MD), f1(row.EX))
	}
	tbl.AddNote("paper shape: MD times nearly equal across replica counts; exchange growth non-monomial")
	return rows, tbl, nil
}
