package bench

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/localexec"
	"repro/internal/md"
	"repro/internal/stats"
)

// ValidationOptions size the Figure 4 validation run. The paper uses 6
// temperatures × 8×8 umbrella windows (384 replicas), 20000 steps per
// cycle and 90 cycles on 400 Stampede cores; the defaults here are a
// laptop-scale reduction of the same protocol with the real Go MD
// engine.
type ValidationOptions struct {
	// TWindows, UWindows give the grid (T x U x U).
	TWindows, UWindows int
	// TLow, THigh bound the geometric temperature ladder.
	TLow, THigh float64
	// StepsPerCycle and Cycles control sampling depth.
	StepsPerCycle, Cycles int
	// Bins is the FES grid resolution per axis.
	Bins int
	// Workers bounds local parallelism (0 = GOMAXPROCS).
	Workers int
	Seed    int64
}

// DefaultValidationOptions returns a reduced but structurally faithful
// Figure 4 protocol.
func DefaultValidationOptions() ValidationOptions {
	return ValidationOptions{
		TWindows:      3,
		UWindows:      6,
		TLow:          273,
		THigh:         373,
		StepsPerCycle: 400,
		Cycles:        3,
		Bins:          24,
		Seed:          7,
	}
}

// ValidationResult is the Figure 4 output: one free-energy surface per
// temperature plus run statistics.
type ValidationResult struct {
	Temperatures []float64
	Surfaces     []*stats.FES
	// AcceptT and AcceptU are overall acceptance ratios in the T and U
	// dimensions (paper: ~3% for T, ~25% for U).
	AcceptT, AcceptU float64
	Report           *core.Report
}

// Fig4Validation runs the paper's validation protocol (§3.4) with the
// real MD engine: 3D T×U(φ)×U(ψ) REMD of alanine dipeptide followed by
// WHAM free-energy surfaces at each temperature.
func Fig4Validation(opts ValidationOptions) (*ValidationResult, *Table, error) {
	if opts.TWindows <= 0 || opts.UWindows <= 1 {
		return nil, nil, fmt.Errorf("bench: validation needs >=1 T window and >=2 U windows")
	}
	top, st := md.BuildAlanineDipeptide()
	sys, err := md.NewSystem(top, md.Box{}, 0)
	if err != nil {
		return nil, nil, err
	}
	prm := md.Params{TemperatureK: 300}
	md.Minimize(sys, st, prm, 2000, 1e-3)
	eng := engines.MustNewReal("amber", sys, st, opts.Seed)
	eng.SampleEvery = 10

	spec := &core.Spec{
		Name: "fig4-validation",
		Dims: []core.Dimension{
			{Type: exchange.Temperature, Values: core.GeometricTemperatures(opts.TLow, opts.THigh, opts.TWindows)},
			{Type: exchange.Umbrella, Values: core.UniformWindows(opts.UWindows), Torsion: "phi", K: core.UmbrellaK002},
			{Type: exchange.Umbrella, Values: core.UniformWindows(opts.UWindows), Torsion: "psi", K: core.UmbrellaK002},
		},
		Pattern:         core.PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   opts.StepsPerCycle,
		Cycles:          opts.Cycles,
		Seed:            opts.Seed,
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := localexec.New(workers)
	simu, err := core.New(spec, eng, rt)
	if err != nil {
		return nil, nil, err
	}
	report, err := simu.Run()
	if err != nil {
		return nil, nil, err
	}

	// WHAM per temperature: the U(φ)×U(ψ) windows of each T layer.
	grid := spec.Grid()
	res := &ValidationResult{
		Temperatures: spec.Dims[0].Values,
		Report:       report,
		AcceptT:      report.AcceptanceRatioByDim(0),
	}
	// Average U acceptance over the two umbrella dimensions.
	res.AcceptU = (report.AcceptanceRatioByDim(1) + report.AcceptanceRatioByDim(2)) / 2

	tbl := &Table{
		Title:  "Figure 4: FES of alanine dipeptide backbone torsions per temperature",
		Header: []string{"T (K)", "windows", "samples", "coverage", "basins<=3kcal", "Fmax (kcal/mol)"},
	}
	for ti := 0; ti < opts.TWindows; ti++ {
		var windows []stats.UmbrellaWindow
		nsamples := 0
		for ui := 0; ui < opts.UWindows; ui++ {
			for uj := 0; uj < opts.UWindows; uj++ {
				slot := grid.Index([]int{ti, ui, uj})
				tr := eng.WindowTrajectory(slot)
				w := stats.UmbrellaWindow{
					PhiCenter: spec.Dims[1].Values[ui],
					PsiCenter: spec.Dims[2].Values[uj],
					KPhi:      spec.Dims[1].K,
					KPsi:      spec.Dims[2].K,
				}
				if tr != nil {
					w.Phi = tr.Phi
					w.Psi = tr.Psi
					nsamples += len(tr.Phi)
				}
				windows = append(windows, w)
			}
		}
		fes, err := stats.WHAM2D(windows, opts.Bins, spec.Dims[0].Values[ti], 1000, 1e-5)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: WHAM at T=%g: %v", spec.Dims[0].Values[ti], err)
		}
		res.Surfaces = append(res.Surfaces, fes)
		tbl.AddRow(f1(spec.Dims[0].Values[ti]), fmt.Sprint(opts.UWindows*opts.UWindows),
			fmt.Sprint(nsamples), pct(100*fes.CoveredFraction()),
			fmt.Sprint(fes.BasinCount(3)), f1(fes.MaxFinite()))
	}
	tbl.AddNote("paper: 6 T x 8x8 U windows (384 replicas); acceptance ~3%% (T), ~25%% (U); energy range 0-16 kcal/mol")
	tbl.AddNote("this run: acceptance T=%.1f%%, U=%.1f%%", 100*res.AcceptT, 100*res.AcceptU)
	return res, tbl, nil
}
