package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exchange"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("note %d", 7)
	s := tbl.String()
	for _, want := range []string{"== demo ==", "a", "bb", "# note 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestRunHelper(t *testing.T) {
	rep, err := run1D(exchange.Temperature, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicas != 8 || rep.Cycles != 1 {
		t.Fatalf("report %d/%d", rep.Replicas, rep.Cycles)
	}
}

func TestCubeSideFor(t *testing.T) {
	cases := map[int]int{64: 4, 216: 6, 512: 8, 1000: 10, 1728: 12, 65: 5}
	for n, want := range cases {
		if got := cubeSideFor(n); got != want {
			t.Errorf("cubeSideFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	rows, tbl, err := Fig5Overheads(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(QuickReplicaCounts) {
		t.Fatalf("rows %d", len(rows))
	}
	last := rows[len(rows)-1]
	first := rows[0]
	// Data times ordered T < U < S (the paper's file-set ordering).
	if !(last.TData < last.UData && last.UData < last.SData) {
		t.Fatalf("data times not ordered T<U<S: %+v", last)
	}
	// RP overhead proportional to replicas.
	if last.RPOver <= 2*first.RPOver {
		t.Fatalf("RP overhead not growing with replicas: %v -> %v", first.RPOver, last.RPOver)
	}
	// RepEx overhead larger for 3D than 1D.
	if last.RepEx3D <= last.RepEx1D {
		t.Fatalf("RepEx 3D overhead %v not above 1D %v", last.RepEx3D, last.RepEx1D)
	}
	// Data times stay small (paper max 6.3 s even at 1728).
	if last.SData > 10 {
		t.Fatalf("S data time %v unreasonably large", last.SData)
	}
	if tbl == nil || len(tbl.Rows) != len(rows) {
		t.Fatal("table out of sync with rows")
	}
}

func TestFig6Shapes(t *testing.T) {
	rows, _, err := Fig6Weak1D(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// MD bars flat at ~139.6 s for all three exchange types.
		for _, md := range []float64{r.MDT, r.MDU, r.MDS} {
			if md < 135 || md > 145 {
				t.Fatalf("MD time %v outside 139.6±5 (replicas %d)", md, r.Replicas)
			}
		}
		// T and U exchange close; S substantially longer.
		if r.EXU < 0.8*r.EXT || r.EXU > 1.35*r.EXT {
			t.Fatalf("EX(U) %v not close to EX(T) %v", r.EXU, r.EXT)
		}
		if r.EXS < 5*r.EXT {
			t.Fatalf("EX(S) %v not substantially above EX(T) %v", r.EXS, r.EXT)
		}
	}
	// Exchange grows with replica count.
	if rows[len(rows)-1].EXT <= rows[0].EXT {
		t.Fatal("EX(T) not growing with replicas")
	}
	if rows[len(rows)-1].EXS <= rows[0].EXS {
		t.Fatal("EX(S) not growing with replicas")
	}
}

func TestFig7Shapes(t *testing.T) {
	rows, _, err := Fig7Efficiency1D(true)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].EffT != 100 || rows[0].EffNone != 100 {
		t.Fatal("baseline efficiency not 100%")
	}
	last := rows[len(rows)-1]
	// Efficiency decreases with core count; the no-exchange baseline is
	// the highest series.
	if last.EffT >= 100 || last.EffNone >= 100 {
		t.Fatalf("efficiency did not decrease: %+v", last)
	}
	if last.EffNone <= last.EffT-1 {
		t.Fatalf("no-exchange efficiency %v not above T-REMD %v", last.EffNone, last.EffT)
	}
}

func TestFig8Shapes(t *testing.T) {
	rows, _, err := Fig8NAMD(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// NAMD 4000 steps of 2881 atoms: ~230 s on SuperMIC.
		if r.MD < 215 || r.MD > 245 {
			t.Fatalf("NAMD MD time %v outside ~230±15", r.MD)
		}
		if r.EX <= 0 {
			t.Fatal("missing exchange time")
		}
	}
	if rows[len(rows)-1].EX <= rows[0].EX {
		t.Fatal("NAMD exchange not growing")
	}
}

func TestFig9Shapes(t *testing.T) {
	rows, _, err := Fig9WeakTSU(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Full-cycle MD across three dimensions: ~495 s on Stampede.
		if r.MD < 480 || r.MD > 510 {
			t.Fatalf("TSU MD %v outside ~495±15", r.MD)
		}
		// Salt dimension dominates the exchange cost.
		if r.EXS < 3*r.EXT {
			t.Fatalf("S exchange %v not dominant over T %v", r.EXS, r.EXT)
		}
		// T and U exchanges similar.
		if r.EXU < 0.7*r.EXT || r.EXU > 1.5*r.EXT {
			t.Fatalf("U exchange %v not similar to T %v", r.EXU, r.EXT)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	rows, _, err := Fig10StrongTSU(true)
	if err != nil {
		t.Fatal(err)
	}
	// All but the last point are Execution Mode II.
	for i, r := range rows {
		if i < len(rows)-1 && r.Mode != core.ModeII {
			t.Fatalf("point %d mode %v, want II", i, r.Mode)
		}
	}
	if rows[len(rows)-1].Mode != core.ModeI {
		t.Fatal("final point should be Mode I")
	}
	// MD phase time decreases as cores grow, roughly proportionally.
	for i := 1; i < len(rows); i++ {
		if rows[i].MD >= rows[i-1].MD {
			t.Fatalf("MD wall did not decrease: %v -> %v", rows[i-1].MD, rows[i].MD)
		}
	}
	ratio := rows[0].MD / rows[1].MD
	if ratio < 1.4 || ratio > 2.6 {
		t.Fatalf("MD halving ratio %v, want ~2 when cores double", ratio)
	}
	// S exchange shrinks with cores (its waves parallelize); T/U ~flat.
	if rows[0].EXS <= rows[len(rows)-1].EXS {
		t.Fatal("S exchange did not shrink with cores")
	}
}

func TestFig12Shapes(t *testing.T) {
	rows, _, err := Fig12MultiCore(true)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Executable != "sander" || rows[0].CoresPerReplica != 1 {
		t.Fatalf("first point should be single-core sander: %+v", rows[0])
	}
	if rows[1].Executable != "pmemd.MPI" {
		t.Fatalf("multi-core points should use pmemd.MPI: %+v", rows[1])
	}
	// Large drop from 1 to 16 cores per replica.
	if rows[1].MD >= rows[0].MD/4 {
		t.Fatalf("MD %v -> %v: drop too small", rows[0].MD, rows[1].MD)
	}
}

func TestFig13Shapes(t *testing.T) {
	rows, _, err := Fig13Utilization(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SyncUtil <= r.AsyncUtil {
			t.Fatalf("sync utilization %v not above async %v at %d replicas",
				r.SyncUtil, r.AsyncUtil, r.Replicas)
		}
		if r.SyncUtil < 40 || r.SyncUtil > 95 {
			t.Fatalf("sync utilization %v outside plausible range", r.SyncUtil)
		}
		gap := r.SyncUtil - r.AsyncUtil
		if gap < 3 || gap > 25 {
			t.Fatalf("utilization gap %v pp outside the paper's ballpark", gap)
		}
	}
}

func TestTable1(t *testing.T) {
	pkgs := Table1Packages()
	if len(pkgs) != 7 {
		t.Fatalf("packages %d, want 7", len(pkgs))
	}
	if problems := RepExCapabilities(); len(problems) != 0 {
		t.Fatalf("self-check failed: %v", problems)
	}
	tbl := Table1Comparison()
	s := tbl.String()
	for _, want := range []string{"RepEx", "sync, async", "Charm++/NAMD MCA", "524288"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 1 missing %q", want)
		}
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("Table 1 rows %d, want 8 features", len(tbl.Rows))
	}
}

func TestFig4ValidationReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("real-MD validation is slow")
	}
	opts := DefaultValidationOptions()
	opts.TWindows = 2
	opts.UWindows = 4
	opts.StepsPerCycle = 150
	opts.Cycles = 2
	opts.Bins = 16
	res, tbl, err := Fig4Validation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Surfaces) != 2 {
		t.Fatalf("surfaces %d, want one per temperature", len(res.Surfaces))
	}
	for i, f := range res.Surfaces {
		if f.CoveredFraction() < 0.12 {
			t.Fatalf("T%d: FES coverage %v too low (umbrella windows should cover the torus)",
				i, f.CoveredFraction())
		}
	}
	// Exchanges must actually happen in the T dimension (the small real
	// system has overlapping energy distributions). The U dimensions
	// use the paper's stiff harmonic windows 90° apart, whose genuine
	// Metropolis acceptance is ~0 at this reduced window count — see
	// EXPERIMENTS.md for the discussion.
	if res.AcceptT <= 0 {
		t.Fatal("no temperature exchanges accepted in the real run")
	}
	if res.AcceptU < 0 || res.AcceptU > 1 || res.AcceptT > 1 {
		t.Fatalf("acceptance ratios out of range: T=%v U=%v", res.AcceptT, res.AcceptU)
	}
	if tbl == nil || len(tbl.Rows) != 2 {
		t.Fatal("validation table malformed")
	}
}
