// Package bench is the experiment harness of the reproduction: one
// function per table and figure of the paper's evaluation (Section 4),
// each running the full RepEx stack (core orchestrator, engine adapter,
// pilot runtime, simulated cluster) and printing the same rows/series the
// paper reports. Quick variants shrink replica counts and cycles for use
// in unit tests and testing.B benchmarks.
package bench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pilot"
	"repro/internal/sim"
	"repro/internal/task"
)

// RunParams describes one simulation execution on the virtual cluster.
type RunParams struct {
	Spec       *core.Spec
	Cluster    cluster.Config
	PilotCores int
	// PilotWalltime bounds each pilot's life in virtual seconds; when a
	// pilot expires, its units fail, the scheduler resubmits them and
	// the runtime launches a replacement pilot (failover). Zero or
	// negative means unbounded.
	PilotWalltime float64
	// Pilots splits PilotCores across this many concurrent pilots routed
	// through one MultiRuntime with failover (the multi-pilot execution
	// the paper's flexible resource mapping describes). Zero or one
	// keeps the single failover pilot.
	Pilots int
	// Chaos, when non-empty, scripts resource faults (node loss,
	// preemption, resize) against the run's pilots at fixed virtual
	// times; see pilot.ChaosPlan. The plan's slot indices address the
	// MultiRuntime routing slots (always 0 for a single pilot), hitting
	// whichever pilot occupies the slot at fire time.
	Chaos *pilot.ChaosPlan
	// NewEngine constructs the engine adapter (called once).
	NewEngine func(seed int64) core.Engine
	// Seed for cluster jitter and fault draws.
	Seed int64
	// Context cancels the run between exchange events (nil means run to
	// completion); see core.Simulation.RunContext.
	Context context.Context
	// OnStart, when set, receives the constructed simulation right
	// before it runs (cmd/repex uses it to flip its live status
	// endpoint to "running" once the replica set exists).
	OnStart func(*core.Simulation)
}

// Run executes a simulation to completion in virtual time. On a run
// error the returned report, when non-nil, is the partial report of the
// failed or cancelled run — callers must check the error first.
func Run(p RunParams) (*core.Report, error) {
	env := sim.NewEnv()
	cl, err := cluster.New(env, p.Cluster, p.Seed+1)
	if err != nil {
		return nil, err
	}
	eng := p.NewEngine(p.Seed + 2)
	var report *core.Report
	var runErr error
	env.Go("emm", func(proc *sim.Proc) {
		rt, err := newRuntime(cl, p, proc)
		if err != nil {
			runErr = err
			return
		}
		if !p.Chaos.Empty() {
			if err := p.Chaos.Validate(); err != nil {
				runErr = err
				return
			}
			p.Chaos.Drive(env, chaosLookup(rt))
		}
		simu, err := core.New(p.Spec, eng, rt)
		if err != nil {
			runErr = err
			return
		}
		if p.OnStart != nil {
			p.OnStart(simu)
		}
		report, runErr = simu.RunContext(p.Context)
	})
	env.Run()
	if runErr != nil {
		return report, runErr
	}
	if report == nil {
		return nil, fmt.Errorf("bench: simulation %q produced no report", p.Spec.Name)
	}
	return report, nil
}

// newRuntime builds the run's task runtime: one failover pilot, or —
// when Pilots > 1 — PilotCores split across that many pilots behind a
// failover MultiRuntime (uneven splits give the first pilots one core
// more).
func newRuntime(cl *cluster.Cluster, p RunParams, proc *sim.Proc) (task.Runtime, error) {
	if p.Pilots <= 1 {
		return pilot.NewFailoverRuntime(cl, pilot.Description{Cores: p.PilotCores, Walltime: p.PilotWalltime}, proc)
	}
	per, extra := p.PilotCores/p.Pilots, p.PilotCores%p.Pilots
	if per < 1 {
		return nil, fmt.Errorf("bench: %d cores cannot cover %d pilots", p.PilotCores, p.Pilots)
	}
	pilots := make([]*pilot.Pilot, p.Pilots)
	for i := range pilots {
		cores := per
		if i < extra {
			cores++
		}
		pl, err := pilot.Launch(cl, pilot.Description{Cores: cores, Walltime: p.PilotWalltime})
		if err != nil {
			return nil, err
		}
		pilots[i] = pl
	}
	mr, err := pilot.NewMultiRuntime(proc, pilots...)
	if err != nil {
		return nil, err
	}
	mr.Failover = true
	return mr, nil
}

// chaosLookup adapts a runtime to the chaos driver's slot addressing: a
// MultiRuntime exposes its routing slots; a single failover runtime
// maps every slot-0 fault to its current pilot incarnation. Slots
// beyond the runtime's pilots resolve to nil and the fault is skipped.
func chaosLookup(rt task.Runtime) func(slot int) *pilot.Pilot {
	switch r := rt.(type) {
	case *pilot.MultiRuntime:
		return r.PilotAt
	case *pilot.Runtime:
		return func(slot int) *pilot.Pilot {
			if slot != 0 {
				return nil
			}
			return r.Pilot()
		}
	default:
		return func(int) *pilot.Pilot { return nil }
	}
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// SmallSystemAtoms is the paper's solvated alanine dipeptide size used
// in the 1D and M-REMD experiments.
const SmallSystemAtoms = 2881

// LargeSystemAtoms is the paper's multi-core-replica system size.
const LargeSystemAtoms = 64366

// FullReplicaCounts are the replica counts of Figures 5-9.
var FullReplicaCounts = []int{64, 216, 512, 1000, 1728}

// QuickReplicaCounts shrink the sweeps for tests.
var QuickReplicaCounts = []int{64, 216}

// counts selects the sweep for the given mode.
func counts(quick bool) []int {
	if quick {
		return QuickReplicaCounts
	}
	return FullReplicaCounts
}

// cyclesFor returns the cycle count: the paper averages over 4 cycles.
func cyclesFor(quick bool) int {
	if quick {
		return 2
	}
	return 4
}
