package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/pilot"
	"repro/internal/respace"
	"repro/internal/trace"
)

// ErrMaxRuns rejects a launch while the configured number of active
// (non-terminal) runs is already reached.
var ErrMaxRuns = errors.New("serve: active-run limit reached")

// ErrRunNotFound reports an unknown run id.
var ErrRunNotFound = errors.New("serve: no such run")

// Run is one registry-owned simulation: its own event bus, collector
// and per-run endpoints, executing on its own goroutine so many runs
// share one process (and one core pool) without sharing any state.
type Run struct {
	// ID is the registry-assigned identifier ("r1", "r2", ...).
	ID string

	spec   *core.Spec
	bus    *core.Bus
	col    *analysis.Collector
	srv    *Server
	engine string
	cores  int
	cancel context.CancelFunc
	// done closes when the run goroutine has finished and report/err
	// carry the outcome.
	done chan struct{}

	mu     sync.Mutex
	state  core.RunState
	report *core.Report
	err    error
	// sim is the constructed simulation once the run goroutine reaches
	// OnStart; status surfaces read its respace accessors (which are
	// themselves mutex-guarded against the dispatcher).
	sim *core.Simulation
}

// State returns the run's lifecycle state.
func (r *Run) State() core.RunState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Done closes when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// Result returns the run's final report and error; the report may be
// the partial report of a failed or cancelled run, and both are nil/nil
// until Done closes.
func (r *Run) Result() (*core.Report, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.report, r.err
}

// Cancel requests cancellation; the dispatcher honours it at the next
// fired exchange boundary (idempotent, safe after completion).
func (r *Run) Cancel() { r.cancel() }

// baseStatus is the run's status-source for its Server: the static
// configuration plus the lifecycle state (the Server merges in the
// collector's live counters).
func (r *Run) baseStatus() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		ID:              r.ID,
		Name:            r.spec.Name,
		Engine:          r.engine,
		Trigger:         r.spec.TriggerName(),
		State:           r.state.String(),
		Replicas:        r.spec.Replicas(),
		Cores:           r.cores,
		CyclesTarget:    r.spec.Cycles,
		ExchangeWorkers: r.spec.ExchangeWorkers,
		HistoryTail:     r.spec.HistoryTail,
		BusPublished:    r.bus.Published(),
	}
	if fb, ok := r.spec.Trigger.(*core.FeedbackTrigger); ok {
		st.Feedback = fb.ControllerStatus()
	}
	if rs := r.spec.Respace; rs != nil {
		respaceSt := &RespaceStatus{
			Enabled:    true,
			AfterSteps: rs.AfterSteps,
			MaxRefits:  rs.MaxRefits,
		}
		if r.sim != nil {
			respaceSt.Refits = r.sim.RefitCounts()
			respaceSt.Ladders = r.sim.LadderValues()
			respaceSt.History = r.sim.RespaceHistory()
		}
		st.Respace = respaceSt
	}
	if r.err != nil && !errors.Is(r.err, core.ErrRunCancelled) {
		st.Error = r.err.Error()
	}
	return st
}

// fullStatus merges the base status with the collector's counters, the
// same view /runs/{id}/status serves.
func (r *Run) fullStatus() RunStatus {
	stats := r.srv.snapshot(false)
	return r.srv.runStatusFrom(&stats)
}

// view renders the run as one contribution to an aggregate metrics
// exposition.
func (r *Run) view() runView {
	stats := r.srv.snapshot(false)
	return runView{run: r.ID, stats: stats, st: r.srv.runStatusFrom(&stats)}
}

func (r *Run) finish(report *core.Report, err error) {
	r.mu.Lock()
	r.report, r.err = report, err
	switch {
	case err == nil:
		r.state = core.RunCompleted
	case errors.Is(err, core.ErrRunCancelled):
		r.state = core.RunCancelled
	default:
		r.state = core.RunFailed
	}
	r.mu.Unlock()
	close(r.done)
}

// Registry is the multi-run control plane behind repexd: it launches
// runs from posted configs, admits them against one process-wide core
// pool, and serves per-run and aggregate observability endpoints. Every
// run owns its bus, collector and simulation environment, so runs never
// share mutable state — only the admission pool.
type Registry struct {
	pool    *pilot.Pool
	maxRuns int
	// traceEvents is the per-run flight-recorder capacity (0: the
	// recorder default). Every run gets its own recorder, so
	// /runs/{id}/trace is always servable.
	traceEvents int
	log         *slog.Logger

	mu     sync.Mutex
	runs   map[string]*Run
	order  []*Run
	nextID int
	wg     sync.WaitGroup
	mux    *http.ServeMux
}

// NewRegistry builds a registry admitting runs against totalCores
// shared cores (0: unbounded) and at most maxRuns concurrently active
// runs (0: unbounded).
func NewRegistry(totalCores, maxRuns int) *Registry {
	g := &Registry{
		pool:    pilot.NewPool(totalCores),
		maxRuns: maxRuns,
		log:     slog.Default(),
		runs:    map[string]*Run{},
		mux:     http.NewServeMux(),
	}
	g.mux.HandleFunc("POST /runs", g.handleLaunch)
	g.mux.HandleFunc("GET /runs", g.handleList)
	g.mux.HandleFunc("GET /runs/{id}", g.perRun((*Server).handleStatus))
	g.mux.HandleFunc("DELETE /runs/{id}", g.handleCancel)
	g.mux.HandleFunc("GET /runs/{id}/status", g.perRun((*Server).handleStatus))
	g.mux.HandleFunc("GET /runs/{id}/stats", g.perRun((*Server).handleStats))
	g.mux.HandleFunc("GET /runs/{id}/metrics", g.perRun((*Server).handleMetrics))
	g.mux.HandleFunc("GET /runs/{id}/trace", g.perRun((*Server).handleTrace))
	g.mux.HandleFunc("GET /runs/{id}/events", g.handleEvents)
	g.mux.HandleFunc("GET /metrics", g.handleAggregateMetrics)
	g.mux.HandleFunc("PATCH /pool", g.handlePoolResize)
	g.mux.HandleFunc("GET /status", g.handleDaemonStatus)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	return g
}

// Handler exposes the registry's route table.
func (g *Registry) Handler() http.Handler { return g.mux }

// SetTraceEvents sets the flight-recorder capacity future launches
// attach per run (0 keeps the recorder default). Call before serving.
func (g *Registry) SetTraceEvents(n int) { g.traceEvents = n }

// SetLogger routes the registry's structured log output; the default is
// slog.Default(). Call before serving.
func (g *Registry) SetLogger(l *slog.Logger) {
	if l != nil {
		g.log = l
	}
}

// EnablePprof mounts net/http/pprof under /debug/pprof/ on the registry
// mux. Opt-in only: profile collection is CPU-heavy and the endpoints
// expose binary layout, so keep them off unless the daemon's listener
// is trusted. Call before serving.
func (g *Registry) EnablePprof() { mountPprof(g.mux) }

// handleHealthz is the daemon liveness probe: 200 with a run-state
// summary. Every lifecycle state appears zero-filled, so probes can
// index any state count without null handling.
func (g *Registry) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	counts := map[string]int{}
	for st := core.RunPending; st <= core.RunCancelled; st++ {
		counts[st.String()] = 0
	}
	active := 0
	for _, r := range g.List() {
		st := r.State()
		counts[st.String()]++
		if !st.Terminal() {
			active++
		}
	}
	writeJSON(w, map[string]any{"ok": true, "active_runs": active, "runs": counts})
}

// Pool exposes the shared admission pool (nil when unbounded).
func (g *Registry) Pool() *pilot.Pool { return g.pool }

// Launch starts one run from a validated launch request. It performs
// all fallible setup (spec construction, checkpoint load, collector
// restore) before admission, so a rejected or failed launch never
// consumes pool cores. Admission errors wrap pilot.ErrPoolExhausted or
// ErrMaxRuns.
func (g *Registry) Launch(l *config.Launch) (*Run, error) {
	spec, err := l.Sim.ToSpec()
	if err != nil {
		return nil, err
	}
	machine, ps, err := l.Res.Resolve()
	if err != nil {
		return nil, err
	}
	if l.Resume != "" {
		data, err := ckpt.Load(l.Resume)
		if err != nil {
			return nil, err
		}
		snap, err := core.DecodeSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("serve: resume checkpoint %s: %v", l.Resume, err)
		}
		spec.Resume = snap
	}

	// Per-run bus and collector: the registry always attaches them so
	// /runs/{id}/stats, /metrics and /events work for every run, and so
	// events from concurrent runs can never reach another run's view.
	spec.Bus = core.NewBus()
	colCfg := analysis.ConfigFromSpec(spec)
	colCfg.WindowEvents = l.Sim.WindowEvents
	col := analysis.New(colCfg)
	col.Attach(spec.Bus, analysis.RunBuffer(spec))
	// The respace planner reads this run's collector; ToSpec left the
	// field nil because the collector did not exist yet.
	if spec.Respace != nil {
		spec.Respace.Planner = respace.NewPlanner(col)
	}
	if spec.Resume != nil {
		if len(spec.Resume.Analysis) > 0 {
			if err := col.Restore(spec.Resume.Analysis); err != nil {
				return nil, fmt.Errorf("serve: resume checkpoint %s: %v", l.Resume, err)
			}
		} else if err := col.SeedResume(spec.Resume); err != nil {
			return nil, fmt.Errorf("serve: resume checkpoint %s: %v", l.Resume, err)
		}
	}

	g.mu.Lock()
	if g.maxRuns > 0 {
		active := 0
		for _, r := range g.order {
			if !r.State().Terminal() {
				active++
			}
		}
		if active >= g.maxRuns {
			g.mu.Unlock()
			return nil, fmt.Errorf("%w: %d active", ErrMaxRuns, active)
		}
	}
	if err := g.pool.Acquire(ps.Cores); err != nil {
		g.mu.Unlock()
		return nil, err
	}
	g.nextID++
	id := fmt.Sprintf("r%d", g.nextID)

	ctx, cancel := context.WithCancel(context.Background())
	run := &Run{
		ID:     id,
		spec:   spec,
		bus:    spec.Bus,
		col:    col,
		engine: l.Sim.Engine,
		cores:  ps.Cores,
		cancel: cancel,
		done:   make(chan struct{}),
		state:  core.RunPending,
	}
	// Per-run flight recorder: bounded and drop-oldest like the bus, so
	// it is safe to attach unconditionally; /runs/{id}/trace serves it.
	rec := trace.New(g.traceEvents)
	spec.Tracer = rec
	run.srv = New(col, run.baseStatus)
	run.srv.SetRunLabel(id)
	run.srv.SetTracer(rec)
	g.runs[id] = run
	g.order = append(g.order, run)
	g.wg.Add(1)
	g.mu.Unlock()

	if l.Checkpoint != "" {
		path := l.Checkpoint
		spec.SnapshotEvery = l.CheckpointEvery
		// With CheckpointEvery 0 the dispatcher writes no periodic
		// snapshots, but a cancellation still delivers its final
		// boundary snapshot here.
		spec.OnSnapshot = func(sn *core.Snapshot) {
			if data, err := col.EncodeState(); err == nil {
				sn.Analysis = data
			} else {
				g.log.Error("encoding analysis state", "run", id, "error", err)
			}
			data, err := sn.Encode()
			if err == nil {
				err = ckpt.WriteAtomic(path, data)
			}
			if err != nil {
				g.log.Error("checkpoint write failed", "run", id, "error", err)
			}
		}
	}

	atoms, engine := l.Sim.Atoms, l.Sim.Engine
	g.log.Info("run launched", "run", id, "name", spec.Name,
		"engine", engine, "trigger", spec.TriggerName(),
		"replicas", spec.Replicas(), "cores", ps.Cores)
	go func() {
		defer g.wg.Done()
		defer g.pool.Release(ps.Cores)
		report, err := bench.Run(bench.RunParams{
			Spec:          spec,
			Cluster:       machine,
			PilotCores:    ps.Cores,
			PilotWalltime: ps.Walltime,
			Pilots:        ps.Pilots,
			Chaos:         ps.Chaos,
			NewEngine: func(seed int64) core.Engine {
				return engines.NewNamedVirtual(engine, atoms, seed)
			},
			Seed:    spec.Seed,
			Context: ctx,
			OnStart: func(sim *core.Simulation) {
				run.mu.Lock()
				run.state = core.RunRunning
				run.sim = sim
				run.mu.Unlock()
			},
		})
		run.finish(report, err)
		if err != nil && !errors.Is(err, core.ErrRunCancelled) {
			g.log.Error("run failed", "run", id, "error", err)
		} else {
			g.log.Info("run finished", "run", id, "state", run.State().String())
		}
	}()
	return run, nil
}

// Get returns a run by id.
func (g *Registry) Get(id string) (*Run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	return r, ok
}

// List returns every run in launch order.
func (g *Registry) List() []*Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Run(nil), g.order...)
}

// Cancel requests cancellation of one run.
func (g *Registry) Cancel(id string) error {
	r, ok := g.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrRunNotFound, id)
	}
	r.Cancel()
	return nil
}

// CancelAll requests cancellation of every non-terminal run (the
// SIGTERM drain path).
func (g *Registry) CancelAll() {
	for _, r := range g.List() {
		if !r.State().Terminal() {
			r.Cancel()
		}
	}
}

// Wait blocks until every launched run has finished, or the timeout
// elapses; it reports whether the registry fully drained.
func (g *Registry) Wait(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// DaemonStatus is the registry's GET /status payload.
type DaemonStatus struct {
	// Runs holds every run's status, in launch order.
	Runs []RunStatus `json:"runs"`
	// ActiveRuns counts non-terminal runs; MaxRuns echoes the admission
	// bound (0: unbounded).
	ActiveRuns int `json:"active_runs"`
	MaxRuns    int `json:"max_runs"`
	// PoolCoresTotal/Used describe the shared core pool (total 0:
	// unbounded, used then untracked).
	PoolCoresTotal int `json:"pool_cores_total"`
	PoolCoresUsed  int `json:"pool_cores_used"`
}

func (g *Registry) handleDaemonStatus(w http.ResponseWriter, _ *http.Request) {
	runs := g.List()
	ds := DaemonStatus{
		Runs:           make([]RunStatus, 0, len(runs)),
		MaxRuns:        g.maxRuns,
		PoolCoresTotal: g.pool.Total(),
		PoolCoresUsed:  g.pool.Used(),
	}
	for _, r := range runs {
		st := r.fullStatus()
		if !r.State().Terminal() {
			ds.ActiveRuns++
		}
		ds.Runs = append(ds.Runs, st)
	}
	writeJSON(w, ds)
}

func (g *Registry) handleLaunch(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	l, err := config.ParseLaunch(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	run, err := g.Launch(l)
	switch {
	case err == nil:
	case errors.Is(err, pilot.ErrPoolExhausted), errors.Is(err, ErrMaxRuns):
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, run.fullStatus())
}

func (g *Registry) handleList(w http.ResponseWriter, _ *http.Request) {
	runs := g.List()
	out := make([]RunStatus, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.fullStatus())
	}
	writeJSON(w, out)
}

func (g *Registry) handleCancel(w http.ResponseWriter, req *http.Request) {
	run, ok := g.Get(req.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such run")
		return
	}
	g.log.Info("cancellation requested", "run", run.ID)
	run.Cancel()
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, run.fullStatus())
}

// PoolPatch is the PATCH /pool request body: the pool's new total core
// budget.
type PoolPatch struct {
	TotalCores int `json:"total_cores"`
}

// PoolStatus is the PATCH /pool response: the pool after the resize.
// Used may exceed Total right after a shrink — running runs keep their
// reservation and the pool is over-committed until they release.
type PoolStatus struct {
	TotalCores int `json:"total_cores"`
	UsedCores  int `json:"used_cores"`
}

// handlePoolResize resizes the shared admission pool while the daemon
// runs (elastic allocations: the machine grew or shrank under us).
// Admission of future launches re-checks against the new total; running
// runs are never revoked.
func (g *Registry) handlePoolResize(w http.ResponseWriter, req *http.Request) {
	if g.pool == nil {
		httpError(w, http.StatusBadRequest, "daemon runs with an unbounded pool; restart with -cores to bound it")
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, 1<<16))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var p PoolPatch
	if err := json.Unmarshal(body, &p); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := g.pool.Resize(p.TotalCores); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	g.log.Info("pool resized", "total_cores", g.pool.Total(), "used_cores", g.pool.Used())
	writeJSON(w, PoolStatus{TotalCores: g.pool.Total(), UsedCores: g.pool.Used()})
}

// perRun adapts one of the per-run Server handlers to a /runs/{id}/...
// route.
func (g *Registry) perRun(h func(*Server, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		run, ok := g.Get(req.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such run")
			return
		}
		h(run.srv, w, req)
	}
}

// handleAggregateMetrics renders every run's series into one scrape,
// each line labelled run="<id>" so runs sharing a dimension layout
// (identical dim/pair label sets) stay distinct after federation.
func (g *Registry) handleAggregateMetrics(w http.ResponseWriter, _ *http.Request) {
	runs := g.List()
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP repexd_runs Registered runs by lifecycle state.\n# TYPE repexd_runs gauge\n")
	counts := map[core.RunState]int{}
	views := make([]runView, 0, len(runs))
	for _, r := range runs {
		counts[r.State()]++
		views = append(views, r.view())
	}
	for st := core.RunPending; st <= core.RunCancelled; st++ {
		fmt.Fprintf(&b, "repexd_runs{state=%q} %d\n", st.String(), counts[st])
	}
	fmt.Fprintf(&b, "# HELP repexd_pool_cores_total Shared core-pool capacity (0: unbounded).\n# TYPE repexd_pool_cores_total gauge\nrepexd_pool_cores_total %d\n", g.pool.Total())
	fmt.Fprintf(&b, "# HELP repexd_pool_cores_used Cores admitted to active runs.\n# TYPE repexd_pool_cores_used gauge\nrepexd_pool_cores_used %d\n", g.pool.Used())
	writeMetrics(&b, views)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// handleEvents streams the run's bus as server-sent events: one "md",
// "exchange" or "fault" event per record, then a final "done" event
// carrying the terminal state. The subscription ring is bounded, so a
// slow client loses oldest events rather than slowing the run.
func (g *Registry) handleEvents(w http.ResponseWriter, req *http.Request) {
	run, ok := g.Get(req.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such run")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sub := run.bus.Subscribe(1 << 12)
	defer run.bus.Unsubscribe(sub)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	var buf []core.Event
	flush := func() {
		buf = sub.Drain(buf[:0])
		for _, ev := range buf {
			writeSSE(w, ev)
		}
		if len(buf) > 0 {
			fl.Flush()
		}
	}
	for {
		flush()
		select {
		case <-req.Context().Done():
			return
		case <-run.done:
			// The run published everything before done closed; one last
			// drain completes the stream.
			flush()
			fmt.Fprintf(w, "event: done\ndata: {\"state\":%q}\n\n", run.State().String())
			fl.Flush()
			return
		case <-ticker.C:
		}
	}
}

// writeSSE renders one bus event as a server-sent event named by its
// concrete type.
func writeSSE(w io.Writer, ev core.Event) {
	name := "event"
	switch ev.(type) {
	case core.MDEvent:
		name = "md"
	case core.ExchangeEvent:
		name = "exchange"
	case core.FaultEvent:
		name = "fault"
	case core.RespaceEvent:
		name = "respace"
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
