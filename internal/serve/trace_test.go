package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/trace"
)

// chromeDoc is the subset of the Chrome trace-event format the tests
// decode.
type chromeDoc struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Pid  int    `json:"pid"`
		Tid  int    `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func completeSpans(doc chromeDoc) int {
	n := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			n++
		}
	}
	return n
}

// TestTraceEndpointWithoutRecorder: a server with no recorder attached
// answers /trace with 404, not an empty trace.
func TestTraceEndpointWithoutRecorder(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /trace without recorder: status %d, want 404", resp.StatusCode)
	}
}

// tracedServer is testServer plus an attached flight recorder holding a
// few spans.
func tracedServer(t *testing.T) (*httptest.Server, *trace.Recorder) {
	t.Helper()
	rec := trace.New(64)
	rec.Record(trace.Span{Kind: trace.KindMD, Start: 0, Dur: 10, Replica: 0, Pilot: 0})
	rec.Record(trace.Span{Kind: trace.KindMD, Start: 0, Dur: 11, Replica: 1, Pilot: 0})
	rec.Record(trace.Span{Kind: trace.KindExchange, Start: 11, Dur: 1, Dim: 0, Pairs: 2, Accepted: 1})
	s := serve.New(seededCollector(), func() serve.RunStatus {
		return serve.RunStatus{Name: "unit", State: "running", Replicas: 4}
	})
	s.SetTracer(rec)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, rec
}

func TestTraceEndpointServesChromeJSON(t *testing.T) {
	ts, _ := tracedServer(t)
	var doc chromeDoc
	if err := json.Unmarshal(get(t, ts.URL+"/trace"), &doc); err != nil {
		t.Fatalf("/trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	// 2 MD spans x 2 tracks + 1 exchange span.
	if n := completeSpans(doc); n != 5 {
		t.Fatalf("%d complete events, want 5", n)
	}
}

// TestTraceStatusAndMetrics: the recorder's counters surface in /status
// and as run-labelled counters in /metrics — and the families are
// absent entirely when no recorder is attached.
func TestTraceStatusAndMetrics(t *testing.T) {
	ts, rec := tracedServer(t)
	var st serve.RunStatus
	if err := json.Unmarshal(get(t, ts.URL+"/status"), &st); err != nil {
		t.Fatal(err)
	}
	if st.TraceCapacity != rec.Capacity() || st.TraceSpans != rec.Recorded() {
		t.Fatalf("status trace counters %d/%d, want %d/%d",
			st.TraceCapacity, st.TraceSpans, rec.Capacity(), rec.Recorded())
	}
	metrics := string(get(t, ts.URL+"/metrics"))
	if !strings.Contains(metrics, "repex_trace_spans_total 3") {
		t.Fatalf("metrics missing repex_trace_spans_total 3:\n%s", metrics)
	}
	if !strings.Contains(metrics, "repex_trace_dropped_total 0") {
		t.Fatalf("metrics missing repex_trace_dropped_total:\n%s", metrics)
	}

	plain, _ := testServer(t)
	if m := string(get(t, plain.URL+"/metrics")); strings.Contains(m, "repex_trace_") {
		t.Fatal("tracer-less server exports repex_trace_* families")
	}
}

func TestHealthzEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var h struct {
		OK             bool   `json:"ok"`
		State          string `json:"state"`
		ExchangeEvents int    `json:"exchange_events"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.State != "running" || h.ExchangeEvents != 1 {
		t.Fatalf("healthz %+v", h)
	}
}

// TestPprofOptIn: the profile endpoints exist only after EnablePprof.
func TestPprofOptIn(t *testing.T) {
	off, _ := testServer(t)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without opt-in: status %d", resp.StatusCode)
	}

	s := serve.New(nil, nil)
	s.EnablePprof()
	on := httptest.NewServer(s.Handler())
	t.Cleanup(on.Close)
	if body := string(get(t, on.URL+"/debug/pprof/")); !strings.Contains(body, "profile") {
		t.Fatalf("pprof index unexpected after EnablePprof:\n%.200s", body)
	}
}

// TestRegistryHealthz: the daemon healthz is a JSON run-state summary
// with every lifecycle state zero-filled (probes index counts without
// null handling).
func TestRegistryHealthz(t *testing.T) {
	_, ts := newDaemon(t, 8, 0)
	var h struct {
		OK         bool           `json:"ok"`
		ActiveRuns int            `json:"active_runs"`
		Runs       map[string]int `json:"runs"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK {
		t.Fatal("healthz not ok")
	}
	for _, state := range []string{"pending", "running", "completed", "failed", "cancelled"} {
		if _, present := h.Runs[state]; !present {
			t.Fatalf("healthz runs map missing zero-filled state %q: %v", state, h.Runs)
		}
	}

	st, code := postRun(t, ts.URL, launchBody(simBody("hz", 4, 2, 7), resBody8, ""))
	if code != http.StatusCreated {
		t.Fatalf("launch: %d", code)
	}
	waitFor(t, ts.URL, st.ID, func(s serve.RunStatus) bool { return terminal(s.State) }, "completion")
	if err := json.Unmarshal(get(t, ts.URL+"/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if h.Runs["completed"] != 1 || h.ActiveRuns != 0 {
		t.Fatalf("healthz after completion: %+v", h)
	}
}

// TestRegistryRunTrace: every registry-launched run has a flight
// recorder; after completion /runs/{id}/trace serves a loadable trace
// whose MD events cover every completed segment on the replica and
// pilot tracks, and the aggregate scrape carries the run-labelled trace
// counters.
func TestRegistryRunTrace(t *testing.T) {
	reg, ts := newDaemon(t, 8, 0)
	reg.SetTraceEvents(256)
	st, code := postRun(t, ts.URL, launchBody(simBody("traced", 4, 2, 11), resBody8, ""))
	if code != http.StatusCreated {
		t.Fatalf("launch: %d", code)
	}
	fin := waitFor(t, ts.URL, st.ID, func(s serve.RunStatus) bool { return terminal(s.State) }, "completion")
	if fin.State != "completed" {
		t.Fatalf("run ended %q: %s", fin.State, fin.Error)
	}
	if fin.TraceCapacity != 256 || fin.TraceSpans == 0 {
		t.Fatalf("status trace counters %d/%d, want capacity 256 and spans > 0",
			fin.TraceCapacity, fin.TraceSpans)
	}

	var doc chromeDoc
	if err := json.Unmarshal(get(t, ts.URL+"/runs/"+st.ID+"/trace"), &doc); err != nil {
		t.Fatalf("/runs/{id}/trace is not valid JSON: %v", err)
	}
	md := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "md" {
			md++
		}
	}
	// 4 replicas x 2 cycles, each segment on the replica and the pilot
	// track.
	if md != 16 {
		t.Fatalf("%d md events, want 16 (4 replicas x 2 cycles x 2 tracks)", md)
	}

	metrics := string(get(t, ts.URL+"/metrics"))
	if !strings.Contains(metrics, `repex_trace_spans_total{run="`+st.ID+`"}`) {
		t.Fatalf("aggregate scrape missing run-labelled repex_trace_spans_total:\n%.400s", metrics)
	}
}
