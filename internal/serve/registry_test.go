package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// simBody renders a barrier T-REMD simulation block: the trigger whose
// cancel+resume path is bit-exact at every snapshot boundary.
func simBody(name string, replicas, cycles int, seed int64) string {
	return fmt.Sprintf(`{
		"name": %q, "seed": %d,
		"dimensions": [{"type": "T", "count": %d, "min": 273, "max": 373}],
		"cores_per_replica": 1, "steps_per_cycle": 2000, "cycles": %d
	}`, name, seed, replicas, cycles)
}

const resBody8 = `{"machine": "small", "nodes": 1, "cores_per_node": 8, "pilot_cores": 8}`

// launchBody assembles a POST /runs body; extra is appended inside the
// top-level object (e.g. `"checkpoint": "/tmp/x", "checkpoint_every": 2`).
func launchBody(sim, res, extra string) string {
	b := `{"sim": ` + sim + `, "res": ` + res
	if extra != "" {
		b += ", " + extra
	}
	return b + "}"
}

func postRun(t *testing.T, base, body string) (serve.RunStatus, int) {
	t.Helper()
	resp, err := http.Post(base+"/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.RunStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getRunStatus(t *testing.T, base, id string) serve.RunStatus {
	t.Helper()
	resp, err := http.Get(base + "/runs/" + id + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/%s/status: %d", id, resp.StatusCode)
	}
	var st serve.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func terminal(state string) bool {
	return state == "completed" || state == "failed" || state == "cancelled"
}

// waitFor polls the run's status until cond holds, failing after 60 s.
func waitFor(t *testing.T, base, id string, cond func(serve.RunStatus) bool, what string) serve.RunStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getRunStatus(t, base, id)
		if cond(st) {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("run %s: timed out waiting for %s", id, what)
	return serve.RunStatus{}
}

func cancelRun(t *testing.T, base, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, base+"/runs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE /runs/%s: %d", id, resp.StatusCode)
	}
}

func newDaemon(t *testing.T, totalCores, maxRuns int) (*serve.Registry, *httptest.Server) {
	t.Helper()
	reg := serve.NewRegistry(totalCores, maxRuns)
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(func() {
		reg.CancelAll()
		if !reg.Wait(30 * time.Second) {
			t.Error("registry did not drain on cleanup")
		}
		ts.Close()
	})
	return reg, ts
}

func TestRegistryLaunchToCompletionHTTP(t *testing.T) {
	reg, ts := newDaemon(t, 0, 0)
	st, code := postRun(t, ts.URL, launchBody(simBody("basic", 8, 4, 3), resBody8, ""))
	if code != http.StatusCreated || st.ID == "" {
		t.Fatalf("launch: code %d, status %+v", code, st)
	}
	final := waitFor(t, ts.URL, st.ID, func(s serve.RunStatus) bool { return terminal(s.State) }, "terminal state")
	if final.State != "completed" || final.ExchangeEvents != 4 {
		t.Fatalf("final status %+v, want completed with 4 events", final)
	}
	run, ok := reg.Get(st.ID)
	if !ok {
		t.Fatalf("run %s not in registry", st.ID)
	}
	<-run.Done()
	if report, err := run.Result(); err != nil || report.ExchangeEvents != 4 {
		t.Fatalf("result: %v, %+v", err, report)
	}

	// /runs lists it; /stats serves; bad body and unknown ids are
	// rejected with typed errors.
	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var list []serve.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list %+v", list)
	}
	for path, want := range map[string]int{
		"/runs/" + st.ID + "/stats":   http.StatusOK,
		"/runs/" + st.ID + "/metrics": http.StatusOK,
		"/runs/nope/status":           http.StatusNotFound,
		"/healthz":                    http.StatusOK,
		"/status":                     http.StatusOK,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: %d, want %d", path, resp.StatusCode, want)
		}
	}
	if _, code := postRun(t, ts.URL, `{"sim": {`); code != http.StatusBadRequest {
		t.Errorf("malformed body accepted: %d", code)
	}
	if _, code := postRun(t, ts.URL, `{"res": `+resBody8+`}`); code != http.StatusBadRequest {
		t.Errorf("missing sim accepted: %d", code)
	}
}

// TestRegistryConcurrentPoolCancelResume is the acceptance scenario:
// one process runs three concurrent runs against one bounded core pool
// (a fourth is turned away), one run is cancelled mid-flight through
// the API and reaches "cancelled" with a valid final snapshot, the
// others complete, and resuming the snapshot reproduces the
// uninterrupted run's slot history bit-exactly.
func TestRegistryConcurrentPoolCancelResume(t *testing.T) {
	reg, ts := newDaemon(t, 24, 0)
	ck := filepath.Join(t.TempDir(), "victim.ckpt")

	// The cancel target's cycle budget only bounds the run; a barrier
	// run's event sequence is budget-independent, so the reference run
	// below (same spec, same budget) shares its history prefix. If the
	// run ever outraces the DELETE, retry with a larger budget.
	cycles := 4000
	var victim serve.RunStatus
	var bID, cID string
	for attempt := 0; ; attempt++ {
		st, code := postRun(t, ts.URL, launchBody(simBody("victim", 8, cycles, 7), resBody8,
			fmt.Sprintf(`"checkpoint": %q, "checkpoint_every": 2`, ck)))
		if code != http.StatusCreated {
			t.Fatalf("victim launch: %d", code)
		}
		victim = st
		if attempt == 0 {
			// Two sibling runs share the pool with the victim: 24 cores
			// are now admitted, so an 8-core fourth run must be refused.
			b, code := postRun(t, ts.URL, launchBody(simBody("sib-b", 4, 8000, 8), resBody8, ""))
			if code != http.StatusCreated {
				t.Fatalf("sibling b launch: %d", code)
			}
			c, code := postRun(t, ts.URL, launchBody(simBody("sib-c", 6, 8000, 9), resBody8, ""))
			if code != http.StatusCreated {
				t.Fatalf("sibling c launch: %d", code)
			}
			bID, cID = b.ID, c.ID
			if used := reg.Pool().Used(); used != 24 {
				t.Fatalf("pool used %d, want 24", used)
			}
			if _, code := postRun(t, ts.URL, launchBody(simBody("overflow", 8, 4, 1), resBody8, "")); code != http.StatusTooManyRequests {
				t.Fatalf("overflow launch: %d, want 429", code)
			}
		}
		waitFor(t, ts.URL, victim.ID, func(s serve.RunStatus) bool {
			return s.ExchangeEvents >= 2 || terminal(s.State)
		}, "progress")
		cancelRun(t, ts.URL, victim.ID)
		final := waitFor(t, ts.URL, victim.ID, func(s serve.RunStatus) bool { return terminal(s.State) }, "terminal state")
		if final.State == "cancelled" {
			break
		}
		if final.State != "completed" || attempt >= 3 {
			t.Fatalf("victim reached %q (attempt %d)", final.State, attempt)
		}
		cycles *= 4
	}

	run, _ := reg.Get(victim.ID)
	<-run.Done()
	if _, err := run.Result(); !errors.Is(err, core.ErrRunCancelled) {
		t.Fatalf("victim error %v, want ErrRunCancelled", err)
	}
	for _, id := range []string{bID, cID} {
		if st := waitFor(t, ts.URL, id, func(s serve.RunStatus) bool { return terminal(s.State) }, "terminal state"); st.State != "completed" {
			t.Fatalf("sibling %s reached %q, want completed", id, st.State)
		}
	}

	// The final snapshot is the cancellation boundary: decodable, within
	// the run, and the resume seed.
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("final snapshot invalid: %v", err)
	}
	if snap.Events < 2 || snap.Events >= cycles {
		t.Fatalf("snapshot at event %d, want within (2, %d)", snap.Events, cycles)
	}

	// Reference: the same spec uninterrupted.
	ref, code := postRun(t, ts.URL, launchBody(simBody("victim", 8, cycles, 7), resBody8, ""))
	if code != http.StatusCreated {
		t.Fatalf("reference launch: %d", code)
	}
	waitFor(t, ts.URL, ref.ID, func(s serve.RunStatus) bool { return s.State == "completed" }, "completion")
	refRun, _ := reg.Get(ref.ID)
	<-refRun.Done()
	refReport, err := refRun.Result()
	if err != nil {
		t.Fatal(err)
	}

	res, code := postRun(t, ts.URL, launchBody(simBody("victim", 8, cycles, 7), resBody8,
		fmt.Sprintf(`"resume": %q`, ck)))
	if code != http.StatusCreated {
		t.Fatalf("resume launch: %d", code)
	}
	waitFor(t, ts.URL, res.ID, func(s serve.RunStatus) bool { return s.State == "completed" }, "completion")
	resRun, _ := reg.Get(res.ID)
	<-resRun.Done()
	resReport, err := resRun.Result()
	if err != nil {
		t.Fatal(err)
	}
	if resReport.ExchangeEvents != refReport.ExchangeEvents {
		t.Fatalf("resumed run fired %d events, reference %d", resReport.ExchangeEvents, refReport.ExchangeEvents)
	}
	if resReport.SlotRows != refReport.SlotRows || resReport.SlotFingerprint != refReport.SlotFingerprint {
		t.Fatalf("cancel+resume history (%d rows, %#x) differs from uninterrupted run (%d rows, %#x)",
			resReport.SlotRows, resReport.SlotFingerprint, refReport.SlotRows, refReport.SlotFingerprint)
	}

	if used := reg.Pool().Used(); used != 0 {
		t.Fatalf("pool still holds %d cores after all runs finished", used)
	}
}

// TestRegistryMaxRuns: the active-run bound turns the N+1th launch away
// with 429 and admits again once a slot frees.
func TestRegistryMaxRuns(t *testing.T) {
	_, ts := newDaemon(t, 0, 1)
	st, code := postRun(t, ts.URL, launchBody(simBody("only", 8, 200000, 3), resBody8, ""))
	if code != http.StatusCreated {
		t.Fatalf("launch: %d", code)
	}
	if _, code := postRun(t, ts.URL, launchBody(simBody("second", 8, 4, 4), resBody8, "")); code != http.StatusTooManyRequests {
		t.Fatalf("second launch: %d, want 429", code)
	}
	cancelRun(t, ts.URL, st.ID)
	waitFor(t, ts.URL, st.ID, func(s serve.RunStatus) bool { return terminal(s.State) }, "terminal state")
	if _, code := postRun(t, ts.URL, launchBody(simBody("second", 8, 4, 4), resBody8, "")); code != http.StatusCreated {
		t.Fatalf("post-drain launch: %d, want 201", code)
	}
}

// TestRegistryParallelLaunchCancelInspect hammers the control plane
// from many goroutines (launch, inspect, list, cancel) — the -race
// exercise for the registry's locking.
func TestRegistryParallelLaunchCancelInspect(t *testing.T) {
	reg, ts := newDaemon(t, 0, 0)
	const n = 8
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, code := postRun(t, ts.URL, launchBody(
				simBody(fmt.Sprintf("par-%d", i), 4+i%3, 50+i, int64(i+1)), resBody8, ""))
			if code != http.StatusCreated {
				t.Errorf("launch %d: %d", i, code)
				return
			}
			ids[i] = st.ID
			for j := 0; j < 20; j++ {
				getRunStatus(t, ts.URL, st.ID)
				if _, err := http.Get(ts.URL + "/runs"); err != nil {
					t.Error(err)
				}
			}
			if i%2 == 0 {
				cancelRun(t, ts.URL, st.ID)
			}
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id == "" {
			continue
		}
		st := waitFor(t, ts.URL, id, func(s serve.RunStatus) bool { return terminal(s.State) }, "terminal state")
		if st.State == "failed" {
			t.Errorf("run %s failed: %s", id, st.Error)
		}
	}
	if !reg.Wait(30 * time.Second) {
		t.Fatal("registry did not drain")
	}
	if used := reg.Pool().Used(); used != 0 {
		t.Fatalf("pool used %d after drain", used)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data []byte
}

func readSSE(t *testing.T, url string) []sseEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == "done" {
					return events
				}
			}
			cur = sseEvent{}
		}
	}
	t.Fatalf("SSE stream %s ended without a done event: %v", url, sc.Err())
	return nil
}

// TestRegistryEventStreamsDoNotBleed runs two concurrent runs with
// different replica counts and asserts each SSE stream only ever
// carries events shaped like its own run.
func TestRegistryEventStreamsDoNotBleed(t *testing.T) {
	_, ts := newDaemon(t, 0, 0)
	small, code := postRun(t, ts.URL, launchBody(simBody("bleed-small", 4, 5000, 5), resBody8, ""))
	if code != http.StatusCreated {
		t.Fatalf("small launch: %d", code)
	}
	big, code := postRun(t, ts.URL, launchBody(simBody("bleed-big", 8, 5000, 6), resBody8, ""))
	if code != http.StatusCreated {
		t.Fatalf("big launch: %d", code)
	}

	check := func(id string, replicas int) int {
		events := readSSE(t, ts.URL+"/runs/"+id+"/events")
		exchanges := 0
		for _, ev := range events {
			switch ev.name {
			case "exchange":
				var e struct {
					Slots []int
				}
				if err := json.Unmarshal(ev.data, &e); err != nil {
					t.Fatal(err)
				}
				if len(e.Slots) != replicas {
					t.Fatalf("run %s: exchange event with %d slots, run has %d replicas — cross-run bleed",
						id, len(e.Slots), replicas)
				}
				exchanges++
			case "md", "fault":
				var e struct {
					Replica int
				}
				if err := json.Unmarshal(ev.data, &e); err != nil {
					t.Fatal(err)
				}
				if e.Replica < 0 || e.Replica >= replicas {
					t.Fatalf("run %s: event for replica %d outside its %d replicas — cross-run bleed",
						id, e.Replica, replicas)
				}
			case "done":
				var e struct {
					State string
				}
				if err := json.Unmarshal(ev.data, &e); err != nil {
					t.Fatal(err)
				}
				if e.State != "completed" {
					t.Fatalf("run %s done state %q", id, e.State)
				}
			}
		}
		return exchanges
	}
	var wg sync.WaitGroup
	counts := make([]int, 2)
	wg.Add(2)
	go func() { defer wg.Done(); counts[0] = check(small.ID, 4) }()
	go func() { defer wg.Done(); counts[1] = check(big.ID, 8) }()
	wg.Wait()
	if counts[0] == 0 && counts[1] == 0 {
		t.Fatal("neither stream observed an exchange event; the bleed check never engaged")
	}
}

// TestRegistryResumesTwoDistinctCheckpoints cancels two different runs,
// then resumes both concurrently from their own snapshots: each resumed
// run must carry its own identity and finish from its own boundary.
func TestRegistryResumesTwoDistinctCheckpoints(t *testing.T) {
	reg, ts := newDaemon(t, 0, 0)
	dir := t.TempDir()
	cks := []string{filepath.Join(dir, "one.ckpt"), filepath.Join(dir, "two.ckpt")}
	names := []string{"resume-one", "resume-two"}
	seeds := []int64{41, 42}
	snaps := make([]*core.Snapshot, 2)
	for i := range cks {
		st, code := postRun(t, ts.URL, launchBody(simBody(names[i], 8, 400000, seeds[i]), resBody8,
			fmt.Sprintf(`"checkpoint": %q, "checkpoint_every": 2`, cks[i])))
		if code != http.StatusCreated {
			t.Fatalf("launch %s: %d", names[i], code)
		}
		waitFor(t, ts.URL, st.ID, func(s serve.RunStatus) bool {
			return s.ExchangeEvents >= 2 || terminal(s.State)
		}, "progress")
		cancelRun(t, ts.URL, st.ID)
		if st := waitFor(t, ts.URL, st.ID, func(s serve.RunStatus) bool { return terminal(s.State) }, "terminal state"); st.State != "cancelled" {
			t.Fatalf("run %s reached %q, want cancelled", names[i], st.State)
		}
		data, err := os.ReadFile(cks[i])
		if err != nil {
			t.Fatal(err)
		}
		if snaps[i], err = core.DecodeSnapshot(data); err != nil {
			t.Fatal(err)
		}
	}

	// Both resumes run concurrently, each under a budget past its own
	// boundary; a swapped checkpoint (wrong name) must be refused.
	resumed := make([]string, 2)
	for i := range cks {
		cycles := snaps[i].Events + 20
		st, code := postRun(t, ts.URL, launchBody(simBody(names[i], 8, cycles, seeds[i]), resBody8,
			fmt.Sprintf(`"resume": %q`, cks[i])))
		if code != http.StatusCreated {
			t.Fatalf("resume %s: %d", names[i], code)
		}
		resumed[i] = st.ID
	}
	for i, id := range resumed {
		st := waitFor(t, ts.URL, id, func(s serve.RunStatus) bool { return terminal(s.State) }, "terminal state")
		if st.State != "completed" || st.Name != names[i] {
			t.Fatalf("resumed run %s: state %q name %q, want completed %q", id, st.State, st.Name, names[i])
		}
		run, _ := reg.Get(id)
		<-run.Done()
		report, err := run.Result()
		if err != nil {
			t.Fatal(err)
		}
		if report.SlotRows != snaps[i].Events+20 {
			t.Fatalf("resumed run %s has %d history rows, want %d", id, report.SlotRows, snaps[i].Events+20)
		}
	}
	st, code := postRun(t, ts.URL, launchBody(simBody(names[1], 8, snaps[0].Events+20, seeds[1]), resBody8,
		fmt.Sprintf(`"resume": %q`, cks[0])))
	if code != http.StatusCreated {
		t.Fatalf("mismatched resume launch: %d", code)
	}
	if st := waitFor(t, ts.URL, st.ID, func(s serve.RunStatus) bool { return terminal(s.State) }, "terminal state"); st.State != "failed" ||
		!strings.Contains(st.Error, "belongs to") {
		t.Fatalf("mismatched resume reached %q (%s), want failed with a name check", st.State, st.Error)
	}
}

// validateExposition checks Prometheus text-format invariants: every
// sample belongs to the most recently declared family (families are
// contiguous), lines parse, and no series (name + label set) repeats.
func validateExposition(t *testing.T, body string) {
	t.Helper()
	if !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	declared := map[string]bool{}
	current := ""
	series := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if declared[parts[2]] {
				t.Fatalf("family %s declared twice (runs interleaved across families)", parts[2])
			}
			declared[parts[2]] = true
			current = parts[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !declared[name] && !declared[base] {
			t.Fatalf("sample %q precedes its TYPE declaration", line)
		}
		if name != current && base != current &&
			!strings.HasPrefix(name, "repexd_") {
			t.Fatalf("sample %q outside its family block (current %q)", line, current)
		}
		key := line[:strings.LastIndex(line, " ")]
		if series[key] {
			t.Fatalf("duplicate series %q", key)
		}
		series[key] = true
	}
}

// TestRegistryMetricsNoCollision is the gauge-collision regression
// test: two runs with an identical dimension layout must stay distinct
// series — labelled by run id — in both per-run and aggregate scrapes,
// and both expositions must be valid Prometheus text.
func TestRegistryMetricsNoCollision(t *testing.T) {
	_, ts := newDaemon(t, 0, 0)
	ids := make([]string, 2)
	for i := range ids {
		// Same layout (8-replica 1-dim T ladder), different seeds.
		st, code := postRun(t, ts.URL, launchBody(
			simBody(fmt.Sprintf("twin-%d", i), 8, 10, int64(50+i)), resBody8, ""))
		if code != http.StatusCreated {
			t.Fatalf("launch twin-%d: %d", i, code)
		}
		ids[i] = st.ID
		waitFor(t, ts.URL, st.ID, func(s serve.RunStatus) bool { return s.State == "completed" }, "completion")
	}

	for _, id := range ids {
		body := string(get(t, ts.URL+"/runs/"+id+"/metrics"))
		validateExposition(t, body)
		for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if !strings.Contains(line, fmt.Sprintf("run=%q", id)) {
				t.Fatalf("per-run scrape of %s has an unlabelled sample %q", id, line)
			}
		}
	}

	body := string(get(t, ts.URL+"/metrics"))
	validateExposition(t, body)
	// Both runs share pair label sets; the run label must keep the
	// series apart in one scrape.
	for _, id := range ids {
		want := fmt.Sprintf("repex_pair_attempts_total{run=%q,dim=\"0\",pair=\"0\"}", id)
		if !strings.Contains(body, want) {
			t.Fatalf("aggregate scrape missing %s", want)
		}
	}
	if !strings.Contains(body, `repexd_runs{state="completed"} 2`) {
		t.Fatalf("aggregate scrape missing the registry run-state gauge:\n%s", body[:min(len(body), 600)])
	}
	if !bytes.Contains([]byte(body), []byte("repexd_pool_cores_total 0")) {
		t.Fatal("aggregate scrape missing the pool gauges")
	}
}
