package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/serve"
)

// seededCollector returns a collector fed a small synthetic event
// stream: two MD completions, one relaunch and one exchange event.
func seededCollector() *analysis.Collector {
	col := analysis.New(analysis.Config{DimSizes: []int{4}, Replicas: 4})
	col.Apply(core.MDEvent{At: 10, Replica: 0, Cycle: 1, Exec: 120})
	col.Apply(core.MDEvent{At: 11, Replica: 1, Cycle: 1, Exec: 125})
	col.Apply(core.FaultEvent{At: 12, Replica: 2, Kind: core.FaultKindRelaunch, Retries: 1, Exec: 80})
	col.Apply(core.ExchangeEvent{
		At: 15, Event: 0, Dim: 0,
		Pairs: []core.PairOutcome{
			{Lo: 0, Hi: 1, ReplicaI: 0, ReplicaJ: 1, Accepted: true},
			{Lo: 2, Hi: 3, ReplicaI: 2, ReplicaJ: 3, Accepted: false},
		},
		Slots:  []int{1, 0, 2, 3},
		EXWall: 2.5,
	})
	return col
}

func testServer(t *testing.T) (*httptest.Server, *analysis.Collector) {
	t.Helper()
	col := seededCollector()
	s := serve.New(col, func() serve.RunStatus {
		return serve.RunStatus{Name: "unit", Engine: "amber", Trigger: "barrier",
			State: "running", Replicas: 4, Cores: 4, CyclesTarget: 2, BusPublished: 4}
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, col
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var b strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return []byte(b.String())
}

func TestStatusEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var st serve.RunStatus
	if err := json.Unmarshal(get(t, ts.URL+"/status"), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || st.Name != "unit" || st.Trigger != "barrier" {
		t.Fatalf("status %+v", st)
	}
	// Collector counters are merged into the status view.
	if st.ExchangeEvents != 1 || st.MDSegments != 2 {
		t.Fatalf("status counters events=%d segments=%d, want 1/2", st.ExchangeEvents, st.MDSegments)
	}
	if st.Faults[core.FaultKindRelaunch] != 1 {
		t.Fatalf("status faults %v, want one relaunch", st.Faults)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, col := testServer(t)
	var stats analysis.Stats
	if err := json.Unmarshal(get(t, ts.URL+"/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	want := col.Snapshot()
	if stats.Events != want.Events || stats.MDSegments != want.MDSegments {
		t.Fatalf("stats %+v, collector %+v", stats, want)
	}
	if stats.Acceptance[0][0].Accepted != 1 || stats.Acceptance[0][2].Attempted != 1 {
		t.Fatalf("acceptance %v", stats.Acceptance)
	}
	if stats.Slots[0] != 1 || stats.Slots[1] != 0 {
		t.Fatalf("slots %v, want post-exchange assignment", stats.Slots)
	}
}

// metricLine matches one Prometheus sample line (metric name, optional
// labels, float value).
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

func TestMetricsEndpointWellFormed(t *testing.T) {
	ts, _ := testServer(t)
	body := string(get(t, ts.URL+"/metrics"))
	if !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
	}
	for _, m := range []string{
		"repex_exchange_events_total", "repex_md_segments_total",
		"repex_pair_acceptance_ratio", "repex_acceptance_ratio_window",
		"repex_acceptance_window_attempts", "repex_acceptance_window_events",
		"repex_md_exec_seconds",
		"repex_exchange_wall_seconds", "repex_bus_dropped_total",
	} {
		if _, ok := typed[m]; !ok {
			t.Fatalf("metric %s missing a TYPE declaration", m)
		}
	}
	if typed["repex_acceptance_ratio_window"] != "gauge" {
		t.Fatalf("repex_acceptance_ratio_window typed %q, want gauge", typed["repex_acceptance_ratio_window"])
	}
	// The seeded collector attempted pair (0,1) once (accepted) and pair
	// (2,3) once (rejected); the rolling window must show 1.0 for pair 0,
	// and the untouched pair (1,2) must expose zero attempts but NO ratio
	// sample — an empty window has no ratio, and 0 would read as
	// collapsed acceptance.
	if !strings.Contains(body, "repex_acceptance_ratio_window{dim=\"0\",pair=\"0\"} 1\n") {
		t.Fatal("windowed acceptance ratio for pair (0,1) missing or wrong")
	}
	if !strings.Contains(body, "repex_acceptance_window_attempts{dim=\"0\",pair=\"1\"} 0\n") {
		t.Fatal("windowed attempts for the untouched pair (1,2) missing or wrong")
	}
	if strings.Contains(body, "repex_acceptance_ratio_window{dim=\"0\",pair=\"1\"}") {
		t.Fatal("empty window emitted a ratio sample for pair (1,2)")
	}
	if typed["repex_md_exec_seconds"] != "histogram" {
		t.Fatalf("repex_md_exec_seconds typed %q, want histogram", typed["repex_md_exec_seconds"])
	}

	// Histogram buckets must be cumulative and capped by the +Inf
	// bucket, which must equal _count.
	bucket := regexp.MustCompile(`^repex_md_exec_seconds_bucket\{le="([^"]+)"\} ([0-9]+)$`)
	last := int64(-1)
	infSeen := false
	var inf, count int64
	for _, line := range strings.Split(body, "\n") {
		if m := bucket.FindStringSubmatch(line); m != nil {
			v, _ := strconv.ParseInt(m[2], 10, 64)
			if v < last {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			last = v
			if m[1] == "+Inf" {
				infSeen = true
				inf = v
			}
		}
		if strings.HasPrefix(line, "repex_md_exec_seconds_count ") {
			count, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket")
	}
	// 2 final MD results + 1 relaunched attempt.
	if inf != count || count != 3 {
		t.Fatalf("+Inf bucket %d, _count %d, want both 3", inf, count)
	}
}

func TestServerStartAndClose(t *testing.T) {
	s := serve.New(nil, nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil-source /status returned %d", resp.StatusCode)
	}
}

// TestFeedbackControllerSurfaces: a status source carrying per-dim
// feedback controller state must surface it on /status (the feedback
// block) and /metrics (the repex_feedback_* gauges, notably the
// saturation diagnostic).
func TestFeedbackControllerSurfaces(t *testing.T) {
	feedback := []core.FeedbackDimStatus{
		{Dim: 0, Target: 0.4, Measured: 0.38, Outcomes: 32, Window: 120, MinReady: 3, Integral: 0.2, Active: true},
		{Dim: 1, Target: 0.25, Measured: 0.02, Outcomes: 32, Window: 800, MinReady: 0, Integral: 1.4, Active: true, Saturated: true},
	}
	s := serve.New(seededCollector(), func() serve.RunStatus {
		return serve.RunStatus{Name: "unit", Trigger: "feedback", State: "running", Feedback: feedback}
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var st serve.RunStatus
	if err := json.Unmarshal(get(t, ts.URL+"/status"), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Feedback) != 2 || !st.Feedback[1].Saturated || st.Feedback[0].Saturated {
		t.Fatalf("/status feedback block %+v", st.Feedback)
	}
	if st.Feedback[1].Window != 800 || st.Feedback[0].Target != 0.4 {
		t.Fatalf("/status feedback values lost: %+v", st.Feedback)
	}

	body := string(get(t, ts.URL+"/metrics"))
	for _, want := range []string{
		"# TYPE repex_feedback_saturated gauge",
		`repex_feedback_saturated{dim="0"} 0`,
		`repex_feedback_saturated{dim="1"} 1`,
		`repex_feedback_target{dim="1"} 0.25`,
		`repex_feedback_window_seconds{dim="1"} 800`,
		`repex_feedback_min_ready{dim="0"} 3`,
		`repex_feedback_acceptance_measured{dim="0"} 0.38`,
		`repex_feedback_integral{dim="1"} 1.4`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Non-feedback runs must not emit the gauges at all.
	plain := serve.New(nil, func() serve.RunStatus { return serve.RunStatus{Trigger: "barrier"} })
	tp := httptest.NewServer(plain.Handler())
	t.Cleanup(tp.Close)
	if strings.Contains(string(get(t, tp.URL+"/metrics")), "repex_feedback_") {
		t.Fatal("feedback gauges emitted without a feedback controller")
	}
}
