// Package serve exposes a running REMD simulation over HTTP: run state,
// online exchange statistics and Prometheus metrics. It reads only from
// thread-safe sources (an analysis.Collector and a caller-supplied
// status function), so serving live traffic never perturbs the
// simulation — the dispatcher publishes to the event bus without
// blocking, and the collector syncs on demand.
//
// Endpoints:
//
//	GET /status   JSON run state (trigger, cycles, faults, bus counters,
//	              per-dimension feedback-controller state when the run
//	              executes under acceptance control)
//	GET /stats    JSON analysis.Stats (acceptance ratios, round trips,
//	              mixing, overhead histograms)
//	GET /metrics  Prometheus text exposition (version 0.0.4)
//	GET /healthz  liveness probe: 200 with a one-line state summary
//	GET /trace    Chrome trace-event JSON of the attached flight
//	              recorder's current span window (404 when the run has
//	              no recorder); load in Perfetto or chrome://tracing
//
// EnablePprof additionally mounts net/http/pprof under /debug/pprof/.
// It is opt-in: profile endpoints can run CPU-heavy collection and leak
// binary layout details, so they stay off unless the operator asks.
//
// Feedback-trigger runs additionally export the repex_feedback_*
// gauge family — per-dimension target, measured rolling acceptance,
// controlled window, effective MinReady, integral term, and the
// repex_feedback_saturated{dim} ladder-spacing diagnostic (1 while a
// dimension's set point is unreachable at the window clamp).
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/trace"
)

// RunStatus is the /status payload.
type RunStatus struct {
	// ID is the registry-assigned run identifier; empty for the
	// single-run server of cmd/repex.
	ID      string `json:"id,omitempty"`
	Name    string `json:"name"`
	Engine  string `json:"engine"`
	Trigger string `json:"trigger"`
	// State is "pending", "running", "completed", "failed" or
	// "cancelled" (core.RunState names).
	State    string `json:"state"`
	Replicas int    `json:"replicas"`
	Cores    int    `json:"cores"`
	// CyclesTarget is the configured cycle budget.
	CyclesTarget int `json:"cycles_target"`
	// ExchangeWorkers and HistoryTail echo the run's scaling
	// configuration: the exchange-phase worker-pool bound (0 =
	// GOMAXPROCS-sized) and the retained slot-history rows (0 =
	// unbounded).
	ExchangeWorkers int `json:"exchange_workers"`
	HistoryTail     int `json:"history_tail"`
	// ExchangeEvents and MDSegments mirror the collector's counters.
	ExchangeEvents int `json:"exchange_events"`
	MDSegments     int `json:"md_segments"`
	// Faults counts fault-handling actions by kind (relaunch,
	// resource-lost, drop).
	Faults map[string]uint64 `json:"faults"`
	// BusPublished/BusDropped are event-bus delivery counters.
	BusPublished uint64 `json:"bus_published"`
	BusDropped   uint64 `json:"bus_dropped"`
	// Feedback is the per-dimension controller state of a feedback
	// trigger run (nil for other policies): targets, measured rolling
	// acceptance, window/MinReady actuators and the ladder-spacing
	// saturation diagnostic.
	Feedback []core.FeedbackDimStatus `json:"feedback,omitempty"`
	// Respace is the online ladder-respacing state of a run that enables
	// it (nil otherwise): configuration, per-dimension refit counts, the
	// current window values and the applied refit history.
	Respace *RespaceStatus `json:"respace,omitempty"`
	// TraceCapacity, TraceSpans and TraceDropped describe the attached
	// flight recorder: ring size, total spans recorded and spans evicted
	// by ring overflow. All zero when no recorder is attached.
	TraceCapacity int    `json:"trace_capacity,omitempty"`
	TraceSpans    uint64 `json:"trace_spans,omitempty"`
	TraceDropped  uint64 `json:"trace_dropped,omitempty"`
	// Error carries the failure message when State is "failed".
	Error string `json:"error,omitempty"`
}

// RespaceStatus surfaces a run's online ladder-respacing state on
// /status and feeds the repex_respacings_total / repex_ladder_value
// metric families.
type RespaceStatus struct {
	// Enabled echoes the configuration; AfterSteps and MaxRefits are
	// the resolved thresholds (0 = built-in default).
	Enabled    bool `json:"enabled"`
	AfterSteps int  `json:"after_steps,omitempty"`
	MaxRefits  int  `json:"max_refits,omitempty"`
	// Refits counts applied refits per dimension.
	Refits []int `json:"refits"`
	// Ladders holds every dimension's current window values.
	Ladders [][]float64 `json:"ladders,omitempty"`
	// History is the applied refit history in order.
	History []core.RespaceRecord `json:"history,omitempty"`
}

// Server serves the observability endpoints for one run.
type Server struct {
	col    *analysis.Collector
	status func() RunStatus
	// runLabel, when set, stamps every metric line with a run="<id>"
	// label so scrapes from many runs can federate without colliding.
	runLabel string
	// tracer is the run's flight recorder; nil disables /trace and the
	// repex_trace_* metrics.
	tracer *trace.Recorder
	mux    *http.ServeMux
	lis    net.Listener
	srv    *http.Server
}

// New builds a server over a collector and a status source. Either may
// be nil: a nil collector serves empty statistics, a nil status function
// an empty status.
func New(col *analysis.Collector, status func() RunStatus) *Server {
	s := &Server{col: col, status: status, mux: http.NewServeMux()}
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler exposes the route table (used by tests and embedders).
func (s *Server) Handler() http.Handler { return s.mux }

// SetRunLabel makes every /metrics line carry run="<id>". The registry
// sets it so per-run scrapes of runs sharing a dimension layout stay
// distinguishable after federation.
func (s *Server) SetRunLabel(id string) { s.runLabel = id }

// SetTracer attaches the run's flight recorder, enabling GET /trace and
// the repex_trace_* metric counters. Call before Start.
func (s *Server) SetTracer(rec *trace.Recorder) { s.tracer = rec }

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
// Opt-in only (see the package comment's security note); call before
// Start.
func (s *Server) EnablePprof() { mountPprof(s.mux) }

// mountPprof registers the pprof handlers on a non-default mux.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %v", err)
	}
	s.lis = lis
	// The port stays open for the whole (possibly multi-day) run, so
	// bound header reads and idle keep-alives: a client trickling bytes
	// must not pin goroutines and fds on the monitoring port.
	s.srv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = s.srv.Serve(lis) }()
	return lis.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

// snapshot takes the single per-request collector snapshot (empty when
// no collector is attached). /status and /metrics never render the
// per-replica traces, so they take the lite variant.
func (s *Server) snapshot(withTraces bool) analysis.Stats {
	if s.col == nil {
		return analysis.Stats{}
	}
	if withTraces {
		return s.col.Snapshot()
	}
	return s.col.SnapshotLite()
}

// runStatusFrom merges the caller's status view with the counters of an
// already-taken collector snapshot, so one request observes one instant.
func (s *Server) runStatusFrom(stats *analysis.Stats) RunStatus {
	var st RunStatus
	if s.status != nil {
		st = s.status()
	}
	if st.Faults == nil {
		st.Faults = map[string]uint64{}
	}
	if s.col != nil {
		st.ExchangeEvents = stats.Events
		st.MDSegments = stats.MDSegments
		for k, v := range stats.Faults {
			st.Faults[k] = v
		}
		st.BusDropped = stats.BusDropped
	}
	if s.tracer != nil {
		st.TraceCapacity = s.tracer.Capacity()
		st.TraceSpans = s.tracer.Recorded()
		st.TraceDropped = s.tracer.Dropped()
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	stats := s.snapshot(false)
	writeJSON(w, s.runStatusFrom(&stats))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.snapshot(true))
}

// handleTrace streams the flight recorder's current span window as
// Chrome trace-event JSON. Snapshotting the ring is cheap and
// lock-bounded, so polling /trace mid-run cannot stall the dispatcher.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		http.Error(w, "no flight recorder attached to this run", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WriteJSON(w, s.tracer.Snapshot())
}

// handleHealthz is the liveness probe: always 200 once the server
// answers, with a minimal state summary for probes that read bodies.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stats := s.snapshot(false)
	st := s.runStatusFrom(&stats)
	writeJSON(w, map[string]any{
		"ok":              true,
		"state":           st.State,
		"exchange_events": st.ExchangeEvents,
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	stats := s.snapshot(false)
	st := s.runStatusFrom(&stats)
	writeMetrics(&b, []runView{{run: s.runLabel, stats: stats, st: st}})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// runView is one run's contribution to a metrics exposition: its
// collector snapshot, its status, and the value of its run label
// (empty on the single-run server, which keeps that output
// byte-identical to the pre-registry format).
type runView struct {
	run   string
	stats analysis.Stats
	st    RunStatus
}

// lbl merges the view's run label with a family's own labels (base is
// the rendered inner label list, e.g. `dim="0",pair="1"`, or empty).
func (v runView) lbl(base string) string {
	switch {
	case v.run == "" && base == "":
		return ""
	case v.run == "":
		return "{" + base + "}"
	case base == "":
		return fmt.Sprintf("{run=%q}", v.run)
	default:
		return fmt.Sprintf("{run=%q,%s}", v.run, base)
	}
}

// writeMetrics renders the Prometheus exposition of one or many runs.
// The exposition format requires every line of a metric family to form
// one group, so multi-run output interleaves runs within each family
// (never family blocks per run) — the run label keeps series from runs
// sharing a dimension layout distinct.
func writeMetrics(b *strings.Builder, views []runView) {
	counter := func(name, help string, v func(runView) uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, vw := range views {
			fmt.Fprintf(b, "%s%s %d\n", name, vw.lbl(""), v(vw))
		}
	}
	gauge := func(name, help string, v func(runView) float64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, vw := range views {
			fmt.Fprintf(b, "%s%s %s\n", name, vw.lbl(""), fmtFloat(v(vw)))
		}
	}
	// family opens a HELP/TYPE block and lets the body emit labelled
	// lines for every view.
	family := func(name, help, typ string, emit func(vw runView)) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, vw := range views {
			emit(vw)
		}
	}

	gauge("repex_running", "1 while the simulation is executing.", func(vw runView) float64 {
		if vw.st.State == "running" {
			return 1
		}
		return 0
	})
	gauge("repex_replicas", "Configured replica count.",
		func(vw runView) float64 { return float64(vw.st.Replicas) })
	counter("repex_exchange_events_total", "Exchange events completed.",
		func(vw runView) uint64 { return uint64(vw.stats.Events) })
	counter("repex_md_segments_total", "MD segments finally processed.",
		func(vw runView) uint64 { return uint64(vw.stats.MDSegments) })
	counter("repex_md_failures_total", "MD segments that failed terminally.",
		func(vw runView) uint64 { return uint64(vw.stats.MDFailures) })

	family("repex_fault_events_total", "Fault-handling actions by kind.", "counter", func(vw runView) {
		kinds := make([]string, 0, len(vw.st.Faults))
		for k := range vw.st.Faults {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(b, "repex_fault_events_total%s %d\n", vw.lbl(fmt.Sprintf("kind=%q", k)), vw.st.Faults[k])
		}
	})

	family("repex_pair_attempts_total", "Exchange attempts per neighbour pair.", "counter", func(vw runView) {
		for d, pairs := range vw.stats.Acceptance {
			for i, p := range pairs {
				fmt.Fprintf(b, "repex_pair_attempts_total%s %d\n",
					vw.lbl(fmt.Sprintf("dim=\"%d\",pair=\"%d\"", d, i)), p.Attempted)
			}
		}
	})
	family("repex_pair_accepts_total", "Accepted exchanges per neighbour pair.", "counter", func(vw runView) {
		for d, pairs := range vw.stats.Acceptance {
			for i, p := range pairs {
				fmt.Fprintf(b, "repex_pair_accepts_total%s %d\n",
					vw.lbl(fmt.Sprintf("dim=\"%d\",pair=\"%d\"", d, i)), p.Accepted)
			}
		}
	})
	family("repex_pair_acceptance_ratio", "Acceptance ratio per neighbour pair.", "gauge", func(vw runView) {
		for d, pairs := range vw.stats.Acceptance {
			for i, p := range pairs {
				fmt.Fprintf(b, "repex_pair_acceptance_ratio%s %s\n",
					vw.lbl(fmt.Sprintf("dim=\"%d\",pair=\"%d\"", d, i)), fmtFloat(p.Ratio()))
			}
		}
	})

	// The single-run HELP embeds the run's configured window depth; an
	// aggregate scrape spans runs with different depths, conveyed per
	// run by repex_acceptance_window_events below.
	windowHelp := "Acceptance ratio per neighbour pair over each run's rolling window (depth in repex_acceptance_window_events)."
	if len(views) == 1 {
		windowHelp = fmt.Sprintf("Acceptance ratio per neighbour pair over the last %d outcomes.", views[0].stats.WindowEvents)
	}
	family("repex_acceptance_ratio_window", windowHelp, "gauge", func(vw runView) {
		for d, pairs := range vw.stats.AcceptanceWindow {
			for i, p := range pairs {
				// An empty window has no ratio: emitting 0 would trip
				// low-acceptance alerts on pairs that merely lack data. The
				// attempts gauge below conveys emptiness.
				if p.Attempted == 0 {
					continue
				}
				fmt.Fprintf(b, "repex_acceptance_ratio_window%s %s\n",
					vw.lbl(fmt.Sprintf("dim=\"%d\",pair=\"%d\"", d, i)), fmtFloat(p.Ratio()))
			}
		}
	})
	family("repex_acceptance_window_attempts", "Outcomes currently buffered in each pair's rolling window.", "gauge", func(vw runView) {
		for d, pairs := range vw.stats.AcceptanceWindow {
			for i, p := range pairs {
				fmt.Fprintf(b, "repex_acceptance_window_attempts%s %d\n",
					vw.lbl(fmt.Sprintf("dim=\"%d\",pair=\"%d\"", d, i)), p.Attempted)
			}
		}
	})
	gauge("repex_acceptance_window_events", "Configured rolling-window depth per pair.",
		func(vw runView) float64 { return float64(vw.stats.WindowEvents) })

	anyFeedback := false
	for _, vw := range views {
		if len(vw.st.Feedback) > 0 {
			anyFeedback = true
			break
		}
	}
	if anyFeedback {
		feedbackGauge := func(name, help string, value func(core.FeedbackDimStatus) float64) {
			family(name, help, "gauge", func(vw runView) {
				for _, f := range vw.st.Feedback {
					fmt.Fprintf(b, "%s%s %s\n", name,
						vw.lbl(fmt.Sprintf("dim=\"%d\"", f.Dim)), fmtFloat(value(f)))
				}
			})
		}
		feedbackGauge("repex_feedback_saturated",
			"1 while the dimension's controller is pinned at a window clamp with the target unreachable (ladder-spacing diagnostic).",
			func(f core.FeedbackDimStatus) float64 {
				if f.Saturated {
					return 1
				}
				return 0
			})
		feedbackGauge("repex_feedback_target", "Per-dimension acceptance set point.",
			func(f core.FeedbackDimStatus) float64 { return f.Target })
		feedbackGauge("repex_feedback_acceptance_measured",
			"Rolling acceptance the dimension's controller currently measures.",
			func(f core.FeedbackDimStatus) float64 { return f.Measured })
		feedbackGauge("repex_feedback_window_seconds", "Controlled exchange window per dimension.",
			func(f core.FeedbackDimStatus) float64 { return f.Window })
		feedbackGauge("repex_feedback_min_ready", "Effective early-fire threshold per dimension (second actuator).",
			func(f core.FeedbackDimStatus) float64 { return float64(f.MinReady) })
		feedbackGauge("repex_feedback_integral", "Accumulated acceptance error (I term) per dimension.",
			func(f core.FeedbackDimStatus) float64 { return f.Integral })
	}

	// Respace families, present only when some run enables online ladder
	// respacing (mirrors the feedback-family gating above).
	anyRespace := false
	for _, vw := range views {
		if vw.st.Respace != nil {
			anyRespace = true
			break
		}
	}
	if anyRespace {
		family("repex_respacings_total", "Online ladder re-fits applied per dimension.", "counter", func(vw runView) {
			if vw.st.Respace == nil {
				return
			}
			for d, n := range vw.st.Respace.Refits {
				fmt.Fprintf(b, "repex_respacings_total%s %d\n",
					vw.lbl(fmt.Sprintf("dim=\"%d\"", d)), n)
			}
		})
		family("repex_ladder_value", "Current window value per dimension slot (moves when a re-fit lands).", "gauge", func(vw runView) {
			if vw.st.Respace == nil {
				return
			}
			for d, vals := range vw.st.Respace.Ladders {
				for i, v := range vals {
					fmt.Fprintf(b, "repex_ladder_value%s %s\n",
						vw.lbl(fmt.Sprintf("dim=\"%d\",slot=\"%d\"", d, i)), fmtFloat(v))
				}
			}
		})
	}

	counter("repex_preemptions_total", "Pilot preemption notices received.",
		func(vw runView) uint64 { return vw.stats.Preemptions })

	// Per-pilot core gauges, present only when some run published
	// resource events (elastic runtimes); a quiet run with static pilots
	// emits no pilot-core series (mirrors the feedback-family gating).
	anyPilot := false
	for _, vw := range views {
		if len(vw.stats.PilotCores) > 0 {
			anyPilot = true
			break
		}
	}
	if anyPilot {
		family("repex_pilot_cores", "Current core count per pilot slot (0 once expired).", "gauge", func(vw runView) {
			slots := make([]int, 0, len(vw.stats.PilotCores))
			for slot := range vw.stats.PilotCores {
				slots = append(slots, slot)
			}
			sort.Ints(slots)
			for _, slot := range slots {
				fmt.Fprintf(b, "repex_pilot_cores%s %d\n",
					vw.lbl(fmt.Sprintf("pilot=\"%d\"", slot)), vw.stats.PilotCores[slot])
			}
		})
	}

	counter("repex_round_trips_total", "Completed ladder round trips over all replicas.",
		func(vw runView) uint64 { return uint64(vw.stats.RoundTrips) })
	gauge("repex_round_trip_events_mean", "Mean round-trip duration in exchange events.",
		func(vw runView) float64 { return vw.stats.MeanRoundTripEvents })
	gauge("repex_full_traversal_fraction",
		"Fraction of replicas that visited both ladder endpoints.",
		func(vw runView) float64 { return vw.stats.FullTraversalFraction })

	histogram(b, "repex_md_exec_seconds", "MD segment execution time.", views,
		func(vw runView) analysis.Histogram { return vw.stats.MDExec })
	histogram(b, "repex_exchange_wall_seconds", "Exchange phase wall time.", views,
		func(vw runView) analysis.Histogram { return vw.stats.ExchangeOverhead })

	counter("repex_bus_published_total", "Events published on the bus.",
		func(vw runView) uint64 { return vw.st.BusPublished })
	counter("repex_bus_dropped_total", "Events the collector lost to ring overflow.",
		func(vw runView) uint64 { return vw.stats.BusDropped })

	// Flight-recorder counters, present only when some run has a
	// recorder attached (mirrors the feedback-family gating above).
	anyTrace := false
	for _, vw := range views {
		if vw.st.TraceCapacity > 0 {
			anyTrace = true
			break
		}
	}
	if anyTrace {
		counter("repex_trace_spans_total", "Spans recorded by the flight recorder.",
			func(vw runView) uint64 { return vw.st.TraceSpans })
		counter("repex_trace_dropped_total", "Spans evicted from the flight-recorder ring.",
			func(vw runView) uint64 { return vw.st.TraceDropped })
	}
}

// histogram renders one Prometheus histogram family: per view, the
// cumulative buckets with an le label, then _sum and _count.
func histogram(b *strings.Builder, name, help string, views []runView, h func(runView) analysis.Histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, vw := range views {
		hist := h(vw)
		cum := uint64(0)
		for i, bound := range hist.Bounds {
			if i < len(hist.Counts) {
				cum += hist.Counts[i]
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", name, vw.lbl(fmt.Sprintf("le=%q", fmtFloat(bound))), cum)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, vw.lbl(`le="+Inf"`), hist.Count)
		fmt.Fprintf(b, "%s_sum%s %s\n", name, vw.lbl(""), fmtFloat(hist.Sum))
		fmt.Fprintf(b, "%s_count%s %d\n", name, vw.lbl(""), hist.Count)
	}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
