// Package serve exposes a running REMD simulation over HTTP: run state,
// online exchange statistics and Prometheus metrics. It reads only from
// thread-safe sources (an analysis.Collector and a caller-supplied
// status function), so serving live traffic never perturbs the
// simulation — the dispatcher publishes to the event bus without
// blocking, and the collector syncs on demand.
//
// Endpoints:
//
//	GET /status   JSON run state (trigger, cycles, faults, bus counters,
//	              per-dimension feedback-controller state when the run
//	              executes under acceptance control)
//	GET /stats    JSON analysis.Stats (acceptance ratios, round trips,
//	              mixing, overhead histograms)
//	GET /metrics  Prometheus text exposition (version 0.0.4)
//
// Feedback-trigger runs additionally export the repex_feedback_*
// gauge family — per-dimension target, measured rolling acceptance,
// controlled window, effective MinReady, integral term, and the
// repex_feedback_saturated{dim} ladder-spacing diagnostic (1 while a
// dimension's set point is unreachable at the window clamp).
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
)

// RunStatus is the /status payload.
type RunStatus struct {
	Name    string `json:"name"`
	Engine  string `json:"engine"`
	Trigger string `json:"trigger"`
	// State is "pending", "running", "completed" or "failed".
	State    string `json:"state"`
	Replicas int    `json:"replicas"`
	Cores    int    `json:"cores"`
	// CyclesTarget is the configured cycle budget.
	CyclesTarget int `json:"cycles_target"`
	// ExchangeWorkers and HistoryTail echo the run's scaling
	// configuration: the exchange-phase worker-pool bound (0 =
	// GOMAXPROCS-sized) and the retained slot-history rows (0 =
	// unbounded).
	ExchangeWorkers int `json:"exchange_workers"`
	HistoryTail     int `json:"history_tail"`
	// ExchangeEvents and MDSegments mirror the collector's counters.
	ExchangeEvents int `json:"exchange_events"`
	MDSegments     int `json:"md_segments"`
	// Faults counts fault-handling actions by kind (relaunch,
	// resource-lost, drop).
	Faults map[string]uint64 `json:"faults"`
	// BusPublished/BusDropped are event-bus delivery counters.
	BusPublished uint64 `json:"bus_published"`
	BusDropped   uint64 `json:"bus_dropped"`
	// Feedback is the per-dimension controller state of a feedback
	// trigger run (nil for other policies): targets, measured rolling
	// acceptance, window/MinReady actuators and the ladder-spacing
	// saturation diagnostic.
	Feedback []core.FeedbackDimStatus `json:"feedback,omitempty"`
	// Error carries the failure message when State is "failed".
	Error string `json:"error,omitempty"`
}

// Server serves the observability endpoints for one run.
type Server struct {
	col    *analysis.Collector
	status func() RunStatus
	mux    *http.ServeMux
	lis    net.Listener
	srv    *http.Server
}

// New builds a server over a collector and a status source. Either may
// be nil: a nil collector serves empty statistics, a nil status function
// an empty status.
func New(col *analysis.Collector, status func() RunStatus) *Server {
	s := &Server{col: col, status: status, mux: http.NewServeMux()}
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler exposes the route table (used by tests and embedders).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %v", err)
	}
	s.lis = lis
	// The port stays open for the whole (possibly multi-day) run, so
	// bound header reads and idle keep-alives: a client trickling bytes
	// must not pin goroutines and fds on the monitoring port.
	s.srv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = s.srv.Serve(lis) }()
	return lis.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

// snapshot takes the single per-request collector snapshot (empty when
// no collector is attached). /status and /metrics never render the
// per-replica traces, so they take the lite variant.
func (s *Server) snapshot(withTraces bool) analysis.Stats {
	if s.col == nil {
		return analysis.Stats{}
	}
	if withTraces {
		return s.col.Snapshot()
	}
	return s.col.SnapshotLite()
}

// runStatusFrom merges the caller's status view with the counters of an
// already-taken collector snapshot, so one request observes one instant.
func (s *Server) runStatusFrom(stats *analysis.Stats) RunStatus {
	var st RunStatus
	if s.status != nil {
		st = s.status()
	}
	if st.Faults == nil {
		st.Faults = map[string]uint64{}
	}
	if s.col != nil {
		st.ExchangeEvents = stats.Events
		st.MDSegments = stats.MDSegments
		for k, v := range stats.Faults {
			st.Faults[k] = v
		}
		st.BusDropped = stats.BusDropped
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	stats := s.snapshot(false)
	writeJSON(w, s.runStatusFrom(&stats))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.snapshot(true))
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	stats := s.snapshot(false)
	st := s.runStatusFrom(&stats)

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, fmtFloat(v))
	}

	running := 0.0
	if st.State == "running" {
		running = 1
	}
	gauge("repex_running", "1 while the simulation is executing.", running)
	gauge("repex_replicas", "Configured replica count.", float64(st.Replicas))
	counter("repex_exchange_events_total", "Exchange events completed.", uint64(stats.Events))
	counter("repex_md_segments_total", "MD segments finally processed.", uint64(stats.MDSegments))
	counter("repex_md_failures_total", "MD segments that failed terminally.", uint64(stats.MDFailures))

	fmt.Fprintf(&b, "# HELP repex_fault_events_total Fault-handling actions by kind.\n")
	fmt.Fprintf(&b, "# TYPE repex_fault_events_total counter\n")
	kinds := make([]string, 0, len(st.Faults))
	for k := range st.Faults {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "repex_fault_events_total{kind=%q} %d\n", k, st.Faults[k])
	}

	fmt.Fprintf(&b, "# HELP repex_pair_attempts_total Exchange attempts per neighbour pair.\n")
	fmt.Fprintf(&b, "# TYPE repex_pair_attempts_total counter\n")
	for d, pairs := range stats.Acceptance {
		for i, p := range pairs {
			fmt.Fprintf(&b, "repex_pair_attempts_total{dim=\"%d\",pair=\"%d\"} %d\n", d, i, p.Attempted)
		}
	}
	fmt.Fprintf(&b, "# HELP repex_pair_accepts_total Accepted exchanges per neighbour pair.\n")
	fmt.Fprintf(&b, "# TYPE repex_pair_accepts_total counter\n")
	for d, pairs := range stats.Acceptance {
		for i, p := range pairs {
			fmt.Fprintf(&b, "repex_pair_accepts_total{dim=\"%d\",pair=\"%d\"} %d\n", d, i, p.Accepted)
		}
	}
	fmt.Fprintf(&b, "# HELP repex_pair_acceptance_ratio Acceptance ratio per neighbour pair.\n")
	fmt.Fprintf(&b, "# TYPE repex_pair_acceptance_ratio gauge\n")
	for d, pairs := range stats.Acceptance {
		for i, p := range pairs {
			fmt.Fprintf(&b, "repex_pair_acceptance_ratio{dim=\"%d\",pair=\"%d\"} %s\n",
				d, i, fmtFloat(p.Ratio()))
		}
	}

	fmt.Fprintf(&b, "# HELP repex_acceptance_ratio_window Acceptance ratio per neighbour pair over the last %d outcomes.\n", stats.WindowEvents)
	fmt.Fprintf(&b, "# TYPE repex_acceptance_ratio_window gauge\n")
	for d, pairs := range stats.AcceptanceWindow {
		for i, p := range pairs {
			// An empty window has no ratio: emitting 0 would trip
			// low-acceptance alerts on pairs that merely lack data. The
			// attempts gauge below conveys emptiness.
			if p.Attempted == 0 {
				continue
			}
			fmt.Fprintf(&b, "repex_acceptance_ratio_window{dim=\"%d\",pair=\"%d\"} %s\n",
				d, i, fmtFloat(p.Ratio()))
		}
	}
	fmt.Fprintf(&b, "# HELP repex_acceptance_window_attempts Outcomes currently buffered in each pair's rolling window.\n")
	fmt.Fprintf(&b, "# TYPE repex_acceptance_window_attempts gauge\n")
	for d, pairs := range stats.AcceptanceWindow {
		for i, p := range pairs {
			fmt.Fprintf(&b, "repex_acceptance_window_attempts{dim=\"%d\",pair=\"%d\"} %d\n",
				d, i, p.Attempted)
		}
	}
	gauge("repex_acceptance_window_events", "Configured rolling-window depth per pair.",
		float64(stats.WindowEvents))

	if len(st.Feedback) > 0 {
		feedbackGauge := func(name, help string, value func(core.FeedbackDimStatus) float64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, f := range st.Feedback {
				fmt.Fprintf(&b, "%s{dim=\"%d\"} %s\n", name, f.Dim, fmtFloat(value(f)))
			}
		}
		feedbackGauge("repex_feedback_saturated",
			"1 while the dimension's controller is pinned at a window clamp with the target unreachable (ladder-spacing diagnostic).",
			func(f core.FeedbackDimStatus) float64 {
				if f.Saturated {
					return 1
				}
				return 0
			})
		feedbackGauge("repex_feedback_target", "Per-dimension acceptance set point.",
			func(f core.FeedbackDimStatus) float64 { return f.Target })
		feedbackGauge("repex_feedback_acceptance_measured",
			"Rolling acceptance the dimension's controller currently measures.",
			func(f core.FeedbackDimStatus) float64 { return f.Measured })
		feedbackGauge("repex_feedback_window_seconds", "Controlled exchange window per dimension.",
			func(f core.FeedbackDimStatus) float64 { return f.Window })
		feedbackGauge("repex_feedback_min_ready", "Effective early-fire threshold per dimension (second actuator).",
			func(f core.FeedbackDimStatus) float64 { return float64(f.MinReady) })
		feedbackGauge("repex_feedback_integral", "Accumulated acceptance error (I term) per dimension.",
			func(f core.FeedbackDimStatus) float64 { return f.Integral })
	}

	counter("repex_round_trips_total", "Completed ladder round trips over all replicas.",
		uint64(stats.RoundTrips))
	gauge("repex_round_trip_events_mean", "Mean round-trip duration in exchange events.",
		stats.MeanRoundTripEvents)
	gauge("repex_full_traversal_fraction",
		"Fraction of replicas that visited both ladder endpoints.",
		stats.FullTraversalFraction)

	histogram(&b, "repex_md_exec_seconds", "MD segment execution time.", stats.MDExec)
	histogram(&b, "repex_exchange_wall_seconds", "Exchange phase wall time.", stats.ExchangeOverhead)

	counter("repex_bus_published_total", "Events published on the bus.", st.BusPublished)
	counter("repex_bus_dropped_total", "Events the collector lost to ring overflow.",
		stats.BusDropped)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// histogram renders one Prometheus histogram: cumulative buckets with an
// le label, then _sum and _count.
func histogram(b *strings.Builder, name, help string, h analysis.Histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, fmtFloat(bound), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(b, "%s_sum %s\n", name, fmtFloat(h.Sum))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count)
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
