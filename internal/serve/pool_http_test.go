package serve_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/serve"
)

func patchPool(t *testing.T, base, body string) (serve.PoolStatus, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, base+"/pool", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ps serve.PoolStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ps); err != nil {
			t.Fatal(err)
		}
	}
	return ps, resp.StatusCode
}

func TestPoolResizeEndpoint(t *testing.T) {
	_, ts := newDaemon(t, 16, 0)

	// Shrink below a launch's request: admission re-checks the new total.
	ps, code := patchPool(t, ts.URL, `{"total_cores": 4}`)
	if code != http.StatusOK || ps.TotalCores != 4 {
		t.Fatalf("PATCH /pool: code %d, status %+v", code, ps)
	}
	if _, code := postRun(t, ts.URL, launchBody(simBody("toobig", 8, 2, 1), resBody8, "")); code != http.StatusTooManyRequests {
		t.Fatalf("launch against the shrunk pool: code %d, want 429", code)
	}

	// Grow back: the same launch now fits.
	if ps, code := patchPool(t, ts.URL, `{"total_cores": 24}`); code != http.StatusOK || ps.TotalCores != 24 {
		t.Fatalf("PATCH /pool grow: code %d, status %+v", code, ps)
	}
	st, code := postRun(t, ts.URL, launchBody(simBody("fits", 8, 2, 1), resBody8, ""))
	if code != http.StatusCreated {
		t.Fatalf("launch against the grown pool: code %d, want 201", code)
	}
	waitFor(t, ts.URL, st.ID, func(s serve.RunStatus) bool { return terminal(s.State) }, "terminal state")

	// Malformed bodies and impossible totals are rejected.
	if _, code := patchPool(t, ts.URL, `{`); code != http.StatusBadRequest {
		t.Fatalf("malformed PATCH /pool body: code %d, want 400", code)
	}
	if _, code := patchPool(t, ts.URL, `{"total_cores": 0}`); code != http.StatusBadRequest {
		t.Fatalf("PATCH /pool to zero: code %d, want 400", code)
	}
}

func TestPoolResizeEndpointUnbounded(t *testing.T) {
	// An unbounded daemon has no pool object to resize; the route says
	// so instead of quietly creating a bound.
	_, ts := newDaemon(t, 0, 0)
	if _, code := patchPool(t, ts.URL, `{"total_cores": 8}`); code != http.StatusBadRequest {
		t.Fatalf("PATCH /pool on an unbounded daemon: code %d, want 400", code)
	}
}
