package config

import (
	"strings"
	"testing"
)

const launchSim = `{
	"name": "t8",
	"dimensions": [{"type": "T", "count": 8, "min": 273, "max": 373}],
	"cores_per_replica": 1,
	"steps_per_cycle": 2000,
	"cycles": 2
}`

func TestParseLaunch(t *testing.T) {
	body := `{"sim": ` + launchSim + `, "res": {"machine": "small", "nodes": 1, "cores_per_node": 8, "pilot_cores": 8}}`
	l, err := ParseLaunch([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if l.Sim.Engine != "amber" || l.Sim.Atoms != 2881 {
		t.Fatalf("launch sim not normalized: engine %q atoms %d", l.Sim.Engine, l.Sim.Atoms)
	}
	if _, _, err := l.Res.Resolve(); err != nil {
		t.Fatal(err)
	}
}

func TestParseLaunchValidation(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"missing sim", `{"res": {"machine": "small", "nodes": 1, "cores_per_node": 8, "pilot_cores": 8}}`, `"sim" block`},
		{"missing res", `{"sim": ` + launchSim + `}`, `"res" block`},
		{"bad sim", `{"sim": {"name": "x"}, "res": {"machine": "small", "nodes": 1, "cores_per_node": 8, "pilot_cores": 8}}`, ""},
		{"bad res", `{"sim": ` + launchSim + `, "res": {"machine": "nope", "pilot_cores": 8}}`, "unknown machine"},
		{"negative every", `{"sim": ` + launchSim + `, "res": {"machine": "small", "nodes": 1, "cores_per_node": 8, "pilot_cores": 8}, "checkpoint_every": -1}`, "non-negative"},
		{"every without path", `{"sim": ` + launchSim + `, "res": {"machine": "small", "nodes": 1, "cores_per_node": 8, "pilot_cores": 8}, "checkpoint_every": 3}`, "without a checkpoint path"},
	}
	for _, tc := range cases {
		_, err := ParseLaunch([]byte(tc.body))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestParseDaemon(t *testing.T) {
	d, err := ParseDaemon([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Listen != "127.0.0.1:8600" || d.DrainTimeoutSec != 30 {
		t.Fatalf("daemon defaults: %+v", d)
	}
	d, err = ParseDaemon([]byte(`{"listen": "127.0.0.1:0", "total_cores": 64, "max_runs": 4, "drain_timeout_sec": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalCores != 64 || d.MaxRuns != 4 || d.DrainTimeoutSec != 5 {
		t.Fatalf("daemon values lost: %+v", d)
	}
	for _, bad := range []string{
		`{"total_cores": -1}`, `{"max_runs": -2}`, `{"drain_timeout_sec": -1}`, `{nope`,
	} {
		if _, err := ParseDaemon([]byte(bad)); err == nil {
			t.Errorf("daemon config %s accepted", bad)
		}
	}
}

func TestResourcePilots(t *testing.T) {
	_, ps, err := ParseResource([]byte(`{"machine": "small", "nodes": 2, "cores_per_node": 8, "pilot_cores": 16, "pilots": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	if ps.Pilots != 4 || ps.Cores != 16 {
		t.Fatalf("pilot spec %+v", ps)
	}
	if _, _, err := ParseResource([]byte(`{"machine": "small", "nodes": 1, "cores_per_node": 8, "pilot_cores": 4, "pilots": 8}`)); err == nil {
		t.Fatal("4 cores over 8 pilots accepted")
	}
	if _, _, err := ParseResource([]byte(`{"machine": "small", "nodes": 1, "cores_per_node": 8, "pilot_cores": 8, "pilots": -1}`)); err == nil {
		t.Fatal("negative pilots accepted")
	}
}
