package config

import (
	"fmt"
	"testing"
)

// TestRespaceConfig covers parsing and validation of the respace block:
// a valid block lands on the spec with its per-dimension opt-outs
// resolved, a disabled block stays inert, and the rejection set mirrors
// target_acceptance's (dead controls are errors, not silence).
func TestRespaceConfig(t *testing.T) {
	base := `{"name":"x",
	  "dimensions":[{"type":"T","count":4,"min":280,"max":340},
	                {"type":"U","count":4,"torsion":"phi"}],
	  "cores_per_replica":1,"steps_per_cycle":1000,"cycles":2,
	  "trigger":"feedback","async_window_sec":45,
	  "respace":%s}`

	s, err := ParseSimulation([]byte(fmt.Sprintf(base,
		`{"enabled":true,"after_steps":4,"max_refits":2,"skip_dims":["U"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	rs := spec.Respace
	if rs == nil {
		t.Fatal("respace block did not reach the spec")
	}
	if rs.AfterSteps != 4 || rs.MaxRefits != 2 {
		t.Fatalf("knobs lost in translation: after %d, max %d", rs.AfterSteps, rs.MaxRefits)
	}
	if len(rs.Disabled) != 2 || rs.Disabled[0] || !rs.Disabled[1] {
		t.Fatalf("skip_dims [\"U\"] resolved to %v, want [false true]", rs.Disabled)
	}
	if rs.Planner != nil {
		t.Fatal("config layer must leave the planner nil; runtimes wire the collector")
	}

	// enabled:false keeps the mechanism off even with knobs present.
	s, err = ParseSimulation([]byte(fmt.Sprintf(base, `{"enabled":false,"after_steps":4}`)))
	if err != nil {
		t.Fatal(err)
	}
	if spec, err := s.ToSpec(); err != nil {
		t.Fatal(err)
	} else if spec.Respace != nil {
		t.Fatal("disabled respace block still reached the spec")
	}

	for _, tc := range []struct {
		name string
		rs   string
	}{
		{"negative after_steps", `{"enabled":true,"after_steps":-1}`},
		{"negative max_refits", `{"enabled":true,"max_refits":-1}`},
		{"unknown dim code", `{"enabled":true,"skip_dims":["Q"]}`},
		{"code without a dimension", `{"enabled":true,"skip_dims":["S"]}`},
	} {
		if _, err := ParseSimulation([]byte(fmt.Sprintf(base, tc.rs))); err == nil {
			t.Errorf("%s: accepted respace %s", tc.name, tc.rs)
		}
	}

	// Enabled respacing on a non-feedback trigger is rejected: its
	// firing condition is the feedback controller's saturation
	// diagnostic, so anywhere else it would be silently dead.
	bad := `{"name":"x",
	  "dimensions":[{"type":"T","count":4,"min":280,"max":340}],
	  "cores_per_replica":1,"steps_per_cycle":1000,"cycles":2,
	  "pattern":"sync","respace":{"enabled":true}}`
	if _, err := ParseSimulation([]byte(bad)); err == nil {
		t.Fatal("accepted enabled respace under the barrier trigger")
	}
}
