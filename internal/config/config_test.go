package config

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exchange"
)

const tsuJSON = `{
  "name": "tsu-demo",
  "engine": "amber",
  "atoms": 2881,
  "dimensions": [
    {"type": "T", "count": 4, "min": 273, "max": 373},
    {"type": "S", "values": [0.1, 0.2, 0.4]},
    {"type": "U", "count": 4, "torsion": "phi"}
  ],
  "cores_per_replica": 1,
  "steps_per_cycle": 6000,
  "cycles": 3,
  "seed": 42
}`

func TestParseSimulationTSU(t *testing.T) {
	s, err := ParseSimulation([]byte(tsuJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.DimCode() != "TSU" {
		t.Fatalf("dim code %q, want TSU", spec.DimCode())
	}
	if spec.Replicas() != 4*3*4 {
		t.Fatalf("replicas %d, want 48", spec.Replicas())
	}
	// Generated temperature ladder is geometric 273..373.
	ts := spec.Dims[0].Values
	if ts[0] != 273 || math.Abs(ts[3]-373) > 1e-9 {
		t.Fatalf("temperature ladder %v", ts)
	}
	// Default umbrella K is the paper's 0.02 kcal/mol/deg².
	if math.Abs(spec.Dims[2].K-core.UmbrellaK002) > 1e-9 {
		t.Fatalf("umbrella K %v, want %v", spec.Dims[2].K, core.UmbrellaK002)
	}
	if spec.Pattern != core.PatternSynchronous {
		t.Fatal("default pattern should be synchronous")
	}
}

func TestParseSimulationAsync(t *testing.T) {
	s, err := ParseSimulation([]byte(`{
	  "name": "a", "dimensions": [{"type":"T","count":4,"min":280,"max":340}],
	  "pattern": "async", "async_window_sec": 60,
	  "cores_per_replica": 1, "steps_per_cycle": 1000, "cycles": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := s.ToSpec()
	if spec.Pattern != core.PatternAsynchronous || spec.AsyncWindow != 60 {
		t.Fatalf("async config lost: %+v", spec)
	}
	if s.Atoms != 2881 {
		t.Fatalf("default atoms %d, want 2881", s.Atoms)
	}
}

func TestParseSimulationTriggers(t *testing.T) {
	base := `{"name":"x","dimensions":[{"type":"T","count":4,"min":280,"max":340}],
	  "cores_per_replica":1,"steps_per_cycle":1000,"cycles":2,`
	cases := []struct {
		name string
		tail string
		want string
		sync bool
	}{
		{"barrier", `"trigger":"barrier"}`, "*core.BarrierTrigger", true},
		{"window", `"trigger":"window","async_window_sec":30}`, "*core.WindowTrigger", false},
		{"count", `"trigger":"count","trigger_count":4}`, "*core.CountTrigger", false},
		{"adaptive", `"trigger":"adaptive","async_window_sec":30}`, "*core.AdaptiveTrigger", false},
		{"feedback", `"trigger":"feedback","async_window_sec":30,"target_acceptance":0.4,"window_events":32}`, "*core.FeedbackTrigger", false},
	}
	for _, tc := range cases {
		s, err := ParseSimulation([]byte(base + tc.tail))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		spec, err := s.ToSpec()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if spec.Trigger == nil {
			t.Fatalf("%s: no trigger selected", tc.name)
		}
		if got := fmt.Sprintf("%T", spec.Trigger); got != tc.want {
			t.Fatalf("%s: trigger type %s, want %s", tc.name, got, tc.want)
		}
		wantPattern := core.PatternAsynchronous
		if tc.sync {
			wantPattern = core.PatternSynchronous
		}
		if spec.Pattern != wantPattern {
			t.Fatalf("%s: pattern %v", tc.name, spec.Pattern)
		}
	}
}

func TestFeedbackTriggerKnobsReachPolicy(t *testing.T) {
	s, err := ParseSimulation([]byte(`{"name":"x",
	  "dimensions":[{"type":"T","count":4,"min":280,"max":340}],
	  "cores_per_replica":1,"steps_per_cycle":1000,"cycles":2,
	  "trigger":"feedback","async_window_sec":45,"async_min_ready":3,
	  "target_acceptance":0.4,"window_events":32}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	fb, ok := spec.Trigger.(*core.FeedbackTrigger)
	if !ok {
		t.Fatalf("trigger %T, want *core.FeedbackTrigger", spec.Trigger)
	}
	if fb.Initial != 45 || fb.Target != 0.4 || fb.WindowEvents != 32 || fb.MinReady != 3 {
		t.Fatalf("knobs lost in config round trip: %+v", fb)
	}
}

func TestParseSimulationErrors(t *testing.T) {
	cases := []string{
		`{bad json`,
		`{"name":"x","engine":"gromacs","dimensions":[{"type":"T","count":2,"min":1,"max":2}],"cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"Q","count":2}],"cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T"}],"cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":300,"max":200}],"cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"pattern":"turbo","cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"fault_policy":"explode","cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"trigger":"psychic","cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"trigger":"window","cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"trigger":"count","trigger_count":1,"cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"trigger":"adaptive","cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"trigger":"feedback","cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"trigger":"feedback","async_window_sec":30,"target_acceptance":1.5,"cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"trigger":"feedback","async_window_sec":30,"window_events":-4,"cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"trigger":"barrier","target_acceptance":0.4,"cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"trigger":"window","async_window_sec":30,"window_events":-4,"cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
		`{"name":"x","dimensions":[{"type":"T","count":2,"min":200,"max":300}],"target_acceptance":0.4,"cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`,
	}
	for i, c := range cases {
		if s, err := ParseSimulation([]byte(c)); err == nil {
			if _, err2 := s.ToSpec(); err2 == nil {
				t.Errorf("case %d accepted", i)
			}
		}
	}
}

func TestUmbrellaDegreesConverted(t *testing.T) {
	s, err := ParseSimulation([]byte(`{
	  "name":"u","dimensions":[{"type":"U","values":[0,90,180,270],"torsion":"psi"}],
	  "cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := s.ToSpec()
	vals := spec.Dims[0].Values
	if math.Abs(vals[1]-math.Pi/2) > 1e-9 {
		t.Fatalf("90 deg became %v rad", vals[1])
	}
	// 270° wraps to -90°.
	if math.Abs(vals[3]+math.Pi/2) > 1e-9 {
		t.Fatalf("270 deg became %v rad, want -pi/2", vals[3])
	}
	if spec.Dims[0].Type != exchange.Umbrella {
		t.Fatal("type lost")
	}
}

func TestSaltLadderGenerated(t *testing.T) {
	s, err := ParseSimulation([]byte(`{
	  "name":"s","dimensions":[{"type":"S","count":3,"min":0.1,"max":0.5}],
	  "cores_per_replica":1,"steps_per_cycle":1,"cycles":1}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := s.ToSpec()
	want := []float64{0.1, 0.3, 0.5}
	for i, v := range spec.Dims[0].Values {
		if math.Abs(v-want[i]) > 1e-9 {
			t.Fatalf("salt ladder %v, want %v", spec.Dims[0].Values, want)
		}
	}
}

func TestParseResource(t *testing.T) {
	cfg, pilot, err := ParseResource([]byte(`{"machine":"supermic","pilot_cores":512}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "supermic" || pilot.Cores != 512 {
		t.Fatalf("parsed %s/%d", cfg.Name, pilot.Cores)
	}
	if pilot.Walltime != 0 {
		t.Fatalf("default walltime %v, want 0 (unbounded)", pilot.Walltime)
	}
	cfg2, pilot2, err := ParseResource([]byte(`{"machine":"small","nodes":4,"cores_per_node":16,"pilot_cores":64,"failure_prob":0.05,"walltime_sec":3600}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.TotalCores() != 64 || cfg2.FailureProb != 0.05 {
		t.Fatalf("small cluster config %+v", cfg2)
	}
	if pilot2.Walltime != 3600 {
		t.Fatalf("walltime %v, want 3600", pilot2.Walltime)
	}
}

func TestParseResourceErrors(t *testing.T) {
	cases := []string{
		`{bad`,
		`{"machine":"lumi","pilot_cores":4}`,
		`{"machine":"small","pilot_cores":4}`,
		`{"machine":"supermic","pilot_cores":0}`,
		`{"machine":"supermic","pilot_cores":4,"walltime_sec":-10}`,
	}
	for i, c := range cases {
		if _, _, err := ParseResource([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseSimulationServeBlock(t *testing.T) {
	s, err := ParseSimulation([]byte(`{
		"name": "observed", "cores_per_replica": 1, "steps_per_cycle": 100, "cycles": 1,
		"dimensions": [{"type": "T", "count": 4, "min": 273, "max": 373}],
		"serve": {"listen": "127.0.0.1:9100"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Serve == nil || s.Serve.Listen != "127.0.0.1:9100" {
		t.Fatalf("serve block %+v, want listen 127.0.0.1:9100", s.Serve)
	}
	// The serve block is a cmd/repex concern; the core spec is unchanged.
	if _, err := s.ToSpec(); err != nil {
		t.Fatal(err)
	}
}

func TestServeBlockRequiresListen(t *testing.T) {
	_, err := ParseSimulation([]byte(`{
		"name": "observed", "cores_per_replica": 1, "steps_per_cycle": 100, "cycles": 1,
		"dimensions": [{"type": "T", "count": 4, "min": 273, "max": 373}],
		"serve": {}
	}`))
	if err == nil {
		t.Fatal("serve block without a listen address accepted")
	}
}

// TestPerDimTargetAcceptance: the map form of target_acceptance
// resolves per dimension by type code (a code covering every dimension
// of that type), back-compat with the scalar form is preserved, and
// malformed maps — unknown dimension codes, out-of-range ratios,
// non-feedback triggers — are rejected at parse time.
func TestPerDimTargetAcceptance(t *testing.T) {
	base := `{"name":"x",
	  "dimensions":[{"type":"T","count":4,"min":280,"max":340},
	                {"type":"U","count":4,"torsion":"phi"},
	                {"type":"U","count":3,"torsion":"psi"}],
	  "cores_per_replica":1,"steps_per_cycle":1000,"cycles":2,
	  "trigger":"feedback","async_window_sec":45,
	  "target_acceptance":%s}`

	s, err := ParseSimulation([]byte(fmt.Sprintf(base, `{"T":0.4,"U":0.25}`)))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	fb := spec.Trigger.(*core.FeedbackTrigger)
	if want := []float64{0.4, 0.25, 0.25}; !reflect.DeepEqual(fb.Targets, want) {
		t.Fatalf("per-dim targets %v, want %v (U covers both umbrella dims)", fb.Targets, want)
	}
	if fb.Target != 0 {
		t.Fatalf("scalar target %v alongside a map, want 0", fb.Target)
	}

	// Scalar form still parses (back-compat).
	s, err = ParseSimulation([]byte(fmt.Sprintf(base, `0.35`)))
	if err != nil {
		t.Fatal(err)
	}
	spec, err = s.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	if fb := spec.Trigger.(*core.FeedbackTrigger); fb.Target != 0.35 || fb.Targets != nil {
		t.Fatalf("scalar form parsed as %v/%v", fb.Target, fb.Targets)
	}

	for _, tc := range []struct {
		name string
		ta   string
	}{
		{"unknown dim code", `{"T":0.4,"Q":0.3}`},
		{"code without a dimension", `{"T":0.4,"S":0.3}`},
		{"ratio at 1", `{"T":1.0}`},
		{"ratio at 0", `{"T":0}`},
		{"negative ratio", `{"U":-0.2}`},
	} {
		if _, err := ParseSimulation([]byte(fmt.Sprintf(base, tc.ta))); err == nil {
			t.Fatalf("%s: accepted target_acceptance %s", tc.name, tc.ta)
		}
	}

	// The map form is rejected on non-feedback triggers exactly like
	// the scalar form: silently dead acceptance control is worse than
	// an error.
	bad := `{"name":"x",
	  "dimensions":[{"type":"T","count":4,"min":280,"max":340}],
	  "cores_per_replica":1,"steps_per_cycle":1000,"cycles":2,
	  "trigger":"barrier","target_acceptance":{"T":0.4}}`
	if _, err := ParseSimulation([]byte(bad)); err == nil {
		t.Fatal("per-dim target_acceptance accepted under the barrier trigger")
	}
}
